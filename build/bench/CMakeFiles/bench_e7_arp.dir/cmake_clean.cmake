file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_arp.dir/bench_e7_arp.cc.o"
  "CMakeFiles/bench_e7_arp.dir/bench_e7_arp.cc.o.d"
  "bench_e7_arp"
  "bench_e7_arp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_arp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
