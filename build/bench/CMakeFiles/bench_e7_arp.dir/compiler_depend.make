# Empty compiler generated dependencies file for bench_e7_arp.
# This may be replaced when dependencies are built.
