file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_csma.dir/bench_e8_csma.cc.o"
  "CMakeFiles/bench_e8_csma.dir/bench_e8_csma.cc.o.d"
  "bench_e8_csma"
  "bench_e8_csma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_csma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
