# Empty dependencies file for bench_e2_gateway_load.
# This may be replaced when dependencies are built.
