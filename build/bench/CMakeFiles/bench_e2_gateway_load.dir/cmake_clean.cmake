file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_gateway_load.dir/bench_e2_gateway_load.cc.o"
  "CMakeFiles/bench_e2_gateway_load.dir/bench_e2_gateway_load.cc.o.d"
  "bench_e2_gateway_load"
  "bench_e2_gateway_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_gateway_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
