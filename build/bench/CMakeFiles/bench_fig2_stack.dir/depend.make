# Empty dependencies file for bench_fig2_stack.
# This may be replaced when dependencies are built.
