file(REMOVE_RECURSE
  "CMakeFiles/bench_x1_slow_start.dir/bench_x1_slow_start.cc.o"
  "CMakeFiles/bench_x1_slow_start.dir/bench_x1_slow_start.cc.o.d"
  "bench_x1_slow_start"
  "bench_x1_slow_start.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_x1_slow_start.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
