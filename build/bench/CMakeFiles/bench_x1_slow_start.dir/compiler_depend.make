# Empty compiler generated dependencies file for bench_x1_slow_start.
# This may be replaced when dependencies are built.
