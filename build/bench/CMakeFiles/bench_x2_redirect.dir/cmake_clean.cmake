file(REMOVE_RECURSE
  "CMakeFiles/bench_x2_redirect.dir/bench_x2_redirect.cc.o"
  "CMakeFiles/bench_x2_redirect.dir/bench_x2_redirect.cc.o.d"
  "bench_x2_redirect"
  "bench_x2_redirect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_x2_redirect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
