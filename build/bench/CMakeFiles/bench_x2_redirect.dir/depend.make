# Empty dependencies file for bench_x2_redirect.
# This may be replaced when dependencies are built.
