# Empty compiler generated dependencies file for bench_e5_interrupt_path.
# This may be replaced when dependencies are built.
