file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_interrupt_path.dir/bench_e5_interrupt_path.cc.o"
  "CMakeFiles/bench_e5_interrupt_path.dir/bench_e5_interrupt_path.cc.o.d"
  "bench_e5_interrupt_path"
  "bench_e5_interrupt_path.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_interrupt_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
