file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_tcp_timeout.dir/bench_e3_tcp_timeout.cc.o"
  "CMakeFiles/bench_e3_tcp_timeout.dir/bench_e3_tcp_timeout.cc.o.d"
  "bench_e3_tcp_timeout"
  "bench_e3_tcp_timeout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_tcp_timeout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
