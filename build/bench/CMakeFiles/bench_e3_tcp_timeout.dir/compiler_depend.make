# Empty compiler generated dependencies file for bench_e3_tcp_timeout.
# This may be replaced when dependencies are built.
