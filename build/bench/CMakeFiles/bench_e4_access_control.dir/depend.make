# Empty dependencies file for bench_e4_access_control.
# This may be replaced when dependencies are built.
