# Empty dependencies file for bench_e6_digipeater.
# This may be replaced when dependencies are built.
