file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_digipeater.dir/bench_e6_digipeater.cc.o"
  "CMakeFiles/bench_e6_digipeater.dir/bench_e6_digipeater.cc.o.d"
  "bench_e6_digipeater"
  "bench_e6_digipeater.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_digipeater.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
