file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_netrom.dir/bench_e9_netrom.cc.o"
  "CMakeFiles/bench_e9_netrom.dir/bench_e9_netrom.cc.o.d"
  "bench_e9_netrom"
  "bench_e9_netrom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_netrom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
