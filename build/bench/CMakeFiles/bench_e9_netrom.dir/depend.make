# Empty dependencies file for bench_e9_netrom.
# This may be replaced when dependencies are built.
