file(REMOVE_RECURSE
  "CMakeFiles/bench_x5_vc_mode.dir/bench_x5_vc_mode.cc.o"
  "CMakeFiles/bench_x5_vc_mode.dir/bench_x5_vc_mode.cc.o.d"
  "bench_x5_vc_mode"
  "bench_x5_vc_mode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_x5_vc_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
