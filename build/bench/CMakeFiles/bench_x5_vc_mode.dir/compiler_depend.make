# Empty compiler generated dependencies file for bench_x5_vc_mode.
# This may be replaced when dependencies are built.
