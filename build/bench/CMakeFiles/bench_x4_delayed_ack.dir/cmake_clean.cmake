file(REMOVE_RECURSE
  "CMakeFiles/bench_x4_delayed_ack.dir/bench_x4_delayed_ack.cc.o"
  "CMakeFiles/bench_x4_delayed_ack.dir/bench_x4_delayed_ack.cc.o.d"
  "bench_x4_delayed_ack"
  "bench_x4_delayed_ack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_x4_delayed_ack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
