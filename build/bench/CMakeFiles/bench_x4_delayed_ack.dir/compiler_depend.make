# Empty compiler generated dependencies file for bench_x4_delayed_ack.
# This may be replaced when dependencies are built.
