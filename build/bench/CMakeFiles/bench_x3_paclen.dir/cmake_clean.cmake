file(REMOVE_RECURSE
  "CMakeFiles/bench_x3_paclen.dir/bench_x3_paclen.cc.o"
  "CMakeFiles/bench_x3_paclen.dir/bench_x3_paclen.cc.o.d"
  "bench_x3_paclen"
  "bench_x3_paclen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_x3_paclen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
