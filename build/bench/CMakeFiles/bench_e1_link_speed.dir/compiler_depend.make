# Empty compiler generated dependencies file for bench_e1_link_speed.
# This may be replaced when dependencies are built.
