# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(uprsim_ping_smoke "/root/repo/build/tools/uprsim" "--pcs" "1" "--workload" "ping" "--duration" "300")
set_tests_properties(uprsim_ping_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;4;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(uprsim_tcp_smoke "/root/repo/build/tools/uprsim" "--pcs" "1" "--workload" "tcp" "--rate" "2400" "--duration" "1200")
set_tests_properties(uprsim_tcp_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(uprsim_telnet_smoke "/root/repo/build/tools/uprsim" "--workload" "telnet" "--duration" "900" "--netstat")
set_tests_properties(uprsim_telnet_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(uprsim_digis_smoke "/root/repo/build/tools/uprsim" "--pcs" "2" "--hosts" "0" "--digis" "1" "--workload" "ping" "--duration" "900")
set_tests_properties(uprsim_digis_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
