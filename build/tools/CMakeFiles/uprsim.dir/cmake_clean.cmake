file(REMOVE_RECURSE
  "CMakeFiles/uprsim.dir/uprsim.cpp.o"
  "CMakeFiles/uprsim.dir/uprsim.cpp.o.d"
  "uprsim"
  "uprsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uprsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
