# Empty dependencies file for uprsim.
# This may be replaced when dependencies are built.
