file(REMOVE_RECURSE
  "CMakeFiles/redirect_test.dir/redirect_test.cc.o"
  "CMakeFiles/redirect_test.dir/redirect_test.cc.o.d"
  "redirect_test"
  "redirect_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redirect_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
