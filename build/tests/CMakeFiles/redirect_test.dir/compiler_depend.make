# Empty compiler generated dependencies file for redirect_test.
# This may be replaced when dependencies are built.
