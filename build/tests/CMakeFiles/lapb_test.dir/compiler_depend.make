# Empty compiler generated dependencies file for lapb_test.
# This may be replaced when dependencies are built.
