file(REMOVE_RECURSE
  "CMakeFiles/lapb_test.dir/lapb_test.cc.o"
  "CMakeFiles/lapb_test.dir/lapb_test.cc.o.d"
  "lapb_test"
  "lapb_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lapb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
