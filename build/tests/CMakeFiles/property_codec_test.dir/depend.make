# Empty dependencies file for property_codec_test.
# This may be replaced when dependencies are built.
