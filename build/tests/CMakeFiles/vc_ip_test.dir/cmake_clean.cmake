file(REMOVE_RECURSE
  "CMakeFiles/vc_ip_test.dir/vc_ip_test.cc.o"
  "CMakeFiles/vc_ip_test.dir/vc_ip_test.cc.o.d"
  "vc_ip_test"
  "vc_ip_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vc_ip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
