file(REMOVE_RECURSE
  "CMakeFiles/property_stack_test.dir/property_stack_test.cc.o"
  "CMakeFiles/property_stack_test.dir/property_stack_test.cc.o.d"
  "property_stack_test"
  "property_stack_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_stack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
