# Empty compiler generated dependencies file for property_stack_test.
# This may be replaced when dependencies are built.
