file(REMOVE_RECURSE
  "CMakeFiles/tnc_test.dir/tnc_test.cc.o"
  "CMakeFiles/tnc_test.dir/tnc_test.cc.o.d"
  "tnc_test"
  "tnc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tnc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
