# Empty compiler generated dependencies file for tnc_test.
# This may be replaced when dependencies are built.
