# Empty compiler generated dependencies file for kiss_test.
# This may be replaced when dependencies are built.
