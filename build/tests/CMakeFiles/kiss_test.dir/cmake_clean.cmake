file(REMOVE_RECURSE
  "CMakeFiles/kiss_test.dir/kiss_test.cc.o"
  "CMakeFiles/kiss_test.dir/kiss_test.cc.o.d"
  "kiss_test"
  "kiss_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kiss_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
