file(REMOVE_RECURSE
  "CMakeFiles/netrom_test.dir/netrom_test.cc.o"
  "CMakeFiles/netrom_test.dir/netrom_test.cc.o.d"
  "netrom_test"
  "netrom_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netrom_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
