
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/netrom_test.cc" "tests/CMakeFiles/netrom_test.dir/netrom_test.cc.o" "gcc" "tests/CMakeFiles/netrom_test.dir/netrom_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/upr_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/scenario/CMakeFiles/upr_scenario.dir/DependInfo.cmake"
  "/root/repo/build/src/tnc/CMakeFiles/upr_tnc.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/upr_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/ether/CMakeFiles/upr_ether.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/upr_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/udp/CMakeFiles/upr_udp.dir/DependInfo.cmake"
  "/root/repo/build/src/gateway/CMakeFiles/upr_gateway.dir/DependInfo.cmake"
  "/root/repo/build/src/netrom/CMakeFiles/upr_netrom.dir/DependInfo.cmake"
  "/root/repo/build/src/driver/CMakeFiles/upr_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/kiss/CMakeFiles/upr_kiss.dir/DependInfo.cmake"
  "/root/repo/build/src/serial/CMakeFiles/upr_serial.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/upr_net.dir/DependInfo.cmake"
  "/root/repo/build/src/ax25/CMakeFiles/upr_ax25.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/upr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/upr_apps_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/upr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
