# Empty compiler generated dependencies file for netrom_test.
# This may be replaced when dependencies are built.
