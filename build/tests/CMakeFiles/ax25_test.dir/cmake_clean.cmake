file(REMOVE_RECURSE
  "CMakeFiles/ax25_test.dir/ax25_test.cc.o"
  "CMakeFiles/ax25_test.dir/ax25_test.cc.o.d"
  "ax25_test"
  "ax25_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ax25_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
