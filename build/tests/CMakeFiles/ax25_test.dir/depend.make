# Empty dependencies file for ax25_test.
# This may be replaced when dependencies are built.
