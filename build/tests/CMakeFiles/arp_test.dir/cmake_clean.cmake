file(REMOVE_RECURSE
  "CMakeFiles/arp_test.dir/arp_test.cc.o"
  "CMakeFiles/arp_test.dir/arp_test.cc.o.d"
  "arp_test"
  "arp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
