file(REMOVE_RECURSE
  "CMakeFiles/ether_test.dir/ether_test.cc.o"
  "CMakeFiles/ether_test.dir/ether_test.cc.o.d"
  "ether_test"
  "ether_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ether_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
