file(REMOVE_RECURSE
  "CMakeFiles/command_tnc_test.dir/command_tnc_test.cc.o"
  "CMakeFiles/command_tnc_test.dir/command_tnc_test.cc.o.d"
  "command_tnc_test"
  "command_tnc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/command_tnc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
