# Empty dependencies file for command_tnc_test.
# This may be replaced when dependencies are built.
