file(REMOVE_RECURSE
  "CMakeFiles/node_shell_test.dir/node_shell_test.cc.o"
  "CMakeFiles/node_shell_test.dir/node_shell_test.cc.o.d"
  "node_shell_test"
  "node_shell_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/node_shell_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
