# Empty dependencies file for node_shell_test.
# This may be replaced when dependencies are built.
