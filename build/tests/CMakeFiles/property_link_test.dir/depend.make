# Empty dependencies file for property_link_test.
# This may be replaced when dependencies are built.
