file(REMOVE_RECURSE
  "CMakeFiles/property_link_test.dir/property_link_test.cc.o"
  "CMakeFiles/property_link_test.dir/property_link_test.cc.o.d"
  "property_link_test"
  "property_link_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_link_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
