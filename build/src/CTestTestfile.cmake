# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("sim")
subdirs("kiss")
subdirs("ax25")
subdirs("serial")
subdirs("radio")
subdirs("tnc")
subdirs("ether")
subdirs("net")
subdirs("driver")
subdirs("tcp")
subdirs("udp")
subdirs("gateway")
subdirs("netrom")
subdirs("apps")
subdirs("scenario")
