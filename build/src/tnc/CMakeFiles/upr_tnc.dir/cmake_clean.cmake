file(REMOVE_RECURSE
  "CMakeFiles/upr_tnc.dir/command_tnc.cc.o"
  "CMakeFiles/upr_tnc.dir/command_tnc.cc.o.d"
  "CMakeFiles/upr_tnc.dir/kiss_tnc.cc.o"
  "CMakeFiles/upr_tnc.dir/kiss_tnc.cc.o.d"
  "libupr_tnc.a"
  "libupr_tnc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upr_tnc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
