file(REMOVE_RECURSE
  "libupr_tnc.a"
)
