# Empty compiler generated dependencies file for upr_tnc.
# This may be replaced when dependencies are built.
