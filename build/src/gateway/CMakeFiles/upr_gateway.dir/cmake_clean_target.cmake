file(REMOVE_RECURSE
  "libupr_gateway.a"
)
