file(REMOVE_RECURSE
  "CMakeFiles/upr_gateway.dir/access_control.cc.o"
  "CMakeFiles/upr_gateway.dir/access_control.cc.o.d"
  "CMakeFiles/upr_gateway.dir/gateway.cc.o"
  "CMakeFiles/upr_gateway.dir/gateway.cc.o.d"
  "libupr_gateway.a"
  "libupr_gateway.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upr_gateway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
