# Empty dependencies file for upr_gateway.
# This may be replaced when dependencies are built.
