# Empty dependencies file for upr_netrom.
# This may be replaced when dependencies are built.
