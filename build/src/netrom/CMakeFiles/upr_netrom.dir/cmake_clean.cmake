file(REMOVE_RECURSE
  "CMakeFiles/upr_netrom.dir/netrom.cc.o"
  "CMakeFiles/upr_netrom.dir/netrom.cc.o.d"
  "CMakeFiles/upr_netrom.dir/netrom_transport.cc.o"
  "CMakeFiles/upr_netrom.dir/netrom_transport.cc.o.d"
  "CMakeFiles/upr_netrom.dir/node_shell.cc.o"
  "CMakeFiles/upr_netrom.dir/node_shell.cc.o.d"
  "libupr_netrom.a"
  "libupr_netrom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upr_netrom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
