file(REMOVE_RECURSE
  "libupr_netrom.a"
)
