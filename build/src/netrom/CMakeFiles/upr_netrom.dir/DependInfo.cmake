
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netrom/netrom.cc" "src/netrom/CMakeFiles/upr_netrom.dir/netrom.cc.o" "gcc" "src/netrom/CMakeFiles/upr_netrom.dir/netrom.cc.o.d"
  "/root/repo/src/netrom/netrom_transport.cc" "src/netrom/CMakeFiles/upr_netrom.dir/netrom_transport.cc.o" "gcc" "src/netrom/CMakeFiles/upr_netrom.dir/netrom_transport.cc.o.d"
  "/root/repo/src/netrom/node_shell.cc" "src/netrom/CMakeFiles/upr_netrom.dir/node_shell.cc.o" "gcc" "src/netrom/CMakeFiles/upr_netrom.dir/node_shell.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/upr_apps_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/upr_net.dir/DependInfo.cmake"
  "/root/repo/build/src/driver/CMakeFiles/upr_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/ax25/CMakeFiles/upr_ax25.dir/DependInfo.cmake"
  "/root/repo/build/src/kiss/CMakeFiles/upr_kiss.dir/DependInfo.cmake"
  "/root/repo/build/src/serial/CMakeFiles/upr_serial.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/upr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/upr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
