file(REMOVE_RECURSE
  "CMakeFiles/upr_apps_codec.dir/line_codec.cc.o"
  "CMakeFiles/upr_apps_codec.dir/line_codec.cc.o.d"
  "libupr_apps_codec.a"
  "libupr_apps_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upr_apps_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
