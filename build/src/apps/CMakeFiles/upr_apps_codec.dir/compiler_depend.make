# Empty compiler generated dependencies file for upr_apps_codec.
# This may be replaced when dependencies are built.
