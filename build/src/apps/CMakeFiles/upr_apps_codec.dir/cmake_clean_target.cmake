file(REMOVE_RECURSE
  "libupr_apps_codec.a"
)
