
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/app_gateway.cc" "src/apps/CMakeFiles/upr_apps.dir/app_gateway.cc.o" "gcc" "src/apps/CMakeFiles/upr_apps.dir/app_gateway.cc.o.d"
  "/root/repo/src/apps/bbs.cc" "src/apps/CMakeFiles/upr_apps.dir/bbs.cc.o" "gcc" "src/apps/CMakeFiles/upr_apps.dir/bbs.cc.o.d"
  "/root/repo/src/apps/beacon.cc" "src/apps/CMakeFiles/upr_apps.dir/beacon.cc.o" "gcc" "src/apps/CMakeFiles/upr_apps.dir/beacon.cc.o.d"
  "/root/repo/src/apps/callbook.cc" "src/apps/CMakeFiles/upr_apps.dir/callbook.cc.o" "gcc" "src/apps/CMakeFiles/upr_apps.dir/callbook.cc.o.d"
  "/root/repo/src/apps/ftp.cc" "src/apps/CMakeFiles/upr_apps.dir/ftp.cc.o" "gcc" "src/apps/CMakeFiles/upr_apps.dir/ftp.cc.o.d"
  "/root/repo/src/apps/smtp.cc" "src/apps/CMakeFiles/upr_apps.dir/smtp.cc.o" "gcc" "src/apps/CMakeFiles/upr_apps.dir/smtp.cc.o.d"
  "/root/repo/src/apps/telnet.cc" "src/apps/CMakeFiles/upr_apps.dir/telnet.cc.o" "gcc" "src/apps/CMakeFiles/upr_apps.dir/telnet.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/upr_apps_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/upr_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/udp/CMakeFiles/upr_udp.dir/DependInfo.cmake"
  "/root/repo/build/src/ax25/CMakeFiles/upr_ax25.dir/DependInfo.cmake"
  "/root/repo/build/src/driver/CMakeFiles/upr_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/upr_net.dir/DependInfo.cmake"
  "/root/repo/build/src/kiss/CMakeFiles/upr_kiss.dir/DependInfo.cmake"
  "/root/repo/build/src/serial/CMakeFiles/upr_serial.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/upr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/upr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
