file(REMOVE_RECURSE
  "libupr_apps.a"
)
