# Empty compiler generated dependencies file for upr_apps.
# This may be replaced when dependencies are built.
