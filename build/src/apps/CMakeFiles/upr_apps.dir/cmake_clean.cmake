file(REMOVE_RECURSE
  "CMakeFiles/upr_apps.dir/app_gateway.cc.o"
  "CMakeFiles/upr_apps.dir/app_gateway.cc.o.d"
  "CMakeFiles/upr_apps.dir/bbs.cc.o"
  "CMakeFiles/upr_apps.dir/bbs.cc.o.d"
  "CMakeFiles/upr_apps.dir/beacon.cc.o"
  "CMakeFiles/upr_apps.dir/beacon.cc.o.d"
  "CMakeFiles/upr_apps.dir/callbook.cc.o"
  "CMakeFiles/upr_apps.dir/callbook.cc.o.d"
  "CMakeFiles/upr_apps.dir/ftp.cc.o"
  "CMakeFiles/upr_apps.dir/ftp.cc.o.d"
  "CMakeFiles/upr_apps.dir/smtp.cc.o"
  "CMakeFiles/upr_apps.dir/smtp.cc.o.d"
  "CMakeFiles/upr_apps.dir/telnet.cc.o"
  "CMakeFiles/upr_apps.dir/telnet.cc.o.d"
  "libupr_apps.a"
  "libupr_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upr_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
