file(REMOVE_RECURSE
  "libupr_sim.a"
)
