# Empty dependencies file for upr_sim.
# This may be replaced when dependencies are built.
