file(REMOVE_RECURSE
  "CMakeFiles/upr_sim.dir/simulator.cc.o"
  "CMakeFiles/upr_sim.dir/simulator.cc.o.d"
  "libupr_sim.a"
  "libupr_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upr_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
