# Empty dependencies file for upr_util.
# This may be replaced when dependencies are built.
