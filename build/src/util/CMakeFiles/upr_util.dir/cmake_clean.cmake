file(REMOVE_RECURSE
  "CMakeFiles/upr_util.dir/byte_buffer.cc.o"
  "CMakeFiles/upr_util.dir/byte_buffer.cc.o.d"
  "CMakeFiles/upr_util.dir/crc.cc.o"
  "CMakeFiles/upr_util.dir/crc.cc.o.d"
  "CMakeFiles/upr_util.dir/logging.cc.o"
  "CMakeFiles/upr_util.dir/logging.cc.o.d"
  "CMakeFiles/upr_util.dir/random.cc.o"
  "CMakeFiles/upr_util.dir/random.cc.o.d"
  "CMakeFiles/upr_util.dir/stats.cc.o"
  "CMakeFiles/upr_util.dir/stats.cc.o.d"
  "libupr_util.a"
  "libupr_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upr_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
