file(REMOVE_RECURSE
  "libupr_util.a"
)
