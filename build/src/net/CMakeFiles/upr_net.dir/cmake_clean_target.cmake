file(REMOVE_RECURSE
  "libupr_net.a"
)
