# Empty compiler generated dependencies file for upr_net.
# This may be replaced when dependencies are built.
