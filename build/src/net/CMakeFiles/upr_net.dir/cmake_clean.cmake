file(REMOVE_RECURSE
  "CMakeFiles/upr_net.dir/arp.cc.o"
  "CMakeFiles/upr_net.dir/arp.cc.o.d"
  "CMakeFiles/upr_net.dir/hw_address.cc.o"
  "CMakeFiles/upr_net.dir/hw_address.cc.o.d"
  "CMakeFiles/upr_net.dir/icmp.cc.o"
  "CMakeFiles/upr_net.dir/icmp.cc.o.d"
  "CMakeFiles/upr_net.dir/ip_address.cc.o"
  "CMakeFiles/upr_net.dir/ip_address.cc.o.d"
  "CMakeFiles/upr_net.dir/ipv4.cc.o"
  "CMakeFiles/upr_net.dir/ipv4.cc.o.d"
  "CMakeFiles/upr_net.dir/netstack.cc.o"
  "CMakeFiles/upr_net.dir/netstack.cc.o.d"
  "CMakeFiles/upr_net.dir/routing.cc.o"
  "CMakeFiles/upr_net.dir/routing.cc.o.d"
  "libupr_net.a"
  "libupr_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upr_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
