
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/arp.cc" "src/net/CMakeFiles/upr_net.dir/arp.cc.o" "gcc" "src/net/CMakeFiles/upr_net.dir/arp.cc.o.d"
  "/root/repo/src/net/hw_address.cc" "src/net/CMakeFiles/upr_net.dir/hw_address.cc.o" "gcc" "src/net/CMakeFiles/upr_net.dir/hw_address.cc.o.d"
  "/root/repo/src/net/icmp.cc" "src/net/CMakeFiles/upr_net.dir/icmp.cc.o" "gcc" "src/net/CMakeFiles/upr_net.dir/icmp.cc.o.d"
  "/root/repo/src/net/ip_address.cc" "src/net/CMakeFiles/upr_net.dir/ip_address.cc.o" "gcc" "src/net/CMakeFiles/upr_net.dir/ip_address.cc.o.d"
  "/root/repo/src/net/ipv4.cc" "src/net/CMakeFiles/upr_net.dir/ipv4.cc.o" "gcc" "src/net/CMakeFiles/upr_net.dir/ipv4.cc.o.d"
  "/root/repo/src/net/netstack.cc" "src/net/CMakeFiles/upr_net.dir/netstack.cc.o" "gcc" "src/net/CMakeFiles/upr_net.dir/netstack.cc.o.d"
  "/root/repo/src/net/routing.cc" "src/net/CMakeFiles/upr_net.dir/routing.cc.o" "gcc" "src/net/CMakeFiles/upr_net.dir/routing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/upr_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/upr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ax25/CMakeFiles/upr_ax25.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
