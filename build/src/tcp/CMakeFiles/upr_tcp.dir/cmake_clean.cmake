file(REMOVE_RECURSE
  "CMakeFiles/upr_tcp.dir/tcp.cc.o"
  "CMakeFiles/upr_tcp.dir/tcp.cc.o.d"
  "libupr_tcp.a"
  "libupr_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upr_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
