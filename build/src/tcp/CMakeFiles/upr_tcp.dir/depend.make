# Empty dependencies file for upr_tcp.
# This may be replaced when dependencies are built.
