file(REMOVE_RECURSE
  "libupr_tcp.a"
)
