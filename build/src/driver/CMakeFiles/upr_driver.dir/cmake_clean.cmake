file(REMOVE_RECURSE
  "CMakeFiles/upr_driver.dir/packet_radio_interface.cc.o"
  "CMakeFiles/upr_driver.dir/packet_radio_interface.cc.o.d"
  "CMakeFiles/upr_driver.dir/vc_ip_interface.cc.o"
  "CMakeFiles/upr_driver.dir/vc_ip_interface.cc.o.d"
  "libupr_driver.a"
  "libupr_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upr_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
