file(REMOVE_RECURSE
  "libupr_driver.a"
)
