# Empty dependencies file for upr_driver.
# This may be replaced when dependencies are built.
