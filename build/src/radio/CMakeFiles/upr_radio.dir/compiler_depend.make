# Empty compiler generated dependencies file for upr_radio.
# This may be replaced when dependencies are built.
