file(REMOVE_RECURSE
  "CMakeFiles/upr_radio.dir/channel.cc.o"
  "CMakeFiles/upr_radio.dir/channel.cc.o.d"
  "CMakeFiles/upr_radio.dir/csma_mac.cc.o"
  "CMakeFiles/upr_radio.dir/csma_mac.cc.o.d"
  "CMakeFiles/upr_radio.dir/digipeater.cc.o"
  "CMakeFiles/upr_radio.dir/digipeater.cc.o.d"
  "libupr_radio.a"
  "libupr_radio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upr_radio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
