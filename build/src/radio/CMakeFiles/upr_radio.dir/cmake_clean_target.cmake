file(REMOVE_RECURSE
  "libupr_radio.a"
)
