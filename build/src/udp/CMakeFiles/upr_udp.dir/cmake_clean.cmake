file(REMOVE_RECURSE
  "CMakeFiles/upr_udp.dir/udp.cc.o"
  "CMakeFiles/upr_udp.dir/udp.cc.o.d"
  "libupr_udp.a"
  "libupr_udp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upr_udp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
