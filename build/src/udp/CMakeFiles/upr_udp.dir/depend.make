# Empty dependencies file for upr_udp.
# This may be replaced when dependencies are built.
