file(REMOVE_RECURSE
  "libupr_udp.a"
)
