# CMake generated Testfile for 
# Source directory: /root/repo/src/ax25
# Build directory: /root/repo/build/src/ax25
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
