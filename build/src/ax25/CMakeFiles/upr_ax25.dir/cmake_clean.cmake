file(REMOVE_RECURSE
  "CMakeFiles/upr_ax25.dir/address.cc.o"
  "CMakeFiles/upr_ax25.dir/address.cc.o.d"
  "CMakeFiles/upr_ax25.dir/frame.cc.o"
  "CMakeFiles/upr_ax25.dir/frame.cc.o.d"
  "CMakeFiles/upr_ax25.dir/lapb.cc.o"
  "CMakeFiles/upr_ax25.dir/lapb.cc.o.d"
  "libupr_ax25.a"
  "libupr_ax25.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upr_ax25.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
