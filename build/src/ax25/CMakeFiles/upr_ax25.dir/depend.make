# Empty dependencies file for upr_ax25.
# This may be replaced when dependencies are built.
