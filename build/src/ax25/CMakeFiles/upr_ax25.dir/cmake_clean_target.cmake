file(REMOVE_RECURSE
  "libupr_ax25.a"
)
