# Empty compiler generated dependencies file for upr_scenario.
# This may be replaced when dependencies are built.
