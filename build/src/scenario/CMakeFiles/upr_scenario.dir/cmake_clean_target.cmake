file(REMOVE_RECURSE
  "libupr_scenario.a"
)
