file(REMOVE_RECURSE
  "CMakeFiles/upr_scenario.dir/monitor.cc.o"
  "CMakeFiles/upr_scenario.dir/monitor.cc.o.d"
  "CMakeFiles/upr_scenario.dir/netstat.cc.o"
  "CMakeFiles/upr_scenario.dir/netstat.cc.o.d"
  "CMakeFiles/upr_scenario.dir/testbed.cc.o"
  "CMakeFiles/upr_scenario.dir/testbed.cc.o.d"
  "libupr_scenario.a"
  "libupr_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upr_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
