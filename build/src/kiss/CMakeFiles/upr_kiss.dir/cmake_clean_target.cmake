file(REMOVE_RECURSE
  "libupr_kiss.a"
)
