# Empty dependencies file for upr_kiss.
# This may be replaced when dependencies are built.
