file(REMOVE_RECURSE
  "CMakeFiles/upr_kiss.dir/kiss.cc.o"
  "CMakeFiles/upr_kiss.dir/kiss.cc.o.d"
  "libupr_kiss.a"
  "libupr_kiss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upr_kiss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
