file(REMOVE_RECURSE
  "CMakeFiles/upr_serial.dir/serial_line.cc.o"
  "CMakeFiles/upr_serial.dir/serial_line.cc.o.d"
  "libupr_serial.a"
  "libupr_serial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upr_serial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
