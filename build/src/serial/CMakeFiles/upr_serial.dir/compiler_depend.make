# Empty compiler generated dependencies file for upr_serial.
# This may be replaced when dependencies are built.
