file(REMOVE_RECURSE
  "libupr_serial.a"
)
