file(REMOVE_RECURSE
  "CMakeFiles/upr_ether.dir/ethernet.cc.o"
  "CMakeFiles/upr_ether.dir/ethernet.cc.o.d"
  "libupr_ether.a"
  "libupr_ether.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upr_ether.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
