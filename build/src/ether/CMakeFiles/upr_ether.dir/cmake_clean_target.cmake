file(REMOVE_RECURSE
  "libupr_ether.a"
)
