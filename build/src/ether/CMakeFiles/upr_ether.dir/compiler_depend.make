# Empty compiler generated dependencies file for upr_ether.
# This may be replaced when dependencies are built.
