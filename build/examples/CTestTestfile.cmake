# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart_smoke "/root/repo/build/examples/example_quickstart")
set_tests_properties(example_quickstart_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_gateway_demo_smoke "/root/repo/build/examples/example_gateway_demo")
set_tests_properties(example_gateway_demo_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_bbs_demo_smoke "/root/repo/build/examples/example_bbs_demo")
set_tests_properties(example_bbs_demo_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_callbook_demo_smoke "/root/repo/build/examples/example_callbook_demo")
set_tests_properties(example_callbook_demo_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_netrom_backbone_smoke "/root/repo/build/examples/example_netrom_backbone")
set_tests_properties(example_netrom_backbone_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_terminal_demo_smoke "/root/repo/build/examples/example_terminal_demo")
set_tests_properties(example_terminal_demo_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
