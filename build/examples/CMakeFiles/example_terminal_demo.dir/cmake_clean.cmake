file(REMOVE_RECURSE
  "CMakeFiles/example_terminal_demo.dir/terminal_demo.cpp.o"
  "CMakeFiles/example_terminal_demo.dir/terminal_demo.cpp.o.d"
  "example_terminal_demo"
  "example_terminal_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_terminal_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
