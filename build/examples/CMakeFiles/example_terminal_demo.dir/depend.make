# Empty dependencies file for example_terminal_demo.
# This may be replaced when dependencies are built.
