# Empty compiler generated dependencies file for example_netrom_backbone.
# This may be replaced when dependencies are built.
