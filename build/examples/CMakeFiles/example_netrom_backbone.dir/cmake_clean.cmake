file(REMOVE_RECURSE
  "CMakeFiles/example_netrom_backbone.dir/netrom_backbone.cpp.o"
  "CMakeFiles/example_netrom_backbone.dir/netrom_backbone.cpp.o.d"
  "example_netrom_backbone"
  "example_netrom_backbone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_netrom_backbone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
