# Empty compiler generated dependencies file for example_gateway_demo.
# This may be replaced when dependencies are built.
