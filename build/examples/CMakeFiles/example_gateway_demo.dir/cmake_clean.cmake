file(REMOVE_RECURSE
  "CMakeFiles/example_gateway_demo.dir/gateway_demo.cpp.o"
  "CMakeFiles/example_gateway_demo.dir/gateway_demo.cpp.o.d"
  "example_gateway_demo"
  "example_gateway_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_gateway_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
