# Empty dependencies file for example_callbook_demo.
# This may be replaced when dependencies are built.
