file(REMOVE_RECURSE
  "CMakeFiles/example_callbook_demo.dir/callbook_demo.cpp.o"
  "CMakeFiles/example_callbook_demo.dir/callbook_demo.cpp.o.d"
  "example_callbook_demo"
  "example_callbook_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_callbook_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
