# Empty dependencies file for example_bbs_demo.
# This may be replaced when dependencies are built.
