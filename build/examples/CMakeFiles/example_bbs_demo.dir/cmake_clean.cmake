file(REMOVE_RECURSE
  "CMakeFiles/example_bbs_demo.dir/bbs_demo.cpp.o"
  "CMakeFiles/example_bbs_demo.dir/bbs_demo.cpp.o.d"
  "example_bbs_demo"
  "example_bbs_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_bbs_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
