#include "tools/benchdiff_core.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

namespace upr {
namespace benchdiff {

namespace {

void Note(std::string* report, const std::string& line) {
  *report += "  ";
  *report += line;
  *report += '\n';
}

std::string Describe(const json::Value& v) {
  switch (v.kind) {
    case json::Value::Kind::kNull:
      return "null";
    case json::Value::Kind::kBool:
      return v.boolean ? "true" : "false";
    case json::Value::Kind::kNumber:
      return v.raw;
    case json::Value::Kind::kString:
      return "\"" + v.str + "\"";
    case json::Value::Kind::kArray:
      return "<array>";
    case json::Value::Kind::kObject:
      return "<object>";
  }
  return "<?>";
}

bool NumbersClose(double a, double b) {
  if (a == b) {
    return true;
  }
  double diff = std::fabs(a - b);
  double scale = std::fmax(std::fabs(a), std::fabs(b));
  return diff <= 1e-12 || diff <= 1e-9 * scale;
}

// Exact-class scalar equality: used for params and sim metrics.
bool ScalarEqual(const json::Value& a, const json::Value& b) {
  if (a.kind != b.kind) {
    return false;
  }
  switch (a.kind) {
    case json::Value::Kind::kNumber:
      if (a.is_integer_token() && b.is_integer_token()) {
        return std::strtoll(a.raw.c_str(), nullptr, 10) ==
               std::strtoll(b.raw.c_str(), nullptr, 10);
      }
      return NumbersClose(a.number, b.number);
    case json::Value::Kind::kString:
      return a.str == b.str;
    case json::Value::Kind::kBool:
      return a.boolean == b.boolean;
    case json::Value::Kind::kNull:
      return true;
    default:
      return false;
  }
}

// Key-set + value comparison of a flat object ("params" or "sim").
bool CompareFlatObject(const char* what, const json::Value* base,
                       const json::Value* cur, const char* stale_hint,
                       std::string* report) {
  bool ok = true;
  if (base == nullptr || cur == nullptr || !base->is_object() ||
      !cur->is_object()) {
    if ((base != nullptr && base->is_object() && !base->members.empty()) ||
        (cur != nullptr && cur->is_object() && !cur->members.empty())) {
      Note(report, std::string(what) + ": section missing or malformed");
      return false;
    }
    return true;
  }
  for (const auto& [key, bv] : base->members) {
    const json::Value* cv = cur->Find(key);
    if (cv == nullptr) {
      Note(report, std::string(what) + "." + key + ": missing from current run" +
                       stale_hint);
      ok = false;
      continue;
    }
    if (!ScalarEqual(bv, *cv)) {
      Note(report, std::string(what) + "." + key + ": baseline " + Describe(bv) +
                       " != current " + Describe(*cv) + stale_hint);
      ok = false;
    }
  }
  for (const auto& [key, cv] : cur->members) {
    (void)cv;
    if (base->Find(key) == nullptr) {
      Note(report,
           std::string(what) + "." + key + ": new key not in baseline" + stale_hint);
      ok = false;
    }
  }
  return ok;
}

const json::Value* FindTable(const json::Value& tables, const std::string& title) {
  for (const auto& t : tables.items) {
    const json::Value* tt = t.Find("title");
    if (tt != nullptr && tt->is_string() && tt->str == title) {
      return &t;
    }
  }
  return nullptr;
}

bool StringArraysEqual(const json::Value& a, const json::Value& b) {
  if (!a.is_array() || !b.is_array() || a.items.size() != b.items.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.items.size(); ++i) {
    if (!a.items[i].is_string() || !b.items[i].is_string() ||
        a.items[i].str != b.items[i].str) {
      return false;
    }
  }
  return true;
}

bool CompareTables(const json::Value& base, const json::Value& cur,
                   std::string* report) {
  const json::Value* bt = base.Find("tables");
  const json::Value* ct = cur.Find("tables");
  if (bt == nullptr || ct == nullptr || !bt->is_array() || !ct->is_array()) {
    if (bt != nullptr && bt->is_array() && !bt->items.empty()) {
      Note(report, "tables: section missing from current run");
      return false;
    }
    return true;
  }
  bool ok = true;
  for (const auto& table : bt->items) {
    const json::Value* title_v = table.Find("title");
    std::string title =
        title_v != nullptr && title_v->is_string() ? title_v->str : "<untitled>";
    const json::Value* other = FindTable(*ct, title);
    if (other == nullptr) {
      Note(report, "table \"" + title + "\": missing from current run");
      ok = false;
      continue;
    }
    const json::Value* kind_v = table.Find("kind");
    bool sim_table =
        kind_v == nullptr || !kind_v->is_string() || kind_v->str == "sim";
    const json::Value* bcols = table.Find("cols");
    const json::Value* ccols = other->Find("cols");
    if (bcols == nullptr || ccols == nullptr ||
        !StringArraysEqual(*bcols, *ccols)) {
      Note(report, "table \"" + title + "\": column set changed (stale baseline?)");
      ok = false;
      continue;
    }
    const json::Value* brows = table.Find("rows");
    const json::Value* crows = other->Find("rows");
    std::size_t bn = brows != nullptr && brows->is_array() ? brows->items.size() : 0;
    std::size_t cn = crows != nullptr && crows->is_array() ? crows->items.size() : 0;
    if (bn != cn) {
      Note(report, "table \"" + title + "\": row count " + std::to_string(bn) +
                       " -> " + std::to_string(cn));
      ok = false;
      continue;
    }
    if (!sim_table) {
      continue;  // wall tables: shape only, timings live in "wall"
    }
    for (std::size_t r = 0; r < bn; ++r) {
      const json::Value& brow = brows->items[r];
      const json::Value& crow = crows->items[r];
      if (!brow.is_array() || !crow.is_array() ||
          brow.items.size() != crow.items.size()) {
        Note(report, "table \"" + title + "\" row " + std::to_string(r) +
                         ": cell count changed");
        ok = false;
        continue;
      }
      for (std::size_t c = 0; c < brow.items.size(); ++c) {
        const std::string& bs = brow.items[c].str;
        const std::string& cs = crow.items[c].str;
        if (bs != cs) {
          Note(report, "table \"" + title + "\" row " + std::to_string(r) +
                           " col " + std::to_string(c) + ": \"" + bs +
                           "\" != \"" + cs + "\"");
          ok = false;
        }
      }
    }
  }
  return ok;
}

bool CompareWall(const json::Value& base, const json::Value& cur,
                 const Options& opt, std::string* report) {
  const json::Value* bw = base.Find("wall");
  const json::Value* cw = cur.Find("wall");
  if (bw == nullptr || !bw->is_object()) {
    return true;
  }
  bool ok = true;
  for (const auto& [name, metric] : bw->members) {
    const json::Value* bval = metric.Find("value");
    const json::Value* better = metric.Find("better");
    if (bval == nullptr || !bval->is_number()) {
      continue;
    }
    const json::Value* cm = cw != nullptr ? cw->Find(name) : nullptr;
    const json::Value* cval = cm != nullptr ? cm->Find("value") : nullptr;
    if (cval == nullptr || !cval->is_number()) {
      Note(report, "wall." + name + ": missing from current run");
      ok = false;
      continue;
    }
    bool higher = better != nullptr && better->is_string() && better->str == "higher";
    double b = bval->number;
    double c = cval->number;
    char buf[160];
    if (higher) {
      double floor = b / (1.0 + opt.wall_tol);
      if (c < floor) {
        std::snprintf(buf, sizeof(buf),
                      "wall.%s: %.4g below tolerance floor %.4g (baseline %.4g, "
                      "tol %.0f%%)",
                      name.c_str(), c, floor, b, opt.wall_tol * 100);
        Note(report, buf);
        ok = false;
      }
    } else {
      double ceil = b * (1.0 + opt.wall_tol);
      if (c > ceil) {
        std::snprintf(buf, sizeof(buf),
                      "wall.%s: %.4g above tolerance ceiling %.4g (baseline %.4g, "
                      "tol %.0f%%)",
                      name.c_str(), c, ceil, b, opt.wall_tol * 100);
        Note(report, buf);
        ok = false;
      }
    }
  }
  return ok;
}

}  // namespace

bool CompareDocs(const json::Value& baseline, const json::Value& current,
                 const Options& opt, std::string* report) {
  const char* kStale = " (scenario changed? regenerate bench/baselines)";
  bool ok = true;
  const json::Value* bid = baseline.Find("bench");
  const json::Value* cid = current.Find("bench");
  if (bid == nullptr || cid == nullptr || !bid->is_string() ||
      !cid->is_string() || bid->str != cid->str) {
    Note(report, "bench id mismatch: baseline " +
                     (bid != nullptr ? Describe(*bid) : "<missing>") +
                     " vs current " +
                     (cid != nullptr ? Describe(*cid) : "<missing>"));
    return false;
  }
  const json::Value* brc = baseline.Find("exit_code");
  const json::Value* crc = current.Find("exit_code");
  if (brc != nullptr && crc != nullptr && brc->is_number() &&
      crc->is_number() && brc->number != crc->number) {
    Note(report, "exit_code: baseline " + brc->raw + " != current " + crc->raw);
    ok = false;
  }
  const json::Value* bsmoke = baseline.Find("smoke");
  const json::Value* csmoke = current.Find("smoke");
  if (bsmoke != nullptr && csmoke != nullptr &&
      bsmoke->kind == json::Value::Kind::kBool &&
      csmoke->kind == json::Value::Kind::kBool &&
      bsmoke->boolean != csmoke->boolean) {
    Note(report, "smoke flag differs between baseline and current run" +
                     std::string(kStale));
    ok = false;
  }
  if (!CompareFlatObject("params", baseline.Find("params"),
                         current.Find("params"), kStale, report)) {
    ok = false;
  }
  if (!CompareFlatObject("sim", baseline.Find("sim"), current.Find("sim"), "",
                         report)) {
    ok = false;
  }
  if (!CompareTables(baseline, current, report)) {
    ok = false;
  }
  if (!CompareWall(baseline, current, opt, report)) {
    ok = false;
  }
  return ok;
}

bool CompareFiles(const std::string& baseline_path,
                  const std::string& current_path, const Options& opt,
                  std::string* report) {
  auto read = [report](const std::string& path,
                       std::optional<json::Value>* out) {
    std::ifstream f(path, std::ios::binary);
    if (!f) {
      Note(report, "cannot read " + path);
      return false;
    }
    std::ostringstream ss;
    ss << f.rdbuf();
    std::string err;
    *out = json::Parse(ss.str(), &err);
    if (!out->has_value()) {
      Note(report, path + ": JSON parse error: " + err);
      return false;
    }
    return true;
  };
  std::optional<json::Value> base;
  std::optional<json::Value> cur;
  bool ok = read(baseline_path, &base);
  // Read both even if the first fails so the report names every problem.
  if (!read(current_path, &cur)) {
    ok = false;
  }
  if (!ok) {
    return false;
  }
  return CompareDocs(*base, *cur, opt, report);
}

}  // namespace benchdiff
}  // namespace upr
