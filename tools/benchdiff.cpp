// benchdiff — perf-ledger regression gate.
//
// Compares bench-ledger JSON documents (emitted by `bench_* --json <path>`,
// schema in bench/bench_json.h) against checked-in baselines. Deterministic
// simulation metrics must match exactly; wall-clock metrics get a one-sided
// tolerance band. See tools/benchdiff_core.h for the full contract.
//
// Usage:
//   benchdiff [--wall-tol F] <baseline.json> <current.json>
//   benchdiff [--wall-tol F] --dir <baseline-dir> <current-dir>
//
// --dir mode pairs every BENCH_*.json in <baseline-dir> with the same name
// in <current-dir>; a baseline with no current-run counterpart is a failure
// (a bench binary silently dropping out of the ledger must not pass CI).
//
// Exit codes: 0 all within tolerance, 1 regression or missing file,
// 2 usage error.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "tools/benchdiff_core.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: benchdiff [--wall-tol FRAC] <baseline.json> <current.json>\n"
               "       benchdiff [--wall-tol FRAC] --dir <baseline-dir> "
               "<current-dir>\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  upr::benchdiff::Options opt;
  bool dir_mode = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--wall-tol") {
      if (i + 1 >= argc) {
        return Usage();
      }
      char* end = nullptr;
      opt.wall_tol = std::strtod(argv[++i], &end);
      if (end == nullptr || *end != '\0' || opt.wall_tol < 0) {
        std::fprintf(stderr, "benchdiff: bad --wall-tol value\n");
        return Usage();
      }
    } else if (a == "--dir") {
      dir_mode = true;
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "benchdiff: unknown option %s\n", a.c_str());
      return Usage();
    } else {
      paths.push_back(a);
    }
  }
  if (paths.size() != 2) {
    return Usage();
  }

  std::vector<std::pair<std::string, std::string>> pairs;
  if (dir_mode) {
    namespace fs = std::filesystem;
    std::error_code ec;
    std::vector<std::string> names;
    for (const auto& entry : fs::directory_iterator(paths[0], ec)) {
      std::string name = entry.path().filename().string();
      if (name.rfind("BENCH_", 0) == 0 && name.size() > 5 &&
          name.substr(name.size() - 5) == ".json") {
        names.push_back(name);
      }
    }
    if (ec) {
      std::fprintf(stderr, "benchdiff: cannot list %s: %s\n", paths[0].c_str(),
                   ec.message().c_str());
      return 2;
    }
    if (names.empty()) {
      std::fprintf(stderr, "benchdiff: no BENCH_*.json baselines in %s\n",
                   paths[0].c_str());
      return 2;
    }
    std::sort(names.begin(), names.end());
    for (const auto& name : names) {
      pairs.emplace_back(paths[0] + "/" + name, paths[1] + "/" + name);
    }
  } else {
    pairs.emplace_back(paths[0], paths[1]);
  }

  int failures = 0;
  for (const auto& [base, cur] : pairs) {
    std::string report;
    if (upr::benchdiff::CompareFiles(base, cur, opt, &report)) {
      std::printf("ok        %s\n", cur.c_str());
    } else {
      std::printf("REGRESSED %s\n%s", cur.c_str(), report.c_str());
      ++failures;
    }
  }
  if (failures > 0) {
    std::printf("benchdiff: %d of %zu documents regressed (wall tol %.0f%%)\n",
                failures, pairs.size(), opt.wall_tol * 100);
    return 1;
  }
  std::printf("benchdiff: all %zu documents within tolerance (wall tol %.0f%%)\n",
              pairs.size(), opt.wall_tol * 100);
  return 0;
}
