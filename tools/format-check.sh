#!/bin/sh
# clang-format check for CI and pre-push hooks.
#
# By default checks only the C++ files changed since $BASE_REF (or
# origin/main when unset), so the pinned style can be adopted without a
# whole-tree reformat. `--all` checks every tracked C++ file.
#
# Environment:
#   CLANG_FORMAT  binary to use (default: clang-format)
#   BASE_REF      git ref to diff against for the changed-files set
set -eu
cd "$(dirname "$0")/.."

clang_format=${CLANG_FORMAT:-clang-format}
if ! command -v "$clang_format" >/dev/null 2>&1; then
  echo "error: $clang_format not found; set CLANG_FORMAT or install it" >&2
  exit 2
fi

mode=${1:-changed}
if [ "$mode" = "--all" ]; then
  files=$(git ls-files '*.cc' '*.h' '*.cpp')
else
  base=${BASE_REF:-origin/main}
  if ! git rev-parse --verify --quiet "$base" >/dev/null; then
    base=$(git rev-list --max-parents=0 HEAD | tail -n 1)
  fi
  merge_base=$(git merge-base "$base" HEAD 2>/dev/null || echo "$base")
  files=$(git diff --name-only --diff-filter=ACMR "$merge_base" HEAD -- \
    '*.cc' '*.h' '*.cpp')
fi

if [ -z "$files" ]; then
  echo "format-check: no C++ files to check"
  exit 0
fi

status=0
for f in $files; do
  [ -f "$f" ] || continue
  if ! "$clang_format" --dry-run -Werror "$f" 2>/dev/null; then
    echo "needs formatting: $f" >&2
    "$clang_format" --dry-run -Werror "$f" 2>&1 | head -20 >&2 || true
    status=1
  fi
done

if [ "$status" != 0 ]; then
  echo "" >&2
  echo "run: $clang_format -i <file> (style is pinned in .clang-format)" >&2
fi
exit $status
