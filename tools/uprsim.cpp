// uprsim — command-line scenario runner.
//
// Builds the paper's testbed from flags, runs a workload, and prints the
// operator's view: optional live channel monitor, then netstat for every
// host and the gateway's access-control state.
//
//   uprsim --pcs 2 --rate 1200 --workload ping --monitor
//   uprsim --pcs 1 --hosts 1 --workload telnet --duration 1800 --netstat
//   uprsim --pcs 2 --digis 1 --workload tcp --loss 0.1 --access-control
//
// Fault record/replay: --record-faults writes every channel fault decision
// (loss roll, BER draw, collision outcome, p-persistence defer) to a sidecar
// schedule; --replay-faults re-runs the scenario consuming that schedule
// instead of the RNGs, reproducing the original run decision for decision.
//
// Exit status is 0 when the workload completed, 1 when it failed, 2 on a
// usage or file error, 3 when a replay diverged from its schedule.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <memory>
#include <vector>

#include "src/apps/telnet.h"
#include "src/radio/fault_plan.h"
#include "src/scenario/monitor.h"
#include "src/scenario/netstat.h"
#include "src/scenario/testbed.h"
#include "src/scenario/topo_gen.h"
#include "src/scenario/vc_station.h"
#include "src/trace/trace.h"
#include "src/util/logging.h"
#include "src/util/parse.h"

using namespace upr;

namespace {

struct Options {
  std::size_t pcs = 1;
  std::size_t hosts = 1;
  std::size_t digis = 0;
  std::uint64_t rate = 1200;
  double loss = 0.0;
  double ber = 0.0;
  bool tnc_filter = false;
  bool access_control = false;
  bool monitor = false;
  bool netstat = false;
  std::size_t silo = 0;
  double duration = 600.0;
  std::uint64_t seed = 42;
  std::string workload = "ping";
  std::string trace_file;
  std::size_t trace_ring = 512;
  std::size_t trace_snap = 512;
  bool trace_enabled = false;
  std::string record_faults;
  std::string replay_faults;
  std::string event_queue = "wheel";
  std::string ax25 = "2.0";
  std::size_t maxframe = 0;  // 0 = dialect default (4 for 2.0, 127 for 2.2)
  std::string log = "warn";
  std::string topo;             // e.g. "city:8x20"
  topo::CitySpec city_spec;     // validated in ParseOptions
  int parallel = 0;             // 0 = serial sharded merge
  bool unsharded = false;       // pre-shard single-queue reference mode
};

void Usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --pcs N            radio PCs (default 1)\n"
      "  --hosts N          Ethernet hosts (default 1)\n"
      "  --digis N          digipeaters (default 0)\n"
      "  --rate BPS         radio channel bit rate (default 1200)\n"
      "  --loss P           per-frame loss probability (default 0)\n"
      "  --ber B            per-bit error rate (default 0)\n"
      "  --filter           enable the TNC address filter (the paper's fix)\n"
      "  --access-control   enforce the gateway access table (paper 4.3)\n"
      "  --workload W       ping | tcp | telnet | vc (default ping)\n"
      "                     vc: 8 KB TCP transfer between two IP-over-AX.25\n"
      "                     virtual-circuit stations (KA9Q VC mode, LAPB ARQ)\n"
      "  --ax25 V           vc workload AX.25 dialect: 2.0 (default) or 2.2\n"
      "                     (XID negotiation, mod-128 window, SREJ)\n"
      "  --maxframe K       vc workload LAPB window; default 4 for --ax25 2.0,\n"
      "                     127 for --ax25 2.2\n"
      "  --duration SECS    simulated run length (default 600)\n"
      "  --seed S           PRNG seed (default 42)\n"
      "  --silo N           batch serial delivery, N chars per interrupt\n"
      "                     (default 0 = per-character, the paper's DZ)\n"
      "  --log LEVEL        log threshold: trace | debug | info | warn\n"
      "                     (default warn)\n"
      "  --monitor          print decoded channel traffic as it happens\n"
      "  --netstat          print per-host netstat at the end\n"
      "  --trace FILE       record KISS/AX.25 crossings to FILE (pcapng,\n"
      "                     LINKTYPE_AX25_KISS; open it with Wireshark)\n"
      "  --trace-ring N     flight-recorder ring size in events (default 512);\n"
      "                     the ring is dumped when the workload fails\n"
      "  --trace-snap N     bytes of each frame kept (default 512)\n"
      "  --record-faults F  record every channel fault decision to F\n"
      "  --replay-faults F  replay the fault schedule in F instead of\n"
      "                     rolling the channel/MAC RNGs (exit 3 if the\n"
      "                     run diverges from the schedule)\n"
      "  --event-queue Q    simulator event store: wheel (default) or heap\n"
      "                     (the legacy priority queue; check.sh tracediffs\n"
      "                     the two for byte-identical schedules)\n"
      "  --topo city:CxS    run the city-scale AMPRnet generator instead of\n"
      "                     the testbed: C radio channels (1..250) of S\n"
      "                     stations (1..2000) each, one gateway per channel,\n"
      "                     trunk backbone, seeded ping traffic\n"
      "  --parallel N       run the city topology on N worker threads\n"
      "                     (conservative parallel DES; deterministic for a\n"
      "                     fixed seed + thread count)\n"
      "  --unsharded        run the city topology on one shared event queue\n"
      "                     (the pre-shard reference; tracediff gate)\n",
      argv0);
}

// Validated numeric parsing: `--rate abc` used to strtoull to 0 and silently
// run a nonsense scenario; now every malformed or out-of-range value exits 2
// with the usage text.
[[noreturn]] void BadValue(const std::string& flag, const char* value,
                           const char* constraint) {
  std::fprintf(stderr, "invalid value '%s' for %s (expected %s)\n", value,
               flag.c_str(), constraint);
  std::exit(2);
}

bool ParseOptions(int argc, char** argv, Options* opt) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    auto count = [&](std::uint64_t min, std::uint64_t max,
                     const char* constraint) -> std::size_t {
      const char* v = next();
      auto n = ParseU64(v, min, max);
      if (!n) {
        BadValue(arg, v, constraint);
      }
      return static_cast<std::size_t>(*n);
    };
    auto real = [&](double min, double max, const char* constraint) -> double {
      const char* v = next();
      auto d = ParseDouble(v, min, max);
      if (!d) {
        BadValue(arg, v, constraint);
      }
      return *d;
    };
    if (arg == "--pcs") {
      opt->pcs = count(1, 64, "an integer in [1, 64]");
    } else if (arg == "--hosts") {
      opt->hosts = count(0, 64, "an integer in [0, 64]");
    } else if (arg == "--digis") {
      opt->digis = count(0, 16, "an integer in [0, 16]");
    } else if (arg == "--rate") {
      opt->rate = count(1, 10'000'000, "a bit rate in [1, 10000000]");
    } else if (arg == "--loss") {
      opt->loss = real(0.0, 1.0, "a probability in [0, 1]");
    } else if (arg == "--ber") {
      opt->ber = real(0.0, 1.0, "a probability in [0, 1]");
    } else if (arg == "--filter") {
      opt->tnc_filter = true;
    } else if (arg == "--access-control") {
      opt->access_control = true;
    } else if (arg == "--workload") {
      opt->workload = next();
    } else if (arg == "--ax25") {
      opt->ax25 = next();
      if (opt->ax25 != "2.0" && opt->ax25 != "2.2") {
        BadValue(arg, opt->ax25.c_str(), "'2.0' or '2.2'");
      }
    } else if (arg == "--maxframe") {
      opt->maxframe = count(1, 127, "an integer in [1, 127]");
    } else if (arg == "--duration") {
      opt->duration = real(0.001, 1e7, "seconds in [0.001, 1e7]");
    } else if (arg == "--seed") {
      const char* v = next();
      auto n = ParseU64(v);
      if (!n) {
        BadValue(arg, v, "an unsigned 64-bit integer");
      }
      opt->seed = *n;
    } else if (arg == "--silo") {
      opt->silo = count(0, 65536, "an integer in [0, 65536]");
    } else if (arg == "--trace") {
      opt->trace_file = next();
      opt->trace_enabled = true;
    } else if (arg == "--trace-ring") {
      opt->trace_ring = count(1, 100'000'000, "an integer in [1, 1e8]");
      opt->trace_enabled = true;
    } else if (arg == "--trace-snap") {
      opt->trace_snap = count(1, 1'000'000, "an integer in [1, 1e6]");
      opt->trace_enabled = true;
    } else if (arg == "--event-queue") {
      opt->event_queue = next();
      if (opt->event_queue != "wheel" && opt->event_queue != "heap") {
        BadValue(arg, opt->event_queue.c_str(), "'wheel' or 'heap'");
      }
    } else if (arg == "--topo") {
      opt->topo = next();
      std::string error;
      if (!ParseCitySpec(opt->topo, &opt->city_spec, &error)) {
        std::fprintf(stderr, "invalid --topo spec: %s\n", error.c_str());
        return false;
      }
    } else if (arg == "--parallel") {
      opt->parallel = static_cast<int>(count(1, 256, "an integer in [1, 256]"));
    } else if (arg == "--unsharded") {
      opt->unsharded = true;
    } else if (arg == "--record-faults") {
      opt->record_faults = next();
    } else if (arg == "--replay-faults") {
      opt->replay_faults = next();
    } else if (arg == "--log") {
      opt->log = next();
      if (opt->log != "trace" && opt->log != "debug" && opt->log != "info" &&
          opt->log != "warn") {
        BadValue(arg, opt->log.c_str(), "trace | debug | info | warn");
      }
    } else if (arg == "--monitor") {
      opt->monitor = true;
    } else if (arg == "--netstat") {
      opt->netstat = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

// --- IP-over-VC workload -----------------------------------------------------
//
// Two KA9Q-style VC stations (IP over AX.25 connected mode) on one channel,
// one bulk TCP transfer between them. This is the only workload that runs the
// LAPB state machine over the real serial/KISS wire, so check.sh uses it
// (seeded, with --trace) to pin the connected-mode wire format against the
// goldens in tests/golden/.
int RunVcScenario(const Options& opt) {
  if (!opt.record_faults.empty() || !opt.replay_faults.empty()) {
    std::fprintf(stderr, "fault record/replay is not supported for --workload vc\n");
    return 2;
  }
  Simulator::SetDefaultEventQueue(opt.event_queue == "heap"
                                      ? Simulator::EventQueue::kHeap
                                      : Simulator::EventQueue::kTimerWheel);
  Simulator sim;
  RadioChannelConfig rc;
  rc.bit_rate = opt.rate;
  rc.loss_rate = opt.loss;
  rc.bit_error_rate = opt.ber;
  RadioChannel channel(&sim, rc, opt.seed);

  auto station = [&](const char* name, const char* call, IpV4Address ip,
                     std::uint64_t seed) {
    VcStationConfig cfg;
    cfg.name = name;
    cfg.callsign = call;
    cfg.ip = ip;
    cfg.serial_baud = static_cast<std::uint32_t>(opt.rate);
    cfg.link.t1 = Seconds(8);
    cfg.link.n2 = 40;
    if (opt.ax25 == "2.2") {
      cfg.link.dialect = Ax25Dialect::kV22;
      cfg.link.window = 127;
    }
    if (opt.maxframe != 0) {
      cfg.link.window = static_cast<std::uint8_t>(opt.maxframe);
    }
    cfg.tcp.max_retries = 60;
    cfg.seed = seed;
    return std::make_unique<VcStation>(&sim, &channel, cfg);
  };
  auto a = station("vca", "KD7AA", IpV4Address(44, 24, 11, 1), opt.seed + 1);
  auto b = station("vcb", "KD7AB", IpV4Address(44, 24, 11, 2), opt.seed + 2);
  a->vc()->MapIpToCallsign(IpV4Address(44, 24, 11, 2), b->callsign());
  b->vc()->MapIpToCallsign(IpV4Address(44, 24, 11, 1), a->callsign());

  std::unique_ptr<trace::Tracer> tracer;
  std::unique_ptr<trace::ScopedInstall> trace_install;
  if (opt.trace_enabled) {
    trace::TracerConfig tcfg;
    tcfg.ring_capacity = opt.trace_ring;
    tcfg.snaplen = opt.trace_snap;
    tcfg.pcap_path = opt.trace_file;
    tracer = std::make_unique<trace::Tracer>(&sim, tcfg);
    if (!tracer->pcap_ok()) {
      std::fprintf(stderr, "cannot open trace file %s\n", opt.trace_file.c_str());
      return 2;
    }
    trace_install = std::make_unique<trace::ScopedInstall>(tracer.get());
  }
  std::unique_ptr<ChannelMonitor> monitor;
  if (opt.monitor) {
    monitor = std::make_unique<ChannelMonitor>(
        &sim, &channel,
        [](const std::string& line) { std::printf("%s\n", line.c_str()); });
  }

  constexpr std::size_t kBytes = 8 * 1024;
  std::size_t received = 0;
  b->tcp().Listen(5001, [&](TcpConnection* c) {
    c->set_data_handler([&](const Bytes& d) { received += d.size(); });
  });
  TcpConnection* conn = a->tcp().Connect(IpV4Address(44, 24, 11, 2), 5001);
  bool workload_ok = false;
  if (conn != nullptr) {
    conn->set_connected_handler([conn] { conn->Send(Bytes(kBytes, 0x42)); });
    SimTime start = sim.Now();
    while (received < kBytes && sim.Now() < Seconds(opt.duration) && sim.Step()) {
    }
    workload_ok = received >= kBytes;
    if (workload_ok) {
      double secs = ToSeconds(sim.Now() - start);
      std::printf("transferred %zu bytes over VC (%.0f bps goodput, %llu rexmits)\n",
                  received, received * 8.0 / secs,
                  static_cast<unsigned long long>(conn->stats().retransmissions));
    } else {
      std::printf("VC transfer incomplete: %zu/%zu bytes\n", received, kBytes);
    }
  }

  if (tracer != nullptr) {
    tracer->Flush();
    if (!workload_ok) {
      trace::DumpActiveRing(stderr);
    }
  }

  std::printf("\n=== channel ===\n");
  std::printf("transmissions %llu, collisions %llu, utilization %.1f%%\n",
              static_cast<unsigned long long>(channel.transmissions()),
              static_cast<unsigned long long>(channel.collisions()),
              channel.Utilization() * 100.0);
  if (opt.netstat) {
    std::printf("\n%s", FormatNetstat(a->stack()).c_str());
    std::printf("%s", FormatAx25Link(a->vc()->link(), "vca/vc0").c_str());
    std::printf("\n%s", FormatNetstat(b->stack()).c_str());
    std::printf("%s", FormatAx25Link(b->vc()->link(), "vcb/vc0").c_str());
    std::printf("\n%s", FormatBufStats().c_str());
    if (tracer != nullptr) {
      std::printf("\n%s", FormatTrace(*tracer).c_str());
    }
  }
  std::printf("\nworkload vc: %s\n", workload_ok ? "completed" : "FAILED");
  return workload_ok ? 0 : 1;
}

// --- City-scale topology (ISSUE 8) ------------------------------------------
//
// `--topo city:CxS` swaps the testbed for the upr::topo generator: C radio
// channels of S stations behind per-channel gateways and a trunk backbone,
// executed per the sharding mode — one shared queue (--unsharded), the
// default single-thread sharded merge, or conservative parallel DES
// (--parallel N). Tracing: the serial modes write one pcapng through a
// tracer whose clock follows the executing shard; parallel mode writes one
// file per shard (FILE.shard<k>.pcapng), each tracer installed thread-local
// on the shard's worker.
int RunCityScenario(const Options& opt) {
  if (!opt.record_faults.empty() || !opt.replay_faults.empty()) {
    std::fprintf(stderr, "fault record/replay is not supported for --topo\n");
    return 2;
  }
  if (opt.monitor) {
    std::fprintf(stderr, "--monitor is not supported for --topo\n");
    return 2;
  }
  if (opt.parallel > 0 && opt.unsharded) {
    std::fprintf(stderr, "--parallel and --unsharded are exclusive\n");
    return 2;
  }
  Simulator::SetDefaultEventQueue(opt.event_queue == "heap"
                                      ? Simulator::EventQueue::kHeap
                                      : Simulator::EventQueue::kTimerWheel);

  topo::CityConfig cfg;
  cfg.spec = opt.city_spec;
  cfg.mode = opt.unsharded ? ShardSet::Mode::kUnified
             : opt.parallel > 0 ? ShardSet::Mode::kParallel
                                : ShardSet::Mode::kSharded;
  cfg.threads = opt.parallel > 0 ? opt.parallel : 1;
  cfg.seed = opt.seed;
  cfg.radio_bit_rate = opt.rate;
  if (opt.silo > 0) {
    cfg.serial.mode = SerialLineConfig::Mode::kSilo;
    cfg.serial.silo_depth = opt.silo;
  }
  topo::CityTopology city(cfg);
  if (!city.BackboneConnected()) {
    std::fprintf(stderr, "generated backbone is not connected (bug)\n");
    return 1;
  }

  // Tracing. Serial modes: one file, clock override follows the merge
  // cursor. Parallel: one tracer per shard, installed thread_local by the
  // shard-enter hook so concurrent shards never share a tracer.
  std::unique_ptr<trace::Tracer> tracer;
  std::unique_ptr<trace::ScopedInstall> trace_install;
  std::vector<std::unique_ptr<trace::Tracer>> shard_tracers;
  if (opt.trace_enabled) {
    trace::TracerConfig tcfg;
    tcfg.ring_capacity = opt.trace_ring;
    tcfg.snaplen = opt.trace_snap;
    if (cfg.mode != ShardSet::Mode::kParallel) {
      tcfg.pcap_path = opt.trace_file;
      tracer = std::make_unique<trace::Tracer>(city.shards().shard(0), tcfg);
      if (!opt.trace_file.empty() && !tracer->pcap_ok()) {
        std::fprintf(stderr, "cannot open trace file %s\n",
                     opt.trace_file.c_str());
        return 2;
      }
      ShardSet* set = &city.shards();
      tracer->set_clock([set] { return set->CurrentTime(); });
      trace_install = std::make_unique<trace::ScopedInstall>(tracer.get());
    } else {
      std::string base = opt.trace_file;
      const std::string ext = ".pcapng";
      if (base.size() > ext.size() &&
          base.compare(base.size() - ext.size(), ext.size(), ext) == 0) {
        base.resize(base.size() - ext.size());
      }
      for (std::size_t k = 0; k < city.shards().shard_count(); ++k) {
        trace::TracerConfig per = tcfg;
        if (!opt.trace_file.empty()) {
          per.pcap_path = base + ".shard" + std::to_string(k) + ext;
        }
        auto t = std::make_unique<trace::Tracer>(city.shards().shard(k), per);
        if (!per.pcap_path.empty() && !t->pcap_ok()) {
          std::fprintf(stderr, "cannot open trace file %s\n",
                       per.pcap_path.c_str());
          return 2;
        }
        shard_tracers.push_back(std::move(t));
      }
      // Warm the panic-hook registration on the main thread before workers
      // race to Install their shard tracers.
      trace::Install(nullptr);
      auto* tracers = &shard_tracers;
      city.shards().set_shard_enter_hook(
          [tracers](std::size_t k) { trace::Install((*tracers)[k].get()); });
    }
  }

  const std::size_t executed = city.Run(Seconds(opt.duration));

  if (tracer != nullptr) {
    tracer->Flush();
  }
  for (auto& t : shard_tracers) {
    t->Flush();
  }

  const topo::ChannelTraffic total = city.TrafficTotal();
  const bool workload_ok = total.pings_sent > 0 && total.pings_ok > 0;

  std::printf("%s", city.FormatSummary().c_str());
  if (opt.netstat) {
    const ShardStats stats = city.shards().stats();
    std::printf(
        "shards %zu mode %s threads %d lookahead %lld ns\n"
        "events executed %zu scheduled %llu\n"
        "handoffs posted %llu injected %llu ring-overflow %llu windows %llu "
        "merge-steps %llu\n",
        city.shards().shard_count(),
        cfg.mode == ShardSet::Mode::kUnified    ? "unsharded"
        : cfg.mode == ShardSet::Mode::kParallel ? "parallel"
                                                : "sharded",
        city.shards().threads(), static_cast<long long>(city.lookahead()),
        executed,
        static_cast<unsigned long long>(city.shards().TotalEventsScheduled()),
        static_cast<unsigned long long>(stats.posted),
        static_cast<unsigned long long>(stats.injected),
        static_cast<unsigned long long>(stats.ring_overflow),
        static_cast<unsigned long long>(stats.windows),
        static_cast<unsigned long long>(stats.merge_steps));
  }
  std::printf("\nworkload city: %s\n", workload_ok ? "completed" : "FAILED");
  return workload_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!ParseOptions(argc, argv, &opt)) {
    Usage(argv[0]);
    return 2;
  }
  if (opt.log == "trace") {
    SetLogLevel(LogLevel::kTrace);
  } else if (opt.log == "debug") {
    SetLogLevel(LogLevel::kDebug);
  } else if (opt.log == "info") {
    SetLogLevel(LogLevel::kInfo);
  }
  if (opt.pcs == 0) {
    std::fprintf(stderr, "need at least one radio PC\n");
    return 2;
  }
  if (!opt.record_faults.empty() && !opt.replay_faults.empty()) {
    std::fprintf(stderr, "--record-faults and --replay-faults are exclusive\n");
    return 2;
  }
  if (opt.topo.empty() && (opt.parallel > 0 || opt.unsharded)) {
    std::fprintf(stderr, "--parallel/--unsharded need --topo\n");
    return 2;
  }
  if (!opt.topo.empty()) {
    return RunCityScenario(opt);
  }
  if (opt.workload == "vc") {
    return RunVcScenario(opt);
  }

  // Must precede Testbed construction: the simulator picks up the default at
  // construction time.
  Simulator::SetDefaultEventQueue(opt.event_queue == "heap"
                                      ? Simulator::EventQueue::kHeap
                                      : Simulator::EventQueue::kTimerWheel);

  TestbedConfig cfg;
  cfg.radio_pcs = opt.pcs;
  cfg.ether_hosts = opt.hosts;
  cfg.digipeaters = opt.digis;
  cfg.radio_bit_rate = opt.rate;
  cfg.radio_loss_rate = opt.loss;
  cfg.radio_bit_error_rate = opt.ber;
  cfg.tnc_address_filter = opt.tnc_filter;
  cfg.enforce_access_control = opt.access_control;
  cfg.seed = opt.seed;
  if (opt.silo > 0) {
    cfg.serial.mode = SerialLineConfig::Mode::kSilo;
    cfg.serial.silo_depth = opt.silo;
  }
  Testbed tb(cfg);
  tb.PopulateRadioArp();

  // The fault session must be installed before any channel activity so the
  // schedule covers the whole run, frame zero onward.
  std::unique_ptr<fault::Session> faults;
  if (!opt.replay_faults.empty()) {
    std::string error;
    auto schedule = fault::Schedule::LoadFromFile(opt.replay_faults, &error);
    if (!schedule) {
      std::fprintf(stderr, "cannot load fault schedule %s: %s\n",
                   opt.replay_faults.c_str(), error.c_str());
      return 2;
    }
    if (!schedule->meta.empty()) {
      std::printf("replaying fault schedule: %zu decisions (%s)\n",
                  schedule->events.size(), schedule->meta.c_str());
    }
    faults = std::make_unique<fault::Session>(&tb.sim(), std::move(*schedule));
  } else if (!opt.record_faults.empty()) {
    faults = std::make_unique<fault::Session>(&tb.sim());
  }
  std::unique_ptr<fault::ScopedInstall> fault_install;
  if (faults != nullptr) {
    fault_install = std::make_unique<fault::ScopedInstall>(faults.get());
  }

  std::unique_ptr<trace::Tracer> tracer;
  std::unique_ptr<trace::ScopedInstall> trace_install;
  if (opt.trace_enabled) {
    trace::TracerConfig tcfg;
    tcfg.ring_capacity = opt.trace_ring;
    tcfg.snaplen = opt.trace_snap;
    tcfg.pcap_path = opt.trace_file;
    tracer = std::make_unique<trace::Tracer>(&tb.sim(), tcfg);
    if (!tracer->pcap_ok()) {
      std::fprintf(stderr, "cannot open trace file %s\n", opt.trace_file.c_str());
      return 2;
    }
    trace_install = std::make_unique<trace::ScopedInstall>(tracer.get());
  }

  std::unique_ptr<ChannelMonitor> monitor;
  if (opt.monitor) {
    monitor = std::make_unique<ChannelMonitor>(
        &tb.sim(), &tb.channel(),
        [](const std::string& line) { std::printf("%s\n", line.c_str()); });
  }

  bool workload_ok = false;
  std::unique_ptr<TelnetServer> telnetd;
  std::unique_ptr<TelnetClient> telnet;

  IpV4Address target = opt.hosts > 0 ? Testbed::EtherHostIp(0)
                                     : Testbed::RadioPcIp(opt.pcs > 1 ? 1 : 0);

  if (opt.workload == "ping") {
    int replies = 0, wanted = 3;
    std::function<void(int)> ping = [&](int remaining) {
      if (remaining == 0) {
        return;
      }
      tb.pc(0).stack().icmp().Ping(target, 32, [&, remaining](bool ok, SimTime rtt) {
        if (ok) {
          ++replies;
          std::printf("reply from %s: time=%.2f s\n", target.ToString().c_str(),
                      ToSeconds(rtt));
        } else {
          std::printf("ping timed out\n");
        }
        ping(remaining - 1);
      });
    };
    ping(wanted);
    tb.sim().RunUntil(Seconds(opt.duration));
    workload_ok = replies == wanted;
  } else if (opt.workload == "tcp") {
    constexpr std::size_t kBytes = 8 * 1024;
    std::size_t received = 0;
    NetStack* sink_stack;
    Tcp* sink;
    if (opt.hosts > 0) {
      sink = &tb.host(0).tcp();
      sink_stack = &tb.host(0).stack();
    } else {
      sink = &tb.pc(opt.pcs > 1 ? 1 : 0).tcp();
      sink_stack = nullptr;
    }
    (void)sink_stack;
    sink->Listen(5001, [&](TcpConnection* c) {
      c->set_data_handler([&](const Bytes& d) { received += d.size(); });
    });
    TcpConnection* conn = tb.pc(0).tcp().Connect(target, 5001);
    if (conn != nullptr) {
      conn->set_connected_handler([conn] { conn->Send(Bytes(kBytes, 0x42)); });
      SimTime start = tb.sim().Now();
      while (received < kBytes && tb.sim().Now() < Seconds(opt.duration) &&
             tb.sim().Step()) {
      }
      workload_ok = received >= kBytes;
      if (workload_ok) {
        double secs = ToSeconds(tb.sim().Now() - start);
        std::printf("transferred %zu bytes (%.0f bps goodput, %llu rexmits)\n",
                    received, received * 8.0 / secs,
                    static_cast<unsigned long long>(conn->stats().retransmissions));
      } else {
        std::printf("transfer incomplete: %zu/%zu bytes\n", received, kBytes);
      }
    }
  } else if (opt.workload == "telnet") {
    if (opt.hosts == 0) {
      std::fprintf(stderr, "telnet workload needs --hosts >= 1\n");
      return 2;
    }
    telnetd = std::make_unique<TelnetServer>(&tb.host(0).tcp(), "june");
    telnet = std::make_unique<TelnetClient>(&tb.pc(0).tcp());
    bool echoed = false;
    telnet->set_line_handler([&](const std::string& line) {
      std::printf("  [telnet] %s\n", line.c_str());
      if (line.find("73 de uprsim") != std::string::npos) {
        echoed = true;
      }
    });
    telnet->Connect(Testbed::EtherHostIp(0), "operator");
    tb.sim().Schedule(Seconds(opt.duration * 0.4),
                      [&] { telnet->SendCommand("echo 73 de uprsim"); });
    tb.sim().Schedule(Seconds(opt.duration * 0.8), [&] { telnet->Quit(); });
    tb.sim().RunUntil(Seconds(opt.duration));
    workload_ok = echoed;
  } else {
    std::fprintf(stderr, "unknown workload %s\n", opt.workload.c_str());
    return 2;
  }

  if (tracer != nullptr) {
    tracer->Flush();
    if (!workload_ok) {
      trace::DumpActiveRing(stderr);
    }
  }

  bool replay_clean = true;
  if (faults != nullptr) {
    if (!opt.record_faults.empty()) {
      // Stamp the scenario into the schedule so a replay artifact is
      // self-describing.
      char meta[256];
      std::snprintf(meta, sizeof meta,
                    "--pcs %zu --hosts %zu --digis %zu --rate %llu --loss %g "
                    "--ber %g --workload %s --duration %g --seed %llu",
                    opt.pcs, opt.hosts, opt.digis,
                    static_cast<unsigned long long>(opt.rate), opt.loss,
                    opt.ber, opt.workload.c_str(), opt.duration,
                    static_cast<unsigned long long>(opt.seed));
      faults->schedule().meta = meta;
      if (!faults->schedule().SaveToFile(opt.record_faults)) {
        std::fprintf(stderr, "cannot write fault schedule %s\n",
                     opt.record_faults.c_str());
        return 2;
      }
      std::printf("recorded fault schedule: %zu decisions -> %s\n",
                  faults->schedule().events.size(), opt.record_faults.c_str());
    } else {
      replay_clean = faults->ReplayClean();
      std::printf("replay %s: %llu decisions replayed, %llu mismatches, "
                  "%llu past end, %zu unused\n",
                  replay_clean ? "clean" : "DIVERGED",
                  static_cast<unsigned long long>(faults->stats().replayed),
                  static_cast<unsigned long long>(faults->stats().mismatches),
                  static_cast<unsigned long long>(faults->stats().exhausted),
                  faults->remaining());
      for (const std::string& p : faults->problems()) {
        std::fprintf(stderr, "replay divergence: %s\n", p.c_str());
      }
    }
  }

  std::printf("\n=== channel ===\n");
  std::printf("transmissions %llu, collisions %llu, utilization %.1f%%\n",
              static_cast<unsigned long long>(tb.channel().transmissions()),
              static_cast<unsigned long long>(tb.channel().collisions()),
              tb.channel().Utilization() * 100.0);

  if (opt.netstat) {
    std::printf("\n%s", FormatNetstat(tb.gateway().stack()).c_str());
    std::printf("%s", FormatGateway(tb.gateway().gateway()).c_str());
    std::printf("%s", FormatSerial(tb.gateway().serial(), "microvax dz0").c_str());
    std::printf("%s", FormatDriverStats(*tb.gateway().radio_if()).c_str());
    for (std::size_t i = 0; i < opt.pcs; ++i) {
      std::printf("\n%s", FormatNetstat(tb.pc(i).stack()).c_str());
      std::printf("%s", FormatSerial(tb.pc(i).serial(),
                                     "pc" + std::to_string(i) + " com0").c_str());
      std::printf("%s", FormatDriverStats(*tb.pc(i).radio_if()).c_str());
    }
    std::printf("\n%s", FormatBufStats().c_str());
    if (tracer != nullptr) {
      std::printf("\n%s", FormatTrace(*tracer).c_str());
    }
    if (faults != nullptr) {
      std::printf("\n%s", FormatFaults(*faults).c_str());
    }
    std::printf("\n%s", FormatSimulator(tb.sim()).c_str());
  }

  std::printf("\nworkload %s: %s\n", opt.workload.c_str(),
              workload_ok ? "completed" : "FAILED");
  if (!replay_clean) {
    return 3;
  }
  return workload_ok ? 0 : 1;
}
