#!/bin/sh
# Perf-ledger runner: executes every bench binary with `--json` and collects
# the documents as BENCH_<id>.json in one directory, ready for benchdiff
# against the checked-in baselines in bench/baselines/.
#
# Usage: tools/bench_ledger.sh <builddir> <outdir> [--smoke]
#   <builddir>  a configured build tree (bench binaries in <builddir>/bench).
#               Baselines are generated from a Release tree — wall metrics
#               from unoptimized builds are not comparable to them.
#   <outdir>    where the BENCH_*.json documents land (created if missing).
#   --smoke     pass --smoke to every bench (CI sanity only; smoke documents
#               carry different params and will NOT diff clean against full
#               baselines).
#
# Any bench exiting nonzero fails the run: several benches (copy-path ratios,
# tracediff throughput, the hotpath frame-rate floor) gate on their own
# acceptance criteria via exit status.
set -eu

if [ $# -lt 2 ]; then
  echo "usage: tools/bench_ledger.sh <builddir> <outdir> [--smoke]" >&2
  exit 2
fi
builddir=$1
outdir=$2
smoke_flag=${3:-}

if [ ! -d "$builddir/bench" ]; then
  echo "bench_ledger: no bench/ directory under $builddir" >&2
  exit 2
fi
mkdir -p "$outdir"

failed=0
count=0
for bin in "$builddir"/bench/bench_*; do
  [ -f "$bin" ] && [ -x "$bin" ] || continue
  name=$(basename "$bin")
  id=${name#bench_}
  out="$outdir/BENCH_$id.json"
  # google-benchmark binaries read their own flags; in smoke mode shorten
  # their measurement window instead of --smoke-scaling the scenario.
  extra=""
  if [ "$name" = "bench_e5_interrupt_path" ] && [ -n "$smoke_flag" ]; then
    extra="--benchmark_min_time=0.01"
  fi
  # shellcheck disable=SC2086
  if ! "$bin" $smoke_flag $extra --json "$out" >"$outdir/$name.out" 2>&1; then
    echo "FAIL: $name exited nonzero (output in $outdir/$name.out)" >&2
    failed=1
  fi
  count=$((count + 1))
done

if [ "$count" -eq 0 ]; then
  echo "bench_ledger: no bench binaries found under $builddir/bench" >&2
  exit 2
fi
if [ "$failed" -ne 0 ]; then
  exit 1
fi
echo "bench_ledger: $count benches -> $outdir"
