// tracediff — structurally diff two pcapng captures of the same seeded
// scenario (see DESIGN.md "Trace-diff architecture").
//
//   tracediff run-a.pcapng run-b.pcapng
//   tracediff --time-tol 100 silo.pcapng perbyte.pcapng
//
// Frames are aligned per interface by sequence, resynchronizing on a
// (length, CRC-16) key after an insertion or deletion. Differences are
// reported at three levels: per-layer/per-port event counts, frame payload
// bytes (first-diff offset plus hexdump context), and timestamp deltas
// against --time-tol.
//
// Exit status: 0 when the captures are equivalent within the tolerance,
// 1 when they diverge, 2 on a usage or file error.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/trace/trace_diff.h"
#include "src/util/parse.h"

using namespace upr;

namespace {

void Usage(const char* argv0) {
  std::printf(
      "usage: %s [options] A.pcapng B.pcapng\n"
      "  --time-tol MS      tolerated per-frame timestamp delta in\n"
      "                     milliseconds (default 0 = byte-identical timing)\n"
      "  --max-report N     itemize at most N divergences (default 32)\n"
      "  --hex-context N    hexdump context bytes around a payload diff\n"
      "                     (default 16)\n"
      "  --resync-window N  frames searched for a resync anchor after a\n"
      "                     mismatch (default 64)\n"
      "  --quiet            print only the summary block\n",
      argv0);
}

[[noreturn]] void BadValue(const char* argv0, const std::string& flag,
                           const char* value) {
  std::fprintf(stderr, "%s: invalid value '%s' for %s\n", argv0, value,
               flag.c_str());
  Usage(argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  tracediff::Config cfg;
  bool quiet = false;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--time-tol") {
      const char* v = next();
      auto ms = ParseDouble(v, 0.0, 1e9);
      if (!ms) {
        BadValue(argv[0], arg, v);
      }
      cfg.time_tol = Milliseconds(*ms);
    } else if (arg == "--max-report") {
      const char* v = next();
      auto n = ParseU64(v, 1, 1'000'000);
      if (!n) {
        BadValue(argv[0], arg, v);
      }
      cfg.max_report = static_cast<std::size_t>(*n);
    } else if (arg == "--hex-context") {
      const char* v = next();
      auto n = ParseU64(v, 1, 4096);
      if (!n) {
        BadValue(argv[0], arg, v);
      }
      cfg.hex_context = static_cast<std::size_t>(*n);
    } else if (arg == "--resync-window") {
      const char* v = next();
      auto n = ParseU64(v, 1, 1'000'000);
      if (!n) {
        BadValue(argv[0], arg, v);
      }
      cfg.resync_window = static_cast<std::size_t>(*n);
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      Usage(argv[0]);
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (files.size() != 2) {
    std::fprintf(stderr, "expected exactly two capture files\n");
    Usage(argv[0]);
    return 2;
  }
  if (quiet) {
    cfg.max_report = 1;  // Finish() still prints the full summary counts
  }

  std::string error;
  std::optional<tracediff::Result> result =
      tracediff::DiffFiles(files[0], files[1], cfg, &error);
  if (!result) {
    std::fprintf(stderr, "%s: %s\n", argv[0], error.c_str());
    return 2;
  }
  if (result->equivalent) {
    std::printf("traces equivalent: %s == %s\n%s", files[0].c_str(),
                files[1].c_str(), result->report.c_str());
    return 0;
  }
  std::string body = result->report;
  if (quiet) {
    std::size_t summary = body.find("summary:");
    if (summary != std::string::npos) {
      body = body.substr(summary);
    }
  }
  std::printf("traces DIVERGE: %s vs %s\n%s", files[0].c_str(),
              files[1].c_str(), body.c_str());
  return 1;
}
