// Comparison engine behind tools/benchdiff: diffs a current bench-ledger
// document (bench/bench_json.h output) against its checked-in baseline
// (bench/baselines/BENCH_<id>.json).
//
// The contract, per field class:
//   params   must match exactly, key set and values — a changed scenario knob
//            means the baseline is stale, not that performance moved;
//   sim      deterministic simulation outputs: integer tokens compare
//            exactly, floats within 1e-9 relative (FP contraction may differ
//            across optimization levels), table cells as printed strings;
//   wall     host timings: one-sided band. An improvement always passes; a
//            "higher"-is-better metric fails below baseline/(1+tol), a
//            "lower"-is-better one above baseline*(1+tol).
//
// Split from the CLI so tests/benchdiff_test.cc can inject fake regressions
// and assert they are caught without shelling out.
#ifndef TOOLS_BENCHDIFF_CORE_H_
#define TOOLS_BENCHDIFF_CORE_H_

#include <string>

#include "src/util/json.h"

namespace upr {
namespace benchdiff {

struct Options {
  // Fractional tolerance for wall-clock metrics. 0.5 = a 1.5x slowdown (or
  // 1/1.5 throughput drop) fails. CI uses a wider band for shared runners.
  double wall_tol = 0.5;
};

// Compares one document pair; appends one line per difference to *report.
// Returns true when `current` is acceptable against `baseline`.
bool CompareDocs(const json::Value& baseline, const json::Value& current,
                 const Options& opt, std::string* report);

// File wrapper: reads and parses both paths. IO and parse failures are
// reported as regressions with an explanatory line.
bool CompareFiles(const std::string& baseline_path,
                  const std::string& current_path, const Options& opt,
                  std::string* report);

}  // namespace benchdiff
}  // namespace upr

#endif  // TOOLS_BENCHDIFF_CORE_H_
