#!/usr/bin/env bash
# Tier-1 verification script.
#
# Job 1: regular build + full test suite (the ROADMAP.md tier-1 command).
# Job 2: ASan+UBSan build + full test suite, so lifetime bugs in the
#        simulator event pool / serial callback plumbing cannot land silently.
#
# Usage: tools/check.sh [--no-asan]
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)

echo "=== tier-1: regular build + ctest ==="
cmake -B build -S . >/dev/null
cmake --build build -j"${jobs}"
ctest --test-dir build --output-on-failure -j"${jobs}"

echo "=== tier-1: copy-path smoke (zero-copy ratios) ==="
./build/bench/bench_e8_copy_path --smoke

if [[ "${1:-}" == "--no-asan" ]]; then
  exit 0
fi

echo "=== tier-1: ASan+UBSan build + ctest ==="
cmake -B build-asan -S . -DUPR_SANITIZE=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build build-asan -j"${jobs}"
ctest --test-dir build-asan --output-on-failure -j"${jobs}"

echo "=== tier-1: copy-path smoke under ASan ==="
./build-asan/bench/bench_e8_copy_path --smoke
