#!/bin/sh
# Tier-1 verification script.
#
# Job 1: regular build + full test suite (the ROADMAP.md tier-1 command)
#        plus the copy-path smoke bench (zero-copy ratio regression gate).
# Job 2: ASan+UBSan build + full test suite + smoke, so lifetime bugs in the
#        simulator event pool / serial callback plumbing cannot land silently.
#
# Job 3: perf ledger — Release build, every bench run with --json, and
#        tools/benchdiff against the checked-in bench/baselines/. A simulated
#        metric that moves by one count is a red diff; wall clocks get a
#        tolerance band.
#
# Job 4: TSan build of the parallel-DES executor surface — the sharded/
#        parallel tests, the city determinism gates, and a bench_city smoke —
#        so data races in the handoff rings and worker barriers fail CI
#        instead of corrupting a seeded run once in a thousand.
#
# Usage: tools/check.sh [--no-asan] [--asan-only] [--tsan] [--quick]
#                       [--ledger-only] [--no-ledger] [--rebaseline]
#   --no-asan      run only the regular job (plus the ledger job)
#   --asan-only    run only the sanitizer job (CI matrix uses this)
#   --tsan         run only the ThreadSanitizer job (CI matrix uses this)
#   --quick        regular build + ctest only, no sanitizers and no benches —
#                  fast enough for a pre-push hook (see README)
#   --ledger-only  run only the perf-ledger job (CI bench-ledger uses this)
#   --no-ledger    skip the perf-ledger job
#   --rebaseline   after the ledger job, copy the fresh documents over
#                  bench/baselines/ (use when a PR legitimately moves a
#                  simulated metric or scenario param; commit the result)
#
# Extra configure flags can be passed via UPR_CMAKE_FLAGS, e.g.
#   UPR_CMAKE_FLAGS="-DUPR_WERROR=ON" tools/check.sh
#
# POSIX sh, deliberately: CI and pre-push hooks may invoke this as
# `sh tools/check.sh`, where bashisms ([[, pipefail) either break or —
# worse — silently weaken the error handling. Every command that may fail
# is guarded explicitly, so a red smoke bench exits nonzero even when a
# non-bash /bin/sh ignores `set -o pipefail`.
set -eu
if (set -o pipefail) 2>/dev/null; then
  set -o pipefail
fi
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)
run_regular=1
run_asan=1
run_tsan=0
run_bench=1
run_ledger=1
rebaseline=0

for arg in "$@"; do
  case "$arg" in
    --no-asan)
      run_asan=0
      ;;
    --asan-only)
      run_regular=0
      run_ledger=0
      ;;
    --tsan)
      run_regular=0
      run_asan=0
      run_ledger=0
      run_tsan=1
      ;;
    --quick)
      run_asan=0
      run_bench=0
      run_ledger=0
      ;;
    --ledger-only)
      run_regular=0
      run_asan=0
      ;;
    --no-ledger)
      run_ledger=0
      ;;
    --rebaseline)
      rebaseline=1
      ;;
    *)
      echo "unknown option: $arg" >&2
      echo "usage: tools/check.sh [--no-asan] [--asan-only] [--tsan]" \
        "[--quick] [--ledger-only] [--no-ledger] [--rebaseline]" >&2
      exit 2
      ;;
  esac
done

# Word-splitting of UPR_CMAKE_FLAGS is intentional: it carries whole flags.
extra_flags=${UPR_CMAKE_FLAGS:-}

run_smoke() {
  # `if ! cmd` keeps `set -e` from aborting before we can report, and makes
  # the failure propagate even from shells where a bare `cmd || ...` chain
  # inside `$(...)` or a pipeline would swallow the status.
  if ! "$1" --smoke; then
    echo "FAIL: $1 --smoke exited nonzero (bench regression gate)" >&2
    exit 1
  fi
}

# Record a lossy seeded scenario, replay it from the fault schedule, and
# require the replay to be clean (uprsim exit 3 on divergence) with a
# byte-identical pcapng. Workload failure (exit 1) is tolerated — the lossy
# channel may legitimately drop all pings — but both runs must agree.
run_replay_smoke() {
  builddir=$1
  smokedir="$builddir/replay-smoke"
  rm -rf "$smokedir"
  mkdir -p "$smokedir"
  scenario="--pcs 2 --hosts 0 --digis 2 --workload ping --loss 0.05 \
    --ber 0.0001 --duration 900"
  rec_status=0
  # shellcheck disable=SC2086
  "$builddir/tools/uprsim" $scenario --seed 42 \
    --record-faults "$smokedir/run.faults" \
    --trace "$smokedir/record.pcapng" >"$smokedir/record.out" 2>&1 \
    || rec_status=$?
  if [ "$rec_status" -gt 1 ]; then
    cat "$smokedir/record.out" >&2
    echo "FAIL: replay smoke record run exited $rec_status" >&2
    exit 1
  fi
  rep_status=0
  # shellcheck disable=SC2086
  "$builddir/tools/uprsim" $scenario --seed 999 \
    --replay-faults "$smokedir/run.faults" \
    --trace "$smokedir/replay.pcapng" >"$smokedir/replay.out" 2>&1 \
    || rep_status=$?
  if [ "$rep_status" -gt 1 ]; then
    cat "$smokedir/replay.out" >&2
    echo "FAIL: replay smoke replay run exited $rep_status (3 = diverged)" >&2
    exit 1
  fi
  if [ "$rec_status" -ne "$rep_status" ]; then
    echo "FAIL: replay smoke: record exit $rec_status != replay exit $rep_status" >&2
    exit 1
  fi
  # Structural diff instead of cmp: on divergence the report names the
  # interface, frame index, and first differing byte. The report file sits
  # next to the captures so CI uploads all three as failure artifacts.
  if ! "$builddir/tools/tracediff" \
      "$smokedir/record.pcapng" "$smokedir/replay.pcapng" \
      >"$smokedir/replay.tracediff.txt" 2>&1; then
    cat "$smokedir/replay.tracediff.txt" >&2
    echo "FAIL: replay smoke: record and replay traces diverge (see above)" >&2
    exit 1
  fi
  echo "replay smoke: clean replay, traces equivalent"
}

# A/B equivalence gate for silo-mode serial delivery (PR 1): the same seeded
# scenario run per-byte (--silo 0) and batched (--silo 16) must put identical
# bytes on the wire. The ping pair must match exactly, timestamps included.
# The TCP pair is payload-identical but silo batching legitimately shifts
# delivery timing by up to the silo alarm (~24 ms measured), so it gets
# --time-tol 100 — a payload or ordering change still fails.
run_ab_smoke() {
  builddir=$1
  abdir="$builddir/ab-smoke"
  rm -rf "$abdir"
  mkdir -p "$abdir"
  for case_name in ping tcp; do
    case "$case_name" in
      ping)
        scenario="--pcs 2 --hosts 1 --digis 1 --workload ping --seed 7 \
          --duration 900"
        tol="0"
        ;;
      tcp)
        scenario="--pcs 1 --hosts 1 --workload tcp --rate 2400 --seed 7 \
          --duration 1200"
        tol="100"
        ;;
    esac
    for mode in perbyte silo; do
      case "$mode" in
        perbyte) silo_flag="--silo 0" ;;
        silo)    silo_flag="--silo 16" ;;
      esac
      # shellcheck disable=SC2086
      if ! "$builddir/tools/uprsim" $scenario $silo_flag \
          --trace "$abdir/$case_name-$mode.pcapng" \
          >"$abdir/$case_name-$mode.out" 2>&1; then
        cat "$abdir/$case_name-$mode.out" >&2
        echo "FAIL: A/B smoke: $case_name $mode run failed" >&2
        exit 1
      fi
    done
    if ! "$builddir/tools/tracediff" --time-tol "$tol" \
        "$abdir/$case_name-perbyte.pcapng" "$abdir/$case_name-silo.pcapng" \
        >"$abdir/$case_name.tracediff.txt" 2>&1; then
      cat "$abdir/$case_name.tracediff.txt" >&2
      echo "FAIL: A/B smoke: silo vs per-byte traces diverge ($case_name," \
        "tol ${tol}ms; see above)" >&2
      exit 1
    fi
    echo "A/B smoke: $case_name silo == per-byte (time-tol ${tol}ms)"
  done
}

# A/B equivalence gate for the simulator's event store (PR 6): the same
# seeded lossy scenario run on the legacy binary heap (--event-queue heap)
# and on the hierarchical timer wheel (--event-queue wheel) must put
# byte-identical frames on the wire at identical timestamps — the wheel is
# a pure data-structure swap and may not reorder a single event.
run_queue_ab_smoke() {
  builddir=$1
  qdir="$builddir/queue-ab-smoke"
  rm -rf "$qdir"
  mkdir -p "$qdir"
  scenario="--pcs 2 --hosts 1 --digis 1 --workload ping --loss 0.05 \
    --ber 0.0001 --seed 1234 --duration 1800"
  for queue in heap wheel; do
    status=0
    # shellcheck disable=SC2086
    "$builddir/tools/uprsim" $scenario --event-queue "$queue" \
      --trace "$qdir/$queue.pcapng" >"$qdir/$queue.out" 2>&1 || status=$?
    # Workload failure (exit 1) is tolerated — the lossy channel may drop
    # everything — but both queues must fail identically below.
    if [ "$status" -gt 1 ]; then
      cat "$qdir/$queue.out" >&2
      echo "FAIL: queue A/B smoke: $queue run exited $status" >&2
      exit 1
    fi
    echo "$status" >"$qdir/$queue.status"
  done
  if ! cmp -s "$qdir/heap.status" "$qdir/wheel.status"; then
    echo "FAIL: queue A/B smoke: heap and wheel runs exited differently" >&2
    exit 1
  fi
  if ! "$builddir/tools/tracediff" \
      "$qdir/heap.pcapng" "$qdir/wheel.pcapng" \
      >"$qdir/queue.tracediff.txt" 2>&1; then
    cat "$qdir/queue.tracediff.txt" >&2
    echo "FAIL: queue A/B smoke: timer wheel diverges from heap (see above)" >&2
    exit 1
  fi
  echo "queue A/B smoke: wheel == heap (byte-identical trace)"
}

# A/B gate for the v2.2 refactor (PR 7): the LAPB core is now generic over
# the modulus, so default (v2.0) stations must emit byte-identical frame
# sequences to the pre-refactor code. Two seeded scenarios — a VC-mode
# transfer (connected-mode LAPB datapath) and a UI ping (datagram path) —
# are re-run and tracediff'd against captures pinned in tests/golden/.
run_v20_golden_smoke() {
  builddir=$1
  gdir="$builddir/v20-golden-smoke"
  rm -rf "$gdir"
  mkdir -p "$gdir"
  for case_name in vc ui; do
    case "$case_name" in
      vc)
        scenario="--workload vc --rate 9600 --loss 0.05 --seed 4242 \
          --duration 7200"
        golden="tests/golden/vc_v20_seed4242.pcapng"
        ;;
      ui)
        scenario="--pcs 2 --hosts 0 --digis 1 --workload ping --seed 7 \
          --duration 900"
        golden="tests/golden/ui_ping_seed7.pcapng"
        ;;
    esac
    # shellcheck disable=SC2086
    if ! "$builddir/tools/uprsim" $scenario \
        --trace "$gdir/$case_name.pcapng" >"$gdir/$case_name.out" 2>&1; then
      cat "$gdir/$case_name.out" >&2
      echo "FAIL: v2.0 golden smoke: $case_name run failed" >&2
      exit 1
    fi
    if ! "$builddir/tools/tracediff" "$golden" "$gdir/$case_name.pcapng" \
        >"$gdir/$case_name.tracediff.txt" 2>&1; then
      cat "$gdir/$case_name.tracediff.txt" >&2
      echo "FAIL: v2.0 golden smoke: $case_name trace differs from the" \
        "pinned pre-v2.2 capture $golden (see above)" >&2
      exit 1
    fi
    echo "v2.0 golden smoke: $case_name == $golden (byte-identical)"
  done
}

if [ "$run_regular" = 1 ]; then
  echo "=== tier-1: regular build + ctest ==="
  # shellcheck disable=SC2086
  cmake -B build -S . $extra_flags >/dev/null
  cmake --build build -j"${jobs}"
  ctest --test-dir build --output-on-failure -j"${jobs}"

  if [ "$run_bench" = 1 ]; then
    echo "=== tier-1: copy-path smoke (zero-copy ratios) ==="
    run_smoke ./build/bench/bench_e8_copy_path
  fi

  if [ "$run_bench" = 1 ]; then
    echo "=== tier-1: fault record/replay smoke ==="
    run_replay_smoke ./build
  fi

  if [ "$run_bench" = 1 ]; then
    echo "=== tier-1: tracediff throughput smoke ==="
    run_smoke ./build/bench/bench_tracediff
  fi

  if [ "$run_bench" = 1 ]; then
    echo "=== tier-1: silo vs per-byte A/B trace equivalence ==="
    run_ab_smoke ./build
  fi

  if [ "$run_bench" = 1 ]; then
    echo "=== tier-1: timer wheel vs heap A/B trace equivalence ==="
    run_queue_ab_smoke ./build
  fi

  if [ "$run_bench" = 1 ]; then
    echo "=== tier-1: v2.0 byte-identity vs pinned pre-v2.2 goldens ==="
    run_v20_golden_smoke ./build
  fi
fi

if [ "$run_asan" = 1 ]; then
  echo "=== tier-1: ASan+UBSan build + ctest ==="
  # shellcheck disable=SC2086
  cmake -B build-asan -S . -DUPR_SANITIZE=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    $extra_flags >/dev/null
  cmake --build build-asan -j"${jobs}"
  ctest --test-dir build-asan --output-on-failure -j"${jobs}"

  if [ "$run_bench" = 1 ]; then
    echo "=== tier-1: copy-path smoke under ASan ==="
    run_smoke ./build-asan/bench/bench_e8_copy_path
  fi

  if [ "$run_bench" = 1 ]; then
    echo "=== tier-1: fault record/replay smoke under ASan ==="
    run_replay_smoke ./build-asan
  fi

  if [ "$run_bench" = 1 ]; then
    echo "=== tier-1: tracediff throughput smoke under ASan ==="
    run_smoke ./build-asan/bench/bench_tracediff
  fi

  if [ "$run_bench" = 1 ]; then
    echo "=== tier-1: silo vs per-byte A/B trace equivalence under ASan ==="
    run_ab_smoke ./build-asan
  fi

  if [ "$run_bench" = 1 ]; then
    echo "=== tier-1: timer wheel vs heap A/B trace equivalence under ASan ==="
    run_queue_ab_smoke ./build-asan
  fi

  if [ "$run_bench" = 1 ]; then
    echo "=== tier-1: v2.0 byte-identity vs pinned goldens under ASan ==="
    run_v20_golden_smoke ./build-asan
  fi
fi

if [ "$run_tsan" = 1 ]; then
  echo "=== tier-1: TSan build + parallel-DES tests ==="
  # Reports land in build-tsan/tsan-report.<pid> so CI can upload them as
  # failure artifacts; halt_on_error turns the first race into a nonzero
  # exit instead of a warning that scrolls past.
  TSAN_OPTIONS="halt_on_error=1 log_path=$(pwd)/build-tsan/tsan-report ${TSAN_OPTIONS:-}"
  export TSAN_OPTIONS
  # shellcheck disable=SC2086
  cmake -B build-tsan -S . -DUPR_SANITIZE=thread \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo $extra_flags >/dev/null
  # Only the threaded surface: the serial stack is already covered by the
  # regular and ASan jobs, and a full TSan build would double CI time for
  # code that never spawns a thread.
  cmake --build build-tsan -j"${jobs}" \
    --target shard_test topo_test uprsim tracediff bench_city
  ctest --test-dir build-tsan --output-on-failure -j"${jobs}" \
    -R 'shard_test|topo_test|uprsim_topo_rejects_bad_args|uprsim_city'

  echo "=== tier-1: bench_city smoke under TSan (parallel sweep) ==="
  run_smoke ./build-tsan/bench/bench_city
fi

if [ "$run_ledger" = 1 ]; then
  echo "=== tier-1: perf ledger (Release benches vs bench/baselines) ==="
  # shellcheck disable=SC2086
  cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release $extra_flags >/dev/null
  cmake --build build-release -j"${jobs}"
  rm -rf build-release/ledger
  if ! tools/bench_ledger.sh ./build-release build-release/ledger; then
    echo "FAIL: a bench exited nonzero while generating the ledger" >&2
    exit 1
  fi
  if [ "$rebaseline" = 1 ]; then
    mkdir -p bench/baselines
    cp build-release/ledger/BENCH_*.json bench/baselines/
    echo "perf ledger: baselines regenerated in bench/baselines/ (commit them)"
  else
    # The report is written to a file (and echoed) so CI can upload it as an
    # artifact next to the BENCH_*.json documents.
    diff_status=0
    ./build-release/tools/benchdiff \
      --wall-tol "${UPR_WALL_TOL:-0.5}" \
      --dir bench/baselines build-release/ledger \
      >build-release/ledger/benchdiff.report.txt 2>&1 || diff_status=$?
    cat build-release/ledger/benchdiff.report.txt
    if [ "$diff_status" -ne 0 ]; then
      echo "FAIL: perf ledger regressed vs bench/baselines/ (if the change is" \
        "intended, rerun with --rebaseline and commit the new baselines)" >&2
      exit 1
    fi
  fi
fi

echo "tier-1: all requested jobs passed"
