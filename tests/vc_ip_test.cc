// IP-over-AX.25 virtual circuits (KA9Q VC mode): the connected-mode
// alternative to the paper's UI-datagram encapsulation.
#include <gtest/gtest.h>

#include "src/driver/vc_ip_interface.h"
#include "src/scenario/testbed.h"

namespace upr {
namespace {

// Two stations whose IP runs over AX.25 circuits instead of UI frames.
class VcPair : public ::testing::Test {
 protected:
  struct VcStation {
    std::unique_ptr<NetStack> stack;
    std::unique_ptr<SerialLine> serial;
    std::unique_ptr<KissTnc> tnc;
    PacketRadioInterface* driver = nullptr;
    Ax25VcIpInterface* vc = nullptr;
    std::unique_ptr<Tcp> tcp;
  };

  void Build(double loss) {
    RadioChannelConfig rc;
    rc.bit_rate = 9600;
    rc.loss_rate = loss;
    channel_ = std::make_unique<RadioChannel>(&sim_, rc, 33);
    a_ = MakeStation("a", "KD7AA", IpV4Address(44, 24, 11, 1), 1);
    b_ = MakeStation("b", "KD7AB", IpV4Address(44, 24, 11, 2), 2);
    a_->vc->MapIpToCallsign(IpV4Address(44, 24, 11, 2), Ax25Address("KD7AB", 0));
    b_->vc->MapIpToCallsign(IpV4Address(44, 24, 11, 1), Ax25Address("KD7AA", 0));
  }

  std::unique_ptr<VcStation> MakeStation(const std::string& name,
                                         const std::string& call, IpV4Address ip,
                                         std::uint64_t seed) {
    auto st = std::make_unique<VcStation>();
    st->stack = std::make_unique<NetStack>(&sim_, name);
    st->serial = std::make_unique<SerialLine>(&sim_, 9600);
    TncConfig tnc_cfg;
    tnc_cfg.local_addresses.push_back(*Ax25Address::Parse(call));
    st->tnc = std::make_unique<KissTnc>(&sim_, channel_.get(), &st->serial->b(), name,
                                        tnc_cfg, seed * 100 + 1);
    PacketRadioConfig drv;
    drv.local_address = *Ax25Address::Parse(call);
    auto driver = std::make_unique<PacketRadioInterface>(&sim_, &st->serial->a(),
                                                         "pr0", drv);
    // The driver itself carries no IP address in VC mode; the VC interface
    // is the IP attachment point.
    st->driver =
        static_cast<PacketRadioInterface*>(st->stack->AddInterface(std::move(driver)));
    Ax25LinkConfig lc;
    lc.t1 = Seconds(6);
    lc.n2 = 30;
    auto vc = std::make_unique<Ax25VcIpInterface>(&sim_, st->driver, "vc0", lc);
    vc->Configure(ip, 24);
    st->vc = static_cast<Ax25VcIpInterface*>(st->stack->AddInterface(std::move(vc)));
    st->tcp = std::make_unique<Tcp>(st->stack.get(), TcpConfig{}, seed * 100 + 2);
    return st;
  }

  Simulator sim_;
  std::unique_ptr<RadioChannel> channel_;
  std::unique_ptr<VcStation> a_;
  std::unique_ptr<VcStation> b_;
};

TEST_F(VcPair, PingOverCircuit) {
  Build(0.0);
  bool ok = false;
  a_->stack->icmp().Ping(IpV4Address(44, 24, 11, 2), 32,
                         [&](bool success, SimTime) { ok = success; }, Seconds(120));
  sim_.RunUntil(Seconds(240));
  EXPECT_TRUE(ok);
  EXPECT_EQ(a_->vc->circuits_opened(), 1u);
  EXPECT_GE(b_->vc->datagrams_reassembled(), 1u);
  EXPECT_EQ(a_->vc->framing_errors(), 0u);
}

TEST_F(VcPair, SecondDatagramReusesCircuit) {
  Build(0.0);
  int replies = 0;
  for (int i = 0; i < 3; ++i) {
    bool done = false;
    a_->stack->icmp().Ping(IpV4Address(44, 24, 11, 2), 32,
                           [&](bool success, SimTime) {
                             done = true;
                             if (success) {
                               ++replies;
                             }
                           },
                           Seconds(120));
    while (!done && sim_.Step()) {
    }
  }
  EXPECT_EQ(replies, 3);
  EXPECT_EQ(a_->vc->circuits_opened(), 1u);  // one SABM for the whole session
}

TEST_F(VcPair, BackToBackDatagramsResplitCorrectly) {
  Build(0.0);
  // Two datagrams larger than PACLEN, queued before the circuit opens: the
  // stream framing must recover both boundaries.
  Bytes got1, got2;
  int count = 0;
  b_->stack->RegisterProtocol(99, [&](const Ipv4Header&, ByteView p, NetInterface*) {
    (count++ == 0 ? got1 : got2).assign(p.begin(), p.end());
  });
  Bytes p1(180, 0x11), p2(150, 0x22);
  a_->stack->SendDatagram(IpV4Address(44, 24, 11, 2), 99, p1);
  a_->stack->SendDatagram(IpV4Address(44, 24, 11, 2), 99, p2);
  sim_.RunUntil(Seconds(120));
  EXPECT_EQ(count, 2);
  EXPECT_EQ(got1, p1);
  EXPECT_EQ(got2, p2);
  EXPECT_EQ(b_->vc->datagrams_reassembled(), 2u);
}

TEST_F(VcPair, LinkLayerArqAbsorbsLoss) {
  Build(0.25);  // one frame in four dies
  Bytes received;
  Bytes payload(3000, 0x5C);
  b_->tcp->Listen(23, [&](TcpConnection* c) {
    c->set_data_handler([&](const Bytes& d) {
      received.insert(received.end(), d.begin(), d.end());
    });
  });
  TcpConnection* conn = a_->tcp->Connect(IpV4Address(44, 24, 11, 2), 23);
  ASSERT_NE(conn, nullptr);
  conn->set_connected_handler([&, conn] { conn->Send(payload); });
  sim_.RunUntil(Seconds(3600));
  EXPECT_EQ(received, payload);
  // The link layer did the heavy lifting: every lost frame was recovered by
  // AX.25 ARQ (resent I frames), and the stream TCP saw was lossless — its
  // remaining retransmissions are timer races against slow link recovery
  // (the classic VC-mode gotcha: two ARQ layers with competing timers), not
  // actual data loss. The X5 bench quantifies UI vs VC head to head.
  Ax25Connection* circuit =
      a_->vc->link().FindConnection(*Ax25Address::Parse("KD7AB"));
  ASSERT_NE(circuit, nullptr);
  EXPECT_GT(circuit->i_frames_resent(), 0u);
  EXPECT_LT(conn->stats().retransmissions, 15u);
}

TEST_F(VcPair, UnmappedNextHopCountsError) {
  Build(0.0);
  a_->stack->SendDatagram(IpV4Address(44, 24, 11, 99), 99, Bytes{1});
  // Routed via vc0 (direct subnet) but no callsign mapping exists.
  EXPECT_GE(a_->vc->stats().oerrors, 1u);
}

}  // namespace
}  // namespace upr
