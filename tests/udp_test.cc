#include <gtest/gtest.h>

#include "src/ether/ethernet.h"
#include "src/net/netstack.h"
#include "src/sim/simulator.h"
#include "src/udp/udp.h"

namespace upr {
namespace {

TEST(UdpDatagramTest, EncodeDecodeRoundTrip) {
  UdpDatagram d;
  d.source_port = 5000;
  d.destination_port = 53;
  d.payload = BytesFromString("query");
  IpV4Address src(10, 0, 0, 1), dst(10, 0, 0, 2);
  auto p = UdpDatagram::Decode(d.Encode(src, dst), src, dst);
  ASSERT_TRUE(p);
  EXPECT_EQ(p->source_port, 5000);
  EXPECT_EQ(p->destination_port, 53);
  EXPECT_EQ(p->payload, BytesFromString("query"));
}

TEST(UdpDatagramTest, ChecksumRejectsCorruptionAndWrongAddresses) {
  UdpDatagram d;
  d.source_port = 1;
  d.destination_port = 2;
  d.payload = Bytes{9, 9, 9};
  IpV4Address src(10, 0, 0, 1), dst(10, 0, 0, 2);
  Bytes wire = d.Encode(src, dst);
  // Different destination breaks the pseudo-header checksum. (Swapping src
  // and dst would NOT: one's-complement addition commutes.)
  EXPECT_FALSE(UdpDatagram::Decode(wire, src, IpV4Address(10, 0, 0, 7)));
  wire[9] ^= 0x80;
  EXPECT_FALSE(UdpDatagram::Decode(wire, src, dst));
  EXPECT_FALSE(UdpDatagram::Decode(Bytes{1, 2, 3}, src, dst));
}

class UdpLanTest : public ::testing::Test {
 protected:
  UdpLanTest() : segment_(&sim_), a_stack_(&sim_, "a"), b_stack_(&sim_, "b") {
    auto ia = std::make_unique<EthernetInterface>(&segment_, "qe0",
                                                  EtherAddr::FromIndex(1));
    ia->Configure(IpV4Address(10, 0, 0, 1), 24);
    a_stack_.AddInterface(std::move(ia));
    auto ib = std::make_unique<EthernetInterface>(&segment_, "qe0",
                                                  EtherAddr::FromIndex(2));
    ib->Configure(IpV4Address(10, 0, 0, 2), 24);
    b_stack_.AddInterface(std::move(ib));
    a_ = std::make_unique<Udp>(&a_stack_);
    b_ = std::make_unique<Udp>(&b_stack_);
  }

  Simulator sim_;
  EtherSegment segment_;
  NetStack a_stack_;
  NetStack b_stack_;
  std::unique_ptr<Udp> a_;
  std::unique_ptr<Udp> b_;
};

TEST_F(UdpLanTest, RequestResponse) {
  b_->Bind(53, [&](IpV4Address src, std::uint16_t sport, const Bytes& data) {
    EXPECT_EQ(data, BytesFromString("ping?"));
    b_->SendTo(src, sport, 53, BytesFromString("pong!"));
  });
  Bytes reply;
  a_->Bind(5000, [&](IpV4Address, std::uint16_t, const Bytes& data) { reply = data; });
  EXPECT_TRUE(a_->SendTo(IpV4Address(10, 0, 0, 2), 53, 5000, BytesFromString("ping?")));
  sim_.RunUntil(Seconds(5));
  EXPECT_EQ(reply, BytesFromString("pong!"));
  EXPECT_EQ(b_->datagrams_delivered(), 1u);
  EXPECT_EQ(a_->datagrams_delivered(), 1u);
}

TEST_F(UdpLanTest, UnboundPortTriggersIcmpUnreachable) {
  bool got_error = false;
  a_stack_.icmp().set_error_handler([&](const Ipv4Header&, const IcmpMessage& msg) {
    EXPECT_EQ(msg.type, kIcmpUnreachable);
    EXPECT_EQ(msg.code, kUnreachPort);
    got_error = true;
  });
  a_->SendTo(IpV4Address(10, 0, 0, 2), 1234, 5000, BytesFromString("anyone?"));
  sim_.RunUntil(Seconds(5));
  EXPECT_TRUE(got_error);
  EXPECT_EQ(b_->port_unreachable(), 1u);
}

TEST_F(UdpLanTest, EphemeralPortAssignedWhenZero) {
  IpV4Address seen_src;
  std::uint16_t seen_port = 0;
  b_->Bind(53, [&](IpV4Address src, std::uint16_t sport, const Bytes&) {
    seen_src = src;
    seen_port = sport;
  });
  a_->SendTo(IpV4Address(10, 0, 0, 2), 53, 0, Bytes{1});
  sim_.RunUntil(Seconds(5));
  EXPECT_EQ(seen_src, IpV4Address(10, 0, 0, 1));
  EXPECT_GE(seen_port, 2048);
}

TEST_F(UdpLanTest, SendWithoutRouteFails) {
  EXPECT_FALSE(a_->SendTo(IpV4Address(99, 0, 0, 1), 1, 1, Bytes{}));
}

TEST_F(UdpLanTest, UnbindStopsDelivery) {
  int got = 0;
  b_->Bind(53, [&](IpV4Address, std::uint16_t, const Bytes&) { ++got; });
  a_->SendTo(IpV4Address(10, 0, 0, 2), 53, 1000, Bytes{1});
  sim_.RunUntil(Seconds(2));
  b_->Unbind(53);
  a_->SendTo(IpV4Address(10, 0, 0, 2), 53, 1000, Bytes{2});
  sim_.RunUntil(Seconds(4));
  EXPECT_EQ(got, 1);
}

TEST_F(UdpLanTest, LargeDatagramFragmentsAndReassembles) {
  Bytes big(3000, 0x5A);
  Bytes got;
  b_->Bind(7, [&](IpV4Address, std::uint16_t, const Bytes& d) { got = d; });
  a_->SendTo(IpV4Address(10, 0, 0, 2), 7, 7, big);
  sim_.RunUntil(Seconds(5));
  EXPECT_EQ(got, big);
  EXPECT_GT(a_stack_.ip_stats().fragments_created, 0u);
  EXPECT_EQ(b_stack_.ip_stats().reassembled, 1u);
}

TEST_F(UdpLanTest, LocalDelivery) {
  Bytes got;
  a_->Bind(9, [&](IpV4Address, std::uint16_t, const Bytes& d) { got = d; });
  a_->SendTo(IpV4Address(10, 0, 0, 1), 9, 9, BytesFromString("loop"));
  sim_.RunAll();
  EXPECT_EQ(got, BytesFromString("loop"));
}

}  // namespace
}  // namespace upr
