// src/util/json.h — the strict little parser under the perf-ledger tooling.
#include "src/util/json.h"

#include <gtest/gtest.h>

#include <string>

namespace upr {
namespace {

json::Value MustParse(const std::string& text) {
  std::string err;
  auto v = json::Parse(text, &err);
  EXPECT_TRUE(v.has_value()) << err << " in: " << text;
  return v.has_value() ? *v : json::Value{};
}

TEST(JsonTest, ParsesScalars) {
  EXPECT_EQ(MustParse("null").kind, json::Value::Kind::kNull);
  EXPECT_TRUE(MustParse("true").boolean);
  EXPECT_FALSE(MustParse("false").boolean);
  EXPECT_DOUBLE_EQ(MustParse("3.5").number, 3.5);
  EXPECT_DOUBLE_EQ(MustParse("-2e3").number, -2000.0);
  EXPECT_EQ(MustParse("\"hi\"").str, "hi");
}

TEST(JsonTest, KeepsRawNumberTokenForExactIntegerCompare) {
  json::Value a = MustParse("3");
  json::Value b = MustParse("3.0");
  EXPECT_TRUE(a.is_integer_token());
  EXPECT_FALSE(b.is_integer_token());
  EXPECT_EQ(a.raw, "3");
  EXPECT_EQ(b.raw, "3.0");
  // Full-precision doubles survive a parse round trip.
  EXPECT_DOUBLE_EQ(MustParse("0.1000000000000000055511151231257827").number, 0.1);
  EXPECT_TRUE(MustParse("-9223372036854775807").is_integer_token());
}

TEST(JsonTest, ParsesNestedStructures) {
  json::Value v = MustParse(
      R"({"bench": "e1", "params": {"seed": 7}, "tables": [{"rows": [["a", "b"], []]}]})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.Find("bench")->str, "e1");
  EXPECT_EQ(v.Find("params")->Find("seed")->raw, "7");
  const json::Value* tables = v.Find("tables");
  ASSERT_TRUE(tables->is_array());
  const json::Value* rows = tables->items[0].Find("rows");
  ASSERT_EQ(rows->items.size(), 2u);
  EXPECT_EQ(rows->items[0].items[1].str, "b");
  EXPECT_TRUE(rows->items[1].items.empty());
  EXPECT_EQ(v.Find("missing"), nullptr);
}

TEST(JsonTest, PreservesObjectMemberOrder) {
  json::Value v = MustParse(R"({"z": 1, "a": 2, "m": 3})");
  ASSERT_EQ(v.members.size(), 3u);
  EXPECT_EQ(v.members[0].first, "z");
  EXPECT_EQ(v.members[1].first, "a");
  EXPECT_EQ(v.members[2].first, "m");
}

TEST(JsonTest, DecodesStringEscapes) {
  EXPECT_EQ(MustParse(R"("a\"b\\c\nd\te")").str, "a\"b\\c\nd\te");
  EXPECT_EQ(MustParse(R"("Aé")").str, "A\xC3\xA9");
}

TEST(JsonTest, RejectsMalformedDocuments) {
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\":}", "{\"a\" 1}", "01x", "\"unterminated",
        "tru", "{} trailing", "[1 2]", "\"\x01\"", "nul", "- 1", "1.e5",
        R"("\q")"}) {
    std::string err;
    EXPECT_FALSE(json::Parse(bad, &err).has_value()) << bad;
    EXPECT_FALSE(err.empty()) << bad;
  }
}

TEST(JsonTest, RejectsRunawayNesting) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(json::Parse(deep).has_value());
}

TEST(JsonTest, AcceptsSurroundingWhitespaceOnly) {
  EXPECT_TRUE(json::Parse("  {\n\t\"a\": [1, 2]\r\n}  ").has_value());
}

}  // namespace
}  // namespace upr
