// PacketBuf unit tests: headroom/tailroom bookkeeping, growth, zero-copy
// Release/Adopt, and the per-layer accounting the netstat counters rely on.
#include <gtest/gtest.h>

#include "src/util/byte_buffer.h"
#include "src/util/packet_buf.h"

namespace upr {
namespace {

Bytes Seq(std::size_t n, std::uint8_t base = 0) {
  Bytes b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = static_cast<std::uint8_t>(base + i);
  }
  return b;
}

class PacketBufTest : public ::testing::Test {
 protected:
  // Drain the slab pool as well as the counters: a slab parked by an earlier
  // test would turn this test's first allocation into a pool hit and throw
  // off its alloc accounting.
  void SetUp() override {
    ResetBufStats();
    DrainBufPool();
  }
  void TearDown() override {
    ResetBufStats();
    DrainBufPool();
  }
};

TEST_F(PacketBufTest, DefaultConstructedIsEmptyAndFree) {
  PacketBuf p;
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.size(), 0u);
  EXPECT_EQ(p.Headroom(), 0u);
  EXPECT_EQ(p.Tailroom(), 0u);
  EXPECT_EQ(BufStatsTotal().allocs, 0u);
}

TEST_F(PacketBufTest, FromViewReservesHeadroom) {
  Bytes payload = Seq(10);
  PacketBuf p = PacketBuf::FromView(payload, 32);
  EXPECT_EQ(p.size(), 10u);
  EXPECT_EQ(p.Headroom(), 32u);
  EXPECT_EQ(Bytes(p.data(), p.data() + p.size()), payload);
  // One allocation, one copy of the payload.
  EXPECT_EQ(BufStatsTotal().allocs, 1u);
  EXPECT_EQ(BufStatsTotal().bytes_copied, 10u);
}

TEST_F(PacketBufTest, PrependSerializesIntoHeadroom) {
  PacketBuf p = PacketBuf::FromView(Seq(8, 100), 16);
  std::uint8_t* h = p.Prepend(4);
  h[0] = 1;
  h[1] = 2;
  h[2] = 3;
  h[3] = 4;
  EXPECT_EQ(p.Headroom(), 12u);
  EXPECT_EQ(p.size(), 12u);
  Bytes expect{1, 2, 3, 4};
  Bytes rest = Seq(8, 100);
  expect.insert(expect.end(), rest.begin(), rest.end());
  EXPECT_EQ(p.ToBytes(), expect);
  // The pointer-returning Prepend is raw serialization: no copy counted.
  EXPECT_EQ(BufStatsTotal().prepend_reallocs, 0u);
}

TEST_F(PacketBufTest, PrependPastHeadroomGrowsAndCounts) {
  PacketBuf p = PacketBuf::FromView(Seq(8, 50), /*headroom=*/2);
  ResetBufStats();
  p.Prepend(ByteView(Seq(10)));
  EXPECT_EQ(p.size(), 18u);
  Bytes expect = Seq(10);
  Bytes rest = Seq(8, 50);
  expect.insert(expect.end(), rest.begin(), rest.end());
  EXPECT_EQ(Bytes(p.data(), p.data() + p.size()), expect);
  EXPECT_EQ(BufStatsTotal().prepend_reallocs, 1u);
  EXPECT_GE(BufStatsTotal().allocs, 1u);
  // The grown buffer leaves cushion: the next prepend is free.
  ResetBufStats();
  p.Prepend(ByteView(Seq(4)));
  EXPECT_EQ(BufStatsTotal().prepend_reallocs, 0u);
}

TEST_F(PacketBufTest, AppendPastTailroomGrows) {
  PacketBuf p(4, 2);
  p.Append(ByteView(Seq(2)));
  ResetBufStats();
  p.Append(ByteView(Seq(100)));
  EXPECT_EQ(p.size(), 102u);
  EXPECT_GE(BufStatsTotal().allocs, 1u);
}

TEST_F(PacketBufTest, TrimsClampAndAreFree) {
  Bytes full = Seq(10);
  PacketBuf p = PacketBuf::FromView(full, 8);
  ResetBufStats();
  p.TrimFront(3);
  p.TrimBack(2);
  EXPECT_EQ(p.ToBytes(), Bytes(full.begin() + 3, full.end() - 2));
  p.TrimFront(1000);  // clamps to empty
  EXPECT_TRUE(p.empty());
  p.TrimBack(5);  // no-op on empty
  EXPECT_TRUE(p.empty());
  // Trims moved offsets only; the single count is the ToBytes copy above.
  EXPECT_EQ(BufStatsTotal().bytes_copied, 5u);
}

TEST_F(PacketBufTest, AdoptAndReleaseAreZeroCopy) {
  Bytes owned = Seq(64);
  const std::uint8_t* storage = owned.data();
  PacketBuf p = PacketBuf::Adopt(std::move(owned));
  EXPECT_EQ(p.size(), 64u);
  EXPECT_EQ(p.Headroom(), 0u);
  Bytes out = p.Release();
  EXPECT_EQ(out, Seq(64));
  // Same heap storage moved straight through; nothing copied or allocated.
  EXPECT_EQ(out.data(), storage);
  EXPECT_EQ(BufStatsTotal().bytes_copied, 0u);
  EXPECT_EQ(BufStatsTotal().allocs, 0u);
  EXPECT_TRUE(p.empty());
}

TEST_F(PacketBufTest, ReleaseWithHeadroomFallsBackToCopy) {
  PacketBuf p = PacketBuf::FromView(Seq(16), 8);
  ResetBufStats();
  Bytes out = p.Release();
  EXPECT_EQ(out, Seq(16));
  EXPECT_EQ(BufStatsTotal().bytes_copied, 16u);
}

TEST_F(PacketBufTest, LayerScopesAttributeAndNest) {
  {
    BufLayerScope ip(BufLayer::kIp);
    PacketBuf p = PacketBuf::FromView(Seq(10), 8);
    {
      BufLayerScope kiss(BufLayer::kKiss);
      BufNoteCopy(7);
    }
    BufNoteCopy(3);
  }
  EXPECT_EQ(BufStatsFor(BufLayer::kIp).bytes_copied, 13u);
  EXPECT_EQ(BufStatsFor(BufLayer::kIp).allocs, 1u);
  EXPECT_EQ(BufStatsFor(BufLayer::kKiss).bytes_copied, 7u);
  EXPECT_EQ(BufStatsFor(BufLayer::kOther).bytes_copied, 0u);
  EXPECT_EQ(BufStatsTotal().bytes_copied, 20u);
}

TEST_F(PacketBufTest, PoolRecyclesSlabOnDestruction) {
  {
    PacketBuf p(64, 64);
    EXPECT_EQ(BufStatsTotal().allocs, 1u);
  }
  // The dtor parked the slab instead of freeing it.
  EXPECT_EQ(BufPoolDepth(), 1u);
  EXPECT_EQ(BufPoolSnapshot().recycled, 1u);
  {
    PacketBuf q(32, 32);
    EXPECT_EQ(BufPoolDepth(), 0u);
    EXPECT_EQ(BufPoolSnapshot().hits, 1u);
    // A pool hit is not a heap allocation: the counter must not move.
    EXPECT_EQ(BufStatsTotal().allocs, 1u);
  }
}

TEST_F(PacketBufTest, PoolIgnoresOversizeBuffers) {
  {
    PacketBuf p(2 * kBufSlabSize, 2 * kBufSlabSize);  // 4x the slab size
  }
  BufPoolStats s = BufPoolSnapshot();
  EXPECT_EQ(s.oversize, 1u);
  // Too big to park (a bloated block would pin memory for every later hit).
  EXPECT_EQ(BufPoolDepth(), 0u);
  EXPECT_EQ(s.recycled, 0u);
  EXPECT_EQ(s.dropped, 1u);
}

TEST_F(PacketBufTest, PoolSurvivesGrowAndMoveAssign) {
  PacketBuf p(4, 4);
  p.Append(ByteView(Seq(200)));  // grow: old slab goes back to the pool
  EXPECT_EQ(BufPoolSnapshot().recycled, 1u);
  PacketBuf q(8, 8);  // reuses the parked slab
  EXPECT_EQ(BufPoolSnapshot().hits, 1u);
  q = std::move(p);  // move-assign recycles q's current storage
  EXPECT_EQ(BufPoolSnapshot().recycled, 2u);
  EXPECT_EQ(q.size(), 200u);
  DrainBufPool();
  EXPECT_EQ(BufPoolDepth(), 0u);
}

TEST_F(PacketBufTest, MoveTransfersOwnership) {
  PacketBuf a = PacketBuf::FromView(Seq(12), 4);
  PacketBuf b = std::move(a);
  EXPECT_EQ(b.size(), 12u);
  PacketBuf c;
  c = std::move(b);
  EXPECT_EQ(c.size(), 12u);
  EXPECT_EQ(Bytes(c.data(), c.data() + c.size()), Seq(12));
}

}  // namespace
}  // namespace upr
