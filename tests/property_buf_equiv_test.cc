// Property: the PacketBuf TX path (headers prepended in place) is
// byte-for-byte equivalent to the legacy Bytes encode at every layer —
// UDP, IPv4, AX.25, KISS — for arbitrary payloads, and stays equivalent
// when headroom is exhausted mid-chain, when buffers are trimmed, and
// across the forwarding fast path (in-place TTL decrement) and
// fragmentation slicing.
#include <gtest/gtest.h>

#include "src/ax25/frame.h"
#include "src/kiss/kiss.h"
#include "src/net/ipv4.h"
#include "src/udp/udp.h"
#include "src/util/packet_buf.h"
#include "src/util/random.h"

namespace upr {
namespace {

Bytes RandomPayload(Rng* rng, std::size_t max_len) {
  Bytes b(rng->NextBelow(max_len + 1));
  for (auto& byte : b) {
    // Bias toward KISS special characters so escaping paths are exercised.
    switch (rng->NextBelow(4)) {
      case 0:
        byte = kKissFend;
        break;
      case 1:
        byte = kKissFesc;
        break;
      default:
        byte = static_cast<std::uint8_t>(rng->NextU64());
    }
  }
  return b;
}

Ipv4Header RandomIpHeader(Rng* rng) {
  Ipv4Header h;
  h.tos = static_cast<std::uint8_t>(rng->NextU64());
  h.identification = static_cast<std::uint16_t>(rng->NextU64());
  h.ttl = static_cast<std::uint8_t>(1 + rng->NextBelow(254));
  h.protocol = kIpProtoUdp;
  h.source = IpV4Address(static_cast<std::uint32_t>(rng->NextU64()));
  h.destination = IpV4Address(static_cast<std::uint32_t>(rng->NextU64()));
  if (rng->NextBelow(4) == 0) {
    h.options = RandomPayload(rng, 12);
  }
  return h;
}

Ax25Frame RandomUi(Rng* rng) {
  std::vector<Ax25Digipeater> digis;
  std::size_t n_digis = rng->NextBelow(3);
  for (std::size_t i = 0; i < n_digis; ++i) {
    digis.push_back(Ax25Digipeater{
        Ax25Address("DIGI" + std::to_string(i), static_cast<int>(rng->NextBelow(16))),
        rng->Chance(0.5)});
  }
  return Ax25Frame::MakeUi(Ax25Address("DEST", static_cast<int>(rng->NextBelow(16))),
                           Ax25Address("SRC", static_cast<int>(rng->NextBelow(16))),
                           kPidIp, {}, std::move(digis));
}

TEST(BufEquivProperty, Ipv4EncodeToMatchesLegacyEncode) {
  Rng rng(0xE81);
  for (int i = 0; i < 200; ++i) {
    Ipv4Header h = RandomIpHeader(&rng);
    Bytes payload = RandomPayload(&rng, 300);

    PacketBuf pb = PacketBuf::FromView(payload, PacketBuf::kDefaultHeadroom);
    h.EncodeTo(&pb);
    EXPECT_EQ(pb.ToBytes(), h.Encode(payload)) << "iteration " << i;
  }
}

TEST(BufEquivProperty, Ax25EncodeToMatchesLegacyEncode) {
  Rng rng(0xE82);
  for (int i = 0; i < 200; ++i) {
    Ax25Frame f = RandomUi(&rng);
    Bytes info = RandomPayload(&rng, 300);

    PacketBuf pb = PacketBuf::FromView(info, PacketBuf::kDefaultHeadroom);
    f.EncodeTo(&pb);

    Ax25Frame legacy = f;
    legacy.info = info;
    EXPECT_EQ(pb.ToBytes(), legacy.Encode()) << "iteration " << i;
  }
}

TEST(BufEquivProperty, KissEncodeIntoMatchesLegacyEncode) {
  Rng rng(0xE83);
  for (int i = 0; i < 200; ++i) {
    Bytes payload = RandomPayload(&rng, 300);
    auto port = static_cast<std::uint8_t>(rng.NextBelow(16));

    Bytes via_into;
    KissEncodeInto(payload, &via_into, port);

    KissFrame frame;
    frame.port = port;
    frame.payload = payload;
    EXPECT_EQ(via_into, KissEncode(frame)) << "iteration " << i;
  }
}

// The whole TX chain: UDP segment built in a PacketBuf, IP then AX.25
// prepended into headroom, KISS escape at the edge — against the nested
// legacy encodes. Run once with ample headroom and once with none, so the
// equivalence also covers the Grow() path (headroom exhaustion at every
// prepend).
TEST(BufEquivProperty, FullChainMatchesNestedLegacyEncodes) {
  Rng rng(0xE84);
  for (int i = 0; i < 100; ++i) {
    Bytes user_data = RandomPayload(&rng, 200);
    Ipv4Header ip = RandomIpHeader(&rng);
    Ax25Frame ui = RandomUi(&rng);

    UdpDatagram udp;
    udp.source_port = static_cast<std::uint16_t>(rng.NextU64());
    udp.destination_port = static_cast<std::uint16_t>(rng.NextU64());

    // Legacy: every layer re-serializes.
    UdpDatagram udp_legacy = udp;
    udp_legacy.payload = user_data;
    Bytes segment = udp_legacy.Encode(ip.source, ip.destination);
    Ax25Frame ui_legacy = ui;
    ui_legacy.info = ip.Encode(segment);
    Bytes legacy_wire = KissEncodeData(ui_legacy.Encode());

    for (std::size_t headroom : {PacketBuf::kDefaultHeadroom, std::size_t{0}}) {
      ResetBufStats();
      PacketBuf pb = PacketBuf::FromView(user_data, headroom);
      udp.EncodeTo(&pb, ip.source, ip.destination);
      ip.EncodeTo(&pb);
      ui.EncodeTo(&pb);
      Bytes wire;
      KissEncodeInto(pb.view(), &wire);
      EXPECT_EQ(wire, legacy_wire) << "iteration " << i << " headroom " << headroom;
      if (headroom == 0) {
        // Exhausted headroom must be visible in the counters...
        EXPECT_GE(BufStatsTotal().prepend_reallocs, 1u);
      } else {
        // ...and generous headroom must avoid regrowth entirely.
        EXPECT_EQ(BufStatsTotal().prepend_reallocs, 0u);
      }
    }
  }
}

// Forwarding fast path: patching TTL + checksum in the buffer equals a
// decrement-and-re-encode, bit for bit.
TEST(BufEquivProperty, DecrementTtlInPlaceMatchesReencode) {
  Rng rng(0xE85);
  for (int i = 0; i < 200; ++i) {
    Ipv4Header h = RandomIpHeader(&rng);
    Bytes payload = RandomPayload(&rng, 300);
    Bytes datagram = h.Encode(payload);

    PacketBuf pb = PacketBuf::FromView(datagram, PacketBuf::kDefaultHeadroom);
    Ipv4Header::DecrementTtlInPlace(pb.data());

    Ipv4Header fwd = h;
    --fwd.ttl;
    EXPECT_EQ(pb.ToBytes(), fwd.Encode(payload)) << "iteration " << i;
    // Still a valid datagram after the patch.
    EXPECT_TRUE(Ipv4Header::DecodeView(pb.view()).has_value());
  }
}

// Fragmentation slicing: building each fragment from a view subspan of the
// reassembled payload (what NetStack::TransmitVia does) equals encoding the
// fragment from a copied Bytes slice. Also exercises TrimFront/TrimBack as
// the slicing primitive.
TEST(BufEquivProperty, FragmentSlicesMatchLegacySlices) {
  Rng rng(0xE86);
  for (int i = 0; i < 100; ++i) {
    Ipv4Header h = RandomIpHeader(&rng);
    h.options.clear();
    Bytes payload = RandomPayload(&rng, 600);
    if (payload.empty()) {
      payload.push_back(0x55);
    }
    std::size_t mtu = 68 + rng.NextBelow(200);
    std::size_t max_frag = (mtu - h.HeaderLength()) / 8 * 8;
    if (max_frag == 0) {
      max_frag = 8;
    }

    for (std::size_t off = 0; off < payload.size(); off += max_frag) {
      std::size_t n = std::min(max_frag, payload.size() - off);
      Ipv4Header fh = h;
      fh.fragment_offset = static_cast<std::uint16_t>(off / 8);
      fh.more_fragments = off + n < payload.size();

      // Datapath: a view into the parent buffer, no intermediate Bytes.
      PacketBuf frag =
          PacketBuf::FromView(ByteView(payload).subspan(off, n), PacketBuf::kDefaultHeadroom);
      fh.EncodeTo(&frag);

      // Same slice via trims on a full copy of the payload.
      PacketBuf trimmed = PacketBuf::FromView(payload, PacketBuf::kDefaultHeadroom);
      trimmed.TrimFront(off);
      trimmed.TrimBack(payload.size() - off - n);
      fh.EncodeTo(&trimmed);

      Bytes legacy = fh.Encode(Bytes(payload.begin() + static_cast<std::ptrdiff_t>(off),
                                     payload.begin() + static_cast<std::ptrdiff_t>(off + n)));
      EXPECT_EQ(frag.ToBytes(), legacy) << "iteration " << i << " offset " << off;
      EXPECT_EQ(trimmed.ToBytes(), legacy) << "iteration " << i << " offset " << off;
    }
  }
}

// RX equivalence: the view decoders see exactly what the copying decoders
// saw.
TEST(BufEquivProperty, ViewDecodersMatchLegacyDecoders) {
  Rng rng(0xE87);
  for (int i = 0; i < 100; ++i) {
    Ipv4Header h = RandomIpHeader(&rng);
    Bytes payload = RandomPayload(&rng, 200);
    Bytes datagram = h.Encode(payload);

    auto legacy = Ipv4Header::Decode(datagram);
    auto view = Ipv4Header::DecodeView(datagram);
    ASSERT_TRUE(legacy.has_value());
    ASSERT_TRUE(view.has_value());
    EXPECT_EQ(Bytes(view->payload.begin(), view->payload.end()), legacy->payload);
    EXPECT_EQ(view->header.ToString(), legacy->header.ToString());

    Ax25Frame ui = RandomUi(&rng);
    ui.info = datagram;
    Bytes wire = ui.Encode();
    auto flegacy = Ax25Frame::Decode(wire);
    auto fview = Ax25Frame::DecodeView(wire);
    ASSERT_TRUE(flegacy.has_value());
    ASSERT_TRUE(fview.has_value());
    EXPECT_EQ(Bytes(fview->info.begin(), fview->info.end()), flegacy->info);
    // DecodeView leaves frame.info empty (the view carries it); graft it on
    // for a whole-frame comparison.
    Ax25Frame reassembled = fview->frame;
    reassembled.info.assign(fview->info.begin(), fview->info.end());
    EXPECT_EQ(reassembled.ToString(), flegacy->ToString());
  }
}

}  // namespace
}  // namespace upr
