// Flight-recorder tests: ring bounding and truncation, per-layer hook
// coverage over the full testbed pipeline, and the golden pcapng round-trip —
// a 3-hop digipeated UI frame traced through uprsim's testbed must produce a
// pcapng the in-repo reader validates block for block.
#include <cstdio>
#include <cstring>
#include <fstream>

#include <gtest/gtest.h>

#include "src/ax25/frame.h"
#include "src/scenario/testbed.h"
#include "src/sim/simulator.h"
#include "src/trace/pcapng_reader.h"
#include "src/trace/pcapng_writer.h"
#include "src/trace/trace.h"
#include "src/util/panic.h"

namespace upr {
namespace {

Bytes ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return Bytes(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
}

TEST(TraceRing, BoundedAndOldestFirst) {
  Simulator sim;
  trace::TracerConfig cfg;
  cfg.ring_capacity = 4;
  trace::Tracer tracer(&sim, cfg);

  Bytes payload{0x01, 0x02, 0x03};
  for (int i = 0; i < 10; ++i) {
    tracer.Record(trace::Layer::kSerial, trace::Kind::kSerialEnqueue,
                  trace::Dir::kTx, "e" + std::to_string(i), payload);
  }
  EXPECT_EQ(tracer.stats().recorded, 10u);
  EXPECT_EQ(tracer.stats().ring_evicted, 6u);

  auto ring = tracer.RingSnapshot();
  ASSERT_EQ(ring.size(), 4u);
  // The four newest entries survive, oldest-first.
  for (std::size_t i = 0; i < ring.size(); ++i) {
    EXPECT_EQ(ring[i]->seq, 6 + i);
    EXPECT_EQ(ring[i]->iface, "e" + std::to_string(6 + i));
  }
  EXPECT_NE(tracer.FormatRing().find("e9"), std::string::npos);
}

TEST(TraceRing, TruncatesToSnaplen) {
  Simulator sim;
  trace::TracerConfig cfg;
  cfg.snaplen = 8;
  trace::Tracer tracer(&sim, cfg);

  Bytes big(100, 0xAB);
  tracer.Record(trace::Layer::kMac, trace::Kind::kMacTxStart, trace::Dir::kTx,
                "p", big);
  auto ring = tracer.RingSnapshot();
  ASSERT_EQ(ring.size(), 1u);
  EXPECT_EQ(ring[0]->data.size(), 8u);
  EXPECT_EQ(ring[0]->orig_len, 100u);
  EXPECT_EQ(tracer.stats().truncated, 1u);
}

TEST(TraceRing, DisabledCostsNothingAndScopesNoOp) {
  EXPECT_EQ(trace::Active(), nullptr);
  {
    trace::IfScope scope("pc0 dz0", trace::Dir::kTx);
    // With no tracer installed the scope must not set the ambient name.
    EXPECT_TRUE(trace::CurrentIf().empty());
  }
  trace::DumpActiveRing(stderr);  // no-op, must not crash
}

TEST(TraceHooks, AllLayersEmitOnGatewayPing) {
  TestbedConfig cfg;
  cfg.radio_pcs = 1;
  cfg.ether_hosts = 1;
  Testbed tb(cfg);
  tb.PopulateRadioArp();

  trace::Tracer tracer(&tb.sim());
  trace::ScopedInstall install(&tracer);

  bool ok = false;
  tb.pc(0).stack().icmp().Ping(Testbed::EtherHostIp(0), 32,
                               [&](bool success, SimTime) { ok = success; });
  tb.sim().RunUntil(Seconds(120));
  ASSERT_TRUE(ok);

  const trace::TraceStats& s = tracer.stats();
  EXPECT_GT(s.per_layer[static_cast<int>(trace::Layer::kSerial)], 0u);
  EXPECT_GT(s.per_layer[static_cast<int>(trace::Layer::kKiss)], 0u);
  EXPECT_GT(s.per_layer[static_cast<int>(trace::Layer::kAx25)], 0u);
  EXPECT_GT(s.per_layer[static_cast<int>(trace::Layer::kIp)], 0u);
  EXPECT_GT(s.per_layer[static_cast<int>(trace::Layer::kMac)], 0u);
  EXPECT_GT(s.per_layer[static_cast<int>(trace::Layer::kGateway)], 0u);

  // Timestamps in the ring never run backwards.
  auto ring = tracer.RingSnapshot();
  for (std::size_t i = 1; i < ring.size(); ++i) {
    EXPECT_LE(ring[i - 1]->ts, ring[i]->ts);
  }
}

// The golden-file test of the issue: ping across two digipeaters (a 3-hop
// path for each direction), trace to pcapng, then round-trip the bytes
// through the in-repo reader.
TEST(Pcapng, GoldenDigipeatedRoundTrip) {
  const std::string path = "trace_golden_digi.pcapng";

  TestbedConfig cfg;
  cfg.radio_pcs = 2;
  cfg.ether_hosts = 0;
  cfg.digipeaters = 2;
  Testbed tb(cfg);
  tb.PopulateRadioArp();
  tb.SetDigiPath(0, Testbed::RadioPcIp(1),
                 {Testbed::DigiCallsign(0), Testbed::DigiCallsign(1)});

  bool ok = false;
  {
    trace::TracerConfig tcfg;
    tcfg.pcap_path = path;
    trace::Tracer tracer(&tb.sim(), tcfg);
    ASSERT_TRUE(tracer.pcap_ok());
    trace::ScopedInstall install(&tracer);

    tb.pc(0).stack().icmp().Ping(Testbed::RadioPcIp(1), 16,
                                 [&](bool success, SimTime) { ok = success; });
    tb.sim().RunUntil(Seconds(300));
    tracer.Flush();
    EXPECT_GT(tracer.stats().pcap_packets, 0u);
    EXPECT_GE(tracer.stats().pcap_interfaces, 2u);
  }
  ASSERT_TRUE(ok);

  Bytes file = ReadFileBytes(path);
  ASSERT_FALSE(file.empty());
  std::string error;
  auto parsed = trace::PcapngFile::Parse(file, &error);
  ASSERT_TRUE(parsed.has_value()) << error;

  // Every interface is a named LINKTYPE_AX25_KISS port with nanosecond
  // timestamps.
  ASSERT_GE(parsed->interfaces.size(), 2u);
  for (const auto& idb : parsed->interfaces) {
    EXPECT_EQ(idb.link_type, trace::kLinkTypeAx25Kiss);
    EXPECT_EQ(idb.tsresol, 9);
    EXPECT_FALSE(idb.name.empty());
  }

  // Packets reference real interfaces and sim-time stamps are monotone.
  ASSERT_FALSE(parsed->packets.empty());
  std::uint64_t prev_ts = 0;
  for (const auto& pkt : parsed->packets) {
    EXPECT_LT(pkt.interface_id, parsed->interfaces.size());
    EXPECT_GE(pkt.timestamp, prev_ts);
    prev_ts = pkt.timestamp;
    EXPECT_EQ(pkt.captured_len, pkt.data.size());
  }

  // The capture contains the digipeated UI frame: KISS type byte, then an
  // AX.25 UI frame routed via both digipeaters.
  bool found_digi_ui = false;
  for (const auto& pkt : parsed->packets) {
    if (pkt.data.size() < 2) {
      continue;
    }
    auto decoded = Ax25Frame::DecodeView(
        ByteView(pkt.data.data() + 1, pkt.data.size() - 1));
    if (decoded && decoded->frame.type == Ax25FrameType::kUi &&
        decoded->frame.digipeaters.size() == 2) {
      found_digi_ui = true;
      break;
    }
  }
  EXPECT_TRUE(found_digi_ui);

  // Byte-exact round trip: the reader kept every block raw; concatenating
  // them reconstructs the file.
  Bytes rebuilt;
  for (const auto& block : parsed->raw_blocks) {
    rebuilt.insert(rebuilt.end(), block.begin(), block.end());
  }
  EXPECT_EQ(rebuilt, file);

  // Keep the file on failure (CI uploads *.pcapng artifacts from the build
  // tree); remove it only when everything passed.
  if (!testing::Test::HasFailure()) {
    std::remove(path.c_str());
  }
}

// Satellite regression: EPB packet data is padded to a 32-bit boundary
// relative to the *start of the data field*, not the block or buffer start.
// Frames whose captured length is ≡ 1, 2, 3 (mod 4) each exercise a distinct
// pad width; all must survive writer → strict reader byte-exactly, and the
// file must stay structurally valid (the reader checks every block's
// alignment and trailing length).
TEST(Pcapng, OddLengthPayloadPaddingRoundTrips) {
  Simulator sim;
  const std::string path = "trace_padding.pcapng";
  std::vector<Bytes> frames;
  for (std::size_t len : {1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u}) {
    Bytes f;
    for (std::size_t i = 0; i < len; ++i) {
      f.push_back(static_cast<std::uint8_t>(0xE0 + i));
    }
    frames.push_back(std::move(f));
  }
  {
    trace::TracerConfig cfg;
    cfg.pcap_path = path;
    trace::Tracer tracer(&sim, cfg);
    ASSERT_TRUE(tracer.pcap_ok());
    for (const Bytes& f : frames) {
      tracer.RecordFrame(trace::Layer::kKiss, trace::Kind::kKissFrameOut,
                         trace::Dir::kTx, "pad-port", f);
    }
    tracer.Flush();
  }
  Bytes file = ReadFileBytes(path);
  ASSERT_FALSE(file.empty());
  std::string error;
  auto parsed = trace::PcapngFile::Parse(file, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  ASSERT_EQ(parsed->packets.size(), frames.size());
  for (std::size_t i = 0; i < frames.size(); ++i) {
    // On the wire the tracer prepends the KISS type byte (port 0, data).
    Bytes expected{0x00};
    expected.insert(expected.end(), frames[i].begin(), frames[i].end());
    EXPECT_EQ(parsed->packets[i].data, expected) << "frame " << i;
    EXPECT_EQ(parsed->packets[i].captured_len, expected.size());
    // Options after the padded data must have survived too — if padding were
    // off by even one byte the comment would be garbled or Parse would fail.
    EXPECT_EQ(parsed->packets[i].comment.rfind("kiss:frame-out", 0), 0u)
        << parsed->packets[i].comment;
  }
  std::remove(path.c_str());
}

// Satellite: the ring-buffer assertion hook. ANY failed invariant — not just
// workload failures — must dump the flight recorder before dying.
TEST(TraceRingDeathTest, PanicDumpsActiveRing) {
  Simulator sim;
  trace::Tracer tracer(&sim);
  trace::ScopedInstall install(&tracer);
  tracer.RecordFrame(trace::Layer::kKiss, trace::Kind::kKissFrameOut,
                     trace::Dir::kTx, "death-port", Bytes{0xDE, 0xAD});
  // Note: gtest compiles this as POSIX ERE without REG_NEWLINE, so `.`
  // spans newlines.
  EXPECT_DEATH(UPR_PANIC("invariant %d violated", 42),
               "panic at .*: invariant 42 violated.*"
               "=== trace ring \\(oldest first\\) ===.*death-port");
}

// Without an installed tracer the hook is a no-op: panic still dies cleanly.
TEST(TraceRingDeathTest, PanicWithoutTracerStillAborts) {
  EXPECT_DEATH(UPR_PANIC("bare panic"), "panic at .*: bare panic");
}

TEST(Pcapng, ReaderRejectsCorruptTrailingLength) {
  Simulator sim;
  const std::string path = "trace_corrupt.pcapng";
  {
    trace::TracerConfig cfg;
    cfg.pcap_path = path;
    trace::Tracer tracer(&sim, cfg);
    ASSERT_TRUE(tracer.pcap_ok());
    Bytes frame{0x00, 0x01, 0x02, 0x03, 0x04, 0x05};
    tracer.RecordFrame(trace::Layer::kKiss, trace::Kind::kKissFrameOut,
                       trace::Dir::kTx, "p0", frame);
    tracer.Flush();
  }
  Bytes file = ReadFileBytes(path);
  ASSERT_GT(file.size(), 4u);
  ASSERT_TRUE(trace::PcapngFile::Parse(file).has_value());

  // Flip the last block's trailing total-length field.
  file[file.size() - 4] ^= 0xFF;
  std::string error;
  EXPECT_FALSE(trace::PcapngFile::Parse(file, &error).has_value());
  EXPECT_FALSE(error.empty());
  std::remove(path.c_str());
}

TEST(Pcapng, WriterReportsUnopenableFile) {
  Simulator sim;
  trace::TracerConfig cfg;
  cfg.pcap_path = "/nonexistent-dir/x.pcapng";
  trace::Tracer tracer(&sim, cfg);
  EXPECT_FALSE(tracer.pcap_ok());
  // Recording must still work (ring only).
  Bytes frame{0xAA};
  tracer.RecordFrame(trace::Layer::kKiss, trace::Kind::kKissFrameOut,
                     trace::Dir::kTx, "p0", frame);
  EXPECT_EQ(tracer.stats().recorded, 1u);
  EXPECT_EQ(tracer.stats().pcap_packets, 0u);
}

// Satellite: a mixed capture. Radio ports register as LINKTYPE_AX25_KISS and
// the LAN port as LINKTYPE_ETHERNET, each with its own interface block; the
// Ethernet packet body is the raw Ethernet-II frame with no pseudo-header.
TEST(Pcapng, MixedAx25AndEthernetInterfaces) {
  Simulator sim;
  const std::string path = "trace_mixed.pcapng";
  // dst MAC | src MAC | ethertype 0x0800 | 4 payload bytes.
  Bytes ether_frame{0xAA, 0xBB, 0xCC, 0xDD, 0xEE, 0xFF, 0x02, 0x60,
                    0x8C, 0x11, 0x22, 0x33, 0x08, 0x00, 0xDE, 0xAD,
                    0xBE, 0xEF};
  Bytes ax25_frame{0x10, 0x20, 0x30};
  {
    trace::TracerConfig cfg;
    cfg.pcap_path = path;
    trace::Tracer tracer(&sim, cfg);
    ASSERT_TRUE(tracer.pcap_ok());
    tracer.RecordFrame(trace::Layer::kKiss, trace::Kind::kKissFrameOut,
                       trace::Dir::kTx, "upr0", ax25_frame);
    tracer.RecordEtherFrame(trace::Kind::kEtherFrameOut, trace::Dir::kTx,
                            "qe0", ether_frame);
    tracer.RecordEtherFrame(trace::Kind::kEtherFrameIn, trace::Dir::kRx,
                            "qe0", ether_frame);
    tracer.Flush();
    EXPECT_EQ(tracer.stats().pcap_interfaces, 2u);
  }
  Bytes file = ReadFileBytes(path);
  ASSERT_FALSE(file.empty());
  std::string error;
  auto parsed = trace::PcapngFile::Parse(file, &error);
  ASSERT_TRUE(parsed.has_value()) << error;

  ASSERT_EQ(parsed->interfaces.size(), 2u);
  EXPECT_EQ(parsed->interfaces[0].name, "upr0");
  EXPECT_EQ(parsed->interfaces[0].link_type, trace::kLinkTypeAx25Kiss);
  EXPECT_EQ(parsed->interfaces[1].name, "qe0");
  EXPECT_EQ(parsed->interfaces[1].link_type, trace::kLinkTypeEthernet);

  ASSERT_EQ(parsed->packets.size(), 3u);
  // The AX.25 packet carries the KISS type byte; the Ethernet packets are
  // the raw frame, untouched.
  EXPECT_EQ(parsed->packets[0].interface_id, 0u);
  Bytes kiss_wire{0x00, 0x10, 0x20, 0x30};
  EXPECT_EQ(parsed->packets[0].data, kiss_wire);
  for (std::size_t i : {1u, 2u}) {
    EXPECT_EQ(parsed->packets[i].interface_id, 1u);
    EXPECT_EQ(parsed->packets[i].data, ether_frame);
    EXPECT_EQ(parsed->packets[i].comment.rfind("ether:frame-", 0), 0u)
        << parsed->packets[i].comment;
  }

  // Reusing the names must not mint new interface blocks.
  {
    trace::TracerConfig cfg;
    cfg.pcap_path = path;  // overwrite; fresh writer
    trace::Tracer tracer(&sim, cfg);
    tracer.RecordEtherFrame(trace::Kind::kEtherFrameOut, trace::Dir::kTx,
                            "qe0", ether_frame);
    tracer.RecordEtherFrame(trace::Kind::kEtherFrameOut, trace::Dir::kTx,
                            "qe0", ether_frame);
    tracer.Flush();
    EXPECT_EQ(tracer.stats().pcap_interfaces, 1u);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace upr
