// Tests for the city-scale topology generator (ISSUE 8): spec parsing,
// golden seeded counts, the addressing plan, backbone connectivity, and
// serial-mode equivalence of a short traffic run.
#include <gtest/gtest.h>

#include <string>

#include "src/scenario/topo_gen.h"
#include "src/sim/shard_exec.h"

namespace upr::topo {
namespace {

// ---------------------------------------------------------------------------
// ParseCitySpec

TEST(ParseCitySpec, AcceptsWellFormedSpecs) {
  CitySpec spec;
  std::string error;
  ASSERT_TRUE(ParseCitySpec("city:4x6", &spec, &error)) << error;
  EXPECT_EQ(spec.channels, 4u);
  EXPECT_EQ(spec.stations, 6u);

  ASSERT_TRUE(ParseCitySpec("city:1x1", &spec, &error)) << error;
  EXPECT_EQ(spec.channels, 1u);
  EXPECT_EQ(spec.stations, 1u);

  ASSERT_TRUE(ParseCitySpec("city:250x2000", &spec, &error)) << error;
  EXPECT_EQ(spec.channels, kMaxChannels);
  EXPECT_EQ(spec.stations, kMaxStationsPerChannel);
}

TEST(ParseCitySpec, RejectsMalformedSpecs) {
  const char* bad[] = {
      "",            // empty
      "city",        // no colon
      "city:",       // no dimensions
      "city:4",      // missing 'x'
      "city:4x",     // missing stations
      "city:x6",     // missing channels
      "city:axb",    // not numbers
      "city:4x6x7",  // extra dimension
      "city:-1x5",   // sign
      "city:4 x6",   // embedded space
      "town:4x6",    // unknown scheme
      "city:0x5",    // zero channels
      "city:4x0",    // zero stations
      "city:251x5",  // channels over the 44.<c> octet plan
      "city:4x2001"  // stations over the per-channel address plan
  };
  for (const char* text : bad) {
    CitySpec spec;
    std::string error;
    EXPECT_FALSE(ParseCitySpec(text, &spec, &error)) << "accepted: " << text;
    EXPECT_FALSE(error.empty()) << "no error for: " << text;
  }
}

// ---------------------------------------------------------------------------
// Golden seeded topology counts

CityConfig SmallConfig(std::size_t channels, std::size_t stations) {
  CityConfig cfg;
  cfg.spec = {channels, stations};
  cfg.seed = 42;
  return cfg;
}

TEST(CityTopology, GoldenCountsFourBySix) {
  CityTopology city(SmallConfig(4, 6));
  EXPECT_EQ(city.channel_count(), 4u);
  EXPECT_EQ(city.gateway_count(), 4u);
  EXPECT_EQ(city.station_count(), 24u);
  // 6 stations/channel is under the two-digi threshold: one per channel.
  EXPECT_EQ(city.digipeater_count(), 4u);
  // Ring (4 edges) plus the two cross-town chords 0-2 and 1-3.
  EXPECT_EQ(city.trunk_count(), 6u);
  EXPECT_TRUE(city.BackboneConnected());
  EXPECT_EQ(city.lookahead(), city.config().trunk_latency);
  EXPECT_EQ(city.shards().shard_count(), 4u);
}

TEST(CityTopology, GoldenCountsEightByEight) {
  CityTopology city(SmallConfig(8, 8));
  EXPECT_EQ(city.station_count(), 64u);
  // 8 stations/channel reaches the two-digi threshold.
  EXPECT_EQ(city.digipeater_count(), 16u);
  // Ring (8) plus chords 0-4, 1-5, 2-6, 3-7.
  EXPECT_EQ(city.trunk_count(), 12u);
  EXPECT_TRUE(city.BackboneConnected());
}

TEST(CityTopology, DegenerateBackbones) {
  CityTopology one(SmallConfig(1, 3));
  EXPECT_EQ(one.trunk_count(), 0u);
  EXPECT_TRUE(one.BackboneConnected());

  CityTopology two(SmallConfig(2, 3));
  EXPECT_EQ(two.trunk_count(), 1u);  // a pair gets one trunk, not two
  EXPECT_TRUE(two.BackboneConnected());

  CityTopology three(SmallConfig(3, 3));
  EXPECT_EQ(three.trunk_count(), 3u);  // triangle ring, no room for chords
  EXPECT_TRUE(three.BackboneConnected());
}

// ---------------------------------------------------------------------------
// Addressing plan

TEST(CityTopology, AmprNetAddressPlan) {
  EXPECT_EQ(CityTopology::GatewayIp(0), IpV4Address(44, 0, 0, 1));
  EXPECT_EQ(CityTopology::GatewayIp(7), IpV4Address(44, 7, 0, 1));
  EXPECT_EQ(CityTopology::StationIp(2, 0), IpV4Address(44, 2, 1, 1));
  EXPECT_EQ(CityTopology::StationIp(2, 249), IpV4Address(44, 2, 1, 250));
  EXPECT_EQ(CityTopology::StationIp(2, 250), IpV4Address(44, 2, 2, 1));
  EXPECT_TRUE(CityTopology::StationIp(0, 1999).IsAmprNet());
}

TEST(CityTopology, CallsignsAreDistinct) {
  EXPECT_NE(CityTopology::GatewayCall(0), CityTopology::GatewayCall(1));
  EXPECT_NE(CityTopology::StationCall(0), CityTopology::StationCall(1));
  EXPECT_NE(CityTopology::DigiCall(0, 0), CityTopology::DigiCall(0, 1));
  EXPECT_NE(CityTopology::DigiCall(0, 0), CityTopology::DigiCall(1, 0));
}

// ---------------------------------------------------------------------------
// Traffic + serial-mode equivalence

TEST(CityTopology, SeededRunGeneratesTraffic) {
  CityConfig cfg = SmallConfig(2, 3);
  cfg.radio_bit_rate = 9600;
  CityTopology city(cfg);
  city.Run(Seconds(5));
  const ChannelTraffic total = city.TrafficTotal();
  EXPECT_GT(total.pings_sent, 0u);
  EXPECT_GT(total.pings_ok, 0u);
  // Per-channel counters sum to the total.
  std::uint64_t sent = 0;
  for (std::size_t c = 0; c < city.channel_count(); ++c) {
    sent += city.traffic(c).pings_sent;
  }
  EXPECT_EQ(sent, total.pings_sent);
}

// The same seed must yield the same summary under the unified (pre-shard
// reference) and sharded executors — the in-process face of the tracediff
// gate that tools/CMakeLists.txt runs on pcapng output.
TEST(CityTopology, UnifiedAndShardedSummariesMatch) {
  std::string summaries[2];
  const ShardSet::Mode modes[2] = {ShardSet::Mode::kUnified,
                                   ShardSet::Mode::kSharded};
  for (int m = 0; m < 2; ++m) {
    CityConfig cfg = SmallConfig(3, 4);
    cfg.radio_bit_rate = 9600;
    cfg.mode = modes[m];
    CityTopology city(cfg);
    city.Run(Seconds(8));
    summaries[m] = city.FormatSummary();
  }
  EXPECT_EQ(summaries[0], summaries[1]);
  EXPECT_FALSE(summaries[0].empty());
}

// ...and the parallel executor must agree with both, run to run.
TEST(CityTopology, ParallelSummaryMatchesSerialAndRepeats) {
  std::string serial;
  std::string parallel[2];
  for (int run = 0; run < 3; ++run) {
    CityConfig cfg = SmallConfig(3, 4);
    cfg.radio_bit_rate = 9600;
    if (run > 0) {
      cfg.mode = ShardSet::Mode::kParallel;
      cfg.threads = 3;
    }
    CityTopology city(cfg);
    city.Run(Seconds(8));
    if (run == 0) {
      serial = city.FormatSummary();
    } else {
      parallel[run - 1] = city.FormatSummary();
    }
  }
  EXPECT_EQ(parallel[0], serial);
  EXPECT_EQ(parallel[1], serial);
}

}  // namespace
}  // namespace upr::topo
