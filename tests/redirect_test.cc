// §4.2 extension tests: "most systems will maintain only a single route for
// [AMPRnet]. All packets destined for AMPRnet ... must pass through a single
// gateway. This is not desirable since a packet destined for 44.24.0.5
// should be sent to a West Coast gateway ... whereas a packet destined for
// 44.56.0.5 should be sent to an East Coast gateway. It is conceivable that
// something like this could be handled using [ICMP], but at this time, no
// mechanism is in place."
//
// We put the mechanism in place: hairpin forwarding emits an ICMP host
// redirect and hosts install /32 routes. The two "coasts" are two radio
// channels hanging off two gateways on one Ethernet.
#include <gtest/gtest.h>

#include "src/scenario/testbed.h"

namespace upr {
namespace {

class TwoGatewayFixture : public ::testing::Test {
 protected:
  TwoGatewayFixture() {
    ether_ = std::make_unique<EtherSegment>(&sim_);
    west_channel_ = std::make_unique<RadioChannel>(&sim_, RadioChannelConfig{}, 1);
    east_channel_ = std::make_unique<RadioChannel>(&sim_, RadioChannelConfig{}, 2);

    GatewayHostConfig west;
    west.hostname = "west-gw";
    west.callsign = Ax25Address("N7GWA", 1);
    west.radio_ip = IpV4Address(44, 24, 0, 28);
    west.radio_prefix_len = 16;
    west.ether_ip = IpV4Address(128, 95, 1, 1);
    west.mac_index = 1;
    west.gateway.enforce_access_control = false;
    west.seed = 31;
    west_gw_ = std::make_unique<GatewayHost>(&sim_, west_channel_.get(), ether_.get(),
                                             west);

    GatewayHostConfig east = west;
    east.hostname = "east-gw";
    east.callsign = Ax25Address("W1GWB", 1);
    east.radio_ip = IpV4Address(44, 56, 0, 28);
    east.ether_ip = IpV4Address(128, 95, 1, 2);
    east.mac_index = 2;
    east.seed = 32;
    east_gw_ = std::make_unique<GatewayHost>(&sim_, east_channel_.get(), ether_.get(),
                                             east);

    // Inter-gateway routes over the Ethernet.
    west_gw_->stack().routes().AddVia(IpV4Prefix::FromCidr(IpV4Address(44, 56, 0, 0), 16),
                                      east.ether_ip, west_gw_->ether_if());
    east_gw_->stack().routes().AddVia(IpV4Prefix::FromCidr(IpV4Address(44, 24, 0, 0), 16),
                                      west.ether_ip, east_gw_->ether_if());

    // One PC on each coast.
    RadioStationConfig pc;
    pc.hostname = "pc-west";
    pc.callsign = Ax25Address("KD7WW", 0);
    pc.ip = IpV4Address(44, 24, 0, 10);
    pc.prefix_len = 16;
    pc.seed = 41;
    west_pc_ = std::make_unique<RadioStation>(&sim_, west_channel_.get(), pc);
    west_pc_->stack().routes().AddDefault(west.radio_ip, west_pc_->radio_if());
    west_pc_->radio_if()->AddArpEntry(west.radio_ip, west.callsign);
    west_gw_->radio_if()->AddArpEntry(pc.ip, pc.callsign);

    pc.hostname = "pc-east";
    pc.callsign = Ax25Address("W1EE", 0);
    pc.ip = IpV4Address(44, 56, 0, 5);
    pc.seed = 42;
    east_pc_ = std::make_unique<RadioStation>(&sim_, east_channel_.get(), pc);
    east_pc_->stack().routes().AddDefault(east.radio_ip, east_pc_->radio_if());
    east_pc_->radio_if()->AddArpEntry(east.radio_ip, east.callsign);
    east_gw_->radio_if()->AddArpEntry(pc.ip, pc.callsign);

    // The Internet host with the single route for net 44 (via the west
    // gateway — §4.2's premise).
    EtherHostConfig h;
    h.hostname = "june";
    h.ip = IpV4Address(128, 95, 1, 10);
    h.mac_index = 9;
    h.seed = 43;
    host_ = std::make_unique<EtherHost>(&sim_, ether_.get(), h);
    host_->stack().routes().AddVia(IpV4Prefix::FromCidr(IpV4Address(44, 0, 0, 0), 8),
                                   west.ether_ip, host_->ether_if());
  }

  std::optional<SimTime> Ping(IpV4Address dst) {
    std::optional<SimTime> result;
    bool done = false;
    host_->stack().icmp().Ping(dst, 16,
                               [&](bool ok, SimTime rtt) {
                                 done = true;
                                 if (ok) {
                                   result = rtt;
                                 }
                               },
                               Seconds(120));
    SimTime deadline = sim_.Now() + Seconds(180);
    while (!done && sim_.Now() < deadline && sim_.Step()) {
    }
    return result;
  }

  Simulator sim_;
  std::unique_ptr<EtherSegment> ether_;
  std::unique_ptr<RadioChannel> west_channel_;
  std::unique_ptr<RadioChannel> east_channel_;
  std::unique_ptr<GatewayHost> west_gw_;
  std::unique_ptr<GatewayHost> east_gw_;
  std::unique_ptr<RadioStation> west_pc_;
  std::unique_ptr<RadioStation> east_pc_;
  std::unique_ptr<EtherHost> host_;
};

TEST_F(TwoGatewayFixture, WestCoastTrafficNeedsNoRedirect) {
  ASSERT_TRUE(Ping(IpV4Address(44, 24, 0, 10)).has_value());
  EXPECT_EQ(west_gw_->stack().icmp().redirects_sent(), 0u);
}

TEST_F(TwoGatewayFixture, EastCoastTrafficTriggersRedirect) {
  std::size_t routes_before = host_->stack().routes().size();
  // First ping hairpins through the west gateway (two Ethernet crossings).
  ASSERT_TRUE(Ping(IpV4Address(44, 56, 0, 5)).has_value());
  EXPECT_EQ(west_gw_->stack().icmp().redirects_sent(), 1u);
  EXPECT_EQ(host_->stack().icmp().redirects_accepted(), 1u);
  EXPECT_EQ(host_->stack().routes().size(), routes_before + 1);

  // The installed /32 points at the east gateway.
  const Route* r = host_->stack().routes().Lookup(IpV4Address(44, 56, 0, 5));
  ASSERT_NE(r, nullptr);
  ASSERT_TRUE(r->gateway.has_value());
  EXPECT_EQ(*r->gateway, IpV4Address(128, 95, 1, 2));

  // Second ping bypasses the west gateway entirely.
  std::uint64_t west_forwarded = west_gw_->stack().ip_stats().forwarded;
  ASSERT_TRUE(Ping(IpV4Address(44, 56, 0, 5)).has_value());
  EXPECT_EQ(west_gw_->stack().ip_stats().forwarded, west_forwarded);
  // And no further redirects are needed.
  EXPECT_EQ(west_gw_->stack().icmp().redirects_sent(), 1u);
}

TEST_F(TwoGatewayFixture, RedirectFromWrongSourceIgnored) {
  // A forged redirect from a non-first-hop must not install a route.
  ASSERT_TRUE(Ping(IpV4Address(44, 24, 0, 10)).has_value());
  std::size_t routes_before = host_->stack().routes().size();
  IcmpMessage msg;
  msg.type = kIcmpRedirect;
  msg.code = kRedirectHost;
  ByteWriter w(&msg.body);
  w.WriteU32(IpV4Address(128, 95, 1, 66).value());
  Ipv4Header orig;
  orig.protocol = kIpProtoIcmp;
  orig.source = host_->ip();
  orig.destination = IpV4Address(44, 24, 0, 10);
  w.WriteBytes(orig.Encode(Bytes{}));
  // Deliver as if from the east gateway (not the host's first hop for 44/8).
  east_gw_->stack().SendDatagram(host_->ip(), kIpProtoIcmp, msg.Encode());
  sim_.RunUntil(sim_.Now() + Seconds(10));
  EXPECT_EQ(host_->stack().routes().size(), routes_before);
  EXPECT_EQ(host_->stack().icmp().redirects_accepted(), 0u);
}

TEST_F(TwoGatewayFixture, GatewaysIgnoreRedirects) {
  // A (legitimate-looking) redirect aimed at a forwarding stack is ignored.
  ASSERT_TRUE(Ping(IpV4Address(44, 56, 0, 5)).has_value());
  std::size_t before = west_gw_->stack().routes().size();
  IcmpMessage msg;
  msg.type = kIcmpRedirect;
  msg.code = kRedirectHost;
  ByteWriter w(&msg.body);
  w.WriteU32(IpV4Address(128, 95, 1, 10).value());
  Ipv4Header orig;
  orig.protocol = kIpProtoIcmp;
  orig.source = west_gw_->config().ether_ip;
  orig.destination = IpV4Address(44, 56, 0, 5);
  w.WriteBytes(orig.Encode(Bytes{}));
  east_gw_->stack().SendDatagram(west_gw_->config().ether_ip, kIpProtoIcmp,
                                 msg.Encode());
  sim_.RunUntil(sim_.Now() + Seconds(10));
  EXPECT_EQ(west_gw_->stack().routes().size(), before);
}

TEST_F(TwoGatewayFixture, DisabledRedirectsKeepHairpinning) {
  west_gw_->stack().set_send_redirects(false);
  ASSERT_TRUE(Ping(IpV4Address(44, 56, 0, 5)).has_value());
  std::uint64_t west_forwarded = west_gw_->stack().ip_stats().forwarded;
  ASSERT_TRUE(Ping(IpV4Address(44, 56, 0, 5)).has_value());
  // Without redirects the west gateway keeps relaying every packet.
  EXPECT_GT(west_gw_->stack().ip_stats().forwarded, west_forwarded);
  EXPECT_EQ(host_->stack().icmp().redirects_accepted(), 0u);
}

TEST_F(TwoGatewayFixture, EastPcReachableBothWays) {
  // End-to-end sanity both directions after redirect.
  ASSERT_TRUE(Ping(IpV4Address(44, 56, 0, 5)).has_value());
  bool ok = false;
  east_pc_->stack().icmp().Ping(host_->ip(), 16,
                                [&](bool success, SimTime) { ok = success; },
                                Seconds(120));
  sim_.RunUntil(sim_.Now() + Seconds(180));
  EXPECT_TRUE(ok);
}

}  // namespace
}  // namespace upr
