// Fault-schedule record/replay: the sidecar codec round-trips and rejects
// malformed input, and a recorded seeded testbed run replays bit-identically
// — same pcapng bytes, same trace ring, same netstat counters — even when
// the replay runs with a different testbed seed (the schedule, not the RNGs,
// decides every fault).
#include <gtest/gtest.h>

#include <cstdio>
#include <functional>
#include <string>

#include "src/radio/fault_plan.h"
#include "src/scenario/netstat.h"
#include "src/scenario/testbed.h"
#include "src/trace/trace.h"

namespace upr {
namespace {

fault::Event MakeEvent(SimTime ts, fault::Kind kind, bool outcome,
                       std::uint32_t len, std::uint16_t crc, std::string port) {
  fault::Event e;
  e.ts = ts;
  e.kind = kind;
  e.outcome = outcome;
  e.frame_len = len;
  e.frame_crc = crc;
  e.port = std::move(port);
  return e;
}

TEST(FaultSchedule, SerializeParseRoundTrip) {
  fault::Schedule s;
  s.meta = "--pcs 2 --loss 0.1";
  s.events.push_back(MakeEvent(Seconds(1), fault::Kind::kLoss, true, 42, 0xBEEF,
                               "tnc:pc0"));
  s.events.push_back(MakeEvent(Seconds(2), fault::Kind::kBitError, false, 120,
                               0x1234, "digi:WB7DIGI-0"));
  s.events.push_back(MakeEvent(Seconds(3), fault::Kind::kCollision, true, 0, 0,
                               ""));
  s.events.push_back(MakeEvent(Seconds(4), fault::Kind::kPPersist, false, 17,
                               0xFFFF, "tnc:gw"));

  Bytes wire = s.Serialize();
  std::string error;
  auto parsed = fault::Schedule::Parse(wire, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->meta, s.meta);
  ASSERT_EQ(parsed->events.size(), s.events.size());
  for (std::size_t i = 0; i < s.events.size(); ++i) {
    EXPECT_EQ(parsed->events[i], s.events[i]) << "event " << i;
  }
}

TEST(FaultSchedule, EmptyScheduleRoundTrips) {
  fault::Schedule s;
  auto parsed = fault::Schedule::Parse(s.Serialize(), nullptr);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->events.empty());
  EXPECT_TRUE(parsed->meta.empty());
}

// One-event schedule used by all the strict-reader rejection cases. Layout
// (little-endian): magic@0, version@4, count@8, meta_len@16, meta "m" + 3 pad
// @20, then the event: ts@24, frame_len@32, kind@36, outcome@37, crc@38,
// port_len@40, port "p" + 3 pad @42.
Bytes ValidWire() {
  fault::Schedule s;
  s.meta = "m";
  s.events.push_back(MakeEvent(Seconds(1), fault::Kind::kLoss, true, 5, 7, "p"));
  return s.Serialize();
}

TEST(FaultSchedule, RejectsBadMagic) {
  Bytes wire = ValidWire();
  wire[0] ^= 0xFF;
  std::string error;
  EXPECT_FALSE(fault::Schedule::Parse(wire, &error).has_value());
  EXPECT_NE(error.find("magic"), std::string::npos);
}

TEST(FaultSchedule, RejectsUnknownVersion) {
  Bytes wire = ValidWire();
  wire[4] = 99;
  std::string error;
  EXPECT_FALSE(fault::Schedule::Parse(wire, &error).has_value());
  EXPECT_NE(error.find("version"), std::string::npos);
}

TEST(FaultSchedule, RejectsTruncation) {
  Bytes wire = ValidWire();
  // Every proper prefix must fail: the reader never invents bytes.
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    Bytes prefix(wire.begin(), wire.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(fault::Schedule::Parse(prefix, nullptr).has_value())
        << "prefix of " << cut << " bytes parsed";
  }
}

TEST(FaultSchedule, RejectsTrailingBytes) {
  Bytes wire = ValidWire();
  wire.push_back(0);
  std::string error;
  EXPECT_FALSE(fault::Schedule::Parse(wire, &error).has_value());
  EXPECT_NE(error.find("trailing"), std::string::npos);
}

TEST(FaultSchedule, RejectsUnknownKind) {
  Bytes wire = ValidWire();
  wire[36] = 9;
  std::string error;
  EXPECT_FALSE(fault::Schedule::Parse(wire, &error).has_value());
  EXPECT_NE(error.find("kind"), std::string::npos);
}

TEST(FaultSchedule, RejectsNonBooleanOutcome) {
  Bytes wire = ValidWire();
  wire[37] = 2;
  std::string error;
  EXPECT_FALSE(fault::Schedule::Parse(wire, &error).has_value());
  EXPECT_NE(error.find("boolean"), std::string::npos);
}

TEST(FaultSchedule, RejectsNonzeroPadding) {
  Bytes wire = ValidWire();
  wire[wire.size() - 1] = 1;  // last byte of the port's zero pad
  std::string error;
  EXPECT_FALSE(fault::Schedule::Parse(wire, &error).has_value());
  EXPECT_NE(error.find("padding"), std::string::npos);
}

// --- End-to-end record/replay determinism -------------------------------

std::string SlurpFile(const std::string& path) {
  std::string out;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return out;
  }
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    out.append(buf, n);
  }
  std::fclose(f);
  return out;
}

struct RunResult {
  int replies = 0;
  std::string pcap;     // pcapng file bytes
  std::string ring;     // formatted trace ring
  std::string netstat;  // per-pc counters
  bool replay_clean = false;
  std::vector<std::string> problems;
  fault::Schedule schedule;  // what a record pass captured
};

enum class FaultMode { kNone, kRecord, kReplay };

// A lossy 2-digipeater ping scenario; every channel fault decision flows
// through the installed fault session (if any).
RunResult RunScenario(std::uint64_t seed, const std::string& pcap_path,
                      FaultMode mode, fault::Schedule replay_from = {}) {
  TestbedConfig cfg;
  cfg.radio_pcs = 2;
  cfg.ether_hosts = 0;
  cfg.digipeaters = 2;
  cfg.radio_bit_rate = 9600;
  cfg.radio_loss_rate = 0.08;
  cfg.radio_bit_error_rate = 5e-5;
  cfg.seed = seed;
  Testbed tb(cfg);
  tb.PopulateRadioArp();
  tb.SetDigiPath(0, Testbed::RadioPcIp(1),
                 {Testbed::DigiCallsign(0), Testbed::DigiCallsign(1)});
  tb.SetDigiPath(1, Testbed::RadioPcIp(0),
                 {Testbed::DigiCallsign(1), Testbed::DigiCallsign(0)});

  std::unique_ptr<fault::Session> session;
  if (mode == FaultMode::kRecord) {
    session = std::make_unique<fault::Session>(&tb.sim());
  } else if (mode == FaultMode::kReplay) {
    session = std::make_unique<fault::Session>(&tb.sim(), std::move(replay_from));
  }
  std::unique_ptr<fault::ScopedInstall> fault_install;
  if (session != nullptr) {
    fault_install = std::make_unique<fault::ScopedInstall>(session.get());
  }

  trace::TracerConfig tcfg;
  tcfg.ring_capacity = 8192;
  tcfg.pcap_path = pcap_path;
  trace::Tracer tracer(&tb.sim(), tcfg);
  trace::ScopedInstall trace_install(&tracer);

  RunResult result;
  std::function<void(int)> ping = [&](int remaining) {
    if (remaining == 0) {
      return;
    }
    tb.pc(0).stack().icmp().Ping(Testbed::RadioPcIp(1), 64,
                                 [&, remaining](bool ok, SimTime) {
                                   if (ok) {
                                     ++result.replies;
                                   }
                                   ping(remaining - 1);
                                 });
  };
  ping(5);
  tb.sim().RunUntil(Seconds(900));
  tracer.Flush();
  result.ring = tracer.FormatRing();
  result.netstat = FormatNetstat(tb.pc(0).stack()) +
                   FormatNetstat(tb.pc(1).stack()) +
                   FormatDriverStats(*tb.pc(0).radio_if()) +
                   FormatDriverStats(*tb.pc(1).radio_if());
  result.pcap = SlurpFile(pcap_path);
  if (session != nullptr) {
    result.replay_clean = session->ReplayClean();
    result.problems = session->problems();
    result.schedule = session->schedule();
  }
  return result;
}

TEST(FaultReplay, RecordThenReplayIsBitIdentical) {
  std::string dir = ::testing::TempDir();
  std::string pcap_a = dir + "/fault_replay_a.pcapng";
  std::string pcap_b = dir + "/fault_replay_b.pcapng";

  RunResult recorded = RunScenario(42, pcap_a, FaultMode::kRecord);

  // The lossy scenario must actually have exercised the fault paths.
  ASSERT_FALSE(recorded.schedule.events.empty());
  bool saw_loss = false, saw_ppersist = false;
  for (const fault::Event& e : recorded.schedule.events) {
    saw_loss |= e.kind == fault::Kind::kLoss;
    saw_ppersist |= e.kind == fault::Kind::kPPersist;
  }
  EXPECT_TRUE(saw_loss);
  EXPECT_TRUE(saw_ppersist);

  // Round-trip the schedule through the sidecar file, as uprsim does.
  std::string sidecar = dir + "/fault_replay.faults";
  ASSERT_TRUE(recorded.schedule.SaveToFile(sidecar));
  std::string error;
  auto loaded = fault::Schedule::LoadFromFile(sidecar, &error);
  ASSERT_TRUE(loaded.has_value()) << error;

  // Replay pass with a DIFFERENT testbed seed: the channel and MAC RNGs are
  // bypassed by the schedule, so the run must still reproduce exactly.
  RunResult replayed =
      RunScenario(999, pcap_b, FaultMode::kReplay, std::move(*loaded));
  for (const std::string& p : replayed.problems) {
    ADD_FAILURE() << p;
  }
  EXPECT_TRUE(replayed.replay_clean);
  EXPECT_EQ(recorded.replies, replayed.replies);
  EXPECT_EQ(recorded.ring, replayed.ring);
  EXPECT_EQ(recorded.netstat, replayed.netstat);
  ASSERT_FALSE(recorded.pcap.empty());
  EXPECT_EQ(recorded.pcap, replayed.pcap) << "pcapng files differ";
}

TEST(FaultReplay, RecordingDoesNotPerturbTheRun) {
  std::string dir = ::testing::TempDir();
  std::string pcap_plain = dir + "/fault_plain.pcapng";
  std::string pcap_rec = dir + "/fault_recorded.pcapng";
  RunResult plain = RunScenario(42, pcap_plain, FaultMode::kNone);
  // Same seed, recording installed: the recorder calls each RNG roll exactly
  // as the uninstrumented run does, so the runs must be identical.
  RunResult recorded = RunScenario(42, pcap_rec, FaultMode::kRecord);
  EXPECT_EQ(plain.replies, recorded.replies);
  EXPECT_EQ(plain.ring, recorded.ring);
  EXPECT_EQ(plain.netstat, recorded.netstat);
  ASSERT_FALSE(plain.pcap.empty());
  EXPECT_EQ(plain.pcap, recorded.pcap);
}

TEST(FaultReplay, ExhaustedScheduleFallsBackToRng) {
  // Replaying an empty schedule: every decision falls past the end of the
  // schedule, is rolled live, counted as exhausted, and flagged not-clean.
  TestbedConfig cfg;
  cfg.radio_pcs = 2;
  cfg.ether_hosts = 0;
  cfg.radio_loss_rate = 0.5;
  cfg.seed = 7;
  Testbed tb(cfg);
  fault::Session session(&tb.sim(), fault::Schedule{});
  tb.PopulateRadioArp();
  fault::ScopedInstall fault_install(&session);
  bool done = false;
  tb.pc(0).stack().icmp().Ping(Testbed::RadioPcIp(1), 32,
                               [&](bool, SimTime) { done = true; });
  tb.sim().RunUntil(Seconds(120));
  EXPECT_TRUE(done);
  EXPECT_GT(session.stats().exhausted, 0u);
  EXPECT_FALSE(session.ReplayClean());
}

}  // namespace
}  // namespace upr
