#include <gtest/gtest.h>

#include "src/scenario/testbed.h"

namespace upr {
namespace {

// End-to-end reproduction of §2.3's "Setup and Testing": an isolated PC
// reaches a system on the Ethernet by way of the new gateway.
TEST(TestbedTest, PingAcrossGateway) {
  TestbedConfig cfg;
  cfg.radio_pcs = 1;
  cfg.ether_hosts = 1;
  Testbed tb(cfg);
  tb.PopulateRadioArp();
  bool ok = false;
  SimTime rtt = 0;
  tb.pc(0).stack().icmp().Ping(Testbed::EtherHostIp(0), 32, [&](bool success, SimTime t) {
    ok = success;
    rtt = t;
  });
  tb.sim().RunUntil(Seconds(120));
  EXPECT_TRUE(ok);
  // The radio hop at 1200 bps dominates: seconds, not LAN microseconds.
  EXPECT_GT(rtt, Seconds(1));
  EXPECT_EQ(tb.gateway().stack().ip_stats().forwarded, 2u);
}

TEST(TestbedTest, TcpTransferAcrossGateway) {
  TestbedConfig cfg;
  cfg.radio_pcs = 1;
  cfg.ether_hosts = 1;
  cfg.radio_bit_rate = 9600;  // keep runtime sane
  Testbed tb(cfg);
  tb.PopulateRadioArp();
  Bytes got;
  Bytes payload(2000, 0x42);
  tb.host(0).tcp().Listen(23, [&](TcpConnection* c) {
    c->set_data_handler([&](const Bytes& d) {
      got.insert(got.end(), d.begin(), d.end());
    });
  });
  TcpConnection* client = tb.pc(0).tcp().Connect(Testbed::EtherHostIp(0), 23);
  ASSERT_NE(client, nullptr);
  client->set_connected_handler([&, client] { client->Send(payload); });
  tb.sim().RunUntil(Seconds(600));
  EXPECT_EQ(got, payload);
}

TEST(TestbedTest, TcpTransferEtherToRadioDirection) {
  TestbedConfig cfg;
  cfg.radio_pcs = 1;
  cfg.ether_hosts = 1;
  cfg.radio_bit_rate = 9600;
  Testbed tb(cfg);
  tb.PopulateRadioArp();
  // Radio PC runs the server; ether host connects in (allowed: access
  // control off by default).
  Bytes got;
  tb.pc(0).tcp().Listen(25, [&](TcpConnection* c) {
    c->set_data_handler([&](const Bytes& d) {
      got.insert(got.end(), d.begin(), d.end());
    });
  });
  TcpConnection* client = tb.host(0).tcp().Connect(Testbed::RadioPcIp(0), 25);
  ASSERT_NE(client, nullptr);
  Bytes mail = BytesFromString("MAIL FROM:<neuman@uw.edu>\r\nDATA\r\nhello\r\n.\r\n");
  client->set_connected_handler([&, client] { client->Send(mail); });
  tb.sim().RunUntil(Seconds(600));
  EXPECT_EQ(got, mail);
}

TEST(TestbedTest, TwoPcsShareTheChannel) {
  TestbedConfig cfg;
  cfg.radio_pcs = 2;
  cfg.ether_hosts = 1;
  cfg.radio_bit_rate = 9600;
  Testbed tb(cfg);
  tb.PopulateRadioArp();
  int replies = 0;
  for (std::size_t i = 0; i < 2; ++i) {
    tb.pc(i).stack().icmp().Ping(Testbed::EtherHostIp(0), 16,
                                 [&](bool success, SimTime) {
                                   if (success) {
                                     ++replies;
                                   }
                                 },
                                 Seconds(300));
  }
  tb.sim().RunUntil(Seconds(600));
  EXPECT_EQ(replies, 2);
  // CSMA kept the two stations from destroying each other permanently; some
  // deferrals or collisions are fine.
  EXPECT_GE(tb.channel().transmissions(), 4u);
}

TEST(TestbedTest, DigipeaterPathThroughTestbed) {
  TestbedConfig cfg;
  cfg.radio_pcs = 2;
  cfg.ether_hosts = 0;
  cfg.digipeaters = 1;
  cfg.radio_bit_rate = 9600;
  Testbed tb(cfg);
  tb.PopulateRadioArp();
  tb.SetDigiPath(0, Testbed::RadioPcIp(1), {Testbed::DigiCallsign(0)});
  bool ok = false;
  tb.pc(0).stack().icmp().Ping(Testbed::RadioPcIp(1), 16,
                               [&](bool success, SimTime) { ok = success; },
                               Seconds(300));
  tb.sim().RunUntil(Seconds(600));
  EXPECT_TRUE(ok);
  EXPECT_GE(tb.digi(0).frames_repeated(), 1u);
}

TEST(TestbedTest, AddressingPlanMatchesPaper) {
  EXPECT_EQ(Testbed::GatewayRadioIp().ToString(), "44.24.0.28");
  EXPECT_TRUE(Testbed::GatewayRadioIp().IsAmprNet());
  EXPECT_FALSE(Testbed::GatewayEtherIp().IsAmprNet());
}

TEST(TestbedTest, DeterministicAcrossRuns) {
  auto run = [] {
    TestbedConfig cfg;
    cfg.radio_pcs = 2;
    cfg.ether_hosts = 1;
    cfg.seed = 99;
    Testbed tb(cfg);
    tb.PopulateRadioArp();
    SimTime rtt = 0;
    tb.pc(0).stack().icmp().Ping(Testbed::EtherHostIp(0), 32,
                                 [&](bool, SimTime t) { rtt = t; });
    tb.sim().RunUntil(Seconds(120));
    return rtt;
  };
  SimTime first = run();
  EXPECT_GT(first, 0);
  EXPECT_EQ(first, run());
}

}  // namespace
}  // namespace upr
