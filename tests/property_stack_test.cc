// Property suites for the IP machinery: fragmentation/reassembly must be a
// lossless identity for any payload size and MTU, longest-prefix routing
// must agree with a brute-force oracle, and checksums must satisfy their
// algebraic properties.
#include <gtest/gtest.h>

#include <tuple>

#include "src/net/netstack.h"
#include "src/net/routing.h"
#include "src/sim/simulator.h"
#include "src/util/crc.h"
#include "src/util/random.h"

namespace upr {
namespace {

// An in-memory interface pair: everything A outputs is fed to B's stack.
class PipeInterface : public NetInterface {
 public:
  PipeInterface(std::string name, std::size_t mtu) : NetInterface(std::move(name), mtu) {}
  void Output(const Bytes& dgram, IpV4Address next_hop) override {
    if (peer_ != nullptr) {
      peer_->DeliverToStack(dgram);
    }
  }
  void set_peer(PipeInterface* peer) { peer_ = peer; }

 private:
  PipeInterface* peer_ = nullptr;
};

class FragmentationProperty
    : public ::testing::TestWithParam<std::tuple<std::size_t /*mtu*/, std::uint64_t>> {};

TEST_P(FragmentationProperty, FragmentReassembleIdentity) {
  std::size_t mtu = std::get<0>(GetParam());
  Rng rng(std::get<1>(GetParam()));
  Simulator sim;
  NetStack a(&sim, "a"), b(&sim, "b");
  auto ia = std::make_unique<PipeInterface>("p0", mtu);
  ia->Configure(IpV4Address(10, 0, 0, 1), 24);
  auto ib = std::make_unique<PipeInterface>("p0", mtu);
  ib->Configure(IpV4Address(10, 0, 0, 2), 24);
  ia->set_peer(ib.get());
  ib->set_peer(ia.get());
  a.AddInterface(std::move(ia));
  b.AddInterface(std::move(ib));
  // The pipe has no wire time, so a heavily fragmented datagram lands on the
  // input queue in one burst; lift the IFQ cap (4000 B at MTU 68 is ~84
  // fragments) — queue-overflow behaviour is covered by NetStackTest.
  b.set_input_queue_limit(256);

  Bytes got;
  int deliveries = 0;
  b.RegisterProtocol(99, [&](const Ipv4Header&, ByteView p, NetInterface*) {
    got.assign(p.begin(), p.end());
    ++deliveries;
  });

  for (int iter = 0; iter < 30; ++iter) {
    std::size_t len = rng.NextBelow(4000) + 1;
    Bytes payload(len);
    for (std::size_t i = 0; i < len; ++i) {
      payload[i] = static_cast<std::uint8_t>(rng.NextBelow(256));
    }
    got.clear();
    deliveries = 0;
    ASSERT_TRUE(a.SendDatagram(IpV4Address(10, 0, 0, 2), 99, payload));
    sim.RunAll();
    ASSERT_EQ(deliveries, 1) << "len=" << len << " mtu=" << mtu;
    EXPECT_EQ(got, payload) << "len=" << len << " mtu=" << mtu;
  }
}

INSTANTIATE_TEST_SUITE_P(
    MtuSweep, FragmentationProperty,
    ::testing::Combine(::testing::Values(68u, 256u, 576u, 1500u),
                       ::testing::Values(9ull, 10ull)),
    [](const auto& param_info) {
      return "mtu" + std::to_string(std::get<0>(param_info.param)) + "_seed" +
             std::to_string(std::get<1>(param_info.param));
    });

class RoutingProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RoutingProperty, LongestPrefixMatchesBruteForceOracle) {
  Rng rng(GetParam());
  Simulator sim;
  NetStack stack(&sim, "r");
  auto iface = std::make_unique<PipeInterface>("p0", 1500);
  PipeInterface* ifp = iface.get();
  stack.AddInterface(std::move(iface));

  RouteTable table;
  struct Entry {
    IpV4Prefix prefix;
    int metric;
  };
  std::vector<Entry> oracle;
  for (int i = 0; i < 60; ++i) {
    int plen = static_cast<int>(rng.NextBelow(33));
    IpV4Address addr(static_cast<std::uint32_t>(rng.NextU64()));
    auto prefix = IpV4Prefix::FromCidr(addr, plen);
    int metric = static_cast<int>(rng.NextBelow(4));
    table.AddDirect(prefix, ifp, metric);
    oracle.push_back({prefix, metric});
  }

  for (int probe = 0; probe < 2000; ++probe) {
    IpV4Address dst(static_cast<std::uint32_t>(rng.NextU64()));
    // Oracle: best = longest mask, tie by min metric, tie by first inserted.
    const Entry* best = nullptr;
    for (const auto& e : oracle) {
      if (!e.prefix.Contains(dst)) {
        continue;
      }
      if (best == nullptr || e.prefix.mask > best->prefix.mask ||
          (e.prefix.mask == best->prefix.mask && e.metric < best->metric)) {
        best = &e;
      }
    }
    const Route* found = table.Lookup(dst);
    if (best == nullptr) {
      EXPECT_EQ(found, nullptr);
    } else {
      ASSERT_NE(found, nullptr);
      EXPECT_EQ(found->prefix.mask, best->prefix.mask);
      EXPECT_EQ(found->metric, best->metric);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoutingProperty, ::testing::Values(41, 42, 43, 44));

class ChecksumProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChecksumProperty, InternetChecksumVerifiesToZero) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 300; ++iter) {
    std::size_t len = rng.NextBelow(200) + 2;
    if (len % 2 != 0) {
      ++len;  // keep a dedicated 16-bit slot for the checksum
    }
    Bytes data(len);
    for (auto& b : data) {
      b = static_cast<std::uint8_t>(rng.NextBelow(256));
    }
    data[len - 2] = 0;
    data[len - 1] = 0;
    std::uint16_t sum = InternetChecksum(data);
    data[len - 2] = static_cast<std::uint8_t>(sum >> 8);
    data[len - 1] = static_cast<std::uint8_t>(sum & 0xFF);
    EXPECT_EQ(InternetChecksum(data), 0);
  }
}

TEST_P(ChecksumProperty, PartialSumsCompose) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 300; ++iter) {
    std::size_t len = (rng.NextBelow(100) + 1) * 2;  // even split point
    Bytes data(len * 2);
    for (auto& b : data) {
      b = static_cast<std::uint8_t>(rng.NextBelow(256));
    }
    std::uint32_t whole = ChecksumPartial(data.data(), data.size());
    std::uint32_t split = ChecksumPartial(data.data() + len, data.size() - len,
                                          ChecksumPartial(data.data(), len));
    EXPECT_EQ(ChecksumFinish(whole), ChecksumFinish(split));
  }
}

TEST_P(ChecksumProperty, Crc16DetectsAllSingleAndDoubleBitErrors) {
  Rng rng(GetParam());
  Bytes frame(64);
  for (auto& b : frame) {
    b = static_cast<std::uint8_t>(rng.NextBelow(256));
  }
  std::uint16_t good = Crc16Ccitt(frame);
  for (int iter = 0; iter < 500; ++iter) {
    Bytes mutated = frame;
    std::size_t bit1 = rng.NextBelow(frame.size() * 8);
    mutated[bit1 / 8] ^= static_cast<std::uint8_t>(1u << (bit1 % 8));
    if (rng.Chance(0.5)) {
      std::size_t bit2 = rng.NextBelow(frame.size() * 8);
      if (bit2 != bit1) {
        mutated[bit2 / 8] ^= static_cast<std::uint8_t>(1u << (bit2 % 8));
      }
    }
    if (mutated != frame) {
      EXPECT_NE(Crc16Ccitt(mutated), good);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChecksumProperty, ::testing::Values(71, 72, 73));

// --- Simulator stress ---------------------------------------------------------

class SimulatorStress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimulatorStress, RandomScheduleCancelPreservesOrdering) {
  Rng rng(GetParam());
  Simulator sim;
  SimTime last_seen = -1;
  std::size_t executed = 0;
  std::vector<std::uint64_t> cancellable;
  for (int i = 0; i < 20000; ++i) {
    SimTime when = static_cast<SimTime>(rng.NextBelow(1'000'000'000));
    auto id = sim.ScheduleAt(when, [&, when] {
      EXPECT_GE(when, last_seen);
      last_seen = when;
      ++executed;
    });
    if (rng.Chance(0.25)) {
      cancellable.push_back(id);
    }
  }
  std::size_t cancelled = 0;
  for (auto id : cancellable) {
    sim.Cancel(id);
    ++cancelled;
  }
  sim.RunAll();
  EXPECT_EQ(executed, 20000u - cancelled);
  EXPECT_TRUE(sim.Idle());
}

TEST_P(SimulatorStress, TimersUnderChurn) {
  Rng rng(GetParam());
  Simulator sim;
  constexpr int kTimers = 200;
  std::vector<std::unique_ptr<Timer>> timers;
  std::vector<int> fire_counts(kTimers, 0);
  for (int i = 0; i < kTimers; ++i) {
    timers.push_back(std::make_unique<Timer>(&sim, [&fire_counts, i] {
      ++fire_counts[static_cast<std::size_t>(i)];
    }));
  }
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < kTimers; ++i) {
      double action = rng.NextDouble();
      if (action < 0.5) {
        timers[static_cast<std::size_t>(i)]->Restart(
            static_cast<SimTime>(rng.NextBelow(1000) + 1));
      } else if (action < 0.7) {
        timers[static_cast<std::size_t>(i)]->Stop();
      }
    }
    sim.RunUntil(sim.Now() + 500);
  }
  sim.RunAll();
  // Every timer fired at most once per restart and none is still pending.
  EXPECT_TRUE(sim.Idle());
  for (int i = 0; i < kTimers; ++i) {
    EXPECT_LE(fire_counts[static_cast<std::size_t>(i)], 50);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimulatorStress, ::testing::Values(1001, 1002));

}  // namespace
}  // namespace upr
