#include <gtest/gtest.h>

#include "src/ax25/address.h"
#include "src/ax25/frame.h"

namespace upr {
namespace {

TEST(Ax25AddressTest, ConstructionUpcasesAndValidates) {
  Ax25Address a("n7akr", 5);
  EXPECT_EQ(a.callsign(), "N7AKR");
  EXPECT_EQ(a.ssid(), 5);
  EXPECT_FALSE(a.IsNull());

  EXPECT_TRUE(Ax25Address("", 0).IsNull());
  EXPECT_TRUE(Ax25Address("TOOLONG1", 0).IsNull());
  EXPECT_TRUE(Ax25Address("AB", 16).IsNull());
  EXPECT_TRUE(Ax25Address("A B", 0).IsNull());
}

TEST(Ax25AddressTest, ParseForms) {
  auto a = Ax25Address::Parse("KD7NM");
  ASSERT_TRUE(a);
  EXPECT_EQ(a->callsign(), "KD7NM");
  EXPECT_EQ(a->ssid(), 0);

  auto b = Ax25Address::Parse("W1GOH-15");
  ASSERT_TRUE(b);
  EXPECT_EQ(b->ssid(), 15);

  EXPECT_FALSE(Ax25Address::Parse("W1GOH-16"));
  EXPECT_FALSE(Ax25Address::Parse("W1GOH-"));
  EXPECT_FALSE(Ax25Address::Parse("-3"));
  EXPECT_FALSE(Ax25Address::Parse("W1GOH-1X"));
}

TEST(Ax25AddressTest, ToStringRoundTrip) {
  EXPECT_EQ(Ax25Address("K3MC", 0).ToString(), "K3MC");
  EXPECT_EQ(Ax25Address("K3MC", 7).ToString(), "K3MC-7");
  auto parsed = Ax25Address::Parse(Ax25Address("KB7DZ", 3).ToString());
  ASSERT_TRUE(parsed);
  EXPECT_EQ(*parsed, Ax25Address("KB7DZ", 3));
}

TEST(Ax25AddressTest, WireEncodingShiftsCharacters) {
  Ax25Address a("AB1", 4);
  auto wire = a.Encode(/*c_or_h_bit=*/true, /*last=*/false);
  EXPECT_EQ(wire[0], 'A' << 1);
  EXPECT_EQ(wire[1], 'B' << 1);
  EXPECT_EQ(wire[2], '1' << 1);
  EXPECT_EQ(wire[3], ' ' << 1);  // padding
  // SSID octet: C=1, reserved=11, ssid=4, ext=0.
  EXPECT_EQ(wire[6], 0x80 | 0x60 | (4 << 1));
}

TEST(Ax25AddressTest, WireDecodeRoundTrip) {
  for (std::uint8_t ssid : {0, 1, 15}) {
    for (bool bit : {false, true}) {
      for (bool last : {false, true}) {
        Ax25Address a("N7XYZ", ssid);
        auto wire = a.Encode(bit, last);
        auto d = Ax25Address::Decode(wire.data());
        ASSERT_TRUE(d);
        EXPECT_EQ(d->address, a);
        EXPECT_EQ(d->c_or_h_bit, bit);
        EXPECT_EQ(d->last, last);
      }
    }
  }
}

TEST(Ax25AddressTest, DecodeRejectsGarbage) {
  std::uint8_t bad[7] = {0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x61};
  EXPECT_FALSE(Ax25Address::Decode(bad));  // low bits set in callsign
  std::uint8_t spaces[7] = {' ' << 1, ' ' << 1, ' ' << 1, ' ' << 1,
                            ' ' << 1, ' ' << 1, 0x61};
  EXPECT_FALSE(Ax25Address::Decode(spaces));  // empty callsign
}

TEST(Ax25AddressTest, Broadcast) {
  EXPECT_TRUE(Ax25Address::Broadcast().IsBroadcast());
  EXPECT_TRUE(Ax25Address("CQ", 0).IsBroadcast());
  EXPECT_FALSE(Ax25Address("CQ", 2).IsBroadcast());
  EXPECT_FALSE(Ax25Address("N7AKR", 0).IsBroadcast());
}

class Ax25FrameTest : public ::testing::Test {
 protected:
  Ax25Address dst_{"KD7NM", 0};
  Ax25Address src_{"N7AKR", 1};
};

TEST_F(Ax25FrameTest, UiRoundTrip) {
  Bytes info = BytesFromString("hello radio");
  Ax25Frame f = Ax25Frame::MakeUi(dst_, src_, kPidIp, info);
  auto d = Ax25Frame::Decode(f.Encode());
  ASSERT_TRUE(d);
  EXPECT_EQ(d->destination, dst_);
  EXPECT_EQ(d->source, src_);
  EXPECT_EQ(d->type, Ax25FrameType::kUi);
  EXPECT_EQ(d->pid, kPidIp);
  EXPECT_EQ(d->info, info);
  EXPECT_TRUE(d->command);
  EXPECT_TRUE(d->digipeaters.empty());
}

TEST_F(Ax25FrameTest, DigipeaterListRoundTrip) {
  std::vector<Ax25Digipeater> digis{{Ax25Address("WB7RA", 0), true},
                                    {Ax25Address("WB7RB", 2), false}};
  Ax25Frame f = Ax25Frame::MakeUi(dst_, src_, kPidNoLayer3, Bytes{1, 2}, digis);
  auto d = Ax25Frame::Decode(f.Encode());
  ASSERT_TRUE(d);
  ASSERT_EQ(d->digipeaters.size(), 2u);
  EXPECT_EQ(d->digipeaters[0].address, Ax25Address("WB7RA", 0));
  EXPECT_TRUE(d->digipeaters[0].repeated);
  EXPECT_FALSE(d->digipeaters[1].repeated);
  EXPECT_FALSE(d->DigipeatingComplete());
  EXPECT_EQ(d->NextDigipeater()->address, Ax25Address("WB7RB", 2));
}

TEST_F(Ax25FrameTest, EightDigipeatersMax) {
  std::vector<Ax25Digipeater> digis;
  for (int i = 0; i < 8; ++i) {
    digis.push_back({Ax25Address("WB7R" + std::string(1, static_cast<char>('A' + i)), 0),
                     false});
  }
  Ax25Frame f = Ax25Frame::MakeUi(dst_, src_, kPidNoLayer3, Bytes{}, digis);
  auto d = Ax25Frame::Decode(f.Encode());
  ASSERT_TRUE(d);
  EXPECT_EQ(d->digipeaters.size(), 8u);
}

TEST_F(Ax25FrameTest, AllSupervisoryAndUnnumberedTypesRoundTrip) {
  for (auto type : {Ax25FrameType::kRr, Ax25FrameType::kRnr, Ax25FrameType::kRej,
                    Ax25FrameType::kSabm, Ax25FrameType::kDisc, Ax25FrameType::kUa,
                    Ax25FrameType::kDm, Ax25FrameType::kFrmr}) {
    Ax25Frame f;
    f.destination = dst_;
    f.source = src_;
    f.type = type;
    f.nr = 5;
    f.poll_final = true;
    auto d = Ax25Frame::Decode(f.Encode());
    ASSERT_TRUE(d) << Ax25FrameTypeName(type);
    EXPECT_EQ(d->type, type);
    EXPECT_TRUE(d->poll_final);
    if (type == Ax25FrameType::kRr || type == Ax25FrameType::kRnr ||
        type == Ax25FrameType::kRej) {
      EXPECT_EQ(d->nr, 5);
    }
  }
}

TEST_F(Ax25FrameTest, IFrameSequenceNumbers) {
  for (std::uint8_t ns = 0; ns < 8; ++ns) {
    for (std::uint8_t nr = 0; nr < 8; ++nr) {
      Ax25Frame f;
      f.destination = dst_;
      f.source = src_;
      f.type = Ax25FrameType::kI;
      f.ns = ns;
      f.nr = nr;
      f.pid = kPidNoLayer3;
      f.info = Bytes{0xAB};
      auto d = Ax25Frame::Decode(f.Encode());
      ASSERT_TRUE(d);
      EXPECT_EQ(d->type, Ax25FrameType::kI);
      EXPECT_EQ(d->ns, ns);
      EXPECT_EQ(d->nr, nr);
      EXPECT_EQ(d->info, Bytes{0xAB});
    }
  }
}

TEST_F(Ax25FrameTest, CommandResponseBitsRoundTrip) {
  for (bool command : {true, false}) {
    Ax25Frame f;
    f.destination = dst_;
    f.source = src_;
    f.command = command;
    f.type = Ax25FrameType::kRr;
    auto d = Ax25Frame::Decode(f.Encode());
    ASSERT_TRUE(d);
    EXPECT_EQ(d->command, command);
  }
}

TEST_F(Ax25FrameTest, DecodeRejectsTruncated) {
  Ax25Frame f = Ax25Frame::MakeUi(dst_, src_, kPidIp, BytesFromString("x"));
  Bytes wire = f.Encode();
  for (std::size_t len = 0; len < 15; ++len) {
    Bytes cut(wire.begin(), wire.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_FALSE(Ax25Frame::Decode(cut)) << "len=" << len;
  }
}

TEST_F(Ax25FrameTest, DecodeRejectsUnterminatedAddressList) {
  // Address list says "more follows" but frame ends.
  Ax25Frame f = Ax25Frame::MakeUi(dst_, src_, kPidIp, Bytes{});
  Bytes wire = f.Encode();
  wire[13] &= ~0x01;  // clear the extension bit on the source address
  wire.resize(14);
  EXPECT_FALSE(Ax25Frame::Decode(wire));
}

TEST_F(Ax25FrameTest, ToStringIsInformative) {
  Ax25Frame f = Ax25Frame::MakeUi(dst_, src_, kPidIp, BytesFromString("abc"),
                                  {{Ax25Address("WB7RA", 0), true}});
  std::string s = f.ToString();
  EXPECT_NE(s.find("N7AKR-1>KD7NM"), std::string::npos);
  EXPECT_NE(s.find("WB7RA*"), std::string::npos);
  EXPECT_NE(s.find("UI"), std::string::npos);
}

// --- AX.25 v2.2: XID parameter TLVs and mod-128 control fields -------------

// The golden XID information field, byte for byte as a real v2.2 TNC emits
// it (captured from a direwolf-lineage stack's XID dump): FI 0x82, GI 0x80,
// GL 23, then classes / optional-functions / I-field-length / window /
// ack-timer / retries for the full v2.2 offer (mod 128 + SREJ, k=127,
// N1=1536 bytes, T1=3 s, N2=10).
const std::uint8_t kGoldenXidInfo[] = {
    0x82, 0x80, 0x00, 0x17,              // FI, GI, GL=23
    0x02, 0x02, 0x21, 0x00,              // PI 2: classes ABM half-duplex
    0x03, 0x03, 0x86, 0xa8, 0x22,        // PI 3: optional functions
    0x06, 0x02, 0x30, 0x00,              // PI 6: I field length RX (bits)
    0x08, 0x01, 0x7f,                    // PI 8: window size RX
    0x09, 0x02, 0x0b, 0xb8,              // PI 9: ack timer (ms)
    0x0a, 0x01, 0x0a,                    // PI 10: retries
};

TEST(Ax25XidTest, DefaultOfferEncodesToGoldenBytes) {
  Ax25XidParams p;  // defaults are the full v2.2 offer
  Bytes enc = p.Encode();
  ASSERT_EQ(enc.size(), sizeof(kGoldenXidInfo));
  for (std::size_t i = 0; i < sizeof(kGoldenXidInfo); ++i) {
    EXPECT_EQ(enc[i], kGoldenXidInfo[i]) << "offset " << i;
  }
}

TEST(Ax25XidTest, GoldenBytesDecodeToDefaults) {
  auto p = Ax25XidParams::Decode(
      ByteView(kGoldenXidInfo, sizeof(kGoldenXidInfo)));
  ASSERT_TRUE(p);
  EXPECT_EQ(*p, Ax25XidParams{});
  EXPECT_TRUE(p->Mod128());
  EXPECT_TRUE(p->Srej());
  EXPECT_EQ(p->window_size_rx, 127);
  EXPECT_EQ(p->i_field_length_rx, 1536u * 8);
  EXPECT_EQ(p->ack_timer_ms, 3000u);
  EXPECT_EQ(p->retries, 10u);
}

TEST(Ax25XidTest, DecodeRejectsWrongFormatAndTruncation) {
  Bytes good(kGoldenXidInfo, kGoldenXidInfo + sizeof(kGoldenXidInfo));
  Bytes bad_fi = good;
  bad_fi[0] = 0x81;
  EXPECT_FALSE(Ax25XidParams::Decode(bad_fi));
  Bytes bad_gi = good;
  bad_gi[1] = 0x81;
  EXPECT_FALSE(Ax25XidParams::Decode(bad_gi));
  for (std::size_t len = 0; len < 4; ++len) {
    EXPECT_FALSE(Ax25XidParams::Decode(ByteView(kGoldenXidInfo, len)));
  }
  Bytes bad_gl = good;
  bad_gl[3] = 0x40;  // GL larger than the remaining bytes
  EXPECT_FALSE(Ax25XidParams::Decode(bad_gl));
}

TEST(Ax25XidTest, UnknownParametersAreSkipped) {
  // PI 0x7f (unknown, 1 byte) between window and timer must not derail the
  // parse; absent parameters keep their defaults.
  Bytes info = {0x82, 0x80, 0x00, 0x09, 0x08, 0x01, 0x21,
                0x7f, 0x01, 0xee, 0x0a, 0x01, 0x05};
  auto p = Ax25XidParams::Decode(info);
  ASSERT_TRUE(p);
  EXPECT_EQ(p->window_size_rx, 0x21);
  EXPECT_EQ(p->retries, 5u);
  EXPECT_EQ(p->ack_timer_ms, 3000u);  // untouched default
}

TEST_F(Ax25FrameTest, XidFrameUsesControl0xAF) {
  Ax25Frame f;
  f.destination = dst_;
  f.source = src_;
  f.command = true;
  f.type = Ax25FrameType::kXid;
  Ax25XidParams offer;
  f.info = offer.Encode();
  Bytes wire = f.Encode();
  // 14 address bytes, then the XID control byte (P=0), then the TLVs.
  ASSERT_GT(wire.size(), 15u);
  EXPECT_EQ(wire[14], 0xAF);
  ASSERT_EQ(wire.size(), 15u + sizeof(kGoldenXidInfo));
  for (std::size_t i = 0; i < sizeof(kGoldenXidInfo); ++i) {
    EXPECT_EQ(wire[15 + i], kGoldenXidInfo[i]) << "offset " << i;
  }
  auto back = Ax25Frame::Decode(wire);
  ASSERT_TRUE(back);
  EXPECT_EQ(back->type, Ax25FrameType::kXid);
  EXPECT_TRUE(back->command);
  auto params = Ax25XidParams::Decode(back->info);
  ASSERT_TRUE(params);
  EXPECT_EQ(*params, offer);
}

TEST_F(Ax25FrameTest, SabmeControlByte) {
  Ax25Frame f;
  f.destination = dst_;
  f.source = src_;
  f.command = true;
  f.poll_final = true;
  f.type = Ax25FrameType::kSabme;
  Bytes wire = f.Encode();
  EXPECT_EQ(wire[14], 0x6F | 0x10);  // SABME with P set
  auto back = Ax25Frame::Decode(wire);
  ASSERT_TRUE(back);
  EXPECT_EQ(back->type, Ax25FrameType::kSabme);
  EXPECT_TRUE(back->poll_final);
}

TEST_F(Ax25FrameTest, Mod128IFrameTwoByteControl) {
  Ax25Frame f;
  f.destination = dst_;
  f.source = src_;
  f.command = true;
  f.type = Ax25FrameType::kI;
  f.modulus = Ax25Modulus::kMod128;
  f.ns = 93;
  f.nr = 117;
  f.poll_final = true;
  f.pid = kPidIp;
  f.info = BytesFromString("hello");
  Bytes wire = f.Encode();
  // Extended I control: byte 0 = N(S)<<1 (bit 0 clear), byte 1 = N(R)<<1|P.
  EXPECT_EQ(wire[14], static_cast<std::uint8_t>(93 << 1));
  EXPECT_EQ(wire[15], static_cast<std::uint8_t>((117 << 1) | 1));
  auto back = Ax25Frame::Decode(wire, Ax25Modulus::kMod128);
  ASSERT_TRUE(back);
  EXPECT_EQ(back->type, Ax25FrameType::kI);
  EXPECT_EQ(back->ns, 93);
  EXPECT_EQ(back->nr, 117);
  EXPECT_TRUE(back->poll_final);
  EXPECT_EQ(back->pid, kPidIp);
  EXPECT_EQ(back->info, BytesFromString("hello"));
}

TEST_F(Ax25FrameTest, Mod128SupervisoryRoundTrip) {
  struct Case {
    Ax25FrameType type;
    std::uint8_t code;
  } cases[] = {
      {Ax25FrameType::kRr, 0x01},
      {Ax25FrameType::kRnr, 0x05},
      {Ax25FrameType::kRej, 0x09},
      {Ax25FrameType::kSrej, 0x0D},
  };
  for (const Case& c : cases) {
    Ax25Frame f;
    f.destination = dst_;
    f.source = src_;
    f.command = false;
    f.type = c.type;
    f.modulus = Ax25Modulus::kMod128;
    f.nr = 100;
    Bytes wire = f.Encode();
    EXPECT_EQ(wire[14], c.code);
    EXPECT_EQ(wire[15], static_cast<std::uint8_t>(100 << 1));
    auto back = Ax25Frame::Decode(wire, Ax25Modulus::kMod128);
    ASSERT_TRUE(back) << Ax25FrameTypeName(c.type);
    EXPECT_EQ(back->type, c.type);
    EXPECT_EQ(back->nr, 100);
    EXPECT_FALSE(back->poll_final);
  }
}

TEST_F(Ax25FrameTest, Mod128SrejMod8RoundTrip) {
  // SREJ also exists in mod-8 (single control byte, N(R) in the top bits).
  Ax25Frame f;
  f.destination = dst_;
  f.source = src_;
  f.command = false;
  f.type = Ax25FrameType::kSrej;
  f.nr = 5;
  Bytes wire = f.Encode();
  EXPECT_EQ(wire[14], static_cast<std::uint8_t>((5 << 5) | 0x0D));
  auto back = Ax25Frame::Decode(wire);
  ASSERT_TRUE(back);
  EXPECT_EQ(back->type, Ax25FrameType::kSrej);
  EXPECT_EQ(back->nr, 5);
}

TEST_F(Ax25FrameTest, Mod128DecodeRejectsTruncatedSecondControlByte) {
  Ax25Frame f;
  f.destination = dst_;
  f.source = src_;
  f.command = false;
  f.type = Ax25FrameType::kRr;
  f.modulus = Ax25Modulus::kMod128;
  f.nr = 9;
  Bytes wire = f.Encode();
  wire.resize(15);  // keep only the first control byte
  EXPECT_FALSE(Ax25Frame::Decode(wire, Ax25Modulus::kMod128));
  // U frames stay one control byte even in mod 128.
  Ax25Frame ua;
  ua.destination = dst_;
  ua.source = src_;
  ua.command = false;
  ua.type = Ax25FrameType::kUa;
  Bytes ua_wire = ua.Encode();
  EXPECT_TRUE(Ax25Frame::Decode(ua_wire, Ax25Modulus::kMod128));
}

}  // namespace
}  // namespace upr
