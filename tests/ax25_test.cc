#include <gtest/gtest.h>

#include "src/ax25/address.h"
#include "src/ax25/frame.h"

namespace upr {
namespace {

TEST(Ax25AddressTest, ConstructionUpcasesAndValidates) {
  Ax25Address a("n7akr", 5);
  EXPECT_EQ(a.callsign(), "N7AKR");
  EXPECT_EQ(a.ssid(), 5);
  EXPECT_FALSE(a.IsNull());

  EXPECT_TRUE(Ax25Address("", 0).IsNull());
  EXPECT_TRUE(Ax25Address("TOOLONG1", 0).IsNull());
  EXPECT_TRUE(Ax25Address("AB", 16).IsNull());
  EXPECT_TRUE(Ax25Address("A B", 0).IsNull());
}

TEST(Ax25AddressTest, ParseForms) {
  auto a = Ax25Address::Parse("KD7NM");
  ASSERT_TRUE(a);
  EXPECT_EQ(a->callsign(), "KD7NM");
  EXPECT_EQ(a->ssid(), 0);

  auto b = Ax25Address::Parse("W1GOH-15");
  ASSERT_TRUE(b);
  EXPECT_EQ(b->ssid(), 15);

  EXPECT_FALSE(Ax25Address::Parse("W1GOH-16"));
  EXPECT_FALSE(Ax25Address::Parse("W1GOH-"));
  EXPECT_FALSE(Ax25Address::Parse("-3"));
  EXPECT_FALSE(Ax25Address::Parse("W1GOH-1X"));
}

TEST(Ax25AddressTest, ToStringRoundTrip) {
  EXPECT_EQ(Ax25Address("K3MC", 0).ToString(), "K3MC");
  EXPECT_EQ(Ax25Address("K3MC", 7).ToString(), "K3MC-7");
  auto parsed = Ax25Address::Parse(Ax25Address("KB7DZ", 3).ToString());
  ASSERT_TRUE(parsed);
  EXPECT_EQ(*parsed, Ax25Address("KB7DZ", 3));
}

TEST(Ax25AddressTest, WireEncodingShiftsCharacters) {
  Ax25Address a("AB1", 4);
  auto wire = a.Encode(/*c_or_h_bit=*/true, /*last=*/false);
  EXPECT_EQ(wire[0], 'A' << 1);
  EXPECT_EQ(wire[1], 'B' << 1);
  EXPECT_EQ(wire[2], '1' << 1);
  EXPECT_EQ(wire[3], ' ' << 1);  // padding
  // SSID octet: C=1, reserved=11, ssid=4, ext=0.
  EXPECT_EQ(wire[6], 0x80 | 0x60 | (4 << 1));
}

TEST(Ax25AddressTest, WireDecodeRoundTrip) {
  for (std::uint8_t ssid : {0, 1, 15}) {
    for (bool bit : {false, true}) {
      for (bool last : {false, true}) {
        Ax25Address a("N7XYZ", ssid);
        auto wire = a.Encode(bit, last);
        auto d = Ax25Address::Decode(wire.data());
        ASSERT_TRUE(d);
        EXPECT_EQ(d->address, a);
        EXPECT_EQ(d->c_or_h_bit, bit);
        EXPECT_EQ(d->last, last);
      }
    }
  }
}

TEST(Ax25AddressTest, DecodeRejectsGarbage) {
  std::uint8_t bad[7] = {0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x61};
  EXPECT_FALSE(Ax25Address::Decode(bad));  // low bits set in callsign
  std::uint8_t spaces[7] = {' ' << 1, ' ' << 1, ' ' << 1, ' ' << 1,
                            ' ' << 1, ' ' << 1, 0x61};
  EXPECT_FALSE(Ax25Address::Decode(spaces));  // empty callsign
}

TEST(Ax25AddressTest, Broadcast) {
  EXPECT_TRUE(Ax25Address::Broadcast().IsBroadcast());
  EXPECT_TRUE(Ax25Address("CQ", 0).IsBroadcast());
  EXPECT_FALSE(Ax25Address("CQ", 2).IsBroadcast());
  EXPECT_FALSE(Ax25Address("N7AKR", 0).IsBroadcast());
}

class Ax25FrameTest : public ::testing::Test {
 protected:
  Ax25Address dst_{"KD7NM", 0};
  Ax25Address src_{"N7AKR", 1};
};

TEST_F(Ax25FrameTest, UiRoundTrip) {
  Bytes info = BytesFromString("hello radio");
  Ax25Frame f = Ax25Frame::MakeUi(dst_, src_, kPidIp, info);
  auto d = Ax25Frame::Decode(f.Encode());
  ASSERT_TRUE(d);
  EXPECT_EQ(d->destination, dst_);
  EXPECT_EQ(d->source, src_);
  EXPECT_EQ(d->type, Ax25FrameType::kUi);
  EXPECT_EQ(d->pid, kPidIp);
  EXPECT_EQ(d->info, info);
  EXPECT_TRUE(d->command);
  EXPECT_TRUE(d->digipeaters.empty());
}

TEST_F(Ax25FrameTest, DigipeaterListRoundTrip) {
  std::vector<Ax25Digipeater> digis{{Ax25Address("WB7RA", 0), true},
                                    {Ax25Address("WB7RB", 2), false}};
  Ax25Frame f = Ax25Frame::MakeUi(dst_, src_, kPidNoLayer3, Bytes{1, 2}, digis);
  auto d = Ax25Frame::Decode(f.Encode());
  ASSERT_TRUE(d);
  ASSERT_EQ(d->digipeaters.size(), 2u);
  EXPECT_EQ(d->digipeaters[0].address, Ax25Address("WB7RA", 0));
  EXPECT_TRUE(d->digipeaters[0].repeated);
  EXPECT_FALSE(d->digipeaters[1].repeated);
  EXPECT_FALSE(d->DigipeatingComplete());
  EXPECT_EQ(d->NextDigipeater()->address, Ax25Address("WB7RB", 2));
}

TEST_F(Ax25FrameTest, EightDigipeatersMax) {
  std::vector<Ax25Digipeater> digis;
  for (int i = 0; i < 8; ++i) {
    digis.push_back({Ax25Address("WB7R" + std::string(1, static_cast<char>('A' + i)), 0),
                     false});
  }
  Ax25Frame f = Ax25Frame::MakeUi(dst_, src_, kPidNoLayer3, Bytes{}, digis);
  auto d = Ax25Frame::Decode(f.Encode());
  ASSERT_TRUE(d);
  EXPECT_EQ(d->digipeaters.size(), 8u);
}

TEST_F(Ax25FrameTest, AllSupervisoryAndUnnumberedTypesRoundTrip) {
  for (auto type : {Ax25FrameType::kRr, Ax25FrameType::kRnr, Ax25FrameType::kRej,
                    Ax25FrameType::kSabm, Ax25FrameType::kDisc, Ax25FrameType::kUa,
                    Ax25FrameType::kDm, Ax25FrameType::kFrmr}) {
    Ax25Frame f;
    f.destination = dst_;
    f.source = src_;
    f.type = type;
    f.nr = 5;
    f.poll_final = true;
    auto d = Ax25Frame::Decode(f.Encode());
    ASSERT_TRUE(d) << Ax25FrameTypeName(type);
    EXPECT_EQ(d->type, type);
    EXPECT_TRUE(d->poll_final);
    if (type == Ax25FrameType::kRr || type == Ax25FrameType::kRnr ||
        type == Ax25FrameType::kRej) {
      EXPECT_EQ(d->nr, 5);
    }
  }
}

TEST_F(Ax25FrameTest, IFrameSequenceNumbers) {
  for (std::uint8_t ns = 0; ns < 8; ++ns) {
    for (std::uint8_t nr = 0; nr < 8; ++nr) {
      Ax25Frame f;
      f.destination = dst_;
      f.source = src_;
      f.type = Ax25FrameType::kI;
      f.ns = ns;
      f.nr = nr;
      f.pid = kPidNoLayer3;
      f.info = Bytes{0xAB};
      auto d = Ax25Frame::Decode(f.Encode());
      ASSERT_TRUE(d);
      EXPECT_EQ(d->type, Ax25FrameType::kI);
      EXPECT_EQ(d->ns, ns);
      EXPECT_EQ(d->nr, nr);
      EXPECT_EQ(d->info, Bytes{0xAB});
    }
  }
}

TEST_F(Ax25FrameTest, CommandResponseBitsRoundTrip) {
  for (bool command : {true, false}) {
    Ax25Frame f;
    f.destination = dst_;
    f.source = src_;
    f.command = command;
    f.type = Ax25FrameType::kRr;
    auto d = Ax25Frame::Decode(f.Encode());
    ASSERT_TRUE(d);
    EXPECT_EQ(d->command, command);
  }
}

TEST_F(Ax25FrameTest, DecodeRejectsTruncated) {
  Ax25Frame f = Ax25Frame::MakeUi(dst_, src_, kPidIp, BytesFromString("x"));
  Bytes wire = f.Encode();
  for (std::size_t len = 0; len < 15; ++len) {
    Bytes cut(wire.begin(), wire.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_FALSE(Ax25Frame::Decode(cut)) << "len=" << len;
  }
}

TEST_F(Ax25FrameTest, DecodeRejectsUnterminatedAddressList) {
  // Address list says "more follows" but frame ends.
  Ax25Frame f = Ax25Frame::MakeUi(dst_, src_, kPidIp, Bytes{});
  Bytes wire = f.Encode();
  wire[13] &= ~0x01;  // clear the extension bit on the source address
  wire.resize(14);
  EXPECT_FALSE(Ax25Frame::Decode(wire));
}

TEST_F(Ax25FrameTest, ToStringIsInformative) {
  Ax25Frame f = Ax25Frame::MakeUi(dst_, src_, kPidIp, BytesFromString("abc"),
                                  {{Ax25Address("WB7RA", 0), true}});
  std::string s = f.ToString();
  EXPECT_NE(s.find("N7AKR-1>KD7NM"), std::string::npos);
  EXPECT_NE(s.find("WB7RA*"), std::string::npos);
  EXPECT_NE(s.find("UI"), std::string::npos);
}

}  // namespace
}  // namespace upr
