// Edge cases and failure injection across modules: queue overflows, oversize
// frames, mid-transfer resets, node failures, ICMP-driven connection aborts.
#include <gtest/gtest.h>

#include "src/apps/bbs.h"
#include "src/netrom/netrom.h"
#include "src/scenario/testbed.h"

namespace upr {
namespace {

TEST(DriverEdgeTest, SerialBacklogCapDropsOutput) {
  Simulator sim;
  RadioChannel channel(&sim);
  RadioStationConfig cfg;
  cfg.hostname = "pc";
  cfg.callsign = Ax25Address("KD7AA", 0);
  cfg.ip = IpV4Address(44, 24, 0, 10);
  cfg.driver.max_serial_backlog = 512;  // tiny IFQ
  cfg.serial_baud = 1200;               // slow serial: backlog builds fast
  cfg.seed = 1;
  RadioStation pc(&sim, &channel, cfg);
  pc.radio_if()->AddArpEntry(IpV4Address(44, 24, 0, 11), Ax25Address("KD7AB", 0));
  // Burst far more than the backlog can hold.
  for (int i = 0; i < 30; ++i) {
    pc.stack().SendDatagram(IpV4Address(44, 24, 0, 11), 99, Bytes(200, 0x11));
  }
  EXPECT_GT(pc.radio_if()->driver_stats().output_drops, 0u);
  EXPECT_GT(pc.radio_if()->stats().odrops, 0u);
  sim.RunUntil(Seconds(120));  // whatever was queued still drains
}

TEST(DriverEdgeTest, OversizeKissFrameDroppedByDecoder) {
  Simulator sim;
  RadioChannel channel(&sim);
  RadioStationConfig a_cfg;
  a_cfg.hostname = "a";
  a_cfg.callsign = Ax25Address("KD7AA", 0);
  a_cfg.ip = IpV4Address(44, 24, 0, 10);
  a_cfg.serial_baud = 1'000'000;  // keep the test fast
  a_cfg.seed = 1;
  RadioStation a(&sim, &channel, a_cfg);
  RadioStationConfig b_cfg = a_cfg;
  b_cfg.hostname = "b";
  b_cfg.callsign = Ax25Address("KD7AB", 0);
  b_cfg.ip = IpV4Address(44, 24, 0, 11);
  b_cfg.seed = 2;
  RadioStation b(&sim, &channel, b_cfg);
  // A KISS stream exceeding the 4096-byte decoder cap, fed straight up B's
  // serial line (a broken or hostile TNC); the driver must drop and resync.
  // (Sent over the air it would already be dropped by the sending TNC's own
  // KISS decoder — defense at both layers.)
  Ax25Frame huge = Ax25Frame::MakeUi(b.callsign(), a.callsign(), kPidNoLayer3,
                                     Bytes(6000, 0x22));
  b.serial().b().Write(KissEncodeData(huge.Encode()));
  sim.RunUntil(Seconds(120));
  EXPECT_EQ(b.radio_if()->kiss_decoder().oversize_drops(), 1u);
  EXPECT_EQ(b.radio_if()->driver_stats().frames_in, 0u);
  // The decoder resynchronizes: a normal frame still arrives over the air.
  a.radio_if()->SendRawFrame(
      Ax25Frame::MakeUi(b.callsign(), a.callsign(), kPidNoLayer3, Bytes{1}));
  sim.RunUntil(Seconds(240));
  EXPECT_EQ(b.radio_if()->driver_stats().frames_in, 1u);
}

TEST(TcpEdgeTest, HalfCloseStillDeliversServerData) {
  TestbedConfig cfg;
  cfg.radio_pcs = 0;
  cfg.ether_hosts = 2;
  Testbed tb(cfg);
  Bytes client_got;
  TcpConnection* server = nullptr;
  tb.host(0).tcp().Listen(23, [&](TcpConnection* c) { server = c; });
  TcpConnection* client = tb.host(1).tcp().Connect(Testbed::EtherHostIp(0), 23);
  ASSERT_NE(client, nullptr);
  client->set_data_handler([&](const Bytes& d) {
    client_got.insert(client_got.end(), d.begin(), d.end());
  });
  client->set_connected_handler([&] { client->Close(); });  // client half-closes
  tb.sim().RunUntil(Seconds(5));
  ASSERT_NE(server, nullptr);
  // Server sends after seeing the client's FIN.
  server->Send(BytesFromString("late data"));
  server->Close();
  tb.sim().RunUntil(Seconds(30));
  EXPECT_EQ(client_got, BytesFromString("late data"));
  EXPECT_EQ(server->state(), TcpState::kClosed);
}

TEST(TcpEdgeTest, SendAfterCloseRefused) {
  TestbedConfig cfg;
  cfg.radio_pcs = 0;
  cfg.ether_hosts = 2;
  Testbed tb(cfg);
  tb.host(0).tcp().Listen(23, [](TcpConnection*) {});
  TcpConnection* client = tb.host(1).tcp().Connect(Testbed::EtherHostIp(0), 23);
  tb.sim().RunUntil(Seconds(5));
  client->Close();
  EXPECT_EQ(client->Send(Bytes{1, 2, 3}), 0u);
}

TEST(TcpEdgeTest, ReapClosedReleasesConnections) {
  TestbedConfig cfg;
  cfg.radio_pcs = 0;
  cfg.ether_hosts = 2;
  cfg.tcp.time_wait = Seconds(5);
  Testbed tb(cfg);
  tb.host(0).tcp().Listen(23, [](TcpConnection* c) {
    c->set_remote_closed_handler([c] { c->Close(); });
  });
  for (int i = 0; i < 5; ++i) {
    TcpConnection* client = tb.host(1).tcp().Connect(Testbed::EtherHostIp(0), 23);
    ASSERT_NE(client, nullptr);
    client->set_connected_handler([client] { client->Close(); });
    tb.sim().RunUntil(tb.sim().Now() + Seconds(30));
  }
  tb.host(0).tcp().ReapClosed();
  tb.host(1).tcp().ReapClosed();
  EXPECT_EQ(tb.host(0).tcp().connection_count(), 0u);
  EXPECT_EQ(tb.host(1).tcp().connection_count(), 0u);
}

TEST(TcpEdgeTest, IcmpAdminProhibitedAbortsConnection) {
  // §4.3 + BSD semantics: when the gateway refuses traffic and says so via
  // ICMP, the wire-side TCP gives up immediately instead of retrying for
  // minutes.
  TestbedConfig cfg;
  cfg.radio_pcs = 1;
  cfg.ether_hosts = 1;
  cfg.radio_bit_rate = 9600;
  cfg.enforce_access_control = true;
  Testbed tb2(cfg);
  tb2.PopulateRadioArp();
  tb2.pc(0).tcp().Listen(23, [](TcpConnection*) {});
  TcpConnection* client = tb2.host(0).tcp().Connect(Testbed::RadioPcIp(0), 23);
  ASSERT_NE(client, nullptr);
  tb2.sim().RunUntil(Seconds(2));
  // The gateway denied the SYN silently (send_prohibited_icmp is off by
  // default, matching the era); forge the ICMP a modern gateway would send
  // and verify the TCP-side handling.
  // Forge the gateway's prohibited message about the client's SYN.
  Ipv4Header orig;
  orig.protocol = kIpProtoTcp;
  orig.source = Testbed::EtherHostIp(0);
  orig.destination = Testbed::RadioPcIp(0);
  Bytes tcp_start;
  ByteWriter w(&tcp_start);
  w.WriteU16(client->local_port());
  w.WriteU16(23);
  w.WriteU32(0);
  IcmpMessage msg;
  msg.type = kIcmpUnreachable;
  msg.code = kUnreachAdminProhibited;
  ByteWriter bw(&msg.body);
  bw.WriteU32(0);
  bw.WriteBytes(orig.Encode(tcp_start));
  std::string error;
  client->set_error_handler([&](const std::string& e) { error = e; });
  tb2.gateway().stack().SendDatagram(Testbed::EtherHostIp(0), kIpProtoIcmp,
                                     msg.Encode());
  tb2.sim().RunUntil(tb2.sim().Now() + Seconds(10));
  EXPECT_EQ(client->state(), TcpState::kClosed);
  EXPECT_NE(error.find("unreachable"), std::string::npos);
}

TEST(LapbEdgeTest, PeerResetMidTransferKeepsLinkUsable) {
  Simulator sim;
  Ax25LinkConfig cfg;
  cfg.t1 = Seconds(2);
  std::unique_ptr<Ax25Link> a, b;
  a = std::make_unique<Ax25Link>(&sim, Ax25Address("AAA", 0),
                                 [&](const Ax25Frame& f) {
                                   sim.Schedule(Milliseconds(50),
                                                [&, f] { b->HandleFrame(f); });
                                 },
                                 cfg);
  b = std::make_unique<Ax25Link>(&sim, Ax25Address("BBB", 0),
                                 [&](const Ax25Frame& f) {
                                   sim.Schedule(Milliseconds(50),
                                                [&, f] { a->HandleFrame(f); });
                                 },
                                 cfg);
  b->set_accept_handler([](const Ax25Address&) { return true; });
  Bytes received;
  Ax25Connection* server = nullptr;
  b->set_connection_handler([&](Ax25Connection* c) {
    server = c;
    c->set_data_handler([&](const Bytes& d) {
      received.insert(received.end(), d.begin(), d.end());
    });
  });
  Ax25Connection* conn = a->Connect(Ax25Address("BBB", 0));
  conn->Send(BytesFromString("first"));
  sim.RunUntil(Seconds(20));
  ASSERT_EQ(received, BytesFromString("first"));
  // A re-connects (link reset via new SABM) and sends again.
  conn->Disconnect();
  sim.RunUntil(Seconds(40));
  conn = a->Connect(Ax25Address("BBB", 0));
  conn->Send(BytesFromString("second"));
  sim.RunUntil(Seconds(80));
  EXPECT_EQ(received, BytesFromString("firstsecond"));
}

TEST(NetRomEdgeTest, DeadRelayRoutesAgeOut) {
  Simulator sim;
  RadioChannelConfig rc;
  rc.bit_rate = 9600;
  RadioChannel channel(&sim, rc, 5);
  std::vector<std::unique_ptr<RadioStation>> stations;
  std::vector<std::unique_ptr<NetRomNode>> nodes;
  for (int i = 0; i < 3; ++i) {
    RadioStationConfig c;
    c.hostname = "n" + std::to_string(i);
    c.callsign = Ax25Address("ND" + std::to_string(i), 0);
    c.ip = IpV4Address(44, 24, 5, static_cast<std::uint8_t>(10 + i));
    c.seed = 900 + static_cast<std::uint64_t>(i);
    stations.push_back(std::make_unique<RadioStation>(&sim, &channel, c));
    NetRomConfig nc;
    nc.learn_neighbors = false;
    nc.nodes_interval = Seconds(60);
    nc.initial_obsolescence = 3;
    nodes.push_back(std::make_unique<NetRomNode>(&sim, stations.back()->radio_if(), nc));
  }
  nodes[0]->AddNeighbor(nodes[1]->callsign(), 200);
  nodes[1]->AddNeighbor(nodes[0]->callsign(), 200);
  nodes[1]->AddNeighbor(nodes[2]->callsign(), 200);
  nodes[2]->AddNeighbor(nodes[1]->callsign(), 200);
  // Converge.
  sim.RunUntil(Seconds(60 * 5));
  ASSERT_TRUE(nodes[0]->RouteTo(nodes[2]->callsign()));
  // Kill the relay: node 0's learned route to node 2 must age out (the route
  // to node 1 itself is pinned as a static neighbor).
  nodes[1]->set_enabled(false);
  sim.RunUntil(Seconds(60 * 15));
  EXPECT_FALSE(nodes[0]->RouteTo(nodes[2]->callsign()));
  // Bring it back: routes re-learn.
  nodes[1]->set_enabled(true);
  sim.RunUntil(Seconds(60 * 25));
  EXPECT_TRUE(nodes[0]->RouteTo(nodes[2]->callsign()));
}

TEST(BbsEdgeTest, UnknownCommandAndBadReadHandled) {
  Simulator sim;
  RadioChannelConfig rc;
  rc.bit_rate = 9600;
  RadioChannel channel(&sim, rc, 6);
  RadioStationConfig c;
  c.hostname = "bbs";
  c.callsign = Ax25Address("W7BBS", 0);
  c.ip = IpV4Address(44, 24, 6, 1);
  c.seed = 1;
  RadioStation bbs_station(&sim, &channel, c);
  c.hostname = "user";
  c.callsign = Ax25Address("KD7NM", 0);
  c.ip = IpV4Address(44, 24, 6, 2);
  c.seed = 2;
  RadioStation user_station(&sim, &channel, c);
  auto bbs_link = BindAx25LinkToDriver(&sim, bbs_station.radio_if());
  auto user_link = BindAx25LinkToDriver(&sim, user_station.radio_if());
  Ax25Bbs bbs(bbs_link.get(), "[test]");
  BbsTerminal term(user_link.get(), Ax25Address("W7BBS", 0));
  sim.RunUntil(Seconds(60));
  ASSERT_TRUE(term.connected());
  term.SendLine("X");       // unknown
  term.SendLine("R 99");    // out of range
  term.SendLine("S");       // malformed send
  sim.RunUntil(Seconds(300));
  auto saw = [&](const std::string& needle) {
    for (const auto& line : term.transcript()) {
      if (line.find(needle) != std::string::npos) {
        return true;
      }
    }
    return false;
  };
  EXPECT_TRUE(saw("?"));
  EXPECT_TRUE(saw("No such message"));
  EXPECT_TRUE(saw("Usage: S"));
  EXPECT_TRUE(term.connected());
}

}  // namespace
}  // namespace upr
