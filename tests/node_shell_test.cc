// End-to-end test of §1's NET/ROM user workflow: "users would connect to a
// node on the network. They would then connect to the NET/ROM node nearest
// their destination. Finally, they would connect to their destination."
//
// A terminal user in Seattle connects (AX.25) to the SEA node, crosses the
// SEA-MID-TAC backbone on a layer-4 circuit, and from the TAC node connects
// onward (AX.25 again) to a BBS — three networks spliced end to end.
#include <gtest/gtest.h>

#include "src/apps/bbs.h"
#include "src/netrom/node_shell.h"
#include "src/scenario/testbed.h"
#include "src/tnc/command_tnc.h"
#include "src/util/crc.h"

namespace upr {
namespace {

class NodeShellFixture : public ::testing::Test {
 protected:
  struct NodeSite {
    std::unique_ptr<RadioStation> station;
    std::unique_ptr<NetRomNode> node;
    std::unique_ptr<NetRomTransport> transport;
    std::unique_ptr<Ax25Link> user_link;
    std::unique_ptr<NetRomNodeShell> shell;
  };

  NodeShellFixture() {
    RadioChannelConfig rc;
    rc.bit_rate = 9600;
    channel_ = std::make_unique<RadioChannel>(&sim_, rc, 404);
    const char* calls[] = {"N7SEA", "W7MID", "K7TAC"};
    const char* aliases[] = {"SEA", "MID", "TAC"};
    for (int i = 0; i < 3; ++i) {
      auto site = std::make_unique<NodeSite>();
      RadioStationConfig c;
      c.hostname = aliases[i];
      c.callsign = *Ax25Address::Parse(calls[i]);
      c.ip = IpV4Address(44, 24, 10, static_cast<std::uint8_t>(10 + i));
      c.seed = 600 + static_cast<std::uint64_t>(i);
      site->station = std::make_unique<RadioStation>(&sim_, channel_.get(), c);
      NetRomConfig nc;
      nc.alias = aliases[i];
      nc.learn_neighbors = false;
      nc.nodes_interval = Seconds(120);
      site->node = std::make_unique<NetRomNode>(&sim_, site->station->radio_if(), nc);
      NetRomTransportConfig tc;
      tc.retransmit_timeout = Seconds(60);
      site->transport = std::make_unique<NetRomTransport>(site->node.get(), tc);
      Ax25LinkConfig lc;
      lc.t1 = Seconds(8);
      site->user_link = MakeNodeUserLink(&sim_, site->station->radio_if(),
                                         site->node.get(), lc);
      site->shell = std::make_unique<NetRomNodeShell>(
          site->node.get(), site->transport.get(), site->user_link.get());
      sites_.push_back(std::move(site));
    }
    // Chain SEA - MID - TAC.
    sites_[0]->node->AddNeighbor(sites_[1]->node->callsign(), 200);
    sites_[1]->node->AddNeighbor(sites_[0]->node->callsign(), 200);
    sites_[1]->node->AddNeighbor(sites_[2]->node->callsign(), 200);
    sites_[2]->node->AddNeighbor(sites_[1]->node->callsign(), 200);
    // Converge routes.
    for (int round = 0; round < 3; ++round) {
      for (auto& s : sites_) {
        s->node->BroadcastNodes();
      }
      sim_.RunUntil(sim_.Now() + Seconds(60));
    }
  }

  Simulator sim_;
  std::unique_ptr<RadioChannel> channel_;
  std::vector<std::unique_ptr<NodeSite>> sites_;
};

// A user station with a plain Ax25Link pointed at the SEA node.
struct ShellUser {
  ShellUser(Simulator* sim, RadioChannel* channel, const char* call,
            std::uint64_t seed) {
    RadioStationConfig c;
    c.hostname = call;
    c.callsign = *Ax25Address::Parse(call);
    c.ip = IpV4Address(44, 24, 10, 99);
    c.seed = seed;
    station = std::make_unique<RadioStation>(sim, channel, c);
    Ax25LinkConfig lc;
    lc.t1 = Seconds(8);
    link = BindAx25LinkToDriver(sim, station->radio_if(), lc);
  }

  Ax25Connection* Connect(const Ax25Address& node) {
    conn = link->Connect(node);
    conn->set_data_handler([this](const Bytes& d) {
      transcript.append(d.begin(), d.end());
    });
    return conn;
  }
  void SendLine(const std::string& text) { conn->Send(Line(text)); }
  bool Saw(const std::string& needle) const {
    return transcript.find(needle) != std::string::npos;
  }

  std::unique_ptr<RadioStation> station;
  std::unique_ptr<Ax25Link> link;
  Ax25Connection* conn = nullptr;
  std::string transcript;
};

TEST_F(NodeShellFixture, NodesCommandListsBackbone) {
  ShellUser user(&sim_, channel_.get(), "KD7NM", 71);
  user.Connect(*Ax25Address::Parse("N7SEA"));
  sim_.RunUntil(sim_.Now() + Seconds(60));
  ASSERT_EQ(user.conn->state(), Ax25Connection::State::kConnected);
  EXPECT_TRUE(user.Saw("SEA:N7SEA} connected"));
  user.SendLine("NODES");
  sim_.RunUntil(sim_.Now() + Seconds(120));
  EXPECT_TRUE(user.Saw("MID:W7MID"));
  EXPECT_TRUE(user.Saw("TAC:K7TAC"));
}

TEST_F(NodeShellFixture, UnknownCommandExplains) {
  ShellUser user(&sim_, channel_.get(), "KD7NM", 72);
  user.Connect(*Ax25Address::Parse("N7SEA"));
  sim_.RunUntil(sim_.Now() + Seconds(60));
  user.SendLine("FROB");
  sim_.RunUntil(sim_.Now() + Seconds(60));
  EXPECT_TRUE(user.Saw("eh?"));
}

TEST_F(NodeShellFixture, FullSection1Workflow) {
  // The BBS lives next to the TAC node.
  RadioStationConfig bc;
  bc.hostname = "bbs";
  bc.callsign = *Ax25Address::Parse("W7BBS");
  bc.ip = IpV4Address(44, 24, 10, 50);
  bc.seed = 80;
  RadioStation bbs_station(&sim_, channel_.get(), bc);
  Ax25LinkConfig lc;
  lc.t1 = Seconds(8);
  auto bbs_link = BindAx25LinkToDriver(&sim_, bbs_station.radio_if(), lc);
  Ax25Bbs bbs(bbs_link.get(), "[Tacoma BBS]");
  bbs.Post(BbsMessage{.from = "KB7DZ", .to = "", .subject = "backbone works",
                      .body = {"sent via the NET/ROM chain"}});

  ShellUser user(&sim_, channel_.get(), "KD7NM", 73);
  user.Connect(*Ax25Address::Parse("N7SEA"));
  sim_.RunUntil(sim_.Now() + Seconds(60));
  ASSERT_EQ(user.conn->state(), Ax25Connection::State::kConnected);

  // Step 1: connect to the node nearest the destination, by alias.
  user.SendLine("C TAC");
  sim_.RunUntil(sim_.Now() + Seconds(300));
  EXPECT_TRUE(user.Saw("TAC:K7TAC} connected"));

  // Step 2: from there, connect to the destination station.
  user.SendLine("C W7BBS");
  sim_.RunUntil(sim_.Now() + Seconds(300));
  EXPECT_TRUE(user.Saw("*** connected"));
  EXPECT_TRUE(user.Saw("[Tacoma BBS]"));

  // Step 3: use the BBS across two spliced hops.
  user.SendLine("L");
  sim_.RunUntil(sim_.Now() + Seconds(300));
  EXPECT_TRUE(user.Saw("#1 KB7DZ: backbone works"));
  user.SendLine("R 1");
  sim_.RunUntil(sim_.Now() + Seconds(300));
  EXPECT_TRUE(user.Saw("sent via the NET/ROM chain"));

  EXPECT_EQ(sites_[0]->shell->circuits_spliced(), 1u);
  EXPECT_EQ(sites_[2]->shell->circuits_spliced(), 1u);
  EXPECT_GE(sites_[1]->node->forwarded(), 4u);  // the relay carried it all
}

TEST_F(NodeShellFixture, OnwardConnectToLocalStation) {
  // "C <callsign>" at the first node (no backbone hop): node bridges the
  // user straight to a local station.
  RadioStationConfig bc;
  bc.hostname = "local";
  bc.callsign = *Ax25Address::Parse("KG7K");
  bc.ip = IpV4Address(44, 24, 10, 51);
  bc.seed = 81;
  RadioStation local_station(&sim_, channel_.get(), bc);
  Ax25LinkConfig lc;
  lc.t1 = Seconds(8);
  auto local_link = BindAx25LinkToDriver(&sim_, local_station.radio_if(), lc);
  local_link->set_accept_handler([](const Ax25Address&) { return true; });
  std::string local_got;
  local_link->set_connection_handler([&](Ax25Connection* c) {
    c->set_data_handler([&](const Bytes& d) {
      local_got.append(d.begin(), d.end());
    });
    c->Send(Line("hello from KG7K"));
  });

  ShellUser user(&sim_, channel_.get(), "KD7NM", 74);
  user.Connect(*Ax25Address::Parse("N7SEA"));
  sim_.RunUntil(sim_.Now() + Seconds(60));
  user.SendLine("C KG7K");
  sim_.RunUntil(sim_.Now() + Seconds(300));
  EXPECT_TRUE(user.Saw("*** connected"));
  EXPECT_TRUE(user.Saw("hello from KG7K"));
  user.SendLine("anyone there?");
  sim_.RunUntil(sim_.Now() + Seconds(300));
  EXPECT_NE(local_got.find("anyone there?"), std::string::npos);
}

TEST_F(NodeShellFixture, ByeDisconnectsCleanly) {
  ShellUser user(&sim_, channel_.get(), "KD7NM", 75);
  user.Connect(*Ax25Address::Parse("N7SEA"));
  sim_.RunUntil(sim_.Now() + Seconds(60));
  user.SendLine("B");
  sim_.RunUntil(sim_.Now() + Seconds(120));
  EXPECT_TRUE(user.Saw("73"));
  EXPECT_EQ(user.conn->state(), Ax25Connection::State::kDisconnected);
}

}  // namespace
}  // namespace upr
