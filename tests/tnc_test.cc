#include <gtest/gtest.h>

#include "src/ax25/frame.h"
#include "src/kiss/kiss.h"
#include "src/radio/channel.h"
#include "src/serial/serial_line.h"
#include "src/sim/simulator.h"
#include "src/tnc/kiss_tnc.h"

namespace upr {
namespace {

// A host-side harness: a serial line, a TNC on its far end, and a KISS
// decoder standing in for the driver.
struct Station {
  Station(Simulator* sim, RadioChannel* ch, const std::string& name, TncConfig config,
          std::uint64_t seed)
      : serial(sim, 9600),
        tnc(sim, ch, &serial.b(), name, config, seed),
        decoder([this](const KissFrame& f) {
          if (f.command == KissCommand::kData) {
            frames.push_back(f.payload);
          }
        }) {
    serial.a().set_receive_handler([this](std::uint8_t b) { decoder.Feed(b); });
  }

  void SendAx25(const Ax25Frame& f) { serial.a().Write(KissEncodeData(f.Encode())); }

  SerialLine serial;
  KissTnc tnc;
  KissDecoder decoder;
  std::vector<Bytes> frames;  // AX.25 frames seen by the "host"
};

class TncTest : public ::testing::Test {
 protected:
  TncTest() : channel_(&sim_, FastChannel()) {}

  static RadioChannelConfig FastChannel() {
    RadioChannelConfig c;
    c.bit_rate = 9600;
    return c;
  }

  static TncConfig QuickMac() {
    TncConfig c;
    c.mac.tx_delay = Milliseconds(10);
    c.mac.tx_tail = 0;
    c.mac.persistence = 1.0;
    return c;
  }

  Simulator sim_;
  RadioChannel channel_;
};

TEST_F(TncTest, HostToAirToHost) {
  Station a(&sim_, &channel_, "a", QuickMac(), 1);
  Station b(&sim_, &channel_, "b", QuickMac(), 2);
  Ax25Frame f = Ax25Frame::MakeUi(Ax25Address("BBB", 0), Ax25Address("AAA", 0),
                                  kPidNoLayer3, BytesFromString("over the air"));
  a.SendAx25(f);
  sim_.RunUntil(Seconds(10));
  ASSERT_EQ(b.frames.size(), 1u);
  auto decoded = Ax25Frame::Decode(b.frames[0]);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->info, BytesFromString("over the air"));
  EXPECT_EQ(a.tnc.frames_from_host(), 1u);
  EXPECT_EQ(b.tnc.frames_to_host(), 1u);
}

TEST_F(TncTest, StockTncIsPromiscuous) {
  Station a(&sim_, &channel_, "a", QuickMac(), 1);
  Station b(&sim_, &channel_, "b", QuickMac(), 2);
  Station c(&sim_, &channel_, "c", QuickMac(), 3);
  // Frame from A to B: C's stock TNC still passes it up (§3's complaint).
  Ax25Frame f = Ax25Frame::MakeUi(Ax25Address("BBB", 0), Ax25Address("AAA", 0),
                                  kPidNoLayer3, BytesFromString("not for c"));
  a.SendAx25(f);
  sim_.RunUntil(Seconds(10));
  EXPECT_EQ(b.frames.size(), 1u);
  EXPECT_EQ(c.frames.size(), 1u);
  EXPECT_EQ(c.tnc.frames_to_host(), 1u);
}

TEST_F(TncTest, AddressFilterSuppressesOtherTraffic) {
  TncConfig filtered = QuickMac();
  filtered.address_filter = true;
  filtered.local_addresses.push_back(Ax25Address("CCC", 0));
  Station a(&sim_, &channel_, "a", QuickMac(), 1);
  Station c(&sim_, &channel_, "c", filtered, 3);
  Ax25Frame not_for_c = Ax25Frame::MakeUi(Ax25Address("BBB", 0), Ax25Address("AAA", 0),
                                          kPidNoLayer3, Bytes{1});
  Ax25Frame for_c = Ax25Frame::MakeUi(Ax25Address("CCC", 0), Ax25Address("AAA", 0),
                                      kPidNoLayer3, Bytes{2});
  Ax25Frame broadcast = Ax25Frame::MakeUi(Ax25Address::Broadcast(),
                                          Ax25Address("AAA", 0), kPidNoLayer3, Bytes{3});
  a.SendAx25(not_for_c);
  a.SendAx25(for_c);
  a.SendAx25(broadcast);
  sim_.RunUntil(Seconds(20));
  ASSERT_EQ(c.frames.size(), 2u);  // the directed frame and the broadcast
  EXPECT_EQ(c.tnc.frames_filtered(), 1u);
}

TEST_F(TncTest, CorruptedFramesDropAtFcs) {
  RadioChannelConfig lossy;
  lossy.bit_rate = 9600;
  lossy.loss_rate = 1.0;  // everything corrupted
  RadioChannel bad_channel(&sim_, lossy, 9);
  Station a(&sim_, &bad_channel, "a", QuickMac(), 1);
  Station b(&sim_, &bad_channel, "b", QuickMac(), 2);
  a.SendAx25(Ax25Frame::MakeUi(Ax25Address("BBB", 0), Ax25Address("AAA", 0),
                               kPidNoLayer3, Bytes{1, 2, 3}));
  sim_.RunUntil(Seconds(10));
  EXPECT_TRUE(b.frames.empty());
  EXPECT_EQ(b.tnc.fcs_errors(), 1u);
}

TEST_F(TncTest, KissParameterCommandsAdjustMac) {
  Station a(&sim_, &channel_, "a", QuickMac(), 1);
  KissFrame cmd;
  cmd.command = KissCommand::kTxDelay;
  cmd.payload = Bytes{50};  // 500 ms
  a.serial.a().Write(KissEncode(cmd));
  cmd.command = KissCommand::kPersistence;
  cmd.payload = Bytes{127};  // 0.5
  a.serial.a().Write(KissEncode(cmd));
  cmd.command = KissCommand::kSlotTime;
  cmd.payload = Bytes{20};  // 200 ms
  a.serial.a().Write(KissEncode(cmd));
  cmd.command = KissCommand::kFullDuplex;
  cmd.payload = Bytes{1};
  a.serial.a().Write(KissEncode(cmd));
  sim_.RunUntil(Seconds(1));
  // Parameters land on the MAC via the TNC. Verify through behaviour: TNC
  // still in KISS mode, and a frame gets out with the 500 ms keyup.
  EXPECT_TRUE(a.tnc.in_kiss_mode());
  Station b(&sim_, &channel_, "b", QuickMac(), 2);
  SimTime t0 = sim_.Now();
  a.SendAx25(Ax25Frame::MakeUi(Ax25Address("BBB", 0), Ax25Address("AAA", 0),
                               kPidNoLayer3, Bytes{}));
  sim_.RunUntil(Seconds(20));
  ASSERT_EQ(b.frames.size(), 1u);
  // Air time must include the 500 ms TXDELAY.
  EXPECT_GT(sim_.Now() - t0, Milliseconds(500));
}

TEST_F(TncTest, ReturnCommandExitsKissMode) {
  Station a(&sim_, &channel_, "a", QuickMac(), 1);
  KissFrame ret;
  ret.command = KissCommand::kReturn;
  a.serial.a().Write(KissEncode(ret));
  sim_.RunUntil(Seconds(1));
  EXPECT_FALSE(a.tnc.in_kiss_mode());
  // Subsequent data is ignored.
  a.SendAx25(Ax25Frame::MakeUi(Ax25Address("BBB", 0), Ax25Address("AAA", 0),
                               kPidNoLayer3, Bytes{}));
  sim_.RunUntil(Seconds(5));
  EXPECT_EQ(a.tnc.frames_from_host(), 0u);
}

TEST_F(TncTest, CarrierSenseSerializesWithInstantTurnaround) {
  // With zero decision-to-RF latency, carrier sense fully serializes the two
  // MACs and every frame arrives clean.
  TncConfig instant = QuickMac();
  instant.mac.turnaround = 0;
  Station a(&sim_, &channel_, "a", instant, 1);
  Station b(&sim_, &channel_, "b", instant, 2);
  Station c(&sim_, &channel_, "c", instant, 3);
  for (int i = 0; i < 5; ++i) {
    a.SendAx25(Ax25Frame::MakeUi(Ax25Address("CCC", 0), Ax25Address("AAA", 0),
                                 kPidNoLayer3, Bytes{static_cast<std::uint8_t>(i)}));
    b.SendAx25(Ax25Frame::MakeUi(Ax25Address("CCC", 0), Ax25Address("BBB", 0),
                                 kPidNoLayer3, Bytes{static_cast<std::uint8_t>(i)}));
  }
  sim_.RunUntil(Seconds(120));
  EXPECT_EQ(c.frames.size(), 10u);
  EXPECT_EQ(channel_.collisions(), 0u);
}

TEST_F(TncTest, TurnaroundWindowAllowsRealCollisions) {
  // With the (default) keying latency, two stations that decide to transmit
  // within the window collide — UI frames lost (no link-layer retry).
  Station a(&sim_, &channel_, "a", QuickMac(), 1);
  Station b(&sim_, &channel_, "b", QuickMac(), 2);
  Station c(&sim_, &channel_, "c", QuickMac(), 3);
  for (int i = 0; i < 10; ++i) {
    a.SendAx25(Ax25Frame::MakeUi(Ax25Address("CCC", 0), Ax25Address("AAA", 0),
                                 kPidNoLayer3, Bytes{static_cast<std::uint8_t>(i)}));
    b.SendAx25(Ax25Frame::MakeUi(Ax25Address("CCC", 0), Ax25Address("BBB", 0),
                                 kPidNoLayer3, Bytes{static_cast<std::uint8_t>(i)}));
  }
  sim_.RunUntil(Seconds(300));
  EXPECT_GT(channel_.collisions(), 0u);
  EXPECT_LT(c.frames.size(), 20u);  // the collided frames are gone for good
  EXPECT_GT(c.frames.size(), 0u);  // but the channel is not dead
}

}  // namespace
}  // namespace upr
