#include <gtest/gtest.h>

#include "src/scenario/testbed.h"

namespace upr {
namespace {

// Two packet-radio PCs on one channel, built from the scenario kit.
class DriverTest : public ::testing::Test {
 protected:
  DriverTest() {
    RadioChannelConfig rc;
    rc.bit_rate = 1200;
    channel_ = std::make_unique<RadioChannel>(&sim_, rc, 11);
    a_ = MakeStation("pca", "KD7AA", IpV4Address(44, 24, 0, 10), 21);
    b_ = MakeStation("pcb", "KD7AB", IpV4Address(44, 24, 0, 11), 22);
  }

  std::unique_ptr<RadioStation> MakeStation(const std::string& name,
                                            const std::string& call, IpV4Address ip,
                                            std::uint64_t seed) {
    RadioStationConfig c;
    c.hostname = name;
    c.callsign = Ax25Address(call, 0);
    c.ip = ip;
    c.seed = seed;
    return std::make_unique<RadioStation>(&sim_, channel_.get(), c);
  }

  Simulator sim_;
  std::unique_ptr<RadioChannel> channel_;
  std::unique_ptr<RadioStation> a_;
  std::unique_ptr<RadioStation> b_;
};

TEST_F(DriverTest, PingOverRadioWithDynamicArp) {
  bool ok = false;
  SimTime rtt = 0;
  a_->stack().icmp().Ping(b_->ip(), 56, [&](bool success, SimTime t) {
    ok = success;
    rtt = t;
  });
  sim_.RunUntil(Seconds(120));
  EXPECT_TRUE(ok);
  // At 1200 bps a ~100-byte exchange takes seconds, not milliseconds.
  EXPECT_GT(rtt, Milliseconds(500));
  EXPECT_GT(a_->radio_if()->arp().requests_sent(), 0u);
}

TEST_F(DriverTest, PingWithStaticArpSkipsResolution) {
  a_->radio_if()->AddArpEntry(b_->ip(), b_->callsign());
  b_->radio_if()->AddArpEntry(a_->ip(), a_->callsign());
  bool ok = false;
  a_->stack().icmp().Ping(b_->ip(), 56, [&](bool success, SimTime) { ok = success; });
  sim_.RunUntil(Seconds(60));
  EXPECT_TRUE(ok);
  EXPECT_EQ(a_->radio_if()->arp().requests_sent(), 0u);
}

TEST_F(DriverTest, PerCharacterInterruptsCounted) {
  a_->radio_if()->AddArpEntry(b_->ip(), b_->callsign());
  b_->radio_if()->AddArpEntry(a_->ip(), a_->callsign());
  bool done = false;
  a_->stack().icmp().Ping(b_->ip(), 56, [&](bool, SimTime) { done = true; });
  sim_.RunUntil(Seconds(60));
  ASSERT_TRUE(done);
  // B received at least one whole KISS-framed packet: one interrupt per byte.
  const DriverStats& ds = b_->radio_if()->driver_stats();
  EXPECT_GT(ds.interrupts, 80u);  // ping is ~100 bytes framed
  EXPECT_EQ(ds.ip_in, 1u);
  EXPECT_GT(ds.interrupt_cpu_time, 0);
}

TEST_F(DriverTest, CallsignFilterRejectsForeignTraffic) {
  // C sends to B; A's driver sees the frame (promiscuous TNC) but rejects it
  // by callsign — the paper's §2.2 check.
  auto c = MakeStation("pcc", "KD7AC", IpV4Address(44, 24, 0, 12), 23);
  c->radio_if()->AddArpEntry(b_->ip(), b_->callsign());
  b_->radio_if()->AddArpEntry(c->ip(), c->callsign());
  bool ok = false;
  c->stack().icmp().Ping(b_->ip(), 10, [&](bool success, SimTime) { ok = success; });
  sim_.RunUntil(Seconds(60));
  ASSERT_TRUE(ok);
  EXPECT_GT(a_->radio_if()->driver_stats().frames_not_for_us, 0u);
  EXPECT_EQ(a_->radio_if()->driver_stats().ip_in, 0u);
  EXPECT_EQ(a_->stack().ip_stats().delivered, 0u);
}

TEST_F(DriverTest, DigipeatedPathDelivers) {
  Digipeater digi(&sim_, channel_.get(), Ax25Address("WB7RA", 0));
  a_->radio_if()->AddArpEntry(b_->ip(), b_->callsign(), {Ax25Address("WB7RA", 0)});
  b_->radio_if()->AddArpEntry(a_->ip(), a_->callsign(), {Ax25Address("WB7RA", 0)});
  bool ok = false;
  SimTime rtt = 0;
  a_->stack().icmp().Ping(b_->ip(), 32, [&](bool success, SimTime t) {
    ok = success;
    rtt = t;
  });
  sim_.RunUntil(Seconds(240));
  EXPECT_TRUE(ok);
  EXPECT_EQ(digi.frames_repeated(), 2u);  // request and reply
  // B must have ignored the in-transit copy it heard directly.
  EXPECT_GT(b_->radio_if()->driver_stats().frames_in_transit, 0u);
  // Two hops double the air time.
  EXPECT_GT(rtt, Seconds(1));
}

TEST_F(DriverTest, NonIpFramesGoToL3Queue) {
  // A raw connected-mode SABM addressed to B lands on B's tty queue (§2.4).
  Ax25Frame sabm;
  sabm.destination = b_->callsign();
  sabm.source = a_->callsign();
  sabm.type = Ax25FrameType::kSabm;
  sabm.poll_final = true;
  a_->radio_if()->SendRawFrame(sabm);
  sim_.RunUntil(Seconds(30));
  EXPECT_EQ(b_->radio_if()->l3_queue_depth(), 1u);
  auto frame = b_->radio_if()->ReadL3Frame();
  ASSERT_TRUE(frame);
  EXPECT_EQ(frame->type, Ax25FrameType::kSabm);
  EXPECT_EQ(frame->source, a_->callsign());
  EXPECT_FALSE(b_->radio_if()->ReadL3Frame());
}

TEST_F(DriverTest, L3TapReceivesInsteadOfQueue) {
  std::vector<Ax25Frame> tapped;
  b_->radio_if()->set_l3_tap(
      [&](const Ax25Frame& f, ByteView) { tapped.push_back(f); });
  Ax25Frame ui = Ax25Frame::MakeUi(b_->callsign(), a_->callsign(), kPidNoLayer3,
                                   BytesFromString("chat"));
  a_->radio_if()->SendRawFrame(ui);
  sim_.RunUntil(Seconds(30));
  ASSERT_EQ(tapped.size(), 1u);
  EXPECT_EQ(tapped[0].info, BytesFromString("chat"));
  EXPECT_EQ(b_->radio_if()->l3_queue_depth(), 0u);
}

TEST_F(DriverTest, L3QueueBounded) {
  PacketRadioConfig cfg;
  // Rebuild B with a tiny queue.
  RadioStationConfig c;
  c.hostname = "pcd";
  c.callsign = Ax25Address("KD7AD", 0);
  c.ip = IpV4Address(44, 24, 0, 13);
  c.driver.l3_queue_limit = 2;
  c.seed = 33;
  RadioStation d(&sim_, channel_.get(), c);
  for (int i = 0; i < 5; ++i) {
    Ax25Frame ui = Ax25Frame::MakeUi(d.callsign(), a_->callsign(), kPidNoLayer3,
                                     Bytes{static_cast<std::uint8_t>(i)});
    a_->radio_if()->SendRawFrame(ui);
  }
  sim_.RunUntil(Seconds(60));
  EXPECT_EQ(d.radio_if()->l3_queue_depth(), 2u);
  EXPECT_EQ(d.radio_if()->driver_stats().l3_drops, 3u);
  // Oldest were dropped: remaining are frames 3 and 4.
  EXPECT_EQ(d.radio_if()->ReadL3Frame()->info, Bytes{3});
}

TEST_F(DriverTest, BroadcastPingAnswered) {
  // ICMP echo to the subnet broadcast goes out as an AX.25 broadcast UI.
  a_->radio_if()->AddArpEntry(b_->ip(), b_->callsign());
  int replies = 0;
  a_->stack().icmp().Ping(IpV4Address(44, 255, 255, 255), 8,
                          [&](bool success, SimTime) {
                            if (success) {
                              ++replies;
                            }
                          });
  sim_.RunUntil(Seconds(120));
  EXPECT_EQ(replies, 1);  // b answers; a ignores its own broadcast
}

TEST_F(DriverTest, MtuEnforcedByFragmentation) {
  a_->radio_if()->AddArpEntry(b_->ip(), b_->callsign());
  b_->radio_if()->AddArpEntry(a_->ip(), a_->callsign());
  bool ok = false;
  // 600-byte ping exceeds the 256-byte radio MTU: must fragment + reassemble.
  a_->stack().icmp().Ping(b_->ip(), 600, [&](bool success, SimTime) { ok = success; },
                          Seconds(300));
  sim_.RunUntil(Seconds(400));
  EXPECT_TRUE(ok);
  EXPECT_GT(a_->stack().ip_stats().fragments_created, 0u);
  EXPECT_GT(b_->stack().ip_stats().reassembled, 0u);
}

}  // namespace
}  // namespace upr
