// Property suites for the reliable-delivery machinery: AX.25 connected mode
// and TCP must deliver every byte exactly once, in order, across any loss
// pattern the channel throws at them (below the give-up thresholds), and
// whole-system runs must be bit-deterministic for a fixed seed.
#include <gtest/gtest.h>

#include <tuple>

#include "src/ax25/lapb.h"
#include "src/scenario/testbed.h"
#include "src/sim/simulator.h"
#include "src/util/random.h"

namespace upr {
namespace {

// --- AX.25 connected mode under random loss --------------------------------

class LapbLossProperty
    : public ::testing::TestWithParam<
          std::tuple<int /*loss%*/, std::uint64_t /*seed*/, Ax25Dialect>> {};

TEST_P(LapbLossProperty, DeliversInOrderUnderLoss) {
  const int loss_percent = std::get<0>(GetParam());
  Rng loss_rng(std::get<1>(GetParam()));
  const Ax25Dialect dialect = std::get<2>(GetParam());
  Simulator sim;

  Ax25LinkConfig cfg;
  cfg.t1 = Seconds(4);
  cfg.n2 = 40;
  cfg.paclen = 32;
  cfg.window = 4;
  cfg.dialect = dialect;
  if (dialect == Ax25Dialect::kV22) {
    // Extended mode: a window wider than mod-8 allows, to exercise the
    // 2-byte control path and SREJ recovery under the same loss sweep.
    cfg.window = 24;
  }

  std::unique_ptr<Ax25Link> a, b;
  auto deliver = [&](const Ax25Frame& f, Ax25Link* to) {
    if (loss_rng.Chance(loss_percent / 100.0)) {
      return;
    }
    sim.Schedule(Milliseconds(200), [to, f] { to->HandleFrame(f); });
  };
  a = std::make_unique<Ax25Link>(&sim, Ax25Address("AAA", 0),
                                 [&](const Ax25Frame& f) { deliver(f, b.get()); }, cfg);
  b = std::make_unique<Ax25Link>(&sim, Ax25Address("BBB", 0),
                                 [&](const Ax25Frame& f) { deliver(f, a.get()); }, cfg);
  b->set_accept_handler([](const Ax25Address&) { return true; });
  Bytes received;
  b->set_connection_handler([&](Ax25Connection* c) {
    c->set_data_handler([&](const Bytes& d) {
      received.insert(received.end(), d.begin(), d.end());
    });
  });

  // A patterned payload so any reordering/duplication is visible.
  Bytes payload(777);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 31 + 7);
  }
  Ax25Connection* conn = a->Connect(Ax25Address("BBB", 0));
  conn->Send(payload);
  sim.RunUntil(Seconds(3600));

  EXPECT_EQ(received, payload)
      << "loss=" << loss_percent << "% delivered " << received.size();
  if (loss_percent >= 15) {
    // At low loss a run may get lucky and lose only supervisory frames; at
    // 15%+ over ~25 I frames a data loss (and hence a retransmission) is
    // effectively certain.
    EXPECT_GT(conn->i_frames_resent(), 0u);
  }
  if (dialect == Ax25Dialect::kV22 && loss_percent == 0) {
    // On a clean channel the XID handshake always succeeds: the link must be
    // running extended mode, not a silent downgrade.
    EXPECT_EQ(conn->modulus(), Ax25Modulus::kMod128);
    EXPECT_TRUE(conn->srej_enabled());
  }
}

INSTANTIATE_TEST_SUITE_P(
    LossSweep, LapbLossProperty,
    ::testing::Combine(::testing::Values(0, 5, 15, 30),
                       ::testing::Values(11ull, 22ull, 33ull),
                       ::testing::Values(Ax25Dialect::kV20, Ax25Dialect::kV22)),
    [](const auto& param_info) {
      return "loss" + std::to_string(std::get<0>(param_info.param)) + "_seed" +
             std::to_string(std::get<1>(param_info.param)) + "_v" +
             (std::get<2>(param_info.param) == Ax25Dialect::kV22 ? "22" : "20");
    });

// --- TCP across the lossy radio testbed -------------------------------------

class TcpLossProperty
    : public ::testing::TestWithParam<std::tuple<int /*loss%*/, std::uint64_t /*seed*/>> {
};

TEST_P(TcpLossProperty, BulkTransferSurvivesChannelLoss) {
  const int loss_percent = std::get<0>(GetParam());
  TestbedConfig cfg;
  cfg.radio_pcs = 2;
  cfg.ether_hosts = 0;
  cfg.radio_bit_rate = 9600;
  cfg.radio_loss_rate = loss_percent / 100.0;
  cfg.mac.turnaround = 0;
  cfg.tcp.max_retries = 30;
  cfg.seed = std::get<1>(GetParam());
  Testbed tb(cfg);
  tb.PopulateRadioArp();

  Bytes payload(6000);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i ^ (i >> 8));
  }
  Bytes received;
  tb.pc(1).tcp().Listen(23, [&](TcpConnection* c) {
    c->set_data_handler([&](const Bytes& d) {
      received.insert(received.end(), d.begin(), d.end());
    });
  });
  TcpConnection* conn = tb.pc(0).tcp().Connect(Testbed::RadioPcIp(1), 23);
  ASSERT_NE(conn, nullptr);
  conn->set_connected_handler([&, conn] { conn->Send(payload); });
  tb.sim().RunUntil(Seconds(3600 * 4));

  EXPECT_EQ(received, payload) << "loss=" << loss_percent << "%";
  EXPECT_EQ(conn->stats().bytes_sent >= payload.size(), true);
}

INSTANTIATE_TEST_SUITE_P(
    LossSweep, TcpLossProperty,
    ::testing::Combine(::testing::Values(0, 10, 20),
                       ::testing::Values(5ull, 6ull)),
    [](const auto& param_info) {
      return "loss" + std::to_string(std::get<0>(param_info.param)) + "_seed" +
             std::to_string(std::get<1>(param_info.param));
    });

// --- Whole-system determinism ------------------------------------------------

class DeterminismProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DeterminismProperty, IdenticalSeedsGiveIdenticalRuns) {
  auto run = [&](std::uint64_t seed) {
    TestbedConfig cfg;
    cfg.radio_pcs = 2;
    cfg.ether_hosts = 1;
    cfg.radio_loss_rate = 0.1;
    cfg.seed = seed;
    Testbed tb(cfg);
    tb.PopulateRadioArp();
    std::vector<SimTime> rtts;
    for (std::size_t i = 0; i < 2; ++i) {
      tb.pc(i).stack().icmp().Ping(Testbed::EtherHostIp(0), 32,
                                   [&rtts](bool ok, SimTime rtt) {
                                     rtts.push_back(ok ? rtt : -1);
                                   },
                                   Seconds(300));
    }
    tb.sim().RunUntil(Seconds(900));
    return std::make_tuple(rtts, tb.channel().transmissions(),
                           tb.channel().collisions(),
                           tb.gateway().stack().ip_stats().forwarded,
                           tb.sim().executed_events());
  };
  std::uint64_t seed = GetParam();
  auto first = run(seed);
  auto second = run(seed);
  EXPECT_EQ(first, second);
  // And a different seed gives a different trajectory (event counts differ
  // with overwhelming probability under 10% loss).
  auto other = run(seed + 1);
  EXPECT_NE(std::get<4>(first), 0u);
  EXPECT_TRUE(first != other) << "different seeds produced identical runs";
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeterminismProperty, ::testing::Values(100, 200, 300));

}  // namespace
}  // namespace upr
