#include <gtest/gtest.h>

#include "src/gateway/access_control.h"
#include "src/gateway/gateway.h"
#include "src/scenario/testbed.h"

namespace upr {
namespace {

TEST(AccessControlTableTest, StartsEmptyDeniesAll) {
  Simulator sim;
  AccessControlTable t(&sim);
  EXPECT_EQ(t.size(), 0u);
  EXPECT_FALSE(t.Allowed(IpV4Address(128, 95, 1, 4), IpV4Address(44, 24, 0, 10)));
  EXPECT_EQ(t.denials(), 1u);
}

TEST(AccessControlTableTest, AmateurOutboundOpensReturnPath) {
  Simulator sim;
  AccessControlTable t(&sim);
  IpV4Address am(44, 24, 0, 10), non(128, 95, 1, 4);
  t.NoteAmateurOutbound(am, non);
  EXPECT_TRUE(t.Allowed(non, am));
  // Pairing is specific: another amateur host is still blocked.
  EXPECT_FALSE(t.Allowed(non, IpV4Address(44, 24, 0, 11)));
  // And another non-amateur host is blocked too.
  EXPECT_FALSE(t.Allowed(IpV4Address(128, 95, 1, 5), am));
}

TEST(AccessControlTableTest, EntriesExpireAfterIdleTimeout) {
  Simulator sim;
  AccessControlConfig cfg;
  cfg.idle_timeout = Seconds(100);
  AccessControlTable t(&sim, cfg);
  IpV4Address am(44, 24, 0, 10), non(128, 95, 1, 4);
  t.NoteAmateurOutbound(am, non);
  sim.RunUntil(Seconds(50));
  EXPECT_TRUE(t.Allowed(non, am));
  sim.RunUntil(Seconds(101));
  EXPECT_FALSE(t.Allowed(non, am));
  EXPECT_EQ(t.entries_expired(), 1u);
}

TEST(AccessControlTableTest, AmateurTrafficRefreshesEntry) {
  Simulator sim;
  AccessControlConfig cfg;
  cfg.idle_timeout = Seconds(100);
  AccessControlTable t(&sim, cfg);
  IpV4Address am(44, 24, 0, 10), non(128, 95, 1, 4);
  t.NoteAmateurOutbound(am, non);
  sim.RunUntil(Seconds(80));
  t.NoteAmateurOutbound(am, non);  // keepalive from the amateur side
  sim.RunUntil(Seconds(150));
  EXPECT_TRUE(t.Allowed(non, am));
}

TEST(AccessControlTableTest, AuthorizeWithExplicitTtl) {
  Simulator sim;
  AccessControlTable t(&sim);
  IpV4Address am(44, 24, 0, 10), non(128, 95, 1, 4);
  t.Authorize(non, am, Seconds(10));
  EXPECT_TRUE(t.Allowed(non, am));
  sim.RunUntil(Seconds(11));
  EXPECT_FALSE(t.Allowed(non, am));
}

TEST(AccessControlTableTest, RevokeSpecificAndWildcard) {
  Simulator sim;
  AccessControlTable t(&sim);
  IpV4Address am1(44, 24, 0, 10), am2(44, 24, 0, 11), non(128, 95, 1, 4);
  t.NoteAmateurOutbound(am1, non);
  t.NoteAmateurOutbound(am2, non);
  EXPECT_EQ(t.Revoke(non, am1), 1u);
  EXPECT_FALSE(t.Allowed(non, am1));
  EXPECT_TRUE(t.Allowed(non, am2));
  t.NoteAmateurOutbound(am1, non);
  EXPECT_EQ(t.Revoke(non, IpV4Address::Any()), 2u);
  EXPECT_EQ(t.size(), 0u);
}

// Full-topology gateway behaviour.
class GatewayPolicyTest : public ::testing::Test {
 protected:
  static TestbedConfig Config() {
    TestbedConfig cfg;
    cfg.radio_pcs = 2;
    cfg.ether_hosts = 2;
    cfg.enforce_access_control = true;
    cfg.radio_bit_rate = 9600;  // fast tests
    return cfg;
  }
};

TEST_F(GatewayPolicyTest, AmateurInitiatedFlowOpensReturnPath) {
  Testbed tb(Config());
  tb.PopulateRadioArp();
  bool ok = false;
  tb.pc(0).stack().icmp().Ping(Testbed::EtherHostIp(0), 16,
                               [&](bool success, SimTime) { ok = success; });
  tb.sim().RunUntil(Seconds(120));
  EXPECT_TRUE(ok);  // reply got back through the table entry just created
  EXPECT_GE(tb.gateway().gateway().radio_to_wire(), 1u);
  EXPECT_GE(tb.gateway().gateway().wire_to_radio(), 1u);
  EXPECT_EQ(tb.gateway().gateway().denied(), 0u);
  EXPECT_EQ(tb.gateway().gateway().table().size(), 1u);
}

TEST_F(GatewayPolicyTest, WireInitiatedFlowDenied) {
  Testbed tb(Config());
  tb.PopulateRadioArp();
  bool called = false, ok = true;
  tb.host(0).stack().icmp().Ping(Testbed::RadioPcIp(0), 16,
                                 [&](bool success, SimTime) {
                                   called = true;
                                   ok = success;
                                 },
                                 Seconds(60));
  tb.sim().RunUntil(Seconds(120));
  EXPECT_TRUE(called);
  EXPECT_FALSE(ok);
  EXPECT_GE(tb.gateway().gateway().denied(), 1u);
}

TEST_F(GatewayPolicyTest, WithoutEnforcementWireInitiatedFlows) {
  TestbedConfig cfg = Config();
  cfg.enforce_access_control = false;
  Testbed tb(cfg);
  tb.PopulateRadioArp();
  bool ok = false;
  tb.host(0).stack().icmp().Ping(Testbed::RadioPcIp(0), 16,
                                 [&](bool success, SimTime) { ok = success; },
                                 Seconds(120));
  tb.sim().RunUntil(Seconds(240));
  EXPECT_TRUE(ok);
}

TEST_F(GatewayPolicyTest, IcmpAuthorizeFromAmateurSideOpensPath) {
  Testbed tb(Config());
  tb.PopulateRadioArp();
  // PC0's operator authorizes host0 to reach PC0 for an hour.
  GatewayControlBody body;
  body.amateur_host = Testbed::RadioPcIp(0);
  body.non_amateur_host = Testbed::EtherHostIp(0);
  body.ttl_seconds = 3600;
  tb.pc(0).stack().icmp().SendGatewayControl(Testbed::GatewayRadioIp(),
                                             kGwCtlAuthorize, body);
  tb.sim().RunUntil(Seconds(60));
  EXPECT_EQ(tb.gateway().gateway().control_accepted(), 1u);
  bool ok = false;
  tb.host(0).stack().icmp().Ping(Testbed::RadioPcIp(0), 16,
                                 [&](bool success, SimTime) { ok = success; },
                                 Seconds(120));
  tb.sim().RunUntil(Seconds(300));
  EXPECT_TRUE(ok);
}

TEST_F(GatewayPolicyTest, IcmpRevokeClosesPath) {
  Testbed tb(Config());
  tb.PopulateRadioArp();
  // Open via amateur-side traffic, then revoke from the amateur side.
  bool first_ok = false;
  tb.pc(0).stack().icmp().Ping(Testbed::EtherHostIp(0), 8,
                               [&](bool success, SimTime) { first_ok = success; });
  tb.sim().RunUntil(Seconds(120));
  ASSERT_TRUE(first_ok);
  GatewayControlBody body;
  body.amateur_host = Testbed::RadioPcIp(0);
  body.non_amateur_host = Testbed::EtherHostIp(0);
  tb.pc(0).stack().icmp().SendGatewayControl(Testbed::GatewayRadioIp(), kGwCtlRevoke,
                                             body);
  tb.sim().RunUntil(Seconds(240));
  bool ok = true;
  bool called = false;
  tb.host(0).stack().icmp().Ping(Testbed::RadioPcIp(0), 8,
                                 [&](bool success, SimTime) {
                                   called = true;
                                   ok = success;
                                 },
                                 Seconds(60));
  tb.sim().RunUntil(Seconds(360));
  EXPECT_TRUE(called);
  EXPECT_FALSE(ok);
}

TEST_F(GatewayPolicyTest, ControlFromWireSideNeedsCredentials) {
  TestbedConfig cfg = Config();
  Testbed tb(cfg);
  tb.PopulateRadioArp();
  // Operators list is empty in this testbed, so any wire-side control
  // message must be rejected regardless of credentials offered.
  GatewayControlBody body;
  body.amateur_host = Testbed::RadioPcIp(0);
  body.non_amateur_host = Testbed::EtherHostIp(0);
  body.ttl_seconds = 600;
  body.callsign = "N7AKR";
  body.password = "wrong";
  tb.host(0).stack().icmp().SendGatewayControl(Testbed::GatewayEtherIp(),
                                               kGwCtlAuthorize, body);
  tb.sim().RunUntil(Seconds(30));
  EXPECT_EQ(tb.gateway().gateway().control_rejected(), 1u);
  EXPECT_EQ(tb.gateway().gateway().table().size(), 0u);
}

TEST_F(GatewayPolicyTest, PcToPcTrafficNotSubjectToTable) {
  // radio->radio forwarding through the gateway is allowed freely.
  Testbed tb(Config());
  tb.PopulateRadioArp();
  // Force PC0 to reach PC1 via the gateway (host route through gateway).
  tb.pc(0).stack().routes().AddVia(IpV4Prefix::FromCidr(Testbed::RadioPcIp(1), 32),
                                   Testbed::GatewayRadioIp(), tb.pc(0).radio_if());
  bool ok = false;
  tb.pc(0).stack().icmp().Ping(Testbed::RadioPcIp(1), 8,
                               [&](bool success, SimTime) { ok = success; },
                               Seconds(120));
  tb.sim().RunUntil(Seconds(240));
  EXPECT_TRUE(ok);
  EXPECT_EQ(tb.gateway().gateway().denied(), 0u);
}

}  // namespace
}  // namespace upr
