#include <gtest/gtest.h>

#include <vector>

#include "src/kiss/kiss.h"

namespace upr {
namespace {

class KissRoundTrip : public ::testing::Test {
 protected:
  KissRoundTrip() : decoder_([this](const KissFrame& f) { frames_.push_back(f); }) {}

  std::vector<KissFrame> frames_;
  KissDecoder decoder_;
};

TEST_F(KissRoundTrip, SimpleDataFrame) {
  Bytes payload{0x01, 0x02, 0x03};
  decoder_.Feed(KissEncodeData(payload));
  ASSERT_EQ(frames_.size(), 1u);
  EXPECT_EQ(frames_[0].command, KissCommand::kData);
  EXPECT_EQ(frames_[0].port, 0);
  EXPECT_EQ(frames_[0].payload, payload);
}

TEST_F(KissRoundTrip, EscapesFendAndFesc) {
  Bytes payload{kKissFend, 0x42, kKissFesc, kKissFend};
  Bytes wire = KissEncodeData(payload);
  // Wire contains no raw FEND except the delimiters.
  int fends = 0;
  for (std::size_t i = 1; i + 1 < wire.size(); ++i) {
    if (wire[i] == kKissFend) {
      ++fends;
    }
  }
  EXPECT_EQ(fends, 0);
  decoder_.Feed(wire);
  ASSERT_EQ(frames_.size(), 1u);
  EXPECT_EQ(frames_[0].payload, payload);
}

TEST_F(KissRoundTrip, PayloadOfEveryByteValue) {
  Bytes payload;
  for (int i = 0; i < 256; ++i) {
    payload.push_back(static_cast<std::uint8_t>(i));
  }
  decoder_.Feed(KissEncodeData(payload));
  ASSERT_EQ(frames_.size(), 1u);
  EXPECT_EQ(frames_[0].payload, payload);
}

TEST_F(KissRoundTrip, ByteAtATimeStreaming) {
  Bytes payload{kKissFesc, kKissFend, 0x00, 0x7F};
  Bytes wire = KissEncodeData(payload);
  for (std::uint8_t b : wire) {
    decoder_.Feed(b);
  }
  ASSERT_EQ(frames_.size(), 1u);
  EXPECT_EQ(frames_[0].payload, payload);
}

TEST_F(KissRoundTrip, BackToBackFramesShareDelimiters) {
  Bytes a = KissEncodeData(Bytes{1});
  Bytes b = KissEncodeData(Bytes{2});
  Bytes wire = a;
  wire.insert(wire.end(), b.begin(), b.end());
  decoder_.Feed(wire);
  ASSERT_EQ(frames_.size(), 2u);
  EXPECT_EQ(frames_[0].payload, Bytes{1});
  EXPECT_EQ(frames_[1].payload, Bytes{2});
}

TEST_F(KissRoundTrip, IdleFendsBetweenFramesIgnored) {
  decoder_.Feed(Bytes{kKissFend, kKissFend, kKissFend});
  EXPECT_TRUE(frames_.empty());
  decoder_.Feed(KissEncodeData(Bytes{7}));
  EXPECT_EQ(frames_.size(), 1u);
}

TEST_F(KissRoundTrip, CommandFramesCarryPortAndType) {
  KissFrame f;
  f.port = 3;
  f.command = KissCommand::kTxDelay;
  f.payload = Bytes{50};
  decoder_.Feed(KissEncode(f));
  ASSERT_EQ(frames_.size(), 1u);
  EXPECT_EQ(frames_[0].port, 3);
  EXPECT_EQ(frames_[0].command, KissCommand::kTxDelay);
  EXPECT_EQ(frames_[0].payload, Bytes{50});
}

TEST_F(KissRoundTrip, ReturnFrameIs0xFF) {
  KissFrame f;
  f.command = KissCommand::kReturn;
  Bytes wire = KissEncode(f);
  ASSERT_GE(wire.size(), 2u);
  EXPECT_EQ(wire[1], 0xFF);
  decoder_.Feed(wire);
  ASSERT_EQ(frames_.size(), 1u);
  EXPECT_EQ(frames_[0].command, KissCommand::kReturn);
}

TEST_F(KissRoundTrip, InvalidEscapeDropsFrameAndResyncs) {
  Bytes wire{kKissFend, 0x00, 0x01, kKissFesc, 0x99, 0x02, kKissFend};
  decoder_.Feed(wire);
  EXPECT_TRUE(frames_.empty());
  EXPECT_EQ(decoder_.protocol_errors(), 1u);
  // Next frame decodes fine.
  decoder_.Feed(KissEncodeData(Bytes{5}));
  ASSERT_EQ(frames_.size(), 1u);
  EXPECT_EQ(frames_[0].payload, Bytes{5});
}

TEST_F(KissRoundTrip, FrameEndingMidEscapeDroppedButFendStillDelimits) {
  // FESC immediately followed by FEND: the frame ends mid-escape. Per the
  // Chepponis/Karn spec the partial frame is dropped — but that FEND is
  // still a frame delimiter. The decoder used to enter the discard state
  // here, swallow the FEND, and throw away the entire next valid frame.
  Bytes wire{kKissFend, 0x00, 0x01, 0x02, kKissFesc, kKissFend};
  Bytes good = KissEncodeData(Bytes{0x42, 0x43});
  wire.insert(wire.end(), good.begin(), good.end());
  decoder_.Feed(wire);
  ASSERT_EQ(frames_.size(), 1u);
  EXPECT_EQ(frames_[0].payload, (Bytes{0x42, 0x43}));
  EXPECT_EQ(decoder_.protocol_errors(), 1u);
  EXPECT_EQ(decoder_.bad_escapes(), 1u);
}

TEST_F(KissRoundTrip, BackToBackFramesAfterDanglingEscape) {
  // Even with no idle FEND between the aborted frame and the next one, the
  // delimiting FEND opens the next frame directly.
  Bytes wire{kKissFend, 0x00, kKissFesc, kKissFend,  // aborted mid-escape
             0x00, 0x07, kKissFend};                 // next frame, shared FEND
  decoder_.Feed(wire);
  ASSERT_EQ(frames_.size(), 1u);
  EXPECT_EQ(frames_[0].payload, Bytes{0x07});
  EXPECT_EQ(decoder_.bad_escapes(), 1u);
}

TEST_F(KissRoundTrip, InvalidEscapeCountsBadEscape) {
  // FESC + ordinary byte: drop the frame, discard to the next FEND.
  Bytes wire{kKissFend, 0x00, kKissFesc, 0x41, 0x42, kKissFend};
  decoder_.Feed(wire);
  EXPECT_TRUE(frames_.empty());
  EXPECT_EQ(decoder_.protocol_errors(), 1u);
  EXPECT_EQ(decoder_.bad_escapes(), 1u);
  decoder_.Feed(KissEncodeData(Bytes{9}));
  ASSERT_EQ(frames_.size(), 1u);
  EXPECT_EQ(frames_[0].payload, Bytes{9});
}

TEST_F(KissRoundTrip, OversizeFrameDropped) {
  KissDecoder small([this](const KissFrame& f) { frames_.push_back(f); }, 16);
  Bytes big(100, 0xAA);
  small.Feed(KissEncodeData(big));
  EXPECT_TRUE(frames_.empty());
  EXPECT_EQ(small.oversize_drops(), 1u);
  small.Feed(KissEncodeData(Bytes{1, 2}));
  ASSERT_EQ(frames_.size(), 1u);
}

TEST_F(KissRoundTrip, ResetDropsPartialFrame) {
  decoder_.Feed(Bytes{kKissFend, 0x00, 0x01, 0x02});
  decoder_.Reset();
  decoder_.Feed(Bytes{0x03, kKissFend});  // tail of the old frame: becomes garbage frame
  // The stray bytes form a new "frame" with type 0x03 — decoder is lenient,
  // but the original payload must not leak through.
  for (const auto& f : frames_) {
    EXPECT_NE(f.payload, (Bytes{0x01, 0x02, 0x03}));
  }
}

TEST_F(KissRoundTrip, EmptyPayloadDataFrame) {
  decoder_.Feed(KissEncodeData(Bytes{}));
  ASSERT_EQ(frames_.size(), 1u);
  EXPECT_TRUE(frames_[0].payload.empty());
}

// --- Chunked vs byte-at-a-time equivalence (silo-mode prerequisite) ---------

// Feeds `wire` into two decoders — one byte at a time and in chunks of
// `chunk` — and checks frames and error counters agree exactly.
void ExpectChunkedEquivalent(const Bytes& wire, std::size_t chunk) {
  std::vector<KissFrame> by_byte, by_chunk;
  KissDecoder d1([&](const KissFrame& f) { by_byte.push_back(f); });
  KissDecoder d2([&](const KissFrame& f) { by_chunk.push_back(f); });
  for (std::uint8_t b : wire) {
    d1.Feed(b);
  }
  for (std::size_t i = 0; i < wire.size(); i += chunk) {
    std::size_t n = std::min(chunk, wire.size() - i);
    d2.Feed(wire.data() + i, n);
  }
  ASSERT_EQ(by_byte.size(), by_chunk.size()) << "chunk=" << chunk;
  for (std::size_t i = 0; i < by_byte.size(); ++i) {
    EXPECT_EQ(by_byte[i].payload, by_chunk[i].payload);
    EXPECT_EQ(by_byte[i].port, by_chunk[i].port);
    EXPECT_EQ(by_byte[i].command, by_chunk[i].command);
  }
  EXPECT_EQ(d1.frames_decoded(), d2.frames_decoded());
  EXPECT_EQ(d1.protocol_errors(), d2.protocol_errors());
  EXPECT_EQ(d1.bad_escapes(), d2.bad_escapes());
  EXPECT_EQ(d1.oversize_drops(), d2.oversize_drops());
}

TEST(KissChunkedFeed, EquivalentAcrossChunkSizesAndEscapeDensities) {
  // Escape-heavy payload: every escape may straddle a chunk boundary for
  // some chunk size below.
  Bytes payload;
  for (int i = 0; i < 300; ++i) {
    switch (i % 4) {
      case 0: payload.push_back(kKissFend); break;
      case 1: payload.push_back(kKissFesc); break;
      default: payload.push_back(static_cast<std::uint8_t>(i)); break;
    }
  }
  Bytes wire = KissEncodeData(payload);
  Bytes second = KissEncodeData(Bytes{1, 2, 3});
  wire.insert(wire.end(), second.begin(), second.end());
  for (std::size_t chunk : {1u, 2u, 3u, 7u, 16u, 64u, 1000u}) {
    ExpectChunkedEquivalent(wire, chunk);
  }
}

TEST(KissChunkedFeed, InvalidEscapeAbortsAndResyncsInChunks) {
  // FESC followed by a non-transpose byte aborts the frame; the next FEND
  // resynchronizes — same counters whether fed bytewise or chunked.
  Bytes wire{kKissFend, 0x00, 0x01, kKissFesc, 0x99, 0x02, 0x03, kKissFend};
  Bytes good = KissEncodeData(Bytes{0x42});
  wire.insert(wire.end(), good.begin(), good.end());
  for (std::size_t chunk : {1u, 2u, 4u, 100u}) {
    ExpectChunkedEquivalent(wire, chunk);
  }
  // And the chunked decoder really recovers the trailing frame.
  std::vector<KissFrame> frames;
  KissDecoder d([&](const KissFrame& f) { frames.push_back(f); });
  d.Feed(wire.data(), wire.size());
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].payload, Bytes{0x42});
  EXPECT_EQ(d.protocol_errors(), 1u);
}

TEST(KissChunkedFeed, OversizeDiscardAndResyncMatchesBytewise) {
  Bytes big(100, 0xAA);
  Bytes wire = KissEncodeData(big);
  Bytes good = KissEncodeData(Bytes{7, 8});
  wire.insert(wire.end(), good.begin(), good.end());
  std::vector<KissFrame> by_byte, by_chunk;
  KissDecoder d1([&](const KissFrame& f) { by_byte.push_back(f); }, 16);
  KissDecoder d2([&](const KissFrame& f) { by_chunk.push_back(f); }, 16);
  for (std::uint8_t b : wire) {
    d1.Feed(b);
  }
  d2.Feed(wire.data(), wire.size());
  ASSERT_EQ(by_byte.size(), 1u);
  ASSERT_EQ(by_chunk.size(), 1u);
  EXPECT_EQ(by_chunk[0].payload, (Bytes{7, 8}));
  EXPECT_EQ(d1.oversize_drops(), 1u);
  EXPECT_EQ(d2.oversize_drops(), 1u);
}

TEST(KissChunkedFeed, FrameExactlyAtMaxSizeSurvivesChunked) {
  // max_frame_ counts type byte + payload; a frame exactly at the cap must
  // decode, one byte over must not — in both feeding disciplines.
  Bytes at_cap(15, 0x11);   // 1 type byte + 15 = 16 = cap
  Bytes over_cap(16, 0x22); // 1 + 16 = 17 > cap
  for (bool chunked : {false, true}) {
    std::vector<KissFrame> frames;
    KissDecoder d([&](const KissFrame& f) { frames.push_back(f); }, 16);
    Bytes wire = KissEncodeData(at_cap);
    Bytes wire2 = KissEncodeData(over_cap);
    wire.insert(wire.end(), wire2.begin(), wire2.end());
    if (chunked) {
      d.Feed(wire.data(), wire.size());
    } else {
      for (std::uint8_t b : wire) {
        d.Feed(b);
      }
    }
    ASSERT_EQ(frames.size(), 1u) << "chunked=" << chunked;
    EXPECT_EQ(frames[0].payload, at_cap);
    EXPECT_EQ(d.oversize_drops(), 1u);
  }
}

TEST(KissEncodeTest, WireFormatExact) {
  // FEND, type 0x00, payload, FEND.
  Bytes wire = KissEncodeData(Bytes{0x10, 0x20});
  EXPECT_EQ(wire, (Bytes{kKissFend, 0x00, 0x10, 0x20, kKissFend}));
}

TEST(KissEncodeTest, EscapedBytesExpandCorrectly) {
  Bytes wire = KissEncodeData(Bytes{kKissFend});
  EXPECT_EQ(wire, (Bytes{kKissFend, 0x00, kKissFesc, kKissTfend, kKissFend}));
  wire = KissEncodeData(Bytes{kKissFesc});
  EXPECT_EQ(wire, (Bytes{kKissFend, 0x00, kKissFesc, kKissTfesc, kKissFend}));
}

}  // namespace
}  // namespace upr
