#include <gtest/gtest.h>

#include <vector>

#include "src/kiss/kiss.h"

namespace upr {
namespace {

class KissRoundTrip : public ::testing::Test {
 protected:
  KissRoundTrip() : decoder_([this](const KissFrame& f) { frames_.push_back(f); }) {}

  std::vector<KissFrame> frames_;
  KissDecoder decoder_;
};

TEST_F(KissRoundTrip, SimpleDataFrame) {
  Bytes payload{0x01, 0x02, 0x03};
  decoder_.Feed(KissEncodeData(payload));
  ASSERT_EQ(frames_.size(), 1u);
  EXPECT_EQ(frames_[0].command, KissCommand::kData);
  EXPECT_EQ(frames_[0].port, 0);
  EXPECT_EQ(frames_[0].payload, payload);
}

TEST_F(KissRoundTrip, EscapesFendAndFesc) {
  Bytes payload{kKissFend, 0x42, kKissFesc, kKissFend};
  Bytes wire = KissEncodeData(payload);
  // Wire contains no raw FEND except the delimiters.
  int fends = 0;
  for (std::size_t i = 1; i + 1 < wire.size(); ++i) {
    if (wire[i] == kKissFend) {
      ++fends;
    }
  }
  EXPECT_EQ(fends, 0);
  decoder_.Feed(wire);
  ASSERT_EQ(frames_.size(), 1u);
  EXPECT_EQ(frames_[0].payload, payload);
}

TEST_F(KissRoundTrip, PayloadOfEveryByteValue) {
  Bytes payload;
  for (int i = 0; i < 256; ++i) {
    payload.push_back(static_cast<std::uint8_t>(i));
  }
  decoder_.Feed(KissEncodeData(payload));
  ASSERT_EQ(frames_.size(), 1u);
  EXPECT_EQ(frames_[0].payload, payload);
}

TEST_F(KissRoundTrip, ByteAtATimeStreaming) {
  Bytes payload{kKissFesc, kKissFend, 0x00, 0x7F};
  Bytes wire = KissEncodeData(payload);
  for (std::uint8_t b : wire) {
    decoder_.Feed(b);
  }
  ASSERT_EQ(frames_.size(), 1u);
  EXPECT_EQ(frames_[0].payload, payload);
}

TEST_F(KissRoundTrip, BackToBackFramesShareDelimiters) {
  Bytes a = KissEncodeData(Bytes{1});
  Bytes b = KissEncodeData(Bytes{2});
  Bytes wire = a;
  wire.insert(wire.end(), b.begin(), b.end());
  decoder_.Feed(wire);
  ASSERT_EQ(frames_.size(), 2u);
  EXPECT_EQ(frames_[0].payload, Bytes{1});
  EXPECT_EQ(frames_[1].payload, Bytes{2});
}

TEST_F(KissRoundTrip, IdleFendsBetweenFramesIgnored) {
  decoder_.Feed(Bytes{kKissFend, kKissFend, kKissFend});
  EXPECT_TRUE(frames_.empty());
  decoder_.Feed(KissEncodeData(Bytes{7}));
  EXPECT_EQ(frames_.size(), 1u);
}

TEST_F(KissRoundTrip, CommandFramesCarryPortAndType) {
  KissFrame f;
  f.port = 3;
  f.command = KissCommand::kTxDelay;
  f.payload = Bytes{50};
  decoder_.Feed(KissEncode(f));
  ASSERT_EQ(frames_.size(), 1u);
  EXPECT_EQ(frames_[0].port, 3);
  EXPECT_EQ(frames_[0].command, KissCommand::kTxDelay);
  EXPECT_EQ(frames_[0].payload, Bytes{50});
}

TEST_F(KissRoundTrip, ReturnFrameIs0xFF) {
  KissFrame f;
  f.command = KissCommand::kReturn;
  Bytes wire = KissEncode(f);
  ASSERT_GE(wire.size(), 2u);
  EXPECT_EQ(wire[1], 0xFF);
  decoder_.Feed(wire);
  ASSERT_EQ(frames_.size(), 1u);
  EXPECT_EQ(frames_[0].command, KissCommand::kReturn);
}

TEST_F(KissRoundTrip, InvalidEscapeDropsFrameAndResyncs) {
  Bytes wire{kKissFend, 0x00, 0x01, kKissFesc, 0x99, 0x02, kKissFend};
  decoder_.Feed(wire);
  EXPECT_TRUE(frames_.empty());
  EXPECT_EQ(decoder_.protocol_errors(), 1u);
  // Next frame decodes fine.
  decoder_.Feed(KissEncodeData(Bytes{5}));
  ASSERT_EQ(frames_.size(), 1u);
  EXPECT_EQ(frames_[0].payload, Bytes{5});
}

TEST_F(KissRoundTrip, OversizeFrameDropped) {
  KissDecoder small([this](const KissFrame& f) { frames_.push_back(f); }, 16);
  Bytes big(100, 0xAA);
  small.Feed(KissEncodeData(big));
  EXPECT_TRUE(frames_.empty());
  EXPECT_EQ(small.oversize_drops(), 1u);
  small.Feed(KissEncodeData(Bytes{1, 2}));
  ASSERT_EQ(frames_.size(), 1u);
}

TEST_F(KissRoundTrip, ResetDropsPartialFrame) {
  decoder_.Feed(Bytes{kKissFend, 0x00, 0x01, 0x02});
  decoder_.Reset();
  decoder_.Feed(Bytes{0x03, kKissFend});  // tail of the old frame: becomes garbage frame
  // The stray bytes form a new "frame" with type 0x03 — decoder is lenient,
  // but the original payload must not leak through.
  for (const auto& f : frames_) {
    EXPECT_NE(f.payload, (Bytes{0x01, 0x02, 0x03}));
  }
}

TEST_F(KissRoundTrip, EmptyPayloadDataFrame) {
  decoder_.Feed(KissEncodeData(Bytes{}));
  ASSERT_EQ(frames_.size(), 1u);
  EXPECT_TRUE(frames_[0].payload.empty());
}

TEST(KissEncodeTest, WireFormatExact) {
  // FEND, type 0x00, payload, FEND.
  Bytes wire = KissEncodeData(Bytes{0x10, 0x20});
  EXPECT_EQ(wire, (Bytes{kKissFend, 0x00, 0x10, 0x20, kKissFend}));
}

TEST(KissEncodeTest, EscapedBytesExpandCorrectly) {
  Bytes wire = KissEncodeData(Bytes{kKissFend});
  EXPECT_EQ(wire, (Bytes{kKissFend, 0x00, kKissFesc, kKissTfend, kKissFend}));
  wire = KissEncodeData(Bytes{kKissFesc});
  EXPECT_EQ(wire, (Bytes{kKissFend, 0x00, kKissFesc, kKissTfesc, kKissFend}));
}

}  // namespace
}  // namespace upr
