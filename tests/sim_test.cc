#include <gtest/gtest.h>

#include <vector>

#include "src/sim/simulator.h"

namespace upr {
namespace {

TEST(SimulatorTest, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(Milliseconds(30), [&] { order.push_back(3); });
  sim.Schedule(Milliseconds(10), [&] { order.push_back(1); });
  sim.Schedule(Milliseconds(20), [&] { order.push_back(2); });
  sim.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), Milliseconds(30));
}

TEST(SimulatorTest, EqualTimestampsRunInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.Schedule(Seconds(1), [&order, i] { order.push_back(i); });
  }
  sim.RunAll();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  auto id = sim.Schedule(Seconds(1), [&] { ran = true; });
  sim.Cancel(id);
  sim.RunAll();
  EXPECT_FALSE(ran);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulatorTest, CancelIsIdempotentAndSafeAfterRun) {
  Simulator sim;
  int runs = 0;
  auto id = sim.Schedule(Seconds(1), [&] { ++runs; });
  sim.RunAll();
  sim.Cancel(id);  // already executed: no-op
  sim.Cancel(id);
  EXPECT_EQ(runs, 1);
}

TEST(SimulatorTest, RunUntilStopsAtDeadlineAndAdvancesClock) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(Seconds(1), [&] { order.push_back(1); });
  sim.Schedule(Seconds(5), [&] { order.push_back(5); });
  sim.RunUntil(Seconds(2));
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_EQ(sim.Now(), Seconds(2));
  sim.RunUntil(Seconds(10));
  EXPECT_EQ(order, (std::vector<int>{1, 5}));
}

TEST(SimulatorTest, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) {
      sim.Schedule(Seconds(1), recurse);
    }
  };
  sim.Schedule(Seconds(1), recurse);
  sim.RunAll();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.Now(), Seconds(5));
}

TEST(SimulatorTest, NegativeDelayClampsToNow) {
  Simulator sim;
  sim.Schedule(Seconds(2), [] {});
  sim.RunAll();
  SimTime before = sim.Now();
  bool ran = false;
  sim.Schedule(-Seconds(5), [&] { ran = true; });
  sim.RunAll();
  EXPECT_TRUE(ran);
  EXPECT_EQ(sim.Now(), before);
}

TEST(TimerTest, FiresOnceAfterDelay) {
  Simulator sim;
  int fires = 0;
  Timer t(&sim, [&] { ++fires; });
  t.Restart(Seconds(3));
  EXPECT_TRUE(t.running());
  sim.RunAll();
  EXPECT_EQ(fires, 1);
  EXPECT_FALSE(t.running());
}

TEST(TimerTest, RestartResetsDeadline) {
  Simulator sim;
  int fires = 0;
  Timer t(&sim, [&] { ++fires; });
  t.Restart(Seconds(1));
  sim.RunUntil(Milliseconds(500));
  t.Restart(Seconds(1));
  sim.RunUntil(Seconds(1));  // original deadline passes
  EXPECT_EQ(fires, 0);
  sim.RunUntil(Seconds(2));
  EXPECT_EQ(fires, 1);
}

TEST(TimerTest, StopCancels) {
  Simulator sim;
  int fires = 0;
  Timer t(&sim, [&] { ++fires; });
  t.Restart(Seconds(1));
  t.Stop();
  sim.RunAll();
  EXPECT_EQ(fires, 0);
}

TEST(TimerTest, TimerCanRearmItself) {
  Simulator sim;
  int fires = 0;
  Timer* handle = nullptr;
  Timer t(&sim, [&] {
    if (++fires < 3) {
      handle->Restart(Seconds(1));
    }
  });
  handle = &t;
  t.Restart(Seconds(1));
  sim.RunAll();
  EXPECT_EQ(fires, 3);
  EXPECT_EQ(sim.Now(), Seconds(3));
}

TEST(SimulatorTest, EventPoolRecyclesInsteadOfGrowing) {
  Simulator sim;
  // A self-rescheduling chain keeps at most one event live; the pool must
  // not grow with the number of events executed.
  int fires = 0;
  std::function<void()> tick = [&] {
    if (++fires < 10000) {
      sim.Schedule(kMicrosecond, tick);
    }
  };
  sim.Schedule(kMicrosecond, tick);
  sim.RunAll();
  EXPECT_EQ(fires, 10000);
  EXPECT_EQ(sim.events_scheduled(), 10000u);
  EXPECT_EQ(sim.executed_events(), 10000u);
  EXPECT_LE(sim.pool_capacity(), 4u);
  EXPECT_EQ(sim.pool_free(), sim.pool_capacity());
}

TEST(SimulatorTest, CancelledEventsReturnToPool) {
  Simulator sim;
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(sim.Schedule(Seconds(1), [] {}));
  }
  for (auto id : ids) {
    sim.Cancel(id);
  }
  EXPECT_EQ(sim.pending_events(), 0u);
  sim.RunAll();
  EXPECT_EQ(sim.pool_free(), sim.pool_capacity());
  // Recycled slots are reused by later schedules.
  std::size_t capacity = sim.pool_capacity();
  bool ran = false;
  sim.Schedule(Seconds(1), [&] { ran = true; });
  sim.RunAll();
  EXPECT_TRUE(ran);
  EXPECT_EQ(sim.pool_capacity(), capacity);
}

TEST(SimulatorTest, CancelOfRecycledIdDoesNotAffectNewEvent) {
  Simulator sim;
  auto id = sim.Schedule(Seconds(1), [] {});
  sim.RunAll();
  // `id` already ran; a new event may reuse its pool slot. Cancelling the
  // stale id must be a no-op for the new event.
  bool ran = false;
  sim.Schedule(Seconds(1), [&] { ran = true; });
  sim.Cancel(id);
  sim.RunAll();
  EXPECT_TRUE(ran);
}

TEST(TimeHelpersTest, Conversions) {
  EXPECT_EQ(Seconds(1.5), 1'500'000'000);
  EXPECT_EQ(Milliseconds(2), 2'000'000);
  EXPECT_EQ(Microseconds(3), 3'000);
  EXPECT_DOUBLE_EQ(ToSeconds(Seconds(4)), 4.0);
  EXPECT_DOUBLE_EQ(ToMillis(Milliseconds(7)), 7.0);
}

TEST(TimeHelpersTest, TransmitTimeAt1200Baud) {
  // 150 bytes at 1200 bit/s = 1 second: the paper's dominant cost.
  EXPECT_EQ(TransmitTime(150, 1200), Seconds(1));
  EXPECT_EQ(TransmitTime(1500, 10'000'000), Microseconds(1200));
}

}  // namespace
}  // namespace upr
