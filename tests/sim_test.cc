#include <gtest/gtest.h>

#include <vector>

#include "src/sim/simulator.h"

namespace upr {
namespace {

TEST(SimulatorTest, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(Milliseconds(30), [&] { order.push_back(3); });
  sim.Schedule(Milliseconds(10), [&] { order.push_back(1); });
  sim.Schedule(Milliseconds(20), [&] { order.push_back(2); });
  sim.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), Milliseconds(30));
}

TEST(SimulatorTest, EqualTimestampsRunInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.Schedule(Seconds(1), [&order, i] { order.push_back(i); });
  }
  sim.RunAll();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  auto id = sim.Schedule(Seconds(1), [&] { ran = true; });
  sim.Cancel(id);
  sim.RunAll();
  EXPECT_FALSE(ran);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulatorTest, CancelIsIdempotentAndSafeAfterRun) {
  Simulator sim;
  int runs = 0;
  auto id = sim.Schedule(Seconds(1), [&] { ++runs; });
  sim.RunAll();
  sim.Cancel(id);  // already executed: no-op
  sim.Cancel(id);
  EXPECT_EQ(runs, 1);
}

TEST(SimulatorTest, RunUntilStopsAtDeadlineAndAdvancesClock) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(Seconds(1), [&] { order.push_back(1); });
  sim.Schedule(Seconds(5), [&] { order.push_back(5); });
  sim.RunUntil(Seconds(2));
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_EQ(sim.Now(), Seconds(2));
  sim.RunUntil(Seconds(10));
  EXPECT_EQ(order, (std::vector<int>{1, 5}));
}

TEST(SimulatorTest, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) {
      sim.Schedule(Seconds(1), recurse);
    }
  };
  sim.Schedule(Seconds(1), recurse);
  sim.RunAll();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.Now(), Seconds(5));
}

TEST(SimulatorTest, NegativeDelayClampsToNow) {
  Simulator sim;
  sim.Schedule(Seconds(2), [] {});
  sim.RunAll();
  SimTime before = sim.Now();
  bool ran = false;
  sim.Schedule(-Seconds(5), [&] { ran = true; });
  sim.RunAll();
  EXPECT_TRUE(ran);
  EXPECT_EQ(sim.Now(), before);
}

TEST(TimerTest, FiresOnceAfterDelay) {
  Simulator sim;
  int fires = 0;
  Timer t(&sim, [&] { ++fires; });
  t.Restart(Seconds(3));
  EXPECT_TRUE(t.running());
  sim.RunAll();
  EXPECT_EQ(fires, 1);
  EXPECT_FALSE(t.running());
}

TEST(TimerTest, RestartResetsDeadline) {
  Simulator sim;
  int fires = 0;
  Timer t(&sim, [&] { ++fires; });
  t.Restart(Seconds(1));
  sim.RunUntil(Milliseconds(500));
  t.Restart(Seconds(1));
  sim.RunUntil(Seconds(1));  // original deadline passes
  EXPECT_EQ(fires, 0);
  sim.RunUntil(Seconds(2));
  EXPECT_EQ(fires, 1);
}

TEST(TimerTest, StopCancels) {
  Simulator sim;
  int fires = 0;
  Timer t(&sim, [&] { ++fires; });
  t.Restart(Seconds(1));
  t.Stop();
  sim.RunAll();
  EXPECT_EQ(fires, 0);
}

TEST(TimerTest, TimerCanRearmItself) {
  Simulator sim;
  int fires = 0;
  Timer* handle = nullptr;
  Timer t(&sim, [&] {
    if (++fires < 3) {
      handle->Restart(Seconds(1));
    }
  });
  handle = &t;
  t.Restart(Seconds(1));
  sim.RunAll();
  EXPECT_EQ(fires, 3);
  EXPECT_EQ(sim.Now(), Seconds(3));
}

TEST(SimulatorTest, EventPoolRecyclesInsteadOfGrowing) {
  Simulator sim;
  // A self-rescheduling chain keeps at most one event live; the pool must
  // not grow with the number of events executed.
  int fires = 0;
  std::function<void()> tick = [&] {
    if (++fires < 10000) {
      sim.Schedule(kMicrosecond, tick);
    }
  };
  sim.Schedule(kMicrosecond, tick);
  sim.RunAll();
  EXPECT_EQ(fires, 10000);
  EXPECT_EQ(sim.events_scheduled(), 10000u);
  EXPECT_EQ(sim.executed_events(), 10000u);
  EXPECT_LE(sim.pool_capacity(), 4u);
  EXPECT_EQ(sim.pool_free(), sim.pool_capacity());
}

TEST(SimulatorTest, CancelledEventsReturnToPool) {
  Simulator sim;
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(sim.Schedule(Seconds(1), [] {}));
  }
  for (auto id : ids) {
    sim.Cancel(id);
  }
  EXPECT_EQ(sim.pending_events(), 0u);
  sim.RunAll();
  EXPECT_EQ(sim.pool_free(), sim.pool_capacity());
  // Recycled slots are reused by later schedules.
  std::size_t capacity = sim.pool_capacity();
  bool ran = false;
  sim.Schedule(Seconds(1), [&] { ran = true; });
  sim.RunAll();
  EXPECT_TRUE(ran);
  EXPECT_EQ(sim.pool_capacity(), capacity);
}

TEST(SimulatorTest, CancelOfRecycledIdDoesNotAffectNewEvent) {
  Simulator sim;
  auto id = sim.Schedule(Seconds(1), [] {});
  sim.RunAll();
  // `id` already ran; a new event may reuse its pool slot. Cancelling the
  // stale id must be a no-op for the new event.
  bool ran = false;
  sim.Schedule(Seconds(1), [&] { ran = true; });
  sim.Cancel(id);
  sim.RunAll();
  EXPECT_TRUE(ran);
}

TEST(TimerWheelTest, CancelledWheelEventsRecycleImmediately) {
  // The tombstone regression: re-arming a timer 100k times used to leave
  // 100k dead heap entries (pool slots + O(log n) pops). With the wheel,
  // every cancel returns its slot to the free list at once.
  Simulator sim(Simulator::EventQueue::kTimerWheel);
  Timer t(&sim, [] {});
  for (int i = 0; i < 100'000; ++i) {
    t.Restart(Seconds(5));  // each Restart cancels the previous arm
  }
  EXPECT_EQ(sim.pending_events(), 1u);
  // One live arm; everything else must already be recycled.
  EXPECT_LE(sim.pool_capacity(), 4u);
  EXPECT_EQ(sim.pool_free(), sim.pool_capacity() - 1);
  t.Stop();
  EXPECT_EQ(sim.pool_free(), sim.pool_capacity());
}

TEST(TimerWheelTest, OrderingAcrossSlotAndLevelBoundaries) {
  // Deadlines straddling every wheel level (65 µs slots, 16.8 ms, 4.3 s,
  // 18 min spans) plus a beyond-horizon event that overflows to the heap.
  Simulator sim(Simulator::EventQueue::kTimerWheel);
  std::vector<int> order;
  const SimTime whens[] = {
      Microseconds(1),  Microseconds(64), Microseconds(65),  Microseconds(200),
      Milliseconds(16), Milliseconds(17), Milliseconds(400), Seconds(4),
      Seconds(5),       Seconds(1000),    Seconds(1100),     Seconds(100'000),
      Seconds(300'000), Seconds(400'000),
  };
  // Schedule in reverse to decouple insertion order from firing order.
  for (int i = static_cast<int>(std::size(whens)) - 1; i >= 0; --i) {
    sim.ScheduleAt(whens[i], [&order, i] { order.push_back(i); });
  }
  sim.RunAll();
  ASSERT_EQ(order.size(), std::size(whens));
  for (std::size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], static_cast<int>(i));
  }
  EXPECT_EQ(sim.Now(), Seconds(400'000));
}

TEST(TimerWheelTest, EqualTimestampsInterleaveWheelAndHeapBySeq) {
  // Two events at the same instant, one wheel-resident and one scheduled
  // while beyond the horizon (heap overflow): sequence order must still win.
  Simulator sim(Simulator::EventQueue::kTimerWheel);
  std::vector<int> order;
  const SimTime far = Seconds(500'000);  // beyond the 78 h wheel horizon
  sim.ScheduleAt(far, [&] { order.push_back(0); });   // heap resident
  sim.ScheduleAt(far, [&] { order.push_back(1); });   // heap resident
  sim.ScheduleAt(Seconds(250'000), [&] {
    // By now `far` is inside the horizon: this lands in the wheel, at the
    // same timestamp but with a later seq than the heap pair.
    sim.ScheduleAt(far, [&] { order.push_back(2); });
  });
  sim.RunAll();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(TimerWheelTest, RunUntilAdvancesAcrossEmptySpans) {
  // Large idle jumps (RunUntil with an empty wheel) must not cost per-slot
  // work or corrupt bucketing for later schedules.
  Simulator sim(Simulator::EventQueue::kTimerWheel);
  sim.RunUntil(Seconds(3600));
  EXPECT_EQ(sim.Now(), Seconds(3600));
  std::vector<int> order;
  sim.Schedule(Milliseconds(1), [&] { order.push_back(1); });
  sim.Schedule(Seconds(30), [&] { order.push_back(2); });
  sim.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(sim.Now(), Seconds(3600) + Seconds(30));
}

TEST(TimerWheelTest, ExecutionOrderIdenticalToLegacyHeapUnderChurn) {
  // A/B determinism gate in miniature: a randomized schedule/cancel/re-arm
  // storm must execute in exactly the same order under the wheel and the
  // legacy heap. (check.sh runs the full-scenario tracediff version.)
  auto run = [](Simulator::EventQueue mode) {
    Simulator sim(mode);
    std::vector<std::uint64_t> fired;
    std::vector<std::uint64_t> ids;
    std::uint64_t lcg = 12345;
    auto next = [&lcg] {
      lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
      return lcg >> 33;
    };
    for (int round = 0; round < 50; ++round) {
      for (int i = 0; i < 40; ++i) {
        std::uint64_t tag = next();
        SimTime delay = static_cast<SimTime>(next() % 2'000'000'000);  // 0..2 s
        ids.push_back(sim.Schedule(delay, [&fired, tag] { fired.push_back(tag); }));
      }
      // Cancel a pseudo-random third of everything ever scheduled.
      for (std::size_t i = 0; i < ids.size(); i += 3) {
        if (next() % 2 == 0) {
          sim.Cancel(ids[i]);
        }
      }
      sim.RunUntil(sim.Now() + Milliseconds(250));
    }
    sim.RunAll();
    return fired;
  };
  auto wheel = run(Simulator::EventQueue::kTimerWheel);
  auto heap = run(Simulator::EventQueue::kHeap);
  EXPECT_GT(wheel.size(), 100u);
  EXPECT_EQ(wheel, heap);
}

TEST(TimeHelpersTest, Conversions) {
  EXPECT_EQ(Seconds(1.5), 1'500'000'000);
  EXPECT_EQ(Milliseconds(2), 2'000'000);
  EXPECT_EQ(Microseconds(3), 3'000);
  EXPECT_DOUBLE_EQ(ToSeconds(Seconds(4)), 4.0);
  EXPECT_DOUBLE_EQ(ToMillis(Milliseconds(7)), 7.0);
}

TEST(TimeHelpersTest, TransmitTimeAt1200Baud) {
  // 150 bytes at 1200 bit/s = 1 second: the paper's dominant cost.
  EXPECT_EQ(TransmitTime(150, 1200), Seconds(1));
  EXPECT_EQ(TransmitTime(1500, 10'000'000), Microseconds(1200));
}

TEST(TimeHelpersTest, TransmitTimeIsExactIntegerMathWithRoundHalfUp) {
  // Non-divisible rates: the old double formula truncated (1 byte at 1200
  // bit/s -> 6666666 ns); integer round-half-up pins the mathematically
  // nearest nanosecond.
  EXPECT_EQ(TransmitTime(1, 1200), 6'666'667);     // 6666666.66... rounds up
  EXPECT_EQ(TransmitTime(100, 1200), 666'666'667); // .66 rounds up
  EXPECT_EQ(TransmitTime(1, 9600), 833'333);       // 833333.33 rounds down
  EXPECT_EQ(TransmitTime(7, 9600), 5'833'333);     // 5833333.33 rounds down
  // Exact half: 1 byte at 16000 bit/s = 500000 ns exactly; 1 at 3200000 is
  // 2500 ns exactly; 1 byte at 4800 = 1666666.66 rounds up.
  EXPECT_EQ(TransmitTime(1, 4800), 1'666'667);
  // Half-way case rounds up: 3 bytes at 48'000'000'000 bps = 0.5 ns.
  EXPECT_EQ(TransmitTime(3, 48'000'000'000ULL), 1);
  // Pathological rates.
  EXPECT_EQ(TransmitTime(1, 1), Seconds(8));         // 8 s per byte
  EXPECT_EQ(TransmitTime(1, 3), 2'666'666'667);      // 2.66... s rounds up
  EXPECT_EQ(TransmitTime(0, 1200), 0);
  EXPECT_EQ(TransmitTime(10, 0), 0);  // guarded: no divide-by-zero
  // Saturates instead of overflowing for absurd byte counts.
  EXPECT_EQ(TransmitTime(static_cast<std::size_t>(-1), 1), INT64_MAX);
  // No drift when accumulated: 1000 one-byte times vs one 1000-byte frame
  // differ only by per-frame rounding, never by more than half a ns each.
  SimTime per_byte_sum = 0;
  for (int i = 0; i < 1000; ++i) {
    per_byte_sum += TransmitTime(1, 1200);
  }
  SimTime frame = TransmitTime(1000, 1200);
  EXPECT_LE(per_byte_sum - frame, 1000);
  EXPECT_GE(per_byte_sum - frame, 0);
}

}  // namespace
}  // namespace upr
