// Trace-diff harness tests (ISSUE 5 tentpole): identical runs compare clean,
// a single-byte mutation is pinpointed at the right frame and byte offset, an
// inserted/deleted frame resynchronizes instead of cascading, and the timing
// tolerance is an exact boundary. Captures are built both in memory (for
// precise control of every field) and through the real writer → reader path.
#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "src/sim/simulator.h"
#include "src/trace/pcapng_reader.h"
#include "src/trace/pcapng_writer.h"
#include "src/trace/trace.h"
#include "src/trace/trace_diff.h"

namespace upr {
namespace {

using tracediff::Config;
using tracediff::DiffCaptures;
using tracediff::DiffFiles;
using tracediff::Result;
using trace::PcapngFile;
using trace::PcapngInterface;
using trace::PcapngPacket;

PcapngInterface Iface(const std::string& name) {
  PcapngInterface idb;
  idb.link_type = trace::kLinkTypeAx25Kiss;
  idb.snaplen = 65535;
  idb.name = name;
  idb.tsresol = 9;
  return idb;
}

PcapngPacket Pkt(std::uint32_t if_id, std::uint64_t ts, Bytes data,
                 const std::string& comment = "kiss:frame-out") {
  PcapngPacket p;
  p.interface_id = if_id;
  p.timestamp = ts;
  p.captured_len = static_cast<std::uint32_t>(data.size());
  p.orig_len = p.captured_len;
  p.data = std::move(data);
  p.comment = comment;
  return p;
}

// One interface, `n` distinct frames spaced 1 ms apart.
PcapngFile MakeCapture(std::size_t n) {
  PcapngFile f;
  f.interfaces.push_back(Iface("microvax dz0"));
  for (std::size_t i = 0; i < n; ++i) {
    Bytes data{0x00, static_cast<std::uint8_t>(i), 0x42,
               static_cast<std::uint8_t>(0xA0 + i)};
    f.packets.push_back(Pkt(0, 1'000'000 * (i + 1), std::move(data)));
  }
  return f;
}

TEST(TraceDiff, IdenticalCapturesAreEquivalent) {
  PcapngFile a = MakeCapture(8);
  PcapngFile b = MakeCapture(8);
  Result r = DiffCaptures(a, b);
  EXPECT_TRUE(r.equivalent);
  EXPECT_EQ(r.stats.differences(), 0u);
  EXPECT_EQ(r.stats.frames_compared, 8u);
  EXPECT_EQ(r.stats.interfaces_compared, 1u);
  EXPECT_NE(r.report.find("summary:"), std::string::npos);
}

TEST(TraceDiff, SingleByteMutationPinpointsFrameAndOffset) {
  PcapngFile a = MakeCapture(8);
  PcapngFile b = MakeCapture(8);
  b.packets[5].data[2] ^= 0xFF;
  Result r = DiffCaptures(a, b);
  EXPECT_FALSE(r.equivalent);
  EXPECT_EQ(r.stats.payload_diffs, 1u);
  EXPECT_EQ(r.stats.only_in_a, 0u);
  EXPECT_EQ(r.stats.only_in_b, 0u);
  // The report names the interface, both frame indices, and the byte offset.
  EXPECT_NE(r.report.find("microvax dz0"), std::string::npos);
  EXPECT_NE(r.report.find("a#5/b#5"), std::string::npos);
  EXPECT_NE(r.report.find("byte offset 2"), std::string::npos);
  // A mutation must not desync the tail: every frame still got compared.
  EXPECT_EQ(r.stats.frames_compared, 8u);
}

TEST(TraceDiff, MutationInLastFrameStillPaired) {
  PcapngFile a = MakeCapture(3);
  PcapngFile b = MakeCapture(3);
  b.packets[2].data[0] ^= 0x01;
  Result r = DiffCaptures(a, b);
  EXPECT_FALSE(r.equivalent);
  EXPECT_EQ(r.stats.payload_diffs, 1u);
  EXPECT_NE(r.report.find("byte offset 0"), std::string::npos);
}

TEST(TraceDiff, DeletedFrameResyncsWithoutCascade) {
  PcapngFile a = MakeCapture(10);
  PcapngFile b = MakeCapture(10);
  b.packets.erase(b.packets.begin() + 4);
  Result r = DiffCaptures(a, b);
  EXPECT_FALSE(r.equivalent);
  EXPECT_EQ(r.stats.only_in_a, 1u);
  EXPECT_EQ(r.stats.only_in_b, 0u);
  // The other nine frames realign and compare byte-clean.
  EXPECT_EQ(r.stats.payload_diffs, 0u);
  EXPECT_EQ(r.stats.frames_compared, 9u);
  EXPECT_NE(r.report.find("only in A"), std::string::npos);
}

TEST(TraceDiff, InsertedFrameResyncsWithoutCascade) {
  PcapngFile a = MakeCapture(10);
  PcapngFile b = MakeCapture(10);
  b.packets.insert(b.packets.begin() + 3,
                   Pkt(0, 3'500'000, Bytes{0x00, 0x77, 0x77, 0x77, 0x77}));
  Result r = DiffCaptures(a, b);
  EXPECT_FALSE(r.equivalent);
  EXPECT_EQ(r.stats.only_in_b, 1u);
  EXPECT_EQ(r.stats.only_in_a, 0u);
  EXPECT_EQ(r.stats.payload_diffs, 0u);
  EXPECT_EQ(r.stats.frames_compared, 10u);
  EXPECT_NE(r.report.find("only in B"), std::string::npos);
}

TEST(TraceDiff, TimingToleranceIsAnExactBoundary) {
  PcapngFile a = MakeCapture(4);
  PcapngFile b = MakeCapture(4);
  b.packets[1].timestamp += 500;  // +500 ns

  Config at_tol;
  at_tol.time_tol = 500;
  Result r = DiffCaptures(a, b, at_tol);
  EXPECT_TRUE(r.equivalent) << r.report;
  EXPECT_EQ(r.stats.timing_diffs, 0u);
  EXPECT_EQ(r.stats.max_time_delta, 500);

  Config below_tol;
  below_tol.time_tol = 499;
  r = DiffCaptures(a, b, below_tol);
  EXPECT_FALSE(r.equivalent);
  EXPECT_EQ(r.stats.timing_diffs, 1u);
  EXPECT_NE(r.report.find("timing"), std::string::npos);

  // Zero tolerance (the default) flags any shift at all.
  r = DiffCaptures(a, b);
  EXPECT_FALSE(r.equivalent);
  EXPECT_EQ(r.stats.timing_diffs, 1u);
}

TEST(TraceDiff, TimestampDeltaIsSymmetric) {
  PcapngFile a = MakeCapture(2);
  PcapngFile b = MakeCapture(2);
  a.packets[0].timestamp += 700;  // A later than B this time
  Config cfg;
  cfg.time_tol = 699;
  Result r = DiffCaptures(a, b, cfg);
  EXPECT_FALSE(r.equivalent);
  EXPECT_EQ(r.stats.max_time_delta, 700);
}

TEST(TraceDiff, TsresolNormalizedBeforeComparing) {
  // Same instants, one capture in microseconds, one in nanoseconds.
  PcapngFile a = MakeCapture(3);
  PcapngFile b = MakeCapture(3);
  b.interfaces[0].tsresol = 6;
  for (auto& p : b.packets) {
    p.timestamp /= 1000;
  }
  Result r = DiffCaptures(a, b);
  EXPECT_TRUE(r.equivalent) << r.report;
}

TEST(TraceDiff, InterfaceSetMismatchReported) {
  PcapngFile a = MakeCapture(2);
  PcapngFile b = MakeCapture(2);
  b.interfaces.push_back(Iface("pc0 tnc"));
  b.packets.push_back(Pkt(1, 5'000'000, Bytes{0x00, 0x01}));
  Result r = DiffCaptures(a, b);
  EXPECT_FALSE(r.equivalent);
  EXPECT_GE(r.stats.iface_diffs, 1u);
  EXPECT_NE(r.report.find("pc0 tnc"), std::string::npos);
}

TEST(TraceDiff, EventCountDiffReportedPerCommentKey) {
  PcapngFile a = MakeCapture(4);
  PcapngFile b = MakeCapture(4);
  // Same frame count, different layer attribution on one frame.
  b.packets[2].comment = "serial:rx-byte";
  Result r = DiffCaptures(a, b);
  EXPECT_FALSE(r.equivalent);
  EXPECT_GE(r.stats.count_diffs, 1u);
  EXPECT_NE(r.report.find("kiss:frame-out"), std::string::npos);
  EXPECT_NE(r.report.find("serial:rx-byte"), std::string::npos);
}

TEST(TraceDiff, ReportIsBoundedByMaxReport) {
  PcapngFile a = MakeCapture(40);
  PcapngFile b = MakeCapture(40);
  for (auto& p : b.packets) {
    p.data[1] ^= 0x80;  // every frame mutated
  }
  Config cfg;
  cfg.max_report = 5;
  Result r = DiffCaptures(a, b, cfg);
  EXPECT_FALSE(r.equivalent);
  EXPECT_EQ(r.stats.payload_diffs, 40u);
  EXPECT_NE(r.report.find("suppressed"), std::string::npos);
}

TEST(TraceDiff, EmptyCapturesAreEquivalent) {
  PcapngFile a;
  PcapngFile b;
  Result r = DiffCaptures(a, b);
  EXPECT_TRUE(r.equivalent);
  EXPECT_EQ(r.stats.frames_compared, 0u);
}

// End-to-end through the real writer and strict reader: two identical traced
// runs diff clean; re-running after flipping one byte on disk pinpoints it.
TEST(TraceDiff, DiffFilesRoundTrip) {
  const std::string path_a = "trace_diff_a.pcapng";
  const std::string path_b = "trace_diff_b.pcapng";
  auto write_run = [](const std::string& path) {
    Simulator sim;
    trace::TracerConfig cfg;
    cfg.pcap_path = path;
    trace::Tracer tracer(&sim, cfg);
    ASSERT_TRUE(tracer.pcap_ok());
    for (int i = 0; i < 5; ++i) {
      // The tracer prepends the KISS type byte, so the on-wire frame is
      // {00 i 10 20 30}.
      Bytes frame{static_cast<std::uint8_t>(i), 0x10, 0x20, 0x30};
      tracer.RecordFrame(trace::Layer::kKiss, trace::Kind::kKissFrameOut,
                         trace::Dir::kTx, "dz0", frame);
    }
    tracer.Flush();
  };
  write_run(path_a);
  write_run(path_b);

  std::string error;
  auto r = DiffFiles(path_a, path_b, {}, &error);
  ASSERT_TRUE(r.has_value()) << error;
  EXPECT_TRUE(r->equivalent) << r->report;

  // Flip one payload byte of file B in place: the frames all have distinct
  // bytes at offset 1, so the mutated frame still pairs with its original.
  {
    std::fstream f(path_b,
                   std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.good());
    Bytes raw((std::istreambuf_iterator<char>(f)),
              std::istreambuf_iterator<char>());
    // Find the frame payload {00 03 10 20 30} and corrupt its 0x10.
    Bytes needle{0x00, 0x03, 0x10, 0x20, 0x30};
    std::size_t pos = 0;
    bool found = false;
    for (std::size_t i = 0; i + needle.size() <= raw.size(); ++i) {
      if (std::equal(needle.begin(), needle.end(), raw.begin() + i)) {
        pos = i;
        found = true;
        break;
      }
    }
    ASSERT_TRUE(found);
    f.clear();
    f.seekp(static_cast<std::streamoff>(pos + 2));
    char evil = '\x11';
    f.write(&evil, 1);
  }

  r = DiffFiles(path_a, path_b, {}, &error);
  ASSERT_TRUE(r.has_value()) << error;
  EXPECT_FALSE(r->equivalent);
  EXPECT_EQ(r->stats.payload_diffs, 1u);
  EXPECT_NE(r->report.find("byte offset 2"), std::string::npos);

  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

TEST(TraceDiff, DiffFilesReportsMissingAndCorruptInputs) {
  std::string error;
  EXPECT_FALSE(
      DiffFiles("no-such-a.pcapng", "no-such-b.pcapng", {}, &error).has_value());
  EXPECT_FALSE(error.empty());

  const std::string path = "trace_diff_garbage.pcapng";
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a pcapng file";
  }
  error.clear();
  EXPECT_FALSE(DiffFiles(path, path, {}, &error).has_value());
  EXPECT_FALSE(error.empty());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace upr
