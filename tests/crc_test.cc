// Cross-check regression tests for the sliced/word-parallel checksum
// implementations (src/util/crc.cc) against the seed's bitwise/byte-pair
// reference code, plus property tests for odd-offset checksum chaining.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/util/crc.h"
#include "src/util/random.h"

namespace upr {
namespace {

Bytes RandomBytes(Rng* rng, std::size_t len) {
  Bytes b(len);
  for (auto& v : b) {
    v = static_cast<std::uint8_t>(rng->NextU64());
  }
  return b;
}

// --- CRC-16/X-25: sliced vs bitwise ---------------------------------------

TEST(Crc16Test, KnownVectors) {
  // "123456789" -> 0x906E is the published CRC-16/X-25 check value.
  const std::uint8_t kCheck[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(Crc16Ccitt(kCheck, sizeof(kCheck)), 0x906E);
  EXPECT_EQ(Crc16CcittReference(kCheck, sizeof(kCheck)), 0x906E);
  EXPECT_EQ(Crc16Ccitt(nullptr, 0), Crc16CcittReference(nullptr, 0));
}

TEST(Crc16Test, SlicedMatchesBitwiseForAllSingleBytes) {
  for (int b = 0; b < 256; ++b) {
    std::uint8_t byte = static_cast<std::uint8_t>(b);
    EXPECT_EQ(Crc16Ccitt(&byte, 1), Crc16CcittReference(&byte, 1)) << b;
  }
}

TEST(Crc16Test, SlicedMatchesBitwiseForAllLengthsToFourSlices) {
  // Every length 0..32 covers the 8-byte slice loop boundaries (0..4 full
  // slices plus every tail length), with byte values that exercise all
  // table rows over the sweep.
  Rng rng(0xC4C1);
  for (std::size_t len = 0; len <= 32; ++len) {
    for (int trial = 0; trial < 64; ++trial) {
      Bytes data = RandomBytes(&rng, len);
      ASSERT_EQ(Crc16Ccitt(data.data(), len),
                Crc16CcittReference(data.data(), len))
          << "len=" << len << " trial=" << trial;
    }
  }
}

TEST(Crc16Test, SlicedMatchesBitwiseForFrameSizedBuffers) {
  Rng rng(0xF0F0);
  for (std::size_t len : {33u, 63u, 64u, 127u, 256u, 329u, 330u, 1500u, 4096u}) {
    Bytes data = RandomBytes(&rng, len);
    ASSERT_EQ(Crc16Ccitt(data.data(), len), Crc16CcittReference(data.data(), len))
        << "len=" << len;
  }
}

TEST(Crc16Test, UnalignedStartMatches) {
  // The slice loop reads through an arbitrary byte offset; make sure results
  // do not depend on pointer alignment.
  Rng rng(0xA11);
  Bytes data = RandomBytes(&rng, 256 + 8);
  for (std::size_t off = 0; off < 8; ++off) {
    ASSERT_EQ(Crc16Ccitt(data.data() + off, 256),
              Crc16CcittReference(data.data() + off, 256))
        << "offset=" << off;
  }
}

// --- Internet checksum: word-parallel vs byte-pair -------------------------

TEST(ChecksumTest, WideMatchesReferenceForAllLengthsAndOffsets) {
  Rng rng(0x1071);
  for (std::size_t len = 0; len <= 70; ++len) {
    for (std::size_t off = 0; off < 4; ++off) {
      Bytes data = RandomBytes(&rng, len + off);
      ASSERT_EQ(InternetChecksum(data.data() + off, len),
                ChecksumFinish(ChecksumPartialReference(data.data() + off, len)))
          << "len=" << len << " off=" << off;
    }
  }
}

TEST(ChecksumTest, WideMatchesReferenceWithInitialSum) {
  Rng rng(0x1072);
  for (std::size_t len : {0u, 1u, 7u, 20u, 65u, 1500u}) {
    Bytes data = RandomBytes(&rng, len);
    for (std::uint32_t initial : {0u, 1u, 0xFFFFu, 0x12345u, 0xFFFF0000u >> 4}) {
      ASSERT_EQ(InternetChecksum(data.data(), len, initial),
                ChecksumFinish(ChecksumPartialReference(data.data(), len, initial)))
          << "len=" << len << " initial=" << initial;
    }
  }
}

TEST(ChecksumTest, AllZeroAndAllOnesEdgeCases) {
  // One's-complement has two zeros; 0x0000 (empty/zero data) and 0xFFFF
  // (nonzero data summing to a multiple of 0xFFFF) must not be conflated.
  Bytes zeros(40, 0x00);
  Bytes ones(40, 0xFF);
  EXPECT_EQ(InternetChecksum(zeros.data(), zeros.size()),
            ChecksumFinish(ChecksumPartialReference(zeros.data(), zeros.size())));
  EXPECT_EQ(InternetChecksum(ones.data(), ones.size()),
            ChecksumFinish(ChecksumPartialReference(ones.data(), ones.size())));
  EXPECT_EQ(InternetChecksum(nullptr, 0), 0xFFFF);
}

// --- Odd-offset chaining (the PacketBuf segment-boundary audit) ------------

// Naive ChecksumPartial chaining treats every chunk as word-aligned: an
// odd-length first chunk pads its dangling byte as a word HIGH half, and the
// next chunk restarts on a word boundary. That diverges from the flattened
// sum — this test documents the trap the accumulator exists to fix.
TEST(ChecksumChainTest, NaivePartialChainingDivergesOnOddSplit) {
  const std::uint8_t flat[] = {0x01, 0x02, 0x03, 0x04};
  std::uint16_t flattened = InternetChecksum(flat, 4);
  // Split 1|3: naive chaining double-counts byte weights.
  std::uint32_t chained = ChecksumPartial(flat + 1, 3, ChecksumPartial(flat, 1));
  EXPECT_NE(ChecksumFinish(chained), flattened);
}

TEST(ChecksumChainTest, AccumulatorMatchesFlattenedForAllSplitPoints) {
  Rng rng(0xACC);
  for (std::size_t len : {1u, 2u, 3u, 8u, 21u, 64u, 129u}) {
    Bytes data = RandomBytes(&rng, len);
    std::uint16_t flattened = InternetChecksum(data.data(), len);
    for (std::size_t split = 0; split <= len; ++split) {
      ChecksumAccumulator acc;
      acc.Add(data.data(), split);
      acc.Add(data.data() + split, len - split);
      ASSERT_EQ(acc.Finish(), flattened) << "len=" << len << " split=" << split;
    }
  }
}

TEST(ChecksumChainTest, AccumulatorMatchesFlattenedForRandomMultiSegmentChains) {
  Rng rng(0xACC2);
  for (int trial = 0; trial < 200; ++trial) {
    std::size_t len = 1 + static_cast<std::size_t>(rng.NextBelow(300));
    Bytes data = RandomBytes(&rng, len);
    ChecksumAccumulator acc;
    std::size_t pos = 0;
    while (pos < len) {
      std::size_t seg = 1 + static_cast<std::size_t>(rng.NextBelow(len - pos));
      acc.Add(data.data() + pos, seg);
      pos += seg;
    }
    ASSERT_EQ(acc.Finish(), InternetChecksum(data.data(), len))
        << "trial=" << trial << " len=" << len;
  }
}

TEST(ChecksumChainTest, AccumulatorSumIsChainableAsInitial) {
  // Sum() reports the ChecksumPartial convention, so an accumulator over the
  // even-length pseudo-header composes with a plain ChecksumPartial payload
  // pass exactly like the stack's TCP/UDP code does.
  const std::uint8_t pseudo[] = {44, 24, 1, 2, 44, 24, 2, 3, 0, 6, 0, 20};
  const std::uint8_t payload[] = {0xDE, 0xAD, 0xBE, 0xEF, 0x99};
  ChecksumAccumulator acc;
  acc.Add(pseudo, sizeof(pseudo));
  std::uint16_t via_acc =
      ChecksumFinish(ChecksumPartial(payload, sizeof(payload), acc.Sum()));
  std::uint16_t via_partial = ChecksumFinish(ChecksumPartial(
      payload, sizeof(payload), ChecksumPartialReference(pseudo, sizeof(pseudo))));
  EXPECT_EQ(via_acc, via_partial);
}

TEST(ChecksumChainTest, LongChainDoesNotOverflow) {
  // The accumulator pre-folds per Add; thousands of max-weight segments must
  // still match the flattened checksum.
  Bytes data(64 * 1024, 0xFF);
  ChecksumAccumulator acc;
  for (std::size_t pos = 0; pos < data.size(); pos += 7) {
    std::size_t seg = std::min<std::size_t>(7, data.size() - pos);
    acc.Add(data.data() + pos, seg);
  }
  EXPECT_EQ(acc.Finish(), InternetChecksum(data.data(), data.size()));
}

}  // namespace
}  // namespace upr
