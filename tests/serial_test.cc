#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/serial/serial_line.h"
#include "src/sim/simulator.h"

namespace upr {
namespace {

// Exact land time of the n-th byte (1-based) of a burst starting at t=0:
// round(n * 10 bits / baud), the cumulative-rounding rule SerialLine uses.
SimTime LandTime(std::uint64_t n, std::uint32_t baud) {
  return static_cast<SimTime>(std::llround(
      static_cast<double>(n) * 10.0 / baud * static_cast<double>(kSecond)));
}

TEST(SerialLineTest, DeliversBytesInOrder) {
  Simulator sim;
  SerialLine line(&sim, 9600);
  Bytes got;
  line.b().set_receive_handler([&](std::uint8_t b) { got.push_back(b); });
  line.a().Write(Bytes{1, 2, 3, 4});
  sim.RunAll();
  EXPECT_EQ(got, (Bytes{1, 2, 3, 4}));
}

TEST(SerialLineTest, ByteTimingMatchesBaudRate) {
  Simulator sim;
  SerialLine line(&sim, 9600);
  // 10 bits per byte at 9600 baud, rounded to the nearest nanosecond.
  EXPECT_EQ(line.byte_time(), LandTime(1, 9600));
  std::vector<SimTime> arrivals;
  line.b().set_receive_handler([&](std::uint8_t) { arrivals.push_back(sim.Now()); });
  line.a().Write(Bytes{0, 0, 0});
  sim.RunAll();
  ASSERT_EQ(arrivals.size(), 3u);
  // Each arrival is the *cumulative* rounded time, not n truncated additions.
  EXPECT_EQ(arrivals[0], LandTime(1, 9600));
  EXPECT_EQ(arrivals[1], LandTime(2, 9600));
  EXPECT_EQ(arrivals[2], LandTime(3, 9600));
}

TEST(SerialLineTest, NonDivisorBaudRateDoesNotDrift) {
  // 9600 baud: 1041666.67 ns/byte. The old per-byte truncation lost 2/3 ns
  // per byte (~0.06 ms/s of drift); cumulative rounding keeps the clock
  // within half a nanosecond of exact forever. 9600 bytes at 9600 baud with
  // 10-bit framing is exactly 10 seconds.
  Simulator sim;
  SerialLine line(&sim, 9600);
  SimTime last = 0;
  line.b().set_receive_handler([&](std::uint8_t) { last = sim.Now(); });
  line.a().Write(Bytes(9600, 0x55));
  sim.RunAll();
  EXPECT_EQ(last, Seconds(10));
}

TEST(SerialLineTest, BacklogSerializesBursts) {
  Simulator sim;
  SerialLine line(&sim, 1200);
  int received = 0;
  line.b().set_receive_handler([&](std::uint8_t) { ++received; });
  line.a().Write(Bytes(120, 0x55));  // one second of data at 1200 baud
  EXPECT_EQ(line.a().backlog(), 120u);
  sim.RunUntil(Milliseconds(500));
  EXPECT_EQ(received, 60);
  sim.RunAll();
  EXPECT_EQ(received, 120);
  EXPECT_EQ(line.a().backlog(), 0u);
}

TEST(SerialLineTest, FullDuplexDirectionsIndependent) {
  Simulator sim;
  SerialLine line(&sim, 9600);
  int a_got = 0, b_got = 0;
  line.a().set_receive_handler([&](std::uint8_t) { ++a_got; });
  line.b().set_receive_handler([&](std::uint8_t) { ++b_got; });
  line.a().Write(Bytes(10, 1));
  line.b().Write(Bytes(10, 2));
  sim.RunAll();
  EXPECT_EQ(a_got, 10);
  EXPECT_EQ(b_got, 10);
  EXPECT_EQ(line.a().bytes_sent(), 10u);
  EXPECT_EQ(line.a().bytes_received(), 10u);
}

TEST(SerialLineTest, LaterWritesQueueBehindEarlier) {
  Simulator sim;
  SerialLine line(&sim, 9600);
  std::vector<std::uint8_t> got;
  line.b().set_receive_handler([&](std::uint8_t b) { got.push_back(b); });
  line.a().Write(Bytes{1});
  line.a().Write(Bytes{2});
  sim.RunAll();
  EXPECT_EQ(got, (std::vector<std::uint8_t>{1, 2}));
  // Second byte lands a full byte-time after the first.
}

// --- Silo (DZ/DH batched) mode ---------------------------------------------

SerialLineConfig SiloConfig(std::uint32_t baud, std::size_t depth,
                            SimTime timeout = 0) {
  SerialLineConfig c;
  c.baud_rate = baud;
  c.mode = SerialLineConfig::Mode::kSilo;
  c.silo_depth = depth;
  c.silo_timeout = timeout;
  return c;
}

TEST(SerialSiloTest, DeliversFullSilosAsChunks) {
  Simulator sim;
  SerialLine line(&sim, SiloConfig(9600, 16));
  std::vector<std::size_t> chunk_sizes;
  Bytes got;
  line.b().set_receive_chunk_handler([&](const std::uint8_t* d, std::size_t n) {
    chunk_sizes.push_back(n);
    got.insert(got.end(), d, d + n);
  });
  Bytes sent(40, 0);
  for (std::size_t i = 0; i < sent.size(); ++i) {
    sent[i] = static_cast<std::uint8_t>(i);
  }
  line.a().Write(sent);
  sim.RunAll();
  EXPECT_EQ(chunk_sizes, (std::vector<std::size_t>{16, 16, 8}));
  EXPECT_EQ(got, sent);
  EXPECT_EQ(line.a().events_scheduled(), 3u);
  EXPECT_EQ(line.b().deliveries(), 3u);
  EXPECT_DOUBLE_EQ(line.b().bytes_per_event(), 40.0 / 3.0);
}

TEST(SerialSiloTest, ChunkArrivesWhenLastByteLands) {
  Simulator sim;
  SerialLine line(&sim, SiloConfig(9600, 16));
  std::vector<SimTime> arrivals;
  line.b().set_receive_chunk_handler(
      [&](const std::uint8_t*, std::size_t) { arrivals.push_back(sim.Now()); });
  line.a().Write(Bytes(20, 0x42));
  sim.RunAll();
  ASSERT_EQ(arrivals.size(), 2u);
  // Full silo: at the 16th byte's land time. Partial: at the 20th's (no
  // timeout configured).
  EXPECT_EQ(arrivals[0], LandTime(16, 9600));
  EXPECT_EQ(arrivals[1], LandTime(20, 9600));
}

TEST(SerialSiloTest, SiloAlarmFlushesPartialAfterTimeout) {
  Simulator sim;
  SerialLine line(&sim, SiloConfig(9600, 64, Milliseconds(5)));
  std::vector<SimTime> arrivals;
  std::vector<std::size_t> sizes;
  line.b().set_receive_chunk_handler([&](const std::uint8_t*, std::size_t n) {
    arrivals.push_back(sim.Now());
    sizes.push_back(n);
  });
  line.a().Write(Bytes(10, 0x11));
  sim.RunAll();
  ASSERT_EQ(arrivals.size(), 1u);
  EXPECT_EQ(sizes[0], 10u);
  EXPECT_EQ(arrivals[0], LandTime(10, 9600) + Milliseconds(5));
}

TEST(SerialSiloTest, NewBytesExtendArmedAlarm) {
  Simulator sim;
  SerialLine line(&sim, SiloConfig(9600, 64, Milliseconds(50)));
  std::vector<std::size_t> sizes;
  line.b().set_receive_chunk_handler(
      [&](const std::uint8_t*, std::size_t n) { sizes.push_back(n); });
  line.a().Write(Bytes(4, 1));
  // Before the alarm fires, more bytes arrive: they join the same silo.
  sim.RunUntil(Milliseconds(10));
  line.a().Write(Bytes(4, 2));
  sim.RunAll();
  EXPECT_EQ(sizes, (std::vector<std::size_t>{8}));
}

TEST(SerialSiloTest, ByteHandlerStillWorksInSiloMode) {
  Simulator sim;
  SerialLine line(&sim, SiloConfig(9600, 16));
  Bytes got;
  line.b().set_receive_handler([&](std::uint8_t b) { got.push_back(b); });
  Bytes sent{1, 2, 3, 4, 5, 6, 7, 8};
  line.a().Write(sent);
  sim.RunAll();
  EXPECT_EQ(got, sent);
}

TEST(SerialSiloTest, SameByteStreamAsPerByteModeWithFewerEvents) {
  // The acceptance criterion: the silo path must deliver a byte-identical
  // stream with >= 3x fewer delivery events than per-byte mode.
  Bytes sent;
  for (int i = 0; i < 500; ++i) {
    sent.push_back(static_cast<std::uint8_t>(i * 7 + 3));
  }

  Simulator sim_pb;
  SerialLine per_byte(&sim_pb, 9600);
  Bytes got_pb;
  per_byte.b().set_receive_chunk_handler([&](const std::uint8_t* d, std::size_t n) {
    got_pb.insert(got_pb.end(), d, d + n);
  });
  per_byte.a().Write(sent);
  sim_pb.RunAll();

  Simulator sim_silo;
  SerialLine silo(&sim_silo, SiloConfig(9600, 16));
  Bytes got_silo;
  silo.b().set_receive_chunk_handler([&](const std::uint8_t* d, std::size_t n) {
    got_silo.insert(got_silo.end(), d, d + n);
  });
  silo.a().Write(sent);
  sim_silo.RunAll();

  EXPECT_EQ(got_pb, sent);
  EXPECT_EQ(got_silo, sent);
  EXPECT_EQ(per_byte.a().events_scheduled(), 500u);
  EXPECT_LE(silo.a().events_scheduled() * 3, per_byte.a().events_scheduled());
  EXPECT_LE(sim_silo.events_scheduled() * 3, sim_pb.events_scheduled());
}

// --- Bounded transmit FIFO ---------------------------------------------------

TEST(SerialBacklogCapTest, OverflowDropsWithStatInsteadOfBuffering) {
  Simulator sim;
  SerialLineConfig cfg;
  cfg.baud_rate = 1200;
  cfg.max_backlog = 100;
  SerialLine line(&sim, cfg);
  int received = 0;
  line.b().set_receive_handler([&](std::uint8_t) { ++received; });
  line.a().Write(Bytes(250, 0x77));
  // FIFO capped at 100: 150 bytes dropped, one overrun event recorded.
  EXPECT_EQ(line.a().backlog(), 100u);
  EXPECT_EQ(line.a().overruns(), 1u);
  EXPECT_EQ(line.a().bytes_dropped(), 150u);
  EXPECT_EQ(line.a().bytes_sent(), 100u);
  sim.RunAll();
  EXPECT_EQ(received, 100);
  // Once drained, new writes go through again.
  line.a().Write(Bytes(10, 0x01));
  sim.RunAll();
  EXPECT_EQ(received, 110);
  EXPECT_EQ(line.a().overruns(), 1u);
}

TEST(SerialBacklogCapTest, UnboundedByDefault) {
  Simulator sim;
  SerialLine line(&sim, 1200);
  line.a().Write(Bytes(100000, 0));
  EXPECT_EQ(line.a().backlog(), 100000u);
  EXPECT_EQ(line.a().overruns(), 0u);
}

}  // namespace
}  // namespace upr
