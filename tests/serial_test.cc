#include <gtest/gtest.h>

#include <vector>

#include "src/serial/serial_line.h"
#include "src/sim/simulator.h"

namespace upr {
namespace {

TEST(SerialLineTest, DeliversBytesInOrder) {
  Simulator sim;
  SerialLine line(&sim, 9600);
  Bytes got;
  line.b().set_receive_handler([&](std::uint8_t b) { got.push_back(b); });
  line.a().Write(Bytes{1, 2, 3, 4});
  sim.RunAll();
  EXPECT_EQ(got, (Bytes{1, 2, 3, 4}));
}

TEST(SerialLineTest, ByteTimingMatchesBaudRate) {
  Simulator sim;
  SerialLine line(&sim, 9600);
  // 10 bits per byte at 9600 baud.
  EXPECT_EQ(line.byte_time(), Microseconds(10.0 * 1e6 / 9600.0));
  std::vector<SimTime> arrivals;
  line.b().set_receive_handler([&](std::uint8_t) { arrivals.push_back(sim.Now()); });
  line.a().Write(Bytes{0, 0, 0});
  sim.RunAll();
  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_EQ(arrivals[0], line.byte_time());
  EXPECT_EQ(arrivals[1], 2 * line.byte_time());
  EXPECT_EQ(arrivals[2], 3 * line.byte_time());
}

TEST(SerialLineTest, BacklogSerializesBursts) {
  Simulator sim;
  SerialLine line(&sim, 1200);
  int received = 0;
  line.b().set_receive_handler([&](std::uint8_t) { ++received; });
  line.a().Write(Bytes(120, 0x55));  // one second of data at 1200 baud
  EXPECT_EQ(line.a().backlog(), 120u);
  sim.RunUntil(Milliseconds(500));
  EXPECT_EQ(received, 60);
  sim.RunAll();
  EXPECT_EQ(received, 120);
  EXPECT_EQ(line.a().backlog(), 0u);
}

TEST(SerialLineTest, FullDuplexDirectionsIndependent) {
  Simulator sim;
  SerialLine line(&sim, 9600);
  int a_got = 0, b_got = 0;
  line.a().set_receive_handler([&](std::uint8_t) { ++a_got; });
  line.b().set_receive_handler([&](std::uint8_t) { ++b_got; });
  line.a().Write(Bytes(10, 1));
  line.b().Write(Bytes(10, 2));
  sim.RunAll();
  EXPECT_EQ(a_got, 10);
  EXPECT_EQ(b_got, 10);
  EXPECT_EQ(line.a().bytes_sent(), 10u);
  EXPECT_EQ(line.a().bytes_received(), 10u);
}

TEST(SerialLineTest, LaterWritesQueueBehindEarlier) {
  Simulator sim;
  SerialLine line(&sim, 9600);
  std::vector<std::uint8_t> got;
  line.b().set_receive_handler([&](std::uint8_t b) { got.push_back(b); });
  line.a().Write(Bytes{1});
  line.a().Write(Bytes{2});
  sim.RunAll();
  EXPECT_EQ(got, (std::vector<std::uint8_t>{1, 2}));
  // Second byte lands a full byte-time after the first.
}

}  // namespace
}  // namespace upr
