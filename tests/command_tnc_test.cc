// Tests for the TNC's native command interpreter (§2.1) and BBS mail
// forwarding (§1 footnote 2) — the pre-IP workflows the paper's users came
// from: a dumb terminal talks to a TNC-2, which holds the AX.25 connection.
#include <gtest/gtest.h>

#include "src/apps/bbs.h"
#include "src/scenario/testbed.h"
#include "src/tnc/command_tnc.h"
#include "src/util/crc.h"

namespace upr {
namespace {

// A "dumb terminal": collects everything the TNC prints, types lines in.
struct Terminal {
  explicit Terminal(Simulator* sim, std::uint32_t baud = 9600)
      : line(sim, baud) {
    line.a().set_receive_handler([this](std::uint8_t b) {
      screen.push_back(static_cast<char>(b));
    });
  }
  void Type(const std::string& text) { line.a().Write(BytesFromString(text)); }
  bool Saw(const std::string& needle) const {
    return screen.find(needle) != std::string::npos;
  }
  SerialLine line;
  std::string screen;
};

class CommandTncTest : public ::testing::Test {
 protected:
  CommandTncTest() {
    RadioChannelConfig rc;
    rc.bit_rate = 9600;
    channel_ = std::make_unique<RadioChannel>(&sim_, rc, 12);
  }

  std::unique_ptr<CommandModeTnc> MakeTnc(Terminal* term, const std::string& call,
                                          std::uint64_t seed) {
    CommandTncConfig cfg;
    cfg.mycall = *Ax25Address::Parse(call);
    cfg.link.t1 = Seconds(5);
    return std::make_unique<CommandModeTnc>(&sim_, channel_.get(), &term->line.b(),
                                            call, cfg, seed);
  }

  Simulator sim_;
  std::unique_ptr<RadioChannel> channel_;
};

TEST_F(CommandTncTest, PromptAndUnknownCommand) {
  Terminal term(&sim_);
  auto tnc = MakeTnc(&term, "KD7NM", 1);
  sim_.RunUntil(Seconds(1));
  EXPECT_TRUE(term.Saw("cmd: "));
  term.Type("FROBNICATE\r\n");
  sim_.RunUntil(Seconds(2));
  EXPECT_TRUE(term.Saw("?EH"));
  EXPECT_EQ(tnc->commands_processed(), 1u);
}

TEST_F(CommandTncTest, MycallCommand) {
  Terminal term(&sim_);
  CommandTncConfig cfg;  // no callsign yet
  cfg.link.t1 = Seconds(5);
  CommandModeTnc tnc(&sim_, channel_.get(), &term.line.b(), "blank", cfg, 2);
  sim_.RunUntil(Seconds(1));
  term.Type("CONNECT W7BBS\r\n");
  sim_.RunUntil(Seconds(2));
  EXPECT_TRUE(term.Saw("?set MYCALL first"));
  term.Type("MYCALL KB7DZ\r\n");
  sim_.RunUntil(Seconds(3));
  EXPECT_TRUE(term.Saw("MYCALL set to KB7DZ"));
  EXPECT_EQ(tnc.mycall(), Ax25Address("KB7DZ", 0));
}

TEST_F(CommandTncTest, ConnectConverseDisconnectBetweenTwoTncs) {
  Terminal term_a(&sim_), term_b(&sim_);
  auto tnc_a = MakeTnc(&term_a, "KD7AA", 3);
  auto tnc_b = MakeTnc(&term_b, "KD7BB", 4);
  sim_.RunUntil(Seconds(1));

  term_a.Type("CONNECT KD7BB\r\n");
  sim_.RunUntil(Seconds(30));
  EXPECT_TRUE(term_a.Saw("*** CONNECTED to KD7BB"));
  EXPECT_TRUE(term_b.Saw("*** CONNECTED to KD7AA"));
  EXPECT_TRUE(tnc_a->connected());
  EXPECT_TRUE(tnc_a->in_converse_mode());
  EXPECT_TRUE(tnc_b->in_converse_mode());

  // Keyboard-to-keyboard chat, both directions.
  term_a.Type("hello bob, the gateway is up\r\n");
  term_b.Type("copy that alice\r\n");
  sim_.RunUntil(Seconds(90));
  EXPECT_TRUE(term_b.Saw("hello bob, the gateway is up"));
  EXPECT_TRUE(term_a.Saw("copy that alice"));

  // Ctrl-C back to command mode; disconnect.
  term_a.Type(std::string(1, static_cast<char>(kTncEscape)));
  sim_.RunUntil(Seconds(100));
  EXPECT_FALSE(tnc_a->in_converse_mode());
  term_a.Type("DISCONNECT\r\n");
  sim_.RunUntil(Seconds(140));
  EXPECT_TRUE(term_a.Saw("*** DISCONNECTED"));
  EXPECT_TRUE(term_b.Saw("*** DISCONNECTED"));
  EXPECT_FALSE(tnc_a->connected());
}

TEST_F(CommandTncTest, StatusCommand) {
  Terminal term(&sim_);
  auto tnc = MakeTnc(&term, "KD7NM", 5);
  sim_.RunUntil(Seconds(1));
  term.Type("STATUS\r\n");
  sim_.RunUntil(Seconds(2));
  EXPECT_TRUE(term.Saw("DISCONNECTED"));
}

TEST_F(CommandTncTest, MonitorShowsUiTraffic) {
  Terminal term(&sim_);
  auto tnc = MakeTnc(&term, "KD7NM", 6);
  sim_.RunUntil(Seconds(1));
  term.Type("MONITOR ON\r\n");
  sim_.RunUntil(Seconds(2));
  // Another station beacons a UI frame.
  Terminal term_b(&sim_);
  auto tnc_b = MakeTnc(&term_b, "KD7AA", 7);
  (void)tnc_b;
  // Simplest beacon: drive a raw port.
  RadioPort* beacon = channel_->CreatePort("beacon");
  Ax25Frame ui = Ax25Frame::MakeUi(Ax25Address::Broadcast(), Ax25Address("N7AKR", 0),
                                   kPidNoLayer3, BytesFromString("UW GATEWAY UP"));
  Bytes wire = ui.Encode();
  std::uint16_t fcs = Crc16Ccitt(wire);
  wire.push_back(static_cast<std::uint8_t>(fcs & 0xFF));
  wire.push_back(static_cast<std::uint8_t>(fcs >> 8));
  beacon->StartTransmit(wire, 0, 0);
  sim_.RunUntil(Seconds(10));
  EXPECT_TRUE(term.Saw("N7AKR>QST: UW GATEWAY UP"));
  EXPECT_EQ(tnc->frames_monitored(), 1u);
}

TEST_F(CommandTncTest, ConnectViaDigipeater) {
  Terminal term_a(&sim_), term_b(&sim_);
  auto tnc_a = MakeTnc(&term_a, "KD7AA", 8);
  auto tnc_b = MakeTnc(&term_b, "KD7BB", 9);
  Digipeater digi(&sim_, channel_.get(), Ax25Address("WB7RA", 0));
  sim_.RunUntil(Seconds(1));
  term_a.Type("CONNECT KD7BB VIA WB7RA\r\n");
  sim_.RunUntil(Seconds(60));
  EXPECT_TRUE(term_a.Saw("*** CONNECTED to KD7BB"));
  EXPECT_GT(digi.frames_repeated(), 0u);
  EXPECT_TRUE(tnc_a->connected());
  EXPECT_TRUE(tnc_b->connected());
}

TEST_F(CommandTncTest, MheardTracksStations) {
  Terminal term(&sim_);
  auto tnc = MakeTnc(&term, "KD7NM", 11);
  // Two other stations beacon.
  RadioPort* beacon = channel_->CreatePort("beacon");
  auto send_ui = [&](const char* from, int copies, int offset) {
    Ax25Frame ui = Ax25Frame::MakeUi(Ax25Address::Broadcast(),
                                     *Ax25Address::Parse(from), kPidNoLayer3,
                                     BytesFromString("id"));
    Bytes wire = ui.Encode();
    std::uint16_t fcs = Crc16Ccitt(wire);
    wire.push_back(static_cast<std::uint8_t>(fcs & 0xFF));
    wire.push_back(static_cast<std::uint8_t>(fcs >> 8));
    for (int i = 0; i < copies; ++i) {
      sim_.Schedule(Seconds(offset + i * 3), [beacon, wire] {
        if (!beacon->transmitting()) {
          beacon->StartTransmit(wire, 0, 0);
        }
      });
    }
  };
  send_ui("N7AKR", 3, 1);
  send_ui("W1GOH", 1, 2);
  sim_.RunUntil(Seconds(30));
  ASSERT_EQ(tnc->heard().size(), 2u);
  EXPECT_EQ(tnc->heard().at(*Ax25Address::Parse("N7AKR")).frames, 3u);
  EXPECT_EQ(tnc->heard().at(*Ax25Address::Parse("W1GOH")).frames, 1u);
  term.Type("MHEARD\r\n");
  sim_.RunUntil(Seconds(40));
  EXPECT_TRUE(term.Saw("N7AKR"));
  EXPECT_TRUE(term.Saw("W1GOH"));
  EXPECT_TRUE(term.Saw("3 frames"));
}

// --- A terminal user on a command-mode TNC uses the BBS --------------------

TEST_F(CommandTncTest, TerminalUserReadsBbs) {
  // BBS runs on a RadioStation (host-resident, §2.4 style); the user has
  // only a terminal and a stock TNC — the §1 configuration.
  RadioStationConfig bc;
  bc.hostname = "bbs";
  bc.callsign = Ax25Address("W7BBS", 0);
  bc.ip = IpV4Address(44, 24, 7, 1);
  bc.seed = 70;
  RadioStation bbs_station(&sim_, channel_.get(), bc);
  Ax25LinkConfig link_cfg;
  link_cfg.t1 = Seconds(5);
  auto bbs_link = BindAx25LinkToDriver(&sim_, bbs_station.radio_if(), link_cfg);
  Ax25Bbs bbs(bbs_link.get(), "[UW BBS]");
  bbs.Post(BbsMessage{.from = "N7AKR", .to = "", .subject = "net 44 gateway",
                      .body = {"online at 44.24.0.28"}});

  Terminal term(&sim_);
  auto tnc = MakeTnc(&term, "KD7NM", 10);
  sim_.RunUntil(Seconds(1));
  term.Type("CONNECT W7BBS\r\n");
  sim_.RunUntil(Seconds(60));
  ASSERT_TRUE(term.Saw("*** CONNECTED to W7BBS"));
  EXPECT_TRUE(term.Saw("[UW BBS]"));
  term.Type("L\r\n");
  sim_.RunUntil(Seconds(120));
  EXPECT_TRUE(term.Saw("#1 N7AKR: net 44 gateway"));
  term.Type("R 1\r\n");
  sim_.RunUntil(Seconds(200));
  EXPECT_TRUE(term.Saw("online at 44.24.0.28"));
  term.Type("B\r\n");
  sim_.RunUntil(Seconds(260));
  EXPECT_TRUE(term.Saw("73!"));
  EXPECT_FALSE(tnc->connected());
}

// --- BBS-to-BBS mail forwarding ----------------------------------------------

class BbsForwardingTest : public ::testing::Test {
 protected:
  BbsForwardingTest() {
    RadioChannelConfig rc;
    rc.bit_rate = 9600;
    channel_ = std::make_unique<RadioChannel>(&sim_, rc, 14);
    seattle_station_ = MakeStation("sea-bbs", "W7SEA", 1);
    tacoma_station_ = MakeStation("tac-bbs", "W7TAC", 2);
    Ax25LinkConfig link_cfg;
    link_cfg.t1 = Seconds(5);
    seattle_link_ = BindAx25LinkToDriver(&sim_, seattle_station_->radio_if(), link_cfg);
    tacoma_link_ = BindAx25LinkToDriver(&sim_, tacoma_station_->radio_if(), link_cfg);
    seattle_ = std::make_unique<Ax25Bbs>(seattle_link_.get(), "[Seattle]");
    tacoma_ = std::make_unique<Ax25Bbs>(tacoma_link_.get(), "[Tacoma]");
    // KB7DZ reads mail in Tacoma.
    seattle_->SetUserHome("KB7DZ", Ax25Address("W7TAC", 0));
  }

  std::unique_ptr<RadioStation> MakeStation(const std::string& name,
                                            const std::string& call,
                                            std::uint64_t seed) {
    RadioStationConfig c;
    c.hostname = name;
    c.callsign = *Ax25Address::Parse(call);
    c.ip = IpV4Address(44, 24, 8, static_cast<std::uint8_t>(seed));
    c.seed = 80 + seed;
    return std::make_unique<RadioStation>(&sim_, channel_.get(), c);
  }

  Simulator sim_;
  std::unique_ptr<RadioChannel> channel_;
  std::unique_ptr<RadioStation> seattle_station_;
  std::unique_ptr<RadioStation> tacoma_station_;
  std::unique_ptr<Ax25Link> seattle_link_;
  std::unique_ptr<Ax25Link> tacoma_link_;
  std::unique_ptr<Ax25Bbs> seattle_;
  std::unique_ptr<Ax25Bbs> tacoma_;
};

TEST_F(BbsForwardingTest, MessageForNonLocalUserIsForwarded) {
  seattle_->Post(BbsMessage{.from = "N7AKR", .to = "KB7DZ",
                            .subject = "meeting", .body = {"Saturday 10am."}});
  seattle_->ForwardPending();
  sim_.RunUntil(Seconds(300));
  ASSERT_EQ(tacoma_->messages().size(), 1u);
  const BbsMessage& m = tacoma_->messages()[0];
  EXPECT_EQ(m.from, "N7AKR");
  EXPECT_EQ(m.to, "KB7DZ");
  EXPECT_EQ(m.subject, "meeting");
  ASSERT_EQ(m.body.size(), 1u);
  EXPECT_EQ(m.body[0], "Saturday 10am.");
  EXPECT_TRUE(seattle_->messages()[0].forwarded);
  EXPECT_EQ(seattle_->messages_forwarded(), 1u);
  EXPECT_EQ(tacoma_->messages_received_by_forwarding(), 1u);
}

TEST_F(BbsForwardingTest, LocalMessagesStayPut) {
  seattle_->Post(BbsMessage{.from = "N7AKR", .to = "KG7K",
                            .subject = "local", .body = {"no forwarding needed"}});
  seattle_->ForwardPending();
  sim_.RunUntil(Seconds(300));
  EXPECT_TRUE(tacoma_->messages().empty());
  EXPECT_FALSE(seattle_->messages()[0].forwarded);
}

TEST_F(BbsForwardingTest, PeriodicForwardingPicksUpLaterMail) {
  seattle_->StartForwarding(Seconds(120));
  sim_.RunUntil(Seconds(10));
  seattle_->Post(BbsMessage{.from = "KG7K", .to = "KB7DZ",
                            .subject = "late mail", .body = {"posted after start"}});
  sim_.RunUntil(Seconds(600));
  ASSERT_EQ(tacoma_->messages().size(), 1u);
  EXPECT_EQ(tacoma_->messages()[0].subject, "late mail");
}

TEST_F(BbsForwardingTest, ForwardedMessageNotForwardedAgain) {
  seattle_->Post(BbsMessage{.from = "N7AKR", .to = "KB7DZ",
                            .subject = "once only", .body = {"x"}});
  seattle_->StartForwarding(Seconds(60));
  sim_.RunUntil(Seconds(900));
  EXPECT_EQ(tacoma_->messages().size(), 1u);
  EXPECT_EQ(seattle_->messages_forwarded(), 1u);
}

TEST_F(BbsForwardingTest, MultipleMessagesOneSession) {
  for (int i = 0; i < 3; ++i) {
    seattle_->Post(BbsMessage{.from = "N7AKR", .to = "KB7DZ",
                              .subject = "msg" + std::to_string(i),
                              .body = {"body " + std::to_string(i)}});
  }
  seattle_->ForwardPending();
  sim_.RunUntil(Seconds(600));
  EXPECT_EQ(tacoma_->messages().size(), 3u);
  EXPECT_EQ(seattle_->messages_forwarded(), 3u);
}

TEST_F(BbsForwardingTest, TerminalUserMailReachesHomeBbs) {
  // End to end: a terminal user posts at Seattle addressed to KB7DZ, who
  // reads it at Tacoma — §1's "connectivity for electronic mail".
  RadioStationConfig uc;
  uc.hostname = "user";
  uc.callsign = Ax25Address("KG7K", 0);
  uc.ip = IpV4Address(44, 24, 8, 9);
  uc.seed = 90;
  RadioStation user_station(&sim_, channel_.get(), uc);
  Ax25LinkConfig link_cfg;
  link_cfg.t1 = Seconds(5);
  auto user_link = BindAx25LinkToDriver(&sim_, user_station.radio_if(), link_cfg);
  BbsTerminal term(user_link.get(), Ax25Address("W7SEA", 0));
  sim_.RunUntil(Seconds(60));
  ASSERT_TRUE(term.connected());
  term.SendLine("S KB7DZ qsl card");
  sim_.RunUntil(Seconds(120));
  term.SendLine("Your card is in the mail. 73");
  term.SendLine("/EX");
  sim_.RunUntil(Seconds(240));
  term.SendLine("B");
  seattle_->StartForwarding(Seconds(60));
  sim_.RunUntil(Seconds(1200));
  ASSERT_EQ(tacoma_->messages().size(), 1u);
  EXPECT_EQ(tacoma_->messages()[0].to, "KB7DZ");
  EXPECT_EQ(tacoma_->messages()[0].from, "KG7K");
}

}  // namespace
}  // namespace upr
