#include <gtest/gtest.h>

#include "src/ether/ethernet.h"
#include "src/net/netstack.h"
#include "src/sim/simulator.h"

namespace upr {
namespace {

// Two hosts on one segment, full stacks.
class EtherTest : public ::testing::Test {
 protected:
  EtherTest()
      : segment_(&sim_), a_(&sim_, "a"), b_(&sim_, "b") {
    auto ia = std::make_unique<EthernetInterface>(&segment_, "qe0",
                                                  EtherAddr::FromIndex(1));
    ia->Configure(IpV4Address(128, 95, 1, 1), 24);
    a_if_ = static_cast<EthernetInterface*>(a_.AddInterface(std::move(ia)));
    auto ib = std::make_unique<EthernetInterface>(&segment_, "qe0",
                                                  EtherAddr::FromIndex(2));
    ib->Configure(IpV4Address(128, 95, 1, 2), 24);
    b_if_ = static_cast<EthernetInterface*>(b_.AddInterface(std::move(ib)));
  }

  Simulator sim_;
  EtherSegment segment_;
  NetStack a_;
  NetStack b_;
  EthernetInterface* a_if_;
  EthernetInterface* b_if_;
};

TEST_F(EtherTest, DatagramDeliveredWithArp) {
  Bytes got;
  b_.RegisterProtocol(99, [&](const Ipv4Header&, ByteView p, NetInterface*) {
    got.assign(p.begin(), p.end());
  });
  EXPECT_TRUE(a_.SendDatagram(IpV4Address(128, 95, 1, 2), 99, BytesFromString("lan")));
  sim_.RunUntil(Seconds(5));
  EXPECT_EQ(got, BytesFromString("lan"));
  EXPECT_EQ(a_if_->arp().requests_sent(), 1u);
  EXPECT_EQ(b_if_->stats().ipackets, 1u);
}

TEST_F(EtherTest, MacFilterDropsForeignFrames) {
  NetStack c(&sim_, "c");
  auto ic = std::make_unique<EthernetInterface>(&segment_, "qe0",
                                                EtherAddr::FromIndex(3));
  ic->Configure(IpV4Address(128, 95, 1, 3), 24);
  auto* c_if = static_cast<EthernetInterface*>(c.AddInterface(std::move(ic)));
  b_.RegisterProtocol(99, [](const Ipv4Header&, ByteView, NetInterface*) {});
  a_.SendDatagram(IpV4Address(128, 95, 1, 2), 99, Bytes{1});
  sim_.RunUntil(Seconds(5));
  // C heard the broadcast ARP request but not the unicast IP frame.
  EXPECT_EQ(c_if->stats().ipackets, 0u);
}

TEST_F(EtherTest, RoundTripLatencyIsLanScale) {
  Bytes payload(1000, 0);
  bool replied = false;
  SimTime rtt = 0;
  b_.RegisterProtocol(99, [&](const Ipv4Header& h, ByteView p, NetInterface*) {
    b_.SendDatagram(h.source, 99, Bytes(p.begin(), p.end()));
  });
  a_.RegisterProtocol(99, [&](const Ipv4Header&, ByteView, NetInterface*) {
    replied = true;
    rtt = sim_.Now();
  });
  SimTime t0 = sim_.Now();
  a_.SendDatagram(IpV4Address(128, 95, 1, 2), 99, payload);
  sim_.RunUntil(Seconds(5));
  ASSERT_TRUE(replied);
  // ~1 KB each way at 10 Mb/s plus ARP: well under 10 ms.
  EXPECT_LT(rtt - t0, Milliseconds(10));
}

TEST_F(EtherTest, PingOverEthernet) {
  bool ok = false;
  SimTime rtt = 0;
  a_.icmp().Ping(IpV4Address(128, 95, 1, 2), 56, [&](bool success, SimTime t) {
    ok = success;
    rtt = t;
  });
  sim_.RunUntil(Seconds(5));
  EXPECT_TRUE(ok);
  EXPECT_GT(rtt, 0);
  EXPECT_LT(rtt, Milliseconds(10));
  EXPECT_EQ(b_.icmp().echoes_answered(), 1u);
}

TEST_F(EtherTest, InterfaceDownStopsTraffic) {
  b_.RegisterProtocol(99, [](const Ipv4Header&, ByteView, NetInterface*) {
    FAIL() << "interface down must not deliver";
  });
  b_if_->SetUp(false);
  a_.SendDatagram(IpV4Address(128, 95, 1, 2), 99, Bytes{1});
  sim_.RunUntil(Seconds(30));
}

}  // namespace
}  // namespace upr
