#include <gtest/gtest.h>

#include "src/netrom/netrom.h"
#include "src/netrom/netrom_transport.h"
#include "src/scenario/testbed.h"

namespace upr {
namespace {

TEST(NetRomPacketTest, EncodeDecodeRoundTrip) {
  NetRomPacket p;
  p.source = Ax25Address("N7AKR", 1);
  p.destination = Ax25Address("W1GOH", 2);
  p.ttl = 9;
  p.opcode = NetRomPacket::kOpcodeIp;
  p.payload = BytesFromString("encapsulated ip");
  auto d = NetRomPacket::Decode(p.Encode());
  ASSERT_TRUE(d);
  EXPECT_EQ(d->source, p.source);
  EXPECT_EQ(d->destination, p.destination);
  EXPECT_EQ(d->ttl, 9);
  EXPECT_EQ(d->opcode, NetRomPacket::kOpcodeIp);
  EXPECT_EQ(d->payload, p.payload);
}

TEST(NetRomPacketTest, RejectsTruncated) {
  NetRomPacket p;
  p.source = Ax25Address("AAA", 0);
  p.destination = Ax25Address("BBB", 0);
  Bytes wire = p.Encode();
  Bytes cut(wire.begin(), wire.begin() + 10);
  EXPECT_FALSE(NetRomPacket::Decode(cut));
}

// Three radio stations in a row; NET/ROM nodes on each. The channel is a
// single broadcast domain, so "neighbors" are administrative here.
class NetRomChainTest : public ::testing::Test {
 protected:
  NetRomChainTest() {
    RadioChannelConfig rc;
    rc.bit_rate = 9600;
    channel_ = std::make_unique<RadioChannel>(&sim_, rc, 77);
    for (std::size_t i = 0; i < 3; ++i) {
      RadioStationConfig c;
      c.hostname = "node" + std::to_string(i);
      c.callsign = Ax25Address("NODE" + std::to_string(i), 0);
      c.ip = IpV4Address(44, 24, 1, static_cast<std::uint8_t>(10 + i));
      c.seed = 400 + i;
      stations_.push_back(std::make_unique<RadioStation>(&sim_, channel_.get(), c));
      NetRomConfig nc;
      nc.alias = "ND" + std::to_string(i);
      // The simulated channel is one broadcast domain; restrict neighbors to
      // the declared chain so stations 0 and 2 are "out of range".
      nc.learn_neighbors = false;
      nodes_.push_back(std::make_unique<NetRomNode>(
          &sim_, stations_.back()->radio_if(), nc));
    }
    // Chain topology 0 - 1 - 2 (administratively).
    nodes_[0]->AddNeighbor(nodes_[1]->callsign(), 200);
    nodes_[1]->AddNeighbor(nodes_[0]->callsign(), 200);
    nodes_[1]->AddNeighbor(nodes_[2]->callsign(), 200);
    nodes_[2]->AddNeighbor(nodes_[1]->callsign(), 200);
  }

  Simulator sim_;
  std::unique_ptr<RadioChannel> channel_;
  std::vector<std::unique_ptr<RadioStation>> stations_;
  std::vector<std::unique_ptr<NetRomNode>> nodes_;
};

TEST_F(NetRomChainTest, DirectNeighborDatagram) {
  Bytes got;
  nodes_[1]->set_datagram_handler(
      [&](const Ax25Address& src, std::uint8_t, const Bytes& payload) {
        EXPECT_EQ(src, nodes_[0]->callsign());
        got = payload;
      });
  EXPECT_TRUE(nodes_[0]->SendDatagram(nodes_[1]->callsign(),
                                      NetRomPacket::kOpcodeIp,
                                      BytesFromString("hop1")));
  sim_.RunUntil(Seconds(30));
  EXPECT_EQ(got, BytesFromString("hop1"));
}

TEST_F(NetRomChainTest, NodesBroadcastsPropagateRoutes) {
  // Initially node 0 has no route to node 2.
  EXPECT_FALSE(nodes_[0]->RouteTo(nodes_[2]->callsign()));
  // Let each node broadcast a couple of times.
  for (int round = 0; round < 3; ++round) {
    for (auto& n : nodes_) {
      n->BroadcastNodes();
    }
    sim_.RunUntil(sim_.Now() + Seconds(60));
  }
  auto route = nodes_[0]->RouteTo(nodes_[2]->callsign());
  ASSERT_TRUE(route);
  EXPECT_EQ(route->neighbor, nodes_[1]->callsign());
  EXPECT_GT(route->quality, 0);
  EXPECT_GT(nodes_[0]->nodes_received(), 0u);
}

TEST_F(NetRomChainTest, MultiHopForwarding) {
  for (int round = 0; round < 3; ++round) {
    for (auto& n : nodes_) {
      n->BroadcastNodes();
    }
    sim_.RunUntil(sim_.Now() + Seconds(60));
  }
  Bytes got;
  nodes_[2]->set_datagram_handler(
      [&](const Ax25Address& src, std::uint8_t, const Bytes& payload) {
        EXPECT_EQ(src, nodes_[0]->callsign());
        got = payload;
      });
  ASSERT_TRUE(nodes_[0]->SendDatagram(nodes_[2]->callsign(),
                                      NetRomPacket::kOpcodeIp,
                                      BytesFromString("two hops")));
  sim_.RunUntil(sim_.Now() + Seconds(60));
  EXPECT_EQ(got, BytesFromString("two hops"));
  EXPECT_EQ(nodes_[1]->forwarded(), 1u);
}

TEST_F(NetRomChainTest, NoRouteDatagramFails) {
  EXPECT_FALSE(nodes_[0]->SendDatagram(Ax25Address("NOBODY", 0),
                                       NetRomPacket::kOpcodeIp, Bytes{}));
  EXPECT_EQ(nodes_[0]->no_route_drops(), 1u);
}

TEST_F(NetRomChainTest, TtlExpiresInForwarding) {
  for (int round = 0; round < 3; ++round) {
    for (auto& n : nodes_) {
      n->BroadcastNodes();
    }
    sim_.RunUntil(sim_.Now() + Seconds(60));
  }
  // Hand-craft a packet with ttl=1 from node 0 toward node 2: node 1 must
  // drop it instead of forwarding.
  NetRomPacket p;
  p.source = nodes_[0]->callsign();
  p.destination = nodes_[2]->callsign();
  p.ttl = 1;
  p.payload = BytesFromString("dying");
  Ax25Frame f = Ax25Frame::MakeUi(nodes_[1]->callsign(), nodes_[0]->callsign(),
                                  kPidNetRom, p.Encode());
  stations_[0]->radio_if()->SendRawFrame(f);
  bool delivered = false;
  nodes_[2]->set_datagram_handler(
      [&](const Ax25Address&, std::uint8_t, const Bytes&) { delivered = true; });
  sim_.RunUntil(sim_.Now() + Seconds(60));
  EXPECT_FALSE(delivered);
  EXPECT_EQ(nodes_[1]->ttl_drops(), 1u);
}

TEST_F(NetRomChainTest, RoutesAgeOutWithoutRefresh) {
  for (int round = 0; round < 3; ++round) {
    for (auto& n : nodes_) {
      n->BroadcastNodes();
    }
    sim_.RunUntil(sim_.Now() + Seconds(60));
  }
  ASSERT_TRUE(nodes_[0]->RouteTo(nodes_[2]->callsign()));
  // Silence node 2 and 1's broadcasts by detaching them is not possible;
  // instead age manually through many periods with no broadcasts from 1.
  // (Timers still fire; the learned route refreshes only via node 1's
  // broadcasts, which include node 2 while node 1 still has the route.)
  // Simply verify the obsolescence mechanism: a refreshed route survives.
  sim_.RunUntil(sim_.Now() + Seconds(3600));
  ASSERT_TRUE(nodes_[0]->RouteTo(nodes_[2]->callsign()));
}

// --- Layer-4 circuits over the chain ---------------------------------------

class NetRomCircuitTest : public NetRomChainTest {
 protected:
  NetRomCircuitTest() {
    // Converge routes first.
    for (int round = 0; round < 3; ++round) {
      for (auto& n : nodes_) {
        n->BroadcastNodes();
      }
      sim_.RunUntil(sim_.Now() + Seconds(60));
    }
    NetRomTransportConfig tc;
    tc.retransmit_timeout = Seconds(60);
    for (auto& n : nodes_) {
      transports_.push_back(std::make_unique<NetRomTransport>(n.get(), tc));
    }
    transports_[2]->set_accept_handler(
        [](const Ax25Address&, const Ax25Address&) { return true; });
    transports_[2]->set_circuit_handler([this](NetRomCircuit* c) {
      accepted_ = c;
      c->set_data_handler([this](const Bytes& d) {
        received_.insert(received_.end(), d.begin(), d.end());
      });
    });
  }

  std::vector<std::unique_ptr<NetRomTransport>> transports_;
  NetRomCircuit* accepted_ = nullptr;
  Bytes received_;
};

TEST_F(NetRomCircuitTest, ConnectAcrossTwoHops) {
  NetRomCircuit* c = transports_[0]->Connect(nodes_[2]->callsign(),
                                             Ax25Address("KD7NM", 0));
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->state(), NetRomCircuit::State::kConnecting);
  sim_.RunUntil(sim_.Now() + Seconds(120));
  EXPECT_EQ(c->state(), NetRomCircuit::State::kConnected);
  ASSERT_NE(accepted_, nullptr);
  EXPECT_EQ(accepted_->state(), NetRomCircuit::State::kConnected);
  EXPECT_EQ(accepted_->user(), Ax25Address("KD7NM", 0));
  EXPECT_EQ(accepted_->remote_node(), nodes_[0]->callsign());
}

TEST_F(NetRomCircuitTest, ReliableStreamAcrossBackbone) {
  NetRomCircuit* c = transports_[0]->Connect(nodes_[2]->callsign());
  ASSERT_NE(c, nullptr);
  Bytes payload(1000);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 17);
  }
  c->Send(payload);
  sim_.RunUntil(sim_.Now() + Seconds(600));
  EXPECT_EQ(received_, payload);
  EXPECT_EQ(c->info_sent(), 5u);  // 1000 bytes / 200-byte INFO MTU
}

TEST_F(NetRomCircuitTest, ConnectRefusedGetsChoke) {
  transports_[2]->set_accept_handler(
      [](const Ax25Address&, const Ax25Address&) { return false; });
  NetRomCircuit* c = transports_[0]->Connect(nodes_[2]->callsign());
  ASSERT_NE(c, nullptr);
  bool down = false;
  c->set_disconnected_handler([&] { down = true; });
  sim_.RunUntil(sim_.Now() + Seconds(120));
  EXPECT_TRUE(down);
  EXPECT_EQ(c->state(), NetRomCircuit::State::kDisconnected);
}

TEST_F(NetRomCircuitTest, ConnectWithoutRouteFailsFast) {
  EXPECT_EQ(transports_[0]->Connect(Ax25Address("NOWHERE", 0)), nullptr);
}

TEST_F(NetRomCircuitTest, DisconnectHandshake) {
  NetRomCircuit* c = transports_[0]->Connect(nodes_[2]->callsign());
  sim_.RunUntil(sim_.Now() + Seconds(120));
  ASSERT_EQ(c->state(), NetRomCircuit::State::kConnected);
  bool remote_down = false;
  accepted_->set_disconnected_handler([&] { remote_down = true; });
  c->Disconnect();
  sim_.RunUntil(sim_.Now() + Seconds(120));
  EXPECT_EQ(c->state(), NetRomCircuit::State::kDisconnected);
  EXPECT_TRUE(remote_down);
  transports_[0]->ReapClosed();
  EXPECT_EQ(transports_[0]->circuit_count(), 0u);
}

TEST_F(NetRomCircuitTest, BidirectionalStreams) {
  NetRomCircuit* c = transports_[0]->Connect(nodes_[2]->callsign());
  Bytes back;
  c->set_data_handler([&](const Bytes& d) {
    back.insert(back.end(), d.begin(), d.end());
  });
  sim_.RunUntil(sim_.Now() + Seconds(120));
  ASSERT_NE(accepted_, nullptr);
  c->Send(BytesFromString("from seattle"));
  accepted_->Send(BytesFromString("from tacoma"));
  sim_.RunUntil(sim_.Now() + Seconds(300));
  EXPECT_EQ(received_, BytesFromString("from seattle"));
  EXPECT_EQ(back, BytesFromString("from tacoma"));
}

TEST_F(NetRomCircuitTest, TwoSimultaneousCircuitsDemux) {
  // Per-circuit buffers so the streams are distinguishable.
  std::map<NetRomCircuit*, Bytes> buffers;
  std::map<std::string, NetRomCircuit*> by_user;
  transports_[2]->set_circuit_handler([&](NetRomCircuit* c) {
    by_user[c->user().ToString()] = c;
    c->set_data_handler([&buffers, c](const Bytes& d) {
      buffers[c].insert(buffers[c].end(), d.begin(), d.end());
    });
  });
  NetRomCircuit* c1 = transports_[0]->Connect(nodes_[2]->callsign(),
                                              Ax25Address("USERA", 0));
  sim_.RunUntil(sim_.Now() + Seconds(120));
  NetRomCircuit* c2 = transports_[0]->Connect(nodes_[2]->callsign(),
                                              Ax25Address("USERB", 0));
  sim_.RunUntil(sim_.Now() + Seconds(120));
  ASSERT_NE(c1, nullptr);
  ASSERT_NE(c2, nullptr);
  c1->Send(BytesFromString("one"));
  c2->Send(BytesFromString("two"));
  sim_.RunUntil(sim_.Now() + Seconds(300));
  ASSERT_NE(by_user["USERA"], nullptr);
  ASSERT_NE(by_user["USERB"], nullptr);
  EXPECT_EQ(buffers[by_user["USERA"]], BytesFromString("one"));
  EXPECT_EQ(buffers[by_user["USERB"]], BytesFromString("two"));
  EXPECT_EQ(transports_[0]->circuit_count(), 2u);
  EXPECT_EQ(transports_[2]->circuit_count(), 2u);
}

TEST_F(NetRomChainTest, IpTunnelBetweenGatewayStacks) {
  // Stack-level integration: station 0 and station 2 route a private subnet
  // through NetRomIpInterfaces; station 1 is a pure NET/ROM relay.
  for (int round = 0; round < 3; ++round) {
    for (auto& n : nodes_) {
      n->BroadcastNodes();
    }
    sim_.RunUntil(sim_.Now() + Seconds(60));
  }
  auto tun0 = std::make_unique<NetRomIpInterface>(nodes_[0].get(), "nr0");
  tun0->Configure(IpV4Address(44, 100, 0, 1), 24);
  tun0->MapIpToNode(IpV4Address(44, 100, 0, 2), nodes_[2]->callsign());
  auto* t0 = stations_[0]->stack().AddInterface(std::move(tun0));
  (void)t0;
  auto tun2 = std::make_unique<NetRomIpInterface>(nodes_[2].get(), "nr0");
  tun2->Configure(IpV4Address(44, 100, 0, 2), 24);
  tun2->MapIpToNode(IpV4Address(44, 100, 0, 1), nodes_[0]->callsign());
  stations_[2]->stack().AddInterface(std::move(tun2));

  bool ok = false;
  SimTime rtt = 0;
  stations_[0]->stack().icmp().Ping(IpV4Address(44, 100, 0, 2), 32,
                                    [&](bool success, SimTime t) {
                                      ok = success;
                                      rtt = t;
                                    },
                                    Seconds(300));
  sim_.RunUntil(sim_.Now() + Seconds(600));
  EXPECT_TRUE(ok);
  EXPECT_GT(rtt, 0);
  EXPECT_GE(nodes_[1]->forwarded(), 2u);  // request + reply relayed
}

}  // namespace
}  // namespace upr
