#include <gtest/gtest.h>

#include "src/ether/ethernet.h"
#include "src/net/netstack.h"
#include "src/scenario/testbed.h"
#include "src/sim/simulator.h"
#include "src/tcp/tcp.h"

namespace upr {
namespace {

TEST(TcpSegmentTest, EncodeDecodeRoundTrip) {
  TcpSegment s;
  s.source_port = 1024;
  s.destination_port = 23;
  s.seq = 0xDEADBEEF;
  s.ack = 0x12345678;
  s.flags.syn = true;
  s.flags.ack = true;
  s.window = 4096;
  s.mss_option = 512;
  s.payload = BytesFromString("option test");
  IpV4Address src(10, 0, 0, 1), dst(10, 0, 0, 2);
  auto d = TcpSegment::Decode(s.Encode(src, dst), src, dst);
  ASSERT_TRUE(d);
  EXPECT_EQ(d->source_port, 1024);
  EXPECT_EQ(d->destination_port, 23);
  EXPECT_EQ(d->seq, 0xDEADBEEFu);
  EXPECT_EQ(d->ack, 0x12345678u);
  EXPECT_TRUE(d->flags.syn);
  EXPECT_TRUE(d->flags.ack);
  EXPECT_FALSE(d->flags.fin);
  ASSERT_TRUE(d->mss_option);
  EXPECT_EQ(*d->mss_option, 512);
  EXPECT_EQ(d->payload, BytesFromString("option test"));
}

TEST(TcpSegmentTest, ChecksumCoversPseudoHeader) {
  TcpSegment s;
  s.source_port = 1;
  s.destination_port = 2;
  IpV4Address src(10, 0, 0, 1), dst(10, 0, 0, 2);
  Bytes wire = s.Encode(src, dst);
  // Valid against the right addresses, invalid against others.
  EXPECT_TRUE(TcpSegment::Decode(wire, src, dst));
  EXPECT_FALSE(TcpSegment::Decode(wire, src, IpV4Address(10, 0, 0, 3)));
  wire[0] ^= 1;
  EXPECT_FALSE(TcpSegment::Decode(wire, src, dst));
}

TEST(SeqCompareTest, WrapsCorrectly) {
  EXPECT_TRUE(SeqLt(0xFFFFFFF0u, 0x10u));
  EXPECT_TRUE(SeqGt(0x10u, 0xFFFFFFF0u));
  EXPECT_TRUE(SeqLe(5u, 5u));
  EXPECT_FALSE(SeqLt(5u, 5u));
}

TEST(RtoEstimatorTest, FixedNeverAdapts) {
  TcpConfig cfg;
  cfg.rto_algorithm = RtoAlgorithm::kFixed;
  cfg.fixed_rto = Seconds(3);
  RtoEstimator e(cfg);
  EXPECT_EQ(e.Timeout(), Seconds(3));
  e.Sample(Seconds(20));
  e.Sample(Seconds(20));
  EXPECT_EQ(e.Timeout(), Seconds(3));
}

TEST(RtoEstimatorTest, Rfc793ConvergesTowardRtt) {
  TcpConfig cfg;
  cfg.rto_algorithm = RtoAlgorithm::kRfc793;
  cfg.initial_rtt = Seconds(1);
  cfg.max_rto = Seconds(120);
  RtoEstimator e(cfg);
  for (int i = 0; i < 60; ++i) {
    e.Sample(Seconds(15));
  }
  // SRTT -> 15 s; RTO = 2*SRTT -> 30 s.
  EXPECT_NEAR(ToSeconds(e.srtt()), 15.0, 0.5);
  EXPECT_NEAR(ToSeconds(e.Timeout()), 30.0, 1.0);
}

TEST(RtoEstimatorTest, JacobsonTracksVariance) {
  TcpConfig cfg;
  cfg.rto_algorithm = RtoAlgorithm::kJacobson;
  cfg.max_rto = Seconds(240);
  RtoEstimator e(cfg);
  e.Sample(Seconds(10));
  EXPECT_EQ(e.srtt(), Seconds(10));
  EXPECT_EQ(e.rttvar(), Seconds(5));
  for (int i = 0; i < 50; ++i) {
    e.Sample(Seconds(10));
  }
  // Variance decays toward zero on a steady path; RTO approaches SRTT.
  EXPECT_LT(ToSeconds(e.rttvar()), 1.0);
  EXPECT_LT(ToSeconds(e.Timeout()), 15.0);
  EXPECT_GE(e.Timeout(), Seconds(10));
}

TEST(RtoEstimatorTest, BackoffDoublesUpToMax) {
  TcpConfig cfg;
  cfg.rto_algorithm = RtoAlgorithm::kFixed;
  cfg.fixed_rto = Seconds(2);
  cfg.max_rto = Seconds(10);
  RtoEstimator e(cfg);
  EXPECT_EQ(e.BackedOff(0), Seconds(2));
  EXPECT_EQ(e.BackedOff(1), Seconds(4));
  EXPECT_EQ(e.BackedOff(2), Seconds(8));
  EXPECT_EQ(e.BackedOff(3), Seconds(10));  // clamped
  cfg.exponential_backoff = false;
  RtoEstimator flat(cfg);
  EXPECT_EQ(flat.BackedOff(5), Seconds(2));
}

TEST(RtoEstimatorTest, MinRtoEnforced) {
  TcpConfig cfg;
  cfg.rto_algorithm = RtoAlgorithm::kJacobson;
  cfg.min_rto = Seconds(1);
  RtoEstimator e(cfg);
  for (int i = 0; i < 20; ++i) {
    e.Sample(Milliseconds(5));
  }
  EXPECT_EQ(e.Timeout(), Seconds(1));
}

// Two hosts on a LAN for fast, loss-free TCP tests.
class TcpLanTest : public ::testing::Test {
 protected:
  TcpLanTest() : segment_(&sim_) {
    a_stack_ = std::make_unique<NetStack>(&sim_, "a");
    b_stack_ = std::make_unique<NetStack>(&sim_, "b");
    auto ia = std::make_unique<EthernetInterface>(&segment_, "qe0",
                                                  EtherAddr::FromIndex(1));
    ia->Configure(IpV4Address(10, 0, 0, 1), 24);
    a_stack_->AddInterface(std::move(ia));
    auto ib = std::make_unique<EthernetInterface>(&segment_, "qe0",
                                                  EtherAddr::FromIndex(2));
    ib->Configure(IpV4Address(10, 0, 0, 2), 24);
    b_stack_->AddInterface(std::move(ib));
    a_ = std::make_unique<Tcp>(a_stack_.get(), TcpConfig{}, 1);
    b_ = std::make_unique<Tcp>(b_stack_.get(), TcpConfig{}, 2);
  }

  Simulator sim_;
  EtherSegment segment_;
  std::unique_ptr<NetStack> a_stack_;
  std::unique_ptr<NetStack> b_stack_;
  std::unique_ptr<Tcp> a_;
  std::unique_ptr<Tcp> b_;
};

TEST_F(TcpLanTest, HandshakeEstablishesBothSides) {
  TcpConnection* server = nullptr;
  b_->Listen(23, [&](TcpConnection* c) { server = c; });
  TcpConnection* client = a_->Connect(IpV4Address(10, 0, 0, 2), 23);
  ASSERT_NE(client, nullptr);
  bool client_up = false;
  client->set_connected_handler([&] { client_up = true; });
  sim_.RunUntil(Seconds(5));
  EXPECT_TRUE(client_up);
  ASSERT_NE(server, nullptr);
  EXPECT_EQ(client->state(), TcpState::kEstablished);
  EXPECT_EQ(server->state(), TcpState::kEstablished);
}

TEST_F(TcpLanTest, ConnectToClosedPortGetsReset) {
  TcpConnection* client = a_->Connect(IpV4Address(10, 0, 0, 2), 9999);
  ASSERT_NE(client, nullptr);
  std::string error;
  client->set_error_handler([&](const std::string& e) { error = e; });
  sim_.RunUntil(Seconds(5));
  EXPECT_EQ(client->state(), TcpState::kClosed);
  EXPECT_NE(error.find("reset"), std::string::npos);
  EXPECT_EQ(b_->resets_sent(), 1u);
}

TEST_F(TcpLanTest, ConnectWithNoRouteFails) {
  EXPECT_EQ(a_->Connect(IpV4Address(99, 0, 0, 1), 23), nullptr);
}

TEST_F(TcpLanTest, BulkTransferBothDirections) {
  Bytes to_server(20000, 0);
  for (std::size_t i = 0; i < to_server.size(); ++i) {
    to_server[i] = static_cast<std::uint8_t>(i * 7);
  }
  Bytes to_client = BytesFromString("response payload");
  Bytes server_got, client_got;
  b_->Listen(23, [&](TcpConnection* c) {
    c->set_data_handler([&, c](const Bytes& d) {
      server_got.insert(server_got.end(), d.begin(), d.end());
      if (server_got.size() == to_server.size()) {
        c->Send(to_client);
      }
    });
  });
  TcpConnection* client = a_->Connect(IpV4Address(10, 0, 0, 2), 23);
  client->set_data_handler([&](const Bytes& d) {
    client_got.insert(client_got.end(), d.begin(), d.end());
  });
  client->set_connected_handler([&] { client->Send(to_server); });
  sim_.RunUntil(Seconds(60));
  EXPECT_EQ(server_got, to_server);
  EXPECT_EQ(client_got, to_client);
  EXPECT_EQ(client->stats().retransmissions, 0u);
}

TEST_F(TcpLanTest, GracefulCloseReachesClosedOnBothEnds) {
  TcpConnection* server = nullptr;
  b_->Listen(23, [&](TcpConnection* c) {
    server = c;
    c->set_remote_closed_handler([c] { c->Close(); });
  });
  TcpConnection* client = a_->Connect(IpV4Address(10, 0, 0, 2), 23);
  client->set_connected_handler([&] { client->Close(); });
  sim_.RunUntil(Seconds(30));
  ASSERT_NE(server, nullptr);
  EXPECT_EQ(server->state(), TcpState::kClosed);
  // Client entered TIME_WAIT, then closes after 2MSL.
  EXPECT_TRUE(client->state() == TcpState::kTimeWait ||
              client->state() == TcpState::kClosed);
  sim_.RunUntil(Seconds(120));
  EXPECT_EQ(client->state(), TcpState::kClosed);
  a_->ReapClosed();
  b_->ReapClosed();
  EXPECT_EQ(a_->connection_count(), 0u);
  EXPECT_EQ(b_->connection_count(), 0u);
}

TEST_F(TcpLanTest, CloseFlushesPendingData) {
  Bytes server_got;
  bool server_saw_fin = false;
  b_->Listen(23, [&](TcpConnection* c) {
    c->set_data_handler([&](const Bytes& d) {
      server_got.insert(server_got.end(), d.begin(), d.end());
    });
    c->set_remote_closed_handler([&] { server_saw_fin = true; });
  });
  TcpConnection* client = a_->Connect(IpV4Address(10, 0, 0, 2), 23);
  Bytes data(5000, 0x3C);
  client->set_connected_handler([&] {
    client->Send(data);
    client->Close();  // FIN must trail the data
  });
  sim_.RunUntil(Seconds(30));
  EXPECT_EQ(server_got, data);
  EXPECT_TRUE(server_saw_fin);
}

TEST_F(TcpLanTest, AbortSendsReset) {
  TcpConnection* server = nullptr;
  b_->Listen(23, [&](TcpConnection* c) { server = c; });
  TcpConnection* client = a_->Connect(IpV4Address(10, 0, 0, 2), 23);
  sim_.RunUntil(Seconds(5));
  std::string server_error;
  ASSERT_NE(server, nullptr);
  server->set_error_handler([&](const std::string& e) { server_error = e; });
  client->Abort();
  sim_.RunUntil(Seconds(10));
  EXPECT_EQ(client->state(), TcpState::kClosed);
  EXPECT_EQ(server->state(), TcpState::kClosed);
  EXPECT_NE(server_error.find("reset"), std::string::npos);
}

TEST_F(TcpLanTest, SendBufferLimitRespected) {
  TcpConfig small;
  small.send_buffer_limit = 1000;
  Tcp a2(a_stack_.get(), small, 5);
  // (Registers over protocol 6 — fine, last registration wins in this stack.)
  b_->Listen(24, [](TcpConnection*) {});
  TcpConnection* c = a2.Connect(IpV4Address(10, 0, 0, 2), 24);
  ASSERT_NE(c, nullptr);
  std::size_t accepted = c->Send(Bytes(5000, 1));
  EXPECT_LE(accepted, 1000u);
}

TEST_F(TcpLanTest, ZeroWindowStallsAndPersistProbeRecovers) {
  TcpConnection* server = nullptr;
  b_->Listen(23, [&](TcpConnection* c) { server = c; });
  TcpConnection* client = a_->Connect(IpV4Address(10, 0, 0, 2), 23);
  ASSERT_NE(client, nullptr);
  sim_.RunUntil(Seconds(2));
  ASSERT_NE(server, nullptr);
  ASSERT_EQ(client->state(), TcpState::kEstablished);

  // Server slams its window shut; client then tries to send.
  Bytes server_got;
  server->set_data_handler([&](const Bytes& d) {
    server_got.insert(server_got.end(), d.begin(), d.end());
  });
  server->set_advertised_window(0);
  // Let the window update (via an ack of something) reach the client: force
  // an exchange so snd_wnd_ becomes 0 at the client.
  client->Send(Bytes(100, 0x01));
  sim_.RunUntil(Seconds(4));
  ASSERT_EQ(server_got.size(), 100u);

  Bytes big(2000, 0x02);
  client->Send(big);
  sim_.RunUntil(Seconds(6));
  // Stalled: at most a window probe's worth of progress.
  EXPECT_LE(server_got.size(), 102u);
  EXPECT_GT(client->unsent_bytes(), 0u);

  // Window reopens; everything flows.
  server->set_advertised_window(4096);
  sim_.RunUntil(Seconds(60));
  EXPECT_EQ(server_got.size(), 2100u);
}

TEST_F(TcpLanTest, PersistProbesBackOffWhileWindowClosed) {
  TcpConnection* server = nullptr;
  b_->Listen(23, [&](TcpConnection* c) { server = c; });
  TcpConnection* client = a_->Connect(IpV4Address(10, 0, 0, 2), 23);
  ASSERT_NE(client, nullptr);
  sim_.RunUntil(Seconds(2));
  ASSERT_NE(server, nullptr);
  std::size_t got = 0;
  server->set_data_handler([&](const Bytes& d) { got += d.size(); });
  server->set_advertised_window(0);
  client->Send(Bytes(10, 0x01));  // learns of the zero window from the ACK
  sim_.RunUntil(Seconds(4));
  std::size_t after_first = got;
  client->Send(Bytes(500, 0x02));
  // Probes trickle one byte at a time with exponential backoff; after a
  // minute only a handful of probe bytes got through.
  sim_.RunUntil(Seconds(64));
  EXPECT_LT(got - after_first, 10u);
  EXPECT_GT(got - after_first, 0u);  // but it never fully deadlocks
}

TEST_F(TcpLanTest, DelayedAckCoalescesAcks) {
  TcpConfig delack;
  delack.delayed_ack = true;
  Tcp b2(b_stack_.get(), delack, 9);  // replaces protocol-6 handler on b
  TcpConnection* server = nullptr;
  b2.Listen(24, [&](TcpConnection* c) {
    server = c;
    c->set_data_handler([](const Bytes&) {});
  });
  TcpConnection* client = a_->Connect(IpV4Address(10, 0, 0, 2), 24);
  ASSERT_NE(client, nullptr);
  client->set_connected_handler([&] { client->Send(Bytes(4096, 0x77)); });
  sim_.RunUntil(Seconds(30));
  ASSERT_NE(server, nullptr);
  EXPECT_EQ(server->stats().bytes_received, 4096u);
  // 8 data segments; delayed ack coalesces to roughly one ack per two.
  EXPECT_LE(server->stats().segments_sent, 7u);
  EXPECT_EQ(client->stats().retransmissions, 0u);
}

TEST_F(TcpLanTest, DelayedAckTimerFiresForOddSegment) {
  TcpConfig delack;
  delack.delayed_ack = true;
  delack.delayed_ack_timeout = Milliseconds(200);
  Tcp b2(b_stack_.get(), delack, 9);
  TcpConnection* server = nullptr;
  b2.Listen(24, [&](TcpConnection* c) {
    server = c;
    c->set_data_handler([](const Bytes&) {});
  });
  TcpConnection* client = a_->Connect(IpV4Address(10, 0, 0, 2), 24);
  ASSERT_NE(client, nullptr);
  client->set_connected_handler([&] { client->Send(Bytes(100, 0x01)); });
  sim_.RunUntil(Seconds(30));
  // The lone segment was acked (by timer), so no retransmission happened.
  ASSERT_NE(server, nullptr);
  EXPECT_EQ(server->stats().bytes_received, 100u);
  EXPECT_EQ(client->stats().retransmissions, 0u);
  EXPECT_EQ(client->unacked_segments(), 0u);
}

// Radio-path TCP: loss forces retransmission; Jacobson adapts.
TEST(TcpRadioTest, LossyLinkStillDeliversReliably) {
  TestbedConfig cfg;
  cfg.radio_pcs = 2;
  cfg.ether_hosts = 0;
  cfg.radio_loss_rate = 0.15;
  cfg.radio_bit_rate = 9600;  // keep the test fast
  cfg.seed = 5;
  Testbed tb(cfg);
  tb.PopulateRadioArp();
  Bytes got;
  Bytes payload(4000, 0xA5);
  tb.pc(1).tcp().Listen(23, [&](TcpConnection* c) {
    c->set_data_handler([&](const Bytes& d) {
      got.insert(got.end(), d.begin(), d.end());
    });
  });
  TcpConnection* client = tb.pc(0).tcp().Connect(Testbed::RadioPcIp(1), 23);
  ASSERT_NE(client, nullptr);
  client->set_connected_handler([&, client] { client->Send(payload); });
  tb.sim().RunUntil(Seconds(3600));
  EXPECT_EQ(got, payload);
  EXPECT_GT(client->stats().retransmissions, 0u);
}

}  // namespace
}  // namespace upr
