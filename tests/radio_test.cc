#include <gtest/gtest.h>

#include <cmath>

#include "src/ax25/frame.h"
#include "src/radio/channel.h"
#include "src/radio/csma_mac.h"
#include "src/radio/digipeater.h"
#include "src/sim/simulator.h"
#include "src/util/crc.h"

namespace upr {
namespace {

Bytes WithFcs(const Bytes& body) {
  Bytes out = body;
  std::uint16_t fcs = Crc16Ccitt(body);
  out.push_back(static_cast<std::uint8_t>(fcs & 0xFF));
  out.push_back(static_cast<std::uint8_t>(fcs >> 8));
  return out;
}

TEST(RadioChannelTest, BroadcastDelivery) {
  Simulator sim;
  RadioChannel ch(&sim);
  RadioPort* a = ch.CreatePort("a");
  RadioPort* b = ch.CreatePort("b");
  RadioPort* c = ch.CreatePort("c");
  int b_got = 0, c_got = 0;
  b->set_receive_handler([&](const Bytes&, bool corrupted) {
    EXPECT_FALSE(corrupted);
    ++b_got;
  });
  c->set_receive_handler([&](const Bytes&, bool) { ++c_got; });
  a->StartTransmit(Bytes(30, 0xAA), 0, 0);
  sim.RunAll();
  EXPECT_EQ(b_got, 1);
  EXPECT_EQ(c_got, 1);  // everyone on the frequency hears it
  EXPECT_EQ(ch.collisions(), 0u);
}

TEST(RadioChannelTest, TransmitTimeMatchesBitRate) {
  Simulator sim;
  RadioChannelConfig cfg;
  cfg.bit_rate = 1200;
  RadioChannel ch(&sim, cfg);
  RadioPort* a = ch.CreatePort("a");
  RadioPort* b = ch.CreatePort("b");
  SimTime arrival = 0;
  b->set_receive_handler([&](const Bytes&, bool) { arrival = sim.Now(); });
  a->StartTransmit(Bytes(150, 0), 0, 0);  // 150 B * 8 / 1200 = 1 s
  sim.RunAll();
  EXPECT_EQ(arrival, Seconds(1));
}

TEST(RadioChannelTest, HeadAndTailExtendAirTime) {
  Simulator sim;
  RadioChannel ch(&sim);
  RadioPort* a = ch.CreatePort("a");
  RadioPort* b = ch.CreatePort("b");
  SimTime arrival = 0;
  b->set_receive_handler([&](const Bytes&, bool) { arrival = sim.Now(); });
  a->StartTransmit(Bytes(150, 0), Milliseconds(300), Milliseconds(20));
  sim.RunAll();
  EXPECT_EQ(arrival, Seconds(1) + Milliseconds(320));
}

TEST(RadioChannelTest, OverlappingTransmissionsCollide) {
  Simulator sim;
  RadioChannel ch(&sim);
  RadioPort* a = ch.CreatePort("a");
  RadioPort* b = ch.CreatePort("b");
  RadioPort* c = ch.CreatePort("c");
  int corrupted_frames = 0, clean_frames = 0;
  c->set_receive_handler([&](const Bytes&, bool corrupted) {
    if (corrupted) {
      ++corrupted_frames;
    } else {
      ++clean_frames;
    }
  });
  a->StartTransmit(Bytes(100, 1), 0, 0);
  sim.RunUntil(Milliseconds(100));
  b->StartTransmit(Bytes(100, 2), 0, 0);  // overlaps a's transmission
  sim.RunAll();
  EXPECT_EQ(corrupted_frames, 2);
  EXPECT_EQ(clean_frames, 0);
  EXPECT_EQ(ch.collisions(), 1u);
}

TEST(RadioChannelTest, TransmitterMissesFramesWhileKeyed) {
  Simulator sim;
  RadioChannel ch(&sim);
  RadioPort* a = ch.CreatePort("a");
  RadioPort* b = ch.CreatePort("b");
  int a_got = 0;
  a->set_receive_handler([&](const Bytes&, bool) { ++a_got; });
  // Both transmit overlapping: a must not hear b's frame (half duplex).
  a->StartTransmit(Bytes(100, 1), 0, 0);
  b->StartTransmit(Bytes(100, 2), 0, 0);
  sim.RunAll();
  EXPECT_EQ(a_got, 0);
}

TEST(RadioChannelTest, StartTransmitWhileBusyInvokesCallbackAndRejects) {
  // Regression: the busy-port early-return used to silently drop `on_done`,
  // deadlocking any MAC waiting on it to clear its busy flag.
  Simulator sim;
  RadioChannel ch(&sim);
  RadioPort* a = ch.CreatePort("a");
  RadioPort* b = ch.CreatePort("b");
  int b_got = 0;
  b->set_receive_handler([&](const Bytes&, bool) { ++b_got; });
  bool first_done = false, second_done = false;
  EXPECT_TRUE(a->StartTransmit(Bytes(100, 1), 0, 0, [&] { first_done = true; }));
  // Still keyed: the second frame must be rejected, but its callback must
  // still fire so the caller can recover.
  EXPECT_FALSE(a->StartTransmit(Bytes(100, 2), 0, 0, [&] { second_done = true; }));
  EXPECT_EQ(a->rejected_transmits(), 1u);
  sim.RunAll();
  EXPECT_TRUE(first_done);
  EXPECT_TRUE(second_done);
  EXPECT_EQ(a->frames_sent(), 1u);  // the rejected frame never hit the air
  EXPECT_EQ(b_got, 1);
}

TEST(CsmaMacTest, MacRecoversWhenPortWasAlreadyKeyed) {
  // A user program keys the port directly (outside the MAC) while the MAC
  // decides to transmit: the MAC's frame is rejected, but the completion
  // callback still runs, so the MAC un-sticks and retries its queue.
  Simulator sim;
  RadioChannel ch(&sim);
  RadioPort* port = ch.CreatePort("a");
  RadioPort* peer = ch.CreatePort("b");
  int peer_got = 0;
  peer->set_receive_handler([&](const Bytes&, bool) { ++peer_got; });
  MacParams params;
  params.persistence = 1.0;
  params.turnaround = Milliseconds(30);
  params.tx_delay = 0;
  params.tx_tail = 0;
  CsmaMac mac(&sim, port, params, /*seed=*/5);
  mac.Enqueue(Bytes(10, 0xAB));
  // During the MAC's turnaround commitment window, key the port directly.
  sim.RunUntil(Milliseconds(10));
  port->StartTransmit(Bytes(10, 0xCD), 0, Milliseconds(100));
  sim.RunAll();
  // Without the fix the MAC's busy flag stays set forever and the queue
  // never drains; with it the frame is re-queued, retried and sent.
  EXPECT_EQ(mac.queue_depth(), 0u);
  EXPECT_GE(mac.deferrals(), 1u);
  EXPECT_EQ(port->rejected_transmits(), 0u);  // MAC re-queues, never rejects
  EXPECT_EQ(peer_got, 2);
}

TEST(RadioChannelTest, RandomLossCorruptsFrames) {
  Simulator sim;
  RadioChannelConfig cfg;
  cfg.bit_rate = 1'000'000;  // fast, to run many frames
  cfg.loss_rate = 0.5;
  RadioChannel ch(&sim, cfg, /*seed=*/3);
  RadioPort* a = ch.CreatePort("a");
  RadioPort* b = ch.CreatePort("b");
  int ok = 0, bad = 0;
  b->set_receive_handler([&](const Bytes&, bool corrupted) {
    corrupted ? ++bad : ++ok;
  });
  std::function<void(int)> send = [&](int remaining) {
    if (remaining == 0) {
      return;
    }
    a->StartTransmit(Bytes(10, 0), 0, 0, [&, remaining] { send(remaining - 1); });
  };
  send(1000);
  sim.RunAll();
  EXPECT_EQ(ok + bad, 1000);
  EXPECT_NEAR(static_cast<double>(bad) / 1000.0, 0.5, 0.06);
}

TEST(RadioChannelTest, BitErrorRateScalesWithFrameLength) {
  Simulator sim;
  RadioChannelConfig cfg;
  cfg.bit_rate = 1'000'000;
  cfg.bit_error_rate = 1e-3;
  RadioChannel ch(&sim, cfg, 17);
  RadioPort* a = ch.CreatePort("a");
  RadioPort* b = ch.CreatePort("b");
  int short_bad = 0, long_bad = 0;
  int phase = 0;  // 0: short frames, 1: long frames
  b->set_receive_handler([&](const Bytes&, bool corrupted) {
    if (corrupted) {
      (phase == 0 ? short_bad : long_bad) += 1;
    }
  });
  std::function<void(int, std::size_t)> send = [&](int remaining, std::size_t len) {
    if (remaining == 0) {
      return;
    }
    a->StartTransmit(Bytes(len, 0), 0, 0,
                     [&, remaining, len] { send(remaining - 1, len); });
  };
  send(500, 16);  // 128 bits: ~12% loss at 1e-3
  sim.RunAll();
  phase = 1;
  send(500, 256);  // 2048 bits: ~87% loss
  sim.RunAll();
  EXPECT_GT(short_bad, 20);
  EXPECT_LT(short_bad, 120);
  EXPECT_GT(long_bad, 350);
}

TEST(RadioChannelTest, BerCorruptsGuardsEdgeValues) {
  Rng rng(1);
  // None of the edge cases may corrupt — or consume the RNG stream.
  EXPECT_FALSE(BerCorrupts(rng, 0.0, 100));
  EXPECT_FALSE(BerCorrupts(rng, -0.5, 100));
  EXPECT_FALSE(BerCorrupts(rng, std::nan(""), 100));
  EXPECT_FALSE(BerCorrupts(rng, 1e-3, 0));  // empty frame has no bits to flip
  EXPECT_FALSE(BerCorrupts(rng, 1.0, 0));
  EXPECT_TRUE(BerCorrupts(rng, 1.0, 1));  // certain corruption, no draw
  EXPECT_TRUE(BerCorrupts(rng, 1.5, 1));
  Rng fresh(1);
  EXPECT_EQ(rng.NextU64(), fresh.NextU64()) << "edge case consumed the stream";
}

TEST(RadioChannelTest, CertainBitErrorRateSparesEmptyFrames) {
  Simulator sim;
  RadioChannelConfig cfg;
  cfg.bit_error_rate = 1.0;
  RadioChannel ch(&sim, cfg);
  RadioPort* a = ch.CreatePort("a");
  RadioPort* b = ch.CreatePort("b");
  int clean = 0, bad = 0;
  b->set_receive_handler([&](const Bytes&, bool corrupted) {
    corrupted ? ++bad : ++clean;
  });
  a->StartTransmit(Bytes{}, Milliseconds(10), 0,
                   [&] { a->StartTransmit(Bytes(10, 0), 0, 0); });
  sim.RunAll();
  EXPECT_EQ(clean, 1);  // zero bits on the air: nothing to flip
  EXPECT_EQ(bad, 1);
}

TEST(RadioChannelTest, HalfDuplexCheckedAtDeliveryTime) {
  Simulator sim;
  RadioChannelConfig cfg;
  cfg.bit_rate = 1200;
  cfg.propagation_delay = Milliseconds(50);
  RadioChannel ch(&sim, cfg);
  RadioPort* a = ch.CreatePort("a");
  RadioPort* b = ch.CreatePort("b");
  int b_got = 0;
  b->set_receive_handler([&](const Bytes&, bool) { ++b_got; });
  a->StartTransmit(Bytes(150, 0), 0, 0);  // on the air [0, 1 s], lands 1.05 s
  // b keys up after a's transmission left the air but before the frame
  // arrives: b's receiver is deaf when it lands. Deciding receipt at
  // tx-end time (before propagation) would wrongly deliver it.
  sim.Schedule(Seconds(1) + Milliseconds(10),
               [&] { b->StartTransmit(Bytes(30, 1), 0, 0); });
  sim.RunAll();
  EXPECT_EQ(b_got, 0);
  EXPECT_EQ(b->half_duplex_misses(), 1u);
}

TEST(CsmaMacTest, CoChannelMacsSharingSeedDoNotLockstep) {
  // Two MACs constructed with the same (default) seed on differently named
  // ports must not roll identical p-persistence sequences: in lockstep they
  // defer and key up in the same slots and every transmission collides.
  Simulator sim;
  RadioChannel ch(&sim);
  RadioPort* a = ch.CreatePort("a");
  RadioPort* b = ch.CreatePort("b");
  RadioPort* c = ch.CreatePort("c");
  int clean = 0;
  c->set_receive_handler([&](const Bytes&, bool corrupted) {
    if (!corrupted) {
      ++clean;
    }
  });
  MacParams mp;
  mp.persistence = 0.25;
  CsmaMac ma(&sim, a, mp, 7);
  CsmaMac mb(&sim, b, mp, 7);
  for (int i = 0; i < 20; ++i) {
    ma.Enqueue(WithFcs(Bytes(40, 0xAA)));
    mb.Enqueue(WithFcs(Bytes(40, 0xBB)));
  }
  sim.RunAll();
  EXPECT_GT(clean, 0) << "identical streams: every transmission collided";
}

TEST(RadioChannelTest, CarrierSenseAndUtilization) {
  Simulator sim;
  RadioChannel ch(&sim);
  RadioPort* a = ch.CreatePort("a");
  RadioPort* b = ch.CreatePort("b");
  EXPECT_FALSE(b->CarrierBusy());
  a->StartTransmit(Bytes(150, 0), 0, 0);  // 1 s air time
  EXPECT_TRUE(b->CarrierBusy());
  EXPECT_TRUE(a->CarrierBusy());
  sim.RunUntil(Seconds(2));
  EXPECT_FALSE(b->CarrierBusy());
  EXPECT_NEAR(ch.Utilization(), 0.5, 0.01);
}

TEST(CsmaMacTest, SendsQueuedFramesWhenIdle) {
  Simulator sim;
  RadioChannel ch(&sim);
  RadioPort* a = ch.CreatePort("a");
  RadioPort* b = ch.CreatePort("b");
  MacParams mac;
  mac.persistence = 1.0;  // always transmit when clear
  mac.tx_delay = 0;
  mac.tx_tail = 0;
  CsmaMac m(&sim, a, mac);
  int got = 0;
  b->set_receive_handler([&](const Bytes&, bool c) {
    EXPECT_FALSE(c);
    ++got;
  });
  m.Enqueue(Bytes(10, 1));
  m.Enqueue(Bytes(10, 2));
  m.Enqueue(Bytes(10, 3));
  sim.RunAll();
  EXPECT_EQ(got, 3);
  EXPECT_EQ(m.frames_sent(), 3u);
  EXPECT_EQ(ch.collisions(), 0u);
}

TEST(CsmaMacTest, DefersWhileChannelBusy) {
  Simulator sim;
  RadioChannel ch(&sim);
  RadioPort* blocker = ch.CreatePort("blocker");
  RadioPort* a = ch.CreatePort("a");
  RadioPort* b = ch.CreatePort("b");
  MacParams mac;
  mac.persistence = 1.0;
  mac.tx_delay = 0;
  mac.tx_tail = 0;
  CsmaMac m(&sim, a, mac);
  int clean = 0;
  b->set_receive_handler([&](const Bytes&, bool c) {
    if (!c) {
      ++clean;
    }
  });
  blocker->StartTransmit(Bytes(300, 0), 0, 0);  // 2 s of carrier
  sim.RunUntil(Milliseconds(10));
  m.Enqueue(Bytes(10, 1));
  sim.RunAll();
  EXPECT_EQ(clean, 2);  // both frames intact: MAC waited
  EXPECT_EQ(ch.collisions(), 0u);
  EXPECT_GT(m.deferrals(), 0u);
}

TEST(CsmaMacTest, PersistenceBelowOneDefersProbabilistically) {
  Simulator sim;
  RadioChannel ch(&sim);
  RadioPort* a = ch.CreatePort("a");
  MacParams mac;
  mac.persistence = 0.1;
  CsmaMac m(&sim, a, mac, /*seed=*/5);
  m.Enqueue(Bytes(10, 1));
  sim.RunAll();
  EXPECT_EQ(m.frames_sent(), 1u);
  // With p=0.1 the expected deferral count before sending is ~9.
  EXPECT_GT(m.deferrals(), 0u);
}

TEST(MacParamsTest, KissPersistenceMapping) {
  EXPECT_DOUBLE_EQ(MacParams::PersistenceFromKiss(255), 1.0);
  EXPECT_NEAR(MacParams::PersistenceFromKiss(63), 0.25, 0.00001);
}

class DigipeaterTest : public ::testing::Test {
 protected:
  DigipeaterTest() : ch_(&sim_) {
    src_port_ = ch_.CreatePort("src");
    dst_port_ = ch_.CreatePort("dst");
    MacParams mac;
    mac.tx_delay = Milliseconds(10);
    mac.tx_tail = 0;
    mac.persistence = 1.0;
    digi_ = std::make_unique<Digipeater>(&sim_, &ch_, Ax25Address("WB7RA", 0), mac);
  }

  Simulator sim_;
  RadioChannel ch_;
  RadioPort* src_port_;
  RadioPort* dst_port_;
  std::unique_ptr<Digipeater> digi_;
};

TEST_F(DigipeaterTest, RepeatsFrameAddressedThroughIt) {
  Ax25Frame f = Ax25Frame::MakeUi(Ax25Address("DST", 0), Ax25Address("SRC", 0),
                                  kPidNoLayer3, BytesFromString("via digi"),
                                  {{Ax25Address("WB7RA", 0), false}});
  std::vector<Ax25Frame> dst_heard;
  dst_port_->set_receive_handler([&](const Bytes& wire, bool corrupted) {
    if (corrupted || wire.size() < 2) {
      return;
    }
    Bytes body(wire.begin(), wire.end() - 2);
    if (auto d = Ax25Frame::Decode(body)) {
      dst_heard.push_back(*d);
    }
  });
  src_port_->StartTransmit(WithFcs(f.Encode()), 0, 0);
  sim_.RunAll();
  EXPECT_EQ(digi_->frames_repeated(), 1u);
  // dst hears the original (H bit clear) and the repeated copy (H bit set).
  ASSERT_EQ(dst_heard.size(), 2u);
  EXPECT_FALSE(dst_heard[0].digipeaters[0].repeated);
  EXPECT_TRUE(dst_heard[1].digipeaters[0].repeated);
  EXPECT_TRUE(dst_heard[1].DigipeatingComplete());
}

TEST_F(DigipeaterTest, IgnoresFramesNotRoutedThroughIt) {
  Ax25Frame f = Ax25Frame::MakeUi(Ax25Address("DST", 0), Ax25Address("SRC", 0),
                                  kPidNoLayer3, Bytes{}, {});
  src_port_->StartTransmit(WithFcs(f.Encode()), 0, 0);
  Ax25Frame other = Ax25Frame::MakeUi(Ax25Address("DST", 0), Ax25Address("SRC", 0),
                                      kPidNoLayer3, Bytes{},
                                      {{Ax25Address("OTHER", 0), false}});
  sim_.RunAll();
  src_port_->StartTransmit(WithFcs(other.Encode()), 0, 0);
  sim_.RunAll();
  EXPECT_EQ(digi_->frames_repeated(), 0u);
  EXPECT_EQ(digi_->frames_heard(), 2u);
}

TEST_F(DigipeaterTest, IgnoresAlreadyRepeatedEntry) {
  Ax25Frame f = Ax25Frame::MakeUi(Ax25Address("DST", 0), Ax25Address("SRC", 0),
                                  kPidNoLayer3, Bytes{},
                                  {{Ax25Address("WB7RA", 0), true}});
  src_port_->StartTransmit(WithFcs(f.Encode()), 0, 0);
  sim_.RunAll();
  EXPECT_EQ(digi_->frames_repeated(), 0u);
}

TEST_F(DigipeaterTest, DropsBadFcs) {
  Ax25Frame f = Ax25Frame::MakeUi(Ax25Address("DST", 0), Ax25Address("SRC", 0),
                                  kPidNoLayer3, Bytes{},
                                  {{Ax25Address("WB7RA", 0), false}});
  Bytes wire = WithFcs(f.Encode());
  wire[0] ^= 0xFF;  // corrupt
  src_port_->StartTransmit(wire, 0, 0);
  sim_.RunAll();
  EXPECT_EQ(digi_->frames_repeated(), 0u);
  EXPECT_EQ(digi_->frames_dropped(), 1u);
}

TEST_F(DigipeaterTest, TwoHopChain) {
  MacParams mac;
  mac.tx_delay = Milliseconds(10);
  mac.tx_tail = 0;
  mac.persistence = 1.0;
  Digipeater second(&sim_, &ch_, Ax25Address("WB7RB", 0), mac, 99);
  Ax25Frame f = Ax25Frame::MakeUi(
      Ax25Address("DST", 0), Ax25Address("SRC", 0), kPidNoLayer3,
      BytesFromString("two hops"),
      {{Ax25Address("WB7RA", 0), false}, {Ax25Address("WB7RB", 0), false}});
  bool complete_copy_heard = false;
  dst_port_->set_receive_handler([&](const Bytes& wire, bool corrupted) {
    if (corrupted || wire.size() < 2) {
      return;
    }
    Bytes body(wire.begin(), wire.end() - 2);
    auto d = Ax25Frame::Decode(body);
    if (d && d->DigipeatingComplete()) {
      complete_copy_heard = true;
    }
  });
  src_port_->StartTransmit(WithFcs(f.Encode()), 0, 0);
  sim_.RunUntil(Seconds(30));
  EXPECT_EQ(digi_->frames_repeated(), 1u);
  EXPECT_EQ(second.frames_repeated(), 1u);
  EXPECT_TRUE(complete_copy_heard);
}

}  // namespace
}  // namespace upr
