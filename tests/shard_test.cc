// Tests for the sharded executor (ISSUE 8): the SPSC handoff ring, and the
// three ShardSet execution modes producing identical per-shard event
// schedules for the same seeded workload.
#include <gtest/gtest.h>

#include <cstdarg>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "src/sim/shard_exec.h"
#include "src/sim/simulator.h"
#include "src/sim/spsc_ring.h"

namespace upr {
namespace {

// ---------------------------------------------------------------------------
// SpscRing

TEST(SpscRing, PushPopFifo) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 5; ++i) {
    int v = i * 10;
    EXPECT_TRUE(ring.TryPush(v));
  }
  EXPECT_EQ(ring.SizeApprox(), 5u);
  for (int i = 0; i < 5; ++i) {
    int out = -1;
    ASSERT_TRUE(ring.TryPop(&out));
    EXPECT_EQ(out, i * 10);
  }
  int out = -1;
  EXPECT_FALSE(ring.TryPop(&out));
  EXPECT_EQ(ring.SizeApprox(), 0u);
}

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(5).capacity(), 8u);
  EXPECT_EQ(SpscRing<int>(256).capacity(), 256u);
}

TEST(SpscRing, FullRingRejectsAndValueStaysWithCaller) {
  SpscRing<std::string> ring(4);
  for (int i = 0; i < 4; ++i) {
    std::string v = "v" + std::to_string(i);
    ASSERT_TRUE(ring.TryPush(v));
  }
  std::string extra = "overflow";
  EXPECT_FALSE(ring.TryPush(extra));
  EXPECT_EQ(extra, "overflow");  // untouched on failure
  std::string out;
  ASSERT_TRUE(ring.TryPop(&out));
  EXPECT_EQ(out, "v0");
  EXPECT_TRUE(ring.TryPush(extra));  // slot freed
}

TEST(SpscRing, IndexWrapKeepsFifoOrder) {
  SpscRing<int> ring(4);
  int expect = 0;
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 3; ++i) {
      int v = round * 3 + i;
      ASSERT_TRUE(ring.TryPush(v));
    }
    for (int i = 0; i < 3; ++i) {
      int out = -1;
      ASSERT_TRUE(ring.TryPop(&out));
      ASSERT_EQ(out, expect++);
    }
  }
}

// One producer thread, one consumer thread, values must arrive in order.
// (This is the exact pairing the executor uses; the TSan CI lane watches it.)
TEST(SpscRing, ConcurrentProducerConsumer) {
  SpscRing<std::uint64_t> ring(64);
  constexpr std::uint64_t kCount = 100'000;
  std::thread producer([&ring] {
    for (std::uint64_t i = 0; i < kCount;) {
      std::uint64_t v = i;
      if (ring.TryPush(v)) {
        ++i;
      } else {
        std::this_thread::yield();
      }
    }
  });
  std::uint64_t next = 0;
  while (next < kCount) {
    std::uint64_t out = 0;
    if (ring.TryPop(&out)) {
      ASSERT_EQ(out, next);
      ++next;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_EQ(ring.SizeApprox(), 0u);
}

// ---------------------------------------------------------------------------
// ShardSet

TEST(ShardSet, UnifiedModeAliasesOneSimulator) {
  ShardSet set({.shards = 4, .mode = ShardSet::Mode::kUnified});
  EXPECT_EQ(set.shard(0), set.shard(1));
  EXPECT_EQ(set.shard(0), set.shard(3));
}

TEST(ShardSet, ShardedModeHasDistinctSimulators) {
  ShardSet set({.shards = 3, .mode = ShardSet::Mode::kSharded});
  EXPECT_NE(set.shard(0), set.shard(1));
  EXPECT_NE(set.shard(1), set.shard(2));
}

TEST(ShardSet, ShardedMergeRunsInGlobalTimeOrder) {
  ShardSet set({.shards = 3, .mode = ShardSet::Mode::kSharded});
  std::vector<std::pair<SimTime, std::size_t>> order;
  // Interleaved timestamps across shards; one tie (t=500) that must break by
  // shard index.
  set.shard(1)->ScheduleAt(100, [&] { order.push_back({100, 1}); });
  set.shard(0)->ScheduleAt(200, [&] { order.push_back({200, 0}); });
  set.shard(2)->ScheduleAt(150, [&] { order.push_back({150, 2}); });
  set.shard(2)->ScheduleAt(500, [&] { order.push_back({500, 2}); });
  set.shard(0)->ScheduleAt(500, [&] { order.push_back({500, 0}); });
  const std::size_t executed = set.RunUntil(1000);
  EXPECT_EQ(executed, 5u);
  ASSERT_EQ(order.size(), 5u);
  EXPECT_EQ(order[0], (std::pair<SimTime, std::size_t>{100, 1}));
  EXPECT_EQ(order[1], (std::pair<SimTime, std::size_t>{150, 2}));
  EXPECT_EQ(order[2], (std::pair<SimTime, std::size_t>{200, 0}));
  EXPECT_EQ(order[3], (std::pair<SimTime, std::size_t>{500, 0}));
  EXPECT_EQ(order[4], (std::pair<SimTime, std::size_t>{500, 2}));
  EXPECT_TRUE(set.Idle());
}

TEST(ShardSet, CrossShardPostArrivesAtRequestedTime) {
  ShardSet set({.shards = 2, .mode = ShardSet::Mode::kSharded, .lookahead = 50});
  set.EnsureLane(0, 1);
  SimTime arrival = 0;
  set.shard(0)->ScheduleAt(100, [&] {
    set.Post(0, 1, set.shard(0)->Now() + 50,
             [&] { arrival = set.shard(1)->Now(); });
  });
  set.RunUntil(1000);
  EXPECT_EQ(arrival, 150u);
  EXPECT_EQ(set.stats().posted, 1u);
}

// A seeded synthetic workload: each shard runs a chain of local events and
// every third step posts a handoff to the next shard. Event timestamps are
// residue-separated (locals on shard s are ≡ s mod 10, handoffs into s are
// ≡ src+5 mod 10) so no two events on a shard ever share a timestamp and the
// per-shard logs are a complete order witness. The same workload must
// produce byte-identical per-shard logs in every mode and thread count.
class SyntheticWorkload {
 public:
  static constexpr std::size_t kShards = 4;
  static constexpr int kSteps = 200;
  static constexpr SimTime kLookahead = 1000;

  SyntheticWorkload(ShardSet::Mode mode, int threads)
      : set_({.shards = kShards,
              .mode = mode,
              .threads = threads,
              .lookahead = kLookahead,
              .ring_capacity = 1}),  // tiny (rounds to 2): forces overflow
        logs_(kShards) {
    for (std::size_t a = 0; a < kShards; ++a) {
      for (std::size_t b = 0; b < kShards; ++b) {
        if (a != b) set_.EnsureLane(a, b);
      }
    }
    for (std::size_t s = 0; s < kShards; ++s) {
      ScheduleStep(s, /*step=*/0, /*when=*/100 + 10 * s + s);
    }
  }

  void Run() { executed_ = set_.RunUntil(10'000'000); }

  const std::vector<std::vector<std::string>>& logs() const { return logs_; }
  ShardStats stats() const { return set_.stats(); }
  std::size_t executed() const { return executed_; }
  bool Idle() { return set_.Idle(); }

 private:
  void ScheduleStep(std::size_t s, int step, SimTime when) {
    set_.shard(s)->ScheduleAt(when, [this, s, step] {
      Simulator* sim = set_.shard(s);
      Append(s, "s%zu step%d t%llu", s, step,
             static_cast<unsigned long long>(sim->Now()));
      if (step % 3 == 1) {
        const std::size_t dst = (s + 1) % kShards;
        // A burst of four: more than the tiny ring holds, so some ride the
        // cold overflow list. The +5 offset keeps handoff residues disjoint
        // from local residues; burst members stay 10 apart so no two events
        // on the destination shard ever share a timestamp.
        for (int burst = 0; burst < 4; ++burst) {
          const SimTime rx = sim->Now() + kLookahead + 10 * burst + 5;
          set_.Post(s, dst, rx, [this, dst, s, burst] {
            Append(dst, "s%zu rx-from%zu.%d t%llu", dst, s, burst,
                   static_cast<unsigned long long>(set_.shard(dst)->Now()));
          });
        }
      }
      if (step + 1 < kSteps) {
        // Increments are multiples of 10, so locals stay on residue s.
        ScheduleStep(s, step + 1, sim->Now() + 100 + 40 * ((step * 7 + s) % 5));
      }
    });
  }

  void Append(std::size_t s, const char* fmt, ...) {
    char buf[96];
    va_list ap;
    va_start(ap, fmt);
    vsnprintf(buf, sizeof buf, fmt, ap);
    va_end(ap);
    logs_[s].push_back(buf);
  }

  ShardSet set_;
  std::vector<std::vector<std::string>> logs_;
  std::size_t executed_ = 0;
};

TEST(ShardSet, AllModesProduceIdenticalPerShardSchedules) {
  SyntheticWorkload unified(ShardSet::Mode::kUnified, 1);
  unified.Run();
  SyntheticWorkload sharded(ShardSet::Mode::kSharded, 1);
  sharded.Run();
  SyntheticWorkload par2(ShardSet::Mode::kParallel, 2);
  par2.Run();
  SyntheticWorkload par4(ShardSet::Mode::kParallel, 4);
  par4.Run();

  // Every shard saw its 200 local steps plus the handoffs aimed at it.
  for (std::size_t s = 0; s < SyntheticWorkload::kShards; ++s) {
    ASSERT_GT(unified.logs()[s].size(), 200u) << "shard " << s;
    EXPECT_EQ(sharded.logs()[s], unified.logs()[s]) << "shard " << s;
    EXPECT_EQ(par2.logs()[s], unified.logs()[s]) << "shard " << s;
    EXPECT_EQ(par4.logs()[s], unified.logs()[s]) << "shard " << s;
  }
  EXPECT_EQ(sharded.executed(), unified.executed());
  EXPECT_EQ(par2.executed(), unified.executed());
  EXPECT_EQ(par4.executed(), unified.executed());
  EXPECT_TRUE(par4.Idle());

  // Handoff accounting: the parallel runs posted the same crossings the
  // serial merge did, and every posted handoff was injected at a barrier.
  const ShardStats serial = sharded.stats();
  const ShardStats p4 = par4.stats();
  EXPECT_GT(serial.posted, 0u);
  EXPECT_EQ(p4.posted, serial.posted);
  EXPECT_EQ(p4.injected, p4.posted);
  EXPECT_GT(p4.windows, 0u);
  // ring_capacity 8 with bursts of handoffs: the cold path must have fired
  // at least once, proving the overflow list preserves order too.
  EXPECT_GT(p4.ring_overflow, 0u);
}

TEST(ShardSet, ParallelRunsAreRepeatable) {
  SyntheticWorkload a(ShardSet::Mode::kParallel, 3);
  a.Run();
  SyntheticWorkload b(ShardSet::Mode::kParallel, 3);
  b.Run();
  EXPECT_EQ(a.logs(), b.logs());
  EXPECT_EQ(a.executed(), b.executed());
}

}  // namespace
}  // namespace upr
