#include <gtest/gtest.h>

#include "src/ether/ethernet.h"
#include "src/net/icmp.h"
#include "src/net/netstack.h"
#include "src/sim/simulator.h"

namespace upr {
namespace {

TEST(IcmpMessageTest, EncodeDecodeRoundTrip) {
  IcmpMessage m;
  m.type = kIcmpEchoRequest;
  m.code = 0;
  m.body = BytesFromString("abcd1234");
  auto d = IcmpMessage::Decode(m.Encode());
  ASSERT_TRUE(d);
  EXPECT_EQ(d->type, kIcmpEchoRequest);
  EXPECT_EQ(d->body, m.body);
}

TEST(IcmpMessageTest, ChecksumRejectsCorruption) {
  IcmpMessage m;
  m.type = kIcmpEchoReply;
  m.body = Bytes{1, 2, 3, 4};
  Bytes wire = m.Encode();
  wire[5] ^= 0x40;
  EXPECT_FALSE(IcmpMessage::Decode(wire));
  EXPECT_FALSE(IcmpMessage::Decode(Bytes{1, 2}));
}

TEST(GatewayControlBodyTest, RoundTrip) {
  GatewayControlBody g;
  g.amateur_host = IpV4Address(44, 24, 0, 10);
  g.non_amateur_host = IpV4Address(128, 95, 1, 4);
  g.ttl_seconds = 3600;
  g.callsign = "N7AKR";
  g.password = "secret!";
  auto d = GatewayControlBody::Decode(g.Encode());
  ASSERT_TRUE(d);
  EXPECT_EQ(d->amateur_host, g.amateur_host);
  EXPECT_EQ(d->non_amateur_host, g.non_amateur_host);
  EXPECT_EQ(d->ttl_seconds, 3600u);
  EXPECT_EQ(d->callsign, "N7AKR");
  EXPECT_EQ(d->password, "secret!");
}

TEST(GatewayControlBodyTest, RejectsTruncated) {
  GatewayControlBody g;
  g.callsign = "N7AKR";
  Bytes wire = g.Encode();
  wire.pop_back();
  wire.pop_back();
  EXPECT_FALSE(GatewayControlBody::Decode(wire));
}

class IcmpLanTest : public ::testing::Test {
 protected:
  IcmpLanTest() : segment_(&sim_), a_(&sim_, "a"), b_(&sim_, "b") {
    auto ia = std::make_unique<EthernetInterface>(&segment_, "qe0",
                                                  EtherAddr::FromIndex(1));
    ia->Configure(IpV4Address(10, 0, 0, 1), 24);
    a_.AddInterface(std::move(ia));
    auto ib = std::make_unique<EthernetInterface>(&segment_, "qe0",
                                                  EtherAddr::FromIndex(2));
    ib->Configure(IpV4Address(10, 0, 0, 2), 24);
    b_.AddInterface(std::move(ib));
  }

  Simulator sim_;
  EtherSegment segment_;
  NetStack a_;
  NetStack b_;
};

TEST_F(IcmpLanTest, PingTimesOutWhenTargetMissing) {
  bool called = false, ok = true;
  a_.icmp().Ping(IpV4Address(10, 0, 0, 99), 0,
                 [&](bool success, SimTime) {
                   called = true;
                   ok = success;
                 },
                 Seconds(10));
  sim_.RunUntil(Seconds(30));
  EXPECT_TRUE(called);
  EXPECT_FALSE(ok);
}

TEST_F(IcmpLanTest, PingFailsImmediatelyWithoutRoute) {
  bool called = false, ok = true;
  a_.icmp().Ping(IpV4Address(99, 0, 0, 1), 0, [&](bool success, SimTime) {
    called = true;
    ok = success;
  });
  sim_.RunAll();
  EXPECT_TRUE(called);
  EXPECT_FALSE(ok);
}

TEST_F(IcmpLanTest, ProtocolUnreachableGenerated) {
  // B has no handler for protocol 123.
  bool got_error = false;
  a_.icmp().set_error_handler([&](const Ipv4Header&, const IcmpMessage& msg) {
    EXPECT_EQ(msg.type, kIcmpUnreachable);
    EXPECT_EQ(msg.code, kUnreachProtocol);
    got_error = true;
  });
  a_.SendDatagram(IpV4Address(10, 0, 0, 2), 123, BytesFromString("?"));
  sim_.RunUntil(Seconds(5));
  EXPECT_TRUE(got_error);
  EXPECT_EQ(b_.icmp().errors_sent(), 1u);
}

TEST_F(IcmpLanTest, ErrorBodyCarriesOriginalHeader) {
  a_.icmp().set_error_handler([&](const Ipv4Header&, const IcmpMessage& msg) {
    // Skip 4 unused bytes, then the embedded original IP header.
    ASSERT_GE(msg.body.size(), 24u);
    Bytes inner(msg.body.begin() + 4, msg.body.end());
    auto parsed = Ipv4Header::Decode(inner);
    ASSERT_TRUE(parsed);
    EXPECT_EQ(parsed->header.protocol, 123);
    EXPECT_EQ(parsed->header.destination, IpV4Address(10, 0, 0, 2));
  });
  a_.SendDatagram(IpV4Address(10, 0, 0, 2), 123, BytesFromString("12345678"));
  sim_.RunUntil(Seconds(5));
}

TEST_F(IcmpLanTest, NoErrorAboutIcmpError) {
  // Force b to receive a malformed-protocol datagram *from* an ICMP error:
  // i.e., error messages must not beget errors. Simulate by sending an
  // unreachable to a host with no protocol 1... actually protocol 1 always
  // registered; instead verify errors_sent stays at 1 after an exchange that
  // would loop if unguarded.
  a_.SendDatagram(IpV4Address(10, 0, 0, 2), 123, Bytes{});
  sim_.RunUntil(Seconds(5));
  EXPECT_EQ(b_.icmp().errors_sent(), 1u);
  EXPECT_EQ(a_.icmp().errors_sent(), 0u);
}

TEST_F(IcmpLanTest, CustomTypeHandlerInvoked) {
  bool handled = false;
  b_.icmp().RegisterTypeHandler(
      kIcmpGatewayControl,
      [&](const Ipv4Header&, const IcmpMessage& msg, NetInterface*) {
        EXPECT_EQ(msg.code, kGwCtlAuthorize);
        handled = true;
      });
  GatewayControlBody body;
  body.amateur_host = IpV4Address(44, 24, 0, 10);
  body.non_amateur_host = IpV4Address(10, 0, 0, 1);
  body.ttl_seconds = 60;
  a_.icmp().SendGatewayControl(IpV4Address(10, 0, 0, 2), kGwCtlAuthorize, body);
  sim_.RunUntil(Seconds(5));
  EXPECT_TRUE(handled);
}

TEST_F(IcmpLanTest, PingPayloadSizeEchoedBack) {
  bool ok = false;
  a_.icmp().Ping(IpV4Address(10, 0, 0, 2), 1000, [&](bool success, SimTime) {
    ok = success;
  });
  sim_.RunUntil(Seconds(5));
  EXPECT_TRUE(ok);
}

}  // namespace
}  // namespace upr
