#include <gtest/gtest.h>

#include "src/apps/app_gateway.h"
#include "src/apps/bbs.h"
#include "src/apps/beacon.h"
#include "src/apps/callbook.h"
#include "src/apps/ftp.h"
#include "src/apps/line_codec.h"
#include "src/apps/smtp.h"
#include "src/apps/telnet.h"
#include "src/scenario/testbed.h"

namespace upr {
namespace {

TEST(LineBufferTest, SplitsOnNewlinesStripsCr) {
  std::vector<std::string> lines;
  LineBuffer lb([&](const std::string& l) { lines.push_back(l); });
  lb.Feed(BytesFromString("one\r\ntwo\nthree"));
  EXPECT_EQ(lines, (std::vector<std::string>{"one", "two"}));
  EXPECT_EQ(lb.partial(), "three");
  lb.Feed(BytesFromString("!\r\n"));
  EXPECT_EQ(lines.back(), "three!");
}

TEST(CallsignRegionTest, ExtractsDistrictDigit) {
  EXPECT_EQ(CallsignRegion("N7AKR"), '7');
  EXPECT_EQ(CallsignRegion("W1GOH"), '1');
  EXPECT_EQ(CallsignRegion("K3MC"), '3');
  EXPECT_EQ(CallsignRegion("KD7NM"), '7');
  EXPECT_FALSE(CallsignRegion("NOCALL"));
  EXPECT_FALSE(CallsignRegion(""));
}

TEST(CallbookEntryTest, RoundTrip) {
  CallbookEntry e{"N7AKR", "Bob Albrightson", "Seattle", "CN87"};
  auto d = CallbookEntry::Decode(e.Encode());
  ASSERT_TRUE(d);
  EXPECT_EQ(d->callsign, "N7AKR");
  EXPECT_EQ(d->name, "Bob Albrightson");
  EXPECT_EQ(d->city, "Seattle");
  EXPECT_EQ(d->grid, "CN87");
}

// Fast LAN fixture for the TCP applications.
class AppsLanTest : public ::testing::Test {
 protected:
  AppsLanTest() {
    TestbedConfig cfg;
    cfg.radio_pcs = 1;
    cfg.ether_hosts = 2;
    cfg.radio_bit_rate = 9600;
    tb_ = std::make_unique<Testbed>(cfg);
    tb_->PopulateRadioArp();
  }

  std::unique_ptr<Testbed> tb_;
};

TEST_F(AppsLanTest, TelnetLoginAndCommandsOnLan) {
  TelnetServer server(&tb_->host(0).tcp(), "june");
  TelnetClient client(&tb_->host(1).tcp());
  ASSERT_TRUE(client.Connect(Testbed::EtherHostIp(0), "neuman"));
  tb_->sim().RunUntil(Seconds(5));
  ASSERT_TRUE(client.connected());
  client.SendCommand("echo hello world");
  client.SendCommand("whoami");
  client.SendCommand("badcmd");
  client.Quit();
  tb_->sim().RunUntil(Seconds(30));
  const auto& t = client.transcript();
  auto contains = [&](const std::string& needle) {
    for (const auto& line : t) {
      if (line.find(needle) != std::string::npos) {
        return true;
      }
    }
    return false;
  };
  EXPECT_TRUE(contains("Welcome to june, neuman."));
  EXPECT_TRUE(contains("hello world"));
  EXPECT_TRUE(contains("neuman"));
  EXPECT_TRUE(contains("badcmd: Command not found."));
  EXPECT_TRUE(contains("Connection closed."));
  EXPECT_EQ(server.logins(), 1u);
  EXPECT_EQ(server.commands_executed(), 4u);
}

TEST_F(AppsLanTest, TelnetFromRadioPcThroughGateway) {
  // The paper's headline demo: telnet from an isolated PC (radio only) to an
  // Ethernet host by way of the gateway.
  TelnetServer server(&tb_->host(0).tcp(), "june");
  TelnetClient client(&tb_->pc(0).tcp());
  ASSERT_TRUE(client.Connect(Testbed::EtherHostIp(0), "k3mc"));
  tb_->sim().RunUntil(Seconds(120));
  ASSERT_TRUE(client.connected());
  client.SendCommand("echo over the air");
  client.Quit();
  tb_->sim().RunUntil(Seconds(600));
  bool saw = false;
  for (const auto& line : client.transcript()) {
    if (line.find("over the air") != std::string::npos) {
      saw = true;
    }
  }
  EXPECT_TRUE(saw);
  EXPECT_EQ(server.logins(), 1u);
  EXPECT_GT(tb_->gateway().stack().ip_stats().forwarded, 4u);
}

TEST_F(AppsLanTest, SmtpDelivery) {
  MiniSmtpServer server(&tb_->host(0).tcp(), "june.cs.washington.edu");
  MiniSmtpClient client(&tb_->host(1).tcp());
  MailMessage m;
  m.from = "yamamoto@wally";
  m.recipients = {"neuman@june", "bcn@june"};
  m.body = {"Subject: gateway is up", "", "The MicroVAX gateway works.",
            ".. leading dot line"};
  bool done = false, ok = false;
  client.Send(Testbed::EtherHostIp(0), m, [&](bool success, const std::string&) {
    done = true;
    ok = success;
  });
  tb_->sim().RunUntil(Seconds(60));
  ASSERT_TRUE(done);
  EXPECT_TRUE(ok);
  ASSERT_EQ(server.mailbox().size(), 1u);
  const MailMessage& got = server.mailbox()[0];
  EXPECT_EQ(got.from, "yamamoto@wally");
  ASSERT_EQ(got.recipients.size(), 2u);
  EXPECT_EQ(got.recipients[1], "bcn@june");
  ASSERT_EQ(got.body.size(), 4u);
  // Dot-stuffing on the wire is transparent: the body arrives as composed.
  EXPECT_EQ(got.body[3], m.body[3]);
}

TEST_F(AppsLanTest, SmtpOverTheGatewayFromRadio) {
  MiniSmtpServer server(&tb_->host(0).tcp(), "june");
  MiniSmtpClient client(&tb_->pc(0).tcp());
  MailMessage m;
  m.from = "kd7aa@pc0.ampr";
  m.recipients = {"neuman@june"};
  m.body = {"sent from the packet radio side"};
  bool ok = false;
  client.Send(Testbed::EtherHostIp(0), m,
              [&](bool success, const std::string&) { ok = success; });
  tb_->sim().RunUntil(Seconds(900));
  EXPECT_TRUE(ok);
  ASSERT_EQ(server.mailbox().size(), 1u);
  EXPECT_EQ(server.mailbox()[0].from, "kd7aa@pc0.ampr");
}

TEST_F(AppsLanTest, SmtpRejectsOutOfOrderCommands) {
  MiniSmtpServer server(&tb_->host(0).tcp(), "june");
  // Drive a raw TCP session violating the command order.
  TcpConnection* c = tb_->host(1).tcp().Connect(Testbed::EtherHostIp(0), kSmtpPort);
  ASSERT_NE(c, nullptr);
  std::vector<std::string> replies;
  auto lines = std::make_shared<LineBuffer>(
      [&](const std::string& l) { replies.push_back(l); });
  c->set_data_handler([lines](const Bytes& d) { lines->Feed(d); });
  c->set_connected_handler([c] {
    c->Send(Line("MAIL FROM:<evil@x>"));  // no HELO
  });
  tb_->sim().RunUntil(Seconds(30));
  ASSERT_GE(replies.size(), 2u);
  EXPECT_EQ(replies[1].substr(0, 3), "503");
  EXPECT_EQ(server.protocol_errors(), 1u);
}

TEST_F(AppsLanTest, FtpPutGetListRoundTrip) {
  MiniFtpServer server(&tb_->host(0).tcp(), "june");
  MiniFtpClient client(&tb_->host(1).tcp());
  Bytes file(5000, 0);
  for (std::size_t i = 0; i < file.size(); ++i) {
    file[i] = static_cast<std::uint8_t>(i * 13);
  }
  bool ready = false;
  client.Connect(Testbed::EtherHostIp(0), [&](bool ok) { ready = ok; });
  tb_->sim().RunUntil(Seconds(5));
  ASSERT_TRUE(ready);
  bool put_ok = false;
  client.Put("kernel.tar", file, [&](bool ok) { put_ok = ok; });
  tb_->sim().RunUntil(Seconds(30));
  ASSERT_TRUE(put_ok);
  ASSERT_NE(server.store().Get("kernel.tar"), nullptr);
  EXPECT_EQ(*server.store().Get("kernel.tar"), file);

  Bytes fetched;
  bool get_ok = false;
  client.Get("kernel.tar", [&](bool ok, const Bytes& data) {
    get_ok = ok;
    fetched = data;
  });
  tb_->sim().RunUntil(Seconds(60));
  ASSERT_TRUE(get_ok);
  EXPECT_EQ(fetched, file);

  std::vector<std::string> listing;
  client.List([&](const std::vector<std::string>& l) { listing = l; });
  tb_->sim().RunUntil(Seconds(90));
  ASSERT_EQ(listing.size(), 1u);
  EXPECT_EQ(listing[0], "kernel.tar 5000");
  EXPECT_EQ(server.transfers_completed(), 2u);
}

TEST_F(AppsLanTest, FtpGetMissingFileFails) {
  MiniFtpServer server(&tb_->host(0).tcp(), "june");
  MiniFtpClient client(&tb_->host(1).tcp());
  client.Connect(Testbed::EtherHostIp(0), [](bool) {});
  tb_->sim().RunUntil(Seconds(5));
  bool called = false, ok = true;
  client.Get("nothere", [&](bool success, const Bytes&) {
    called = true;
    ok = success;
  });
  tb_->sim().RunUntil(Seconds(30));
  EXPECT_TRUE(called);
  EXPECT_FALSE(ok);
}

TEST_F(AppsLanTest, FtpDownloadOverGatewayToRadioPc) {
  MiniFtpServer server(&tb_->host(0).tcp(), "june");
  server.store().Put("notes.txt", BytesFromString("AX.25 under Ultrix\n"));
  MiniFtpClient client(&tb_->pc(0).tcp());
  client.Connect(Testbed::EtherHostIp(0), [](bool) {});
  tb_->sim().RunUntil(Seconds(120));
  Bytes fetched;
  bool ok = false;
  client.Get("notes.txt", [&](bool success, const Bytes& d) {
    ok = success;
    fetched = d;
  });
  tb_->sim().RunUntil(Seconds(900));
  EXPECT_TRUE(ok);
  EXPECT_EQ(fetched, BytesFromString("AX.25 under Ultrix\n"));
}

// BBS over connected-mode AX.25, two terminal stations + BBS station.
class BbsTest : public ::testing::Test {
 protected:
  BbsTest() {
    RadioChannelConfig rc;
    rc.bit_rate = 9600;
    channel_ = std::make_unique<RadioChannel>(&sim_, rc, 55);
    bbs_station_ = MakeStation("bbs", "W7BBS", 1);
    user_station_ = MakeStation("user", "KD7NM", 2);
    Ax25LinkConfig link_cfg;
    link_cfg.t1 = Seconds(8);
    bbs_link_ = BindAx25LinkToDriver(&sim_, bbs_station_->radio_if(), link_cfg);
    user_link_ = BindAx25LinkToDriver(&sim_, user_station_->radio_if(), link_cfg);
    bbs_ = std::make_unique<Ax25Bbs>(bbs_link_.get(), "[UW Packet BBS]");
  }

  std::unique_ptr<RadioStation> MakeStation(const std::string& name,
                                            const std::string& call,
                                            std::uint64_t seed) {
    RadioStationConfig c;
    c.hostname = name;
    c.callsign = Ax25Address(call, 0);
    c.ip = IpV4Address(44, 24, 2, static_cast<std::uint8_t>(seed));
    c.seed = 500 + seed;
    return std::make_unique<RadioStation>(&sim_, channel_.get(), c);
  }

  Simulator sim_;
  std::unique_ptr<RadioChannel> channel_;
  std::unique_ptr<RadioStation> bbs_station_;
  std::unique_ptr<RadioStation> user_station_;
  std::unique_ptr<Ax25Link> bbs_link_;
  std::unique_ptr<Ax25Link> user_link_;
  std::unique_ptr<Ax25Bbs> bbs_;
};

TEST_F(BbsTest, PostListReadCycle) {
  BbsTerminal term(user_link_.get(), Ax25Address("W7BBS", 0));
  sim_.RunUntil(Seconds(60));
  ASSERT_TRUE(term.connected());
  term.SendLine("S N7AKR gateway status");
  sim_.RunUntil(Seconds(120));
  term.SendLine("The gateway to the Internet is operational.");
  term.SendLine("/EX");
  sim_.RunUntil(Seconds(240));
  ASSERT_EQ(bbs_->messages().size(), 1u);
  EXPECT_EQ(bbs_->messages()[0].from, "KD7NM");
  EXPECT_EQ(bbs_->messages()[0].subject, "gateway status");

  term.SendLine("L");
  sim_.RunUntil(Seconds(300));
  term.SendLine("R 1");
  sim_.RunUntil(Seconds(400));
  bool listed = false, read = false;
  for (const auto& line : term.transcript()) {
    if (line.find("#1 KD7NM: gateway status") != std::string::npos) {
      listed = true;
    }
    if (line.find("The gateway to the Internet is operational.") != std::string::npos) {
      read = true;
    }
  }
  EXPECT_TRUE(listed);
  EXPECT_TRUE(read);
  term.SendLine("B");
  sim_.RunUntil(Seconds(500));
  EXPECT_FALSE(term.connected());
}

TEST_F(BbsTest, TwoUsersSeeSharedBoard) {
  auto user2_station = MakeStation("user2", "KB7DZ", 3);
  Ax25LinkConfig link_cfg;
  link_cfg.t1 = Seconds(8);
  auto user2_link = BindAx25LinkToDriver(&sim_, user2_station->radio_if(), link_cfg);
  bbs_->Post(BbsMessage{.from = "W1GOH", .to = "", .subject = "hello from MIT",
                        .body = {"testing the relay"}});

  BbsTerminal t1(user_link_.get(), Ax25Address("W7BBS", 0));
  sim_.RunUntil(Seconds(60));
  BbsTerminal t2(user2_link.get(), Ax25Address("W7BBS", 0));
  sim_.RunUntil(Seconds(120));
  ASSERT_TRUE(t1.connected());
  ASSERT_TRUE(t2.connected());
  t1.SendLine("L");
  t2.SendLine("L");
  sim_.RunUntil(Seconds(300));
  auto saw = [](const BbsTerminal& t, const std::string& needle) {
    for (const auto& line : t.transcript()) {
      if (line.find(needle) != std::string::npos) {
        return true;
      }
    }
    return false;
  };
  EXPECT_TRUE(saw(t1, "hello from MIT"));
  EXPECT_TRUE(saw(t2, "hello from MIT"));
  EXPECT_EQ(bbs_->sessions(), 2u);
}

// Distributed callbook over UDP across the testbed.
TEST_F(AppsLanTest, CallbookDistributedQuery) {
  // Region 7 server on host0, region 1 server on host1.
  CallbookServer region7(&tb_->host(0).udp());
  region7.AddEntry({"N7AKR", "Bob", "Seattle", "CN87"});
  CallbookServer region1(&tb_->host(1).udp());
  region1.AddEntry({"W1GOH", "Steve", "Cambridge", "FN42"});

  CallbookClient client(&tb_->sim(), &tb_->pc(0).udp());
  client.AddRegionServer('7', Testbed::EtherHostIp(0));
  client.AddRegionServer('1', Testbed::EtherHostIp(1));

  std::optional<CallbookEntry> r7, r1, missing;
  bool missing_called = false;
  client.Query("N7AKR", [&](std::optional<CallbookEntry> e) { r7 = e; });
  tb_->sim().RunUntil(Seconds(300));
  client.Query("W1GOH", [&](std::optional<CallbookEntry> e) { r1 = e; });
  tb_->sim().RunUntil(Seconds(600));
  client.Query("K7ZZZ", [&](std::optional<CallbookEntry> e) {
    missing_called = true;
    missing = e;
  });
  tb_->sim().RunUntil(Seconds(900));

  ASSERT_TRUE(r7);
  EXPECT_EQ(r7->city, "Seattle");
  ASSERT_TRUE(r1);
  EXPECT_EQ(r1->grid, "FN42");
  EXPECT_TRUE(missing_called);
  EXPECT_FALSE(missing);
}

TEST_F(AppsLanTest, CallbookUnknownRegionFailsFast) {
  CallbookClient client(&tb_->sim(), &tb_->pc(0).udp());
  bool called = false;
  client.Query("K9ZZZ", [&](std::optional<CallbookEntry> e) {
    called = true;
    EXPECT_FALSE(e);
  });
  EXPECT_TRUE(called);  // no server for region 9: immediate
}

TEST(BeaconTest, PeriodicIdentification) {
  Simulator sim;
  RadioChannelConfig rc;
  rc.bit_rate = 9600;
  RadioChannel channel(&sim, rc, 3);
  RadioStationConfig c;
  c.hostname = "pc";
  c.callsign = Ax25Address("N7AKR", 0);
  c.ip = IpV4Address(44, 24, 9, 1);
  c.seed = 1;
  RadioStation station(&sim, &channel, c);
  c.hostname = "listener";
  c.callsign = Ax25Address("KD7NM", 0);
  c.ip = IpV4Address(44, 24, 9, 2);
  c.seed = 2;
  RadioStation listener(&sim, &channel, c);
  int heard = 0;
  listener.radio_if()->set_l3_tap([&](const Ax25Frame& f, ByteView) {
    if (f.destination.IsBroadcast() &&
        f.info == BytesFromString("UW PACKET GATEWAY 44.24.0.28")) {
      ++heard;
    }
  });
  BeaconService beacon(&sim, station.radio_if(), "UW PACKET GATEWAY 44.24.0.28",
                       Seconds(600));
  sim.RunUntil(Seconds(3600 + 30));
  EXPECT_EQ(beacon.beacons_sent(), 6u);  // every 10 minutes for an hour
  EXPECT_EQ(heard, 6);
  beacon.Stop();
  sim.RunUntil(Seconds(7200));
  EXPECT_EQ(beacon.beacons_sent(), 6u);
}

// §2.4 application gateway: AX.25 terminal -> TCP telnet bridge.
TEST(AppGatewayTest, TerminalUserReachesTelnetHost) {
  TestbedConfig cfg;
  cfg.radio_pcs = 1;  // the terminal user's station (no IP use)
  cfg.ether_hosts = 1;
  cfg.radio_bit_rate = 9600;
  Testbed tb(cfg);
  tb.PopulateRadioArp();

  TelnetServer telnetd(&tb.host(0).tcp(), "june");
  Ax25LinkConfig link_cfg;
  link_cfg.t1 = Seconds(8);
  Ax25TelnetGateway appgw(&tb.sim(), tb.gateway().radio_if(), &tb.gateway().tcp(),
                          Testbed::EtherHostIp(0), kTelnetPort, link_cfg);

  auto user_link = BindAx25LinkToDriver(&tb.sim(), tb.pc(0).radio_if(), link_cfg);
  Ax25Connection* session = user_link->Connect(Testbed::GatewayCallsign());
  std::string incoming;
  session->set_data_handler([&](const Bytes& d) {
    incoming.append(d.begin(), d.end());
  });
  tb.sim().RunUntil(Seconds(120));
  ASSERT_EQ(session->state(), Ax25Connection::State::kConnected);
  tb.sim().RunUntil(Seconds(300));
  // The telnet banner crossed from TCP to AX.25.
  EXPECT_NE(incoming.find("login:"), std::string::npos);
  session->Send(BytesFromString("wa2eyc\r\n"));
  tb.sim().RunUntil(Seconds(600));
  EXPECT_NE(incoming.find("Welcome to june, wa2eyc."), std::string::npos);
  session->Send(BytesFromString("echo bridged!\r\n"));
  tb.sim().RunUntil(Seconds(900));
  EXPECT_NE(incoming.find("bridged!"), std::string::npos);
  EXPECT_EQ(appgw.sessions_bridged(), 1u);
  EXPECT_GT(appgw.bytes_net_to_radio(), 0u);
  EXPECT_GT(appgw.bytes_radio_to_net(), 0u);
  // Disconnect tears down the TCP side too.
  session->Disconnect();
  tb.sim().RunUntil(Seconds(1000));
  EXPECT_EQ(telnetd.sessions_started(), 1u);
}

}  // namespace
}  // namespace upr
