#include <gtest/gtest.h>

#include "src/util/byte_buffer.h"
#include "src/util/crc.h"
#include "src/util/packet_buf.h"
#include "src/util/random.h"
#include "src/util/stats.h"

namespace upr {
namespace {

TEST(ByteReaderTest, ReadsBigEndianPrimitives) {
  Bytes b{0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07};
  ByteReader r(b);
  EXPECT_EQ(r.ReadU8(), 0x01);
  EXPECT_EQ(r.ReadU16(), 0x0203);
  EXPECT_EQ(r.ReadU32(), 0x04050607u);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(ByteReaderTest, OverrunSetsErrorAndReturnsZero) {
  Bytes b{0x01};
  ByteReader r(b);
  EXPECT_EQ(r.ReadU32(), 0u);
  EXPECT_FALSE(r.ok());
}

TEST(ByteReaderTest, ReadBytesExactAndOverrun) {
  Bytes b{1, 2, 3};
  ByteReader r(b);
  EXPECT_EQ(r.ReadBytes(2), (Bytes{1, 2}));
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.ReadBytes(5).empty());
  EXPECT_FALSE(r.ok());
}

TEST(ByteReaderTest, ReadRestConsumesRemaining) {
  Bytes b{9, 8, 7, 6};
  ByteReader r(b);
  r.Skip(1);
  EXPECT_EQ(r.ReadRest(), (Bytes{8, 7, 6}));
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(ByteWriterTest, RoundTripsWithReader) {
  Bytes out;
  ByteWriter w(&out);
  w.WriteU8(0xAB);
  w.WriteU16(0x1234);
  w.WriteU32(0xDEADBEEF);
  ByteReader r(out);
  EXPECT_EQ(r.ReadU8(), 0xAB);
  EXPECT_EQ(r.ReadU16(), 0x1234);
  EXPECT_EQ(r.ReadU32(), 0xDEADBEEFu);
}

TEST(PacketTest, PrependAndTrim) {
  PacketBuf p = PacketBuf::FromBytes(BytesFromString("payload"));
  p.Prepend(ByteView(BytesFromString("hdr:")));
  EXPECT_EQ(p.ToBytes(), BytesFromString("hdr:payload"));
  p.TrimFront(4);
  EXPECT_EQ(p.ToBytes(), BytesFromString("payload"));
  p.TrimBack(3);
  EXPECT_EQ(p.ToBytes(), BytesFromString("payl"));
}

TEST(PacketTest, PrependGrowsPastHeadroom) {
  PacketBuf p(2);
  p.Append(ByteView(BytesFromString("x")));
  Bytes big(300, 0x42);
  p.Prepend(ByteView(big));
  ASSERT_EQ(p.size(), 301u);
  EXPECT_EQ(p.data()[0], 0x42);
  EXPECT_EQ(p.data()[300], 'x');
}

TEST(Crc16Test, KnownVector) {
  // CRC-16/X-25 check value for "123456789".
  Bytes data = BytesFromString("123456789");
  EXPECT_EQ(Crc16Ccitt(data), 0x906E);
}

TEST(Crc16Test, EmptyInput) {
  EXPECT_EQ(Crc16Ccitt(nullptr, 0), 0x0000);
}

TEST(Crc16Test, DetectsSingleBitFlip) {
  Bytes data = BytesFromString("the quick brown fox");
  std::uint16_t good = Crc16Ccitt(data);
  data[3] ^= 0x01;
  EXPECT_NE(Crc16Ccitt(data), good);
}

TEST(InternetChecksumTest, RfcExampleStyle) {
  // Sum of a buffer plus its checksum folds to zero.
  Bytes data{0x45, 0x00, 0x00, 0x54, 0xAB, 0xCD, 0x40, 0x00, 0x40, 0x01};
  std::uint16_t sum = InternetChecksum(data);
  Bytes with_sum = data;
  with_sum.push_back(static_cast<std::uint8_t>(sum >> 8));
  with_sum.push_back(static_cast<std::uint8_t>(sum & 0xFF));
  EXPECT_EQ(InternetChecksum(with_sum), 0);
}

TEST(InternetChecksumTest, OddLengthHandled) {
  Bytes data{0x01, 0x02, 0x03};
  // 0x0102 + 0x0300 = 0x0402 -> ~ = 0xFBFD
  EXPECT_EQ(InternetChecksum(data), 0xFBFD);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, BoundsRespected) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.NextBelow(17), 17u);
    double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    auto v = r.NextInRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, ChanceExtremes) {
  Rng r(1);
  EXPECT_FALSE(r.Chance(0.0));
  EXPECT_TRUE(r.Chance(1.0));
}

TEST(RngTest, ChanceApproximatesProbability) {
  Rng r(7);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (r.Chance(0.3)) {
      ++hits;
    }
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(MixSeedTest, DeterministicAndTagSensitive) {
  EXPECT_EQ(MixSeed(7, "tnc:pc0"), MixSeed(7, "tnc:pc0"));
  EXPECT_NE(MixSeed(7, "tnc:pc0"), MixSeed(7, "tnc:pc1"));
  EXPECT_NE(MixSeed(7, "tnc:pc0"), MixSeed(8, "tnc:pc0"));
  EXPECT_NE(MixSeed(7, ""), MixSeed(7, "x"));
}

TEST(MixSeedTest, SeparatesRngStreams) {
  // The reason MixSeed exists: co-channel MACs built with the same default
  // seed must not draw identical sequences (lockstep p-persistence).
  Rng a(MixSeed(7, "a"));
  Rng b(MixSeed(7, "b"));
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RunningStatsTest, MeanMinMaxStddev) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(v);
  }
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);  // sample stddev
}

TEST(SamplesTest, Percentiles) {
  Samples s;
  for (int i = 1; i <= 100; ++i) {
    s.Add(i);
  }
  EXPECT_DOUBLE_EQ(s.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 100.0);
  EXPECT_NEAR(s.Percentile(50), 50.5, 0.01);
  EXPECT_NEAR(s.Percentile(90), 90.1, 0.2);
}

TEST(HexDumpTest, Formats) {
  EXPECT_EQ(HexDump(Bytes{0xC0, 0x00, 0xFF}), "c0 00 ff");
  EXPECT_EQ(HexDump(Bytes{}), "");
}

}  // namespace
}  // namespace upr
