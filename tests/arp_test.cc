#include <gtest/gtest.h>

#include "src/net/arp.h"
#include "src/sim/simulator.h"

namespace upr {
namespace {

TEST(ArpPacketTest, EthernetRoundTrip) {
  ArpPacket p;
  p.htype = kArpHtypeEthernet;
  p.oper = kArpOpRequest;
  p.sender_hw = EtherAddr::FromIndex(7);
  p.sender_ip = IpV4Address(10, 0, 0, 1);
  p.target_ip = IpV4Address(10, 0, 0, 2);
  auto d = ArpPacket::Decode(p.Encode());
  ASSERT_TRUE(d);
  EXPECT_EQ(d->htype, kArpHtypeEthernet);
  EXPECT_EQ(d->oper, kArpOpRequest);
  EXPECT_EQ(std::get<EtherAddr>(d->sender_hw), EtherAddr::FromIndex(7));
  EXPECT_EQ(d->sender_ip, p.sender_ip);
  EXPECT_FALSE(d->target_hw.has_value());  // request: zero-filled
  EXPECT_EQ(d->target_ip, p.target_ip);
}

TEST(ArpPacketTest, Ax25RoundTrip) {
  ArpPacket p;
  p.htype = kArpHtypeAx25;
  p.oper = kArpOpReply;
  p.sender_hw = Ax25HwAddr{Ax25Address("N7AKR", 1), {}};
  p.sender_ip = IpV4Address(44, 24, 0, 28);
  p.target_hw = Ax25HwAddr{Ax25Address("KD7AA", 0), {}};
  p.target_ip = IpV4Address(44, 24, 0, 10);
  auto d = ArpPacket::Decode(p.Encode());
  ASSERT_TRUE(d);
  EXPECT_EQ(d->htype, kArpHtypeAx25);
  EXPECT_EQ(std::get<Ax25HwAddr>(d->sender_hw).station, Ax25Address("N7AKR", 1));
  ASSERT_TRUE(d->target_hw);
  EXPECT_EQ(std::get<Ax25HwAddr>(*d->target_hw).station, Ax25Address("KD7AA", 0));
}

TEST(ArpPacketTest, RejectsMismatchedLengths) {
  ArpPacket p;
  p.htype = kArpHtypeEthernet;
  p.sender_hw = EtherAddr::FromIndex(1);
  Bytes wire = p.Encode();
  wire[4] = 9;  // bogus hlen
  EXPECT_FALSE(ArpPacket::Decode(wire));
  Bytes tiny(wire.begin(), wire.begin() + 6);
  EXPECT_FALSE(ArpPacket::Decode(tiny));
}

// Harness wiring two resolvers back to back over a virtual link.
class ArpResolverTest : public ::testing::Test {
 protected:
  void Build(std::uint16_t htype) {
    ArpConfig ca;
    ca.hardware_type = htype;
    ca.broadcast_hw = Broadcast(htype);
    ca.retry_interval = Seconds(1);
    ca.max_retries = 3;
    a_ = std::make_unique<ArpResolver>(
        &sim_, ca, [] { return IpV4Address(10, 0, 0, 1); }, HwFor(htype, 1),
        [this](const Bytes& pkt, const std::optional<HwAddress>&) {
          // Broadcast medium: the peer always hears requests and replies.
          sim_.Schedule(Milliseconds(10), [this, pkt] { b_->HandleArpPacket(pkt); });
        },
        [this](PacketBuf&& dgram, const HwAddress& hw) {
          a_sent_.push_back({dgram.Release(), hw});
        });
    ArpConfig cb = ca;
    b_ = std::make_unique<ArpResolver>(
        &sim_, cb, [] { return IpV4Address(10, 0, 0, 2); }, HwFor(htype, 2),
        [this](const Bytes& pkt, const std::optional<HwAddress>&) {
          sim_.Schedule(Milliseconds(10), [this, pkt] { a_->HandleArpPacket(pkt); });
        },
        [this](PacketBuf&& dgram, const HwAddress& hw) {
          b_sent_.push_back({dgram.Release(), hw});
        });
  }

  static HwAddress Broadcast(std::uint16_t htype) {
    if (htype == kArpHtypeAx25) {
      return Ax25HwAddr{Ax25Address::Broadcast(), {}};
    }
    return EtherAddr::Broadcast();
  }
  static HwAddress HwFor(std::uint16_t htype, std::uint32_t i) {
    if (htype == kArpHtypeAx25) {
      return Ax25HwAddr{Ax25Address("CALL" + std::to_string(i), 0), {}};
    }
    return EtherAddr::FromIndex(i);
  }

  struct Sent {
    Bytes dgram;
    HwAddress hw;
  };
  Simulator sim_;
  std::unique_ptr<ArpResolver> a_;
  std::unique_ptr<ArpResolver> b_;
  std::vector<Sent> a_sent_;
  std::vector<Sent> b_sent_;
};

TEST_F(ArpResolverTest, ResolvesAndFlushesQueue) {
  Build(kArpHtypeEthernet);
  a_->Send(BytesFromString("pkt1"), IpV4Address(10, 0, 0, 2));
  a_->Send(BytesFromString("pkt2"), IpV4Address(10, 0, 0, 2));
  EXPECT_TRUE(a_sent_.empty());  // queued pending resolution
  sim_.RunUntil(Seconds(1));
  ASSERT_EQ(a_sent_.size(), 2u);
  EXPECT_EQ(a_sent_[0].dgram, BytesFromString("pkt1"));
  EXPECT_EQ(std::get<EtherAddr>(a_sent_[0].hw), EtherAddr::FromIndex(2));
  EXPECT_EQ(a_->requests_sent(), 1u);
  EXPECT_EQ(b_->replies_sent(), 1u);
}

TEST_F(ArpResolverTest, SecondSendUsesCache) {
  Build(kArpHtypeEthernet);
  a_->Send(BytesFromString("x"), IpV4Address(10, 0, 0, 2));
  sim_.RunUntil(Seconds(1));
  a_->Send(BytesFromString("y"), IpV4Address(10, 0, 0, 2));
  EXPECT_EQ(a_sent_.size(), 2u);  // immediate, no new request
  EXPECT_EQ(a_->requests_sent(), 1u);
}

TEST_F(ArpResolverTest, PeerLearnsRequesterFromRequest) {
  Build(kArpHtypeEthernet);
  a_->Send(BytesFromString("x"), IpV4Address(10, 0, 0, 2));
  sim_.RunUntil(Seconds(1));
  // B can now send to A without its own request (gleaned from the request).
  b_->Send(BytesFromString("back"), IpV4Address(10, 0, 0, 1));
  EXPECT_EQ(b_sent_.size(), 1u);
  EXPECT_EQ(b_->requests_sent(), 0u);
}

TEST_F(ArpResolverTest, RetriesThenFails) {
  Build(kArpHtypeEthernet);
  a_->Send(BytesFromString("void"), IpV4Address(10, 0, 0, 99));  // nobody home
  sim_.RunUntil(Seconds(30));
  EXPECT_EQ(a_->requests_sent(), 3u);
  EXPECT_EQ(a_->resolution_failures(), 1u);
  EXPECT_GE(a_->queue_drops(), 1u);
  EXPECT_TRUE(a_sent_.empty());
}

TEST_F(ArpResolverTest, BroadcastNextHopBypassesCache) {
  Build(kArpHtypeEthernet);
  a_->Send(BytesFromString("bcast"), IpV4Address::LimitedBroadcast());
  ASSERT_EQ(a_sent_.size(), 1u);
  EXPECT_TRUE(std::get<EtherAddr>(a_sent_[0].hw).IsBroadcast());
}

TEST_F(ArpResolverTest, PendingQueueBounded) {
  Build(kArpHtypeEthernet);
  for (int i = 0; i < 10; ++i) {
    a_->Send(Bytes{static_cast<std::uint8_t>(i)}, IpV4Address(10, 0, 0, 2));
  }
  sim_.RunUntil(Seconds(1));
  // Default max_pending_per_entry = 4: the last 4 survive.
  ASSERT_EQ(a_sent_.size(), 4u);
  EXPECT_EQ(a_sent_[0].dgram, Bytes{6});
  EXPECT_EQ(a_->queue_drops(), 6u);
}

TEST_F(ArpResolverTest, StaticAx25EntryKeepsDigipeaterPath) {
  Build(kArpHtypeAx25);
  std::vector<Ax25Address> path{Ax25Address("WB7RA", 0), Ax25Address("WB7RB", 0)};
  a_->AddStatic(IpV4Address(10, 0, 0, 2), Ax25HwAddr{Ax25Address("CALL2", 0), path});
  a_->Send(BytesFromString("via digis"), IpV4Address(10, 0, 0, 2));
  ASSERT_EQ(a_sent_.size(), 1u);
  EXPECT_EQ(std::get<Ax25HwAddr>(a_sent_[0].hw).digipeaters, path);
  // A live reply must not clobber the configured path.
  ArpPacket reply;
  reply.htype = kArpHtypeAx25;
  reply.oper = kArpOpReply;
  reply.sender_hw = Ax25HwAddr{Ax25Address("CALL2", 0), {}};
  reply.sender_ip = IpV4Address(10, 0, 0, 2);
  reply.target_hw = HwFor(kArpHtypeAx25, 1);
  reply.target_ip = IpV4Address(10, 0, 0, 1);
  a_->HandleArpPacket(reply.Encode());
  a_->Send(BytesFromString("again"), IpV4Address(10, 0, 0, 2));
  ASSERT_EQ(a_sent_.size(), 2u);
  EXPECT_EQ(std::get<Ax25HwAddr>(a_sent_[1].hw).digipeaters, path);
}

TEST_F(ArpResolverTest, EntriesExpireAfterTtl) {
  Build(kArpHtypeEthernet);
  a_->Send(BytesFromString("x"), IpV4Address(10, 0, 0, 2));
  sim_.RunUntil(Seconds(1));
  EXPECT_TRUE(a_->Lookup(IpV4Address(10, 0, 0, 2)).has_value());
  sim_.RunUntil(Seconds(25 * 60));  // past the 20-minute TTL
  EXPECT_FALSE(a_->Lookup(IpV4Address(10, 0, 0, 2)).has_value());
  // Sending again re-resolves.
  a_->Send(BytesFromString("y"), IpV4Address(10, 0, 0, 2));
  sim_.RunUntil(Seconds(25 * 60 + 5));
  EXPECT_EQ(a_sent_.size(), 2u);
  EXPECT_EQ(a_->requests_sent(), 2u);
}

TEST_F(ArpResolverTest, FlushRemovesDynamicKeepsStatic) {
  Build(kArpHtypeEthernet);
  a_->Send(BytesFromString("x"), IpV4Address(10, 0, 0, 2));
  sim_.RunUntil(Seconds(1));
  a_->AddStatic(IpV4Address(10, 0, 0, 50), EtherAddr::FromIndex(50));
  a_->Flush();
  EXPECT_FALSE(a_->Lookup(IpV4Address(10, 0, 0, 2)).has_value());
  EXPECT_TRUE(a_->Lookup(IpV4Address(10, 0, 0, 50)).has_value());
}

}  // namespace
}  // namespace upr
