// Regression tests for the bench table formatter (bench/bench_util.h): the
// old snprintf(char[64]) implementation silently truncated any cell of 64+
// characters, clipping long scenario labels in bench output.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace upr {
namespace bench {
namespace {

TEST(BenchFormatTest, PadsShortCellsToWidth) {
  EXPECT_EQ(FormatCells({"a", "bb"}, 4), "a   bb  ");
  EXPECT_EQ(FormatCells({"abcd"}, 4), "abcd");
}

TEST(BenchFormatTest, LongCellsAreKeptWholeNotTruncated) {
  // 80 characters — the old fixed char[64] formatter clipped this to 63.
  std::string long_cell(80, 'x');
  std::string row = FormatCells({long_cell, "tail"}, 14);
  EXPECT_EQ(row, long_cell + "tail" + std::string(10, ' '));
  EXPECT_NE(row.find("xxxxtail"), std::string::npos);
}

TEST(BenchFormatTest, CellExactlyAtOldBufferBoundary) {
  for (std::size_t n : {63u, 64u, 65u, 200u}) {
    std::string cell(n, 'y');
    EXPECT_EQ(FormatCells({cell}, 14), cell) << "n=" << n;
  }
}

TEST(BenchFormatTest, ZeroAndNegativeWidthActAsNoPadding) {
  EXPECT_EQ(FormatCells({"a", "b"}, 0), "ab");
  EXPECT_EQ(FormatCells({"a", "b"}, -3), "ab");
}

TEST(BenchFormatTest, EmptyCellsStillPad) {
  EXPECT_EQ(FormatCells({"", ""}, 3), "      ");
}

}  // namespace
}  // namespace bench
}  // namespace upr
