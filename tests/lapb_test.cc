#include <gtest/gtest.h>

#include <functional>

#include "src/ax25/lapb.h"
#include "src/sim/simulator.h"

namespace upr {
namespace {

// Two links joined by a lossy delayed pipe.
class LapbPair : public ::testing::Test {
 protected:
  void Build(Ax25LinkConfig config = {}) {
    a_ = std::make_unique<Ax25Link>(
        &sim_, Ax25Address("AAA", 0),
        [this](const Ax25Frame& f) { Deliver(f, b_.get(), &a_to_b_drop_); }, config);
    b_ = std::make_unique<Ax25Link>(
        &sim_, Ax25Address("BBB", 0),
        [this](const Ax25Frame& f) { Deliver(f, a_.get(), &b_to_a_drop_); }, config);
    b_->set_accept_handler([](const Ax25Address&) { return true; });
    b_->set_connection_handler([this](Ax25Connection* c) {
      accepted_ = c;
      c->set_data_handler([this](const Bytes& data) {
        received_.insert(received_.end(), data.begin(), data.end());
      });
    });
  }

  void Deliver(const Ax25Frame& f, Ax25Link* to, int* drop_budget) {
    if (*drop_budget > 0) {
      --*drop_budget;
      return;  // frame lost
    }
    // Half-second link delay, corpus-independent.
    sim_.Schedule(Milliseconds(500), [to, f] { to->HandleFrame(f); });
  }

  Simulator sim_;
  std::unique_ptr<Ax25Link> a_;
  std::unique_ptr<Ax25Link> b_;
  Ax25Connection* accepted_ = nullptr;
  Bytes received_;
  int a_to_b_drop_ = 0;
  int b_to_a_drop_ = 0;
};

TEST_F(LapbPair, ConnectHandshake) {
  Build();
  Ax25Connection* c = a_->Connect(Ax25Address("BBB", 0));
  EXPECT_EQ(c->state(), Ax25Connection::State::kConnecting);
  bool connected = false;
  c->set_connected_handler([&] { connected = true; });
  sim_.RunUntil(Seconds(5));
  EXPECT_TRUE(connected);
  EXPECT_EQ(c->state(), Ax25Connection::State::kConnected);
  ASSERT_NE(accepted_, nullptr);
  EXPECT_EQ(accepted_->state(), Ax25Connection::State::kConnected);
}

TEST_F(LapbPair, RejectedConnectGetsDm) {
  Build();
  b_->set_accept_handler([](const Ax25Address&) { return false; });
  Ax25Connection* c = a_->Connect(Ax25Address("BBB", 0));
  bool disconnected = false;
  c->set_disconnected_handler([&] { disconnected = true; });
  sim_.RunUntil(Seconds(5));
  EXPECT_TRUE(disconnected);
  EXPECT_EQ(c->state(), Ax25Connection::State::kDisconnected);
}

TEST_F(LapbPair, DataTransferInOrder) {
  Build();
  Ax25Connection* c = a_->Connect(Ax25Address("BBB", 0));
  Bytes msg = BytesFromString("The quick brown fox jumps over the lazy dog");
  c->Send(msg);
  sim_.RunUntil(Seconds(30));
  EXPECT_EQ(received_, msg);
}

TEST_F(LapbPair, SegmentsLargeDataByPaclen) {
  Ax25LinkConfig cfg;
  cfg.paclen = 10;
  Build(cfg);
  Ax25Connection* c = a_->Connect(Ax25Address("BBB", 0));
  Bytes msg(95, 0x5A);
  c->Send(msg);
  sim_.RunUntil(Seconds(120));
  EXPECT_EQ(received_, msg);
  EXPECT_EQ(c->i_frames_sent(), 10u);  // ceil(95/10)
}

TEST_F(LapbPair, SurvivesSabmLoss) {
  Build();
  a_to_b_drop_ = 1;  // first SABM vanishes
  Ax25Connection* c = a_->Connect(Ax25Address("BBB", 0));
  sim_.RunUntil(Seconds(60));
  EXPECT_EQ(c->state(), Ax25Connection::State::kConnected);
}

TEST_F(LapbPair, RetransmitsLostIFrame) {
  Build();
  Ax25Connection* c = a_->Connect(Ax25Address("BBB", 0));
  sim_.RunUntil(Seconds(5));
  ASSERT_EQ(c->state(), Ax25Connection::State::kConnected);
  a_to_b_drop_ = 1;  // first I frame lost
  Bytes msg = BytesFromString("reliable");
  c->Send(msg);
  sim_.RunUntil(Seconds(60));
  EXPECT_EQ(received_, msg);
  EXPECT_GE(c->i_frames_resent(), 1u);
}

TEST_F(LapbPair, RejRecoversOutOfSequence) {
  Ax25LinkConfig cfg;
  cfg.paclen = 8;
  cfg.window = 4;
  Build(cfg);
  Ax25Connection* c = a_->Connect(Ax25Address("BBB", 0));
  sim_.RunUntil(Seconds(5));
  ASSERT_EQ(c->state(), Ax25Connection::State::kConnected);
  a_to_b_drop_ = 1;  // lose the first of several I frames: B sees 1,2,3 and REJs
  Bytes msg(32, 0x77);
  c->Send(msg);
  sim_.RunUntil(Seconds(120));
  EXPECT_EQ(received_, msg);
}

TEST_F(LapbPair, WindowLimitsOutstandingFrames) {
  Ax25LinkConfig cfg;
  cfg.paclen = 4;
  cfg.window = 2;
  Build(cfg);
  // Black-hole everything after connect to observe the frozen window.
  Ax25Connection* c = a_->Connect(Ax25Address("BBB", 0));
  sim_.RunUntil(Seconds(5));
  a_to_b_drop_ = 1'000'000;
  c->Send(Bytes(40, 1));
  sim_.RunUntil(Seconds(6));
  // Only `window` frames were ever emitted as fresh transmissions.
  EXPECT_EQ(c->i_frames_sent(), 2u);
}

TEST_F(LapbPair, DisconnectHandshake) {
  Build();
  Ax25Connection* c = a_->Connect(Ax25Address("BBB", 0));
  sim_.RunUntil(Seconds(5));
  bool a_down = false, b_down = false;
  c->set_disconnected_handler([&] { a_down = true; });
  accepted_->set_disconnected_handler([&] { b_down = true; });
  c->Disconnect();
  sim_.RunUntil(Seconds(15));
  EXPECT_TRUE(a_down);
  EXPECT_TRUE(b_down);
  a_->ReapClosed();
  b_->ReapClosed();
  EXPECT_EQ(a_->connection_count(), 0u);
  EXPECT_EQ(b_->connection_count(), 0u);
}

TEST_F(LapbPair, RetryLimitGivesUp) {
  Ax25LinkConfig cfg;
  cfg.n2 = 3;
  cfg.t1 = Seconds(2);
  Build(cfg);
  a_to_b_drop_ = 1'000'000;  // peer unreachable
  Ax25Connection* c = a_->Connect(Ax25Address("BBB", 0));
  sim_.RunUntil(Seconds(60));
  EXPECT_EQ(c->state(), Ax25Connection::State::kDisconnected);
}

TEST_F(LapbPair, BidirectionalTransfer) {
  Build();
  Ax25Connection* c = a_->Connect(Ax25Address("BBB", 0));
  Bytes a_received;
  c->set_data_handler([&](const Bytes& d) {
    a_received.insert(a_received.end(), d.begin(), d.end());
  });
  sim_.RunUntil(Seconds(5));
  ASSERT_NE(accepted_, nullptr);
  c->Send(BytesFromString("ping from A"));
  accepted_->Send(BytesFromString("pong from B"));
  sim_.RunUntil(Seconds(60));
  EXPECT_EQ(received_, BytesFromString("ping from A"));
  EXPECT_EQ(a_received, BytesFromString("pong from B"));
}

TEST_F(LapbPair, SendBeforeConnectedIsQueued) {
  Build();
  Ax25Connection* c = a_->Connect(Ax25Address("BBB", 0));
  c->Send(BytesFromString("early"));
  sim_.RunUntil(Seconds(30));
  EXPECT_EQ(received_, BytesFromString("early"));
}

TEST_F(LapbPair, T3KeepaliveDetectsDeadPeer) {
  Ax25LinkConfig cfg;
  cfg.t1 = Seconds(2);
  cfg.t3 = Seconds(30);
  cfg.n2 = 3;
  Build(cfg);
  Ax25Connection* c = a_->Connect(Ax25Address("BBB", 0));
  sim_.RunUntil(Seconds(5));
  ASSERT_EQ(c->state(), Ax25Connection::State::kConnected);
  // Peer falls off the air. The idle link looks fine until T3 polls it.
  a_to_b_drop_ = 1'000'000;
  b_to_a_drop_ = 1'000'000;
  sim_.RunUntil(Seconds(25));
  EXPECT_EQ(c->state(), Ax25Connection::State::kConnected);  // not yet probed
  sim_.RunUntil(Seconds(120));
  EXPECT_EQ(c->state(), Ax25Connection::State::kDisconnected);
}

TEST_F(LapbPair, T3KeepaliveKeepsIdleLinkAlive) {
  Ax25LinkConfig cfg;
  cfg.t1 = Seconds(2);
  cfg.t3 = Seconds(30);
  cfg.n2 = 3;
  Build(cfg);
  Ax25Connection* c = a_->Connect(Ax25Address("BBB", 0));
  sim_.RunUntil(Seconds(5));
  ASSERT_EQ(c->state(), Ax25Connection::State::kConnected);
  // A long idle period with a healthy peer: polls answered, link stays up,
  // and data still flows afterwards.
  sim_.RunUntil(Seconds(600));
  EXPECT_EQ(c->state(), Ax25Connection::State::kConnected);
  c->Send(BytesFromString("still here"));
  sim_.RunUntil(Seconds(700));
  EXPECT_EQ(received_, BytesFromString("still here"));
}

TEST_F(LapbPair, T3DisabledMeansNoIdleTraffic) {
  Ax25LinkConfig cfg;
  cfg.t3 = 0;
  Build(cfg);
  Ax25Connection* c = a_->Connect(Ax25Address("BBB", 0));
  sim_.RunUntil(Seconds(5));
  ASSERT_EQ(c->state(), Ax25Connection::State::kConnected);
  std::size_t events_before = sim_.executed_events();
  sim_.RunUntil(Seconds(3600));
  // No keepalives: a fully idle link generates no events at all.
  EXPECT_EQ(sim_.executed_events(), events_before);
}

TEST_F(LapbPair, UaLossRaceDoesNotKillHalfOpenLink) {
  // The accept side answers SABM with UA and immediately queues data. When
  // the UA is lost on the air, the data I frame reaches a peer still in
  // kConnecting. It must be dropped there — answering DM would tear down the
  // accept side's freshly established link and discard the queued data. The
  // T1 SABM retry then re-establishes the link with the data requeued.
  Build();
  std::string a_got;
  b_->set_connection_handler([this](Ax25Connection* c) {
    accepted_ = c;
    c->Send(BytesFromString("hi"));
  });
  b_to_a_drop_ = 1;  // B's UA dies on the air; its data frame survives
  Ax25Connection* c = a_->Connect(Ax25Address("BBB", 0));
  std::string* got = &a_got;
  c->set_data_handler([got](const Bytes& d) { got->append(d.begin(), d.end()); });
  sim_.RunUntil(Seconds(60));
  EXPECT_EQ(c->state(), Ax25Connection::State::kConnected);
  ASSERT_NE(accepted_, nullptr);
  EXPECT_EQ(accepted_->state(), Ax25Connection::State::kConnected);
  EXPECT_EQ(a_got, "hi");
}

TEST_F(LapbPair, SabmRevivingDeadConnectionNotifiesApp) {
  // A connection object that died (DM, retry exhaustion) lingers in the link
  // until reaped. A new SABM from that peer re-establishes it — and the
  // application must hear about the new session, or the link sits connected
  // but mute forever.
  Build();
  int connections = 0;
  b_->set_connection_handler([&](Ax25Connection* c) {
    ++connections;
    accepted_ = c;
  });
  a_->Connect(Ax25Address("BBB", 0));
  sim_.RunUntil(Seconds(5));
  ASSERT_EQ(connections, 1);
  ASSERT_NE(accepted_, nullptr);

  // Kill B's side with a hand-delivered DM; the object stays in the map.
  Ax25Frame dm;
  dm.destination = Ax25Address("BBB", 0);
  dm.source = Ax25Address("AAA", 0);
  dm.command = false;
  dm.type = Ax25FrameType::kDm;
  dm.poll_final = true;
  b_->HandleFrame(dm);
  EXPECT_EQ(accepted_->state(), Ax25Connection::State::kDisconnected);

  // A fresh SABM from the same peer revives it and surfaces a new session.
  Ax25Frame sabm;
  sabm.destination = Ax25Address("BBB", 0);
  sabm.source = Ax25Address("AAA", 0);
  sabm.command = true;
  sabm.type = Ax25FrameType::kSabm;
  sabm.poll_final = true;
  b_->HandleFrame(sabm);
  EXPECT_EQ(connections, 2);
  EXPECT_EQ(accepted_->state(), Ax25Connection::State::kConnected);
}

TEST_F(LapbPair, UnknownPeerNonSabmGetsDm) {
  Build();
  // Hand-deliver an I frame from a peer B has never heard of.
  Ax25Frame f;
  f.destination = Ax25Address("BBB", 0);
  f.source = Ax25Address("ZZZ", 0);
  f.type = Ax25FrameType::kI;
  f.pid = kPidNoLayer3;
  f.info = BytesFromString("?");
  int dm_count = 0;
  auto z = std::make_unique<Ax25Link>(
      &sim_, Ax25Address("ZZZ", 0), [&](const Ax25Frame&) {});
  // Replace b's sender check: count DMs it emits by inspecting via a fresh link.
  b_ = std::make_unique<Ax25Link>(&sim_, Ax25Address("BBB", 0),
                                  [&](const Ax25Frame& out) {
                                    if (out.type == Ax25FrameType::kDm) {
                                      ++dm_count;
                                    }
                                  });
  b_->HandleFrame(f);
  EXPECT_EQ(dm_count, 1);
}

// --- v2.0 / v2.2 dialect interop matrix -------------------------------------
//
// Unlike LapbPair, each end gets its own config (so the two ends can speak
// different dialects) and frames travel as wire bytes: encode, pre-parse with
// the mod-8 layout, then HandleDecoded — the exact path the driver uses. A
// mod-128 control field survives only if the re-parse machinery works.
class LapbDialectPair : public ::testing::Test {
 protected:
  void Build(Ax25LinkConfig config_a, Ax25LinkConfig config_b) {
    a_ = std::make_unique<Ax25Link>(
        &sim_, Ax25Address("AAA", 0),
        [this](const Ax25Frame& f) { Deliver(f, b_.get(), &a_to_b_drop_); },
        config_a);
    b_ = std::make_unique<Ax25Link>(
        &sim_, Ax25Address("BBB", 0),
        [this](const Ax25Frame& f) { Deliver(f, a_.get(), &b_to_a_drop_); },
        config_b);
    a_->set_accept_handler([](const Ax25Address&) { return true; });
    b_->set_accept_handler([](const Ax25Address&) { return true; });
    b_->set_connection_handler([this](Ax25Connection* c) {
      accepted_ = c;
      c->set_data_handler([this](const Bytes& data) {
        received_.insert(received_.end(), data.begin(), data.end());
      });
    });
  }

  void Deliver(const Ax25Frame& f, Ax25Link* to, int* drop_budget) {
    if (*drop_budget > 0) {
      --*drop_budget;
      return;
    }
    Bytes wire = f.Encode();
    sim_.Schedule(Milliseconds(500), [to, wire = std::move(wire)] {
      auto decoded = Ax25Frame::Decode(wire, Ax25Modulus::kMod8);
      ASSERT_TRUE(decoded.has_value());
      to->HandleDecoded(*decoded, wire);
    });
  }

  static Ax25LinkConfig V22(std::uint8_t window = 127) {
    Ax25LinkConfig cfg;
    cfg.dialect = Ax25Dialect::kV22;
    cfg.window = window;
    return cfg;
  }

  Simulator sim_;
  std::unique_ptr<Ax25Link> a_;
  std::unique_ptr<Ax25Link> b_;
  Ax25Connection* accepted_ = nullptr;
  Bytes received_;
  int a_to_b_drop_ = 0;
  int b_to_a_drop_ = 0;
};

TEST_F(LapbDialectPair, V22BothNegotiateMod128AndSrej) {
  Build(V22(), V22());
  Ax25Connection* c = a_->Connect(Ax25Address("BBB", 0));
  sim_.RunUntil(Seconds(20));
  ASSERT_EQ(c->state(), Ax25Connection::State::kConnected);
  EXPECT_EQ(c->modulus(), Ax25Modulus::kMod128);
  EXPECT_EQ(c->window(), 127);
  EXPECT_TRUE(c->srej_enabled());
  ASSERT_NE(accepted_, nullptr);
  EXPECT_EQ(accepted_->modulus(), Ax25Modulus::kMod128);
  EXPECT_EQ(accepted_->window(), 127);
  EXPECT_TRUE(accepted_->srej_enabled());
  EXPECT_GE(a_->stats().xid_sent, 1u);
  EXPECT_GE(b_->stats().xid_received, 1u);
  EXPECT_EQ(a_->stats().mod128_links, 1u);
  EXPECT_EQ(a_->stats().downgrades, 0u);
  // And data actually flows over the extended-control wire format.
  Bytes msg = BytesFromString("modulo 128 payload");
  c->Send(msg);
  sim_.RunUntil(Seconds(60));
  EXPECT_EQ(received_, msg);
}

TEST_F(LapbDialectPair, V22CallerDowngradesForV20Peer) {
  Build(V22(), Ax25LinkConfig{});
  Ax25Connection* c = a_->Connect(Ax25Address("BBB", 0));
  sim_.RunUntil(Seconds(30));
  ASSERT_EQ(c->state(), Ax25Connection::State::kConnected);
  // The v2.0 peer refused XID with DM; A fell back to a plain SABM link.
  EXPECT_EQ(c->modulus(), Ax25Modulus::kMod8);
  EXPECT_LE(c->window(), 7);
  EXPECT_FALSE(c->srej_enabled());
  EXPECT_EQ(a_->stats().downgrades, 1u);
  EXPECT_EQ(a_->stats().mod128_links, 0u);
  EXPECT_EQ(b_->stats().xid_sent, 0u);
  Bytes msg = BytesFromString("plain old v2.0");
  c->Send(msg);
  sim_.RunUntil(Seconds(90));
  EXPECT_EQ(received_, msg);
}

TEST_F(LapbDialectPair, V20CallerConnectsToV22Peer) {
  Build(Ax25LinkConfig{}, V22());
  Ax25Connection* c = a_->Connect(Ax25Address("BBB", 0));
  sim_.RunUntil(Seconds(20));
  ASSERT_EQ(c->state(), Ax25Connection::State::kConnected);
  // A plain SABM never negotiates: the v2.2 responder answers in kind.
  EXPECT_EQ(c->modulus(), Ax25Modulus::kMod8);
  ASSERT_NE(accepted_, nullptr);
  EXPECT_EQ(accepted_->modulus(), Ax25Modulus::kMod8);
  EXPECT_EQ(a_->stats().xid_sent, 0u);
  EXPECT_EQ(b_->stats().xid_sent, 0u);
  EXPECT_EQ(a_->stats().downgrades, 0u);
  Bytes msg = BytesFromString("v2.0 caller");
  c->Send(msg);
  sim_.RunUntil(Seconds(60));
  EXPECT_EQ(received_, msg);
}

TEST_F(LapbDialectPair, CrossingXidCommandsBothEstablishMod128) {
  Build(V22(), V22());
  // Both ends dial simultaneously: the XID commands cross on the half-second
  // wire. Agree() is symmetric, so both compute identical parameters and the
  // crossing must still converge on one extended-mode link at each end.
  Ax25Connection* ca = a_->Connect(Ax25Address("BBB", 0));
  Ax25Connection* cb = b_->Connect(Ax25Address("AAA", 0));
  sim_.RunUntil(Seconds(30));
  EXPECT_EQ(ca->state(), Ax25Connection::State::kConnected);
  EXPECT_EQ(cb->state(), Ax25Connection::State::kConnected);
  EXPECT_EQ(ca->modulus(), Ax25Modulus::kMod128);
  EXPECT_EQ(cb->modulus(), Ax25Modulus::kMod128);
  EXPECT_EQ(a_->stats().downgrades, 0u);
  EXPECT_EQ(b_->stats().downgrades, 0u);
}

TEST_F(LapbDialectPair, SrejResendsOnlyTheMissingFrame) {
  Ax25LinkConfig cfg = V22();
  cfg.paclen = 8;
  Build(cfg, cfg);
  Ax25Connection* c = a_->Connect(Ax25Address("BBB", 0));
  sim_.RunUntil(Seconds(20));
  ASSERT_EQ(c->state(), Ax25Connection::State::kConnected);
  ASSERT_TRUE(c->srej_enabled());
  a_to_b_drop_ = 1;  // exactly one I frame dies; nine follow it intact
  Bytes msg(80, 0x5C);
  c->Send(msg);
  sim_.RunUntil(Seconds(120));
  EXPECT_EQ(received_, msg);
  // Selective reject recovered the gap without a go-back-N storm: the peer
  // asked for the one hole and only (about) that frame went out again.
  EXPECT_GE(b_->stats().srej_sent, 1u);
  EXPECT_GE(a_->stats().srej_received, 1u);
  EXPECT_GE(c->i_frames_resent(), 1u);
  EXPECT_LE(c->i_frames_resent(), 3u);
}

TEST_F(LapbDialectPair, Mod128SequenceNumbersWrap) {
  Ax25LinkConfig cfg = V22();
  cfg.paclen = 4;
  Build(cfg, cfg);
  Ax25Connection* c = a_->Connect(Ax25Address("BBB", 0));
  sim_.RunUntil(Seconds(20));
  ASSERT_EQ(c->state(), Ax25Connection::State::kConnected);
  ASSERT_EQ(c->modulus(), Ax25Modulus::kMod128);
  // 150 I frames: V(S) runs past 127 and wraps. Delivery must stay exact.
  Bytes msg(600);
  for (std::size_t i = 0; i < msg.size(); ++i) {
    msg[i] = static_cast<std::uint8_t>(i * 13 + 1);
  }
  c->Send(msg);
  sim_.RunUntil(Seconds(600));
  EXPECT_EQ(received_, msg);
  EXPECT_GE(c->i_frames_sent(), 150u);
}

}  // namespace
}  // namespace upr
