#include <gtest/gtest.h>

#include "src/net/ip_address.h"
#include "src/net/ipv4.h"
#include "src/net/netstack.h"
#include "src/net/routing.h"
#include "src/sim/simulator.h"

namespace upr {
namespace {

TEST(IpAddressTest, ParseAndFormat) {
  auto a = IpV4Address::Parse("44.24.0.28");
  ASSERT_TRUE(a);
  EXPECT_EQ(a->value(), 0x2C18001Cu);
  EXPECT_EQ(a->ToString(), "44.24.0.28");
  EXPECT_FALSE(IpV4Address::Parse("256.1.1.1"));
  EXPECT_FALSE(IpV4Address::Parse("1.2.3"));
  EXPECT_FALSE(IpV4Address::Parse("1.2.3.4.5"));
  EXPECT_FALSE(IpV4Address::Parse("a.b.c.d"));
  EXPECT_FALSE(IpV4Address::Parse(""));
}

TEST(IpAddressTest, AmprNetDetection) {
  EXPECT_TRUE(IpV4Address(44, 24, 0, 5).IsAmprNet());
  EXPECT_TRUE(IpV4Address(44, 56, 0, 5).IsAmprNet());
  EXPECT_FALSE(IpV4Address(128, 95, 1, 1).IsAmprNet());
}

TEST(IpPrefixTest, CidrContains) {
  auto p = IpV4Prefix::FromCidr(IpV4Address(44, 24, 0, 28), 8);
  EXPECT_EQ(p.PrefixLength(), 8);
  EXPECT_EQ(p.network, IpV4Address(44, 0, 0, 0));
  EXPECT_TRUE(p.Contains(IpV4Address(44, 99, 3, 4)));
  EXPECT_FALSE(p.Contains(IpV4Address(45, 0, 0, 1)));
  auto p24 = IpV4Prefix::FromCidr(IpV4Address(128, 95, 1, 0), 24);
  EXPECT_TRUE(p24.Contains(IpV4Address(128, 95, 1, 200)));
  EXPECT_FALSE(p24.Contains(IpV4Address(128, 95, 2, 1)));
  auto p0 = IpV4Prefix::FromCidr(IpV4Address(), 0);
  EXPECT_TRUE(p0.Contains(IpV4Address(1, 2, 3, 4)));
  auto p32 = IpV4Prefix::FromCidr(IpV4Address(10, 0, 0, 1), 32);
  EXPECT_TRUE(p32.Contains(IpV4Address(10, 0, 0, 1)));
  EXPECT_FALSE(p32.Contains(IpV4Address(10, 0, 0, 2)));
}

TEST(Ipv4HeaderTest, EncodeDecodeRoundTrip) {
  Ipv4Header h;
  h.tos = 0x10;
  h.identification = 0x1234;
  h.ttl = 15;
  h.protocol = kIpProtoTcp;
  h.source = IpV4Address(44, 24, 0, 10);
  h.destination = IpV4Address(128, 95, 1, 4);
  Bytes payload = BytesFromString("data data data");
  Bytes wire = h.Encode(payload);
  auto parsed = Ipv4Header::Decode(wire);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->header.tos, 0x10);
  EXPECT_EQ(parsed->header.identification, 0x1234);
  EXPECT_EQ(parsed->header.ttl, 15);
  EXPECT_EQ(parsed->header.protocol, kIpProtoTcp);
  EXPECT_EQ(parsed->header.source, h.source);
  EXPECT_EQ(parsed->header.destination, h.destination);
  EXPECT_EQ(parsed->payload, payload);
}

TEST(Ipv4HeaderTest, ChecksumValidation) {
  Ipv4Header h;
  h.source = IpV4Address(1, 2, 3, 4);
  h.destination = IpV4Address(5, 6, 7, 8);
  Bytes wire = h.Encode(Bytes{});
  wire[8] ^= 0x01;  // flip a TTL bit
  EXPECT_FALSE(Ipv4Header::Decode(wire));
}

TEST(Ipv4HeaderTest, FragmentFieldsRoundTrip) {
  Ipv4Header h;
  h.source = IpV4Address(1, 2, 3, 4);
  h.destination = IpV4Address(5, 6, 7, 8);
  h.more_fragments = true;
  h.fragment_offset = 185;
  Bytes wire = h.Encode(Bytes(8, 1));
  auto p = Ipv4Header::Decode(wire);
  ASSERT_TRUE(p);
  EXPECT_TRUE(p->header.more_fragments);
  EXPECT_FALSE(p->header.dont_fragment);
  EXPECT_EQ(p->header.fragment_offset, 185);
  h.dont_fragment = true;
  h.more_fragments = false;
  h.fragment_offset = 0;
  p = Ipv4Header::Decode(h.Encode(Bytes{}));
  ASSERT_TRUE(p);
  EXPECT_TRUE(p->header.dont_fragment);
}

TEST(Ipv4HeaderTest, OptionsPaddedAndCarried) {
  Ipv4Header h;
  h.source = IpV4Address(1, 2, 3, 4);
  h.destination = IpV4Address(5, 6, 7, 8);
  h.options = Bytes{0x07, 0x03, 0x04};  // odd length: padded to 4
  Bytes wire = h.Encode(BytesFromString("xy"));
  auto p = Ipv4Header::Decode(wire);
  ASSERT_TRUE(p);
  EXPECT_EQ(p->header.options.size(), 4u);
  EXPECT_EQ(p->payload, BytesFromString("xy"));
}

TEST(Ipv4HeaderTest, RejectsBadVersionAndLengths) {
  Ipv4Header h;
  h.source = IpV4Address(1, 2, 3, 4);
  h.destination = IpV4Address(5, 6, 7, 8);
  Bytes wire = h.Encode(Bytes{});
  Bytes bad = wire;
  bad[0] = 0x60 | (bad[0] & 0x0F);  // version 6 — checksum also breaks, fix it:
  EXPECT_FALSE(Ipv4Header::Decode(bad));
  Bytes tiny(wire.begin(), wire.begin() + 10);
  EXPECT_FALSE(Ipv4Header::Decode(tiny));
}

class FakeInterface : public NetInterface {
 public:
  FakeInterface(std::string name, std::size_t mtu) : NetInterface(std::move(name), mtu) {}
  void Output(const Bytes& dgram, IpV4Address next_hop) override {
    sent.push_back({dgram, next_hop});
  }
  // Expose for tests.
  void Inject(const Bytes& dgram) { DeliverToStack(dgram); }
  struct Out {
    Bytes dgram;
    IpV4Address next_hop;
  };
  std::vector<Out> sent;
};

TEST(RouteTableTest, LongestPrefixWins) {
  RouteTable rt;
  FakeInterface a("a", 1500), b("b", 1500);
  rt.AddDirect(IpV4Prefix::FromCidr(IpV4Address(44, 0, 0, 0), 8), &a);
  rt.AddDirect(IpV4Prefix::FromCidr(IpV4Address(44, 24, 0, 0), 16), &b);
  const Route* r = rt.Lookup(IpV4Address(44, 24, 0, 5));
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->interface, &b);
  r = rt.Lookup(IpV4Address(44, 99, 0, 5));
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->interface, &a);
  EXPECT_EQ(rt.Lookup(IpV4Address(10, 0, 0, 1)), nullptr);
}

TEST(RouteTableTest, DefaultRouteCatchesAll) {
  RouteTable rt;
  FakeInterface a("a", 1500);
  rt.AddDefault(IpV4Address(128, 95, 1, 1), &a);
  const Route* r = rt.Lookup(IpV4Address(8, 8, 8, 8));
  ASSERT_NE(r, nullptr);
  ASSERT_TRUE(r->gateway);
  EXPECT_EQ(*r->gateway, IpV4Address(128, 95, 1, 1));
}

TEST(RouteTableTest, RemoveByPrefix) {
  RouteTable rt;
  FakeInterface a("a", 1500);
  rt.AddDirect(IpV4Prefix::FromCidr(IpV4Address(44, 0, 0, 0), 8), &a);
  EXPECT_EQ(rt.Remove(IpV4Prefix::FromCidr(IpV4Address(44, 0, 0, 0), 8)), 1u);
  EXPECT_EQ(rt.Lookup(IpV4Address(44, 0, 0, 1)), nullptr);
}

TEST(RouteTableTest, MetricBreaksTies) {
  RouteTable rt;
  FakeInterface a("a", 1500), b("b", 1500);
  rt.AddDirect(IpV4Prefix::FromCidr(IpV4Address(44, 0, 0, 0), 8), &a, /*metric=*/5);
  rt.AddDirect(IpV4Prefix::FromCidr(IpV4Address(44, 0, 0, 0), 8), &b, /*metric=*/1);
  EXPECT_EQ(rt.Lookup(IpV4Address(44, 1, 1, 1))->interface, &b);
}

class NetStackTest : public ::testing::Test {
 protected:
  NetStackTest() : stack_(&sim_, "host") {
    auto iface = std::make_unique<FakeInterface>("fake0", 1500);
    iface->Configure(IpV4Address(10, 0, 0, 1), 24);
    iface_ = static_cast<FakeInterface*>(stack_.AddInterface(std::move(iface)));
  }

  Simulator sim_;
  NetStack stack_;
  FakeInterface* iface_;
};

TEST_F(NetStackTest, SendsViaDirectRoute) {
  EXPECT_TRUE(stack_.SendDatagram(IpV4Address(10, 0, 0, 2), 99, BytesFromString("hi")));
  ASSERT_EQ(iface_->sent.size(), 1u);
  EXPECT_EQ(iface_->sent[0].next_hop, IpV4Address(10, 0, 0, 2));
  auto p = Ipv4Header::Decode(iface_->sent[0].dgram);
  ASSERT_TRUE(p);
  EXPECT_EQ(p->header.source, IpV4Address(10, 0, 0, 1));
  EXPECT_EQ(p->payload, BytesFromString("hi"));
}

TEST_F(NetStackTest, NoRouteFails) {
  EXPECT_FALSE(stack_.SendDatagram(IpV4Address(99, 0, 0, 1), 99, Bytes{}));
  EXPECT_EQ(stack_.ip_stats().no_route, 1u);
}

TEST_F(NetStackTest, GatewayRouteUsesGatewayAsNextHop) {
  stack_.routes().AddDefault(IpV4Address(10, 0, 0, 254), iface_);
  EXPECT_TRUE(stack_.SendDatagram(IpV4Address(8, 8, 8, 8), 99, Bytes{}));
  ASSERT_EQ(iface_->sent.size(), 1u);
  EXPECT_EQ(iface_->sent[0].next_hop, IpV4Address(10, 0, 0, 254));
}

TEST_F(NetStackTest, DeliversToRegisteredProtocol) {
  Bytes got;
  stack_.RegisterProtocol(99, [&](const Ipv4Header& h, ByteView p, NetInterface*) {
    got.assign(p.begin(), p.end());
  });
  Ipv4Header h;
  h.protocol = 99;
  h.source = IpV4Address(10, 0, 0, 2);
  h.destination = IpV4Address(10, 0, 0, 1);
  iface_->Inject(h.Encode(BytesFromString("payload")));
  sim_.RunAll();
  EXPECT_EQ(got, BytesFromString("payload"));
  EXPECT_EQ(stack_.ip_stats().delivered, 1u);
}

TEST_F(NetStackTest, InputQueueBounded) {
  stack_.set_input_queue_limit(3);
  Ipv4Header h;
  h.protocol = 99;
  h.source = IpV4Address(10, 0, 0, 2);
  h.destination = IpV4Address(10, 0, 0, 1);
  Bytes dgram = h.Encode(Bytes{});
  for (int i = 0; i < 10; ++i) {
    stack_.EnqueueFromDriver(dgram, iface_);
  }
  EXPECT_EQ(stack_.ip_stats().input_drops, 7u);
  sim_.RunAll();
  EXPECT_EQ(stack_.input_queue_depth(), 0u);
}

TEST_F(NetStackTest, ForwardingDecrementsTtl) {
  auto second = std::make_unique<FakeInterface>("fake1", 1500);
  second->Configure(IpV4Address(20, 0, 0, 1), 24);
  auto* out = static_cast<FakeInterface*>(stack_.AddInterface(std::move(second)));
  stack_.set_forwarding(true);
  Ipv4Header h;
  h.protocol = 99;
  h.ttl = 5;
  h.source = IpV4Address(10, 0, 0, 2);
  h.destination = IpV4Address(20, 0, 0, 9);
  iface_->Inject(h.Encode(BytesFromString("fwd")));
  sim_.RunAll();
  ASSERT_EQ(out->sent.size(), 1u);
  auto p = Ipv4Header::Decode(out->sent[0].dgram);
  ASSERT_TRUE(p);
  EXPECT_EQ(p->header.ttl, 4);
  EXPECT_EQ(stack_.ip_stats().forwarded, 1u);
}

TEST_F(NetStackTest, ForwardingDisabledDropsTransit) {
  Ipv4Header h;
  h.protocol = 99;
  h.source = IpV4Address(10, 0, 0, 2);
  h.destination = IpV4Address(20, 0, 0, 9);
  iface_->Inject(h.Encode(Bytes{}));
  sim_.RunAll();
  EXPECT_EQ(stack_.ip_stats().forwarded, 0u);
}

TEST_F(NetStackTest, TtlExpiryGeneratesIcmp) {
  auto second = std::make_unique<FakeInterface>("fake1", 1500);
  second->Configure(IpV4Address(20, 0, 0, 1), 24);
  stack_.AddInterface(std::move(second));
  stack_.set_forwarding(true);
  Ipv4Header h;
  h.protocol = 99;
  h.ttl = 1;
  h.source = IpV4Address(10, 0, 0, 2);
  h.destination = IpV4Address(20, 0, 0, 9);
  iface_->Inject(h.Encode(Bytes{}));
  sim_.RunAll();
  EXPECT_EQ(stack_.ip_stats().ttl_expired, 1u);
  // The ICMP error went back out the first interface toward the source.
  ASSERT_GE(iface_->sent.size(), 1u);
  auto p = Ipv4Header::Decode(iface_->sent.back().dgram);
  ASSERT_TRUE(p);
  EXPECT_EQ(p->header.protocol, kIpProtoIcmp);
}

TEST_F(NetStackTest, ForwardFilterDrops) {
  auto second = std::make_unique<FakeInterface>("fake1", 1500);
  second->Configure(IpV4Address(20, 0, 0, 1), 24);
  auto* out = static_cast<FakeInterface*>(stack_.AddInterface(std::move(second)));
  stack_.set_forwarding(true);
  stack_.set_forward_filter(
      [](const Ipv4Header&, ByteView, NetInterface*, NetInterface*) {
        return false;
      });
  Ipv4Header h;
  h.protocol = 99;
  h.source = IpV4Address(10, 0, 0, 2);
  h.destination = IpV4Address(20, 0, 0, 9);
  iface_->Inject(h.Encode(Bytes{}));
  sim_.RunAll();
  EXPECT_TRUE(out->sent.empty());
  EXPECT_EQ(stack_.ip_stats().filtered, 1u);
}

TEST_F(NetStackTest, FragmentsWhenExceedingMtu) {
  auto small = std::make_unique<FakeInterface>("small0", 256);
  small->Configure(IpV4Address(30, 0, 0, 1), 24);
  auto* out = static_cast<FakeInterface*>(stack_.AddInterface(std::move(small)));
  Bytes payload(600, 0x77);
  EXPECT_TRUE(stack_.SendDatagram(IpV4Address(30, 0, 0, 2), 99, payload));
  ASSERT_EQ(out->sent.size(), 3u);  // 600 bytes over 236-byte chunks
  std::size_t total = 0;
  for (auto& s : out->sent) {
    auto p = Ipv4Header::Decode(s.dgram);
    ASSERT_TRUE(p);
    EXPECT_LE(s.dgram.size(), 256u);
    total += p->payload.size();
  }
  EXPECT_EQ(total, 600u);
  EXPECT_EQ(stack_.ip_stats().fragments_created, 3u);
}

TEST_F(NetStackTest, ReassemblesFragments) {
  Bytes got;
  stack_.RegisterProtocol(99, [&](const Ipv4Header&, ByteView p, NetInterface*) {
    got.assign(p.begin(), p.end());
  });
  Bytes payload(500, 0);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i);
  }
  Ipv4Header h;
  h.protocol = 99;
  h.identification = 77;
  h.source = IpV4Address(10, 0, 0, 2);
  h.destination = IpV4Address(10, 0, 0, 1);
  // Deliver as 3 fragments, out of order.
  auto frag = [&](std::size_t off, std::size_t len, bool mf) {
    Ipv4Header fh = h;
    fh.fragment_offset = static_cast<std::uint16_t>(off / 8);
    fh.more_fragments = mf;
    Bytes chunk(payload.begin() + static_cast<std::ptrdiff_t>(off),
                payload.begin() + static_cast<std::ptrdiff_t>(off + len));
    iface_->Inject(fh.Encode(chunk));
  };
  frag(200, 200, true);
  frag(400, 100, false);
  frag(0, 200, true);
  sim_.RunAll();
  EXPECT_EQ(got, payload);
  EXPECT_EQ(stack_.ip_stats().reassembled, 1u);
}

TEST_F(NetStackTest, ReassemblyTimesOutIncomplete) {
  stack_.RegisterProtocol(99, [&](const Ipv4Header&, ByteView, NetInterface*) {
    FAIL() << "incomplete datagram must not be delivered";
  });
  Ipv4Header h;
  h.protocol = 99;
  h.identification = 78;
  h.source = IpV4Address(10, 0, 0, 2);
  h.destination = IpV4Address(10, 0, 0, 1);
  h.more_fragments = true;
  iface_->Inject(h.Encode(Bytes(64, 1)));
  sim_.RunUntil(Seconds(31));
  // A later fragment for another datagram triggers the GC path.
  Ipv4Header h2 = h;
  h2.identification = 79;
  iface_->Inject(h2.Encode(Bytes(64, 2)));
  sim_.RunAll();
  EXPECT_EQ(stack_.ip_stats().reassembly_failures, 1u);
}

TEST_F(NetStackTest, LocalLoopback) {
  Bytes got;
  stack_.RegisterProtocol(99, [&](const Ipv4Header& h, ByteView p, NetInterface*) {
    got.assign(p.begin(), p.end());
  });
  EXPECT_TRUE(stack_.SendDatagram(IpV4Address(10, 0, 0, 1), 99, BytesFromString("me")));
  sim_.RunAll();
  EXPECT_EQ(got, BytesFromString("me"));
  EXPECT_TRUE(iface_->sent.empty());
}

TEST_F(NetStackTest, BroadcastAddressRecognition) {
  EXPECT_TRUE(stack_.IsBroadcastAddress(IpV4Address(10, 0, 0, 255)));
  EXPECT_TRUE(stack_.IsBroadcastAddress(IpV4Address::LimitedBroadcast()));
  EXPECT_FALSE(stack_.IsBroadcastAddress(IpV4Address(10, 0, 1, 255)));
}

}  // namespace
}  // namespace upr
