// Perf-ledger regression gate (tools/benchdiff_core): the fixtures here
// build a representative bench-ledger document, inject one fault at a time —
// a flipped sim table cell, a drifted counter, a slower wall clock, a
// changed scenario param — and assert the diff engine flags exactly the
// faults it should. This is the ISSUE's "inject a fake regression and assert
// benchdiff exits nonzero" test, run against the same code the CLI links.
#include "tools/benchdiff_core.h"

#include <gtest/gtest.h>

#include <string>

#include "src/util/json.h"

namespace upr {
namespace {

constexpr char kDoc[] = R"({
  "schema": 1,
  "bench": "e1_link_speed",
  "exit_code": 0,
  "smoke": false,
  "params": {"seed": 7, "payload": 56, "rates": "300..19200"},
  "sim": {"events_total": 123456, "goodput_frac": 0.8125},
  "tables": [
    {"title": "rtt vs rate", "kind": "sim", "cols": ["rate", "rtt_ms"],
     "rows": [["1200", "4216"], ["9600", "572"]]},
    {"title": "decode timings", "kind": "wall", "cols": ["case", "ns"],
     "rows": [["kiss", "812"]]}
  ],
  "wall": {
    "events_per_wall_sec": {"value": 2000000.0, "better": "higher"},
    "wall_ms": {"value": 100.0, "better": "lower"}
  }
})";

json::Value Doc(const std::string& text = kDoc) {
  std::string err;
  auto v = json::Parse(text, &err);
  EXPECT_TRUE(v.has_value()) << err;
  return *v;
}

// Replaces the first occurrence of `from` in the canned document.
json::Value Mutated(const std::string& from, const std::string& to) {
  std::string text = kDoc;
  auto pos = text.find(from);
  EXPECT_NE(pos, std::string::npos) << from;
  text.replace(pos, from.size(), to);
  return Doc(text);
}

TEST(BenchdiffTest, IdenticalDocumentsPass) {
  std::string report;
  EXPECT_TRUE(benchdiff::CompareDocs(Doc(), Doc(), {}, &report)) << report;
  EXPECT_TRUE(report.empty());
}

TEST(BenchdiffTest, InjectedSimTableRegressionFails) {
  // One RTT cell drifts by a millisecond: exact-compare must catch it.
  std::string report;
  EXPECT_FALSE(
      benchdiff::CompareDocs(Doc(), Mutated("\"4216\"", "\"4217\""), {}, &report));
  EXPECT_NE(report.find("rtt vs rate"), std::string::npos) << report;
}

TEST(BenchdiffTest, InjectedSimCounterRegressionFails) {
  std::string report;
  EXPECT_FALSE(
      benchdiff::CompareDocs(Doc(), Mutated("123456", "123457"), {}, &report));
  EXPECT_NE(report.find("events_total"), std::string::npos) << report;
}

TEST(BenchdiffTest, SimFloatsTolerateOnlyTinyError) {
  std::string report;
  // 1 ulp-ish wiggle from FP contraction passes...
  EXPECT_TRUE(benchdiff::CompareDocs(
      Doc(), Mutated("0.8125", "0.81250000000000011"), {}, &report))
      << report;
  // ...a real drift does not.
  EXPECT_FALSE(
      benchdiff::CompareDocs(Doc(), Mutated("0.8125", "0.8126"), {}, &report));
}

TEST(BenchdiffTest, WallClockBandIsOneSided) {
  benchdiff::Options opt;
  opt.wall_tol = 0.5;
  std::string report;
  // 10x faster: passes (improvements are always in tolerance).
  EXPECT_TRUE(benchdiff::CompareDocs(Doc(), Mutated("100.0", "10.0"), opt, &report))
      << report;
  // Just inside the 1.5x ceiling: passes.
  EXPECT_TRUE(benchdiff::CompareDocs(Doc(), Mutated("100.0", "149.0"), opt, &report))
      << report;
  // Beyond it: fails and names the metric.
  report.clear();
  EXPECT_FALSE(
      benchdiff::CompareDocs(Doc(), Mutated("100.0", "151.0"), opt, &report));
  EXPECT_NE(report.find("wall.wall_ms"), std::string::npos) << report;
  // Higher-is-better direction: a throughput collapse fails.
  EXPECT_FALSE(
      benchdiff::CompareDocs(Doc(), Mutated("2000000.0", "900000.0"), opt, &report));
}

TEST(BenchdiffTest, WallTablesOnlyCheckShape) {
  std::string report;
  // A wall-table timing cell may move freely...
  EXPECT_TRUE(
      benchdiff::CompareDocs(Doc(), Mutated("\"812\"", "\"2990\""), {}, &report))
      << report;
  // ...but dropping its row does not pass.
  EXPECT_FALSE(benchdiff::CompareDocs(
      Doc(), Mutated("[[\"kiss\", \"812\"]]", "[]"), {}, &report));
}

TEST(BenchdiffTest, ChangedParamDemandsRebaseline) {
  std::string report;
  EXPECT_FALSE(
      benchdiff::CompareDocs(Doc(), Mutated("\"seed\": 7", "\"seed\": 8"), {}, &report));
  EXPECT_NE(report.find("regenerate bench/baselines"), std::string::npos) << report;
}

TEST(BenchdiffTest, NewAndMissingKeysBothFail) {
  std::string report;
  EXPECT_FALSE(benchdiff::CompareDocs(
      Doc(), Mutated("\"seed\": 7, ", ""), {}, &report));
  EXPECT_FALSE(benchdiff::CompareDocs(
      Doc(), Mutated("\"seed\": 7", "\"seed\": 7, \"extra\": 1"), {}, &report));
}

TEST(BenchdiffTest, BenchIdAndExitCodeMismatchFail) {
  std::string report;
  EXPECT_FALSE(benchdiff::CompareDocs(
      Doc(), Mutated("e1_link_speed", "e2_gateway_load"), {}, &report));
  EXPECT_FALSE(benchdiff::CompareDocs(
      Doc(), Mutated("\"exit_code\": 0", "\"exit_code\": 1"), {}, &report));
}

TEST(BenchdiffTest, CompareFilesReportsUnreadableAndUnparsablePaths) {
  std::string report;
  EXPECT_FALSE(benchdiff::CompareFiles("/nonexistent/base.json",
                                       "/nonexistent/cur.json", {}, &report));
  EXPECT_NE(report.find("cannot read"), std::string::npos) << report;
}

}  // namespace
}  // namespace upr
