#include <gtest/gtest.h>

#include "src/scenario/monitor.h"
#include "src/scenario/netstat.h"
#include "src/scenario/testbed.h"

namespace upr {
namespace {

TEST(ChannelMonitorTest, CountsAndDecodesPingTraffic) {
  TestbedConfig cfg;
  cfg.radio_pcs = 1;
  cfg.ether_hosts = 1;
  cfg.radio_bit_rate = 9600;
  Testbed tb(cfg);
  ChannelMonitor monitor(&tb.sim(), &tb.channel());
  // No static ARP: the monitor should see the ARP exchange too.
  bool ok = false;
  tb.pc(0).stack().icmp().Ping(Testbed::EtherHostIp(0), 16,
                               [&](bool success, SimTime) { ok = success; },
                               Seconds(300));
  tb.sim().RunUntil(Seconds(600));
  ASSERT_TRUE(ok);
  const MonitorCounters& c = monitor.counters();
  EXPECT_EQ(c.ui_arp, 2u);   // request + reply
  EXPECT_EQ(c.ui_ip, 2u);    // echo there and back on the radio leg
  EXPECT_EQ(c.corrupted, 0u);
  EXPECT_GT(c.bytes_on_air, 100u);
  EXPECT_TRUE(monitor.Saw("UI"));
  EXPECT_TRUE(monitor.Saw("(ARP)"));
  EXPECT_TRUE(monitor.Saw("(IP 44.24.0.10 > 128.95.1.10"));
}

TEST(ChannelMonitorTest, DecodesTcpInsideIp) {
  TestbedConfig cfg;
  cfg.radio_pcs = 1;
  cfg.ether_hosts = 1;
  cfg.radio_bit_rate = 9600;
  Testbed tb(cfg);
  tb.PopulateRadioArp();
  ChannelMonitor monitor(&tb.sim(), &tb.channel());
  tb.host(0).tcp().Listen(23, [](TcpConnection*) {});
  TcpConnection* c = tb.pc(0).tcp().Connect(Testbed::EtherHostIp(0), 23);
  ASSERT_NE(c, nullptr);
  tb.sim().RunUntil(Seconds(120));
  EXPECT_TRUE(monitor.Saw("TCP"));
  EXPECT_TRUE(monitor.Saw("SYN"));
}

TEST(ChannelMonitorTest, FlagsCollisionsAndKeepsBoundedHistory) {
  Simulator sim;
  RadioChannel channel(&sim);
  ChannelMonitor monitor(&sim, &channel, nullptr, /*keep_lines=*/4);
  RadioPort* a = channel.CreatePort("a");
  RadioPort* b = channel.CreatePort("b");
  a->StartTransmit(Bytes(50, 1), 0, 0);
  b->StartTransmit(Bytes(50, 2), 0, 0);  // collides
  sim.RunAll();
  EXPECT_EQ(monitor.counters().corrupted, 2u);
  EXPECT_TRUE(monitor.Saw("collision"));
  for (int i = 0; i < 10; ++i) {
    a->StartTransmit(Bytes(10, 3), 0, 0);
    sim.RunAll();
  }
  EXPECT_LE(monitor.lines().size(), 4u);
}

TEST(NetstatTest, FormatsInterfacesRoutesAndStats) {
  TestbedConfig cfg;
  cfg.radio_pcs = 1;
  cfg.ether_hosts = 1;
  cfg.radio_bit_rate = 9600;
  Testbed tb(cfg);
  tb.PopulateRadioArp();
  bool ok = false;
  tb.pc(0).stack().icmp().Ping(Testbed::EtherHostIp(0), 16,
                               [&](bool success, SimTime) { ok = success; },
                               Seconds(300));
  tb.sim().RunUntil(Seconds(600));
  ASSERT_TRUE(ok);

  std::string s = FormatNetstat(tb.gateway().stack());
  EXPECT_NE(s.find("microvax"), std::string::npos);
  EXPECT_NE(s.find("pr0"), std::string::npos);
  EXPECT_NE(s.find("qe0"), std::string::npos);
  EXPECT_NE(s.find("44.24.0.28/8"), std::string::npos);
  EXPECT_NE(s.find("128.95.1.1/24"), std::string::npos);
  EXPECT_NE(s.find("forwarded"), std::string::npos);
  // The direct routes must appear with interface names.
  std::string routes = FormatRoutes(tb.gateway().stack());
  EXPECT_NE(routes.find("44.0.0.0/8"), std::string::npos);
  EXPECT_NE(routes.find("128.95.1.0/24"), std::string::npos);
}

TEST(NetstatTest, RouteFlagsDistinguishGatewayAndHostRoutes) {
  Simulator sim;
  NetStack stack(&sim, "h");
  RouteTable& rt = stack.routes();
  rt.AddDirect(IpV4Prefix::FromCidr(IpV4Address(10, 0, 0, 0), 24), nullptr);
  rt.AddVia(IpV4Prefix::FromCidr(IpV4Address(44, 56, 0, 5), 32),
            IpV4Address(10, 0, 0, 2), nullptr);
  std::string s = FormatRoutes(stack);
  EXPECT_NE(s.find(" U "), std::string::npos);
  EXPECT_NE(s.find("UGH"), std::string::npos);
}

TEST(NetstatTest, GatewayFormatterShowsTableState) {
  TestbedConfig cfg;
  cfg.radio_pcs = 1;
  cfg.ether_hosts = 1;
  cfg.radio_bit_rate = 9600;
  cfg.enforce_access_control = true;
  Testbed tb(cfg);
  tb.PopulateRadioArp();
  bool ok = false;
  tb.pc(0).stack().icmp().Ping(Testbed::EtherHostIp(0), 16,
                               [&](bool success, SimTime) { ok = success; },
                               Seconds(300));
  tb.sim().RunUntil(Seconds(600));
  ASSERT_TRUE(ok);
  std::string s = FormatGateway(tb.gateway().gateway());
  EXPECT_NE(s.find("1 live entries"), std::string::npos);
  EXPECT_NE(s.find("radio->wire"), std::string::npos);
}

}  // namespace
}  // namespace upr
