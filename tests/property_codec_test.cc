// Property-style codec tests: every wire format in the stack must round-trip
// arbitrary valid values, and must never crash or mis-accept on mutated
// input. Parameterized over PRNG seeds so each instantiation explores a
// different corner of the space deterministically.
#include <gtest/gtest.h>

#include "src/apps/callbook.h"
#include "src/ax25/frame.h"
#include "src/kiss/kiss.h"
#include "src/net/arp.h"
#include "src/net/icmp.h"
#include "src/net/ipv4.h"
#include "src/netrom/netrom.h"
#include "src/tcp/tcp.h"
#include "src/udp/udp.h"
#include "src/util/random.h"

namespace upr {
namespace {

Bytes RandomBytes(Rng* rng, std::size_t max_len) {
  Bytes out(rng->NextBelow(max_len + 1));
  for (auto& b : out) {
    b = static_cast<std::uint8_t>(rng->NextBelow(256));
  }
  return out;
}

Ax25Address RandomAddress(Rng* rng) {
  static const char* kAlphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
  std::string call;
  std::size_t len = 1 + rng->NextBelow(6);
  for (std::size_t i = 0; i < len; ++i) {
    call.push_back(kAlphabet[rng->NextBelow(36)]);
  }
  return Ax25Address(call, static_cast<std::uint8_t>(rng->NextBelow(16)));
}

class CodecProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Rng rng_{GetParam()};
};

TEST_P(CodecProperty, Ax25FrameRoundTripsRandomFrames) {
  for (int iter = 0; iter < 200; ++iter) {
    Ax25Frame f;
    f.destination = RandomAddress(&rng_);
    f.source = RandomAddress(&rng_);
    std::size_t ndigis = rng_.NextBelow(kMaxDigipeaters + 1);
    for (std::size_t i = 0; i < ndigis; ++i) {
      f.digipeaters.push_back(Ax25Digipeater{RandomAddress(&rng_), rng_.Chance(0.5)});
    }
    f.command = rng_.Chance(0.5);
    static const Ax25FrameType kTypes[] = {
        Ax25FrameType::kI,   Ax25FrameType::kRr,   Ax25FrameType::kRnr,
        Ax25FrameType::kRej, Ax25FrameType::kSabm, Ax25FrameType::kDisc,
        Ax25FrameType::kUa,  Ax25FrameType::kDm,   Ax25FrameType::kUi};
    f.type = kTypes[rng_.NextBelow(9)];
    f.poll_final = rng_.Chance(0.5);
    f.ns = static_cast<std::uint8_t>(rng_.NextBelow(8));
    f.nr = static_cast<std::uint8_t>(rng_.NextBelow(8));
    if (f.HasPid()) {
      f.pid = static_cast<std::uint8_t>(rng_.NextBelow(256));
      f.info = RandomBytes(&rng_, 256);
    }
    if (f.type == Ax25FrameType::kI || f.type == Ax25FrameType::kUi) {
      // ok
    } else {
      f.info.clear();
    }

    auto d = Ax25Frame::Decode(f.Encode());
    ASSERT_TRUE(d) << f.ToString();
    EXPECT_EQ(d->destination, f.destination);
    EXPECT_EQ(d->source, f.source);
    EXPECT_EQ(d->type, f.type);
    EXPECT_EQ(d->command, f.command);
    EXPECT_EQ(d->poll_final, f.poll_final);
    ASSERT_EQ(d->digipeaters.size(), f.digipeaters.size());
    for (std::size_t i = 0; i < ndigis; ++i) {
      EXPECT_EQ(d->digipeaters[i], f.digipeaters[i]);
    }
    if (f.type == Ax25FrameType::kI) {
      EXPECT_EQ(d->ns, f.ns);
    }
    if (f.type == Ax25FrameType::kI || f.type == Ax25FrameType::kRr ||
        f.type == Ax25FrameType::kRnr || f.type == Ax25FrameType::kRej) {
      EXPECT_EQ(d->nr, f.nr);
    }
    if (f.HasPid()) {
      EXPECT_EQ(d->pid, f.pid);
      EXPECT_EQ(d->info, f.info);
    }
  }
}

TEST_P(CodecProperty, Ax25DecodeNeverCrashesOnGarbage) {
  for (int iter = 0; iter < 500; ++iter) {
    Bytes garbage = RandomBytes(&rng_, 64);
    auto d = Ax25Frame::Decode(garbage);
    if (d) {
      // Whatever decoded must re-encode without crashing.
      Bytes wire = d->Encode();
      EXPECT_FALSE(wire.empty());
    }
  }
}

TEST_P(CodecProperty, KissRoundTripsArbitraryPayloads) {
  for (int iter = 0; iter < 200; ++iter) {
    Bytes payload = RandomBytes(&rng_, 512);
    std::vector<KissFrame> frames;
    KissDecoder decoder([&](const KissFrame& f) { frames.push_back(f); });
    decoder.Feed(KissEncodeData(payload, static_cast<std::uint8_t>(rng_.NextBelow(15))));
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(frames[0].payload, payload);
  }
}

TEST_P(CodecProperty, KissDecoderSurvivesGarbageStreams) {
  KissDecoder decoder([](const KissFrame&) {});
  for (int iter = 0; iter < 50; ++iter) {
    decoder.Feed(RandomBytes(&rng_, 1024));
  }
  // Still functional afterwards: resync on FEND and decode a clean frame.
  decoder.Feed(Bytes{kKissFend});
  std::vector<KissFrame> frames;
  KissDecoder fresh([&](const KissFrame& f) { frames.push_back(f); });
  fresh.Feed(KissEncodeData(Bytes{1, 2, 3}));
  EXPECT_EQ(frames.size(), 1u);
}

TEST_P(CodecProperty, Ipv4RoundTripsAndRejectsBitFlips) {
  for (int iter = 0; iter < 100; ++iter) {
    Ipv4Header h;
    h.tos = static_cast<std::uint8_t>(rng_.NextBelow(256));
    h.identification = static_cast<std::uint16_t>(rng_.NextBelow(65536));
    h.dont_fragment = rng_.Chance(0.5);
    h.more_fragments = rng_.Chance(0.5);
    h.fragment_offset = static_cast<std::uint16_t>(rng_.NextBelow(8192));
    h.ttl = static_cast<std::uint8_t>(1 + rng_.NextBelow(255));
    h.protocol = static_cast<std::uint8_t>(rng_.NextBelow(256));
    h.source = IpV4Address(static_cast<std::uint32_t>(rng_.NextU64()));
    h.destination = IpV4Address(static_cast<std::uint32_t>(rng_.NextU64()));
    Bytes payload = RandomBytes(&rng_, 128);
    Bytes wire = h.Encode(payload);

    auto p = Ipv4Header::Decode(wire);
    ASSERT_TRUE(p);
    EXPECT_EQ(p->header.tos, h.tos);
    EXPECT_EQ(p->header.identification, h.identification);
    EXPECT_EQ(p->header.dont_fragment, h.dont_fragment);
    EXPECT_EQ(p->header.more_fragments, h.more_fragments);
    EXPECT_EQ(p->header.fragment_offset, h.fragment_offset);
    EXPECT_EQ(p->header.ttl, h.ttl);
    EXPECT_EQ(p->header.protocol, h.protocol);
    EXPECT_EQ(p->header.source, h.source);
    EXPECT_EQ(p->header.destination, h.destination);
    EXPECT_EQ(p->payload, payload);

    // Any single bit flip in the header must be rejected (checksum).
    std::size_t bit = rng_.NextBelow(20 * 8);
    Bytes mutated = wire;
    mutated[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    if (mutated != wire) {
      auto bad = Ipv4Header::Decode(mutated);
      // Either rejected outright, or the flip hit a length nibble making a
      // different-but-valid... no: checksum covers the whole header, so any
      // header flip must fail.
      EXPECT_FALSE(bad) << "bit " << bit;
    }
  }
}

TEST_P(CodecProperty, TcpSegmentRoundTripsAndChecksums) {
  IpV4Address src(10, 0, 0, 1), dst(10, 0, 0, 2);
  for (int iter = 0; iter < 100; ++iter) {
    TcpSegment s;
    s.source_port = static_cast<std::uint16_t>(rng_.NextBelow(65536));
    s.destination_port = static_cast<std::uint16_t>(rng_.NextBelow(65536));
    s.seq = static_cast<std::uint32_t>(rng_.NextU64());
    s.ack = static_cast<std::uint32_t>(rng_.NextU64());
    s.flags.syn = rng_.Chance(0.3);
    s.flags.ack = rng_.Chance(0.7);
    s.flags.fin = rng_.Chance(0.2);
    s.flags.rst = rng_.Chance(0.1);
    s.flags.psh = rng_.Chance(0.5);
    s.window = static_cast<std::uint16_t>(rng_.NextBelow(65536));
    if (s.flags.syn && rng_.Chance(0.8)) {
      s.mss_option = static_cast<std::uint16_t>(rng_.NextBelow(65536));
    }
    s.payload = RandomBytes(&rng_, 256);
    Bytes wire = s.Encode(src, dst);
    auto d = TcpSegment::Decode(wire, src, dst);
    ASSERT_TRUE(d);
    EXPECT_EQ(d->source_port, s.source_port);
    EXPECT_EQ(d->seq, s.seq);
    EXPECT_EQ(d->ack, s.ack);
    EXPECT_EQ(d->flags.syn, s.flags.syn);
    EXPECT_EQ(d->flags.fin, s.flags.fin);
    EXPECT_EQ(d->flags.rst, s.flags.rst);
    EXPECT_EQ(d->window, s.window);
    EXPECT_EQ(d->mss_option, s.mss_option);
    EXPECT_EQ(d->payload, s.payload);

    std::size_t bit = rng_.NextBelow(wire.size() * 8);
    wire[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    EXPECT_FALSE(TcpSegment::Decode(wire, src, dst)) << "bit " << bit;
  }
}

TEST_P(CodecProperty, UdpDatagramRoundTripsAndChecksums) {
  IpV4Address src(44, 24, 0, 10), dst(128, 95, 1, 4);
  for (int iter = 0; iter < 100; ++iter) {
    UdpDatagram d;
    d.source_port = static_cast<std::uint16_t>(rng_.NextBelow(65536));
    d.destination_port = static_cast<std::uint16_t>(rng_.NextBelow(65536));
    d.payload = RandomBytes(&rng_, 512);
    Bytes wire = d.Encode(src, dst);
    auto p = UdpDatagram::Decode(wire, src, dst);
    ASSERT_TRUE(p);
    EXPECT_EQ(p->source_port, d.source_port);
    EXPECT_EQ(p->destination_port, d.destination_port);
    EXPECT_EQ(p->payload, d.payload);

    std::size_t bit = rng_.NextBelow(wire.size() * 8);
    wire[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    EXPECT_FALSE(UdpDatagram::Decode(wire, src, dst)) << "bit " << bit;
  }
}

TEST_P(CodecProperty, IcmpMessageRoundTripsAndChecksums) {
  for (int iter = 0; iter < 100; ++iter) {
    IcmpMessage m;
    m.type = static_cast<std::uint8_t>(rng_.NextBelow(256));
    m.code = static_cast<std::uint8_t>(rng_.NextBelow(256));
    m.body = RandomBytes(&rng_, 128);
    Bytes wire = m.Encode();
    auto d = IcmpMessage::Decode(wire);
    ASSERT_TRUE(d);
    EXPECT_EQ(d->type, m.type);
    EXPECT_EQ(d->code, m.code);
    EXPECT_EQ(d->body, m.body);

    std::size_t bit = rng_.NextBelow(wire.size() * 8);
    wire[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    EXPECT_FALSE(IcmpMessage::Decode(wire)) << "bit " << bit;
  }
}

TEST_P(CodecProperty, ArpPacketRoundTripsBothHardwareTypes) {
  for (int iter = 0; iter < 100; ++iter) {
    ArpPacket p;
    bool ax25 = rng_.Chance(0.5);
    p.htype = ax25 ? kArpHtypeAx25 : kArpHtypeEthernet;
    p.oper = rng_.Chance(0.5) ? kArpOpRequest : kArpOpReply;
    if (ax25) {
      p.sender_hw = Ax25HwAddr{RandomAddress(&rng_), {}};
      if (p.oper == kArpOpReply) {
        p.target_hw = Ax25HwAddr{RandomAddress(&rng_), {}};
      }
    } else {
      p.sender_hw = EtherAddr::FromIndex(static_cast<std::uint32_t>(rng_.NextU64()));
      if (p.oper == kArpOpReply) {
        p.target_hw = EtherAddr::FromIndex(static_cast<std::uint32_t>(rng_.NextU64()));
      }
    }
    p.sender_ip = IpV4Address(static_cast<std::uint32_t>(rng_.NextU64() | 1));
    p.target_ip = IpV4Address(static_cast<std::uint32_t>(rng_.NextU64() | 1));
    auto d = ArpPacket::Decode(p.Encode());
    ASSERT_TRUE(d);
    EXPECT_EQ(d->htype, p.htype);
    EXPECT_EQ(d->oper, p.oper);
    EXPECT_EQ(d->sender_ip, p.sender_ip);
    EXPECT_EQ(d->target_ip, p.target_ip);
    if (ax25) {
      EXPECT_EQ(std::get<Ax25HwAddr>(d->sender_hw).station,
                std::get<Ax25HwAddr>(p.sender_hw).station);
    } else {
      EXPECT_EQ(std::get<EtherAddr>(d->sender_hw), std::get<EtherAddr>(p.sender_hw));
    }
  }
}

TEST_P(CodecProperty, NetRomPacketRoundTrips) {
  for (int iter = 0; iter < 100; ++iter) {
    NetRomPacket p;
    p.source = RandomAddress(&rng_);
    p.destination = RandomAddress(&rng_);
    p.ttl = static_cast<std::uint8_t>(1 + rng_.NextBelow(255));
    p.opcode = static_cast<std::uint8_t>(rng_.NextBelow(256));
    p.payload = RandomBytes(&rng_, 236);
    auto d = NetRomPacket::Decode(p.Encode());
    ASSERT_TRUE(d);
    EXPECT_EQ(d->source, p.source);
    EXPECT_EQ(d->destination, p.destination);
    EXPECT_EQ(d->ttl, p.ttl);
    EXPECT_EQ(d->opcode, p.opcode);
    EXPECT_EQ(d->payload, p.payload);
  }
}

TEST_P(CodecProperty, CallbookEntryRoundTrips) {
  auto random_string = [this](std::size_t max) {
    std::string s;
    std::size_t n = rng_.NextBelow(max);
    for (std::size_t i = 0; i < n; ++i) {
      s.push_back(static_cast<char>('!' + rng_.NextBelow(94)));
    }
    return s;
  };
  for (int iter = 0; iter < 100; ++iter) {
    CallbookEntry e{random_string(10), random_string(40), random_string(30),
                    random_string(6)};
    auto d = CallbookEntry::Decode(e.Encode());
    ASSERT_TRUE(d);
    EXPECT_EQ(d->callsign, e.callsign);
    EXPECT_EQ(d->name, e.name);
    EXPECT_EQ(d->city, e.city);
    EXPECT_EQ(d->grid, e.grid);
  }
}

TEST_P(CodecProperty, GatewayControlBodyRoundTrips) {
  for (int iter = 0; iter < 100; ++iter) {
    GatewayControlBody g;
    g.amateur_host = IpV4Address(static_cast<std::uint32_t>(rng_.NextU64()));
    g.non_amateur_host = IpV4Address(static_cast<std::uint32_t>(rng_.NextU64()));
    g.ttl_seconds = static_cast<std::uint32_t>(rng_.NextU64());
    g.callsign = RandomAddress(&rng_).ToString();
    g.password.assign(rng_.NextBelow(20), 'x');
    auto d = GatewayControlBody::Decode(g.Encode());
    ASSERT_TRUE(d);
    EXPECT_EQ(d->amateur_host, g.amateur_host);
    EXPECT_EQ(d->non_amateur_host, g.non_amateur_host);
    EXPECT_EQ(d->ttl_seconds, g.ttl_seconds);
    EXPECT_EQ(d->callsign, g.callsign);
    EXPECT_EQ(d->password, g.password);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace upr
