// Whole-system soak: every service the paper mentions, running concurrently
// on one 1200 bps channel through one gateway — telnet, SMTP, FTP, a BBS
// session over connected AX.25, a callbook query over UDP, and the access
// control table — for a simulated hour. The assertions check global
// conservation properties as well as each workload's completion.
#include <gtest/gtest.h>

#include "src/apps/bbs.h"
#include "src/apps/callbook.h"
#include "src/apps/ftp.h"
#include "src/apps/smtp.h"
#include "src/apps/telnet.h"
#include "src/scenario/monitor.h"
#include "src/scenario/testbed.h"

namespace upr {
namespace {

TEST(SystemTest, EverythingAtOnceOnOneChannel) {
  TestbedConfig cfg;
  cfg.radio_pcs = 4;  // 0: telnet user, 1: ftp user, 2: BBS host, 3: BBS user
  cfg.ether_hosts = 2;
  cfg.radio_bit_rate = 2400;  // a busy club channel
  cfg.enforce_access_control = true;
  cfg.seed = 1988;
  Testbed tb(cfg);
  tb.PopulateRadioArp();
  ChannelMonitor monitor(&tb.sim(), &tb.channel());

  // --- servers on the Ethernet ------------------------------------------
  TelnetServer telnetd(&tb.host(0).tcp(), "june");
  MiniSmtpServer smtpd(&tb.host(0).tcp(), "june");
  MiniFtpServer ftpd(&tb.host(1).tcp(), "wally");
  ftpd.store().Put("kernel.patch", Bytes(1500, 0x42));
  CallbookServer callbookd(&tb.host(1).udp());
  callbookd.AddEntry({"N7AKR", "Bob", "Seattle", "CN87"});

  // --- BBS on a radio PC --------------------------------------------------
  Ax25LinkConfig link_cfg;
  link_cfg.t1 = Seconds(15);
  auto bbs_link = BindAx25LinkToDriver(&tb.sim(), tb.pc(2).radio_if(), link_cfg);
  Ax25Bbs bbs(bbs_link.get(), "[club bbs]");
  auto user_link = BindAx25LinkToDriver(&tb.sim(), tb.pc(3).radio_if(), link_cfg);

  // --- workloads, staggered ----------------------------------------------
  // 1. telnet session from PC 0.
  TelnetClient telnet(&tb.pc(0).tcp());
  bool telnet_echo = false;
  telnet.set_line_handler([&](const std::string& line) {
    if (line.find("all systems nominal") != std::string::npos) {
      telnet_echo = true;
    }
  });
  ASSERT_TRUE(telnet.Connect(Testbed::EtherHostIp(0), "neuman"));
  tb.sim().Schedule(Seconds(400), [&] {
    telnet.SendCommand("echo all systems nominal");
  });
  tb.sim().Schedule(Seconds(900), [&] { telnet.Quit(); });

  // 2. FTP download on PC 1.
  MiniFtpClient ftp(&tb.pc(1).tcp());
  Bytes ftp_data;
  tb.sim().Schedule(Seconds(60), [&] {
    ftp.Connect(Testbed::EtherHostIp(1), [](bool) {});
  });
  tb.sim().Schedule(Seconds(500), [&] {
    ftp.Get("kernel.patch", [&](bool ok, const Bytes& d) {
      if (ok) {
        ftp_data = d;
      }
    });
  });

  // 3. BBS session from PC 3.
  auto term = std::make_unique<BbsTerminal>(user_link.get(), Testbed::PcCallsign(2));
  tb.sim().Schedule(Seconds(300), [&] { term->SendLine("S N7AKR club meeting"); });
  tb.sim().Schedule(Seconds(420), [&] {
    term->SendLine("Thursday at the EE building.");
    term->SendLine("/EX");
  });
  tb.sim().Schedule(Seconds(1200), [&] { term->SendLine("B"); });

  // 4. Callbook query from PC 0.
  CallbookClient callbook(&tb.sim(), &tb.pc(0).udp());
  callbook.AddRegionServer('7', Testbed::EtherHostIp(1));
  std::optional<CallbookEntry> callbook_result;
  tb.sim().Schedule(Seconds(700), [&] {
    callbook.Query("N7AKR",
                   [&](std::optional<CallbookEntry> e) { callbook_result = e; },
                   Seconds(900), 4);
  });

  // 5. SMTP from the Ethernet side to PC 0 (allowed: the telnet session
  // opened the return path through the access table).
  MiniSmtpServer pc_mailbox(&tb.pc(0).tcp(), "pc0");
  MiniSmtpClient smtp(&tb.host(0).tcp());
  bool mail_ok = false;
  tb.sim().Schedule(Seconds(1400), [&] {
    MailMessage m;
    m.from = "neuman@june";
    m.recipients = {"op@pc0"};
    m.body = {"saw you on the gateway"};
    smtp.Send(Testbed::RadioPcIp(0), m,
              [&](bool ok, const std::string&) { mail_ok = ok; });
  });

  tb.sim().RunUntil(Seconds(3600));

  // --- workload outcomes --------------------------------------------------
  EXPECT_TRUE(telnet_echo) << "telnet echo never came back";
  EXPECT_EQ(ftp_data.size(), 1500u) << "ftp download incomplete";
  ASSERT_EQ(bbs.messages().size(), 1u);
  EXPECT_EQ(bbs.messages()[0].subject, "club meeting");
  ASSERT_TRUE(callbook_result.has_value());
  EXPECT_EQ(callbook_result->city, "Seattle");
  EXPECT_TRUE(mail_ok) << "mail into the radio net failed";
  EXPECT_EQ(pc_mailbox.mailbox().size(), 1u);

  // --- global invariants ---------------------------------------------------
  // Gateway forwarded everything that crossed; nothing leaked past access
  // control in the wrong direction without authorization.
  const auto& gw = tb.gateway().gateway();
  EXPECT_GT(gw.radio_to_wire(), 10u);
  EXPECT_GT(gw.wire_to_radio(), 10u);
  // The channel carried real traffic but was survivable. (Utilization is
  // averaged over the whole hour; the workloads finish in the first half.)
  EXPECT_GT(tb.channel().Utilization(), 0.01);
  EXPECT_LT(tb.channel().Utilization(), 0.99);
  // Monitor agrees traffic of all kinds was on the air.
  const MonitorCounters& mc = monitor.counters();
  EXPECT_GT(mc.ui_ip, 20u);           // IP datagrams
  EXPECT_GT(mc.connected_mode, 10u);  // the BBS session
  // Frame conservation: every transmission was heard by the monitor.
  EXPECT_EQ(mc.frames, tb.channel().transmissions());
}

TEST(SystemTest, GatewaySurvivesConcurrentTcpStorm) {
  // Eight simultaneous TCP connections through one 9600 bps gateway.
  TestbedConfig cfg;
  cfg.radio_pcs = 4;
  cfg.ether_hosts = 2;
  cfg.radio_bit_rate = 9600;
  cfg.seed = 7;
  Testbed tb(cfg);
  tb.PopulateRadioArp();
  for (std::size_t h = 0; h < 2; ++h) {
    tb.host(h).tcp().Listen(5000, [](TcpConnection* c) {
      c->set_data_handler([c](const Bytes&) {});
      c->set_remote_closed_handler([c] { c->Close(); });
    });
  }
  int completed = 0;
  std::vector<TcpConnection*> conns;
  for (std::size_t pc = 0; pc < 4; ++pc) {
    for (std::size_t h = 0; h < 2; ++h) {
      TcpConnection* c = tb.pc(pc).tcp().Connect(Testbed::EtherHostIp(h), 5000);
      ASSERT_NE(c, nullptr);
      c->set_connected_handler([c] {
        c->Send(Bytes(600, 0x11));
        c->Close();
      });
      c->set_closed_handler([&completed] { ++completed; });
      conns.push_back(c);
    }
  }
  tb.sim().RunUntil(Seconds(3600 * 2));
  EXPECT_EQ(completed, 8);
  for (auto* c : conns) {
    EXPECT_EQ(c->state(), TcpState::kClosed);
  }
}

}  // namespace
}  // namespace upr
