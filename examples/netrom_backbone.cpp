// §2.4's second future-work item: "using another layer three protocol known
// as NET/ROM to pass IP traffic between gateways. Doing this would allow the
// use of an existing, and growing, point-to-point backbone in the same way
// Internet subnets are connected via the ARPANET."
//
// Three NET/ROM nodes form a Seattle - relay - Tacoma chain. The end nodes
// are IP gateways with a NET/ROM tunnel interface; the middle node is a pure
// NET/ROM relay with no IP at all. Routes are learned from NODES broadcasts,
// then a ping and a UDP exchange cross the backbone.
#include <cstdio>

#include "src/apps/bbs.h"
#include "src/netrom/netrom.h"
#include "src/netrom/netrom_transport.h"
#include "src/netrom/node_shell.h"
#include "src/scenario/testbed.h"

using namespace upr;

int main() {
  Simulator sim;
  RadioChannelConfig channel_config;
  channel_config.bit_rate = 1200;
  RadioChannel channel(&sim, channel_config, 404);

  auto make_station = [&](const char* host, const char* call, IpV4Address ip,
                          std::uint64_t seed) {
    RadioStationConfig c;
    c.hostname = host;
    c.callsign = Ax25Address(call, 0);
    c.ip = ip;
    c.seed = seed;
    return std::make_unique<RadioStation>(&sim, &channel, c);
  };
  auto seattle = make_station("seattle-gw", "N7SEA", IpV4Address(44, 24, 0, 1), 1);
  auto relay = make_station("midpoint", "W7MID", IpV4Address(44, 24, 0, 2), 2);
  auto tacoma = make_station("tacoma-gw", "K7TAC", IpV4Address(44, 24, 0, 3), 3);

  NetRomConfig nr;
  nr.learn_neighbors = false;  // enforce the chain: ends are "out of range"
  nr.nodes_interval = Seconds(120);
  auto node_of = [&](RadioStation* s, const char* alias) {
    NetRomConfig c = nr;
    c.alias = alias;
    return std::make_unique<NetRomNode>(&sim, s->radio_if(), c);
  };
  auto sea_node = node_of(seattle.get(), "SEA");
  auto mid_node = node_of(relay.get(), "MID");
  auto tac_node = node_of(tacoma.get(), "TAC");
  sea_node->AddNeighbor(mid_node->callsign(), 200);
  mid_node->AddNeighbor(sea_node->callsign(), 200);
  mid_node->AddNeighbor(tac_node->callsign(), 200);
  tac_node->AddNeighbor(mid_node->callsign(), 200);

  std::printf("letting NODES broadcasts propagate...\n");
  for (int round = 0; round < 3; ++round) {
    sea_node->BroadcastNodes();
    mid_node->BroadcastNodes();
    tac_node->BroadcastNodes();
    sim.RunUntil(sim.Now() + Seconds(240));
  }
  auto route = sea_node->RouteTo(tac_node->callsign());
  if (route) {
    std::printf("seattle's route to %s: via %s, quality %u\n",
                tac_node->callsign().ToString().c_str(),
                route->neighbor.ToString().c_str(), route->quality);
  } else {
    std::printf("route learning FAILED\n");
    return 1;
  }

  // IP tunnel over the backbone: 44.100.0.0/24 spans the two gateways.
  auto tun_a = std::make_unique<NetRomIpInterface>(sea_node.get(), "nr0");
  tun_a->Configure(IpV4Address(44, 100, 0, 1), 24);
  tun_a->MapIpToNode(IpV4Address(44, 100, 0, 2), tac_node->callsign());
  seattle->stack().AddInterface(std::move(tun_a));
  auto tun_b = std::make_unique<NetRomIpInterface>(tac_node.get(), "nr0");
  tun_b->Configure(IpV4Address(44, 100, 0, 2), 24);
  tun_b->MapIpToNode(IpV4Address(44, 100, 0, 1), sea_node->callsign());
  tacoma->stack().AddInterface(std::move(tun_b));

  std::printf("\npinging across the NET/ROM backbone (two radio hops)...\n");
  for (int i = 0; i < 3; ++i) {
    bool done = false;
    seattle->stack().icmp().Ping(IpV4Address(44, 100, 0, 2), 32,
                                 [&](bool ok, SimTime rtt) {
                                   if (ok) {
                                     std::printf("  reply: time=%.2f s\n",
                                                 ToSeconds(rtt));
                                   } else {
                                     std::printf("  timeout\n");
                                   }
                                   done = true;
                                 },
                                 Seconds(600));
    while (!done) {
      sim.Step();
    }
  }

  std::printf("\nrelay node forwarded %llu datagrams; seattle delivered %llu\n",
              static_cast<unsigned long long>(mid_node->forwarded()),
              static_cast<unsigned long long>(sea_node->delivered()));

  // --- Part 2: the §1 user workflow over the same backbone ----------------
  // "users would connect to a node on the network. They would then connect
  //  to the NET/ROM node nearest their destination. Finally, they would
  //  connect to their destination."
  std::printf("\n--- node shell: terminal user crosses the backbone ---\n");
  NetRomTransportConfig tc;
  tc.retransmit_timeout = Seconds(90);
  NetRomTransport sea_transport(sea_node.get(), tc);
  NetRomTransport mid_transport(mid_node.get(), tc);
  NetRomTransport tac_transport(tac_node.get(), tc);
  Ax25LinkConfig lc;
  lc.t1 = Seconds(15);
  auto sea_user_link = MakeNodeUserLink(&sim, seattle->radio_if(), sea_node.get(), lc);
  auto tac_user_link = MakeNodeUserLink(&sim, tacoma->radio_if(), tac_node.get(), lc);
  NetRomNodeShell sea_shell(sea_node.get(), &sea_transport, sea_user_link.get());
  NetRomNodeShell tac_shell(tac_node.get(), &tac_transport, tac_user_link.get());

  // A BBS near Tacoma, and a terminal user near Seattle.
  RadioStationConfig bc;
  bc.hostname = "bbs";
  bc.callsign = *Ax25Address::Parse("W7BBS");
  bc.ip = IpV4Address(44, 24, 0, 9);
  bc.seed = 9;
  auto bbs_station = std::make_unique<RadioStation>(&sim, &channel, bc);
  auto bbs_link = BindAx25LinkToDriver(&sim, bbs_station->radio_if(), lc);
  Ax25Bbs bbs(bbs_link.get(), "[Tacoma BBS]");
  bbs.Post(BbsMessage{.from = "KB7DZ", .to = "", .subject = "hello seattle",
                      .body = {"reachable across the backbone now"}});

  bc.hostname = "user";
  bc.callsign = *Ax25Address::Parse("KD7NM");
  bc.ip = IpV4Address(44, 24, 0, 8);
  bc.seed = 8;
  auto user_station = std::make_unique<RadioStation>(&sim, &channel, bc);
  auto user_link = BindAx25LinkToDriver(&sim, user_station->radio_if(), lc);
  Ax25Connection* session = user_link->Connect(*Ax25Address::Parse("N7SEA"));
  session->set_data_handler([](const Bytes& d) {
    std::fwrite(d.data(), 1, d.size(), stdout);
  });
  sim.RunUntil(sim.Now() + Seconds(120));
  session->Send(BytesFromString("NODES\r\n"));
  sim.RunUntil(sim.Now() + Seconds(180));
  session->Send(BytesFromString("C TAC\r\n"));
  sim.RunUntil(sim.Now() + Seconds(400));
  session->Send(BytesFromString("C W7BBS\r\n"));
  sim.RunUntil(sim.Now() + Seconds(400));
  session->Send(BytesFromString("R 1\r\n"));
  sim.RunUntil(sim.Now() + Seconds(500));
  session->Send(BytesFromString("B\r\n"));
  sim.RunUntil(sim.Now() + Seconds(300));
  std::printf("\nshells spliced: seattle %llu, tacoma %llu\n",
              static_cast<unsigned long long>(sea_shell.circuits_spliced()),
              static_cast<unsigned long long>(tac_shell.circuits_spliced()));
  return 0;
}
