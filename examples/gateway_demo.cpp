// The paper's §2.3 "Setup and Testing" scenario, end to end:
//
//   "After a few rounds of debugging, we were able to telnet from an
//    isolated IBM PC — connected to only a power outlet and a radio — to a
//    system that was on our Ethernet by way of the new gateway."
//
// This example builds the Seattle deployment (radio PC, MicroVAX gateway at
// 44.24.0.28, Ethernet host), runs a telnet session from the PC through the
// gateway, then sends mail back the other way, and finishes with the §4.3
// access-control demonstration.
#include <cstdio>

#include "src/apps/smtp.h"
#include "src/apps/telnet.h"
#include "src/scenario/testbed.h"

using namespace upr;

int main() {
  TestbedConfig config;
  config.radio_pcs = 1;
  config.ether_hosts = 1;
  config.radio_bit_rate = 1200;
  config.enforce_access_control = true;  // the §4.3 policy
  Testbed tb(config);
  tb.PopulateRadioArp();

  std::printf("topology:\n");
  std::printf("  radio PC   %s (%s)\n", Testbed::RadioPcIp(0).ToString().c_str(),
              Testbed::PcCallsign(0).ToString().c_str());
  std::printf("  gateway    %s radio / %s ether (%s)\n",
              Testbed::GatewayRadioIp().ToString().c_str(),
              Testbed::GatewayEtherIp().ToString().c_str(),
              Testbed::GatewayCallsign().ToString().c_str());
  std::printf("  ether host %s\n\n", Testbed::EtherHostIp(0).ToString().c_str());

  // --- Part 1: telnet from the isolated PC to the Ethernet host. ---------
  TelnetServer telnetd(&tb.host(0).tcp(), "june.cs.washington.edu");
  TelnetClient telnet(&tb.pc(0).tcp());
  telnet.set_line_handler([](const std::string& line) {
    std::printf("  [telnet] %s\n", line.c_str());
  });
  std::printf("part 1: telnet PC -> gateway -> Ethernet host\n");
  telnet.Connect(Testbed::EtherHostIp(0), "neuman");
  tb.sim().RunUntil(Seconds(300));
  telnet.SendCommand("echo hello from the packet radio network");
  tb.sim().RunUntil(Seconds(600));
  telnet.Quit();
  tb.sim().RunUntil(Seconds(900));

  // --- Part 2: mail from the Ethernet side back to the PC. ----------------
  // The PC's telnet session opened the §4.3 return path for host0, so the
  // wire-side SMTP connection is allowed through.
  std::printf("\npart 2: SMTP Ethernet host -> gateway -> radio PC\n");
  MiniSmtpServer smtpd(&tb.pc(0).tcp(), "pc0.ampr.org");
  MiniSmtpClient smtp(&tb.host(0).tcp());
  MailMessage m;
  m.from = "neuman@june";
  m.recipients = {"op@pc0.ampr.org"};
  m.body = {"Subject: it works", "", "Saw your telnet session. The gateway lives."};
  smtp.Send(Testbed::RadioPcIp(0), m, [](bool ok, const std::string& detail) {
    std::printf("  [smtp] delivery %s (%s)\n", ok ? "succeeded" : "FAILED",
                detail.c_str());
  });
  tb.sim().RunUntil(Seconds(2400));
  std::printf("  [smtp] PC mailbox holds %zu message(s)\n",
              smtpd.mailbox().size());

  // --- Part 3: a stranger on the Ethernet is refused (§4.3). --------------
  std::printf("\npart 3: unauthorized wire-side ping is dropped by the table\n");
  bool called = false;
  bool ok_flag = true;
  tb.host(0).stack().icmp().Ping(IpV4Address(44, 24, 0, 99), 8,
                                 [&](bool ok, SimTime) {
                                   called = true;
                                   ok_flag = ok;
                                 },
                                 Seconds(120));
  tb.sim().RunUntil(Seconds(2700));
  std::printf("  ping to unknown amateur host: %s\n",
              (called && !ok_flag) ? "timed out (denied), as designed" : "UNEXPECTED");

  std::printf("\ngateway counters: %llu radio->wire, %llu wire->radio, %llu denied, "
              "table size %zu\n",
              static_cast<unsigned long long>(tb.gateway().gateway().radio_to_wire()),
              static_cast<unsigned long long>(tb.gateway().gateway().wire_to_radio()),
              static_cast<unsigned long long>(tb.gateway().gateway().denied()),
              tb.gateway().gateway().table().size());
  return 0;
}
