// The pre-IP world of §1: terminal users, digipeaters, and a packet BBS over
// connected-mode AX.25 — all running above the driver's non-IP path, plus
// the §2.4 application gateway giving one of those users a bridged telnet
// session on an Internet host without running IP themselves.
#include <cstdio>

#include "src/apps/app_gateway.h"
#include "src/apps/bbs.h"
#include "src/apps/telnet.h"
#include "src/scenario/testbed.h"

using namespace upr;

int main() {
  TestbedConfig config;
  config.radio_pcs = 3;  // station 0: BBS host; 1, 2: users
  config.ether_hosts = 1;
  config.digipeaters = 1;
  config.radio_bit_rate = 1200;
  Testbed tb(config);
  tb.PopulateRadioArp();

  Ax25LinkConfig link_config;
  link_config.t1 = Seconds(12);

  // The BBS station.
  auto bbs_link = BindAx25LinkToDriver(&tb.sim(), tb.pc(0).radio_if(), link_config);
  Ax25Bbs bbs(bbs_link.get(), "[Seattle Packet BBS - messages welcome]");
  bbs.Post(BbsMessage{.from = "N7AKR", .to = "", .subject = "IP gateway online",
                      .body = {"The MicroVAX now gateways net 44 to the Internet.",
                               "Point your default route at 44.24.0.28."}});

  // User 1 connects directly; user 2 goes through the digipeater.
  auto user1_link = BindAx25LinkToDriver(&tb.sim(), tb.pc(1).radio_if(), link_config);
  auto user2_link = BindAx25LinkToDriver(&tb.sim(), tb.pc(2).radio_if(), link_config);

  BbsTerminal user1(user1_link.get(), Testbed::PcCallsign(0));
  user1.set_line_handler([](const std::string& line) {
    std::printf("  [user1] %s\n", line.c_str());
  });
  std::printf("user1 (%s) connecting to the BBS directly...\n",
              Testbed::PcCallsign(1).ToString().c_str());
  tb.sim().RunUntil(Seconds(120));

  user1.SendLine("L");
  tb.sim().RunUntil(Seconds(240));
  user1.SendLine("R 1");
  tb.sim().RunUntil(Seconds(420));
  user1.SendLine("S KD7AC antenna party");
  tb.sim().RunUntil(Seconds(500));
  user1.SendLine("Saturday at the club site. Bring coax.");
  user1.SendLine("/EX");
  tb.sim().RunUntil(Seconds(700));
  user1.SendLine("B");
  tb.sim().RunUntil(Seconds(800));

  std::printf("\nuser2 (%s) connecting via digipeater %s...\n",
              Testbed::PcCallsign(2).ToString().c_str(),
              Testbed::DigiCallsign(0).ToString().c_str());
  BbsTerminal user2(user2_link.get(), Testbed::PcCallsign(0),
                    {Ax25Digipeater{Testbed::DigiCallsign(0), false}});
  user2.set_line_handler([](const std::string& line) {
    std::printf("  [user2] %s\n", line.c_str());
  });
  tb.sim().RunUntil(Seconds(1000));
  user2.SendLine("L");
  tb.sim().RunUntil(Seconds(1300));
  user2.SendLine("R 2");
  tb.sim().RunUntil(Seconds(1600));
  user2.SendLine("B");
  tb.sim().RunUntil(Seconds(1700));

  std::printf("\nBBS stats: %llu sessions, %llu commands, %zu messages stored\n",
              static_cast<unsigned long long>(bbs.sessions()),
              static_cast<unsigned long long>(bbs.commands()), bbs.messages().size());
  std::printf("digipeater repeated %llu frames\n",
              static_cast<unsigned long long>(tb.digi(0).frames_repeated()));

  // --- §2.4: the same terminal user reaches a real telnet host through the
  // application gateway, still without IP on their own station. ------------
  std::printf("\nuser1 now telnets to an Internet host via the application "
              "gateway (%s)...\n",
              Testbed::GatewayCallsign().ToString().c_str());
  TelnetServer telnetd(&tb.host(0).tcp(), "june.cs.washington.edu");
  Ax25TelnetGateway appgw(&tb.sim(), tb.gateway().radio_if(), &tb.gateway().tcp(),
                          Testbed::EtherHostIp(0), kTelnetPort, link_config);
  Ax25Connection* session = user1_link->Connect(Testbed::GatewayCallsign());
  session->set_data_handler([](const Bytes& d) {
    std::fwrite(d.data(), 1, d.size(), stdout);
  });
  tb.sim().RunUntil(Seconds(2200));
  session->Send(BytesFromString("kd7ab\r\n"));
  tb.sim().RunUntil(Seconds(2700));
  session->Send(BytesFromString("echo no IP stack was harmed\r\n"));
  tb.sim().RunUntil(Seconds(3300));
  session->Send(BytesFromString("logout\r\n"));
  tb.sim().RunUntil(Seconds(3900));
  std::printf("\napplication gateway bridged %llu session(s), %llu B to net, "
              "%llu B to radio\n",
              static_cast<unsigned long long>(appgw.sessions_bridged()),
              static_cast<unsigned long long>(appgw.bytes_radio_to_net()),
              static_cast<unsigned long long>(appgw.bytes_net_to_radio()));
  return 0;
}
