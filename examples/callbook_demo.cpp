// §5's distributed callbook: "data for a particular country, or part of a
// country, could be maintained on a system local to that area. Given a call
// sign, an application running on a PC could determine what area the call
// sign is from, and then send off a query to the appropriate server."
//
// Two regional servers live on the Ethernet; a packet-radio PC queries them
// through the gateway, and prints the bearing-ready grid squares (§5's
// automatic antenna rotation idea).
#include <cstdio>

#include "src/apps/callbook.h"
#include "src/scenario/testbed.h"

using namespace upr;

int main() {
  TestbedConfig config;
  config.radio_pcs = 1;
  config.ether_hosts = 2;
  config.radio_bit_rate = 1200;
  Testbed tb(config);
  tb.PopulateRadioArp();

  // Region 7 (Pacific Northwest) server on host 0.
  CallbookServer region7(&tb.host(0).udp());
  region7.AddEntry({"N7AKR", "Bob Albrightson", "Seattle WA", "CN87"});
  region7.AddEntry({"KB7DZ", "Dennis Goodwin", "Tacoma WA", "CN87"});
  region7.AddEntry({"KD7NM", "Bob Donnell", "Seattle WA", "CN87"});

  // Region 1 (New England) server on host 1.
  CallbookServer region1(&tb.host(1).udp());
  region1.AddEntry({"W1GOH", "Steve Ward", "Cambridge MA", "FN42"});

  CallbookClient client(&tb.sim(), &tb.pc(0).udp());
  client.AddRegionServer('7', Testbed::EtherHostIp(0));
  client.AddRegionServer('1', Testbed::EtherHostIp(1));

  const char* queries[] = {"N7AKR", "W1GOH", "KB7DZ", "K7QQQ", "NOCALL"};
  int outstanding = 0;
  for (const char* call : queries) {
    ++outstanding;
    std::string callsign = call;
    client.Query(callsign, [callsign, &outstanding](std::optional<CallbookEntry> e) {
      if (e) {
        std::printf("%-6s -> %s, %s (grid %s)\n", callsign.c_str(), e->name.c_str(),
                    e->city.c_str(), e->grid.c_str());
      } else {
        std::printf("%-6s -> not found\n", callsign.c_str());
      }
      --outstanding;
    });
    // Stagger the queries: the 1200 bps channel serializes them anyway.
    tb.sim().RunUntil(tb.sim().Now() + Seconds(120));
  }
  tb.sim().RunUntil(tb.sim().Now() + Seconds(600));

  std::printf("\nclient sent %llu queries (%llu timeouts); region 7 served %llu, "
              "region 1 served %llu\n",
              static_cast<unsigned long long>(client.queries_sent()),
              static_cast<unsigned long long>(client.timeouts()),
              static_cast<unsigned long long>(region7.queries_served()),
              static_cast<unsigned long long>(region1.queries_served()));
  return outstanding == 0 ? 0 : 1;
}
