// The world before the paper (§1): two operators with dumb terminals and
// stock TAPR-style TNCs. No computers, no IP — the TNC's own command
// interpreter holds the AX.25 connection ("Initially, most packet radio
// stations consisted of terminals instead of computers. Once users had
// established communication with one another, they simply typed streams of
// data at each other.").
//
// Alice connects to Bob directly for a keyboard-to-keyboard chat, then to
// the BBS via a digipeater, then mail forwarding carries her message to
// Bob's home BBS — everything the paper's community had working before the
// Ultrix gateway added the Internet on top.
#include <cstdio>

#include "src/apps/bbs.h"
#include "src/radio/digipeater.h"
#include "src/scenario/testbed.h"
#include "src/tnc/command_tnc.h"

using namespace upr;

namespace {

// A dumb terminal that prints everything the TNC says.
struct Terminal {
  Terminal(Simulator* sim, const char* who) : line(sim, 1200), name(who) {
    line.a().set_receive_handler([this](std::uint8_t b) {
      if (b == '\r') {
        return;
      }
      if (b == '\n') {
        std::printf("  [%s] %s\n", name, pending.c_str());
        pending.clear();
      } else {
        pending.push_back(static_cast<char>(b));
        // Prompts have no newline; flush them when they look complete.
        if (pending == "cmd: ") {
          std::printf("  [%s] %s\n", name, pending.c_str());
          pending.clear();
        }
      }
    });
  }
  void Type(const std::string& text) { line.a().Write(BytesFromString(text + "\r\n")); }
  SerialLine line;
  const char* name;
  std::string pending;
};

}  // namespace

int main() {
  Simulator sim;
  RadioChannelConfig rc;
  rc.bit_rate = 1200;
  RadioChannel channel(&sim, rc, 88);

  Terminal alice_term(&sim, "alice");
  Terminal bob_term(&sim, "bob");
  CommandTncConfig tnc_cfg;
  tnc_cfg.link.t1 = Seconds(10);
  tnc_cfg.mycall = *Ax25Address::Parse("KD7AA");
  CommandModeTnc alice_tnc(&sim, &channel, &alice_term.line.b(), "alice", tnc_cfg, 1);
  tnc_cfg.mycall = *Ax25Address::Parse("KD7BB");
  CommandModeTnc bob_tnc(&sim, &channel, &bob_term.line.b(), "bob", tnc_cfg, 2);

  std::printf("--- keyboard to keyboard (%s -> %s) ---\n", "KD7AA", "KD7BB");
  sim.RunUntil(Seconds(5));
  alice_term.Type("CONNECT KD7BB");
  sim.RunUntil(Seconds(60));
  alice_term.Type("hi bob, got your QSL card today. 73!");
  sim.RunUntil(Seconds(120));
  bob_term.Type("fb alice. hear the UW machine gateways to the internet now?");
  sim.RunUntil(Seconds(240));
  alice_term.Type(std::string(1, static_cast<char>(kTncEscape)) );
  sim.RunUntil(Seconds(250));
  alice_term.Type("DISCONNECT");
  sim.RunUntil(Seconds(300));

  // --- The BBS scene: digipeater + two BBSs with mail forwarding. ---------
  std::printf("\n--- via digipeater to the BBS; mail forwarded between towns ---\n");
  Digipeater digi(&sim, &channel, *Ax25Address::Parse("WB7RA"));

  RadioStationConfig bc;
  bc.hostname = "sea-bbs";
  bc.callsign = *Ax25Address::Parse("W7SEA");
  bc.ip = IpV4Address(44, 24, 0, 2);
  bc.seed = 5;
  RadioStation seattle_host(&sim, &channel, bc);
  bc.hostname = "tac-bbs";
  bc.callsign = *Ax25Address::Parse("W7TAC");
  bc.ip = IpV4Address(44, 24, 0, 3);
  bc.seed = 6;
  RadioStation tacoma_host(&sim, &channel, bc);
  Ax25LinkConfig link_cfg;
  link_cfg.t1 = Seconds(10);
  auto sea_link = BindAx25LinkToDriver(&sim, seattle_host.radio_if(), link_cfg);
  auto tac_link = BindAx25LinkToDriver(&sim, tacoma_host.radio_if(), link_cfg);
  Ax25Bbs seattle(sea_link.get(), "[Seattle BBS]");
  Ax25Bbs tacoma(tac_link.get(), "[Tacoma BBS]");
  seattle.SetUserHome("KD7BB", *Ax25Address::Parse("W7TAC"));
  seattle.StartForwarding(Seconds(300));

  alice_term.Type("CONNECT W7SEA VIA WB7RA");
  sim.RunUntil(Seconds(500));
  alice_term.Type("S KD7BB antenna raising");
  sim.RunUntil(Seconds(600));
  alice_term.Type("Tower goes up saturday. Bring gloves.");
  alice_term.Type("/EX");
  sim.RunUntil(Seconds(800));
  alice_term.Type("B");
  sim.RunUntil(Seconds(2000));

  std::printf("\n--- results ---\n");
  std::printf("digipeater relayed %llu frames\n",
              static_cast<unsigned long long>(digi.frames_repeated()));
  std::printf("seattle BBS: %zu message(s), %llu forwarded out\n",
              seattle.messages().size(),
              static_cast<unsigned long long>(seattle.messages_forwarded()));
  std::printf("tacoma BBS:  %zu message(s) (KD7BB's mail arrived: %s)\n",
              tacoma.messages().size(),
              !tacoma.messages().empty() && tacoma.messages()[0].to == "KD7BB"
                  ? "yes"
                  : "no");
  return 0;
}
