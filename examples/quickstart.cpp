// Quickstart: bring up the paper's figure-1 pipeline and ping across it.
//
// Two packet-radio stations share a 1200 bps channel. Each is a full stack:
//   Host (IP/ICMP) — packet radio driver — RS-232 — KISS TNC — radio.
// We resolve the peer with AX.25 ARP, ping it, and print what happened at
// every layer.
//
// Build: cmake --build build --target example_quickstart
// Run:   ./build/examples/example_quickstart
#include <cstdio>

#include "src/scenario/testbed.h"

using namespace upr;

int main() {
  Simulator sim;

  // One VHF channel at the paper's 1200 bits per second.
  RadioChannelConfig channel_config;
  channel_config.bit_rate = 1200;
  RadioChannel channel(&sim, channel_config, /*seed=*/2026);

  // Station A: callsign KD7AA, AMPRnet address 44.24.0.10.
  RadioStationConfig a_config;
  a_config.hostname = "alice-pc";
  a_config.callsign = Ax25Address("KD7AA", 0);
  a_config.ip = IpV4Address(44, 24, 0, 10);
  a_config.seed = 1;
  RadioStation alice(&sim, &channel, a_config);

  // Station B: callsign KD7BB, 44.24.0.11.
  RadioStationConfig b_config;
  b_config.hostname = "bob-pc";
  b_config.callsign = Ax25Address("KD7BB", 0);
  b_config.ip = IpV4Address(44, 24, 0, 11);
  b_config.seed = 2;
  RadioStation bob(&sim, &channel, b_config);

  std::printf("quickstart: %s (%s) pinging %s (%s) over a %llu bps channel\n\n",
              alice.ip().ToString().c_str(), alice.callsign().ToString().c_str(),
              bob.ip().ToString().c_str(), bob.callsign().ToString().c_str(),
              static_cast<unsigned long long>(channel.bit_rate()));

  // No static ARP: the first packet triggers an AX.25 ARP exchange on the
  // air (§2.3 of the paper).
  int remaining = 3;
  std::function<void()> ping = [&] {
    alice.stack().icmp().Ping(bob.ip(), 56, [&](bool ok, SimTime rtt) {
      if (ok) {
        std::printf("64 bytes from %s: time=%.2f s\n", bob.ip().ToString().c_str(),
                    ToSeconds(rtt));
      } else {
        std::printf("ping timed out\n");
      }
      if (--remaining > 0) {
        sim.Schedule(Seconds(1), ping);
      }
    });
  };
  ping();
  sim.RunUntil(Seconds(600));

  std::printf("\n--- layer-by-layer accounting ---\n");
  std::printf("ARP:    %llu requests, cache resolved %s\n",
              static_cast<unsigned long long>(alice.radio_if()->arp().requests_sent()),
              alice.radio_if()->arp().Lookup(bob.ip()) ? "yes" : "no");
  const DriverStats& ds = bob.radio_if()->driver_stats();
  std::printf("driver: %llu per-character interrupts, %llu IP packets in, "
              "%.1f ms of interrupt CPU time\n",
              static_cast<unsigned long long>(ds.interrupts),
              static_cast<unsigned long long>(ds.ip_in), ToMillis(ds.interrupt_cpu_time));
  std::printf("tnc:    %llu frames to host, %llu FCS errors\n",
              static_cast<unsigned long long>(bob.tnc().frames_to_host()),
              static_cast<unsigned long long>(bob.tnc().fcs_errors()));
  std::printf("radio:  %llu transmissions, %llu collisions, %.1f%% utilization\n",
              static_cast<unsigned long long>(channel.transmissions()),
              static_cast<unsigned long long>(channel.collisions()),
              channel.Utilization() * 100.0);
  return 0;
}
