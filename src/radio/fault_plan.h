// upr::fault — deterministic record/replay of channel fault decisions.
//
// The paper's whole argument for KISS (§3) is that the host must cope with a
// lossy shared channel, yet a fault seen once in CI used to be gone forever:
// loss/BER/collision outcomes were fresh RNG draws whose consumption order
// depends on event scheduling. This module captures every stochastic channel
// decision — the per-frame loss roll, the BER survival roll, the collision
// outcome and the MAC's p-persistence roll — into a *fault schedule* keyed by
// frame identity (sim time, wire length, HDLC CRC, port name). The schedule
// is serialized to a sidecar `.faults` file next to the pcapng trace, with a
// strict in-repo reader mirroring `src/trace/pcapng_reader`.
//
// Two modes share one ambient Session (installed like trace::Install; the
// simulator is single-threaded, so a process-wide pointer is safe):
//
//   * record — every decision point invokes its RNG roll exactly as an
//     uninstrumented run would (recording never perturbs the run) and the
//     outcome is appended to the schedule;
//   * replay — the roll is NOT invoked (no RNG is consumed) and the next
//     scheduled outcome for that (port, kind) stream is returned instead.
//     Identity mismatches and schedule exhaustion are counted, never fatal,
//     so a diverging replay still terminates and can be diagnosed.
//
// A replayed run therefore reproduces the recorded run exactly — identical
// per-layer trace event sequence, identical netstat counters — even when the
// replaying binary's RNG seeds differ, which is what turns "CI caught a
// flake" into "CI hands you a deterministic reproducer".
#ifndef SRC_RADIO_FAULT_PLAN_H_
#define SRC_RADIO_FAULT_PLAN_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/sim/simulator.h"
#include "src/util/byte_buffer.h"

namespace upr::fault {

// Which stochastic decision a schedule entry pins down.
enum class Kind : std::uint8_t {
  kLoss = 0,       // per-frame random loss roll (outcome: frame lost)
  kBitError = 1,   // BER survival roll (outcome: frame corrupted)
  kCollision = 2,  // overlap outcome at tx end (outcome: frame collided)
  kPPersist = 3,   // MAC p-persistence roll (outcome: transmission deferred)
};
inline constexpr int kKindCount = 4;
const char* KindName(Kind kind);

// One recorded decision. `outcome` is true when the fault happened (frame
// lost / corrupted / collided / transmission deferred). The frame identity —
// timestamp, wire length and HDLC CRC — lets replay verify it is applying
// the outcome to the same frame the recorder saw.
struct Event {
  SimTime ts = 0;
  Kind kind = Kind::kLoss;
  bool outcome = false;
  std::uint32_t frame_len = 0;
  std::uint16_t frame_crc = 0;
  std::string port;

  std::string ToString() const;
  bool operator==(const Event&) const = default;
};

// A serializable fault schedule: the events in decision order plus a
// free-form `meta` string (uprsim stores the scenario flags there so the
// artifact alone says how to re-execute the run).
struct Schedule {
  std::string meta;
  std::vector<Event> events;

  Bytes Serialize() const;
  // Strict parse — any structural violation (bad magic/version, undersized
  // record, unknown kind, nonzero padding, trailing bytes) returns nullopt
  // and sets `*error` when given.
  static std::optional<Schedule> Parse(ByteView file,
                                       std::string* error = nullptr);

  bool SaveToFile(const std::string& path) const;
  static std::optional<Schedule> LoadFromFile(const std::string& path,
                                              std::string* error = nullptr);
};

struct SessionStats {
  std::uint64_t recorded = 0;    // decisions appended (record mode)
  std::uint64_t replayed = 0;    // decisions served from the schedule
  std::uint64_t mismatches = 0;  // identity disagreed with the schedule
  std::uint64_t exhausted = 0;   // decisions past the schedule's end
  std::uint64_t per_kind[kKindCount] = {};
};

class Session {
 public:
  enum class Mode { kRecord, kReplay };

  // Recording session: starts with an empty schedule.
  explicit Session(Simulator* sim);
  // Replaying session: serves outcomes from `schedule`.
  Session(Simulator* sim, Schedule schedule);

  Mode mode() const { return mode_; }
  bool replaying() const { return mode_ == Mode::kReplay; }

  // The one decision hook. Record mode invokes `roll()` (consuming the
  // caller's RNG exactly as an uninstrumented run would) and records its
  // outcome. Replay mode returns the next scheduled outcome for this
  // (port, kind) stream without touching `roll`; an identity mismatch is
  // counted, and an exhausted stream falls back to `roll()` so a diverging
  // run still makes progress.
  bool Decide(Kind kind, std::string_view port, ByteView frame,
              const std::function<bool()>& roll);

  const Schedule& schedule() const { return schedule_; }
  Schedule& schedule() { return schedule_; }
  const SessionStats& stats() const { return stats_; }

  // Replay events not yet consumed.
  std::size_t remaining() const;
  // True when a replay consumed the whole schedule with no mismatches and
  // no post-schedule decisions — the "this run is the recorded run" check.
  bool ReplayClean() const;
  // First few mismatch diagnostics ("expected <event>, got <event>").
  const std::vector<std::string>& problems() const { return problems_; }

 private:
  Event MakeEvent(Kind kind, std::string_view port, ByteView frame,
                  bool outcome) const;

  Simulator* sim_;
  Mode mode_;
  Schedule schedule_;
  SessionStats stats_;
  // Replay cursors: per (port, kind) FIFO of indices into schedule_.events,
  // so local verification stays robust even if unrelated streams drift.
  std::map<std::string, std::deque<std::uint32_t>> cursors_;
  std::vector<std::string> problems_;
};

// The installed session, or nullptr. Decision points check this — the one
// branch an uninstrumented run costs (the trace::Active discipline).
Session* Active();
// Installs `s` as the process-wide session (replacing any previous one).
void Install(Session* s);
// Clears the installation if `s` is current; no-op otherwise.
void Uninstall(Session* s);

// RAII install/uninstall, for tests and tools.
class ScopedInstall {
 public:
  explicit ScopedInstall(Session* s) : s_(s) { Install(s); }
  ~ScopedInstall() { Uninstall(s_); }
  ScopedInstall(const ScopedInstall&) = delete;
  ScopedInstall& operator=(const ScopedInstall&) = delete;

 private:
  Session* s_;
};

}  // namespace upr::fault

#endif  // SRC_RADIO_FAULT_PLAN_H_
