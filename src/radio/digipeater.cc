#include "src/radio/digipeater.h"

#include "src/util/crc.h"
#include "src/util/logging.h"

namespace upr {

namespace {
constexpr const char* kTag = "digi";
}  // namespace

Digipeater::Digipeater(Simulator* sim, RadioChannel* channel, Ax25Address callsign,
                       MacParams mac, std::uint64_t seed)
    : sim_(sim), callsign_(std::move(callsign)) {
  port_ = channel->CreatePort("digi:" + callsign_.ToString());
  mac_ = std::make_unique<CsmaMac>(sim, port_, mac, seed);
  port_->set_receive_handler(
      [this](const Bytes& wire, bool corrupted) { OnReceive(wire, corrupted); });
}

void Digipeater::OnReceive(const Bytes& wire, bool corrupted) {
  ++frames_heard_;
  // FCS check: corrupted frames fail; also verify the trailing CRC.
  if (corrupted || wire.size() < 2) {
    ++frames_dropped_;
    return;
  }
  Bytes body(wire.begin(), wire.end() - 2);
  std::uint16_t fcs = static_cast<std::uint16_t>(wire[wire.size() - 2] |
                                                 wire[wire.size() - 1] << 8);
  if (Crc16Ccitt(body) != fcs) {
    ++frames_dropped_;
    return;
  }
  auto frame = Ax25Frame::Decode(body);
  if (!frame) {
    ++frames_dropped_;
    return;
  }
  Ax25Digipeater* next = frame->NextDigipeater();
  if (next == nullptr || next->address != callsign_) {
    return;  // not addressed through us (or already fully repeated)
  }
  next->repeated = true;
  ++frames_repeated_;
  UPR_TRACE(kTag, "%s repeating %s", callsign_.ToString().c_str(),
            frame->ToString().c_str());
  Bytes out = frame->Encode();
  std::uint16_t new_fcs = Crc16Ccitt(out);
  out.push_back(static_cast<std::uint8_t>(new_fcs & 0xFF));
  out.push_back(static_cast<std::uint8_t>(new_fcs >> 8));
  mac_->Enqueue(std::move(out));
}

}  // namespace upr
