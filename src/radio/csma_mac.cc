#include "src/radio/csma_mac.h"

#include "src/radio/fault_plan.h"
#include "src/trace/trace.h"

namespace upr {

namespace {

void TraceDefer(RadioPort* port, const Bytes& frame, const char* why) {
  if (auto* t = trace::Active()) {
    t->Record(trace::Layer::kMac, trace::Kind::kMacDefer, trace::Dir::kTx,
              port->name(), frame, why);
  }
}

}  // namespace

// The seed is mixed with the port name: co-channel MACs sharing a default
// seed would otherwise roll identical p-persistence sequences and back off
// in lockstep, synchronizing their collisions forever.
CsmaMac::CsmaMac(Simulator* sim, RadioPort* port, MacParams params,
                 std::uint64_t seed)
    : sim_(sim), port_(port), params_(params), rng_(MixSeed(seed, port->name())) {}

void CsmaMac::Enqueue(Bytes frame) {
  queue_.push_back(std::move(frame));
  TrySend();
}

void CsmaMac::ScheduleRetry() {
  if (retry_pending_) {
    return;
  }
  retry_pending_ = true;
  sim_->Schedule(params_.slot_time, [this] {
    retry_pending_ = false;
    TrySend();
  });
}

void CsmaMac::TrySend() {
  if (busy_ || queue_.empty()) {
    return;
  }
  if (!params_.full_duplex) {
    if (port_->CarrierBusy()) {
      ++deferrals_;
      TraceDefer(port_, queue_.front(), "carrier-busy");
      ScheduleRetry();
      return;
    }
    // p-persistence: transmit now with probability p, else wait a slot. The
    // roll goes through the fault schedule when a session is installed
    // (outcome polarity: true = deferred, matching the other fault kinds).
    auto roll = [&] { return !rng_.Chance(params_.persistence); };
    fault::Session* fs = fault::Active();
    bool deferred = fs != nullptr ? fs->Decide(fault::Kind::kPPersist,
                                               port_->name(), queue_.front(), roll)
                                  : roll();
    if (deferred) {
      ++deferrals_;
      TraceDefer(port_, queue_.front(), "p-persist");
      ScheduleRetry();
      return;
    }
  }
  busy_ = true;
  Bytes frame = std::move(queue_.front());
  queue_.pop_front();
  ++frames_sent_;
  // Committed: the transmitter keys after the turnaround latency without
  // re-sensing (the collision vulnerability window). Zero turnaround keys
  // synchronously — ideal carrier sense, collision-free.
  auto key_up = [this, frame = std::move(frame)]() mutable {
    if (port_->transmitting()) {
      // The port was keyed (by user-level code, outside this MAC) during the
      // turnaround window. StartTransmit would reject the frame and lose it;
      // put it back at the head of the queue and retry after a slot.
      ++deferrals_;
      queue_.push_front(std::move(frame));
      busy_ = false;
      ScheduleRetry();
      return;
    }
    port_->StartTransmit(std::move(frame), params_.tx_delay, params_.tx_tail, [this] {
      busy_ = false;
      TrySend();
    });
  };
  if (params_.turnaround == 0) {
    key_up();
  } else {
    sim_->Schedule(params_.turnaround, std::move(key_up));
  }
}

}  // namespace upr
