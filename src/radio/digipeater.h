// Digipeater: a relay station on the same frequency (§1 of the paper).
//
// Listens to every frame on the channel; when a frame's next un-repeated
// digipeater entry names this station, it sets the H ("has been repeated")
// bit and retransmits the frame through its own CSMA MAC. Frames carry a
// real HDLC FCS on the air, which is re-computed after the H-bit edit.
#ifndef SRC_RADIO_DIGIPEATER_H_
#define SRC_RADIO_DIGIPEATER_H_

#include <cstdint>
#include <memory>

#include "src/ax25/frame.h"
#include "src/radio/channel.h"
#include "src/radio/csma_mac.h"
#include "src/sim/simulator.h"

namespace upr {

class Digipeater {
 public:
  // `seed` feeds the digipeater's CsmaMac, which mixes it with the port name
  // ("digi:<callsign>") — two digipeaters sharing the default seed still get
  // distinct p-persistence streams.
  Digipeater(Simulator* sim, RadioChannel* channel, Ax25Address callsign,
             MacParams mac = {}, std::uint64_t seed = 11);

  const Ax25Address& callsign() const { return callsign_; }

  std::uint64_t frames_repeated() const { return frames_repeated_; }
  std::uint64_t frames_heard() const { return frames_heard_; }
  std::uint64_t frames_dropped() const { return frames_dropped_; }

 private:
  void OnReceive(const Bytes& wire, bool corrupted);

  Simulator* sim_;
  Ax25Address callsign_;
  RadioPort* port_;
  std::unique_ptr<CsmaMac> mac_;
  std::uint64_t frames_repeated_ = 0;
  std::uint64_t frames_heard_ = 0;
  std::uint64_t frames_dropped_ = 0;
};

}  // namespace upr

#endif  // SRC_RADIO_DIGIPEATER_H_
