// Shared-medium radio channel simulation.
//
// All stations on one frequency share one half-duplex broadcast channel (the
// paper's 1200 bps VHF subnet). A transmission occupies the channel for
// keyup (TXDELAY) + frame bits / bit rate + txtail. Overlapping transmissions
// collide: every overlapped frame is corrupted. Receivers get each frame at
// end-of-transmission; corrupted frames arrive with mangled bytes so the
// TNC's FCS check fails, exactly as on the air. A port that was itself
// transmitting during a frame misses it entirely (half duplex).
#ifndef SRC_RADIO_CHANNEL_H_
#define SRC_RADIO_CHANNEL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/sim/simulator.h"
#include "src/util/byte_buffer.h"
#include "src/util/random.h"

namespace upr {

struct RadioChannelConfig {
  std::uint64_t bit_rate = 1200;   // bits per second on the air
  double loss_rate = 0.0;          // independent per-frame random loss
  // Independent bit-error rate: a frame of n bits survives with probability
  // (1-ber)^n, so longer frames die more often — the physics behind PACLEN
  // tuning (bench_x3_paclen). Composes with loss_rate.
  double bit_error_rate = 0.0;
  SimTime propagation_delay = 0;   // negligible at VHF distances
};

// True when a frame of `frame_len` bytes is corrupted by independent bit
// errors at `bit_error_rate`: survival probability (1-ber)^(8*len). Edge
// values are guarded rather than fed to pow(): a zero-length frame or a
// non-positive (or NaN) rate can never corrupt, and ber >= 1 always does —
// none of those consume the RNG, so edge configs don't perturb the stream.
bool BerCorrupts(Rng& rng, double bit_error_rate, std::size_t frame_len);

class RadioChannel;

class RadioPort {
 public:
  // `corrupted` is true when the frame collided or took random loss; real
  // receivers see this as an FCS failure.
  using ReceiveHandler = std::function<void(const Bytes& frame, bool corrupted)>;

  const std::string& name() const { return name_; }
  void set_receive_handler(ReceiveHandler h) { on_receive_ = std::move(h); }

  // Carrier sense: true while any station (including this one) transmits.
  bool CarrierBusy() const;
  bool transmitting() const { return transmitting_; }

  // Begins a transmission of `frame` occupying the channel for
  // head + frame-bits/bit-rate + tail. `on_done` (optional) runs when the
  // transmission ends. If the port is already transmitting the frame is
  // rejected: nothing goes on the air, false is returned, and `on_done` is
  // still invoked (asynchronously, at the current time) so a MAC waiting on
  // it can recover instead of stalling forever.
  bool StartTransmit(Bytes frame, SimTime head, SimTime tail,
                     std::function<void()> on_done = nullptr);

  // Air time this port's transmission of `len` bytes would take.
  SimTime AirTime(std::size_t len, SimTime head, SimTime tail) const;

  std::uint64_t frames_sent() const { return frames_sent_; }
  std::uint64_t frames_received() const { return frames_received_; }
  std::uint64_t frames_corrupted_rx() const { return frames_corrupted_rx_; }
  // StartTransmit calls rejected because a transmission was in progress.
  std::uint64_t rejected_transmits() const { return rejected_transmits_; }
  // Frames this port never heard because it was transmitting while they
  // arrived (half duplex) — including transmissions begun inside the
  // propagation window, which are re-checked at actual delivery time.
  std::uint64_t half_duplex_misses() const { return half_duplex_misses_; }

 private:
  friend class RadioChannel;

  RadioPort(RadioChannel* channel, std::string name)
      : channel_(channel), name_(std::move(name)) {}

  RadioChannel* channel_;
  std::string name_;
  ReceiveHandler on_receive_;
  bool transmitting_ = false;
  // Most recent transmission interval, for the half-duplex overlap test.
  SimTime last_tx_start_ = -1;
  SimTime last_tx_end_ = -1;
  std::uint64_t frames_sent_ = 0;
  std::uint64_t frames_received_ = 0;
  std::uint64_t frames_corrupted_rx_ = 0;
  std::uint64_t rejected_transmits_ = 0;
  std::uint64_t half_duplex_misses_ = 0;
};

class RadioChannel {
 public:
  RadioChannel(Simulator* sim, RadioChannelConfig config = {},
               std::uint64_t seed = 1);

  // Creates a station attachment. The channel owns the port.
  RadioPort* CreatePort(std::string name);

  bool Busy() const { return active_ != 0; }
  std::uint64_t bit_rate() const { return config_.bit_rate; }
  Simulator* sim() { return sim_; }

  // Statistics.
  std::uint64_t transmissions() const { return transmissions_; }
  std::uint64_t collisions() const { return collisions_; }
  SimTime busy_time() const { return busy_time_; }
  // Fraction of [0, now] the channel carried at least one transmission.
  double Utilization() const;

 private:
  friend class RadioPort;

  struct Transmission {
    RadioPort* port;
    SimTime start;
    SimTime end;
    bool corrupted = false;
  };

  void Deliver(RadioPort* sender, const Bytes& frame, bool corrupted,
               SimTime tx_start, SimTime tx_end);

  Simulator* sim_;
  RadioChannelConfig config_;
  Rng rng_;
  std::vector<std::unique_ptr<RadioPort>> ports_;
  std::vector<std::shared_ptr<Transmission>> active_list_;
  int active_ = 0;
  SimTime busy_since_ = 0;
  SimTime busy_time_ = 0;
  std::uint64_t transmissions_ = 0;
  std::uint64_t collisions_ = 0;
};

}  // namespace upr

#endif  // SRC_RADIO_CHANNEL_H_
