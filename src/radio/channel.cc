#include "src/radio/channel.h"

#include <algorithm>
#include <cmath>

#include "src/radio/fault_plan.h"
#include "src/trace/trace.h"
#include "src/util/logging.h"

namespace upr {

namespace {
constexpr const char* kTag = "radio";
}  // namespace

bool BerCorrupts(Rng& rng, double bit_error_rate, std::size_t frame_len) {
  // `!(ber > 0)` rather than `ber <= 0` so a NaN rate reads as "no errors"
  // instead of poisoning pow() and silently disabling corruption.
  if (!(bit_error_rate > 0.0) || frame_len == 0) {
    return false;
  }
  if (bit_error_rate >= 1.0) {
    return true;
  }
  double survive =
      std::pow(1.0 - bit_error_rate, static_cast<double>(frame_len) * 8.0);
  return !rng.Chance(survive);
}

RadioChannel::RadioChannel(Simulator* sim, RadioChannelConfig config,
                           std::uint64_t seed)
    : sim_(sim), config_(config), rng_(seed) {}

RadioPort* RadioChannel::CreatePort(std::string name) {
  ports_.push_back(std::unique_ptr<RadioPort>(new RadioPort(this, std::move(name))));
  return ports_.back().get();
}

double RadioChannel::Utilization() const {
  SimTime now = sim_->Now();
  if (now <= 0) {
    return 0.0;
  }
  SimTime busy = busy_time_;
  if (active_ > 0) {
    busy += now - busy_since_;
  }
  return static_cast<double>(busy) / static_cast<double>(now);
}

bool RadioPort::CarrierBusy() const { return channel_->Busy(); }

SimTime RadioPort::AirTime(std::size_t len, SimTime head, SimTime tail) const {
  return head + TransmitTime(len, channel_->config_.bit_rate) + tail;
}

bool RadioPort::StartTransmit(Bytes frame, SimTime head, SimTime tail,
                              std::function<void()> on_done) {
  if (transmitting_) {
    UPR_ERROR(kTag, "%s: StartTransmit while already transmitting", name_.c_str());
    ++rejected_transmits_;
    // The frame is rejected but the completion callback must not be dropped:
    // a MAC waiting on it to clear its busy flag would stall forever.
    if (on_done) {
      channel_->sim_->Schedule(0, std::move(on_done));
    }
    return false;
  }
  RadioChannel* ch = channel_;
  Simulator* sim = ch->sim_;
  SimTime start = sim->Now();
  SimTime end = start + AirTime(frame.size(), head, tail);

  auto tx = std::make_shared<RadioChannel::Transmission>();
  tx->port = this;
  tx->start = start;
  tx->end = end;

  // Collision: any concurrently active transmission corrupts both.
  if (ch->active_ > 0) {
    tx->corrupted = true;
    for (auto& other : ch->active_list_) {
      if (!other->corrupted) {
        other->corrupted = true;
      }
    }
    ++ch->collisions_;
    UPR_DEBUG(kTag, "%s: collision (%d active)", name_.c_str(), ch->active_);
    if (auto* t = trace::Active()) {
      t->Record(trace::Layer::kMac, trace::Kind::kMacCollision, trace::Dir::kTx,
                name_, frame, std::to_string(ch->active_) + " active");
    }
  }
  if (ch->active_ == 0) {
    ch->busy_since_ = start;
  }
  ++ch->active_;
  ch->active_list_.push_back(tx);
  ++ch->transmissions_;
  transmitting_ = true;
  last_tx_start_ = start;
  last_tx_end_ = end;
  if (auto* t = trace::Active()) {
    // Frame here still carries the HDLC FCS the TNC appended.
    t->Record(trace::Layer::kMac, trace::Kind::kMacTxStart, trace::Dir::kTx,
              name_, frame,
              "air=" + std::to_string(ToMillis(end - start)) + "ms");
  }

  sim->ScheduleAt(end, [this, ch, sim, tx, frame = std::move(frame),
                        on_done = std::move(on_done)] {
    transmitting_ = false;
    --ch->active_;
    ch->active_list_.erase(
        std::remove(ch->active_list_.begin(), ch->active_list_.end(), tx),
        ch->active_list_.end());
    if (ch->active_ == 0) {
      ch->busy_time_ += sim->Now() - ch->busy_since_;
    }
    ++frames_sent_;
    // Fault-schedule decision points, in a fixed order per frame: collision
    // outcome, then (only for frames still clean) the loss roll, then the
    // BER roll. When a fault::Session is recording, each roll happens
    // exactly as in an uninstrumented run and its outcome is logged; when
    // replaying, the scheduled outcome is used and the RNG stays untouched.
    fault::Session* fs = fault::Active();
    bool corrupted = tx->corrupted;
    if (fs != nullptr) {
      corrupted = fs->Decide(fault::Kind::kCollision, name_, frame,
                             [&] { return tx->corrupted; });
    }
    if (!corrupted && ch->config_.loss_rate > 0.0) {
      auto roll = [&] { return ch->rng_.Chance(ch->config_.loss_rate); };
      if (fs != nullptr ? fs->Decide(fault::Kind::kLoss, name_, frame, roll)
                        : roll()) {
        corrupted = true;
      }
    }
    if (!corrupted && ch->config_.bit_error_rate > 0.0 && !frame.empty()) {
      auto roll = [&] {
        return BerCorrupts(ch->rng_, ch->config_.bit_error_rate, frame.size());
      };
      if (fs != nullptr ? fs->Decide(fault::Kind::kBitError, name_, frame, roll)
                        : roll()) {
        corrupted = true;
      }
    }
    ch->Deliver(this, frame, corrupted, tx->start, tx->end);
    if (on_done) {
      on_done();
    }
  });
  return true;
}

void RadioChannel::Deliver(RadioPort* sender, const Bytes& frame, bool corrupted,
                           SimTime tx_start, SimTime tx_end) {
  Bytes delivered = frame;
  if (corrupted && !delivered.empty()) {
    // Mangle the head so any FCS verification fails.
    std::size_t n = std::min<std::size_t>(8, delivered.size());
    for (std::size_t i = 0; i < n; ++i) {
      delivered[i] ^= 0x55;
    }
  }
  SimTime delay = config_.propagation_delay;
  // The frame occupies the receiver's antenna during [tx_start + delay,
  // tx_end + delay]; a station that transmitted during any part of that
  // window heard nothing (half duplex).
  SimTime arrive_start = tx_start + delay;
  SimTime arrive_end = tx_end + delay;
  for (auto& p : ports_) {
    RadioPort* dst = p.get();
    if (dst == sender) {
      continue;
    }
    // Pre-filter at tx-end time with what is already decidable: a port whose
    // (current or finished) transmission interval overlaps the arrival
    // window is deaf no matter what it does later. `last_tx_end_` holds the
    // scheduled end of an in-progress transmission, so this also covers a
    // port that is keyed right now but releases before the frame arrives —
    // that port still hears it.
    bool overlapped_own_tx =
        (delay == 0 && dst->transmitting_) ||
        (dst->last_tx_end_ > arrive_start && dst->last_tx_start_ < arrive_end);
    if (overlapped_own_tx) {
      ++dst->half_duplex_misses_;
      continue;
    }
    Bytes copy = delivered;
    sim_->Schedule(delay, [dst, copy = std::move(copy), corrupted, delay,
                           arrive_start, arrive_end] {
      if (delay > 0) {
        // Deciding receive state at tx-end time alone would let a port that
        // *starts* transmitting inside the propagation window still hear the
        // frame; re-check at actual delivery time.
        bool deaf = dst->transmitting_ || (dst->last_tx_end_ > arrive_start &&
                                           dst->last_tx_start_ < arrive_end);
        if (deaf) {
          ++dst->half_duplex_misses_;
          return;
        }
      }
      ++dst->frames_received_;
      if (corrupted) {
        ++dst->frames_corrupted_rx_;
      }
      if (dst->on_receive_) {
        dst->on_receive_(copy, corrupted);
      }
    });
  }
}

}  // namespace upr
