// p-persistent CSMA medium access, as implemented by KISS TNC firmware and
// tuned with the KISS TXDELAY / P / SLOTTIME / TXTAIL / FULLDUP parameters.
//
// The transmit algorithm (Chepponis & Karn 1987): when a frame is queued and
// the channel is clear, transmit with probability p; otherwise wait one slot
// time and repeat. When the channel is busy, wait a slot and repeat. Before
// data, key the transmitter for TXDELAY; after data, hold for TXTAIL.
#ifndef SRC_RADIO_CSMA_MAC_H_
#define SRC_RADIO_CSMA_MAC_H_

#include <cstdint>
#include <deque>

#include "src/radio/channel.h"
#include "src/sim/simulator.h"
#include "src/util/byte_buffer.h"
#include "src/util/random.h"

namespace upr {

struct MacParams {
  // KISS wire units are 10 ms; these are the resolved values.
  SimTime tx_delay = Milliseconds(300);  // KISS TXDELAY 30
  SimTime tx_tail = Milliseconds(20);    // KISS TXTAIL 2
  SimTime slot_time = Milliseconds(100); // KISS SLOTTIME 10
  double persistence = 0.25;             // KISS P 63 -> (63+1)/256
  bool full_duplex = false;
  // Decision-to-RF latency (DCD release detection + PTT keying). Once the
  // MAC decides to transmit it is committed and deaf for this window — the
  // CSMA vulnerability period that makes real collisions possible on a
  // zero-propagation-delay channel. 1980s TNC hardware was ~tens of ms.
  SimTime turnaround = Milliseconds(30);

  static double PersistenceFromKiss(std::uint8_t p) {
    return (static_cast<double>(p) + 1.0) / 256.0;
  }
};

class CsmaMac {
 public:
  // `seed` is mixed with the port's name (MixSeed) so co-channel MACs that
  // share the default seed still roll distinct p-persistence streams.
  CsmaMac(Simulator* sim, RadioPort* port, MacParams params = {},
          std::uint64_t seed = 7);

  // Queues a wire frame (AX.25 bytes + FCS) for transmission.
  void Enqueue(Bytes frame);

  MacParams& params() { return params_; }
  const MacParams& params() const { return params_; }

  std::size_t queue_depth() const { return queue_.size() + (busy_ ? 1 : 0); }
  std::uint64_t frames_sent() const { return frames_sent_; }
  std::uint64_t deferrals() const { return deferrals_; }

 private:
  void TrySend();
  void ScheduleRetry();

  Simulator* sim_;
  RadioPort* port_;
  MacParams params_;
  Rng rng_;
  std::deque<Bytes> queue_;
  bool busy_ = false;         // transmission in progress
  bool retry_pending_ = false;
  std::uint64_t frames_sent_ = 0;
  std::uint64_t deferrals_ = 0;
};

}  // namespace upr

#endif  // SRC_RADIO_CSMA_MAC_H_
