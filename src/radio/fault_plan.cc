#include "src/radio/fault_plan.h"

#include <cstdio>

#include "src/util/crc.h"
#include "src/util/logging.h"

namespace upr::fault {

namespace {

constexpr const char* kTag = "fault";

// Sidecar file framing (all little-endian):
//   u32 magic 'UPRF', u32 version, u64 event count,
//   u32 meta length, meta bytes, zero-pad to 4;
// then per event:
//   i64 ts, u32 frame_len, u8 kind, u8 outcome, u16 frame_crc,
//   u16 port length, port bytes, zero-pad to 4.
constexpr std::uint32_t kMagic = 0x46525055;  // "UPRF" on disk
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kEventFixedBytes = 8 + 4 + 1 + 1 + 2 + 2;

std::size_t Padding(std::size_t n) { return (4 - n % 4) % 4; }

void PutU16(Bytes* out, std::uint16_t v) {
  out->push_back(static_cast<std::uint8_t>(v));
  out->push_back(static_cast<std::uint8_t>(v >> 8));
}

void PutU32(Bytes* out, std::uint32_t v) {
  PutU16(out, static_cast<std::uint16_t>(v));
  PutU16(out, static_cast<std::uint16_t>(v >> 16));
}

void PutU64(Bytes* out, std::uint64_t v) {
  PutU32(out, static_cast<std::uint32_t>(v));
  PutU32(out, static_cast<std::uint32_t>(v >> 32));
}

// Bounds-checked little-endian reader (the codec ByteReader is big-endian).
class Reader {
 public:
  explicit Reader(ByteView data) : data_(data) {}

  bool ok() const { return ok_; }
  std::size_t remaining() const { return data_.size() - pos_; }

  std::uint8_t U8() {
    if (!Need(1)) {
      return 0;
    }
    return data_[pos_++];
  }
  std::uint16_t U16() {
    std::uint16_t lo = U8();
    return static_cast<std::uint16_t>(lo | U8() << 8);
  }
  std::uint32_t U32() {
    std::uint32_t lo = U16();
    return lo | static_cast<std::uint32_t>(U16()) << 16;
  }
  std::uint64_t U64() {
    std::uint64_t lo = U32();
    return lo | static_cast<std::uint64_t>(U32()) << 32;
  }
  std::string String(std::size_t n) {
    if (!Need(n)) {
      return {};
    }
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return s;
  }
  // Consumes pad bytes, which must be zero.
  bool ZeroPad(std::size_t n) {
    if (!Need(n)) {
      return false;
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (data_[pos_ + i] != 0) {
        ok_ = false;
        return false;
      }
    }
    pos_ += n;
    return true;
  }

 private:
  bool Need(std::size_t n) {
    if (data_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  ByteView data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

bool Fail(std::string* error, const char* why) {
  if (error != nullptr) {
    *error = why;
  }
  return false;
}

std::string CursorKey(std::string_view port, Kind kind) {
  std::string key(port);
  key.push_back('\x1f');
  key.push_back(static_cast<char>('0' + static_cast<int>(kind)));
  return key;
}

}  // namespace

const char* KindName(Kind kind) {
  switch (kind) {
    case Kind::kLoss:
      return "loss";
    case Kind::kBitError:
      return "bit-error";
    case Kind::kCollision:
      return "collision";
    case Kind::kPPersist:
      return "p-persist";
  }
  return "?";
}

std::string Event::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%12.6f  %-9s %-20.*s len=%u crc=%04x -> %s",
                ToSeconds(ts), KindName(kind), static_cast<int>(port.size()),
                port.data(), frame_len, frame_crc, outcome ? "fault" : "clean");
  return buf;
}

Bytes Schedule::Serialize() const {
  Bytes out;
  PutU32(&out, kMagic);
  PutU32(&out, kVersion);
  PutU64(&out, events.size());
  PutU32(&out, static_cast<std::uint32_t>(meta.size()));
  out.insert(out.end(), meta.begin(), meta.end());
  out.insert(out.end(), Padding(meta.size()), 0);
  for (const Event& e : events) {
    PutU64(&out, static_cast<std::uint64_t>(e.ts));
    PutU32(&out, e.frame_len);
    out.push_back(static_cast<std::uint8_t>(e.kind));
    out.push_back(e.outcome ? 1 : 0);
    PutU16(&out, e.frame_crc);
    PutU16(&out, static_cast<std::uint16_t>(e.port.size()));
    out.insert(out.end(), e.port.begin(), e.port.end());
    out.insert(out.end(), Padding(e.port.size()), 0);
  }
  return out;
}

std::optional<Schedule> Schedule::Parse(ByteView file, std::string* error) {
  Reader r(file);
  if (r.U32() != kMagic || !r.ok()) {
    Fail(error, "bad magic (not a .faults file)");
    return std::nullopt;
  }
  if (r.U32() != kVersion || !r.ok()) {
    Fail(error, "unsupported version");
    return std::nullopt;
  }
  std::uint64_t count = r.U64();
  std::uint32_t meta_len = r.U32();
  if (!r.ok() || meta_len > r.remaining()) {
    Fail(error, "truncated header");
    return std::nullopt;
  }
  Schedule sched;
  sched.meta = r.String(meta_len);
  if (!r.ZeroPad(Padding(meta_len))) {
    Fail(error, "bad meta padding");
    return std::nullopt;
  }
  sched.events.reserve(count < 1 << 20 ? count : 1 << 20);
  for (std::uint64_t i = 0; i < count; ++i) {
    if (r.remaining() < kEventFixedBytes) {
      Fail(error, "truncated event");
      return std::nullopt;
    }
    Event e;
    e.ts = static_cast<SimTime>(r.U64());
    e.frame_len = r.U32();
    std::uint8_t kind = r.U8();
    std::uint8_t outcome = r.U8();
    e.frame_crc = r.U16();
    std::uint16_t port_len = r.U16();
    if (kind >= kKindCount) {
      Fail(error, "unknown fault kind");
      return std::nullopt;
    }
    if (outcome > 1) {
      Fail(error, "outcome not a boolean");
      return std::nullopt;
    }
    e.kind = static_cast<Kind>(kind);
    e.outcome = outcome != 0;
    if (port_len > r.remaining()) {
      Fail(error, "truncated port name");
      return std::nullopt;
    }
    e.port = r.String(port_len);
    if (!r.ZeroPad(Padding(port_len))) {
      Fail(error, "bad event padding");
      return std::nullopt;
    }
    if (!r.ok()) {
      Fail(error, "truncated event");
      return std::nullopt;
    }
    sched.events.push_back(std::move(e));
  }
  if (r.remaining() != 0) {
    Fail(error, "trailing bytes after last event");
    return std::nullopt;
  }
  return sched;
}

bool Schedule::SaveToFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return false;
  }
  Bytes data = Serialize();
  std::size_t written = std::fwrite(data.data(), 1, data.size(), f);
  bool ok = std::fclose(f) == 0 && written == data.size();
  return ok;
}

std::optional<Schedule> Schedule::LoadFromFile(const std::string& path,
                                               std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    Fail(error, "cannot open file");
    return std::nullopt;
  }
  Bytes data;
  std::uint8_t buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    data.insert(data.end(), buf, buf + n);
  }
  std::fclose(f);
  return Parse(data, error);
}

Session::Session(Simulator* sim) : sim_(sim), mode_(Mode::kRecord) {}

Session::Session(Simulator* sim, Schedule schedule)
    : sim_(sim), mode_(Mode::kReplay), schedule_(std::move(schedule)) {
  for (std::uint32_t i = 0; i < schedule_.events.size(); ++i) {
    const Event& e = schedule_.events[i];
    cursors_[CursorKey(e.port, e.kind)].push_back(i);
  }
}

Event Session::MakeEvent(Kind kind, std::string_view port, ByteView frame,
                         bool outcome) const {
  Event e;
  e.ts = sim_->Now();
  e.kind = kind;
  e.outcome = outcome;
  e.frame_len = static_cast<std::uint32_t>(frame.size());
  e.frame_crc = Crc16Ccitt(frame.data(), frame.size());
  e.port.assign(port);
  return e;
}

bool Session::Decide(Kind kind, std::string_view port, ByteView frame,
                     const std::function<bool()>& roll) {
  if (mode_ == Mode::kRecord) {
    bool outcome = roll();
    schedule_.events.push_back(MakeEvent(kind, port, frame, outcome));
    ++stats_.recorded;
    ++stats_.per_kind[static_cast<int>(kind)];
    return outcome;
  }
  auto it = cursors_.find(CursorKey(port, kind));
  if (it == cursors_.end() || it->second.empty()) {
    ++stats_.exhausted;
    if (problems_.size() < 8) {
      problems_.push_back("schedule exhausted: " +
                          MakeEvent(kind, port, frame, false).ToString());
    }
    return roll();
  }
  const Event& expected = schedule_.events[it->second.front()];
  it->second.pop_front();
  ++stats_.replayed;
  ++stats_.per_kind[static_cast<int>(kind)];
  Event actual = MakeEvent(kind, port, frame, expected.outcome);
  if (actual != expected) {
    ++stats_.mismatches;
    if (problems_.size() < 8) {
      problems_.push_back("mismatch: expected " + expected.ToString() +
                          ", got " + actual.ToString());
    }
    UPR_ERROR(kTag, "replay mismatch on %.*s (%s)",
              static_cast<int>(port.size()), port.data(), KindName(kind));
  }
  return expected.outcome;
}

std::size_t Session::remaining() const {
  std::size_t left = 0;
  for (const auto& [key, fifo] : cursors_) {
    left += fifo.size();
  }
  return left;
}

bool Session::ReplayClean() const {
  return mode_ == Mode::kReplay && stats_.mismatches == 0 &&
         stats_.exhausted == 0 && remaining() == 0;
}

namespace {
// thread_local like the ambient tracer: each parallel-city shard worker can
// carry its own session (or none) without racing the main thread's.
thread_local Session* g_session = nullptr;
}  // namespace

Session* Active() { return g_session; }

void Install(Session* s) { g_session = s; }

void Uninstall(Session* s) {
  if (g_session == s) {
    g_session = nullptr;
  }
}

}  // namespace upr::fault
