// Full-duplex RS-232 serial line between the host's DZ port and the TNC
// (figure 1 of the paper). Bytes move at the configured baud rate, 10 bits
// per byte (8N1 framing), and are delivered to the far side one byte at a
// time — each delivery models one receive interrupt, which is exactly how
// the paper's driver ingests packets ("For each character in the packet, the
// tty driver calls the packet radio interrupt handler", §2.2).
#ifndef SRC_SERIAL_SERIAL_LINE_H_
#define SRC_SERIAL_SERIAL_LINE_H_

#include <cstdint>
#include <functional>

#include "src/sim/simulator.h"
#include "src/util/byte_buffer.h"

namespace upr {

class SerialLine;

// One end of the line. Obtain via SerialLine::a()/b().
class SerialEndpoint {
 public:
  using ByteHandler = std::function<void(std::uint8_t)>;

  // Handler runs once per received byte, at the byte's delivery time.
  void set_receive_handler(ByteHandler h) { on_byte_ = std::move(h); }

  // Queues bytes for transmission to the far end. Never blocks; the line
  // serializes output at the baud rate.
  void Write(const Bytes& bytes);
  void Write(std::uint8_t byte);

  std::uint64_t bytes_sent() const { return bytes_sent_; }
  std::uint64_t bytes_received() const { return bytes_received_; }
  // Transmit-queue backlog in bytes not yet delivered to the peer.
  std::uint64_t backlog() const { return backlog_; }

 private:
  friend class SerialLine;

  SerialLine* line_ = nullptr;
  SerialEndpoint* peer_ = nullptr;
  ByteHandler on_byte_;
  SimTime busy_until_ = 0;  // when this direction's last queued byte lands
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t bytes_received_ = 0;
  std::uint64_t backlog_ = 0;
};

class SerialLine {
 public:
  SerialLine(Simulator* sim, std::uint32_t baud_rate);

  SerialEndpoint& a() { return a_; }
  SerialEndpoint& b() { return b_; }

  std::uint32_t baud_rate() const { return baud_; }
  // Wire time for one byte (10 bit times: start + 8 data + stop).
  SimTime byte_time() const;

 private:
  friend class SerialEndpoint;

  Simulator* sim_;
  std::uint32_t baud_;
  SerialEndpoint a_;
  SerialEndpoint b_;
};

}  // namespace upr

#endif  // SRC_SERIAL_SERIAL_LINE_H_
