// Full-duplex RS-232 serial line between the host's DZ port and the TNC
// (figure 1 of the paper). Bytes move at the configured baud rate, 10 bits
// per byte (8N1 framing). Two delivery disciplines are supported:
//
//  * kPerByte (default, paper fidelity): each byte is a separate delivery
//    event — one receive interrupt per character, which is exactly how the
//    paper's driver ingests packets ("For each character in the packet, the
//    tty driver calls the packet radio interrupt handler", §2.2).
//
//  * kSilo: the DH-style silo/DMA discipline the paper's §Performance points
//    at as the cure for per-character overhead. Bytes accumulate in a
//    hardware silo of `silo_depth` characters; one delivery event fires when
//    the silo fills, or `silo_timeout` after the line goes quiet (the DZ-11
//    silo alarm). Receivers that install a chunk handler get the whole batch
//    in one callback — one interrupt per silo-full instead of per character.
//
// Either way the byte stream, its ordering and its wire timing are
// identical; only the number of delivery events (interrupts) changes.
#ifndef SRC_SERIAL_SERIAL_LINE_H_
#define SRC_SERIAL_SERIAL_LINE_H_

#include <cstdint>
#include <functional>
#include <string>

#include "src/sim/simulator.h"
#include "src/util/byte_buffer.h"

namespace upr {

class SerialLine;

struct SerialLineConfig {
  enum class Mode {
    kPerByte,  // one delivery event per character (paper §2.2)
    kSilo,     // batched delivery, DZ/DH silo style (paper §Performance)
  };

  std::uint32_t baud_rate = 9600;
  Mode mode = Mode::kPerByte;
  // Silo mode: maximum characters per delivery event (DZ-11 had 64).
  std::size_t silo_depth = 16;
  // Silo mode: a partially-filled silo is flushed this long after its last
  // byte lands (the silo-alarm timeout). 0 flushes at the last byte's land
  // time, i.e. as soon as the burst ends.
  SimTime silo_timeout = 0;
  // Transmit FIFO cap in bytes per direction; writes beyond it are dropped
  // and counted (the real DZ overruns instead of buffering without bound).
  // 0 means unbounded (seed behaviour).
  std::uint64_t max_backlog = 0;
};

// One end of the line. Obtain via SerialLine::a()/b().
class SerialEndpoint {
 public:
  using ByteHandler = std::function<void(std::uint8_t)>;
  using ChunkHandler = std::function<void(const std::uint8_t* data, std::size_t len)>;

  // Handler runs once per received byte, at the byte's delivery time.
  void set_receive_handler(ByteHandler h) { on_byte_ = std::move(h); }
  // Chunk handler runs once per delivery event with every byte it carried
  // (size 1 in per-byte mode, up to silo_depth in silo mode). When set it
  // takes precedence over the per-byte handler; when only the per-byte
  // handler is set, chunks are unrolled into per-byte calls so existing
  // consumers work under either mode.
  void set_receive_chunk_handler(ChunkHandler h) { on_bytes_ = std::move(h); }

  // Queues bytes for transmission to the far end. Never blocks; the line
  // serializes output at the baud rate. Bytes beyond the configured
  // max_backlog are dropped and counted in overruns()/bytes_dropped().
  void Write(const Bytes& bytes);
  void Write(std::uint8_t byte);

  std::uint64_t bytes_sent() const { return bytes_sent_; }
  std::uint64_t bytes_received() const { return bytes_received_; }
  // Transmit-queue backlog in bytes not yet delivered to the peer.
  std::uint64_t backlog() const { return backlog_; }

  // --- Interrupt-path instrumentation (experiment E5) ---------------------
  // Delivery events scheduled for this endpoint's outgoing bytes.
  std::uint64_t events_scheduled() const { return events_scheduled_; }
  // Delivery events (receive interrupts) this endpoint has taken.
  std::uint64_t deliveries() const { return deliveries_; }
  // Mean received bytes per delivery event: 1.0 in per-byte mode, up to
  // silo_depth in silo mode.
  double bytes_per_event() const {
    return deliveries_ == 0
               ? 0.0
               : static_cast<double>(bytes_received_) / static_cast<double>(deliveries_);
  }
  // Write() calls that hit the FIFO cap, and the bytes they lost.
  std::uint64_t overruns() const { return overruns_; }
  std::uint64_t bytes_dropped() const { return bytes_dropped_; }

  // Name used to attribute this endpoint's trace events (e.g. "pc0 dz0").
  void set_name(std::string name) { name_ = std::move(name); }
  const std::string& name() const { return name_; }

 private:
  friend class SerialLine;

  // Hands a landed chunk to the receive side of *this* endpoint.
  void DeliverChunk(const std::uint8_t* data, std::size_t len);
  // Schedules delivery of the accumulated silo to the peer at `when`.
  void FlushSilo(SimTime when);
  // (Re)arms the silo-alarm flush for a partially-filled silo.
  void ArmSiloAlarm();

  SerialLine* line_ = nullptr;
  SerialEndpoint* peer_ = nullptr;
  std::string name_;
  ByteHandler on_byte_;
  ChunkHandler on_bytes_;
  SimTime busy_until_ = 0;  // when this direction's last queued byte lands
  // Byte-accurate clock for this direction: bytes sent since `tx_epoch_`.
  // busy_until_ is recomputed as epoch + round(n * byte-time) each Write so
  // non-divisor baud rates (9600 -> 1041666.67 ns/byte) don't accumulate
  // per-byte truncation drift.
  SimTime tx_epoch_ = 0;
  std::uint64_t tx_bytes_since_epoch_ = 0;
  // Silo mode: bytes on the wire not yet bundled into a delivery event.
  Bytes silo_;
  std::uint64_t silo_alarm_id_ = 0;
  bool silo_alarm_armed_ = false;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t bytes_received_ = 0;
  std::uint64_t backlog_ = 0;
  std::uint64_t events_scheduled_ = 0;
  std::uint64_t deliveries_ = 0;
  std::uint64_t overruns_ = 0;
  std::uint64_t bytes_dropped_ = 0;
};

class SerialLine {
 public:
  SerialLine(Simulator* sim, SerialLineConfig config);
  // Back-compat convenience: per-byte mode at `baud_rate`.
  SerialLine(Simulator* sim, std::uint32_t baud_rate);

  SerialEndpoint& a() { return a_; }
  SerialEndpoint& b() { return b_; }
  const SerialEndpoint& a() const { return a_; }
  const SerialEndpoint& b() const { return b_; }

  const SerialLineConfig& config() const { return config_; }
  std::uint32_t baud_rate() const { return config_.baud_rate; }
  // Wire time for one byte (10 bit times: start + 8 data + stop), rounded.
  SimTime byte_time() const;
  // Wire time for `n` consecutive bytes, rounded once (not n truncations).
  SimTime transfer_time(std::uint64_t n) const;

 private:
  friend class SerialEndpoint;

  Simulator* sim_;
  SerialLineConfig config_;
  SerialEndpoint a_;
  SerialEndpoint b_;
};

}  // namespace upr

#endif  // SRC_SERIAL_SERIAL_LINE_H_
