#include "src/serial/serial_line.h"

#include <cmath>

#include "src/trace/trace.h"

namespace upr {

SerialLine::SerialLine(Simulator* sim, SerialLineConfig config)
    : sim_(sim), config_(config) {
  a_.line_ = this;
  a_.peer_ = &b_;
  b_.line_ = this;
  b_.peer_ = &a_;
}

SerialLine::SerialLine(Simulator* sim, std::uint32_t baud_rate)
    : SerialLine(sim, SerialLineConfig{.baud_rate = baud_rate}) {}

SimTime SerialLine::byte_time() const { return transfer_time(1); }

SimTime SerialLine::transfer_time(std::uint64_t n) const {
  return static_cast<SimTime>(
      std::llround(static_cast<double>(n) * 10.0 /
                   static_cast<double>(config_.baud_rate) *
                   static_cast<double>(kSecond)));
}

void SerialEndpoint::Write(std::uint8_t byte) { Write(Bytes{byte}); }

void SerialEndpoint::DeliverChunk(const std::uint8_t* data, std::size_t len) {
  bytes_received_ += len;
  ++deliveries_;
  if (auto* t = trace::Active()) {
    t->Record(trace::Layer::kSerial, trace::Kind::kSerialDeliver,
              trace::Dir::kRx, name_, ByteView(data, len));
  }
  if (on_bytes_) {
    on_bytes_(data, len);
    return;
  }
  if (on_byte_) {
    for (std::size_t i = 0; i < len; ++i) {
      on_byte_(data[i]);
    }
  }
}

void SerialEndpoint::FlushSilo(SimTime when) {
  if (silo_alarm_armed_) {
    line_->sim_->Cancel(silo_alarm_id_);
    silo_alarm_armed_ = false;
  }
  if (silo_.empty()) {
    return;
  }
  SerialEndpoint* dst = peer_;
  ++events_scheduled_;
  line_->sim_->ScheduleAt(when, [this, dst, chunk = std::move(silo_)] {
    backlog_ -= chunk.size();
    dst->DeliverChunk(chunk.data(), chunk.size());
  });
  silo_.clear();
}

void SerialEndpoint::ArmSiloAlarm() {
  if (silo_alarm_armed_) {
    line_->sim_->Cancel(silo_alarm_id_);
  }
  silo_alarm_armed_ = true;
  SimTime when = busy_until_ + line_->config_.silo_timeout;
  SerialEndpoint* dst = peer_;
  silo_alarm_id_ = line_->sim_->ScheduleAt(when, [this, dst] {
    silo_alarm_armed_ = false;
    if (silo_.empty()) {
      return;
    }
    Bytes chunk = std::move(silo_);
    silo_.clear();
    ++events_scheduled_;
    backlog_ -= chunk.size();
    dst->DeliverChunk(chunk.data(), chunk.size());
  });
}

void SerialEndpoint::Write(const Bytes& bytes) {
  Simulator* sim = line_->sim_;
  const SerialLineConfig& cfg = line_->config_;
  if (auto* t = trace::Active()) {
    t->Record(trace::Layer::kSerial, trace::Kind::kSerialEnqueue,
              trace::Dir::kTx, name_, bytes,
              "backlog=" + std::to_string(backlog_));
  }
  if (busy_until_ <= sim->Now()) {
    // Line idle: start a fresh timing epoch at now.
    busy_until_ = sim->Now();
    tx_epoch_ = sim->Now();
    tx_bytes_since_epoch_ = 0;
  }
  std::uint64_t dropped = 0;
  for (std::uint8_t b : bytes) {
    if (cfg.max_backlog != 0 && backlog_ >= cfg.max_backlog) {
      // FIFO full: the DZ would overrun; drop with a stat, don't buffer
      // without bound.
      ++dropped;
      continue;
    }
    ++tx_bytes_since_epoch_;
    busy_until_ = tx_epoch_ + line_->transfer_time(tx_bytes_since_epoch_);
    ++bytes_sent_;
    ++backlog_;
    if (cfg.mode == SerialLineConfig::Mode::kPerByte) {
      SerialEndpoint* dst = peer_;
      ++events_scheduled_;
      sim->ScheduleAt(busy_until_, [this, dst, b] {
        --backlog_;
        dst->DeliverChunk(&b, 1);
      });
    } else {
      silo_.push_back(b);
      if (silo_.size() >= cfg.silo_depth) {
        FlushSilo(busy_until_);
      }
    }
  }
  if (cfg.mode == SerialLineConfig::Mode::kSilo && !silo_.empty()) {
    ArmSiloAlarm();
  }
  if (dropped != 0) {
    ++overruns_;
    bytes_dropped_ += dropped;
  }
}

}  // namespace upr
