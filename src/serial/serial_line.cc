#include "src/serial/serial_line.h"

namespace upr {

SerialLine::SerialLine(Simulator* sim, std::uint32_t baud_rate)
    : sim_(sim), baud_(baud_rate) {
  a_.line_ = this;
  a_.peer_ = &b_;
  b_.line_ = this;
  b_.peer_ = &a_;
}

SimTime SerialLine::byte_time() const {
  return static_cast<SimTime>(10.0 / static_cast<double>(baud_) *
                              static_cast<double>(kSecond));
}

void SerialEndpoint::Write(std::uint8_t byte) { Write(Bytes{byte}); }

void SerialEndpoint::Write(const Bytes& bytes) {
  Simulator* sim = line_->sim_;
  SimTime per_byte = line_->byte_time();
  if (busy_until_ < sim->Now()) {
    busy_until_ = sim->Now();
  }
  for (std::uint8_t b : bytes) {
    busy_until_ += per_byte;
    ++bytes_sent_;
    ++backlog_;
    SerialEndpoint* dst = peer_;
    sim->ScheduleAt(busy_until_, [this, dst, b] {
      --backlog_;
      ++dst->bytes_received_;
      if (dst->on_byte_) {
        dst->on_byte_(b);
      }
    });
  }
}

}  // namespace upr
