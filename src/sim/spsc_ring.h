// upr — single-producer single-consumer lock-free ring (ISSUE 8).
//
// The conservative parallel-DES executor passes cross-shard events through
// one of these per (source shard, destination shard) pair: the worker thread
// running the source shard is the only producer, and the coordinator thread
// draining handoffs at a window barrier is the only consumer. With exactly
// one thread on each end, a pair of monotone head/tail counters with
// acquire/release ordering is the entire protocol — no CAS loops, no locks,
// no ABA. Capacity is fixed (rounded up to a power of two); a full ring is
// reported to the caller, which takes a cold mutex-guarded overflow path
// rather than blocking the hot one.
#ifndef SRC_SIM_SPSC_RING_H_
#define SRC_SIM_SPSC_RING_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace upr {

template <typename T>
class SpscRing {
 public:
  // `capacity` is rounded up to the next power of two (minimum 2).
  explicit SpscRing(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) {
      cap <<= 1;
    }
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const { return slots_.size(); }

  // Producer side. False when the ring is full (the value is untouched and
  // stays with the caller).
  bool TryPush(T& v) {
    const std::uint64_t t = tail_.load(std::memory_order_relaxed);
    const std::uint64_t h = head_.load(std::memory_order_acquire);
    if (t - h == slots_.size()) {
      return false;
    }
    slots_[t & mask_] = std::move(v);
    tail_.store(t + 1, std::memory_order_release);
    return true;
  }

  // Consumer side. False when the ring is empty.
  bool TryPop(T* out) {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    const std::uint64_t t = tail_.load(std::memory_order_acquire);
    if (h == t) {
      return false;
    }
    *out = std::move(slots_[h & mask_]);
    head_.store(h + 1, std::memory_order_release);
    return true;
  }

  // Consumer-side size estimate (exact when the producer is quiescent, as it
  // is at a window barrier).
  std::size_t SizeApprox() const {
    return static_cast<std::size_t>(tail_.load(std::memory_order_acquire) -
                                    head_.load(std::memory_order_acquire));
  }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  // Head and tail live on separate cache lines so the producer's stores and
  // the consumer's stores do not false-share.
  alignas(64) std::atomic<std::uint64_t> head_{0};
  alignas(64) std::atomic<std::uint64_t> tail_{0};
};

}  // namespace upr

#endif  // SRC_SIM_SPSC_RING_H_
