// upr — sharded event execution + conservative parallel DES (ISSUE 8).
//
// The city-scale topology decomposes, as the NS-2 multi-channel model does,
// into radio channels that only interact through gateways and point-to-point
// trunks: a channel's MAC, serial lines and stations never touch another
// channel's state directly, and every cross-channel path crosses a link with
// a real, bounded latency. A ShardSet exploits that: one Simulator (and so
// one PR 6 timer wheel) per shard, with cross-shard events carried as
// explicit handoffs instead of shared-queue inserts. Three execution modes:
//
//   * kUnified — every shard aliases ONE Simulator. This is exactly the
//     classic single-queue execution, byte-for-byte: the tracediff gate runs
//     the city topology in this mode as the pre-shard reference.
//   * kSharded — one Simulator per shard, executed on one thread as a
//     globally time-ordered merge (a lazy min-heap over shard clocks; equal
//     timestamps break ties by shard index). The default for `--topo`.
//   * kParallel — conservative parallel DES: the coordinator computes a
//     window [next, next + lookahead), worker threads run their shards'
//     events inside the window concurrently, and handoffs — which the
//     lookahead guarantees land strictly beyond the window — are injected
//     at the barrier, sorted by (when, src shard, ring seq) so execution is
//     deterministic for a fixed seed and any thread count.
//
// Lookahead comes from the topology: the minimum over all cross-shard links
// of (propagation delay + one serial byte time); a handoff posted at time t
// may not be scheduled before t + lookahead, and Post() enforces that with
// an invariant. Handoffs ride per-(src,dst) SPSC rings (spsc_ring.h),
// registered at topology build time via EnsureLane; a full ring falls back
// to a mutex-guarded overflow list, and the barrier merge re-sorts by
// sequence number so the cold path cannot reorder anything.
#ifndef SRC_SIM_SHARD_EXEC_H_
#define SRC_SIM_SHARD_EXEC_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/sim/simulator.h"
#include "src/sim/spsc_ring.h"

namespace upr {

struct ShardStats {
  std::uint64_t posted = 0;         // cross-shard handoffs posted
  std::uint64_t ring_overflow = 0;  // handoffs that took the cold mutex path
  std::uint64_t injected = 0;       // handoffs injected at barriers
  std::uint64_t windows = 0;        // parallel windows executed
  std::uint64_t merge_steps = 0;    // events run by the kSharded merge loop
};

class ShardSet {
 public:
  enum class Mode { kUnified, kSharded, kParallel };

  struct Config {
    std::size_t shards = 1;
    Mode mode = Mode::kSharded;
    // Worker threads (kParallel only; clamped to [1, shards]).
    int threads = 1;
    // Conservative lookahead (ns). Post() rejects handoffs closer than this.
    // Ignored in kUnified, where every "handoff" is a same-queue insert.
    SimTime lookahead = 1;
    // Per-(src,dst) SPSC ring capacity in entries.
    std::size_t ring_capacity = 256;
  };

  explicit ShardSet(const Config& config);
  ~ShardSet();
  ShardSet(const ShardSet&) = delete;
  ShardSet& operator=(const ShardSet&) = delete;

  std::size_t shard_count() const { return shard_count_; }
  Mode mode() const { return config_.mode; }
  SimTime lookahead() const { return config_.lookahead; }
  int threads() const { return config_.threads; }

  // The simulator backing shard `k`. In kUnified mode every k returns the
  // same Simulator; construction order is otherwise identical across modes,
  // which is what keeps seeded component construction byte-stable.
  Simulator* shard(std::size_t k);

  // The simulator whose event is currently executing (merge cursor in
  // kSharded, the single sim in kUnified). Valid on the executing thread
  // only; the tracer's clock override points here so ring/pcap timestamps
  // come from the shard that actually recorded the crossing. Parallel-mode
  // workers never touch it — they install per-shard tracers instead.
  Simulator* current_sim() const { return current_; }
  SimTime CurrentTime() const { return current_->Now(); }

  // Registers the (src,dst) handoff lane. Topology build time only (before
  // workers start); a kParallel Post without a registered lane is an
  // invariant failure. No-op in the serial modes and for src == dst.
  void EnsureLane(std::size_t src, std::size_t dst);

  // Schedules `fn` on shard `dst` at absolute sim time `when`. Must be
  // called from an event executing on shard `src`. In kParallel mode `when`
  // must be at least the source clock plus the lookahead (invariant-checked);
  // the serial modes schedule directly and keep the same timestamps.
  void Post(std::size_t src, std::size_t dst, SimTime when,
            std::function<void()> fn);

  // Installed hook runs on the worker thread before a shard executes a
  // parallel window; the city runner uses it to install the shard's
  // thread_local ambient tracer. kParallel only; set before RunUntil.
  void set_shard_enter_hook(std::function<void(std::size_t)> hook) {
    enter_hook_ = std::move(hook);
  }

  // Runs all shards up to and including `deadline`, per the mode. Returns
  // the number of events executed across shards.
  std::size_t RunUntil(SimTime deadline);

  // True when no shard has a pending event (call between RunUntil calls).
  bool Idle();

  // Aggregated handoff/window counters (call when quiescent).
  ShardStats stats() const;

  // Aggregate counters across distinct simulators (kUnified counts its one
  // simulator once).
  std::uint64_t TotalEventsScheduled() const;
  std::size_t TotalEventsExecuted() const;

 private:
  struct Handoff {
    SimTime when = 0;
    std::uint64_t seq = 0;  // per-(src,dst) FIFO sequence
    std::size_t src = 0;
    std::function<void()> fn;
  };
  // One handoff lane per registered (src,dst) pair: the hot SPSC ring plus
  // the cold overflow list and producer-owned counters (only the worker
  // running `src` touches next_seq/posted/overflowed).
  struct Lane {
    explicit Lane(std::size_t cap) : ring(cap) {}
    SpscRing<Handoff> ring;
    std::size_t dst = 0;
    std::uint64_t next_seq = 0;
    std::uint64_t posted = 0;
    std::uint64_t overflowed = 0;
    std::mutex overflow_mu;
    std::vector<Handoff> overflow;
  };

  static std::uint64_t LaneKey(std::size_t src, std::size_t dst) {
    return (static_cast<std::uint64_t>(src) << 32) |
           static_cast<std::uint64_t>(dst);
  }

  std::size_t RunUnified(SimTime deadline);
  std::size_t RunShardedMerge(SimTime deadline);
  std::size_t RunParallel(SimTime deadline);

  // Barrier-time drain: moves every pending handoff into its destination
  // simulator, in (when, src, seq) order. Runs on the coordinator with all
  // workers parked.
  void DrainLanes();

  // Parallel worker machinery.
  void StartWorkers();
  void WorkerLoop(int worker_index);
  void RunWindowOnWorkers(SimTime window_end);

  Config config_;
  std::size_t shard_count_;
  std::vector<std::unique_ptr<Simulator>> sims_;
  std::vector<Simulator*> shards_;  // shard index -> sim (aliased in kUnified)
  std::function<void(std::size_t)> enter_hook_;
  Simulator* current_ = nullptr;

  // Handoff lanes (kParallel). The map's structure is frozen once workers
  // start; per-src dirty counters let the barrier skip untouched rows.
  std::unordered_map<std::uint64_t, std::unique_ptr<Lane>> lanes_;
  std::vector<std::vector<Lane*>> lanes_by_src_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> src_pending_;
  std::vector<std::vector<Handoff>> inject_bufs_;  // per-dst barrier scratch

  // kSharded merge state: lazy min-heap of (next event time, shard).
  using MergeEntry = std::pair<SimTime, std::size_t>;
  std::priority_queue<MergeEntry, std::vector<MergeEntry>,
                      std::greater<MergeEntry>>
      merge_heap_;

  // Counters. serial_posted_/injected/windows/merge_steps are touched only
  // by the coordinating thread; per-lane counters only by their producer.
  std::uint64_t serial_posted_ = 0;
  std::uint64_t stats_injected_ = 0;
  std::uint64_t stats_windows_ = 0;
  std::uint64_t stats_merge_steps_ = 0;

  // Worker pool (kParallel). Workers sleep between windows; an epoch bump
  // under the mutex publishes the next window_end and doubles as the
  // happens-before edge that hands shard state worker->coordinator->worker.
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::uint64_t epoch_ = 0;
  SimTime window_end_ = 0;
  int workers_done_ = 0;
  std::size_t window_executed_ = 0;  // summed under mu_
  bool stopping_ = false;
};

}  // namespace upr

#endif  // SRC_SIM_SHARD_EXEC_H_
