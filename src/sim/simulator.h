// Deterministic discrete-event simulator that drives the whole system.
//
// Every component (radio channel, TNC, serial line, host stack, application)
// schedules callbacks on a single Simulator. Events at equal timestamps run
// in scheduling order (a monotonically increasing sequence number breaks
// ties), so runs are bit-reproducible.
//
// Time is kept in integer nanoseconds (`SimTime`). Helpers convert from
// humane units.
#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

namespace upr {

// Simulated time in nanoseconds since simulation start.
using SimTime = std::int64_t;

constexpr SimTime kNanosecond = 1;
constexpr SimTime kMicrosecond = 1000 * kNanosecond;
constexpr SimTime kMillisecond = 1000 * kMicrosecond;
constexpr SimTime kSecond = 1000 * kMillisecond;

constexpr SimTime Microseconds(double us) {
  return static_cast<SimTime>(us * static_cast<double>(kMicrosecond));
}
constexpr SimTime Milliseconds(double ms) {
  return static_cast<SimTime>(ms * static_cast<double>(kMillisecond));
}
constexpr SimTime Seconds(double s) {
  return static_cast<SimTime>(s * static_cast<double>(kSecond));
}
constexpr double ToSeconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}
constexpr double ToMillis(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kMillisecond);
}

// Transmission time of `bytes` at `bits_per_second` (8 bits per byte; HDLC
// bit-stuffing overhead is ignored, as the paper's budget analysis does).
constexpr SimTime TransmitTime(std::size_t bytes, std::uint64_t bits_per_second) {
  return static_cast<SimTime>(static_cast<double>(bytes) * 8.0 /
                              static_cast<double>(bits_per_second) *
                              static_cast<double>(kSecond));
}

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime Now() const { return now_; }

  // Schedules `fn` to run at Now() + delay (delay < 0 is clamped to 0).
  // Returns an id usable with Cancel().
  std::uint64_t Schedule(SimTime delay, std::function<void()> fn);
  std::uint64_t ScheduleAt(SimTime when, std::function<void()> fn);

  // Cancels a pending event; a no-op if it already ran or was cancelled.
  void Cancel(std::uint64_t id);

  // Runs events until the queue is empty or `deadline` is passed. Events at
  // exactly `deadline` still run. Returns the number of events executed.
  std::size_t RunUntil(SimTime deadline);

  // Runs until the event queue drains (use with care: periodic timers never
  // drain). Returns the number of events executed.
  std::size_t RunAll(std::size_t max_events = 100'000'000);

  // Runs a single event if one is pending; returns false when idle.
  bool Step();

  bool Idle() const;
  std::size_t pending_events() const { return pending_; }
  std::size_t executed_events() const { return executed_; }
  // Total events ever scheduled (the interrupt-rate analogue: every serial
  // byte, timer and frame delivery passes through here).
  std::uint64_t events_scheduled() const { return next_seq_ - 1; }
  // Event objects allocated over the simulator's lifetime. Events are pooled
  // on a free list, so this tracks peak concurrency, not event count.
  std::size_t pool_capacity() const { return pool_.size(); }
  std::size_t pool_free() const { return free_.size(); }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    std::function<void()> fn;
    bool cancelled = false;
  };
  struct EventCompare {
    bool operator()(const Event* a, const Event* b) const {
      if (a->when != b->when) {
        return a->when > b->when;
      }
      return a->seq > b->seq;
    }
  };

  // Free-list allocation: events live in `pool_` for the simulator's
  // lifetime and recycle through `free_` instead of a per-schedule
  // make_shared (the old scheme paid an allocation and a control block per
  // serial byte — the hot path bench_e5 measures).
  Event* AllocEvent();
  void Recycle(Event* ev);

  // Pops the next non-cancelled event, or nullptr. The returned event is
  // still owned by the pool; callers must Recycle() it.
  Event* PopNext();

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::size_t pending_ = 0;   // non-cancelled events in queue
  std::size_t executed_ = 0;
  std::priority_queue<Event*, std::vector<Event*>, EventCompare> queue_;
  // id (== seq) -> event, for O(1) cancellation. Absent once run/cancelled.
  std::unordered_map<std::uint64_t, Event*> live_;
  std::vector<std::unique_ptr<Event>> pool_;
  std::vector<Event*> free_;
};

// RAII one-shot timer bound to a Simulator. Restart() re-arms; destruction or
// Stop() cancels. Used for protocol timers (T1, ARP expiry, RTO, ...).
class Timer {
 public:
  Timer(Simulator* sim, std::function<void()> fn) : sim_(sim), fn_(std::move(fn)) {}
  ~Timer() { Stop(); }
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  // (Re)arms the timer to fire after `delay`.
  void Restart(SimTime delay);
  void Stop();
  bool running() const { return running_; }
  // Time at which the timer will fire (valid only while running()).
  SimTime deadline() const { return deadline_; }

 private:
  Simulator* sim_;
  std::function<void()> fn_;
  std::uint64_t id_ = 0;
  bool running_ = false;
  SimTime deadline_ = 0;
};

}  // namespace upr

#endif  // SRC_SIM_SIMULATOR_H_
