// Deterministic discrete-event simulator that drives the whole system.
//
// Every component (radio channel, TNC, serial line, host stack, application)
// schedules callbacks on a single Simulator. Events at equal timestamps run
// in scheduling order (a monotonically increasing sequence number breaks
// ties), so runs are bit-reproducible.
//
// Event storage is a hierarchical timer wheel (4 levels x 256 slots,
// 65.536 µs base granularity, ~78 h horizon) with a binary heap as overflow
// for beyond-horizon events. Wheel residents are doubly linked into their
// slot, so Cancel() unlinks and recycles in O(1) — the protocol timers
// (T1/T3/RTO/ARP/silo alarms) that are re-armed far more often than they
// fire no longer leave tombstones behind the way the old single
// priority_queue did (every cancelled entry used to stay queued, paying an
// O(log n) pop and holding its pool slot until it surfaced). The execution
// order is exactly the old (when, seq) order; `tools/check.sh` A/B-gates the
// wheel against the legacy heap-only mode with tracediff.
//
// Time is kept in integer nanoseconds (`SimTime`). Helpers convert from
// humane units.
#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

namespace upr {

// Simulated time in nanoseconds since simulation start.
using SimTime = std::int64_t;

constexpr SimTime kNanosecond = 1;
constexpr SimTime kMicrosecond = 1000 * kNanosecond;
constexpr SimTime kMillisecond = 1000 * kMicrosecond;
constexpr SimTime kSecond = 1000 * kMillisecond;

constexpr SimTime Microseconds(double us) {
  return static_cast<SimTime>(us * static_cast<double>(kMicrosecond));
}
constexpr SimTime Milliseconds(double ms) {
  return static_cast<SimTime>(ms * static_cast<double>(kMillisecond));
}
constexpr SimTime Seconds(double s) {
  return static_cast<SimTime>(s * static_cast<double>(kSecond));
}
constexpr double ToSeconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}
constexpr double ToMillis(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kMillisecond);
}

// Transmission time of `bytes` at `bits_per_second` (8 bits per byte; HDLC
// bit-stuffing overhead is ignored, as the paper's budget analysis does).
// Integer math with round-half-up: the old double formula truncated, so
// rates that don't divide evenly (1200, 9600, ...) drifted up to 1 ns per
// frame — the same error class PR 1 fixed for per-byte serial `byte_time`.
constexpr SimTime TransmitTime(std::size_t bytes, std::uint64_t bits_per_second) {
  if (bits_per_second == 0) {
    return 0;
  }
  using Wide = unsigned __int128;
  Wide ns = (Wide(bytes) * 8u * Wide(kSecond) + bits_per_second / 2) /
            bits_per_second;
  constexpr Wide kMax = Wide(INT64_MAX);
  return ns > kMax ? INT64_MAX : static_cast<SimTime>(ns);
}

class Simulator {
 public:
  // Event-queue implementation. kTimerWheel is the default; kHeap is the
  // seed's single priority_queue with lazy tombstones, kept for the
  // tracediff A/B equivalence gate (`uprsim --event-queue heap`).
  enum class EventQueue { kTimerWheel, kHeap };

  // Default used by Simulator() — lets tools select the implementation
  // without threading a parameter through every scenario constructor.
  static void SetDefaultEventQueue(EventQueue q);
  static EventQueue default_event_queue();

  Simulator();
  explicit Simulator(EventQueue q);
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime Now() const { return now_; }

  // Schedules `fn` to run at Now() + delay (delay < 0 is clamped to 0).
  // Returns an id usable with Cancel().
  std::uint64_t Schedule(SimTime delay, std::function<void()> fn);
  std::uint64_t ScheduleAt(SimTime when, std::function<void()> fn);

  // Cancels a pending event; a no-op if it already ran or was cancelled.
  // O(1) for wheel-resident events (unlink + immediate recycle).
  void Cancel(std::uint64_t id);

  // Runs events until the queue is empty or `deadline` is passed. Events at
  // exactly `deadline` still run. Returns the number of events executed.
  std::size_t RunUntil(SimTime deadline);

  // Runs until the event queue drains (use with care: periodic timers never
  // drain). Returns the number of events executed.
  std::size_t RunAll(std::size_t max_events = 100'000'000);

  // Runs a single event if one is pending; returns false when idle.
  bool Step();

  bool Idle() const;
  // Timestamp of the earliest pending event without running it. Returns
  // false when the queue is empty. The sharded city executor merges shard
  // queues globally-by-time with this.
  bool NextEventTime(SimTime* when) { return PeekNextTime(when); }
  std::size_t pending_events() const { return pending_; }
  std::size_t executed_events() const { return executed_; }
  // Total events ever scheduled (the interrupt-rate analogue: every serial
  // byte, timer and frame delivery passes through here).
  std::uint64_t events_scheduled() const { return next_seq_ - 1; }
  // Event objects allocated over the simulator's lifetime. Events are pooled
  // on a free list, so this tracks peak concurrency, not event count.
  std::size_t pool_capacity() const { return pool_.size(); }
  std::size_t pool_free() const { return free_.size(); }
  // Events currently resident in the wheel vs. the overflow heap (the heap
  // also counts not-yet-surfaced tombstones).
  std::size_t wheel_resident() const { return wheel_count_; }
  std::size_t heap_resident() const { return queue_.size(); }

 private:
  // Wheel geometry: 4 levels of 256 slots. Level 0 slots are 2^16 ns
  // (65.536 µs); each level is 256x coarser. Horizon = 2^48 ns ≈ 78 h;
  // events beyond it overflow to the heap.
  static constexpr int kLevels = 4;
  static constexpr int kSlotBits = 8;
  static constexpr int kSlots = 1 << kSlotBits;            // 256
  static constexpr int kShift0 = 16;
  static constexpr int Shift(int level) { return kShift0 + kSlotBits * level; }

  static constexpr std::int8_t kLocFree = -3;
  static constexpr std::int8_t kLocHeap = -2;
  // loc >= 0: wheel level the event is linked into.

  struct Event {
    SimTime when = 0;
    std::uint64_t seq = 0;
    std::function<void()> fn;
    Event* prev = nullptr;  // intrusive slot links while wheel-resident
    Event* next = nullptr;
    std::uint32_t gen = 0;        // bumped on alloc; ids embed it
    std::uint32_t pool_index = 0;
    std::int8_t loc = kLocFree;
    std::uint16_t slot = 0;
    bool cancelled = false;  // heap tombstone flag
  };
  struct EventCompare {
    bool operator()(const Event* a, const Event* b) const {
      if (a->when != b->when) {
        return a->when > b->when;
      }
      return a->seq > b->seq;
    }
  };
  // Strict (when, seq) order — the execution order contract.
  static bool Earlier(const Event* a, const Event* b) {
    if (a->when != b->when) {
      return a->when < b->when;
    }
    return a->seq < b->seq;
  }

  // Free-list allocation: events live in `pool_` for the simulator's
  // lifetime and recycle through `free_` instead of a per-schedule
  // make_shared (the old scheme paid an allocation and a control block per
  // serial byte — the hot path bench_e5 measures).
  Event* AllocEvent();
  void Recycle(Event* ev);

  // Queue placement and removal.
  void Place(Event* ev);
  void WheelInsert(Event* ev, int level);
  void WheelUnlink(Event* ev);
  // Earliest wheel resident by (when, seq), or nullptr. Cached; recomputed
  // only when the cached minimum is removed.
  Event* WheelMin();
  Event* WheelScanMin() const;
  // First occupied slot at `level` in wrap order starting at `from`; -1 when
  // the level is empty.
  int FindOccupied(int level, int from) const;
  // Re-buckets coarse slots after now_ advances across slot boundaries.
  void AdvanceWheel(SimTime t);
  void CascadeSlot(int level, int slot);
  // Drops cancelled heap tombstones off the top of the heap.
  void DrainHeapTombstones();

  // Pops the next non-cancelled event, or nullptr. The returned event is
  // still owned by the pool; callers must Recycle() it.
  Event* PopNext();
  // Time of the next pending event; false when idle.
  bool PeekNextTime(SimTime* when);

  EventQueue mode_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::size_t pending_ = 0;   // non-cancelled events in queue
  std::size_t executed_ = 0;

  // Overflow heap (and the whole store in kHeap mode).
  std::priority_queue<Event*, std::vector<Event*>, EventCompare> queue_;

  // Timer wheel state.
  Event* slots_[kLevels][kSlots] = {};
  std::uint64_t occ_[kLevels][kSlots / 64] = {};
  std::uint64_t base_[kLevels] = {};  // absolute slot index of now_ per level
  std::size_t wheel_count_ = 0;
  Event* cached_min_ = nullptr;
  bool cached_min_valid_ = true;  // empty wheel: valid, nullptr

  std::vector<std::unique_ptr<Event>> pool_;
  std::vector<Event*> free_;
};

// RAII one-shot timer bound to a Simulator. Restart() re-arms; destruction or
// Stop() cancels. Used for protocol timers (T1, ARP expiry, RTO, ...).
class Timer {
 public:
  Timer(Simulator* sim, std::function<void()> fn) : sim_(sim), fn_(std::move(fn)) {}
  ~Timer() { Stop(); }
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  // (Re)arms the timer to fire after `delay`.
  void Restart(SimTime delay);
  void Stop();
  bool running() const { return running_; }
  // Time at which the timer will fire (valid only while running()).
  SimTime deadline() const { return deadline_; }

 private:
  Simulator* sim_;
  std::function<void()> fn_;
  std::uint64_t id_ = 0;
  bool running_ = false;
  SimTime deadline_ = 0;
};

}  // namespace upr

#endif  // SRC_SIM_SIMULATOR_H_
