#include "src/sim/shard_exec.h"

#include <algorithm>

#include "src/util/panic.h"

namespace upr {

ShardSet::ShardSet(const Config& config)
    : config_(config), shard_count_(config.shards == 0 ? 1 : config.shards) {
  config_.threads = std::max(1, config_.threads);
  config_.threads =
      std::min<int>(config_.threads, static_cast<int>(shard_count_));
  if (config_.lookahead < 1) {
    config_.lookahead = 1;
  }
  const std::size_t sims =
      config_.mode == Mode::kUnified ? 1 : shard_count_;
  sims_.reserve(sims);
  for (std::size_t i = 0; i < sims; ++i) {
    sims_.push_back(std::make_unique<Simulator>());
  }
  shards_.resize(shard_count_);
  for (std::size_t k = 0; k < shard_count_; ++k) {
    shards_[k] = config_.mode == Mode::kUnified ? sims_[0].get()
                                                : sims_[k].get();
  }
  current_ = shards_[0];
  if (config_.mode == Mode::kParallel) {
    src_pending_.reset(new std::atomic<std::uint64_t>[shard_count_]);
    for (std::size_t k = 0; k < shard_count_; ++k) {
      src_pending_[k].store(0, std::memory_order_relaxed);
    }
    lanes_by_src_.resize(shard_count_);
    inject_bufs_.resize(shard_count_);
  }
}

ShardSet::~ShardSet() {
  if (!workers_.empty()) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stopping_ = true;
    }
    cv_work_.notify_all();
    for (std::thread& t : workers_) {
      t.join();
    }
  }
}

Simulator* ShardSet::shard(std::size_t k) {
  UPR_INVARIANT(k < shard_count_, "shard index %zu out of range (%zu shards)",
                k, shard_count_);
  return shards_[k];
}

void ShardSet::EnsureLane(std::size_t src, std::size_t dst) {
  if (config_.mode != Mode::kParallel || src == dst) {
    return;
  }
  UPR_INVARIANT(workers_.empty(),
                "EnsureLane(%zu,%zu) after workers started — lanes are "
                "topology-time only",
                src, dst);
  const std::uint64_t key = LaneKey(src, dst);
  if (lanes_.find(key) != lanes_.end()) {
    return;
  }
  auto lane = std::make_unique<Lane>(config_.ring_capacity);
  lane->dst = dst;
  lanes_by_src_[src].push_back(lane.get());
  lanes_.emplace(key, std::move(lane));
}

void ShardSet::Post(std::size_t src, std::size_t dst, SimTime when,
                    std::function<void()> fn) {
  UPR_INVARIANT(src < shard_count_ && dst < shard_count_,
                "Post shard out of range (%zu -> %zu, %zu shards)", src, dst,
                shard_count_);
  if (config_.mode != Mode::kParallel || src == dst) {
    // Serial modes (and a self-post) schedule straight into the destination
    // queue with the same timestamp the parallel path would use — this is
    // what keeps the three modes trace-equivalent.
    ++serial_posted_;
    shards_[dst]->ScheduleAt(when, std::move(fn));
    if (config_.mode == Mode::kSharded) {
      merge_heap_.push({when, dst});
    }
    return;
  }
  Simulator* src_sim = shards_[src];
  UPR_INVARIANT(when >= src_sim->Now() + config_.lookahead,
                "cross-shard post at %lld violates lookahead %lld (src now "
                "%lld)",
                static_cast<long long>(when),
                static_cast<long long>(config_.lookahead),
                static_cast<long long>(src_sim->Now()));
  auto it = lanes_.find(LaneKey(src, dst));
  UPR_INVARIANT(it != lanes_.end(),
                "cross-shard post %zu -> %zu without an EnsureLane at "
                "topology build time",
                src, dst);
  Lane& ln = *it->second;
  Handoff h;
  h.when = when;
  h.seq = ln.next_seq++;
  h.src = src;
  h.fn = std::move(fn);
  ++ln.posted;
  if (!ln.ring.TryPush(h)) {
    ++ln.overflowed;
    std::lock_guard<std::mutex> lk(ln.overflow_mu);
    ln.overflow.push_back(std::move(h));
  }
  src_pending_[src].fetch_add(1, std::memory_order_release);
}

void ShardSet::DrainLanes() {
  if (config_.mode != Mode::kParallel) {
    return;
  }
  bool any = false;
  for (std::size_t src = 0; src < shard_count_; ++src) {
    if (src_pending_[src].exchange(0, std::memory_order_acquire) == 0) {
      continue;
    }
    any = true;
    for (Lane* ln : lanes_by_src_[src]) {
      std::vector<Handoff>& bucket = inject_bufs_[ln->dst];
      Handoff h;
      while (ln->ring.TryPop(&h)) {
        bucket.push_back(std::move(h));
      }
      std::lock_guard<std::mutex> lk(ln->overflow_mu);
      for (Handoff& o : ln->overflow) {
        bucket.push_back(std::move(o));
      }
      ln->overflow.clear();
    }
  }
  if (!any) {
    return;
  }
  for (std::size_t dst = 0; dst < shard_count_; ++dst) {
    std::vector<Handoff>& bucket = inject_bufs_[dst];
    if (bucket.empty()) {
      continue;
    }
    // (when, src, seq) is a total order over handoffs: seq is per-(src,dst)
    // FIFO, so two runs with different thread interleavings inject — and
    // therefore execute — in exactly the same order.
    std::sort(bucket.begin(), bucket.end(),
              [](const Handoff& a, const Handoff& b) {
                if (a.when != b.when) return a.when < b.when;
                if (a.src != b.src) return a.src < b.src;
                return a.seq < b.seq;
              });
    for (Handoff& h : bucket) {
      shards_[dst]->ScheduleAt(h.when, std::move(h.fn));
      ++stats_injected_;
    }
    bucket.clear();
  }
}

std::size_t ShardSet::RunUnified(SimTime deadline) {
  current_ = shards_[0];
  return shards_[0]->RunUntil(deadline);
}

std::size_t ShardSet::RunShardedMerge(SimTime deadline) {
  // Rebuild the candidate heap from scratch: entries are (time, shard)
  // pairs, lazily invalidated — on pop we re-check the shard's real next
  // event time and re-push when the entry went stale (ran, cancelled, or
  // superseded). Ties execute lowest shard index first, which is the
  // deterministic rule the two-run gate pins.
  while (!merge_heap_.empty()) {
    merge_heap_.pop();
  }
  for (std::size_t k = 0; k < shard_count_; ++k) {
    SimTime t;
    if (shards_[k]->NextEventTime(&t)) {
      merge_heap_.push({t, k});
    }
  }
  std::size_t n = 0;
  while (!merge_heap_.empty()) {
    const auto [t, k] = merge_heap_.top();
    if (t > deadline) {
      break;
    }
    merge_heap_.pop();
    SimTime real;
    if (!shards_[k]->NextEventTime(&real)) {
      continue;  // stale: the event ran or was cancelled
    }
    if (real != t) {
      merge_heap_.push({real, k});
      continue;
    }
    current_ = shards_[k];
    shards_[k]->Step();
    ++n;
    ++stats_merge_steps_;
    if (shards_[k]->NextEventTime(&real)) {
      merge_heap_.push({real, k});
    }
  }
  for (std::size_t k = 0; k < shard_count_; ++k) {
    shards_[k]->RunUntil(deadline);  // settle every shard clock at deadline
  }
  return n;
}

void ShardSet::StartWorkers() {
  if (!workers_.empty()) {
    return;
  }
  workers_.reserve(static_cast<std::size_t>(config_.threads));
  for (int i = 0; i < config_.threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

void ShardSet::WorkerLoop(int worker_index) {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    SimTime window_end;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_work_.wait(lk,
                    [&] { return stopping_ || epoch_ != seen_epoch; });
      if (stopping_) {
        return;
      }
      seen_epoch = epoch_;
      window_end = window_end_;
    }
    std::size_t n = 0;
    for (std::size_t k = static_cast<std::size_t>(worker_index);
         k < shard_count_; k += static_cast<std::size_t>(config_.threads)) {
      if (enter_hook_) {
        enter_hook_(k);
      }
      n += shards_[k]->RunUntil(window_end);
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      window_executed_ += n;
      ++workers_done_;
    }
    cv_done_.notify_one();
  }
}

void ShardSet::RunWindowOnWorkers(SimTime window_end) {
  std::unique_lock<std::mutex> lk(mu_);
  window_end_ = window_end;
  workers_done_ = 0;
  window_executed_ = 0;
  ++epoch_;
  cv_work_.notify_all();
  cv_done_.wait(lk, [&] { return workers_done_ == config_.threads; });
}

std::size_t ShardSet::RunParallel(SimTime deadline) {
  StartWorkers();
  std::size_t total = 0;
  for (;;) {
    DrainLanes();
    bool any = false;
    SimTime next = 0;
    for (std::size_t k = 0; k < shard_count_; ++k) {
      SimTime t;
      if (shards_[k]->NextEventTime(&t) && (!any || t < next)) {
        next = t;
        any = true;
      }
    }
    if (!any || next > deadline) {
      break;
    }
    // Every event in [next, next + lookahead) can run without hearing from
    // another shard: a handoff sent at time t arrives no earlier than
    // t + lookahead >= next + lookahead, i.e. strictly past the window.
    SimTime window_end = next + config_.lookahead - 1;
    if (window_end > deadline || window_end < next) {  // clamp + overflow
      window_end = deadline;
    }
    RunWindowOnWorkers(window_end);
    total += window_executed_;
    ++stats_windows_;
  }
  DrainLanes();
  for (std::size_t k = 0; k < shard_count_; ++k) {
    shards_[k]->RunUntil(deadline);
  }
  return total;
}

std::size_t ShardSet::RunUntil(SimTime deadline) {
  switch (config_.mode) {
    case Mode::kUnified:
      return RunUnified(deadline);
    case Mode::kSharded:
      return RunShardedMerge(deadline);
    case Mode::kParallel:
      return RunParallel(deadline);
  }
  return 0;
}

bool ShardSet::Idle() {
  for (const auto& sim : sims_) {
    SimTime t;
    if (sim->NextEventTime(&t)) {
      return false;
    }
  }
  return true;
}

ShardStats ShardSet::stats() const {
  ShardStats s;
  s.posted = serial_posted_;
  s.injected = stats_injected_;
  s.windows = stats_windows_;
  s.merge_steps = stats_merge_steps_;
  for (const auto& [key, ln] : lanes_) {
    (void)key;
    s.posted += ln->posted;
    s.ring_overflow += ln->overflowed;
  }
  return s;
}

std::uint64_t ShardSet::TotalEventsScheduled() const {
  std::uint64_t n = 0;
  for (const auto& sim : sims_) {
    n += sim->events_scheduled();
  }
  return n;
}

std::size_t ShardSet::TotalEventsExecuted() const {
  std::size_t n = 0;
  for (const auto& sim : sims_) {
    n += sim->executed_events();
  }
  return n;
}

}  // namespace upr
