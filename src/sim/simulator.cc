#include "src/sim/simulator.h"

#include "src/util/panic.h"

namespace upr {

std::uint64_t Simulator::Schedule(SimTime delay, std::function<void()> fn) {
  if (delay < 0) {
    delay = 0;
  }
  return ScheduleAt(now_ + delay, std::move(fn));
}

Simulator::Event* Simulator::AllocEvent() {
  if (!free_.empty()) {
    Event* ev = free_.back();
    free_.pop_back();
    ev->cancelled = false;
    return ev;
  }
  pool_.push_back(std::make_unique<Event>());
  return pool_.back().get();
}

void Simulator::Recycle(Event* ev) {
  ev->fn = nullptr;  // release the closure's captures now, not at reuse
  free_.push_back(ev);
}

std::uint64_t Simulator::ScheduleAt(SimTime when, std::function<void()> fn) {
  if (when < now_) {
    when = now_;
  }
  Event* ev = AllocEvent();
  ev->when = when;
  ev->seq = next_seq_++;
  ev->fn = std::move(fn);
  queue_.push(ev);
  live_.emplace(ev->seq, ev);
  ++pending_;
  return ev->seq;
}

void Simulator::Cancel(std::uint64_t id) {
  auto it = live_.find(id);
  if (it == live_.end()) {
    return;
  }
  // The event stays queued (priority_queue has no remove) but marked; it is
  // recycled when it surfaces in PopNext/RunUntil.
  it->second->cancelled = true;
  it->second->fn = nullptr;
  --pending_;
  live_.erase(it);
}

Simulator::Event* Simulator::PopNext() {
  while (!queue_.empty()) {
    Event* ev = queue_.top();
    queue_.pop();
    if (ev->cancelled) {
      Recycle(ev);
      continue;
    }
    UPR_INVARIANT(live_.erase(ev->seq) == 1,
                  "event seq %llu surfaced live but is not tracked",
                  static_cast<unsigned long long>(ev->seq));
    UPR_INVARIANT(pending_ > 0, "pending event count underflow at seq %llu",
                  static_cast<unsigned long long>(ev->seq));
    --pending_;
    return ev;
  }
  return nullptr;
}

bool Simulator::Step() {
  Event* ev = PopNext();
  if (!ev) {
    return false;
  }
  UPR_INVARIANT(ev->when >= now_,
                "event seq %llu would move time backwards (%lld < %lld)",
                static_cast<unsigned long long>(ev->seq),
                static_cast<long long>(ev->when), static_cast<long long>(now_));
  now_ = ev->when;
  ++executed_;
  // Move the closure out and recycle before running: the callback may
  // schedule new events, which must be free to reuse this slot.
  std::function<void()> fn = std::move(ev->fn);
  Recycle(ev);
  fn();
  return true;
}

std::size_t Simulator::RunUntil(SimTime deadline) {
  std::size_t n = 0;
  while (!queue_.empty()) {
    // Peek: skip cancelled entries without advancing time.
    Event* top = queue_.top();
    if (top->cancelled) {
      queue_.pop();
      Recycle(top);
      continue;
    }
    if (top->when > deadline) {
      break;
    }
    Step();
    ++n;
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
  return n;
}

std::size_t Simulator::RunAll(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && Step()) {
    ++n;
  }
  return n;
}

bool Simulator::Idle() const { return pending_ == 0; }

void Timer::Restart(SimTime delay) {
  Stop();
  running_ = true;
  deadline_ = sim_->Now() + (delay < 0 ? 0 : delay);
  id_ = sim_->Schedule(delay, [this] {
    running_ = false;
    fn_();
  });
}

void Timer::Stop() {
  if (running_) {
    sim_->Cancel(id_);
    running_ = false;
  }
}

}  // namespace upr
