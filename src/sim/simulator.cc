#include "src/sim/simulator.h"

#include <bit>

#include "src/util/panic.h"

namespace upr {

namespace {
Simulator::EventQueue& DefaultQueueSlot() {
  static Simulator::EventQueue q = Simulator::EventQueue::kTimerWheel;
  return q;
}
}  // namespace

void Simulator::SetDefaultEventQueue(EventQueue q) { DefaultQueueSlot() = q; }
Simulator::EventQueue Simulator::default_event_queue() {
  return DefaultQueueSlot();
}

Simulator::Simulator() : Simulator(default_event_queue()) {}
Simulator::Simulator(EventQueue q) : mode_(q) {}
Simulator::~Simulator() = default;

std::uint64_t Simulator::Schedule(SimTime delay, std::function<void()> fn) {
  if (delay < 0) {
    delay = 0;
  }
  return ScheduleAt(now_ + delay, std::move(fn));
}

Simulator::Event* Simulator::AllocEvent() {
  Event* ev;
  if (!free_.empty()) {
    ev = free_.back();
    free_.pop_back();
  } else {
    pool_.push_back(std::make_unique<Event>());
    ev = pool_.back().get();
    ev->pool_index = static_cast<std::uint32_t>(pool_.size() - 1);
  }
  // The generation stamp bumps per allocation, so a Cancel() holding an id
  // from a previous tenant of this slot is a guaranteed no-op.
  ++ev->gen;
  ev->cancelled = false;
  ev->prev = nullptr;
  ev->next = nullptr;
  return ev;
}

void Simulator::Recycle(Event* ev) {
  ev->fn = nullptr;  // release the closure's captures now, not at reuse
  ev->loc = kLocFree;
  ev->prev = nullptr;
  ev->next = nullptr;
  free_.push_back(ev);
}

std::uint64_t Simulator::ScheduleAt(SimTime when, std::function<void()> fn) {
  if (when < now_) {
    when = now_;
  }
  Event* ev = AllocEvent();
  ev->when = when;
  ev->seq = next_seq_++;
  ev->fn = std::move(fn);
  Place(ev);
  ++pending_;
  return (static_cast<std::uint64_t>(ev->gen) << 32) | ev->pool_index;
}

void Simulator::Place(Event* ev) {
  if (mode_ == EventQueue::kTimerWheel) {
    auto when_u = static_cast<std::uint64_t>(ev->when);
    for (int level = 0; level < kLevels; ++level) {
      if ((when_u >> Shift(level)) - base_[level] <
          static_cast<std::uint64_t>(kSlots)) {
        WheelInsert(ev, level);
        return;
      }
    }
  }
  ev->loc = kLocHeap;
  queue_.push(ev);
}

void Simulator::WheelInsert(Event* ev, int level) {
  auto slot = static_cast<int>(
      (static_cast<std::uint64_t>(ev->when) >> Shift(level)) & (kSlots - 1));
  ev->loc = static_cast<std::int8_t>(level);
  ev->slot = static_cast<std::uint16_t>(slot);
  ev->prev = nullptr;
  ev->next = slots_[level][slot];
  if (ev->next != nullptr) {
    ev->next->prev = ev;
  }
  slots_[level][slot] = ev;
  occ_[level][slot >> 6] |= std::uint64_t{1} << (slot & 63);
  ++wheel_count_;
  if (cached_min_valid_ &&
      (cached_min_ == nullptr || Earlier(ev, cached_min_))) {
    cached_min_ = ev;
  }
}

void Simulator::WheelUnlink(Event* ev) {
  int level = ev->loc;
  int slot = ev->slot;
  UPR_INVARIANT(level >= 0 && level < kLevels,
                "wheel unlink of non-resident event seq %llu",
                static_cast<unsigned long long>(ev->seq));
  if (ev->prev != nullptr) {
    ev->prev->next = ev->next;
  } else {
    slots_[level][slot] = ev->next;
  }
  if (ev->next != nullptr) {
    ev->next->prev = ev->prev;
  }
  if (slots_[level][slot] == nullptr) {
    occ_[level][slot >> 6] &= ~(std::uint64_t{1} << (slot & 63));
  }
  ev->prev = nullptr;
  ev->next = nullptr;
  --wheel_count_;
  if (cached_min_ == ev) {
    cached_min_ = nullptr;
    cached_min_valid_ = false;
  }
}

int Simulator::FindOccupied(int level, int from) const {
  const std::uint64_t* occ = occ_[level];
  int word = from >> 6;
  std::uint64_t bits = occ[word] >> (from & 63);
  if (bits != 0) {
    return from + std::countr_zero(bits);
  }
  for (int w = word + 1; w < kSlots / 64; ++w) {
    if (occ[w] != 0) {
      return w * 64 + std::countr_zero(occ[w]);
    }
  }
  // Wrap: slots modularly behind `from` hold later absolute slot indices
  // (all deltas are < kSlots), so scanning them second preserves time order.
  for (int w = 0; w <= word; ++w) {
    if (occ[w] != 0) {
      return w * 64 + std::countr_zero(occ[w]);
    }
  }
  return -1;
}

Simulator::Event* Simulator::WheelScanMin() const {
  Event* best = nullptr;
  for (int level = 0; level < kLevels; ++level) {
    int slot = FindOccupied(level, static_cast<int>(base_[level] & (kSlots - 1)));
    if (slot < 0) {
      continue;
    }
    for (Event* ev = slots_[level][slot]; ev != nullptr; ev = ev->next) {
      if (best == nullptr || Earlier(ev, best)) {
        best = ev;
      }
    }
  }
  return best;
}

Simulator::Event* Simulator::WheelMin() {
  if (!cached_min_valid_) {
    cached_min_ = WheelScanMin();
    cached_min_valid_ = true;
  }
  return cached_min_;
}

void Simulator::CascadeSlot(int level, int slot) {
  Event* ev = slots_[level][slot];
  if (ev == nullptr) {
    return;
  }
  slots_[level][slot] = nullptr;
  occ_[level][slot >> 6] &= ~(std::uint64_t{1} << (slot & 63));
  while (ev != nullptr) {
    Event* next = ev->next;
    ev->prev = nullptr;
    ev->next = nullptr;
    --wheel_count_;
    Place(ev);  // re-buckets at a finer level; set membership is unchanged
    ev = next;
  }
}

void Simulator::AdvanceWheel(SimTime t) {
  if (mode_ != EventQueue::kTimerWheel) {
    return;
  }
  auto t_u = static_cast<std::uint64_t>(t);
  if ((t_u >> Shift(0)) == base_[0]) {
    return;  // same finest-level slot: nothing can have re-bucketed
  }
  bool changed[kLevels];
  for (int level = 0; level < kLevels; ++level) {
    std::uint64_t nb = t_u >> Shift(level);
    changed[level] = nb != base_[level];
    base_[level] = nb;
  }
  // Top-down so a slot cascading out of level 3 can land straight in the
  // freshly positioned level 2/1/0 buckets.
  for (int level = kLevels - 1; level >= 1; --level) {
    if (changed[level]) {
      CascadeSlot(level, static_cast<int>(base_[level] & (kSlots - 1)));
    }
  }
}

void Simulator::Cancel(std::uint64_t id) {
  auto index = static_cast<std::uint32_t>(id & 0xFFFFFFFF);
  auto gen = static_cast<std::uint32_t>(id >> 32);
  if (index >= pool_.size()) {
    return;
  }
  Event* ev = pool_[index].get();
  if (ev->gen != gen || ev->loc == kLocFree || ev->cancelled) {
    return;  // already ran, already cancelled, or a stale id
  }
  if (ev->loc == kLocHeap) {
    // The heap has no O(1) remove; leave a tombstone that PopNext recycles
    // when it surfaces.
    ev->cancelled = true;
    ev->fn = nullptr;
  } else {
    WheelUnlink(ev);
    Recycle(ev);
  }
  UPR_INVARIANT(pending_ > 0, "pending event count underflow cancelling %llu",
                static_cast<unsigned long long>(id));
  --pending_;
}

void Simulator::DrainHeapTombstones() {
  while (!queue_.empty() && queue_.top()->cancelled) {
    Event* ev = queue_.top();
    queue_.pop();
    Recycle(ev);
  }
}

Simulator::Event* Simulator::PopNext() {
  DrainHeapTombstones();
  Event* heap_top = queue_.empty() ? nullptr : queue_.top();
  Event* wheel_min = mode_ == EventQueue::kTimerWheel ? WheelMin() : nullptr;
  Event* ev;
  if (heap_top == nullptr && wheel_min == nullptr) {
    return nullptr;
  }
  if (wheel_min == nullptr ||
      (heap_top != nullptr && Earlier(heap_top, wheel_min))) {
    queue_.pop();
    ev = heap_top;
    UPR_INVARIANT(ev->loc == kLocHeap,
                  "event seq %llu surfaced from heap with wrong location",
                  static_cast<unsigned long long>(ev->seq));
  } else {
    WheelUnlink(wheel_min);
    ev = wheel_min;
  }
  UPR_INVARIANT(pending_ > 0, "pending event count underflow at seq %llu",
                static_cast<unsigned long long>(ev->seq));
  --pending_;
  return ev;
}

bool Simulator::PeekNextTime(SimTime* when) {
  DrainHeapTombstones();
  Event* heap_top = queue_.empty() ? nullptr : queue_.top();
  Event* wheel_min = mode_ == EventQueue::kTimerWheel ? WheelMin() : nullptr;
  const Event* next = nullptr;
  if (heap_top != nullptr && wheel_min != nullptr) {
    next = Earlier(heap_top, wheel_min) ? heap_top : wheel_min;
  } else {
    next = heap_top != nullptr ? heap_top : wheel_min;
  }
  if (next == nullptr) {
    return false;
  }
  *when = next->when;
  return true;
}

bool Simulator::Step() {
  Event* ev = PopNext();
  if (!ev) {
    return false;
  }
  UPR_INVARIANT(ev->when >= now_,
                "event seq %llu would move time backwards (%lld < %lld)",
                static_cast<unsigned long long>(ev->seq),
                static_cast<long long>(ev->when), static_cast<long long>(now_));
  now_ = ev->when;
  AdvanceWheel(now_);
  ++executed_;
  // Move the closure out and recycle before running: the callback may
  // schedule new events, which must be free to reuse this slot.
  std::function<void()> fn = std::move(ev->fn);
  Recycle(ev);
  fn();
  return true;
}

std::size_t Simulator::RunUntil(SimTime deadline) {
  std::size_t n = 0;
  SimTime next = 0;
  while (PeekNextTime(&next) && next <= deadline) {
    Step();
    ++n;
  }
  if (now_ < deadline) {
    now_ = deadline;
    AdvanceWheel(now_);
  }
  return n;
}

std::size_t Simulator::RunAll(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && Step()) {
    ++n;
  }
  return n;
}

bool Simulator::Idle() const { return pending_ == 0; }

void Timer::Restart(SimTime delay) {
  Stop();
  running_ = true;
  deadline_ = sim_->Now() + (delay < 0 ? 0 : delay);
  id_ = sim_->Schedule(delay, [this] {
    running_ = false;
    fn_();
  });
}

void Timer::Stop() {
  if (running_) {
    sim_->Cancel(id_);
    running_ = false;
  }
}

}  // namespace upr
