#include "src/sim/simulator.h"

namespace upr {

std::uint64_t Simulator::Schedule(SimTime delay, std::function<void()> fn) {
  if (delay < 0) {
    delay = 0;
  }
  return ScheduleAt(now_ + delay, std::move(fn));
}

std::uint64_t Simulator::ScheduleAt(SimTime when, std::function<void()> fn) {
  if (when < now_) {
    when = now_;
  }
  auto ev = std::make_shared<Event>();
  ev->when = when;
  ev->seq = next_seq_++;
  ev->fn = std::move(fn);
  queue_.push(ev);
  live_.emplace(ev->seq, ev);
  ++pending_;
  return ev->seq;
}

void Simulator::Cancel(std::uint64_t id) {
  auto it = live_.find(id);
  if (it == live_.end()) {
    return;
  }
  if (auto ev = it->second.lock(); ev && !ev->cancelled) {
    ev->cancelled = true;
    --pending_;
  }
  live_.erase(it);
}

std::shared_ptr<Simulator::Event> Simulator::PopNext() {
  while (!queue_.empty()) {
    auto ev = queue_.top();
    queue_.pop();
    if (ev->cancelled) {
      continue;
    }
    live_.erase(ev->seq);
    --pending_;
    return ev;
  }
  return nullptr;
}

bool Simulator::Step() {
  auto ev = PopNext();
  if (!ev) {
    return false;
  }
  now_ = ev->when;
  ++executed_;
  ev->fn();
  return true;
}

std::size_t Simulator::RunUntil(SimTime deadline) {
  std::size_t n = 0;
  while (!queue_.empty()) {
    // Peek: skip cancelled entries without advancing time.
    auto top = queue_.top();
    if (top->cancelled) {
      queue_.pop();
      continue;
    }
    if (top->when > deadline) {
      break;
    }
    Step();
    ++n;
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
  return n;
}

std::size_t Simulator::RunAll(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && Step()) {
    ++n;
  }
  return n;
}

bool Simulator::Idle() const { return pending_ == 0; }

void Timer::Restart(SimTime delay) {
  Stop();
  running_ = true;
  deadline_ = sim_->Now() + (delay < 0 ? 0 : delay);
  id_ = sim_->Schedule(delay, [this] {
    running_ = false;
    fn_();
  });
}

void Timer::Stop() {
  if (running_) {
    sim_->Cancel(id_);
    running_ = false;
  }
}

}  // namespace upr
