#include "src/net/arp.h"

#include <algorithm>

#include "src/util/logging.h"

namespace upr {

namespace {

constexpr const char* kTag = "arp";
constexpr std::uint16_t kPtypeIp = 0x0800;

std::size_t HwLen(std::uint16_t htype) {
  return htype == kArpHtypeAx25 ? kAx25AddressBytes : 6;
}

void EncodeHw(ByteWriter* w, std::uint16_t htype, const std::optional<HwAddress>& hw) {
  if (!hw.has_value()) {
    for (std::size_t i = 0; i < HwLen(htype); ++i) {
      w->WriteU8(0);
    }
    return;
  }
  if (htype == kArpHtypeAx25) {
    const auto& a = std::get<Ax25HwAddr>(*hw);
    auto enc = a.station.Encode(false, true);
    for (std::uint8_t b : enc) {
      w->WriteU8(b);
    }
  } else {
    const auto& e = std::get<EtherAddr>(*hw);
    for (std::uint8_t b : e.octets) {
      w->WriteU8(b);
    }
  }
}

std::optional<HwAddress> DecodeHw(ByteReader* r, std::uint16_t htype) {
  Bytes raw = r->ReadBytes(HwLen(htype));
  if (raw.size() != HwLen(htype)) {
    return std::nullopt;
  }
  bool all_zero = true;
  for (std::uint8_t b : raw) {
    if (b != 0) {
      all_zero = false;
      break;
    }
  }
  if (all_zero) {
    return std::nullopt;  // unfilled target field in a request
  }
  if (htype == kArpHtypeAx25) {
    auto dec = Ax25Address::Decode(raw.data());
    if (!dec) {
      return std::nullopt;
    }
    return HwAddress(Ax25HwAddr{dec->address, {}});
  }
  EtherAddr e;
  std::copy(raw.begin(), raw.end(), e.octets.begin());
  return HwAddress(e);
}

}  // namespace

Bytes ArpPacket::Encode() const {
  Bytes out;
  ByteWriter w(&out);
  w.WriteU16(htype);
  w.WriteU16(kPtypeIp);
  w.WriteU8(static_cast<std::uint8_t>(HwLen(htype)));
  w.WriteU8(4);
  w.WriteU16(oper);
  EncodeHw(&w, htype, sender_hw);
  w.WriteU32(sender_ip.value());
  EncodeHw(&w, htype, target_hw);
  w.WriteU32(target_ip.value());
  return out;
}

std::optional<ArpPacket> ArpPacket::Decode(ByteView wire) {
  ByteReader r(wire.data(), wire.size());
  ArpPacket p;
  p.htype = r.ReadU16();
  std::uint16_t ptype = r.ReadU16();
  std::uint8_t hlen = r.ReadU8();
  std::uint8_t plen = r.ReadU8();
  if (!r.ok() || ptype != kPtypeIp || plen != 4 || hlen != HwLen(p.htype)) {
    return std::nullopt;
  }
  p.oper = r.ReadU16();
  auto sha = DecodeHw(&r, p.htype);
  p.sender_ip = IpV4Address(r.ReadU32());
  p.target_hw = DecodeHw(&r, p.htype);
  p.target_ip = IpV4Address(r.ReadU32());
  if (!r.ok() || !sha.has_value()) {
    return std::nullopt;
  }
  p.sender_hw = *sha;
  return p;
}

ArpResolver::ArpResolver(Simulator* sim, ArpConfig config, LocalIp local_ip,
                         HwAddress local_hw, TransmitArp transmit_arp,
                         SendResolved send_resolved)
    : sim_(sim),
      config_(std::move(config)),
      local_ip_(std::move(local_ip)),
      local_hw_(std::move(local_hw)),
      transmit_arp_(std::move(transmit_arp)),
      send_resolved_(std::move(send_resolved)) {}

bool ArpResolver::EntryValid(const Entry& e) const {
  if (!e.hw.has_value()) {
    return false;
  }
  return e.permanent || e.expires > sim_->Now();
}

std::optional<HwAddress> ArpResolver::Lookup(IpV4Address ip) const {
  auto it = cache_.find(ip);
  if (it == cache_.end() || !EntryValid(it->second)) {
    return std::nullopt;
  }
  return it->second.hw;
}

void ArpResolver::AddStatic(IpV4Address ip, HwAddress hw) {
  Entry& e = cache_[ip];
  e.hw = std::move(hw);
  e.permanent = true;
  e.retries = 0;
  if (e.retry_event != 0) {
    sim_->Cancel(e.retry_event);
    e.retry_event = 0;
  }
  // Flush anything queued for this address.
  while (!e.pending.empty()) {
    send_resolved_(std::move(e.pending.front()), *e.hw);
    e.pending.pop_front();
  }
}

void ArpResolver::Flush() {
  for (auto it = cache_.begin(); it != cache_.end();) {
    if (it->second.permanent) {
      ++it;
    } else {
      if (it->second.retry_event != 0) {
        sim_->Cancel(it->second.retry_event);
      }
      it = cache_.erase(it);
    }
  }
}

void ArpResolver::Send(PacketBuf&& ip_datagram, IpV4Address next_hop) {
  if (next_hop.IsLimitedBroadcast()) {
    send_resolved_(std::move(ip_datagram), config_.broadcast_hw);
    return;
  }
  Entry& e = cache_[next_hop];
  if (EntryValid(e)) {
    send_resolved_(std::move(ip_datagram), *e.hw);
    return;
  }
  // Not resolved (or expired): queue and (re)start resolution.
  if (e.pending.size() >= config_.max_pending_per_entry) {
    e.pending.pop_front();
    ++queue_drops_;
  }
  e.pending.push_back(std::move(ip_datagram));
  if (e.retry_event == 0) {
    e.hw.reset();
    e.retries = 0;
    SendRequest(next_hop);
    ScheduleRetry(next_hop);
  }
}

void ArpResolver::SendRequest(IpV4Address ip) {
  ArpPacket req;
  req.htype = config_.hardware_type;
  req.oper = kArpOpRequest;
  req.sender_hw = local_hw_;
  req.sender_ip = local_ip_();
  req.target_ip = ip;
  ++requests_sent_;
  UPR_TRACE(kTag, "request who-has %s", ip.ToString().c_str());
  transmit_arp_(req.Encode(), std::nullopt);
}

void ArpResolver::ScheduleRetry(IpV4Address ip) {
  Entry& e = cache_[ip];
  e.retry_event = sim_->Schedule(config_.retry_interval, [this, ip] {
    auto it = cache_.find(ip);
    if (it == cache_.end()) {
      return;
    }
    Entry& entry = it->second;
    entry.retry_event = 0;
    if (EntryValid(entry)) {
      return;
    }
    if (++entry.retries >= config_.max_retries) {
      UPR_DEBUG(kTag, "resolution of %s failed", ip.ToString().c_str());
      resolution_failures_ += 1;
      queue_drops_ += entry.pending.size();
      cache_.erase(it);
      return;
    }
    SendRequest(ip);
    ScheduleRetry(ip);
  });
}

void ArpResolver::ResolveEntry(IpV4Address ip, const HwAddress& hw) {
  Entry& e = cache_[ip];
  if (e.permanent) {
    // Refresh only the station address for AX.25 (keep the configured
    // digipeater path).
    if (config_.hardware_type == kArpHtypeAx25 && e.hw.has_value()) {
      auto& existing = std::get<Ax25HwAddr>(*e.hw);
      existing.station = std::get<Ax25HwAddr>(hw).station;
    }
    return;
  }
  e.hw = hw;
  e.expires = sim_->Now() + config_.entry_ttl;
  e.retries = 0;
  if (e.retry_event != 0) {
    sim_->Cancel(e.retry_event);
    e.retry_event = 0;
  }
  while (!e.pending.empty()) {
    send_resolved_(std::move(e.pending.front()), *e.hw);
    e.pending.pop_front();
  }
}

void ArpResolver::HandleArpPacket(ByteView wire) {
  auto packet = ArpPacket::Decode(wire);
  if (!packet || packet->htype != config_.hardware_type) {
    return;
  }
  IpV4Address me = local_ip_();
  // RFC 826 merge: refresh an existing entry for the sender unconditionally.
  auto it = cache_.find(packet->sender_ip);
  bool known = it != cache_.end();
  if (known) {
    ResolveEntry(packet->sender_ip, packet->sender_hw);
  }
  if (packet->target_ip != me) {
    return;
  }
  // Addressed to us: learn the sender even if previously unknown.
  if (!known) {
    ResolveEntry(packet->sender_ip, packet->sender_hw);
  }
  if (packet->oper == kArpOpRequest) {
    ArpPacket reply;
    reply.htype = config_.hardware_type;
    reply.oper = kArpOpReply;
    reply.sender_hw = local_hw_;
    reply.sender_ip = me;
    reply.target_hw = packet->sender_hw;
    reply.target_ip = packet->sender_ip;
    ++replies_sent_;
    transmit_arp_(reply.Encode(), packet->sender_hw);
  }
}

}  // namespace upr
