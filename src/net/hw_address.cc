#include "src/net/hw_address.h"

#include <cstdio>

namespace upr {

EtherAddr EtherAddr::FromIndex(std::uint32_t index) {
  EtherAddr a;
  a.octets = {0x02, 0x55, 0x50,  // locally administered, "UP"
              static_cast<std::uint8_t>(index >> 16), static_cast<std::uint8_t>(index >> 8),
              static_cast<std::uint8_t>(index)};
  return a;
}

std::string EtherAddr::ToString() const {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x", octets[0], octets[1],
                octets[2], octets[3], octets[4], octets[5]);
  return buf;
}

std::string Ax25HwAddr::ToString() const {
  std::string out = station.ToString();
  for (const auto& d : digipeaters) {
    out += " via " + d.ToString();
  }
  return out;
}

std::string HwAddressToString(const HwAddress& a) {
  if (const auto* e = std::get_if<EtherAddr>(&a)) {
    return e->ToString();
  }
  return std::get<Ax25HwAddr>(a).ToString();
}

}  // namespace upr
