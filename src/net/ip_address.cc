#include "src/net/ip_address.h"

#include <cstdio>

namespace upr {

std::optional<IpV4Address> IpV4Address::Parse(std::string_view text) {
  std::uint32_t parts[4];
  int part = 0;
  std::uint32_t cur = 0;
  bool have_digit = false;
  for (char c : text) {
    if (c >= '0' && c <= '9') {
      cur = cur * 10 + static_cast<std::uint32_t>(c - '0');
      if (cur > 255) {
        return std::nullopt;
      }
      have_digit = true;
    } else if (c == '.') {
      if (!have_digit || part >= 3) {
        return std::nullopt;
      }
      parts[part++] = cur;
      cur = 0;
      have_digit = false;
    } else {
      return std::nullopt;
    }
  }
  if (!have_digit || part != 3) {
    return std::nullopt;
  }
  parts[3] = cur;
  return IpV4Address(static_cast<std::uint8_t>(parts[0]), static_cast<std::uint8_t>(parts[1]),
                     static_cast<std::uint8_t>(parts[2]), static_cast<std::uint8_t>(parts[3]));
}

std::string IpV4Address::ToString() const {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", value_ >> 24 & 0xFF, value_ >> 16 & 0xFF,
                value_ >> 8 & 0xFF, value_ & 0xFF);
  return buf;
}

IpV4Prefix IpV4Prefix::FromCidr(IpV4Address addr, int prefix_len) {
  IpV4Prefix p;
  p.mask = prefix_len <= 0 ? 0
                           : (prefix_len >= 32 ? 0xFFFFFFFF
                                               : ~((1u << (32 - prefix_len)) - 1));
  p.network = IpV4Address(addr.value() & p.mask);
  return p;
}

int IpV4Prefix::PrefixLength() const {
  int n = 0;
  std::uint32_t m = mask;
  while (m & 0x80000000) {
    ++n;
    m <<= 1;
  }
  return n;
}

std::string IpV4Prefix::ToString() const {
  return network.ToString() + "/" + std::to_string(PrefixLength());
}

}  // namespace upr
