// Per-host network stack: interfaces, routing, IP input/output/forwarding,
// fragmentation and reassembly, protocol dispatch — the "existing Ultrix
// network support" the paper's driver plugs into, including the bounded
// "queue of incoming IP packets" (§2.2) drivers append to.
#ifndef SRC_NET_NETSTACK_H_
#define SRC_NET_NETSTACK_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/net/icmp.h"
#include "src/net/interface.h"
#include "src/net/ip_address.h"
#include "src/net/ipv4.h"
#include "src/net/routing.h"
#include "src/sim/simulator.h"
#include "src/util/byte_buffer.h"
#include "src/util/packet_buf.h"

namespace upr {

struct IpStats {
  std::uint64_t delivered = 0;      // packets handed to a protocol
  std::uint64_t sent = 0;           // locally originated datagrams
  std::uint64_t forwarded = 0;
  std::uint64_t input_drops = 0;    // input queue overflow
  std::uint64_t header_errors = 0;
  std::uint64_t no_route = 0;
  std::uint64_t ttl_expired = 0;
  std::uint64_t no_protocol = 0;
  std::uint64_t filtered = 0;       // forward-filter (access control) drops
  std::uint64_t fragments_created = 0;
  std::uint64_t fragments_received = 0;
  std::uint64_t reassembled = 0;
  std::uint64_t reassembly_failures = 0;
  std::uint64_t cant_fragment = 0;  // DF set but fragmentation required
};

class NetStack {
 public:
  NetStack(Simulator* sim, std::string hostname);
  ~NetStack();
  NetStack(const NetStack&) = delete;
  NetStack& operator=(const NetStack&) = delete;

  Simulator* sim() const { return sim_; }
  const std::string& hostname() const { return hostname_; }

  // Interface management. The stack owns the interface and installs the
  // direct route for its configured prefix.
  NetInterface* AddInterface(std::unique_ptr<NetInterface> interface);
  NetInterface* FindInterface(const std::string& name) const;
  const std::vector<std::unique_ptr<NetInterface>>& interfaces() const {
    return interfaces_;
  }

  RouteTable& routes() { return routes_; }
  const RouteTable& routes() const { return routes_; }

  // IP forwarding (the MicroVAX gateway runs with this on; hosts off).
  void set_forwarding(bool on) { forwarding_ = on; }
  bool forwarding() const { return forwarding_; }

  // When forwarding hairpins out the arrival interface toward a gateway on
  // the sender's own network, emit an ICMP host redirect (§4.2 extension).
  void set_send_redirects(bool on) { send_redirects_ = on; }
  bool send_redirects() const { return send_redirects_; }

  // Called for every packet about to be forwarded; return false to drop.
  // The gateway's §4.3 access-control table hooks in here. The payload view
  // aliases the in-flight buffer and is valid only during the call.
  using ForwardFilter = std::function<bool(const Ipv4Header& header, ByteView payload,
                                           NetInterface* in, NetInterface* out)>;
  void set_forward_filter(ForwardFilter f) { forward_filter_ = std::move(f); }

  // Transport/protocol registration (ICMP registers itself; TCP/UDP attach
  // from their modules). The payload view aliases the in-flight buffer and is
  // valid only during the call; handlers copy what they keep.
  using ProtocolHandler = std::function<void(const Ipv4Header& header, ByteView payload,
                                             NetInterface* in)>;
  void RegisterProtocol(std::uint8_t protocol, ProtocolHandler handler);

  struct SendOptions {
    IpV4Address source;  // default: outgoing interface address
    std::uint8_t ttl = kDefaultTtl;
    std::uint8_t tos = 0;
    bool dont_fragment = false;
  };
  // Routes and transmits one datagram whose transport payload rides in
  // `payload`; the IP header is prepended into the buffer's headroom. Local
  // destinations loop back through the input path. Returns false when no
  // route exists.
  bool SendDatagram(IpV4Address dst, std::uint8_t protocol, PacketBuf&& payload,
                    const SendOptions& opts);
  // Legacy entry points: copy the payload into a headroom-reserved PacketBuf
  // and take the zero-copy path from there.
  bool SendDatagram(IpV4Address dst, std::uint8_t protocol, const Bytes& payload,
                    const SendOptions& opts);
  bool SendDatagram(IpV4Address dst, std::uint8_t protocol, const Bytes& payload) {
    return SendDatagram(dst, protocol, payload, SendOptions{});
  }

  // Driver input: appends to the bounded IP input queue; a zero-delay event
  // drains it (the softnet half of the paper's interrupt handler). Packets
  // arriving at a full queue are dropped, as in 4.3BSD's IF_ENQUEUE.
  void EnqueueFromDriver(PacketBuf ip_datagram, NetInterface* in);
  void EnqueueFromDriver(Bytes ip_datagram, NetInterface* in) {
    EnqueueFromDriver(PacketBuf::Adopt(std::move(ip_datagram)), in);
  }

  bool IsLocalAddress(IpV4Address a) const;
  // True for the all-ones address or a directly attached subnet broadcast.
  bool IsBroadcastAddress(IpV4Address a) const;

  Icmp& icmp() { return *icmp_; }
  IpStats& ip_stats() { return ip_stats_; }
  const IpStats& ip_stats() const { return ip_stats_; }

  std::size_t input_queue_limit() const { return input_queue_limit_; }
  void set_input_queue_limit(std::size_t n) { input_queue_limit_ = n; }
  std::size_t input_queue_depth() const { return input_queue_.size(); }

 private:
  struct QueuedInput {
    PacketBuf datagram;
    NetInterface* in;
  };
  struct ReassemblyKey {
    std::uint32_t src = 0, dst = 0;
    std::uint16_t id = 0;
    std::uint8_t proto = 0;
    bool operator<(const ReassemblyKey& o) const {
      return std::tie(src, dst, id, proto) < std::tie(o.src, o.dst, o.id, o.proto);
    }
  };
  struct ReassemblyBuffer {
    struct Fragment {
      std::uint16_t offset;  // bytes
      Bytes data;
    };
    Ipv4Header first_header;  // header of the offset-0 fragment
    bool have_first = false;
    std::vector<Fragment> fragments;
    std::size_t total_len = 0;  // known once the MF=0 fragment arrives
    SimTime deadline = 0;
  };

  void DrainInputQueue();
  void ProcessDatagram(PacketBuf&& datagram, NetInterface* in);
  void DeliverLocal(const Ipv4Header& header, ByteView payload, NetInterface* in);
  // `datagram` is the full buffer (header + payload, payload aliasing it);
  // the TTL is decremented in place and the buffer moves on to the output
  // interface untouched.
  void Forward(const Ipv4Header& header, ByteView payload, PacketBuf&& datagram,
               NetInterface* in);
  // Fragments (if needed) and hands the fully encoded datagram to the
  // interface. `header` is its already-serialized IP header, parsed.
  bool TransmitVia(const Ipv4Header& header, PacketBuf&& datagram, NetInterface* out,
                   IpV4Address next_hop);
  void HandleFragment(const Ipv4Header& header, ByteView payload, NetInterface* in);
  void CleanReassembly();

  Simulator* sim_;
  std::string hostname_;
  std::vector<std::unique_ptr<NetInterface>> interfaces_;
  RouteTable routes_;
  bool forwarding_ = false;
  bool send_redirects_ = true;
  ForwardFilter forward_filter_;
  std::map<std::uint8_t, ProtocolHandler> protocols_;
  std::unique_ptr<Icmp> icmp_;
  IpStats ip_stats_;

  std::deque<QueuedInput> input_queue_;
  std::size_t input_queue_limit_ = 50;  // IFQ_MAXLEN
  bool drain_scheduled_ = false;

  std::uint16_t next_ip_id_ = 1;
  std::map<ReassemblyKey, ReassemblyBuffer> reassembly_;
  SimTime reassembly_timeout_ = Seconds(30);
};

}  // namespace upr

#endif  // SRC_NET_NETSTACK_H_
