// The network-interface abstraction — our equivalent of the Ultrix `if_net`
// structure (§2.2): a name, an address, an MTU, and "pointers to the
// procedures used to initialize the interface, send packets, change
// parameters", here expressed as virtual methods. Concrete drivers:
// EthernetInterface (src/ether) and PacketRadioInterface (src/driver).
#ifndef SRC_NET_INTERFACE_H_
#define SRC_NET_INTERFACE_H_

#include <cstdint>
#include <string>

#include "src/net/ip_address.h"
#include "src/util/byte_buffer.h"
#include "src/util/packet_buf.h"

namespace upr {

class NetStack;

struct InterfaceStats {
  std::uint64_t ipackets = 0;  // packets delivered to the stack
  std::uint64_t opackets = 0;  // packets handed to the hardware
  std::uint64_t ierrors = 0;   // malformed / failed input
  std::uint64_t oerrors = 0;   // output failures (no route to hw, full queue)
  std::uint64_t ibytes = 0;
  std::uint64_t obytes = 0;
  std::uint64_t odrops = 0;    // output queue overflow
};

class NetInterface {
 public:
  NetInterface(std::string name, std::size_t mtu) : name_(std::move(name)), mtu_(mtu) {}
  virtual ~NetInterface() = default;
  NetInterface(const NetInterface&) = delete;
  NetInterface& operator=(const NetInterface&) = delete;

  const std::string& name() const { return name_; }
  std::size_t mtu() const { return mtu_; }

  IpV4Address address() const { return address_; }
  IpV4Prefix prefix() const { return prefix_; }
  // Assigns the interface address; `prefix_len` defines the directly
  // attached network (a route is added when the interface is attached to a
  // stack, or immediately if already attached).
  void Configure(IpV4Address address, int prefix_len);

  bool up() const { return up_; }
  virtual void SetUp(bool up) { up_ = up; }

  // Sends one IP datagram (already serialized) toward `next_hop` — a
  // neighbour on this link. Handles link-address resolution and framing.
  virtual void Output(const Bytes& ip_datagram, IpV4Address next_hop) = 0;
  // PacketBuf-carrying variant — the datapath entry point. Headroom-aware
  // drivers override it to prepend link framing in place; the default
  // flattens the buffer and calls the Bytes overload so legacy drivers keep
  // working unchanged.
  virtual void Output(PacketBuf&& ip_datagram, IpV4Address next_hop) {
    Output(ip_datagram.Release(), next_hop);
  }

  NetStack* stack() const { return stack_; }
  InterfaceStats& stats() { return stats_; }
  const InterfaceStats& stats() const { return stats_; }

 protected:
  friend class NetStack;

  // Delivers a received IP datagram to the owning stack's input queue.
  void DeliverToStack(const Bytes& ip_datagram);
  // Move-in variant: the buffer rides the input queue without copying.
  void DeliverToStack(PacketBuf&& ip_datagram);

  std::string name_;
  std::size_t mtu_;
  IpV4Address address_;
  IpV4Prefix prefix_{};
  bool up_ = true;
  NetStack* stack_ = nullptr;
  InterfaceStats stats_;
};

}  // namespace upr

#endif  // SRC_NET_INTERFACE_H_
