// IPv4 header codec (RFC 791) with header checksum and fragmentation fields.
// Options are carried opaquely. This replaces the "existing Ultrix network
// support" box of the paper's figure 2.
#ifndef SRC_NET_IPV4_H_
#define SRC_NET_IPV4_H_

#include <cstdint>
#include <optional>
#include <string>

#include "src/net/ip_address.h"
#include "src/util/byte_buffer.h"
#include "src/util/packet_buf.h"

namespace upr {

// Protocol numbers used in this stack.
inline constexpr std::uint8_t kIpProtoIcmp = 1;
inline constexpr std::uint8_t kIpProtoTcp = 6;
inline constexpr std::uint8_t kIpProtoUdp = 17;

inline constexpr std::uint8_t kDefaultTtl = 30;  // 4.3BSD default

struct Ipv4Header {
  std::uint8_t tos = 0;
  std::uint16_t identification = 0;
  bool dont_fragment = false;
  bool more_fragments = false;
  std::uint16_t fragment_offset = 0;  // in 8-byte units
  std::uint8_t ttl = kDefaultTtl;
  std::uint8_t protocol = 0;
  IpV4Address source;
  IpV4Address destination;
  Bytes options;  // raw, padded to a multiple of 4 by Encode

  std::size_t HeaderLength() const { return 20 + (options.size() + 3) / 4 * 4; }

  // Prepends the serialized header (checksum computed in place) in front of
  // `pb`'s current data, which becomes the datagram payload. This is the
  // datapath primitive: the transport's segment stays where it is and the IP
  // header lands in headroom.
  void EncodeTo(PacketBuf* pb) const;

  // Serializes header + payload, computing the header checksum.
  Bytes Encode(const Bytes& payload) const;

  struct Parsed;
  // Validates version, length fields and checksum.
  static std::optional<Parsed> Decode(const Bytes& datagram);

  struct ParsedView;
  // As Decode, but the payload is a non-owning view into `datagram` — no
  // copy. The view is valid only while the underlying buffer lives.
  static std::optional<ParsedView> DecodeView(ByteView datagram);

  // Forwarding fast path: decrements TTL and recomputes the header checksum
  // directly in the datagram bytes. `datagram` must have passed DecodeView.
  static void DecrementTtlInPlace(std::uint8_t* datagram);

  std::string ToString() const;
};

struct Ipv4Header::Parsed {
  Ipv4Header header;
  Bytes payload;
};

struct Ipv4Header::ParsedView {
  Ipv4Header header;
  ByteView payload;
};

}  // namespace upr

#endif  // SRC_NET_IPV4_H_
