// Link-layer address variants. The gateway has one foot on Ethernet (6-byte
// MACs) and one on packet radio, where "addresses look like amateur radio
// callsigns followed by a 4 bit system ID" and "some entries may contain
// additional callsigns for digipeaters" (§2.3). The digipeater path rides in
// the resolved address so the driver can source-route the frame.
#ifndef SRC_NET_HW_ADDRESS_H_
#define SRC_NET_HW_ADDRESS_H_

#include <array>
#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "src/ax25/address.h"

namespace upr {

struct EtherAddr {
  std::array<std::uint8_t, 6> octets{};

  static EtherAddr Broadcast() {
    return EtherAddr{{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}};
  }
  // Deterministic locally administered address derived from an index.
  static EtherAddr FromIndex(std::uint32_t index);

  bool IsBroadcast() const { return *this == Broadcast(); }
  std::string ToString() const;

  bool operator==(const EtherAddr& o) const { return octets == o.octets; }
  bool operator!=(const EtherAddr& o) const { return !(*this == o); }
};

// An AX.25 link address plus the source-routed digipeater path to reach it.
struct Ax25HwAddr {
  Ax25Address station;
  std::vector<Ax25Address> digipeaters;

  std::string ToString() const;
  bool operator==(const Ax25HwAddr& o) const {
    return station == o.station && digipeaters == o.digipeaters;
  }
};

using HwAddress = std::variant<EtherAddr, Ax25HwAddr>;

std::string HwAddressToString(const HwAddress& a);

}  // namespace upr

#endif  // SRC_NET_HW_ADDRESS_H_
