// IP routing table with longest-prefix match. "The routing tables at the IP
// layer determine which driver is called" (§2.3): a lookup yields the output
// interface and, for indirect routes, the gateway whose link address the
// packet is actually sent to.
#ifndef SRC_NET_ROUTING_H_
#define SRC_NET_ROUTING_H_

#include <optional>
#include <string>
#include <vector>

#include "src/net/ip_address.h"

namespace upr {

class NetInterface;

struct Route {
  IpV4Prefix prefix;
  NetInterface* interface = nullptr;
  // For indirect routes: the next-hop gateway on a directly attached network.
  std::optional<IpV4Address> gateway;
  int metric = 0;

  bool direct() const { return !gateway.has_value(); }
};

class RouteTable {
 public:
  void AddDirect(IpV4Prefix prefix, NetInterface* ifp, int metric = 0);
  void AddVia(IpV4Prefix prefix, IpV4Address gateway, NetInterface* ifp, int metric = 0);
  void AddDefault(IpV4Address gateway, NetInterface* ifp);
  // Removes all routes exactly matching `prefix`. Returns count removed.
  std::size_t Remove(IpV4Prefix prefix);

  // Longest-prefix match; ties broken by lowest metric.
  const Route* Lookup(IpV4Address dst) const;

  std::size_t size() const { return routes_.size(); }
  const std::vector<Route>& routes() const { return routes_; }
  std::string ToString() const;

 private:
  std::vector<Route> routes_;
};

}  // namespace upr

#endif  // SRC_NET_ROUTING_H_
