// Address Resolution Protocol (RFC 826), shared by the Ethernet driver and
// the packet radio driver. The paper (§2.3) keeps the Ethernet ARP untouched
// and adds "a separate routine that deals specifically with AX.25 addresses";
// here both are instances of ArpResolver parameterized by hardware type:
//   Ethernet:     htype 1, hlen 6
//   AX.25 (AMPR): htype 3, hlen 7 (shifted-callsign wire form)
// Resolved AX.25 entries may carry a digipeater path — the path is not in
// the ARP packet (it is configured, per the paper: "some entries may contain
// additional callsigns for digipeaters"), so AddStatic() installs such
// entries and replies merely refresh the station address.
#ifndef SRC_NET_ARP_H_
#define SRC_NET_ARP_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>

#include "src/net/hw_address.h"
#include "src/net/ip_address.h"
#include "src/sim/simulator.h"
#include "src/util/byte_buffer.h"
#include "src/util/packet_buf.h"

namespace upr {

inline constexpr std::uint16_t kArpHtypeEthernet = 1;
inline constexpr std::uint16_t kArpHtypeAx25 = 3;
inline constexpr std::uint16_t kArpOpRequest = 1;
inline constexpr std::uint16_t kArpOpReply = 2;

struct ArpPacket {
  std::uint16_t htype = kArpHtypeEthernet;
  std::uint16_t oper = kArpOpRequest;
  HwAddress sender_hw;
  IpV4Address sender_ip;
  std::optional<HwAddress> target_hw;  // absent (zero-filled) in requests
  IpV4Address target_ip;

  Bytes Encode() const;
  static std::optional<ArpPacket> Decode(ByteView wire);
};

struct ArpConfig {
  std::uint16_t hardware_type = kArpHtypeEthernet;
  HwAddress broadcast_hw;               // where requests are framed to
  SimTime entry_ttl = Seconds(20 * 60); // 4.3BSD-ish cache lifetime
  SimTime retry_interval = Seconds(5);
  int max_retries = 5;
  std::size_t max_pending_per_entry = 4;
};

class ArpResolver {
 public:
  // Sends an encoded ARP packet; `dst` is nullopt for broadcast.
  using TransmitArp =
      std::function<void(const Bytes& arp_packet, const std::optional<HwAddress>& dst)>;
  // Sends an IP datagram to a resolved link address. The buffer keeps its
  // headroom so the driver can prepend link framing in place.
  using SendResolved = std::function<void(PacketBuf&& ip_datagram, const HwAddress& dst)>;
  using LocalIp = std::function<IpV4Address()>;

  ArpResolver(Simulator* sim, ArpConfig config, LocalIp local_ip, HwAddress local_hw,
              TransmitArp transmit_arp, SendResolved send_resolved);

  // Output path: resolve `next_hop` and send, queueing while resolution is in
  // flight. Broadcast next hops bypass the cache.
  void Send(PacketBuf&& ip_datagram, IpV4Address next_hop);
  void Send(const Bytes& ip_datagram, IpV4Address next_hop) {
    Send(PacketBuf::FromView(ip_datagram, PacketBuf::kDefaultHeadroom), next_hop);
  }

  // Input path: process a received ARP packet addressed to this link.
  void HandleArpPacket(ByteView wire);

  // Installs a permanent entry (AX.25 entries with digipeater paths go here).
  void AddStatic(IpV4Address ip, HwAddress hw);
  void Flush();

  std::optional<HwAddress> Lookup(IpV4Address ip) const;
  std::size_t cache_size() const { return cache_.size(); }

  std::uint64_t requests_sent() const { return requests_sent_; }
  std::uint64_t replies_sent() const { return replies_sent_; }
  std::uint64_t resolution_failures() const { return resolution_failures_; }
  std::uint64_t queue_drops() const { return queue_drops_; }

 private:
  struct Entry {
    std::optional<HwAddress> hw;  // nullopt while resolving
    SimTime expires = 0;          // 0 = permanent
    bool permanent = false;
    int retries = 0;
    std::uint64_t retry_event = 0;
    std::deque<PacketBuf> pending;
  };

  void SendRequest(IpV4Address ip);
  void ScheduleRetry(IpV4Address ip);
  void ResolveEntry(IpV4Address ip, const HwAddress& hw);
  bool EntryValid(const Entry& e) const;

  Simulator* sim_;
  ArpConfig config_;
  LocalIp local_ip_;
  HwAddress local_hw_;
  TransmitArp transmit_arp_;
  SendResolved send_resolved_;
  std::map<IpV4Address, Entry> cache_;

  std::uint64_t requests_sent_ = 0;
  std::uint64_t replies_sent_ = 0;
  std::uint64_t resolution_failures_ = 0;
  std::uint64_t queue_drops_ = 0;
};

}  // namespace upr

#endif  // SRC_NET_ARP_H_
