#include "src/net/trunk_link.h"

#include <algorithm>
#include <utility>

#include "src/net/netstack.h"
#include "src/util/panic.h"

namespace upr {

TrunkLink::TrunkLink(std::string name, ShardSet* shards, std::size_t shard,
                     TrunkConfig config)
    : NetInterface(std::move(name), 1500),
      shards_(shards),
      shard_(shard),
      config_(config) {
  UPR_INVARIANT(config_.bit_rate > 0, "trunk %s: zero bit rate",
                name_.c_str());
}

void TrunkLink::Wire(TrunkLink* a, TrunkLink* b) {
  UPR_INVARIANT(a->peer_ == nullptr && b->peer_ == nullptr,
                "trunk %s/%s already wired", a->name().c_str(),
                b->name().c_str());
  a->peer_ = b;
  b->peer_ = a;
  a->shards_->EnsureLane(a->shard_, b->shard_);
  a->shards_->EnsureLane(b->shard_, a->shard_);
}

SimTime TrunkLink::TransmitTime(std::size_t bytes) const {
  // Round up: a datagram never finishes early.
  const std::uint64_t bits = static_cast<std::uint64_t>(bytes) * 8;
  return static_cast<SimTime>((bits * 1'000'000'000ull + config_.bit_rate - 1) /
                              config_.bit_rate);
}

void TrunkLink::Output(const Bytes& ip_datagram, IpV4Address next_hop) {
  (void)next_hop;  // point-to-point: there is exactly one place to go
  UPR_INVARIANT(peer_ != nullptr, "trunk %s: output before Wire()",
                name_.c_str());
  if (!up_) {
    ++stats_.oerrors;
    return;
  }
  if (inflight_ >= config_.queue_limit) {
    ++stats_.odrops;
    return;
  }
  Simulator* sim = shards_->shard(shard_);
  const SimTime now = sim->Now();
  const SimTime start = std::max(now, busy_until_);
  busy_until_ = start + TransmitTime(ip_datagram.size());
  const SimTime deliver = busy_until_ + config_.latency;
  ++inflight_;
  ++stats_.opackets;
  stats_.obytes += ip_datagram.size();
  // The local completion event frees a queue slot when the last bit departs;
  // it stays on this shard. The delivery crosses shards through the handoff
  // lane, carrying an owned copy of the bytes (buffers never migrate
  // between shard threads).
  sim->ScheduleAt(busy_until_, [this] {
    UPR_INVARIANT(inflight_ > 0, "trunk %s: inflight underflow",
                  name_.c_str());
    --inflight_;
  });
  shards_->Post(shard_, peer_->shard_, deliver,
                [peer = peer_, data = ip_datagram]() mutable {
                  peer->RxDeliver(std::move(data));
                });
}

void TrunkLink::RxDeliver(Bytes&& ip_datagram) {
  if (!up_) {
    ++stats_.ierrors;
    return;
  }
  ++stats_.ipackets;
  stats_.ibytes += ip_datagram.size();
  DeliverToStack(ip_datagram);
}

}  // namespace upr
