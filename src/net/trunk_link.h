// upr — point-to-point backbone trunk between shards (ISSUE 8).
//
// The city topology's NET/ROM backbone is modelled at the IP layer as
// dedicated point-to-point trunks between gateway hosts: a serialized pipe
// with a bit rate and a fixed latency (propagation plus the serial framing
// time of the underlying link). A TrunkLink is a NetInterface whose Output
// crosses shards: the datagram serializes against the local end's transmit
// clock, then rides a ShardSet::Post to the peer's shard, arriving at
// depart + latency. Because the latency is at least the ShardSet lookahead,
// trunks are exactly the conservative-DES channel boundary — the only way
// state leaves a shard.
//
// Both ends must be wired with Wire(), which also registers the handoff
// lanes in both directions while the topology is still single-threaded.
#ifndef SRC_NET_TRUNK_LINK_H_
#define SRC_NET_TRUNK_LINK_H_

#include <cstdint>
#include <string>

#include "src/net/interface.h"
#include "src/sim/shard_exec.h"
#include "src/sim/simulator.h"

namespace upr {

struct TrunkConfig {
  std::uint64_t bit_rate = 1'000'000;  // 1 Mbit/s backbone pipe
  // One-way delivery delay after the last bit departs. Must be >= the
  // ShardSet lookahead (the topology generator derives the lookahead FROM
  // the minimum trunk latency, so this holds by construction).
  SimTime latency = 1'000'000;  // 1 ms
  // Datagrams in flight (serializing or propagating) before tail drop.
  std::size_t queue_limit = 64;
};

class TrunkLink : public NetInterface {
 public:
  // `shard` is the shard this end lives on; its NetStack must run on
  // shards->shard(shard).
  TrunkLink(std::string name, ShardSet* shards, std::size_t shard,
            TrunkConfig config = {});

  // Connects the two ends and registers both handoff lanes. Topology build
  // time only.
  static void Wire(TrunkLink* a, TrunkLink* b);

  std::size_t shard_index() const { return shard_; }
  TrunkLink* peer() const { return peer_; }
  const TrunkConfig& config() const { return config_; }

  void Output(const Bytes& ip_datagram, IpV4Address next_hop) override;

 private:
  // Runs on the peer's shard (posted closure).
  void RxDeliver(Bytes&& ip_datagram);

  SimTime TransmitTime(std::size_t bytes) const;

  ShardSet* shards_;
  std::size_t shard_;
  TrunkLink* peer_ = nullptr;
  TrunkConfig config_;
  SimTime busy_until_ = 0;
  std::size_t inflight_ = 0;
};

}  // namespace upr

#endif  // SRC_NET_TRUNK_LINK_H_
