#include "src/net/icmp.h"

#include <algorithm>

#include "src/net/netstack.h"
#include "src/util/crc.h"
#include "src/util/logging.h"

namespace upr {

namespace {
constexpr const char* kTag = "icmp";
}  // namespace

Bytes IcmpMessage::Encode() const {
  Bytes out;
  ByteWriter w(&out);
  w.WriteU8(type);
  w.WriteU8(code);
  w.WriteU16(0);  // checksum placeholder
  w.WriteBytes(body);
  std::uint16_t sum = InternetChecksum(out);
  out[2] = static_cast<std::uint8_t>(sum >> 8);
  out[3] = static_cast<std::uint8_t>(sum & 0xFF);
  return out;
}

std::optional<IcmpMessage> IcmpMessage::Decode(ByteView wire) {
  if (wire.size() < 4 || InternetChecksum(wire.data(), wire.size()) != 0) {
    return std::nullopt;
  }
  IcmpMessage m;
  m.type = wire[0];
  m.code = wire[1];
  m.body.assign(wire.begin() + 4, wire.end());
  return m;
}

Bytes GatewayControlBody::Encode() const {
  Bytes out;
  ByteWriter w(&out);
  w.WriteU32(amateur_host.value());
  w.WriteU32(non_amateur_host.value());
  w.WriteU32(ttl_seconds);
  w.WriteU8(static_cast<std::uint8_t>(callsign.size()));
  w.WriteBytes(BytesFromString(callsign));
  w.WriteU8(static_cast<std::uint8_t>(password.size()));
  w.WriteBytes(BytesFromString(password));
  return out;
}

std::optional<GatewayControlBody> GatewayControlBody::Decode(const Bytes& body) {
  ByteReader r(body);
  GatewayControlBody g;
  g.amateur_host = IpV4Address(r.ReadU32());
  g.non_amateur_host = IpV4Address(r.ReadU32());
  g.ttl_seconds = r.ReadU32();
  std::uint8_t clen = r.ReadU8();
  Bytes call = r.ReadBytes(clen);
  std::uint8_t plen = r.ReadU8();
  Bytes pass = r.ReadBytes(plen);
  if (!r.ok()) {
    return std::nullopt;
  }
  g.callsign.assign(call.begin(), call.end());
  g.password.assign(pass.begin(), pass.end());
  return g;
}

Icmp::Icmp(NetStack* stack) : stack_(stack) {}

void Icmp::HandleInput(const Ipv4Header& ip, ByteView payload, NetInterface* in) {
  auto msg = IcmpMessage::Decode(payload);
  if (!msg) {
    return;
  }
  switch (msg->type) {
    case kIcmpEchoRequest: {
      ++echoes_answered_;
      IcmpMessage reply;
      reply.type = kIcmpEchoReply;
      reply.code = 0;
      reply.body = msg->body;
      NetStack::SendOptions opts;
      opts.source = ip.destination;  // answer from the address they asked
      if (stack_->IsBroadcastAddress(ip.destination)) {
        opts.source = IpV4Address();  // let routing pick
      }
      stack_->SendDatagram(ip.source, kIpProtoIcmp, reply.Encode(), opts);
      return;
    }
    case kIcmpEchoReply: {
      ByteReader r(msg->body);
      std::uint16_t id = r.ReadU16();
      r.ReadU16();  // sequence
      auto it = pending_pings_.find(id);
      if (it != pending_pings_.end()) {
        PendingPing ping = std::move(it->second);
        pending_pings_.erase(it);
        stack_->sim()->Cancel(ping.timeout_event);
        ping.callback(true, stack_->sim()->Now() - ping.sent_at);
      }
      return;
    }
    case kIcmpUnreachable:
    case kIcmpTimeExceeded:
      if (on_error_) {
        on_error_(ip, *msg);
      }
      return;
    case kIcmpRedirect:
      HandleRedirect(ip, *msg, in);
      return;
    default: {
      auto it = type_handlers_.find(msg->type);
      if (it != type_handlers_.end()) {
        it->second(ip, *msg, in);
      }
      return;
    }
  }
}

std::uint16_t Icmp::Ping(IpV4Address dst, std::size_t payload_len, PingCallback callback,
                         SimTime timeout) {
  std::uint16_t id = next_echo_id_++;
  IcmpMessage msg;
  msg.type = kIcmpEchoRequest;
  msg.code = 0;
  ByteWriter w(&msg.body);
  w.WriteU16(id);
  w.WriteU16(1);  // sequence
  for (std::size_t i = 0; i < payload_len; ++i) {
    w.WriteU8(static_cast<std::uint8_t>(i));
  }
  PendingPing ping;
  ping.callback = std::move(callback);
  ping.sent_at = stack_->sim()->Now();
  ping.timeout_event = stack_->sim()->Schedule(timeout, [this, id] {
    auto it = pending_pings_.find(id);
    if (it != pending_pings_.end()) {
      PendingPing p = std::move(it->second);
      pending_pings_.erase(it);
      p.callback(false, 0);
    }
  });
  pending_pings_[id] = std::move(ping);
  if (!stack_->SendDatagram(dst, kIpProtoIcmp, msg.Encode())) {
    auto it = pending_pings_.find(id);
    if (it != pending_pings_.end()) {
      PendingPing p = std::move(it->second);
      stack_->sim()->Cancel(p.timeout_event);
      pending_pings_.erase(it);
      p.callback(false, 0);
    }
  }
  return id;
}

void Icmp::SendError(const Ipv4Header& orig, ByteView orig_payload, std::uint8_t type,
                     std::uint8_t code) {
  // Never generate errors about ICMP errors or broadcasts.
  if (orig.protocol == kIpProtoIcmp) {
    auto inner = IcmpMessage::Decode(orig_payload);
    if (inner && inner->type != kIcmpEchoRequest && inner->type != kIcmpEchoReply) {
      return;
    }
  }
  if (stack_->IsBroadcastAddress(orig.destination) || orig.source.IsAny()) {
    return;
  }
  IcmpMessage msg;
  msg.type = type;
  msg.code = code;
  ByteWriter w(&msg.body);
  w.WriteU32(0);  // unused
  // Original header + first 8 payload bytes.
  Bytes orig_hdr = orig.Encode(Bytes(orig_payload.begin(),
                                     orig_payload.begin() + static_cast<std::ptrdiff_t>(
                                         std::min<std::size_t>(8, orig_payload.size()))));
  w.WriteBytes(orig_hdr);
  ++errors_sent_;
  stack_->SendDatagram(orig.source, kIpProtoIcmp, msg.Encode());
}

void Icmp::SendUnreachable(const Ipv4Header& orig, ByteView orig_payload,
                           std::uint8_t code) {
  SendError(orig, orig_payload, kIcmpUnreachable, code);
}

void Icmp::SendTimeExceeded(const Ipv4Header& orig, ByteView orig_payload) {
  SendError(orig, orig_payload, kIcmpTimeExceeded, 0);
}

void Icmp::SendRedirect(const Ipv4Header& orig, ByteView orig_payload,
                        IpV4Address better_gateway) {
  if (stack_->IsBroadcastAddress(orig.destination) || orig.source.IsAny()) {
    return;
  }
  IcmpMessage msg;
  msg.type = kIcmpRedirect;
  msg.code = kRedirectHost;
  ByteWriter w(&msg.body);
  w.WriteU32(better_gateway.value());
  Bytes orig_hdr = orig.Encode(Bytes(orig_payload.begin(),
                                     orig_payload.begin() + static_cast<std::ptrdiff_t>(
                                         std::min<std::size_t>(8, orig_payload.size()))));
  w.WriteBytes(orig_hdr);
  ++redirects_sent_;
  stack_->SendDatagram(orig.source, kIpProtoIcmp, msg.Encode());
}

void Icmp::HandleRedirect(const Ipv4Header& ip, const IcmpMessage& msg,
                          NetInterface* in) {
  if (!accept_redirects_ || stack_->forwarding()) {
    return;  // routers ignore redirects
  }
  ByteReader r(msg.body);
  IpV4Address better_gateway(r.ReadU32());
  Bytes inner = r.ReadRest();
  auto orig = Ipv4Header::Decode(inner);
  if (!r.ok() || !orig) {
    return;
  }
  IpV4Address dest = orig->header.destination;
  // Sanity per RFC 1122: the new gateway must be on a directly attached
  // network, and the redirect must come from our current first hop.
  const Route* current = stack_->routes().Lookup(dest);
  if (current == nullptr || current->interface == nullptr) {
    return;
  }
  IpV4Address current_hop = current->gateway.value_or(dest);
  if (current_hop != ip.source) {
    return;
  }
  if (!current->interface->prefix().Contains(better_gateway)) {
    return;
  }
  ++redirects_accepted_;
  stack_->routes().AddVia(IpV4Prefix::FromCidr(dest, 32), better_gateway,
                          current->interface);
}

void Icmp::SendGatewayControl(IpV4Address gateway, std::uint8_t code,
                              const GatewayControlBody& body) {
  IcmpMessage msg;
  msg.type = kIcmpGatewayControl;
  msg.code = code;
  msg.body = body.Encode();
  stack_->SendDatagram(gateway, kIpProtoIcmp, msg.Encode());
}

void Icmp::RegisterTypeHandler(std::uint8_t type, TypeHandler handler) {
  type_handlers_[type] = std::move(handler);
}

}  // namespace upr
