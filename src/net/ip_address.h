// IPv4 addresses and prefixes. AMPRnet addresses (44.x.y.z) get a helper
// because the gateway logic cares whether an address is on the amateur side
// (the paper's net 44 is the class-A block assigned to packet radio).
#ifndef SRC_NET_IP_ADDRESS_H_
#define SRC_NET_IP_ADDRESS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace upr {

class IpV4Address {
 public:
  constexpr IpV4Address() = default;
  constexpr explicit IpV4Address(std::uint32_t value) : value_(value) {}
  constexpr IpV4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
      : value_(static_cast<std::uint32_t>(a) << 24 | static_cast<std::uint32_t>(b) << 16 |
               static_cast<std::uint32_t>(c) << 8 | d) {}

  static std::optional<IpV4Address> Parse(std::string_view text);
  static constexpr IpV4Address Any() { return IpV4Address(0); }
  static constexpr IpV4Address LimitedBroadcast() { return IpV4Address(0xFFFFFFFF); }

  constexpr std::uint32_t value() const { return value_; }
  constexpr bool IsAny() const { return value_ == 0; }
  constexpr bool IsLimitedBroadcast() const { return value_ == 0xFFFFFFFF; }
  // True for addresses inside AMPRnet, the class-A net 44 block (§4.2).
  constexpr bool IsAmprNet() const { return (value_ >> 24) == 44; }

  std::string ToString() const;

  constexpr bool operator==(const IpV4Address& o) const { return value_ == o.value_; }
  constexpr bool operator!=(const IpV4Address& o) const { return value_ != o.value_; }
  constexpr bool operator<(const IpV4Address& o) const { return value_ < o.value_; }

 private:
  std::uint32_t value_ = 0;
};

struct IpV4AddressHash {
  std::size_t operator()(const IpV4Address& a) const {
    return std::hash<std::uint32_t>()(a.value());
  }
};

// A network prefix (address + mask).
struct IpV4Prefix {
  IpV4Address network;
  std::uint32_t mask = 0;

  static IpV4Prefix FromCidr(IpV4Address addr, int prefix_len);
  bool Contains(IpV4Address a) const {
    return (a.value() & mask) == (network.value() & mask);
  }
  int PrefixLength() const;
  std::string ToString() const;
};

}  // namespace upr

#endif  // SRC_NET_IP_ADDRESS_H_
