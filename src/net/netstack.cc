#include "src/net/netstack.h"

#include <algorithm>
#include <tuple>

#include "src/trace/trace.h"
#include "src/util/logging.h"

namespace upr {

namespace {
constexpr const char* kTag = "ip";

void TraceIpDrop(const Ipv4Header& header, ByteView datagram, NetInterface* in,
                 const char* why) {
  if (auto* t = trace::Active()) {
    t->Record(trace::Layer::kIp, trace::Kind::kIpDrop, trace::Dir::kRx,
              in != nullptr ? in->name() : std::string(), datagram,
              std::string(why) + " " + header.source.ToString() + ">" +
                  header.destination.ToString());
  }
}

}  // namespace

void NetInterface::Configure(IpV4Address address, int prefix_len) {
  address_ = address;
  prefix_ = IpV4Prefix::FromCidr(address, prefix_len);
  if (stack_ != nullptr) {
    stack_->routes().AddDirect(prefix_, this);
  }
}

void NetInterface::DeliverToStack(const Bytes& ip_datagram) {
  if (stack_ != nullptr) {
    stack_->EnqueueFromDriver(ip_datagram, this);
  }
}

void NetInterface::DeliverToStack(PacketBuf&& ip_datagram) {
  if (stack_ != nullptr) {
    stack_->EnqueueFromDriver(std::move(ip_datagram), this);
  }
}

NetStack::NetStack(Simulator* sim, std::string hostname)
    : sim_(sim), hostname_(std::move(hostname)) {
  icmp_ = std::make_unique<Icmp>(this);
  RegisterProtocol(kIpProtoIcmp,
                   [this](const Ipv4Header& h, ByteView p, NetInterface* in) {
                     icmp_->HandleInput(h, p, in);
                   });
}

NetStack::~NetStack() = default;

NetInterface* NetStack::AddInterface(std::unique_ptr<NetInterface> interface) {
  interface->stack_ = this;
  NetInterface* raw = interface.get();
  interfaces_.push_back(std::move(interface));
  if (!raw->address().IsAny()) {
    routes_.AddDirect(raw->prefix(), raw);
  }
  return raw;
}

NetInterface* NetStack::FindInterface(const std::string& name) const {
  for (const auto& i : interfaces_) {
    if (i->name() == name) {
      return i.get();
    }
  }
  return nullptr;
}

void NetStack::RegisterProtocol(std::uint8_t protocol, ProtocolHandler handler) {
  protocols_[protocol] = std::move(handler);
}

bool NetStack::IsLocalAddress(IpV4Address a) const {
  for (const auto& i : interfaces_) {
    if (i->address() == a) {
      return true;
    }
  }
  return false;
}

bool NetStack::IsBroadcastAddress(IpV4Address a) const {
  if (a.IsLimitedBroadcast()) {
    return true;
  }
  for (const auto& i : interfaces_) {
    if (i->prefix().mask != 0 &&
        a.value() == (i->prefix().network.value() | ~i->prefix().mask)) {
      return true;
    }
  }
  return false;
}

bool NetStack::SendDatagram(IpV4Address dst, std::uint8_t protocol, PacketBuf&& payload,
                            const SendOptions& opts) {
  Ipv4Header header;
  header.protocol = protocol;
  header.destination = dst;
  header.ttl = opts.ttl;
  header.tos = opts.tos;
  header.dont_fragment = opts.dont_fragment;
  header.identification = next_ip_id_++;

  // Local destination (including our own addresses): loop through input.
  if (IsLocalAddress(dst)) {
    header.source = opts.source.IsAny() ? dst : opts.source;
    ++ip_stats_.sent;
    header.EncodeTo(&payload);
    EnqueueFromDriver(std::move(payload), nullptr);
    return true;
  }

  const Route* route = routes_.Lookup(dst);
  if (route == nullptr || route->interface == nullptr) {
    ++ip_stats_.no_route;
    UPR_DEBUG(kTag, "%s: no route to %s", hostname_.c_str(), dst.ToString().c_str());
    return false;
  }
  NetInterface* out = route->interface;
  header.source = opts.source.IsAny() ? out->address() : opts.source;
  IpV4Address next_hop = route->gateway.value_or(dst);
  if (IsBroadcastAddress(dst)) {
    next_hop = IpV4Address::LimitedBroadcast();
  }
  ++ip_stats_.sent;
  header.EncodeTo(&payload);
  return TransmitVia(header, std::move(payload), out, next_hop);
}

bool NetStack::SendDatagram(IpV4Address dst, std::uint8_t protocol, const Bytes& payload,
                            const SendOptions& opts) {
  PacketBuf pb;
  {
    BufLayerScope scope(BufLayer::kIp);
    pb = PacketBuf::FromView(payload, PacketBuf::kDefaultHeadroom);
  }
  return SendDatagram(dst, protocol, std::move(pb), opts);
}

bool NetStack::TransmitVia(const Ipv4Header& header, PacketBuf&& datagram,
                           NetInterface* out, IpV4Address next_hop) {
  std::size_t hlen = header.HeaderLength();
  if (datagram.size() <= out->mtu()) {
    out->Output(std::move(datagram), next_hop);
    return true;
  }
  ByteView payload = datagram.view().subspan(hlen);
  if (header.dont_fragment) {
    ++ip_stats_.cant_fragment;
    icmp_->SendUnreachable(header, payload, kUnreachFragNeeded);
    return false;
  }
  // Fragment: payload chunks must be multiples of 8 bytes except the last.
  std::size_t max_data = (out->mtu() - hlen) / 8 * 8;
  if (max_data == 0) {
    ++ip_stats_.cant_fragment;
    return false;
  }
  for (std::size_t off = 0; off < payload.size(); off += max_data) {
    std::size_t n = std::min(max_data, payload.size() - off);
    Ipv4Header fh = header;
    fh.fragment_offset = static_cast<std::uint16_t>(
        header.fragment_offset + off / 8);
    bool last_piece = off + n >= payload.size();
    fh.more_fragments = header.more_fragments || !last_piece;
    PacketBuf frag;
    {
      BufLayerScope scope(BufLayer::kIp);
      frag = PacketBuf::FromView(payload.subspan(off, n),
                                 PacketBuf::kDefaultHeadroom);
    }
    fh.EncodeTo(&frag);
    ++ip_stats_.fragments_created;
    out->Output(std::move(frag), next_hop);
  }
  return true;
}

void NetStack::EnqueueFromDriver(PacketBuf ip_datagram, NetInterface* in) {
  if (input_queue_.size() >= input_queue_limit_) {
    ++ip_stats_.input_drops;
    return;
  }
  input_queue_.push_back(QueuedInput{std::move(ip_datagram), in});
  if (!drain_scheduled_) {
    drain_scheduled_ = true;
    sim_->Schedule(0, [this] { DrainInputQueue(); });
  }
}

void NetStack::DrainInputQueue() {
  drain_scheduled_ = false;
  while (!input_queue_.empty()) {
    QueuedInput q = std::move(input_queue_.front());
    input_queue_.pop_front();
    ProcessDatagram(std::move(q.datagram), q.in);
  }
}

void NetStack::ProcessDatagram(PacketBuf&& datagram, NetInterface* in) {
  auto parsed = Ipv4Header::DecodeView(datagram.view());
  if (!parsed) {
    ++ip_stats_.header_errors;
    if (in != nullptr) {
      ++in->stats().ierrors;
    }
    return;
  }
  const Ipv4Header& header = parsed->header;
  if (in != nullptr) {
    ++in->stats().ipackets;
    in->stats().ibytes += datagram.size();
  }
  if (IsLocalAddress(header.destination) || IsBroadcastAddress(header.destination)) {
    if (header.more_fragments || header.fragment_offset != 0) {
      HandleFragment(header, parsed->payload, in);
    } else {
      DeliverLocal(header, parsed->payload, in);
    }
    return;
  }
  if (!forwarding_) {
    ++ip_stats_.no_route;
    return;
  }
  Forward(header, parsed->payload, std::move(datagram), in);
}

void NetStack::DeliverLocal(const Ipv4Header& header, ByteView payload,
                            NetInterface* in) {
  auto it = protocols_.find(header.protocol);
  if (it == protocols_.end()) {
    ++ip_stats_.no_protocol;
    icmp_->SendUnreachable(header, payload, kUnreachProtocol);
    return;
  }
  ++ip_stats_.delivered;
  it->second(header, payload, in);
}

void NetStack::Forward(const Ipv4Header& header, ByteView payload, PacketBuf&& datagram,
                       NetInterface* in) {
  if (header.ttl <= 1) {
    ++ip_stats_.ttl_expired;
    TraceIpDrop(header, datagram.view(), in, "ttl-expired");
    icmp_->SendTimeExceeded(header, payload);
    return;
  }
  const Route* route = routes_.Lookup(header.destination);
  if (route == nullptr || route->interface == nullptr) {
    ++ip_stats_.no_route;
    TraceIpDrop(header, datagram.view(), in, "no-route");
    icmp_->SendUnreachable(header, payload, kUnreachNet);
    return;
  }
  NetInterface* out = route->interface;
  if (forward_filter_ && !forward_filter_(header, payload, in, out)) {
    ++ip_stats_.filtered;
    TraceIpDrop(header, datagram.view(), in, "forward-filter");
    return;
  }
  Ipv4Header fwd = header;
  fwd.ttl = static_cast<std::uint8_t>(header.ttl - 1);
  IpV4Address next_hop = route->gateway.value_or(header.destination);
  // Hairpin: the packet leaves the way it came and a better first hop exists
  // on the sender's own network — tell the sender (ICMP redirect, §4.2's
  // missing mechanism). The packet is still forwarded, as in 4.3BSD.
  if (send_redirects_ && out == in && in != nullptr && route->gateway.has_value() &&
      in->prefix().Contains(header.source) && in->prefix().Contains(*route->gateway)) {
    icmp_->SendRedirect(header, payload, *route->gateway);
  }
  ++ip_stats_.forwarded;
  if (auto* t = trace::Active()) {
    t->Record(trace::Layer::kIp, trace::Kind::kIpForward, trace::Dir::kNone,
              out->name(), datagram.view(),
              header.source.ToString() + ">" + header.destination.ToString() +
                  " ttl=" + std::to_string(fwd.ttl) +
                  (in != nullptr ? " in=" + in->name() : std::string()));
  }
  // The fast path of the refactor: no re-encode — patch TTL and checksum in
  // the buffer that arrived and move it straight to the output interface.
  Ipv4Header::DecrementTtlInPlace(datagram.data());
  TransmitVia(fwd, std::move(datagram), out, next_hop);
}

void NetStack::HandleFragment(const Ipv4Header& header, ByteView payload,
                              NetInterface* in) {
  ++ip_stats_.fragments_received;
  CleanReassembly();
  ReassemblyKey key{header.source.value(), header.destination.value(),
                    header.identification, header.protocol};
  ReassemblyBuffer& buf = reassembly_[key];
  if (buf.deadline == 0) {
    buf.deadline = sim_->Now() + reassembly_timeout_;
  }
  std::uint16_t byte_off = static_cast<std::uint16_t>(header.fragment_offset * 8);
  {
    BufLayerScope scope(BufLayer::kIp);
    if (!payload.empty()) {
      BufNoteAlloc();
      BufNoteCopy(payload.size());
    }
  }
  buf.fragments.push_back(
      ReassemblyBuffer::Fragment{byte_off, Bytes(payload.begin(), payload.end())});
  if (header.fragment_offset == 0) {
    buf.first_header = header;
    buf.have_first = true;
  }
  if (!header.more_fragments) {
    buf.total_len = byte_off + payload.size();
  }
  if (buf.total_len == 0 || !buf.have_first) {
    return;
  }
  // Try to assemble: coverage must be contiguous from 0 to total_len.
  std::sort(buf.fragments.begin(), buf.fragments.end(),
            [](const auto& a, const auto& b) { return a.offset < b.offset; });
  Bytes assembled;
  std::size_t next = 0;
  for (const auto& f : buf.fragments) {
    if (f.offset > next) {
      return;  // hole remains
    }
    if (f.offset + f.data.size() <= next) {
      continue;  // fully overlapped
    }
    std::size_t skip = next - f.offset;
    assembled.insert(assembled.end(), f.data.begin() + static_cast<std::ptrdiff_t>(skip),
                     f.data.end());
    next = f.offset + f.data.size();
    if (next >= buf.total_len) {
      break;
    }
  }
  if (next < buf.total_len) {
    return;
  }
  assembled.resize(buf.total_len);
  Ipv4Header whole = buf.first_header;
  whole.more_fragments = false;
  whole.fragment_offset = 0;
  ++ip_stats_.reassembled;
  reassembly_.erase(key);
  DeliverLocal(whole, assembled, in);
}

void NetStack::CleanReassembly() {
  SimTime now = sim_->Now();
  for (auto it = reassembly_.begin(); it != reassembly_.end();) {
    if (it->second.deadline <= now) {
      ++ip_stats_.reassembly_failures;
      it = reassembly_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace upr
