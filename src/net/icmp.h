// ICMP (RFC 792): echo, destination unreachable, time exceeded — plus the
// gateway access-control messages the paper proposes in §4.3 ("One message
// can force an entry to be removed from the table of authorized non-amateur
// systems... Another message would allow one to add an authorized
// non-amateur host to the tables with an appropriately chosen time-to-live",
// authenticated by callsign + password when they arrive from the
// non-amateur side). Those ride an experimental ICMP type and are handled by
// src/gateway.
#ifndef SRC_NET_ICMP_H_
#define SRC_NET_ICMP_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>

#include "src/net/ip_address.h"
#include "src/net/ipv4.h"
#include "src/sim/simulator.h"
#include "src/util/byte_buffer.h"

namespace upr {

class NetStack;
class NetInterface;

inline constexpr std::uint8_t kIcmpEchoReply = 0;
inline constexpr std::uint8_t kIcmpUnreachable = 3;
inline constexpr std::uint8_t kIcmpRedirect = 5;
inline constexpr std::uint8_t kIcmpEchoRequest = 8;
inline constexpr std::uint8_t kIcmpTimeExceeded = 11;

// Codes for kIcmpRedirect.
inline constexpr std::uint8_t kRedirectNet = 0;
inline constexpr std::uint8_t kRedirectHost = 1;
// Experimental type carrying the paper's gateway table control messages.
inline constexpr std::uint8_t kIcmpGatewayControl = 38;

// Codes for kIcmpUnreachable.
inline constexpr std::uint8_t kUnreachNet = 0;
inline constexpr std::uint8_t kUnreachHost = 1;
inline constexpr std::uint8_t kUnreachProtocol = 2;
inline constexpr std::uint8_t kUnreachPort = 3;
inline constexpr std::uint8_t kUnreachFragNeeded = 4;
// Used when the gateway's access-control table refuses a packet (§4.3).
inline constexpr std::uint8_t kUnreachAdminProhibited = 13;

// Codes for kIcmpGatewayControl.
inline constexpr std::uint8_t kGwCtlAuthorize = 0;
inline constexpr std::uint8_t kGwCtlRevoke = 1;

struct IcmpMessage {
  std::uint8_t type = 0;
  std::uint8_t code = 0;
  Bytes body;  // everything after the 4-byte type/code/checksum header

  Bytes Encode() const;
  static std::optional<IcmpMessage> Decode(ByteView wire);
};

// Payload of a kIcmpGatewayControl message (§4.3).
struct GatewayControlBody {
  IpV4Address amateur_host;      // host on the radio side of the pairing
  IpV4Address non_amateur_host;  // host beyond the gateway
  std::uint32_t ttl_seconds = 0; // authorize: entry lifetime
  std::string callsign;          // control operator credentials
  std::string password;

  Bytes Encode() const;
  static std::optional<GatewayControlBody> Decode(const Bytes& body);
};

class Icmp {
 public:
  explicit Icmp(NetStack* stack);

  // Registered with the stack for protocol 1. The payload view aliases the
  // in-flight buffer; valid only during the call.
  void HandleInput(const Ipv4Header& ip, ByteView payload, NetInterface* in);

  // Sends an echo request; `callback(success, rtt)` fires on reply or after
  // `timeout`. Returns the echo identifier.
  using PingCallback = std::function<void(bool success, SimTime rtt)>;
  std::uint16_t Ping(IpV4Address dst, std::size_t payload_len, PingCallback callback,
                     SimTime timeout = Seconds(60));

  // Error generators (rate-unlimited; the simulator is polite). `orig` is the
  // offending datagram's header, `orig_payload` its payload; RFC 792 echoes
  // the header + first 8 payload bytes back to the source.
  void SendUnreachable(const Ipv4Header& orig, ByteView orig_payload, std::uint8_t code);
  void SendTimeExceeded(const Ipv4Header& orig, ByteView orig_payload);

  // Sends a gateway control message to `gateway`.
  void SendGatewayControl(IpV4Address gateway, std::uint8_t code,
                          const GatewayControlBody& body);

  // ICMP host redirect: tells `orig.source` that `better_gateway` is the
  // right first hop for `orig.destination`. This is the mechanism §4.2 says
  // was "conceivable ... using ICMP [but] at this time, no mechanism is in
  // place" — multiple AMPRnet gateways on one wire each serving a different
  // slice of net 44 (see bench_x2_redirect).
  void SendRedirect(const Ipv4Header& orig, ByteView orig_payload,
                    IpV4Address better_gateway);

  // Whether received host redirects install /32 routes (on by default, as
  // in 4.3BSD hosts; gateways themselves typically ignore redirects).
  void set_accept_redirects(bool accept) { accept_redirects_ = accept; }

  std::uint64_t redirects_sent() const { return redirects_sent_; }
  std::uint64_t redirects_accepted() const { return redirects_accepted_; }

  // Hook for additional types (the gateway registers kIcmpGatewayControl).
  using TypeHandler = std::function<void(const Ipv4Header& ip, const IcmpMessage& msg,
                                         NetInterface* in)>;
  void RegisterTypeHandler(std::uint8_t type, TypeHandler handler);

  // Hook invoked on received unreachable/time-exceeded errors (TCP listens to
  // abort connections).
  using ErrorHandler = std::function<void(const Ipv4Header& outer, const IcmpMessage& msg)>;
  void set_error_handler(ErrorHandler h) { on_error_ = std::move(h); }

  std::uint64_t echoes_answered() const { return echoes_answered_; }
  std::uint64_t errors_sent() const { return errors_sent_; }

 private:
  struct PendingPing {
    PingCallback callback;
    SimTime sent_at = 0;
    std::uint64_t timeout_event = 0;
  };

  void SendError(const Ipv4Header& orig, ByteView orig_payload, std::uint8_t type,
                 std::uint8_t code);

  void HandleRedirect(const Ipv4Header& ip, const IcmpMessage& msg, NetInterface* in);

  NetStack* stack_;
  std::uint16_t next_echo_id_ = 1;
  std::map<std::uint16_t, PendingPing> pending_pings_;
  std::map<std::uint8_t, TypeHandler> type_handlers_;
  ErrorHandler on_error_;
  bool accept_redirects_ = true;
  std::uint64_t echoes_answered_ = 0;
  std::uint64_t errors_sent_ = 0;
  std::uint64_t redirects_sent_ = 0;
  std::uint64_t redirects_accepted_ = 0;
};

}  // namespace upr

#endif  // SRC_NET_ICMP_H_
