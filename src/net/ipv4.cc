#include "src/net/ipv4.h"

#include <cstdio>

#include "src/util/crc.h"

namespace upr {

void Ipv4Header::EncodeTo(PacketBuf* pb) const {
  BufLayerScope scope(BufLayer::kIp);
  std::size_t hlen = HeaderLength();
  std::size_t total = hlen + pb->size();
  std::uint8_t* h = pb->Prepend(hlen);
  h[0] = static_cast<std::uint8_t>(0x40 | (hlen / 4));
  h[1] = tos;
  h[2] = static_cast<std::uint8_t>(total >> 8);
  h[3] = static_cast<std::uint8_t>(total);
  h[4] = static_cast<std::uint8_t>(identification >> 8);
  h[5] = static_cast<std::uint8_t>(identification);
  std::uint16_t frag = static_cast<std::uint16_t>((dont_fragment ? 0x4000 : 0) |
                                                  (more_fragments ? 0x2000 : 0) |
                                                  (fragment_offset & 0x1FFF));
  h[6] = static_cast<std::uint8_t>(frag >> 8);
  h[7] = static_cast<std::uint8_t>(frag);
  h[8] = ttl;
  h[9] = protocol;
  h[10] = 0;  // checksum placeholder
  h[11] = 0;
  std::uint32_t src = source.value();
  std::uint32_t dst = destination.value();
  h[12] = static_cast<std::uint8_t>(src >> 24);
  h[13] = static_cast<std::uint8_t>(src >> 16);
  h[14] = static_cast<std::uint8_t>(src >> 8);
  h[15] = static_cast<std::uint8_t>(src);
  h[16] = static_cast<std::uint8_t>(dst >> 24);
  h[17] = static_cast<std::uint8_t>(dst >> 16);
  h[18] = static_cast<std::uint8_t>(dst >> 8);
  h[19] = static_cast<std::uint8_t>(dst);
  std::size_t i = 20;
  for (std::uint8_t b : options) {
    h[i++] = b;
  }
  while (i < hlen) {
    h[i++] = 0;  // EOL padding
  }
  std::uint16_t sum = InternetChecksum(h, hlen);
  h[10] = static_cast<std::uint8_t>(sum >> 8);
  h[11] = static_cast<std::uint8_t>(sum & 0xFF);
}

Bytes Ipv4Header::Encode(const Bytes& payload) const {
  // Exact-fit PacketBuf: after the prepend the storage is fully occupied, so
  // Release() moves it out — same one-allocation cost as before.
  PacketBuf pb = PacketBuf::FromView(payload, HeaderLength());
  EncodeTo(&pb);
  return pb.Release();
}

std::optional<Ipv4Header::ParsedView> Ipv4Header::DecodeView(ByteView datagram) {
  if (datagram.size() < 20) {
    return std::nullopt;
  }
  std::uint8_t vhl = datagram[0];
  if ((vhl >> 4) != 4) {
    return std::nullopt;
  }
  std::size_t hlen = static_cast<std::size_t>(vhl & 0x0F) * 4;
  if (hlen < 20 || hlen > datagram.size()) {
    return std::nullopt;
  }
  if (InternetChecksum(datagram.data(), hlen) != 0) {
    return std::nullopt;
  }
  ByteReader r(datagram.data(), datagram.size());
  r.Skip(1);
  ParsedView p;
  p.header.tos = r.ReadU8();
  std::uint16_t total = r.ReadU16();
  if (total < hlen || total > datagram.size()) {
    return std::nullopt;
  }
  p.header.identification = r.ReadU16();
  std::uint16_t frag = r.ReadU16();
  p.header.dont_fragment = (frag & 0x4000) != 0;
  p.header.more_fragments = (frag & 0x2000) != 0;
  p.header.fragment_offset = frag & 0x1FFF;
  p.header.ttl = r.ReadU8();
  p.header.protocol = r.ReadU8();
  r.Skip(2);  // checksum (verified above)
  p.header.source = IpV4Address(r.ReadU32());
  p.header.destination = IpV4Address(r.ReadU32());
  if (hlen > 20) {
    p.header.options = r.ReadBytes(hlen - 20);
  }
  if (!r.ok()) {
    return std::nullopt;
  }
  p.payload = datagram.subspan(hlen, total - hlen);
  return p;
}

std::optional<Ipv4Header::Parsed> Ipv4Header::Decode(const Bytes& datagram) {
  std::optional<ParsedView> v = DecodeView(datagram);
  if (!v) {
    return std::nullopt;
  }
  Parsed p;
  p.header = std::move(v->header);
  {
    BufLayerScope scope(BufLayer::kIp);
    if (!v->payload.empty()) {
      BufNoteAlloc();
      BufNoteCopy(v->payload.size());
    }
  }
  p.payload.assign(v->payload.begin(), v->payload.end());
  return p;
}

void Ipv4Header::DecrementTtlInPlace(std::uint8_t* datagram) {
  std::size_t hlen = static_cast<std::size_t>(datagram[0] & 0x0F) * 4;
  --datagram[8];
  // Full recompute (not RFC 1141 incremental) so the forwarded bytes are
  // bit-identical to a re-encode — the equivalence property test relies on it.
  datagram[10] = 0;
  datagram[11] = 0;
  std::uint16_t sum = InternetChecksum(datagram, hlen);
  datagram[10] = static_cast<std::uint8_t>(sum >> 8);
  datagram[11] = static_cast<std::uint8_t>(sum & 0xFF);
}

std::string Ipv4Header::ToString() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%s > %s proto=%u ttl=%u id=%u%s%s off=%u",
                source.ToString().c_str(), destination.ToString().c_str(), protocol, ttl,
                identification, dont_fragment ? " DF" : "", more_fragments ? " MF" : "",
                fragment_offset);
  return buf;
}

}  // namespace upr
