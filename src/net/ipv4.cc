#include "src/net/ipv4.h"

#include <cstdio>

#include "src/util/crc.h"

namespace upr {

Bytes Ipv4Header::Encode(const Bytes& payload) const {
  Bytes opts = options;
  while (opts.size() % 4 != 0) {
    opts.push_back(0);  // EOL padding
  }
  std::size_t hlen = 20 + opts.size();
  Bytes out;
  out.reserve(hlen + payload.size());
  ByteWriter w(&out);
  w.WriteU8(static_cast<std::uint8_t>(0x40 | (hlen / 4)));
  w.WriteU8(tos);
  w.WriteU16(static_cast<std::uint16_t>(hlen + payload.size()));
  w.WriteU16(identification);
  std::uint16_t frag = static_cast<std::uint16_t>((dont_fragment ? 0x4000 : 0) |
                                                  (more_fragments ? 0x2000 : 0) |
                                                  (fragment_offset & 0x1FFF));
  w.WriteU16(frag);
  w.WriteU8(ttl);
  w.WriteU8(protocol);
  w.WriteU16(0);  // checksum placeholder
  w.WriteU32(source.value());
  w.WriteU32(destination.value());
  w.WriteBytes(opts);
  std::uint16_t sum = InternetChecksum(out.data(), hlen);
  out[10] = static_cast<std::uint8_t>(sum >> 8);
  out[11] = static_cast<std::uint8_t>(sum & 0xFF);
  w.WriteBytes(payload);
  return out;
}

std::optional<Ipv4Header::Parsed> Ipv4Header::Decode(const Bytes& datagram) {
  if (datagram.size() < 20) {
    return std::nullopt;
  }
  std::uint8_t vhl = datagram[0];
  if ((vhl >> 4) != 4) {
    return std::nullopt;
  }
  std::size_t hlen = static_cast<std::size_t>(vhl & 0x0F) * 4;
  if (hlen < 20 || hlen > datagram.size()) {
    return std::nullopt;
  }
  if (InternetChecksum(datagram.data(), hlen) != 0) {
    return std::nullopt;
  }
  ByteReader r(datagram);
  r.Skip(1);
  Parsed p;
  p.header.tos = r.ReadU8();
  std::uint16_t total = r.ReadU16();
  if (total < hlen || total > datagram.size()) {
    return std::nullopt;
  }
  p.header.identification = r.ReadU16();
  std::uint16_t frag = r.ReadU16();
  p.header.dont_fragment = (frag & 0x4000) != 0;
  p.header.more_fragments = (frag & 0x2000) != 0;
  p.header.fragment_offset = frag & 0x1FFF;
  p.header.ttl = r.ReadU8();
  p.header.protocol = r.ReadU8();
  r.Skip(2);  // checksum (verified above)
  p.header.source = IpV4Address(r.ReadU32());
  p.header.destination = IpV4Address(r.ReadU32());
  if (hlen > 20) {
    p.header.options = r.ReadBytes(hlen - 20);
  }
  p.payload.assign(datagram.begin() + static_cast<std::ptrdiff_t>(hlen),
                   datagram.begin() + total);
  if (!r.ok()) {
    return std::nullopt;
  }
  return p;
}

std::string Ipv4Header::ToString() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%s > %s proto=%u ttl=%u id=%u%s%s off=%u",
                source.ToString().c_str(), destination.ToString().c_str(), protocol, ttl,
                identification, dont_fragment ? " DF" : "", more_fragments ? " MF" : "",
                fragment_offset);
  return buf;
}

}  // namespace upr
