#include "src/net/routing.h"

namespace upr {

void RouteTable::AddDirect(IpV4Prefix prefix, NetInterface* ifp, int metric) {
  routes_.push_back(Route{prefix, ifp, std::nullopt, metric});
}

void RouteTable::AddVia(IpV4Prefix prefix, IpV4Address gateway, NetInterface* ifp,
                        int metric) {
  routes_.push_back(Route{prefix, ifp, gateway, metric});
}

void RouteTable::AddDefault(IpV4Address gateway, NetInterface* ifp) {
  AddVia(IpV4Prefix{IpV4Address::Any(), 0}, gateway, ifp);
}

std::size_t RouteTable::Remove(IpV4Prefix prefix) {
  std::size_t removed = 0;
  for (auto it = routes_.begin(); it != routes_.end();) {
    if (it->prefix.network == prefix.network && it->prefix.mask == prefix.mask) {
      it = routes_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

const Route* RouteTable::Lookup(IpV4Address dst) const {
  const Route* best = nullptr;
  for (const auto& r : routes_) {
    if (!r.prefix.Contains(dst)) {
      continue;
    }
    if (best == nullptr || r.prefix.mask > best->prefix.mask ||
        (r.prefix.mask == best->prefix.mask && r.metric < best->metric)) {
      best = &r;
    }
  }
  return best;
}

std::string RouteTable::ToString() const {
  std::string out;
  for (const auto& r : routes_) {
    out += r.prefix.ToString();
    if (r.gateway) {
      out += " via " + r.gateway->ToString();
    }
    out += "\n";
  }
  return out;
}

}  // namespace upr
