// Simulated Ethernet: the department LAN on the wired side of the gateway.
//
// A 10 Mb/s broadcast segment. Frames are serialized on the wire (the medium
// carries one frame at a time; CSMA/CD backoff is abstracted away since the
// paper's Ethernet is never the bottleneck — the radio side at 1200 bps is
// four orders of magnitude slower). EthernetInterface is the DEQNA-driver
// equivalent: Ethernet-II framing, ARP resolution (htype 1), IP delivery.
#ifndef SRC_ETHER_ETHERNET_H_
#define SRC_ETHER_ETHERNET_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/net/arp.h"
#include "src/net/interface.h"
#include "src/sim/simulator.h"
#include "src/util/byte_buffer.h"

namespace upr {

inline constexpr std::uint16_t kEtherTypeIp = 0x0800;
inline constexpr std::uint16_t kEtherTypeArp = 0x0806;
inline constexpr std::size_t kEtherHeaderBytes = 14;
inline constexpr std::size_t kEtherMtu = 1500;

class EthernetInterface;

class EtherSegment {
 public:
  explicit EtherSegment(Simulator* sim, std::uint64_t bit_rate = 10'000'000);

  void Attach(EthernetInterface* interface);
  // Serializes the frame on the wire and delivers it to every other station.
  void Transmit(EthernetInterface* from, Bytes frame);

  Simulator* sim() { return sim_; }
  std::uint64_t frames_carried() const { return frames_carried_; }

 private:
  Simulator* sim_;
  std::uint64_t bit_rate_;
  SimTime busy_until_ = 0;
  std::vector<EthernetInterface*> stations_;
  std::uint64_t frames_carried_ = 0;
};

class EthernetInterface : public NetInterface {
 public:
  EthernetInterface(EtherSegment* segment, std::string name, EtherAddr mac);

  const EtherAddr& mac() const { return mac_; }
  ArpResolver& arp() { return *arp_; }

  // NetInterface. The PacketBuf path prepends the 14-byte Ethernet-II header
  // into the datagram's headroom; the Bytes overload copies first.
  void Output(const Bytes& ip_datagram, IpV4Address next_hop) override;
  void Output(PacketBuf&& ip_datagram, IpV4Address next_hop) override;

 private:
  friend class EtherSegment;

  void TransmitFrame(std::uint16_t ethertype, const EtherAddr& dst, PacketBuf&& payload);
  void ReceiveFrame(const Bytes& frame);

  EtherSegment* segment_;
  EtherAddr mac_;
  std::unique_ptr<ArpResolver> arp_;
};

}  // namespace upr

#endif  // SRC_ETHER_ETHERNET_H_
