#include "src/ether/ethernet.h"

#include <algorithm>

#include "src/trace/trace.h"
#include "src/util/logging.h"

namespace upr {

EtherSegment::EtherSegment(Simulator* sim, std::uint64_t bit_rate)
    : sim_(sim), bit_rate_(bit_rate) {}

void EtherSegment::Attach(EthernetInterface* interface) {
  stations_.push_back(interface);
}

void EtherSegment::Transmit(EthernetInterface* from, Bytes frame) {
  // Serialize on the medium: transmissions queue behind the wire.
  SimTime start = std::max(busy_until_, sim_->Now());
  SimTime end = start + TransmitTime(frame.size(), bit_rate_);
  busy_until_ = end;
  ++frames_carried_;
  sim_->ScheduleAt(end, [this, from, frame = std::move(frame)] {
    for (EthernetInterface* station : stations_) {
      if (station != from) {
        station->ReceiveFrame(frame);
      }
    }
  });
}

EthernetInterface::EthernetInterface(EtherSegment* segment, std::string name,
                                     EtherAddr mac)
    : NetInterface(std::move(name), kEtherMtu), segment_(segment), mac_(mac) {
  ArpConfig config;
  config.hardware_type = kArpHtypeEthernet;
  config.broadcast_hw = EtherAddr::Broadcast();
  config.retry_interval = Seconds(1);  // LAN-speed retries
  arp_ = std::make_unique<ArpResolver>(
      segment->sim(), config, [this] { return address(); }, HwAddress(mac_),
      /*transmit_arp=*/
      [this](const Bytes& arp_packet, const std::optional<HwAddress>& dst) {
        EtherAddr to = dst ? std::get<EtherAddr>(*dst) : EtherAddr::Broadcast();
        PacketBuf pb;
        {
          BufLayerScope scope(BufLayer::kEther);
          pb = PacketBuf::FromView(arp_packet, PacketBuf::kDefaultHeadroom);
        }
        TransmitFrame(kEtherTypeArp, to, std::move(pb));
      },
      /*send_resolved=*/
      [this](PacketBuf&& ip_datagram, const HwAddress& dst) {
        TransmitFrame(kEtherTypeIp, std::get<EtherAddr>(dst), std::move(ip_datagram));
      });
  segment->Attach(this);
}

void EthernetInterface::Output(const Bytes& ip_datagram, IpV4Address next_hop) {
  BufLayerScope scope(BufLayer::kEther);
  Output(PacketBuf::FromView(ip_datagram, PacketBuf::kDefaultHeadroom), next_hop);
}

void EthernetInterface::Output(PacketBuf&& ip_datagram, IpV4Address next_hop) {
  if (!up_) {
    ++stats_.oerrors;
    return;
  }
  ++stats_.opackets;
  stats_.obytes += ip_datagram.size();
  arp_->Send(std::move(ip_datagram), next_hop);
}

void EthernetInterface::TransmitFrame(std::uint16_t ethertype, const EtherAddr& dst,
                                      PacketBuf&& payload) {
  std::uint8_t* h;
  {
    BufLayerScope scope(BufLayer::kEther);
    h = payload.Prepend(kEtherHeaderBytes);
  }
  std::copy(dst.octets.begin(), dst.octets.end(), h);
  std::copy(mac_.octets.begin(), mac_.octets.end(), h + 6);
  h[12] = static_cast<std::uint8_t>(ethertype >> 8);
  h[13] = static_cast<std::uint8_t>(ethertype & 0xFF);
  if (auto* t = trace::Active()) {
    t->RecordEtherFrame(trace::Kind::kEtherFrameOut, trace::Dir::kTx, name(),
                        payload.view());
  }
  segment_->Transmit(this, payload.Release());
}

void EthernetInterface::ReceiveFrame(const Bytes& frame) {
  if (!up_ || frame.size() < kEtherHeaderBytes) {
    return;
  }
  EtherAddr dst;
  std::copy(frame.begin(), frame.begin() + 6, dst.octets.begin());
  if (dst != mac_ && !dst.IsBroadcast()) {
    return;  // hardware address filter
  }
  if (auto* t = trace::Active()) {
    t->RecordEtherFrame(trace::Kind::kEtherFrameIn, trace::Dir::kRx, name(),
                        frame);
  }
  std::uint16_t ethertype = static_cast<std::uint16_t>(frame[12] << 8 | frame[13]);
  ByteView payload(frame.data() + kEtherHeaderBytes, frame.size() - kEtherHeaderBytes);
  if (ethertype == kEtherTypeIp) {
    // The one receive-side copy: into an owned, headroom-carrying PacketBuf.
    PacketBuf pb;
    {
      BufLayerScope scope(BufLayer::kEther);
      pb = PacketBuf::FromView(payload, PacketBuf::kDefaultHeadroom);
    }
    DeliverToStack(std::move(pb));
  } else if (ethertype == kEtherTypeArp) {
    arp_->HandleArpPacket(payload);
  }
}

}  // namespace upr
