// Streaming pcapng writer for the flight recorder's wall-format export.
//
// Emits exactly the blocks Wireshark needs (pcapng, draft-ietf-opsawg-pcapng):
// one Section Header Block, one Interface Description Block per simulated
// port (written lazily the first time the port appears), and one Enhanced
// Packet Block per traced frame. The link type is LINKTYPE_AX25_KISS (202):
// packet data is the KISS type byte followed by the AX.25 frame without FCS —
// which is precisely what crosses the host<->TNC boundary here. Interface
// timestamps are declared nanosecond-resolution (if_tsresol = 9), so EPB
// timestamps are raw simulator time and sort identically to the event log.
#ifndef SRC_TRACE_PCAPNG_WRITER_H_
#define SRC_TRACE_PCAPNG_WRITER_H_

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <string_view>

#include "src/sim/simulator.h"
#include "src/util/byte_buffer.h"

namespace upr::trace {

// pcapng constants shared with the in-repo reader (and its tests).
inline constexpr std::uint32_t kPcapngShbType = 0x0A0D0D0A;
inline constexpr std::uint32_t kPcapngIdbType = 0x00000001;
inline constexpr std::uint32_t kPcapngEpbType = 0x00000006;
inline constexpr std::uint32_t kPcapngByteOrderMagic = 0x1A2B3C4D;
inline constexpr std::uint16_t kLinkTypeEthernet = 1;
inline constexpr std::uint16_t kLinkTypeAx25Kiss = 202;

class PcapngWriter {
 public:
  // Opens `path` and writes the section header. Check ok() afterwards.
  PcapngWriter(std::string path, std::uint32_t snaplen);
  ~PcapngWriter();
  PcapngWriter(const PcapngWriter&) = delete;
  PcapngWriter& operator=(const PcapngWriter&) = delete;

  bool ok() const { return file_ != nullptr; }

  // Interface id for `name`, writing its Interface Description Block — with
  // the given LINKTYPE_* value — on first use. A name keeps the link type it
  // was first registered with (one IDB per simulated port).
  std::uint32_t InterfaceId(std::string_view name,
                            std::uint16_t link_type = kLinkTypeAx25Kiss);

  // Writes one Enhanced Packet Block. `data` is the on-the-wire bytes
  // (already truncated to snaplen by the caller), `orig_len` the original
  // length, `flags` the epb_flags word (bit0 inbound / bit1 outbound, 0 for
  // unknown) and `comment` an optional opt_comment shown by Wireshark.
  void WritePacket(std::uint32_t interface_id, SimTime ts, ByteView data,
                   std::uint32_t orig_len, std::uint32_t flags,
                   std::string_view comment);

  void Flush();

  std::uint64_t packets() const { return packets_; }
  std::uint64_t bytes_written() const { return bytes_written_; }
  std::uint64_t interfaces() const { return interfaces_.size(); }

 private:
  void WriteBlock(const Bytes& block);

  std::FILE* file_ = nullptr;
  std::uint32_t snaplen_;
  std::map<std::string, std::uint32_t, std::less<>> interfaces_;
  std::uint64_t packets_ = 0;
  std::uint64_t bytes_written_ = 0;
};

}  // namespace upr::trace

#endif  // SRC_TRACE_PCAPNG_WRITER_H_
