#include "src/trace/trace.h"

#include <cstdio>

#include "src/trace/pcapng_writer.h"
#include "src/util/panic.h"

namespace upr::trace {

void Install(Tracer* t) {
  detail::TracerSlot() = t;
  // The ROADMAP's ring-buffer assertion hook: any failed invariant anywhere
  // in the library dumps the flight recorder before the process dies, not
  // just uprsim workload failures. Registered once; a no-op while no tracer
  // is installed.
  static int panic_hook = AddPanicHook([] { DumpActiveRing(stderr); });
  (void)panic_hook;
}

void Uninstall(Tracer* t) {
  if (detail::TracerSlot() == t) {
    detail::TracerSlot() = nullptr;
  }
}

const char* LayerName(Layer layer) {
  switch (layer) {
    case Layer::kSerial:
      return "serial";
    case Layer::kKiss:
      return "kiss";
    case Layer::kAx25:
      return "ax25";
    case Layer::kIp:
      return "ip";
    case Layer::kMac:
      return "mac";
    case Layer::kGateway:
      return "gateway";
    case Layer::kDriver:
      return "driver";
    case Layer::kEther:
      return "ether";
  }
  return "?";
}

const char* KindName(Kind kind) {
  switch (kind) {
    case Kind::kSerialEnqueue:
      return "enqueue";
    case Kind::kSerialDeliver:
      return "deliver";
    case Kind::kKissFrameOut:
      return "frame-out";
    case Kind::kKissFrameIn:
      return "frame-in";
    case Kind::kAx25Encode:
      return "encode";
    case Kind::kAx25Decode:
      return "decode";
    case Kind::kIpForward:
      return "forward";
    case Kind::kIpDrop:
      return "drop";
    case Kind::kGatewayPass:
      return "pass";
    case Kind::kGatewayDeny:
      return "deny";
    case Kind::kMacTxStart:
      return "tx-start";
    case Kind::kMacCollision:
      return "collision";
    case Kind::kMacDefer:
      return "defer";
    case Kind::kDriverDrop:
      return "output-drop";
    case Kind::kEtherFrameOut:
      return "frame-out";
    case Kind::kEtherFrameIn:
      return "frame-in";
  }
  return "?";
}

const char* DirName(Dir dir) {
  switch (dir) {
    case Dir::kNone:
      return "--";
    case Dir::kTx:
      return "tx";
    case Dir::kRx:
      return "rx";
  }
  return "?";
}

std::string Entry::ToString() const {
  char head[128];
  std::snprintf(head, sizeof(head), "%12.6f  %-7s %-11s %-2s %-14.*s %5u B",
                ToSeconds(ts), LayerName(layer), KindName(kind), DirName(dir),
                static_cast<int>(iface.size()), iface.data(), orig_len);
  std::string out = head;
  if (!note.empty()) {
    out += "  ";
    out += note;
  }
  return out;
}

Tracer::Tracer(Simulator* sim, TracerConfig config)
    : sim_(sim), config_(std::move(config)) {
  if (config_.ring_capacity == 0) {
    config_.ring_capacity = 1;
  }
  ring_.reserve(config_.ring_capacity);
  if (!config_.pcap_path.empty()) {
    pcap_ = std::make_unique<PcapngWriter>(
        config_.pcap_path, static_cast<std::uint32_t>(config_.snaplen));
  }
}

Tracer::~Tracer() {
  Uninstall(this);
  if (pcap_ != nullptr) {
    stats_.pcap_bytes = pcap_->bytes_written();
  }
}

bool Tracer::pcap_ok() const { return pcap_ == nullptr || pcap_->ok(); }

Entry& Tracer::NextSlot() {
  if (ring_.size() < config_.ring_capacity) {
    ring_.emplace_back();
    return ring_.back();
  }
  Entry& slot = ring_[ring_next_];
  ring_next_ = (ring_next_ + 1) % config_.ring_capacity;
  ++stats_.ring_evicted;
  return slot;
}

void Tracer::Record(Layer layer, Kind kind, Dir dir, std::string_view iface,
                    ByteView data, std::string note) {
  Entry& e = NextSlot();
  e.ts = NowForEntry();
  e.seq = seq_++;
  e.layer = layer;
  e.kind = kind;
  e.dir = dir;
  e.iface.assign(iface.empty() ? CurrentIf() : iface);
  e.note = std::move(note);
  e.orig_len = static_cast<std::uint32_t>(data.size());
  std::size_t keep = data.size();
  if (keep > config_.snaplen) {
    keep = config_.snaplen;
    ++stats_.truncated;
  }
  e.data.assign(data.begin(), data.begin() + static_cast<std::ptrdiff_t>(keep));
  ++stats_.recorded;
  ++stats_.per_layer[static_cast<int>(layer)];
}

void Tracer::RecordFrame(Layer layer, Kind kind, Dir dir, std::string_view iface,
                         ByteView ax25, std::string note, std::uint8_t kiss_port) {
  if (iface.empty()) {
    iface = CurrentIf();
  }
  if (dir == Dir::kNone) {
    dir = CurrentDir();
  }
  if (pcap_ != nullptr && pcap_->ok()) {
    // LINKTYPE_AX25_KISS: the KISS type byte, then the frame (no FCS).
    Bytes wire;
    std::size_t keep = ax25.size();
    bool cut = false;
    if (keep + 1 > config_.snaplen && config_.snaplen > 0) {
      keep = config_.snaplen - 1;
      cut = true;
    }
    wire.reserve(keep + 1);
    wire.push_back(static_cast<std::uint8_t>((kiss_port & 0x0F) << 4));
    wire.insert(wire.end(), ax25.begin(),
                ax25.begin() + static_cast<std::ptrdiff_t>(keep));
    (void)cut;
    std::uint32_t flags = dir == Dir::kRx ? 1u : dir == Dir::kTx ? 2u : 0u;
    std::string comment(LayerName(layer));
    comment += ':';
    comment += KindName(kind);
    if (!note.empty()) {
      comment += ' ';
      comment += note;
    }
    std::uint32_t id = pcap_->InterfaceId(iface.empty() ? "unnamed" : iface);
    pcap_->WritePacket(id, NowForEntry(), wire,
                       static_cast<std::uint32_t>(ax25.size() + 1), flags,
                       comment);
    stats_.pcap_packets = pcap_->packets();
    stats_.pcap_interfaces = pcap_->interfaces();
    stats_.pcap_bytes = pcap_->bytes_written();
  }
  Record(layer, kind, dir, iface, ax25, std::move(note));
}

void Tracer::RecordEtherFrame(Kind kind, Dir dir, std::string_view iface,
                              ByteView frame, std::string note) {
  if (iface.empty()) {
    iface = CurrentIf();
  }
  if (dir == Dir::kNone) {
    dir = CurrentDir();
  }
  if (pcap_ != nullptr && pcap_->ok()) {
    // LINKTYPE_ETHERNET: the raw Ethernet-II frame, no pseudo-header.
    std::size_t keep = std::min(frame.size(), config_.snaplen);
    std::uint32_t flags = dir == Dir::kRx ? 1u : dir == Dir::kTx ? 2u : 0u;
    std::string comment(LayerName(Layer::kEther));
    comment += ':';
    comment += KindName(kind);
    if (!note.empty()) {
      comment += ' ';
      comment += note;
    }
    std::uint32_t id = pcap_->InterfaceId(iface.empty() ? "unnamed" : iface,
                                          kLinkTypeEthernet);
    pcap_->WritePacket(id, NowForEntry(), frame.first(keep),
                       static_cast<std::uint32_t>(frame.size()), flags,
                       comment);
    stats_.pcap_packets = pcap_->packets();
    stats_.pcap_interfaces = pcap_->interfaces();
    stats_.pcap_bytes = pcap_->bytes_written();
  }
  Record(Layer::kEther, kind, dir, iface, frame, std::move(note));
}

std::vector<const Entry*> Tracer::RingSnapshot() const {
  std::vector<const Entry*> out;
  out.reserve(ring_.size());
  if (ring_.size() < config_.ring_capacity) {
    for (const Entry& e : ring_) {
      out.push_back(&e);
    }
    return out;
  }
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(&ring_[(ring_next_ + i) % ring_.size()]);
  }
  return out;
}

std::string Tracer::FormatRing() const {
  std::string out = "=== trace ring (oldest first) ===\n";
  for (const Entry* e : RingSnapshot()) {
    out += e->ToString();
    out += '\n';
  }
  char tail[160];
  std::snprintf(tail, sizeof(tail),
                "%llu recorded, %llu evicted, %llu truncated\n",
                static_cast<unsigned long long>(stats_.recorded),
                static_cast<unsigned long long>(stats_.ring_evicted),
                static_cast<unsigned long long>(stats_.truncated));
  out += tail;
  return out;
}

void Tracer::Flush() {
  if (pcap_ != nullptr) {
    pcap_->Flush();
    stats_.pcap_bytes = pcap_->bytes_written();
  }
}

void DumpActiveRing(std::FILE* out) {
  Tracer* t = Active();
  if (t == nullptr) {
    return;
  }
  std::string dump = t->FormatRing();
  std::fwrite(dump.data(), 1, dump.size(), out);
}

}  // namespace upr::trace
