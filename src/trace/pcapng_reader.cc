#include "src/trace/pcapng_reader.h"

#include <functional>

#include "src/trace/pcapng_writer.h"

namespace upr::trace {

namespace {

std::uint16_t GetU16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | p[1] << 8);
}

std::uint32_t GetU32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

bool Fail(std::string* error, const std::string& msg) {
  if (error != nullptr) {
    *error = msg;
  }
  return false;
}

// Walks the options region [p, end), invoking `on_option(code, value_view)`.
bool ParseOptions(const std::uint8_t* p, const std::uint8_t* end,
                  std::string* error,
                  const std::function<void(std::uint16_t, ByteView)>& on_option) {
  while (p < end) {
    if (end - p < 4) {
      return Fail(error, "truncated option header");
    }
    std::uint16_t code = GetU16(p);
    std::uint16_t len = GetU16(p + 2);
    p += 4;
    if (code == 0) {  // opt_endofopt
      return true;
    }
    std::size_t padded = (static_cast<std::size_t>(len) + 3) / 4 * 4;
    if (static_cast<std::size_t>(end - p) < padded) {
      return Fail(error, "option value overruns block");
    }
    on_option(code, ByteView(p, len));
    p += padded;
  }
  return true;  // options may end at the block boundary without endofopt
}

}  // namespace

std::optional<PcapngFile> PcapngFile::Parse(ByteView file, std::string* error) {
  PcapngFile out;
  std::uint8_t current_tsresol = 6;
  std::size_t pos = 0;
  bool have_section = false;

  while (pos < file.size()) {
    if (file.size() - pos < 12) {
      Fail(error, "trailing bytes too short for a block");
      return std::nullopt;
    }
    const std::uint8_t* p = file.data() + pos;
    std::uint32_t type = GetU32(p);
    std::uint32_t total = GetU32(p + 4);
    if (total < 12 || total % 4 != 0) {
      Fail(error, "bad block total length");
      return std::nullopt;
    }
    if (file.size() - pos < total) {
      Fail(error, "block overruns file");
      return std::nullopt;
    }
    if (GetU32(p + total - 4) != total) {
      Fail(error, "trailing block length mismatch");
      return std::nullopt;
    }
    const std::uint8_t* body = p + 8;
    std::size_t body_len = total - 12;

    if (type == kPcapngShbType) {
      if (body_len < 16) {
        Fail(error, "short section header");
        return std::nullopt;
      }
      if (GetU32(body) != kPcapngByteOrderMagic) {
        Fail(error, "unsupported byte order");
        return std::nullopt;
      }
      have_section = true;
    } else if (!have_section) {
      Fail(error, "block before section header");
      return std::nullopt;
    } else if (type == kPcapngIdbType) {
      if (body_len < 8) {
        Fail(error, "short interface block");
        return std::nullopt;
      }
      PcapngInterface idb;
      idb.link_type = GetU16(body);
      idb.snaplen = GetU32(body + 4);
      bool opts_ok = ParseOptions(
          body + 8, body + body_len, error,
          [&idb](std::uint16_t code, ByteView v) {
            if (code == 2) {  // if_name
              idb.name.assign(v.begin(), v.end());
            } else if (code == 9 && !v.empty()) {  // if_tsresol
              idb.tsresol = v[0];
            }
          });
      if (!opts_ok) {
        return std::nullopt;
      }
      current_tsresol = idb.tsresol;
      out.interfaces.push_back(std::move(idb));
    } else if (type == kPcapngEpbType) {
      if (body_len < 20) {
        Fail(error, "short packet block");
        return std::nullopt;
      }
      PcapngPacket pkt;
      pkt.interface_id = GetU32(body);
      pkt.timestamp = static_cast<std::uint64_t>(GetU32(body + 4)) << 32 |
                      GetU32(body + 8);
      pkt.captured_len = GetU32(body + 12);
      pkt.orig_len = GetU32(body + 16);
      std::size_t padded = (static_cast<std::size_t>(pkt.captured_len) + 3) / 4 * 4;
      if (body_len - 20 < padded) {
        Fail(error, "packet data overruns block");
        return std::nullopt;
      }
      if (pkt.interface_id >= out.interfaces.size()) {
        Fail(error, "packet references unknown interface");
        return std::nullopt;
      }
      pkt.data.assign(body + 20, body + 20 + pkt.captured_len);
      bool opts_ok = ParseOptions(
          body + 20 + padded, body + body_len, error,
          [&pkt](std::uint16_t code, ByteView v) {
            if (code == 1) {  // opt_comment
              pkt.comment.assign(v.begin(), v.end());
            } else if (code == 2 && v.size() >= 4) {  // epb_flags
              pkt.flags = GetU32(v.data());
            }
          });
      if (!opts_ok) {
        return std::nullopt;
      }
      out.packets.push_back(std::move(pkt));
    }
    // Unknown block types are tolerated (and kept raw below).

    out.raw_blocks.emplace_back(p, p + total);
    pos += total;
  }
  (void)current_tsresol;
  if (!have_section) {
    Fail(error, "no section header block");
    return std::nullopt;
  }
  return out;
}

}  // namespace upr::trace
