#include "src/trace/pcapng_writer.h"

namespace upr::trace {

namespace {

// pcapng is written in the producer's native byte order and announces it via
// the byte-order magic; we always write little-endian and the reader checks.
void PutU16(Bytes* out, std::uint16_t v) {
  out->push_back(static_cast<std::uint8_t>(v & 0xFF));
  out->push_back(static_cast<std::uint8_t>(v >> 8));
}

void PutU32(Bytes* out, std::uint32_t v) {
  PutU16(out, static_cast<std::uint16_t>(v & 0xFFFF));
  PutU16(out, static_cast<std::uint16_t>(v >> 16));
}

void PutU64(Bytes* out, std::uint64_t v) {
  PutU32(out, static_cast<std::uint32_t>(v & 0xFFFFFFFF));
  PutU32(out, static_cast<std::uint32_t>(v >> 32));
}

// Appends `len` bytes followed by the pad that brings *the value itself* to a
// 32-bit boundary. pcapng pads packet data and option values relative to
// their own start; padding to `out->size() % 4 == 0` (what this used to do)
// gives the same bytes only while everything preceding happens to be
// 4-aligned — an accident the reader must not depend on.
void PutPadded(Bytes* out, const std::uint8_t* data, std::size_t len) {
  out->insert(out->end(), data, data + len);
  out->insert(out->end(), (4 - len % 4) % 4, 0);
}

// Appends one option: code, length, value padded to 32 bits.
void PutOption(Bytes* out, std::uint16_t code, const std::uint8_t* data,
               std::size_t len) {
  PutU16(out, code);
  PutU16(out, static_cast<std::uint16_t>(len));
  PutPadded(out, data, len);
}

void PutEndOfOptions(Bytes* out) {
  PutU16(out, 0);  // opt_endofopt
  PutU16(out, 0);
}

// Wraps a block body with type + total length (leading and trailing).
Bytes MakeBlock(std::uint32_t type, const Bytes& body) {
  Bytes block;
  std::uint32_t total = static_cast<std::uint32_t>(12 + body.size());
  PutU32(&block, type);
  PutU32(&block, total);
  block.insert(block.end(), body.begin(), body.end());
  PutU32(&block, total);
  return block;
}

}  // namespace

PcapngWriter::PcapngWriter(std::string path, std::uint32_t snaplen)
    : snaplen_(snaplen) {
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    return;
  }
  // Section Header Block: byte-order magic, version 1.0, unknown section
  // length (-1).
  Bytes body;
  PutU32(&body, kPcapngByteOrderMagic);
  PutU16(&body, 1);
  PutU16(&body, 0);
  PutU64(&body, 0xFFFFFFFFFFFFFFFFull);
  WriteBlock(MakeBlock(kPcapngShbType, body));
}

PcapngWriter::~PcapngWriter() {
  if (file_ != nullptr) {
    std::fclose(file_);
  }
}

void PcapngWriter::WriteBlock(const Bytes& block) {
  if (file_ == nullptr) {
    return;
  }
  std::fwrite(block.data(), 1, block.size(), file_);
  bytes_written_ += block.size();
}

std::uint32_t PcapngWriter::InterfaceId(std::string_view name,
                                        std::uint16_t link_type) {
  auto it = interfaces_.find(name);
  if (it != interfaces_.end()) {
    return it->second;
  }
  std::uint32_t id = static_cast<std::uint32_t>(interfaces_.size());
  interfaces_.emplace(std::string(name), id);

  Bytes body;
  PutU16(&body, link_type);
  PutU16(&body, 0);  // reserved
  PutU32(&body, snaplen_);
  // if_name(2): the simulated port; if_tsresol(9): 10^-9 s, raw sim time.
  PutOption(&body, 2, reinterpret_cast<const std::uint8_t*>(name.data()),
            name.size());
  std::uint8_t tsresol = 9;
  PutOption(&body, 9, &tsresol, 1);
  PutEndOfOptions(&body);
  WriteBlock(MakeBlock(kPcapngIdbType, body));
  return id;
}

void PcapngWriter::WritePacket(std::uint32_t interface_id, SimTime ts,
                               ByteView data, std::uint32_t orig_len,
                               std::uint32_t flags, std::string_view comment) {
  Bytes body;
  PutU32(&body, interface_id);
  std::uint64_t t = static_cast<std::uint64_t>(ts);
  PutU32(&body, static_cast<std::uint32_t>(t >> 32));
  PutU32(&body, static_cast<std::uint32_t>(t & 0xFFFFFFFF));
  PutU32(&body, static_cast<std::uint32_t>(data.size()));
  PutU32(&body, orig_len);
  PutPadded(&body, data.data(), data.size());
  if (!comment.empty()) {
    PutOption(&body, 1,  // opt_comment
              reinterpret_cast<const std::uint8_t*>(comment.data()),
              comment.size());
  }
  if (flags != 0) {
    Bytes v;
    PutU32(&v, flags);
    PutOption(&body, 2, v.data(), v.size());  // epb_flags
  }
  if (!comment.empty() || flags != 0) {
    PutEndOfOptions(&body);
  }
  WriteBlock(MakeBlock(kPcapngEpbType, body));
  ++packets_;
}

void PcapngWriter::Flush() {
  if (file_ != nullptr) {
    std::fflush(file_);
  }
}

}  // namespace upr::trace
