// Minimal pcapng reader — just enough structure validation to round-trip the
// writer's output in tests: block framing (leading length == trailing length,
// 32-bit alignment, no overrun), section byte order, interface description
// blocks (link type, name, timestamp resolution) and enhanced packet blocks
// (interface id bounds, timestamps, captured data, flags/comment options).
// Unknown block types are preserved raw, so concatenating `raw_blocks`
// reconstructs the input byte-for-byte.
#ifndef SRC_TRACE_PCAPNG_READER_H_
#define SRC_TRACE_PCAPNG_READER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/util/byte_buffer.h"

namespace upr::trace {

struct PcapngInterface {
  std::uint16_t link_type = 0;
  std::uint32_t snaplen = 0;
  std::string name;
  std::uint8_t tsresol = 6;  // pcapng default: microseconds
};

struct PcapngPacket {
  std::uint32_t interface_id = 0;
  std::uint64_t timestamp = 0;  // units of 10^-tsresol s for its interface
  std::uint32_t captured_len = 0;
  std::uint32_t orig_len = 0;
  Bytes data;
  std::uint32_t flags = 0;  // epb_flags, 0 when absent
  std::string comment;
};

struct PcapngFile {
  std::vector<PcapngInterface> interfaces;
  std::vector<PcapngPacket> packets;
  // Every block in file order, raw (type + lengths included).
  std::vector<Bytes> raw_blocks;

  // Parses `file`; returns nullopt (and sets `*error` when given) on any
  // structural violation. Little-endian sections only — which is what the
  // in-repo writer produces.
  static std::optional<PcapngFile> Parse(ByteView file,
                                         std::string* error = nullptr);
};

}  // namespace upr::trace

#endif  // SRC_TRACE_PCAPNG_READER_H_
