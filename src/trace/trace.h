// upr::trace — the packet-lifecycle flight recorder (ISSUE 3).
//
// The paper's §3 war story (a promiscuous TNC flooding the host, diagnosed
// only by watching what actually crossed each layer) is the design brief:
// record one event per *layer crossing* — serial enqueue/dequeue, KISS frame
// in/out, AX.25 encode/decode, IP forward decisions, MAC channel events —
// each stamped with simulator time, direction, interface name and a view of
// the frame, and feed two sinks:
//
//   * a bounded in-memory ring buffer, dumpable when an assertion or a
//     workload fails (the "flight recorder" proper), and
//   * an optional pcapng writer emitting LINKTYPE_AX25_KISS (202) files
//     Wireshark opens directly, one interface block per simulated port.
//
// Cost discipline: tracing is off unless a Tracer is installed, and every
// hook is guarded by a single `Active() != nullptr` branch — the disabled
// cost per layer crossing is one predictable-not-taken branch. All strings,
// copies and formatting happen only inside the taken branch. The ambient
// tracer (like BufLayerScope's ambient layer) is thread_local: each shard
// worker of the parallel city executor installs its own shard's tracer, so
// concurrent shards record into disjoint rings/files without locks, and the
// classic single-threaded scenarios behave exactly as before.
#ifndef SRC_TRACE_TRACE_H_
#define SRC_TRACE_TRACE_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/sim/simulator.h"
#include "src/util/byte_buffer.h"

namespace upr::trace {

// The layer a crossing belongs to (which subsystem recorded it).
enum class Layer : std::uint8_t {
  kSerial,   // RS-232 line between DZ and TNC
  kKiss,     // KISS framing boundary (host<->TNC byte stream)
  kAx25,     // AX.25 frame codec
  kIp,       // IP input/forward decisions
  kMac,      // CSMA MAC + radio channel
  kGateway,  // §4.3 gateway policy
  kDriver,   // packet radio pseudo-device driver
  kEther,    // Ethernet segment (the wired side of the gateway)
};
inline constexpr int kLayerCount = 8;

// What happened at the crossing.
enum class Kind : std::uint8_t {
  kSerialEnqueue,  // bytes written to a serial endpoint's TX FIFO
  kSerialDeliver,  // a delivery event (receive interrupt) fired
  kKissFrameOut,   // a KISS frame was escape-written to the wire
  kKissFrameIn,    // the streaming decoder completed a frame
  kAx25Encode,     // an AX.25 header was serialized in front of a payload
  kAx25Decode,     // an AX.25 frame was parsed (src/dst/digi path in note)
  kIpForward,      // the stack decided to forward a datagram
  kIpDrop,         // the stack dropped a datagram (note says why)
  kGatewayPass,    // gateway forward-filter allowed a crossing
  kGatewayDeny,    // gateway forward-filter denied a crossing
  kMacTxStart,     // a port keyed up and began transmitting
  kMacCollision,   // a transmission overlapped another (both corrupted)
  kMacDefer,       // the MAC deferred (carrier busy or p-persistence)
  kDriverDrop,     // driver output drop (serial backlog cap)
  kEtherFrameOut,  // an Ethernet-II frame hit the segment
  kEtherFrameIn,   // an Ethernet-II frame passed the station's MAC filter
};

enum class Dir : std::uint8_t { kNone, kTx, kRx };

const char* LayerName(Layer layer);
const char* KindName(Kind kind);
const char* DirName(Dir dir);

// One recorded layer crossing. `data` is an owned copy truncated to the
// tracer's snaplen; `orig_len` preserves the pre-truncation length.
struct Entry {
  SimTime ts = 0;
  std::uint64_t seq = 0;
  Layer layer = Layer::kSerial;
  Kind kind = Kind::kSerialEnqueue;
  Dir dir = Dir::kNone;
  std::string iface;
  std::string note;
  Bytes data;
  std::uint32_t orig_len = 0;

  std::string ToString() const;
};

struct TracerConfig {
  // Ring capacity in entries; the newest entries win (older ones are evicted
  // and counted).
  std::size_t ring_capacity = 512;
  // Bytes of frame data kept per entry / per pcapng packet.
  std::size_t snaplen = 512;
  // When non-empty, AX.25-bearing crossings are also written to this pcapng
  // file (LINKTYPE_AX25_KISS, one interface block per simulated port).
  std::string pcap_path;
};

struct TraceStats {
  std::uint64_t recorded = 0;        // entries accepted into the ring
  std::uint64_t ring_evicted = 0;    // entries overwritten by newer ones
  std::uint64_t truncated = 0;       // entries whose data hit snaplen
  std::uint64_t pcap_packets = 0;    // enhanced packet blocks written
  std::uint64_t pcap_bytes = 0;      // file bytes written
  std::uint64_t pcap_interfaces = 0; // interface blocks written
  std::uint64_t per_layer[kLayerCount] = {};
};

class PcapngWriter;

class Tracer {
 public:
  // `sim` provides the event timestamps (nanosecond sim time).
  Tracer(Simulator* sim, TracerConfig config = {});
  // Sharded execution: entries are stamped from whichever shard simulator is
  // currently executing, not a fixed one. When set, `clock` overrides `sim`
  // for timestamping (the city runner points it at the sharded executor's
  // current-shard clock).
  void set_clock(std::function<SimTime()> clock) { clock_ = std::move(clock); }
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Records a crossing into the ring only.
  void Record(Layer layer, Kind kind, Dir dir, std::string_view iface,
              ByteView data, std::string note = {});

  // Records a crossing whose `ax25` bytes are a complete AX.25 frame (no
  // FCS): ring entry plus, when a pcap file is open, one packet on `iface`'s
  // pcapng interface. The packet body is the KISS type byte for `kiss_port`
  // followed by the frame, the LINKTYPE_AX25_KISS wire format.
  void RecordFrame(Layer layer, Kind kind, Dir dir, std::string_view iface,
                   ByteView ax25, std::string note = {},
                   std::uint8_t kiss_port = 0);

  // Records a crossing whose bytes are a complete Ethernet-II frame: ring
  // entry plus, when a pcap file is open, one packet on `iface`'s interface —
  // registered as LINKTYPE_ETHERNET (1), so a mixed capture carries the
  // radio ports as AX.25/KISS and the LAN port (`qe0`) as real Ethernet.
  void RecordEtherFrame(Kind kind, Dir dir, std::string_view iface,
                        ByteView frame, std::string note = {});

  const TracerConfig& config() const { return config_; }
  const TraceStats& stats() const { return stats_; }
  // False when the pcap file could not be opened (stats keep counting).
  bool pcap_ok() const;

  // Ring contents, oldest first. Pointers are valid until the next Record.
  std::vector<const Entry*> RingSnapshot() const;
  // Human-readable dump of the ring (one line per entry), for failure paths.
  std::string FormatRing() const;

  // Flushes buffered pcapng output to disk (also done on destruction).
  void Flush();

 private:
  Entry& NextSlot();

  SimTime NowForEntry() const { return clock_ ? clock_() : sim_->Now(); }

  Simulator* sim_;
  std::function<SimTime()> clock_;
  TracerConfig config_;
  TraceStats stats_;
  std::vector<Entry> ring_;     // grows to ring_capacity, then wraps
  std::size_t ring_next_ = 0;   // slot the next entry lands in (once full)
  std::uint64_t seq_ = 0;
  std::unique_ptr<PcapngWriter> pcap_;
};

namespace detail {
// thread_local: each parallel-city worker thread carries its own ambient
// tracer and interface scope; the main thread's slots behave exactly like
// the old process-wide globals. Function-local thread_locals behind inline
// accessors, NOT `extern thread_local` variables — header-inline code
// touching an extern TLS variable goes through the compiler's TLS wrapper
// and trips a GCC UBSan false positive ("store to null pointer"); with the
// definition visible here the access compiles to a plain TLS load.
inline Tracer*& TracerSlot() {
  static thread_local Tracer* tracer = nullptr;
  return tracer;
}
inline std::string_view& IfNameSlot() {
  static thread_local std::string_view name;
  return name;
}
inline Dir& IfDirSlot() {
  static thread_local Dir dir = Dir::kNone;
  return dir;
}
}  // namespace detail

// The installed tracer, or nullptr. Every hook checks this — the one branch
// a disabled tracer costs.
inline Tracer* Active() { return detail::TracerSlot(); }

// Installs `t` as the process-wide tracer (replacing any previous one).
void Install(Tracer* t);
// Clears the installation if `t` is the current tracer; no-op otherwise.
void Uninstall(Tracer* t);

// RAII install/uninstall, for tests and tools.
class ScopedInstall {
 public:
  explicit ScopedInstall(Tracer* t) : t_(t) { Install(t); }
  ~ScopedInstall() { Uninstall(t_); }
  ScopedInstall(const ScopedInstall&) = delete;
  ScopedInstall& operator=(const ScopedInstall&) = delete;

 private:
  Tracer* t_;
};

// Ambient interface attribution for codec-level hooks. The KISS and AX.25
// codecs are pure functions with no interface of their own; the driver and
// TNC wrap calls into them in an IfScope naming the port the bytes belong
// to, exactly as BufLayerScope attributes buffer work. Construction is a
// no-op (one branch) when no tracer is installed.
class IfScope {
 public:
  IfScope(std::string_view name, Dir dir) {
    if (detail::TracerSlot() == nullptr) {
      return;
    }
    active_ = true;
    prev_name_ = detail::IfNameSlot();
    prev_dir_ = detail::IfDirSlot();
    detail::IfNameSlot() = name;
    detail::IfDirSlot() = dir;
  }
  ~IfScope() {
    if (active_) {
      detail::IfNameSlot() = prev_name_;
      detail::IfDirSlot() = prev_dir_;
    }
  }
  IfScope(const IfScope&) = delete;
  IfScope& operator=(const IfScope&) = delete;

 private:
  bool active_ = false;
  std::string_view prev_name_;
  Dir prev_dir_ = Dir::kNone;
};

// Interface name / direction the innermost IfScope established ("" / kNone
// outside any scope).
inline std::string_view CurrentIf() { return detail::IfNameSlot(); }
inline Dir CurrentDir() { return detail::IfDirSlot(); }

// Writes the active tracer's ring to `out` (stderr-style failure dumps).
// No-op when no tracer is installed.
void DumpActiveRing(std::FILE* out);

}  // namespace upr::trace

#endif  // SRC_TRACE_TRACE_H_
