// upr::tracediff — structural comparison of two seeded-run captures (ISSUE 5).
//
// The aggregate `--netstat` counters can stay green while a frame's bytes,
// ordering, or timing silently regress (PR 4's three latent channel/LAPB
// bugs all hid behind passing counters). This module compares what actually
// crossed the wire: two pcapng captures of the same seeded scenario, frame
// by frame, and reports structural differences at three levels —
//
//   1. per-layer/per-port event counts (the "layer:kind" comment the tracer
//      stamps on every packet, bucketed per interface),
//   2. frame-by-frame payload bytes, with the first differing offset and a
//      hexdump of both sides around it,
//   3. timestamp deltas, against a configurable tolerance (silo-mode serial
//      delivery legitimately shifts delivery timing by up to the silo alarm
//      while leaving the wire bytes identical).
//
// Alignment is per interface (matched by pcapng if_name), by sequence. After
// a mismatch the aligner resynchronizes on a (length, CRC-16) frame key
// within a bounded window, so one inserted or deleted frame is reported as
// exactly that instead of cascading into hundreds of "payload diffs".
//
// The report is bounded: the first `max_report` divergences are itemized,
// the rest only counted — a diverging 100k-frame run stays readable.
#ifndef SRC_TRACE_TRACE_DIFF_H_
#define SRC_TRACE_TRACE_DIFF_H_

#include <cstdint>
#include <optional>
#include <string>

#include "src/sim/simulator.h"
#include "src/trace/pcapng_reader.h"

namespace upr::tracediff {

struct Config {
  // Max tolerated |timestamp_a - timestamp_b| per aligned pair, in
  // nanoseconds (timestamps are normalized to ns via each interface's
  // if_tsresol before comparing).
  SimTime time_tol = 0;
  // Divergences itemized in the report before further ones are only counted.
  std::size_t max_report = 32;
  // Bytes of hexdump context shown before/after a payload first-diff.
  std::size_t hex_context = 16;
  // Frames the aligner looks ahead on either side for a resync anchor after
  // a mismatch before falling back to pairing the frames as mutated.
  std::size_t resync_window = 64;
};

struct Stats {
  std::uint64_t interfaces_compared = 0;
  std::uint64_t frames_compared = 0;  // aligned pairs byte-compared
  std::uint64_t payload_diffs = 0;    // aligned pairs whose bytes differ
  std::uint64_t meta_diffs = 0;       // aligned pairs whose comment/flags differ
  std::uint64_t timing_diffs = 0;     // aligned pairs beyond time_tol
  std::uint64_t only_in_a = 0;        // frames skipped in A to realign
  std::uint64_t only_in_b = 0;        // frames skipped in B to realign
  std::uint64_t count_diffs = 0;      // differing per-layer/per-port count rows
  std::uint64_t iface_diffs = 0;      // interface set / link-type mismatches
  SimTime max_time_delta = 0;         // largest aligned-pair delta seen (ns)

  std::uint64_t differences() const {
    return payload_diffs + meta_diffs + timing_diffs + only_in_a + only_in_b +
           count_diffs + iface_diffs;
  }
};

struct Result {
  bool equivalent = false;  // no difference beyond the timing tolerance
  Stats stats;
  // Human-readable report: itemized divergences (bounded by max_report),
  // then a summary block. Non-empty even when equivalent.
  std::string report;
};

// Compares two parsed captures.
Result DiffCaptures(const trace::PcapngFile& a, const trace::PcapngFile& b,
                    const Config& cfg = {});

// Loads and strict-parses both files, then diffs. Returns nullopt (with
// `*error` set when given) if either file cannot be read or fails the
// reader's structural validation.
std::optional<Result> DiffFiles(const std::string& path_a,
                                const std::string& path_b,
                                const Config& cfg = {},
                                std::string* error = nullptr);

}  // namespace upr::tracediff

#endif  // SRC_TRACE_TRACE_DIFF_H_
