#include "src/trace/trace_diff.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <vector>

#include "src/util/crc.h"

namespace upr::tracediff {

namespace {

std::string Sprintf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
std::string Sprintf(const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  return buf;
}

// One frame of an interface's stream, timestamp normalized to nanoseconds.
struct Frame {
  SimTime ts = 0;
  Bytes data;
  std::uint32_t orig_len = 0;
  std::uint32_t flags = 0;
  std::string comment;
  // Resync key: captured length + CRC-16 over the captured bytes. Cheap to
  // compare, and two different frames virtually never collide — and an
  // accidental collision only costs a byte-compare, never a wrong verdict.
  std::uint32_t key = 0;
};

struct IfStream {
  std::uint16_t link_type = 0;
  std::vector<Frame> frames;
};

SimTime ToNanos(std::uint64_t ts, std::uint8_t tsresol) {
  // Power-of-two resolutions (bit 7 set) never come out of the in-repo
  // writer; treat them as raw rather than guessing.
  if (tsresol & 0x80) {
    return static_cast<SimTime>(ts);
  }
  if (tsresol <= 9) {
    SimTime scale = 1;
    for (int i = tsresol; i < 9; ++i) {
      scale *= 10;
    }
    return static_cast<SimTime>(ts) * scale;
  }
  SimTime scale = 1;
  for (int i = 9; i < tsresol; ++i) {
    scale *= 10;
  }
  return static_cast<SimTime>(ts / static_cast<std::uint64_t>(scale));
}

std::uint32_t FrameKey(const Bytes& data) {
  return static_cast<std::uint32_t>(data.size()) << 16 ^ Crc16Ccitt(data);
}

std::map<std::string, IfStream> BuildStreams(const trace::PcapngFile& f) {
  std::map<std::string, IfStream> out;
  for (std::size_t i = 0; i < f.interfaces.size(); ++i) {
    std::string name = f.interfaces[i].name.empty()
                           ? Sprintf("if#%zu", i)
                           : f.interfaces[i].name;
    out[name].link_type = f.interfaces[i].link_type;
  }
  for (const trace::PcapngPacket& p : f.packets) {
    const trace::PcapngInterface& idb = f.interfaces[p.interface_id];
    std::string name = idb.name.empty()
                           ? Sprintf("if#%u", p.interface_id)
                           : idb.name;
    Frame fr;
    fr.ts = ToNanos(p.timestamp, idb.tsresol);
    fr.data = p.data;
    fr.orig_len = p.orig_len;
    fr.flags = p.flags;
    fr.comment = p.comment;
    fr.key = FrameKey(fr.data);
    out[name].frames.push_back(std::move(fr));
  }
  return out;
}

// "layer:kind" prefix of the tracer's packet comment — the event bucket for
// the per-layer/per-port count level.
std::string CommentKey(const std::string& comment) {
  if (comment.empty()) {
    return "(uncommented)";
  }
  std::size_t space = comment.find(' ');
  return space == std::string::npos ? comment : comment.substr(0, space);
}

// Bounded report builder: itemizes the first max_report divergences, counts
// the rest.
class Report {
 public:
  explicit Report(std::size_t max_items) : max_items_(max_items) {}

  // Adds one itemized divergence (possibly multi-line).
  void Item(const std::string& text) {
    ++items_;
    if (items_ <= max_items_) {
      body_ += text;
      if (!text.empty() && text.back() != '\n') {
        body_ += '\n';
      }
    }
  }

  std::string Finish(const Stats& s, const Config& cfg) const {
    std::string out = body_;
    if (items_ > max_items_) {
      out += Sprintf("... %llu further divergences suppressed "
                     "(raise --max-report to see more)\n",
                     static_cast<unsigned long long>(items_ - max_items_));
    }
    out += Sprintf(
        "summary: %llu interfaces, %llu frames compared; %llu payload, "
        "%llu meta, %llu timing, %llu only-in-A, %llu only-in-B, "
        "%llu count, %llu interface diffs\n",
        static_cast<unsigned long long>(s.interfaces_compared),
        static_cast<unsigned long long>(s.frames_compared),
        static_cast<unsigned long long>(s.payload_diffs),
        static_cast<unsigned long long>(s.meta_diffs),
        static_cast<unsigned long long>(s.timing_diffs),
        static_cast<unsigned long long>(s.only_in_a),
        static_cast<unsigned long long>(s.only_in_b),
        static_cast<unsigned long long>(s.count_diffs),
        static_cast<unsigned long long>(s.iface_diffs));
    out += Sprintf("         max timestamp delta %.6f ms (tolerance %.6f ms)\n",
                   ToMillis(s.max_time_delta), ToMillis(cfg.time_tol));
    return out;
  }

 private:
  std::size_t max_items_;
  std::size_t items_ = 0;
  std::string body_ = "";
};

std::string HexLine(const Bytes& d, std::size_t start, std::size_t len) {
  std::string hex;
  std::string ascii;
  for (std::size_t i = start; i < start + len; ++i) {
    if (i < d.size()) {
      hex += Sprintf("%02x ", d[i]);
      ascii += (d[i] >= 0x20 && d[i] < 0x7F) ? static_cast<char>(d[i]) : '.';
    } else {
      hex += "   ";
      ascii += ' ';
    }
  }
  return hex + " |" + ascii + "|";
}

// First offset at which the captured bytes differ (== min size when one is a
// prefix of the other).
std::size_t FirstDiff(const Bytes& a, const Bytes& b) {
  std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] != b[i]) {
      return i;
    }
  }
  return n;
}

std::string PayloadDiffItem(const std::string& iface, std::size_t ia,
                            std::size_t ib, const Frame& fa, const Frame& fb,
                            const Config& cfg) {
  std::size_t off = FirstDiff(fa.data, fb.data);
  std::string out = Sprintf(
      "payload diff: interface \"%s\" frame a#%zu/b#%zu: first diff at byte "
      "offset %zu (a %zu B, b %zu B)\n",
      iface.c_str(), ia, ib, off, fa.data.size(), fb.data.size());
  std::size_t start = off > cfg.hex_context ? off - cfg.hex_context : 0;
  std::size_t len = cfg.hex_context * 2;
  out += Sprintf("  a @%-4zu %s\n", start, HexLine(fa.data, start, len).c_str());
  out += Sprintf("  b @%-4zu %s\n", start, HexLine(fb.data, start, len).c_str());
  return out;
}

}  // namespace

Result DiffCaptures(const trace::PcapngFile& a, const trace::PcapngFile& b,
                    const Config& cfg) {
  Result r;
  Stats& s = r.stats;
  Report report(cfg.max_report == 0 ? 1 : cfg.max_report);

  std::map<std::string, IfStream> sa = BuildStreams(a);
  std::map<std::string, IfStream> sb = BuildStreams(b);

  // --- Level 1: interface sets and per-layer/per-port event counts --------
  std::map<std::string, std::pair<const IfStream*, const IfStream*>> ifaces;
  for (const auto& [name, st] : sa) {
    ifaces[name].first = &st;
  }
  for (const auto& [name, st] : sb) {
    ifaces[name].second = &st;
  }
  for (const auto& [name, pair] : ifaces) {
    const auto& [ia, ib] = pair;
    if (ia == nullptr || ib == nullptr) {
      ++s.iface_diffs;
      report.Item(Sprintf("interface \"%s\" present only in %s (%zu frames)",
                          name.c_str(), ia != nullptr ? "A" : "B",
                          (ia != nullptr ? ia : ib)->frames.size()));
      continue;
    }
    if (ia->link_type != ib->link_type) {
      ++s.iface_diffs;
      report.Item(Sprintf("interface \"%s\": link type %u in A vs %u in B",
                          name.c_str(), ia->link_type, ib->link_type));
    }
    std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> counts;
    for (const Frame& f : ia->frames) {
      ++counts[CommentKey(f.comment)].first;
    }
    for (const Frame& f : ib->frames) {
      ++counts[CommentKey(f.comment)].second;
    }
    for (const auto& [key, cnt] : counts) {
      if (cnt.first != cnt.second) {
        ++s.count_diffs;
        report.Item(Sprintf(
            "event count: interface \"%s\" %s: %llu in A vs %llu in B",
            name.c_str(), key.c_str(),
            static_cast<unsigned long long>(cnt.first),
            static_cast<unsigned long long>(cnt.second)));
      }
    }
  }

  // --- Levels 2+3: frame-by-frame alignment per shared interface ----------
  for (const auto& [name, pair] : ifaces) {
    const auto& [pia, pib] = pair;
    if (pia == nullptr || pib == nullptr) {
      continue;
    }
    ++s.interfaces_compared;
    const std::vector<Frame>& fa = pia->frames;
    const std::vector<Frame>& fb = pib->frames;
    std::size_t i = 0;
    std::size_t j = 0;

    auto aligned_pair = [&](const Frame& x, const Frame& y, std::size_t ix,
                            std::size_t iy) {
      ++s.frames_compared;
      if (x.data != y.data || x.orig_len != y.orig_len) {
        ++s.payload_diffs;
        report.Item(PayloadDiffItem(name, ix, iy, x, y, cfg));
      } else if (x.comment != y.comment || x.flags != y.flags) {
        ++s.meta_diffs;
        report.Item(Sprintf(
            "meta diff: interface \"%s\" frame a#%zu/b#%zu: "
            "comment/flags \"%s\"/%u in A vs \"%s\"/%u in B",
            name.c_str(), ix, iy, x.comment.c_str(), x.flags,
            y.comment.c_str(), y.flags));
      }
      SimTime delta = x.ts > y.ts ? x.ts - y.ts : y.ts - x.ts;
      s.max_time_delta = std::max(s.max_time_delta, delta);
      if (delta > cfg.time_tol) {
        ++s.timing_diffs;
        report.Item(Sprintf(
            "timing diff: interface \"%s\" frame a#%zu/b#%zu: "
            "a=%.9f s, b=%.9f s, delta %.6f ms > tolerance %.6f ms",
            name.c_str(), ix, iy, ToSeconds(x.ts), ToSeconds(y.ts),
            ToMillis(delta), ToMillis(cfg.time_tol)));
      }
    };

    auto skip_one = [&](const std::vector<Frame>& v, std::size_t idx, char side,
                        std::uint64_t* counter) {
      ++*counter;
      report.Item(Sprintf(
          "frame only in %c: interface \"%s\" %c#%zu at %.9f s (%zu B, %s)",
          side, name.c_str(),
          static_cast<char>(side == 'A' ? 'a' : 'b'), idx,
          ToSeconds(v[idx].ts), v[idx].data.size(),
          v[idx].comment.empty() ? "uncommented" : v[idx].comment.c_str()));
    };

    while (i < fa.size() && j < fb.size()) {
      if (fa[i].key == fb[j].key && fa[i].data == fb[j].data) {
        aligned_pair(fa[i], fb[j], i, j);
        ++i;
        ++j;
        continue;
      }
      // Mismatch. If the streams re-align one step ahead (or both end), the
      // cheapest explanation is a mutated pair — report the byte diff and
      // move on.
      bool next_aligns =
          (i + 1 < fa.size() && j + 1 < fb.size() &&
           fa[i + 1].key == fb[j + 1].key) ||
          (i + 1 == fa.size() && j + 1 == fb.size());
      if (next_aligns) {
        aligned_pair(fa[i], fb[j], i, j);
        ++i;
        ++j;
        continue;
      }
      // Otherwise hunt for a resync anchor: the nearest frame ahead on one
      // side whose (length, CRC) key matches the other side's current frame.
      // Preferring the smallest skip keeps one insertion from cascading.
      std::size_t skip = 0;
      char side = 0;
      for (std::size_t d = 1; d <= cfg.resync_window && side == 0; ++d) {
        if (i + d < fa.size() && fa[i + d].key == fb[j].key) {
          skip = d;
          side = 'A';
        } else if (j + d < fb.size() && fa[i].key == fb[j + d].key) {
          skip = d;
          side = 'B';
        }
      }
      if (side == 'A') {
        for (std::size_t d = 0; d < skip; ++d) {
          skip_one(fa, i + d, 'A', &s.only_in_a);
        }
        i += skip;
      } else if (side == 'B') {
        for (std::size_t d = 0; d < skip; ++d) {
          skip_one(fb, j + d, 'B', &s.only_in_b);
        }
        j += skip;
      } else {
        // No anchor in the window: pair them as mutated rather than letting
        // every later frame report as inserted+deleted.
        aligned_pair(fa[i], fb[j], i, j);
        ++i;
        ++j;
      }
    }
    for (; i < fa.size(); ++i) {
      skip_one(fa, i, 'A', &s.only_in_a);
    }
    for (; j < fb.size(); ++j) {
      skip_one(fb, j, 'B', &s.only_in_b);
    }
  }

  r.equivalent = s.differences() == 0;
  r.report = report.Finish(s, cfg);
  return r;
}

namespace {

bool ReadWholeFile(const std::string& path, Bytes* out, std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (error != nullptr) {
      *error = "cannot open " + path;
    }
    return false;
  }
  out->clear();
  std::uint8_t buf[64 * 1024];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    out->insert(out->end(), buf, buf + n);
  }
  bool ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!ok && error != nullptr) {
    *error = "read error on " + path;
  }
  return ok;
}

}  // namespace

std::optional<Result> DiffFiles(const std::string& path_a,
                                const std::string& path_b, const Config& cfg,
                                std::string* error) {
  Bytes raw_a;
  Bytes raw_b;
  if (!ReadWholeFile(path_a, &raw_a, error) ||
      !ReadWholeFile(path_b, &raw_b, error)) {
    return std::nullopt;
  }
  std::string parse_error;
  std::optional<trace::PcapngFile> a = trace::PcapngFile::Parse(raw_a, &parse_error);
  if (!a) {
    if (error != nullptr) {
      *error = path_a + ": " + parse_error;
    }
    return std::nullopt;
  }
  std::optional<trace::PcapngFile> b = trace::PcapngFile::Parse(raw_b, &parse_error);
  if (!b) {
    if (error != nullptr) {
      *error = path_b + ": " + parse_error;
    }
    return std::nullopt;
  }
  return DiffCaptures(*a, *b, cfg);
}

}  // namespace upr::tracediff
