// The packet radio pseudo-device driver — the paper's contribution (§2.2).
//
// It implements the same interface as other network drivers (NetInterface,
// our `if_net`), but since the packet controller "does not sit on the bus",
// it talks to the TNC through a serial line: a *pseudo*-device driver.
//
// Receive path, faithful to the paper: the tty layer calls the driver's
// interrupt handler once per character; escaped KISS frame-end characters
// are decoded on the fly; when the final FEND arrives the driver checks that
// the recipient's callsign "is either its own, or the broadcast address",
// then checks the protocol ID — IP packets go onto the stack's incoming IP
// queue, and *non-IP* frames are placed on a tty-style input queue where a
// user program can read them to run AX.25 connected-mode services (§2.4's
// application-layer gateway).
//
// Transmit path: IP datagrams are resolved to AX.25 addresses with the
// radio-specific ARP (htype 3, §2.3), wrapped in UI frames (PID 0xCC) with
// the resolved digipeater path, KISS-framed and written to the serial line.
#ifndef SRC_DRIVER_PACKET_RADIO_INTERFACE_H_
#define SRC_DRIVER_PACKET_RADIO_INTERFACE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>

#include "src/ax25/address.h"
#include "src/ax25/frame.h"
#include "src/kiss/kiss.h"
#include "src/net/arp.h"
#include "src/net/interface.h"
#include "src/serial/serial_line.h"
#include "src/sim/simulator.h"

namespace upr {

struct PacketRadioConfig {
  Ax25Address local_address;
  std::size_t mtu = 256;  // AX.25 N1 default; keeps channel hold times short
  // Output backlog cap in serial bytes; beyond it datagrams are dropped
  // (IFQ_MAXLEN analogue for the slow serial path).
  std::uint64_t max_serial_backlog = 16 * 1024;
  // Size cap of the non-IP ("tty") input queue read by user programs.
  std::size_t l3_queue_limit = 32;
  // Additional destination addresses accepted as broadcasts (beyond QST/CQ):
  // NET/ROM routing broadcasts are addressed to "NODES".
  std::vector<Ax25Address> broadcast_aliases{Ax25Address("NODES", 0)};
  // Simulated CPU cost charged per received character interrupt; summed into
  // interrupt_cpu_time() (experiment E2/E5 measure this load).
  SimTime per_interrupt_cost = Microseconds(50);
};

struct DriverStats {
  // Receive interrupts taken: one per serial delivery event. In per-byte
  // mode that is one per character (§2.2); in silo mode one per silo-full.
  std::uint64_t interrupts = 0;
  std::uint64_t chars_in = 0;             // characters those interrupts carried
  SimTime interrupt_cpu_time = 0;
  std::uint64_t frames_in = 0;            // complete KISS frames from TNC
  std::uint64_t frames_not_for_us = 0;    // callsign filter rejections
  std::uint64_t frames_in_transit = 0;    // digipeating not complete; ignored
  std::uint64_t ip_in = 0;
  std::uint64_t arp_in = 0;
  std::uint64_t l3_in = 0;                // non-IP frames queued for user code
  std::uint64_t l3_drops = 0;
  std::uint64_t decode_errors = 0;
  std::uint64_t output_drops = 0;         // serial backlog cap exceeded
};

class PacketRadioInterface : public NetInterface {
 public:
  // `serial` is the host side of the RS-232 line to the TNC.
  PacketRadioInterface(Simulator* sim, SerialEndpoint* serial, std::string name,
                       PacketRadioConfig config);

  const Ax25Address& local_ax25() const { return config_.local_address; }
  ArpResolver& arp() { return *arp_; }
  const DriverStats& driver_stats() const { return dstats_; }
  // The on-the-fly KISS unescaper; exposes framing-error counters.
  const KissDecoder& kiss_decoder() const { return decoder_; }

  // NetInterface. The PacketBuf path is the native one: the AX.25 address
  // block lands in the datagram's headroom and KISS escaping is the only
  // wire-write. The Bytes overload copies into a fresh PacketBuf first.
  void Output(const Bytes& ip_datagram, IpV4Address next_hop) override;
  void Output(PacketBuf&& ip_datagram, IpV4Address next_hop) override;

  // --- User-level AX.25 access (§2.4 future work) -------------------------

  // Handler for non-IP frames; if unset they accumulate on the bounded queue
  // below. The handler receives the frame decoded with the mod-8 control
  // layout plus the raw wire bytes (valid only for the duration of the call),
  // so a LAPB layer running a mod-128 connection can re-parse the control
  // field — see Ax25Link::HandleDecoded.
  using L3Tap = std::function<void(const Ax25Frame&, ByteView wire)>;
  void set_l3_tap(L3Tap tap) { l3_tap_ = std::move(tap); }

  // Reads one queued non-IP frame (when no tap is installed); nullopt when
  // the queue is empty.
  std::optional<Ax25Frame> ReadL3Frame();
  std::size_t l3_queue_depth() const { return l3_queue_.size(); }

  // Transmits a raw AX.25 frame for a user-level protocol implementation.
  void SendRawFrame(const Ax25Frame& frame);

  // Registers a static ARP entry with a digipeater path (§2.3: "some entries
  // may contain additional callsigns for digipeaters").
  void AddArpEntry(IpV4Address ip, const Ax25Address& station,
                   std::vector<Ax25Address> digipeaters = {});

  // Mean characters per receive interrupt (1.0 in per-byte serial mode).
  double chars_per_interrupt() const {
    return dstats_.interrupts == 0
               ? 0.0
               : static_cast<double>(dstats_.chars_in) /
                     static_cast<double>(dstats_.interrupts);
  }

 private:
  void OnSerialChunk(const std::uint8_t* data, std::size_t len);
  // Zero-copy KISS delivery: `payload` aliases the decoder's frame buffer.
  void OnKissFrame(std::uint8_t port, KissCommand command, ByteView payload);
  void TransmitUi(std::uint8_t pid, PacketBuf&& payload, const Ax25HwAddr& dst);
  void WriteKiss(ByteView ax25_wire);

  Simulator* sim_;
  SerialEndpoint* serial_;
  PacketRadioConfig config_;
  KissDecoder decoder_;
  std::unique_ptr<ArpResolver> arp_;
  L3Tap l3_tap_;
  std::deque<Ax25Frame> l3_queue_;
  DriverStats dstats_;
};

}  // namespace upr

#endif  // SRC_DRIVER_PACKET_RADIO_INTERFACE_H_
