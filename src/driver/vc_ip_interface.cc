#include "src/driver/vc_ip_interface.h"

#include "src/util/logging.h"

namespace upr {

namespace {
constexpr const char* kTag = "ax25vc";
}  // namespace

Ax25VcIpInterface::Ax25VcIpInterface(Simulator* sim, PacketRadioInterface* driver,
                                     std::string name, Ax25LinkConfig link_config,
                                     std::size_t mtu)
    : NetInterface(std::move(name), mtu), sim_(sim), driver_(driver) {
  link_config.pid = kPidIp;  // I frames announce their layer 3, per KA9Q VC
  link_ = std::make_unique<Ax25Link>(
      sim, driver->local_ax25(),
      [driver](const Ax25Frame& f) { driver->SendRawFrame(f); }, link_config);
  driver_->set_l3_tap([this](const Ax25Frame& f, ByteView wire) {
    link_->HandleDecoded(f, wire);
  });
  link_->set_accept_handler([](const Ax25Address&) { return true; });
  link_->set_connection_handler([this](Ax25Connection* conn) {
    AttachConnection(conn->peer(), conn);
  });
}

void Ax25VcIpInterface::MapIpToCallsign(IpV4Address ip, const Ax25Address& callsign) {
  ip_to_call_[ip] = callsign;
}

void Ax25VcIpInterface::AttachConnection(const Ax25Address& callsign,
                                         Ax25Connection* conn) {
  auto& slot = peers_[callsign];
  if (!slot) {
    slot = std::make_unique<Peer>();
  }
  Peer* peer = slot.get();
  peer->conn = conn;
  conn->set_data_handler([this, peer](const Bytes& d) { OnStreamData(peer, d); });
  conn->set_connected_handler([this, peer] {
    while (!peer->pending.empty()) {
      peer->conn->Send(peer->pending.front());
      peer->pending.pop_front();
    }
  });
  conn->set_disconnected_handler([this, peer] {
    // Drop any half-reassembled datagram; a new circuit starts clean.
    peer->rx_buffer.clear();
    peer->pending.clear();
    peer->conn = nullptr;
  });
}

void Ax25VcIpInterface::Output(const Bytes& ip_datagram, IpV4Address next_hop) {
  if (!up_) {
    ++stats_.oerrors;
    return;
  }
  auto it = ip_to_call_.find(next_hop);
  if (it == ip_to_call_.end()) {
    ++stats_.oerrors;
    UPR_DEBUG(kTag, "no callsign mapping for %s", next_hop.ToString().c_str());
    return;
  }
  ++stats_.opackets;
  stats_.obytes += ip_datagram.size();
  auto& slot = peers_[it->second];
  if (!slot) {
    slot = std::make_unique<Peer>();
  }
  Peer* peer = slot.get();
  if (peer->conn == nullptr ||
      peer->conn->state() == Ax25Connection::State::kDisconnected) {
    ++circuits_opened_;
    Ax25Connection* conn = link_->Connect(it->second);
    AttachConnection(it->second, conn);
    peer->pending.push_back(ip_datagram);
    return;
  }
  if (peer->conn->state() == Ax25Connection::State::kConnecting) {
    peer->pending.push_back(ip_datagram);
    return;
  }
  peer->conn->Send(ip_datagram);
}

void Ax25VcIpInterface::OnStreamData(Peer* peer, const Bytes& data) {
  peer->rx_buffer.insert(peer->rx_buffer.end(), data.begin(), data.end());
  for (;;) {
    if (peer->rx_buffer.size() < 20) {
      return;
    }
    // Sanity: IPv4, sane header length. A framing slip is unrecoverable on a
    // byte stream, so reset the circuit's buffer.
    if ((peer->rx_buffer[0] >> 4) != 4) {
      ++framing_errors_;
      peer->rx_buffer.clear();
      return;
    }
    std::size_t total = static_cast<std::size_t>(peer->rx_buffer[2]) << 8 |
                        peer->rx_buffer[3];
    if (total < 20) {
      ++framing_errors_;
      peer->rx_buffer.clear();
      return;
    }
    if (peer->rx_buffer.size() < total) {
      return;  // datagram still arriving
    }
    Bytes datagram(peer->rx_buffer.begin(),
                   peer->rx_buffer.begin() + static_cast<std::ptrdiff_t>(total));
    peer->rx_buffer.erase(peer->rx_buffer.begin(),
                          peer->rx_buffer.begin() + static_cast<std::ptrdiff_t>(total));
    ++datagrams_reassembled_;
    DeliverToStack(datagram);
  }
}

}  // namespace upr
