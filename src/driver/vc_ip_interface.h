// IP over AX.25 virtual circuits — KA9Q's "VC mode", the alternative to the
// UI-datagram encapsulation the paper's driver uses (§2.2).
//
// The era's open question: should IP ride unnumbered AX.25 frames (losses
// left to TCP, cheap) or connected-mode circuits (link-layer ARQ per hop,
// extra SABM/RR traffic)? Karn's KA9Q code supported both; this interface
// implements the VC side so bench_x5_vc_mode can measure the trade on the
// simulated channel.
//
// Framing: IP datagrams are written onto the circuit back to back; the
// receiver re-splits the reliable byte stream using the IPv4 total-length
// field (possible only because connected mode is ordered and lossless).
// I frames carry PID 0xCC, as KA9Q did.
//
// The interface takes over the driver's tty (l3) tap — a station uses either
// this or another user-level AX.25 program, not both.
#ifndef SRC_DRIVER_VC_IP_INTERFACE_H_
#define SRC_DRIVER_VC_IP_INTERFACE_H_

#include <deque>
#include <map>
#include <memory>
#include <string>

#include "src/ax25/lapb.h"
#include "src/driver/packet_radio_interface.h"
#include "src/net/interface.h"

namespace upr {

class Ax25VcIpInterface : public NetInterface {
 public:
  Ax25VcIpInterface(Simulator* sim, PacketRadioInterface* driver, std::string name,
                    Ax25LinkConfig link_config = {}, std::size_t mtu = 256);

  // VC mode has no ARP flavour of its own: next-hop IPs are mapped to
  // callsigns administratively (as KA9Q's route/arp tables did for VC).
  void MapIpToCallsign(IpV4Address ip, const Ax25Address& callsign);

  void Output(const Bytes& ip_datagram, IpV4Address next_hop) override;

  // The underlying connected-mode link (for per-circuit ARQ statistics).
  Ax25Link& link() { return *link_; }

  std::uint64_t circuits_opened() const { return circuits_opened_; }
  std::uint64_t datagrams_reassembled() const { return datagrams_reassembled_; }
  std::uint64_t framing_errors() const { return framing_errors_; }

 private:
  struct Peer {
    Ax25Connection* conn = nullptr;
    std::deque<Bytes> pending;  // datagrams queued while connecting
    Bytes rx_buffer;            // reliable stream awaiting re-split
  };

  void AttachConnection(const Ax25Address& callsign, Ax25Connection* conn);
  void OnStreamData(Peer* peer, const Bytes& data);

  Simulator* sim_;
  PacketRadioInterface* driver_;
  std::unique_ptr<Ax25Link> link_;
  std::map<IpV4Address, Ax25Address> ip_to_call_;
  std::map<Ax25Address, std::unique_ptr<Peer>> peers_;
  std::uint64_t circuits_opened_ = 0;
  std::uint64_t datagrams_reassembled_ = 0;
  std::uint64_t framing_errors_ = 0;
};

}  // namespace upr

#endif  // SRC_DRIVER_VC_IP_INTERFACE_H_
