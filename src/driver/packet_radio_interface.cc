#include "src/driver/packet_radio_interface.h"

#include "src/trace/trace.h"
#include "src/util/logging.h"

namespace upr {

namespace {
constexpr const char* kTag = "prdrv";
}  // namespace

PacketRadioInterface::PacketRadioInterface(Simulator* sim, SerialEndpoint* serial,
                                           std::string name, PacketRadioConfig config)
    : NetInterface(std::move(name), config.mtu),
      sim_(sim),
      serial_(serial),
      config_(std::move(config)),
      decoder_(KissDecoder::FrameViewHandler(
          [this](std::uint8_t port, KissCommand command, ByteView payload) {
            OnKissFrame(port, command, payload);
          })) {
  ArpConfig arp_config;
  arp_config.hardware_type = kArpHtypeAx25;
  arp_config.broadcast_hw = Ax25HwAddr{Ax25Address::Broadcast(), {}};
  // The radio subnet is slow: space retries out accordingly.
  arp_config.retry_interval = Seconds(15);
  arp_config.max_retries = 4;
  arp_ = std::make_unique<ArpResolver>(
      sim_, arp_config, [this] { return address(); },
      HwAddress(Ax25HwAddr{config_.local_address, {}}),
      /*transmit_arp=*/
      [this](const Bytes& arp_packet, const std::optional<HwAddress>& dst) {
        Ax25HwAddr to = dst ? std::get<Ax25HwAddr>(*dst)
                            : Ax25HwAddr{Ax25Address::Broadcast(), {}};
        PacketBuf pb;
        {
          BufLayerScope scope(BufLayer::kDriver);
          pb = PacketBuf::FromView(arp_packet, PacketBuf::kDefaultHeadroom);
        }
        TransmitUi(kPidArp, std::move(pb), to);
      },
      /*send_resolved=*/
      [this](PacketBuf&& ip_datagram, const HwAddress& dst) {
        TransmitUi(kPidIp, std::move(ip_datagram), std::get<Ax25HwAddr>(dst));
      });
  serial_->set_receive_chunk_handler(
      [this](const std::uint8_t* data, std::size_t len) { OnSerialChunk(data, len); });
}

void PacketRadioInterface::Output(const Bytes& ip_datagram, IpV4Address next_hop) {
  BufLayerScope scope(BufLayer::kDriver);
  Output(PacketBuf::FromView(ip_datagram, PacketBuf::kDefaultHeadroom), next_hop);
}

void PacketRadioInterface::Output(PacketBuf&& ip_datagram, IpV4Address next_hop) {
  if (!up_) {
    ++stats_.oerrors;
    return;
  }
  ++stats_.opackets;
  stats_.obytes += ip_datagram.size();
  arp_->Send(std::move(ip_datagram), next_hop);
}

void PacketRadioInterface::AddArpEntry(IpV4Address ip, const Ax25Address& station,
                                       std::vector<Ax25Address> digipeaters) {
  arp_->AddStatic(ip, Ax25HwAddr{station, std::move(digipeaters)});
}

void PacketRadioInterface::TransmitUi(std::uint8_t pid, PacketBuf&& payload,
                                      const Ax25HwAddr& dst) {
  std::vector<Ax25Digipeater> digis;
  digis.reserve(dst.digipeaters.size());
  for (const auto& d : dst.digipeaters) {
    digis.push_back(Ax25Digipeater{d, false});
  }
  // The frame carries no owned info: the payload stays in the PacketBuf and
  // the address block + control + PID are prepended into its headroom.
  Ax25Frame frame = Ax25Frame::MakeUi(dst.station, config_.local_address, pid, {},
                                      std::move(digis));
  frame.EncodeTo(&payload);
  WriteKiss(payload.view());
}

void PacketRadioInterface::SendRawFrame(const Ax25Frame& frame) {
  WriteKiss(frame.Encode());
}

void PacketRadioInterface::WriteKiss(ByteView ax25_wire) {
  trace::IfScope tscope(serial_->name(), trace::Dir::kTx);
  if (serial_->backlog() > config_.max_serial_backlog) {
    ++dstats_.output_drops;
    ++stats_.odrops;
    if (auto* t = trace::Active()) {
      t->Record(trace::Layer::kDriver, trace::Kind::kDriverDrop,
                trace::Dir::kTx, serial_->name(), ax25_wire,
                "serial-backlog=" + std::to_string(serial_->backlog()));
    }
    return;
  }
  Bytes wire;
  KissEncodeInto(ax25_wire, &wire);
  serial_->Write(wire);
}

void PacketRadioInterface::OnSerialChunk(const std::uint8_t* data, std::size_t len) {
  // One receive interrupt per serial delivery event: per character in the
  // paper's §2.2 discipline, per silo-full under the DH-style batching.
  ++dstats_.interrupts;
  dstats_.chars_in += len;
  dstats_.interrupt_cpu_time += config_.per_interrupt_cost;
  trace::IfScope tscope(serial_->name(), trace::Dir::kRx);
  decoder_.Feed(data, len);
}

void PacketRadioInterface::OnKissFrame(std::uint8_t port, KissCommand command,
                                       ByteView payload) {
  (void)port;
  if (command != KissCommand::kData) {
    return;  // TNC-to-host command frames do not exist in plain KISS
  }
  ++dstats_.frames_in;
  // Parse over the decoder's buffer in place; nothing is copied until the
  // frame is known to be for us.
  auto decoded = Ax25Frame::DecodeView(payload);
  if (!decoded) {
    ++dstats_.decode_errors;
    ++stats_.ierrors;
    return;
  }
  Ax25Frame& frame = decoded->frame;
  // Frames still being source-routed through digipeaters are not for final
  // recipients yet.
  if (!frame.DigipeatingComplete()) {
    ++dstats_.frames_in_transit;
    return;
  }
  // The paper's address check: ours or broadcast. (The stock TNC passes every
  // frame up, so this runs once per heard packet — the §3 load problem.)
  bool for_us = frame.destination == config_.local_address ||
                frame.destination.IsBroadcast();
  if (!for_us) {
    for (const auto& alias : config_.broadcast_aliases) {
      if (frame.destination == alias) {
        for_us = true;
        break;
      }
    }
  }
  if (!for_us) {
    ++dstats_.frames_not_for_us;
    return;
  }
  if (frame.type == Ax25FrameType::kUi && frame.pid == kPidIp) {
    ++dstats_.ip_in;
    // The one receive-side copy: out of the decoder's frame buffer into an
    // owned PacketBuf that rides the input queue. Headroom is reserved so a
    // gateway can forward it with in-place prepends.
    PacketBuf pb;
    {
      BufLayerScope scope(BufLayer::kDriver);
      pb = PacketBuf::FromView(decoded->info, PacketBuf::kDefaultHeadroom);
    }
    DeliverToStack(std::move(pb));
    return;
  }
  if (frame.type == Ax25FrameType::kUi && frame.pid == kPidArp) {
    ++dstats_.arp_in;
    arp_->HandleArpPacket(decoded->info);
    return;
  }
  // Non-IP: place on the tty input queue for user-level AX.25 (§2.4). These
  // leave the datapath, so the frame takes ownership of its info here.
  ++dstats_.l3_in;
  {
    BufLayerScope scope(BufLayer::kDriver);
    if (!decoded->info.empty()) {
      BufNoteAlloc();
      BufNoteCopy(decoded->info.size());
    }
  }
  frame.info.assign(decoded->info.begin(), decoded->info.end());
  if (l3_tap_) {
    l3_tap_(frame, payload);
    return;
  }
  if (l3_queue_.size() >= config_.l3_queue_limit) {
    l3_queue_.pop_front();
    ++dstats_.l3_drops;
  }
  l3_queue_.push_back(std::move(frame));
}

std::optional<Ax25Frame> PacketRadioInterface::ReadL3Frame() {
  if (l3_queue_.empty()) {
    return std::nullopt;
  }
  Ax25Frame f = std::move(l3_queue_.front());
  l3_queue_.pop_front();
  return f;
}

}  // namespace upr
