#include "src/kiss/kiss.h"

namespace upr {

Bytes KissEncode(const KissFrame& frame) {
  Bytes out;
  out.reserve(frame.payload.size() + 4);
  out.push_back(kKissFend);
  std::uint8_t type;
  if (frame.command == KissCommand::kReturn) {
    type = 0xFF;
  } else {
    type = static_cast<std::uint8_t>((frame.port & 0x0F) << 4) |
           (static_cast<std::uint8_t>(frame.command) & 0x0F);
  }
  auto put = [&out](std::uint8_t b) {
    if (b == kKissFend) {
      out.push_back(kKissFesc);
      out.push_back(kKissTfend);
    } else if (b == kKissFesc) {
      out.push_back(kKissFesc);
      out.push_back(kKissTfesc);
    } else {
      out.push_back(b);
    }
  };
  put(type);
  for (std::uint8_t b : frame.payload) {
    put(b);
  }
  out.push_back(kKissFend);
  return out;
}

Bytes KissEncodeData(const Bytes& ax25_frame, std::uint8_t port) {
  KissFrame f;
  f.port = port;
  f.command = KissCommand::kData;
  f.payload = ax25_frame;
  return KissEncode(f);
}

void KissDecoder::Feed(const Bytes& bytes) { Feed(bytes.data(), bytes.size()); }

void KissDecoder::Feed(const std::uint8_t* data, std::size_t len) {
  std::size_t i = 0;
  while (i < len) {
    std::uint8_t b = data[i];
    if (state_ == State::kInFrame && b != kKissFend && b != kKissFesc) {
      // Bulk-append the run of ordinary bytes up to the next special byte.
      std::size_t j = i + 1;
      while (j < len && data[j] != kKissFend && data[j] != kKissFesc) {
        ++j;
      }
      if (current_.size() + (j - i) > max_frame_) {
        ++oversize_drops_;
        current_.clear();
        state_ = State::kDiscard;
      } else {
        current_.insert(current_.end(), data + i, data + j);
      }
      i = j;
      continue;
    }
    if (state_ == State::kDiscard && b != kKissFend) {
      // Skip straight to the resynchronizing FEND.
      std::size_t j = i + 1;
      while (j < len && data[j] != kKissFend) {
        ++j;
      }
      i = j;
      continue;
    }
    Feed(b);
    ++i;
  }
}

void KissDecoder::Reset() {
  current_.clear();
  state_ = State::kIdle;
}

void KissDecoder::EmitFrame() {
  if (current_.empty()) {
    // Back-to-back FENDs between frames: ignore.
    return;
  }
  std::uint8_t type = current_[0];
  KissFrame frame;
  if (type == 0xFF) {
    frame.port = 0x0F;
    frame.command = KissCommand::kReturn;
  } else {
    frame.port = static_cast<std::uint8_t>(type >> 4);
    frame.command = static_cast<KissCommand>(type & 0x0F);
  }
  frame.payload.assign(current_.begin() + 1, current_.end());
  ++frames_decoded_;
  current_.clear();
  handler_(frame);
}

void KissDecoder::Accept(std::uint8_t byte) {
  if (current_.size() >= max_frame_) {
    ++oversize_drops_;
    current_.clear();
    state_ = State::kDiscard;
    return;
  }
  current_.push_back(byte);
}

void KissDecoder::Feed(std::uint8_t byte) {
  switch (state_) {
    case State::kIdle:
      if (byte == kKissFend) {
        return;  // idle fill between frames
      }
      state_ = State::kInFrame;
      [[fallthrough]];
    case State::kInFrame:
      if (byte == kKissFend) {
        EmitFrame();
        state_ = State::kIdle;
      } else if (byte == kKissFesc) {
        state_ = State::kInEscape;
      } else {
        Accept(byte);
        if (state_ == State::kDiscard) {
          return;
        }
      }
      return;
    case State::kInEscape:
      if (byte == kKissTfend) {
        Accept(kKissFend);
      } else if (byte == kKissTfesc) {
        Accept(kKissFesc);
      } else {
        // Invalid escape: abort the frame, resync at next FEND.
        ++protocol_errors_;
        current_.clear();
        state_ = State::kDiscard;
        return;
      }
      if (state_ != State::kDiscard) {
        state_ = State::kInFrame;
      }
      return;
    case State::kDiscard:
      if (byte == kKissFend) {
        state_ = State::kIdle;
      }
      return;
  }
}

}  // namespace upr
