#include "src/kiss/kiss.h"

#include <algorithm>
#include <cstring>

#include "src/trace/trace.h"

namespace upr {

namespace {

inline bool NeedsEscape(std::uint8_t b) {
  return b == kKissFend || b == kKissFesc;
}

// First FEND or FESC in [p, end), or end. memchr beats a byte loop by an
// order of magnitude on the long ordinary-byte runs real frames are made of.
inline const std::uint8_t* FindSpecial(const std::uint8_t* p,
                                       const std::uint8_t* end) {
  std::size_t n = static_cast<std::size_t>(end - p);
  auto* fend = static_cast<const std::uint8_t*>(std::memchr(p, kKissFend, n));
  if (fend != nullptr) {
    end = fend;
    n = static_cast<std::size_t>(end - p);
  }
  auto* fesc = static_cast<const std::uint8_t*>(std::memchr(p, kKissFesc, n));
  return fesc != nullptr ? fesc : end;
}

}  // namespace

void KissEncodeInto(ByteView payload, Bytes* out, std::uint8_t port,
                    KissCommand command) {
  BufLayerScope scope(BufLayer::kKiss);
  std::uint8_t type;
  if (command == KissCommand::kReturn) {
    type = 0xFF;
  } else {
    type = static_cast<std::uint8_t>((port & 0x0F) << 4) |
           (static_cast<std::uint8_t>(command) & 0x0F);
  }
  // Resize once to the worst case (every byte escaped), write through a raw
  // pointer, trim to the actual size at the end. This is the hottest loop of
  // the gateway forward path: one memcpy per run of ordinary bytes,
  // byte-at-a-time work only at the escapes, no capacity check per byte and
  // no counting pre-pass. The old encoder reserved only payload + 4 and
  // reallocated mid-encode on escape-dense frames.
  std::size_t base = out->size();
  std::size_t worst = base + 4 + 2 * payload.size();
  // Only a resize past the current capacity touches the heap: a reused wire
  // buffer (cleared between frames, capacity retained) encodes alloc-free.
  bool grew = worst > out->capacity();
  out->resize(worst);
  if (grew) {
    BufNoteAlloc();
  }
  std::uint8_t* w = out->data() + base;
  *w++ = kKissFend;
  if (NeedsEscape(type)) {
    *w++ = kKissFesc;
    *w++ = type == kKissFend ? kKissTfend : kKissTfesc;
  } else {
    *w++ = type;
  }
  const std::uint8_t* p = payload.data();
  const std::uint8_t* end = p + payload.size();
  while (p < end) {
    const std::uint8_t* run = FindSpecial(p, end);
    std::memcpy(w, p, static_cast<std::size_t>(run - p));
    w += run - p;
    if (run < end) {
      *w++ = kKissFesc;
      *w++ = *run == kKissFend ? kKissTfend : kKissTfesc;
      ++run;
    }
    p = run;
  }
  *w++ = kKissFend;
  std::size_t encoded = static_cast<std::size_t>(w - (out->data() + base));
  out->resize(base + encoded);
  BufNoteCopy(encoded);
  if (auto* t = trace::Active()) {
    if (command == KissCommand::kData) {
      // The payload of a data frame is a complete AX.25 frame (no FCS) —
      // exactly one LINKTYPE_AX25_KISS packet.
      t->RecordFrame(trace::Layer::kKiss, trace::Kind::kKissFrameOut,
                     trace::Dir::kNone, {}, payload, {}, port);
    } else {
      t->Record(trace::Layer::kKiss, trace::Kind::kKissFrameOut,
                trace::CurrentDir(), {}, payload,
                "cmd=" + std::to_string(static_cast<int>(command)));
    }
  }
}

Bytes KissEncode(const KissFrame& frame) {
  Bytes out;
  KissEncodeInto(frame.payload, &out, frame.port, frame.command);
  return out;
}

Bytes KissEncodeData(const Bytes& ax25_frame, std::uint8_t port) {
  Bytes out;
  KissEncodeInto(ax25_frame, &out, port, KissCommand::kData);
  return out;
}

void KissDecoder::Feed(const Bytes& bytes) { Feed(bytes.data(), bytes.size()); }

void KissDecoder::Feed(const std::uint8_t* data, std::size_t len) {
  std::size_t i = 0;
  while (i < len) {
    std::uint8_t b = data[i];
    if (state_ == State::kInFrame && b != kKissFend && b != kKissFesc) {
      // Bulk-append the run of ordinary bytes up to the next special byte.
      std::size_t j = static_cast<std::size_t>(
          FindSpecial(data + i + 1, data + len) - data);
      if (current_.size() + (j - i) > max_frame_) {
        ++oversize_drops_;
        current_.clear();
        state_ = State::kDiscard;
      } else {
        current_.insert(current_.end(), data + i, data + j);
      }
      i = j;
      continue;
    }
    if (state_ == State::kDiscard && b != kKissFend) {
      // Skip straight to the resynchronizing FEND.
      auto* fend = static_cast<const std::uint8_t*>(
          std::memchr(data + i + 1, kKissFend, len - i - 1));
      i = fend != nullptr ? static_cast<std::size_t>(fend - data) : len;
      continue;
    }
    Feed(b);
    ++i;
  }
}

void KissDecoder::Reset() {
  current_.clear();
  state_ = State::kIdle;
}

void KissDecoder::EmitFrame() {
  if (current_.empty()) {
    // Back-to-back FENDs between frames: ignore.
    return;
  }
  std::uint8_t type = current_[0];
  std::uint8_t port;
  KissCommand command;
  if (type == 0xFF) {
    port = 0x0F;
    command = KissCommand::kReturn;
  } else {
    port = static_cast<std::uint8_t>(type >> 4);
    command = static_cast<KissCommand>(type & 0x0F);
  }
  ++frames_decoded_;
  if (auto* t = trace::Active()) {
    ByteView payload(current_.data() + 1, current_.size() - 1);
    if (command == KissCommand::kData) {
      t->RecordFrame(trace::Layer::kKiss, trace::Kind::kKissFrameIn,
                     trace::Dir::kNone, {}, payload, {}, port);
    } else {
      t->Record(trace::Layer::kKiss, trace::Kind::kKissFrameIn,
                trace::CurrentDir(), {}, payload,
                "cmd=" + std::to_string(static_cast<int>(command)));
    }
  }
  if (view_handler_) {
    // Zero-copy delivery: the view aliases current_ and is consumed within
    // the callback; clear only afterwards.
    view_handler_(port, command,
                  ByteView(current_.data() + 1, current_.size() - 1));
    current_.clear();
    return;
  }
  KissFrame frame;
  frame.port = port;
  frame.command = command;
  {
    BufLayerScope scope(BufLayer::kKiss);
    BufNoteAlloc();
    BufNoteCopy(current_.size() - 1);
  }
  frame.payload.assign(current_.begin() + 1, current_.end());
  current_.clear();
  handler_(frame);
}

void KissDecoder::Accept(std::uint8_t byte) {
  if (current_.size() >= max_frame_) {
    ++oversize_drops_;
    current_.clear();
    state_ = State::kDiscard;
    return;
  }
  current_.push_back(byte);
}

void KissDecoder::Feed(std::uint8_t byte) {
  switch (state_) {
    case State::kIdle:
      if (byte == kKissFend) {
        return;  // idle fill between frames
      }
      state_ = State::kInFrame;
      [[fallthrough]];
    case State::kInFrame:
      if (byte == kKissFend) {
        EmitFrame();
        state_ = State::kIdle;
      } else if (byte == kKissFesc) {
        state_ = State::kInEscape;
      } else {
        Accept(byte);
        if (state_ == State::kDiscard) {
          return;
        }
      }
      return;
    case State::kInEscape:
      if (byte == kKissTfend) {
        Accept(kKissFend);
      } else if (byte == kKissTfesc) {
        Accept(kKissFesc);
      } else if (byte == kKissFend) {
        // Frame ended mid-escape (dangling FESC). Drop the frame per the
        // Chepponis/Karn spec, but the FEND is still a frame delimiter: go
        // straight back to idle. Entering kDiscard here would swallow this
        // FEND and throw away the entire next (valid) frame with it.
        ++protocol_errors_;
        ++bad_escapes_;
        current_.clear();
        state_ = State::kIdle;
        return;
      } else {
        // Invalid escape (FESC followed by neither TFEND nor TFESC): abort
        // the frame rather than emitting garbage, resync at next FEND.
        ++protocol_errors_;
        ++bad_escapes_;
        current_.clear();
        state_ = State::kDiscard;
        return;
      }
      if (state_ != State::kDiscard) {
        state_ = State::kInFrame;
      }
      return;
    case State::kDiscard:
      if (byte == kKissFend) {
        state_ = State::kIdle;
      }
      return;
  }
}

}  // namespace upr
