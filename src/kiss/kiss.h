// KISS host<->TNC framing protocol (Chepponis & Karn, 6th ARRL CNC, 1987).
//
// The host sends the TNC asynchronous frames delimited by FEND bytes, with
// FEND/FESC occurrences inside the payload transposed. The first byte of each
// frame carries the port number (high nibble) and command (low nibble);
// command 0 is a data frame containing a raw AX.25 frame *without* the FCS
// (the TNC computes/verifies the FCS itself).
//
// `KissEncoder` produces the serial byte stream for a frame. `KissDecoder` is
// a streaming decoder designed to be fed one byte at a time — exactly how the
// paper's per-character tty interrupt handler consumes it ("escaped frame end
// characters ... are decoded [on the fly]", §2.2).
#ifndef SRC_KISS_KISS_H_
#define SRC_KISS_KISS_H_

#include <cstdint>
#include <functional>
#include <optional>

#include "src/util/byte_buffer.h"
#include "src/util/packet_buf.h"

namespace upr {

// Special characters.
inline constexpr std::uint8_t kKissFend = 0xC0;
inline constexpr std::uint8_t kKissFesc = 0xDB;
inline constexpr std::uint8_t kKissTfend = 0xDC;
inline constexpr std::uint8_t kKissTfesc = 0xDD;

// Command nibble values.
enum class KissCommand : std::uint8_t {
  kData = 0x0,
  kTxDelay = 0x1,
  kPersistence = 0x2,
  kSlotTime = 0x3,
  kTxTail = 0x4,
  kFullDuplex = 0x5,
  kSetHardware = 0x6,
  kReturn = 0xF,  // exit KISS mode (type byte 0xFF on port 15)
};

struct KissFrame {
  std::uint8_t port = 0;
  KissCommand command = KissCommand::kData;
  Bytes payload;
};

// Escape-writes one KISS frame onto the end of `*out` (leading and trailing
// FENDs included). This is the datapath's single wire-write: the payload view
// typically points straight into the PacketBuf that was carried down the
// stack. The output is reserved at its exact encoded size up front (two bytes
// per FEND/FESC occurrence), so even escape-dense frames never reallocate
// mid-encode.
void KissEncodeInto(ByteView payload, Bytes* out, std::uint8_t port = 0,
                    KissCommand command = KissCommand::kData);

// Encodes one KISS frame into the on-the-wire byte stream, including leading
// and trailing FENDs.
Bytes KissEncode(const KissFrame& frame);

// Convenience: encodes an AX.25 data frame for `port`.
Bytes KissEncodeData(const Bytes& ax25_frame, std::uint8_t port = 0);

// Streaming decoder. Feed bytes as they arrive; complete frames are delivered
// through the callback. Tolerates idle FENDs between frames. A FESC followed
// by anything other than TFEND/TFESC aborts the current frame (counted in
// protocol_errors and bad_escapes) per the Chepponis/Karn spec: a FESC-FEND
// drops the frame and the FEND still delimits (the next frame decodes
// normally); any other invalid escape discards up to the next FEND. Frames
// longer than `max_frame` are dropped (counted in oversize_drops).
class KissDecoder {
 public:
  using FrameHandler = std::function<void(const KissFrame&)>;
  // Zero-copy delivery: the payload view aliases the decoder's internal
  // buffer and is valid only for the duration of the callback.
  using FrameViewHandler =
      std::function<void(std::uint8_t port, KissCommand command, ByteView payload)>;

  explicit KissDecoder(FrameHandler handler, std::size_t max_frame = 4096)
      : handler_(std::move(handler)), max_frame_(max_frame) {}
  explicit KissDecoder(FrameViewHandler handler, std::size_t max_frame = 4096)
      : view_handler_(std::move(handler)), max_frame_(max_frame) {}

  void Feed(std::uint8_t byte);
  // Chunked feed, for silo-mode serial delivery: behaves exactly as feeding
  // each byte in turn (same frames, same error counters), but ordinary
  // payload runs are appended in bulk instead of byte-by-byte.
  void Feed(const std::uint8_t* data, std::size_t len);
  void Feed(const Bytes& bytes);

  // Drops any partial frame and resynchronizes to the next FEND.
  void Reset();

  std::uint64_t frames_decoded() const { return frames_decoded_; }
  std::uint64_t protocol_errors() const { return protocol_errors_; }
  // Invalid escapes specifically (FESC + neither TFEND nor TFESC, including
  // frames that end mid-escape). Subset of protocol_errors.
  std::uint64_t bad_escapes() const { return bad_escapes_; }
  std::uint64_t oversize_drops() const { return oversize_drops_; }

 private:
  enum class State { kIdle, kInFrame, kInEscape, kDiscard };

  void EmitFrame();
  void Accept(std::uint8_t byte);

  FrameHandler handler_;
  FrameViewHandler view_handler_;
  std::size_t max_frame_;
  State state_ = State::kIdle;
  Bytes current_;
  std::uint64_t frames_decoded_ = 0;
  std::uint64_t protocol_errors_ = 0;
  std::uint64_t bad_escapes_ = 0;
  std::uint64_t oversize_drops_ = 0;
};

}  // namespace upr

#endif  // SRC_KISS_KISS_H_
