#include "src/util/parse.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>

namespace upr {

std::optional<std::uint64_t> ParseU64(const char* s, std::uint64_t min,
                                      std::uint64_t max) {
  if (s == nullptr || *s == '\0' || *s == '-' || *s == '+') {
    return std::nullopt;
  }
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0' || errno == ERANGE) {
    return std::nullopt;
  }
  if (v < min || v > max) {
    return std::nullopt;
  }
  return static_cast<std::uint64_t>(v);
}

std::optional<double> ParseDouble(const char* s, double min, double max) {
  if (s == nullptr || *s == '\0') {
    return std::nullopt;
  }
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(s, &end);
  if (end == s || *end != '\0' || errno == ERANGE || !std::isfinite(v)) {
    return std::nullopt;
  }
  if (v < min || v > max) {
    return std::nullopt;
  }
  return v;
}

}  // namespace upr
