#include "src/util/panic.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <utility>
#include <vector>

namespace upr {

namespace {

std::vector<std::pair<int, std::function<void()>>>& Hooks() {
  static std::vector<std::pair<int, std::function<void()>>> hooks;
  return hooks;
}

int g_next_token = 1;
bool g_panicking = false;

}  // namespace

int AddPanicHook(std::function<void()> hook) {
  int token = g_next_token++;
  Hooks().emplace_back(token, std::move(hook));
  return token;
}

void RemovePanicHook(int token) {
  auto& hooks = Hooks();
  for (auto it = hooks.begin(); it != hooks.end(); ++it) {
    if (it->first == token) {
      hooks.erase(it);
      return;
    }
  }
}

void Panic(const char* file, int line, const char* fmt, ...) {
  std::fprintf(stderr, "panic at %s:%d: ", file, line);
  va_list ap;
  va_start(ap, fmt);
  std::vfprintf(stderr, fmt, ap);
  va_end(ap);
  std::fputc('\n', stderr);
  if (!g_panicking) {
    g_panicking = true;  // a hook that panics must not re-enter the hooks
    auto& hooks = Hooks();
    for (auto it = hooks.rbegin(); it != hooks.rend(); ++it) {
      it->second();
    }
  }
  std::fflush(stderr);
  std::abort();
}

}  // namespace upr
