#include "src/util/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace upr {
namespace json {

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  std::optional<Value> Run() {
    SkipWs();
    Value v;
    if (!ParseValue(&v)) {
      return std::nullopt;
    }
    SkipWs();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after document");
    }
    return v;
  }

 private:
  std::optional<Value> Fail(const char* msg) {
    if (error_ != nullptr) {
      *error_ = std::string(msg) + " at byte " + std::to_string(pos_);
    }
    failed_ = true;
    return std::nullopt;
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  bool ParseValue(Value* out) {
    if (depth_ > kMaxDepth) {
      Fail("nesting too deep");
      return false;
    }
    if (pos_ >= text_.size()) {
      Fail("unexpected end of document");
      return false;
    }
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->kind = Value::Kind::kString;
        return ParseString(&out->str);
      case 't':
        if (!Literal("true")) {
          Fail("bad literal");
          return false;
        }
        out->kind = Value::Kind::kBool;
        out->boolean = true;
        return true;
      case 'f':
        if (!Literal("false")) {
          Fail("bad literal");
          return false;
        }
        out->kind = Value::Kind::kBool;
        out->boolean = false;
        return true;
      case 'n':
        if (!Literal("null")) {
          Fail("bad literal");
          return false;
        }
        out->kind = Value::Kind::kNull;
        return true;
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(Value* out) {
    ++depth_;
    ++pos_;  // '{'
    out->kind = Value::Kind::kObject;
    SkipWs();
    if (Eat('}')) {
      --depth_;
      return true;
    }
    for (;;) {
      SkipWs();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"' || !ParseString(&key)) {
        Fail("expected object key");
        return false;
      }
      SkipWs();
      if (!Eat(':')) {
        Fail("expected ':' after key");
        return false;
      }
      SkipWs();
      Value v;
      if (!ParseValue(&v)) {
        return false;
      }
      out->members.emplace_back(std::move(key), std::move(v));
      SkipWs();
      if (Eat(',')) {
        continue;
      }
      if (Eat('}')) {
        --depth_;
        return true;
      }
      Fail("expected ',' or '}' in object");
      return false;
    }
  }

  bool ParseArray(Value* out) {
    ++depth_;
    ++pos_;  // '['
    out->kind = Value::Kind::kArray;
    SkipWs();
    if (Eat(']')) {
      --depth_;
      return true;
    }
    for (;;) {
      SkipWs();
      Value v;
      if (!ParseValue(&v)) {
        return false;
      }
      out->items.push_back(std::move(v));
      SkipWs();
      if (Eat(',')) {
        continue;
      }
      if (Eat(']')) {
        --depth_;
        return true;
      }
      Fail("expected ',' or ']' in array");
      return false;
    }
  }

  bool ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') {
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        Fail("raw control character in string");
        return false;
      }
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        break;
      }
      char e = text_[pos_++];
      switch (e) {
        case '"':
          *out += '"';
          break;
        case '\\':
          *out += '\\';
          break;
        case '/':
          *out += '/';
          break;
        case 'b':
          *out += '\b';
          break;
        case 'f':
          *out += '\f';
          break;
        case 'n':
          *out += '\n';
          break;
        case 'r':
          *out += '\r';
          break;
        case 't':
          *out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            Fail("truncated \\u escape");
            return false;
          }
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') {
              cp |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              cp |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              cp |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              Fail("bad hex digit in \\u escape");
              return false;
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not needed
          // for bench documents; lone surrogates encode as-is).
          if (cp < 0x80) {
            *out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            *out += static_cast<char>(0xC0 | (cp >> 6));
            *out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            *out += static_cast<char>(0xE0 | (cp >> 12));
            *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            *out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default:
          Fail("bad escape character");
          return false;
      }
    }
    Fail("unterminated string");
    return false;
  }

  bool ParseNumber(Value* out) {
    std::size_t start = pos_;
    if (Eat('-')) {
    }
    if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      Fail("expected a value");
      return false;
    }
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (Eat('.')) {
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        Fail("expected digits after decimal point");
        return false;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        Fail("expected digits in exponent");
        return false;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    out->kind = Value::Kind::kNumber;
    out->raw = std::string(text_.substr(start, pos_ - start));
    out->number = std::strtod(out->raw.c_str(), nullptr);
    return true;
  }

  static constexpr int kMaxDepth = 64;

  std::string_view text_;
  std::string* error_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  bool failed_ = false;
};

}  // namespace

bool Value::is_integer_token() const {
  if (kind != Kind::kNumber || raw.empty()) {
    return false;
  }
  for (char c : raw) {
    if (c == '.' || c == 'e' || c == 'E') {
      return false;
    }
  }
  return true;
}

const Value* Value::Find(std::string_view key) const {
  if (kind != Kind::kObject) {
    return nullptr;
  }
  for (const auto& [k, v] : members) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

std::optional<Value> Parse(std::string_view text, std::string* error) {
  return Parser(text, error).Run();
}

}  // namespace json
}  // namespace upr
