#include "src/util/stats.h"

#include <algorithm>
#include <cmath>

namespace upr {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void Samples::Add(double x) {
  values_.push_back(x);
  sorted_ = false;
}

double Samples::Percentile(double p) const {
  if (values_.empty()) {
    return 0.0;
  }
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
  double rank = p / 100.0 * static_cast<double>(values_.size() - 1);
  std::size_t lo = static_cast<std::size_t>(rank);
  std::size_t hi = std::min(lo + 1, values_.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return values_[lo] * (1.0 - frac) + values_[hi] * frac;
}

double Samples::Mean() const {
  if (values_.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double v : values_) {
    sum += v;
  }
  return sum / static_cast<double>(values_.size());
}

double Samples::Min() const { return values_.empty() ? 0.0 : Percentile(0); }
double Samples::Max() const { return values_.empty() ? 0.0 : Percentile(100); }

std::string TableRow(const std::vector<std::string>& cells, int width) {
  std::string out;
  for (const auto& c : cells) {
    std::string cell = c;
    if (static_cast<int>(cell.size()) < width) {
      cell.append(static_cast<std::size_t>(width) - cell.size(), ' ');
    }
    out += cell;
    out += ' ';
  }
  return out;
}

}  // namespace upr
