#include "src/util/logging.h"

#include <cstdarg>

namespace upr {

namespace {
LogLevel g_level = LogLevel::kWarn;
}  // namespace

LogLevel GetLogLevel() { return g_level; }

void SetLogLevel(LogLevel level) { g_level = level; }

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

void LogMessage(LogLevel level, const char* tag, const char* fmt, ...) {
  std::fprintf(stderr, "[%s] %-8s ", LogLevelName(level), tag);
  va_list ap;
  va_start(ap, fmt);
  std::vfprintf(stderr, fmt, ap);
  va_end(ap);
  std::fputc('\n', stderr);
}

}  // namespace upr
