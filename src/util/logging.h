// Minimal leveled logger. Protocol modules log through UPR_LOG so tests can
// raise the threshold to silence output and examples can lower it to trace
// packet flow. Not thread-safe by design: the whole system is single-threaded
// under the discrete-event simulator.
#ifndef SRC_UTIL_LOGGING_H_
#define SRC_UTIL_LOGGING_H_

#include <cstdio>
#include <string>

namespace upr {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

// Global threshold; messages below it are dropped. Defaults to kWarn so the
// test suite stays quiet.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

const char* LogLevelName(LogLevel level);

// printf-style sink. `tag` identifies the module ("ax25", "driver", ...).
void LogMessage(LogLevel level, const char* tag, const char* fmt, ...)
    __attribute__((format(printf, 3, 4)));

}  // namespace upr

#define UPR_LOG(level, tag, ...)                      \
  do {                                                \
    if ((level) >= ::upr::GetLogLevel()) {            \
      ::upr::LogMessage((level), (tag), __VA_ARGS__); \
    }                                                 \
  } while (0)

#define UPR_TRACE(tag, ...) UPR_LOG(::upr::LogLevel::kTrace, tag, __VA_ARGS__)
#define UPR_DEBUG(tag, ...) UPR_LOG(::upr::LogLevel::kDebug, tag, __VA_ARGS__)
#define UPR_INFO(tag, ...) UPR_LOG(::upr::LogLevel::kInfo, tag, __VA_ARGS__)
#define UPR_WARN(tag, ...) UPR_LOG(::upr::LogLevel::kWarn, tag, __VA_ARGS__)
#define UPR_ERROR(tag, ...) UPR_LOG(::upr::LogLevel::kError, tag, __VA_ARGS__)

#endif  // SRC_UTIL_LOGGING_H_
