// Last-resort invariant-failure handling shared by every layer.
//
// A failed invariant deep in a library path used to take the process down
// with a bare abort, losing the flight recorder's ring — the one artifact
// that says what the datapath was doing when the state went bad. Panic()
// prints the failure location, runs every registered hook (the tracer
// registers one that dumps the active trace ring to stderr), then aborts.
// Hooks run newest-first, so the most recently installed context dumps
// first.
//
// UPR_INVARIANT deliberately survives NDEBUG: these guard datapath state
// whose corruption would make every later trace entry a lie.
#ifndef SRC_UTIL_PANIC_H_
#define SRC_UTIL_PANIC_H_

#include <functional>

namespace upr {

// Registers `hook` to run when Panic() fires; returns a token for
// RemovePanicHook. Hooks must tolerate being called mid-failure: stderr
// output only, no assumptions about the state that just failed.
int AddPanicHook(std::function<void()> hook);
void RemovePanicHook(int token);

// Prints "panic at file:line: message", runs the hooks, aborts. A panic
// raised from inside a hook skips the remaining hooks and aborts directly.
[[noreturn]] void Panic(const char* file, int line, const char* fmt, ...)
    __attribute__((format(printf, 3, 4)));

}  // namespace upr

// Unconditional failure with a formatted reason.
#define UPR_PANIC(...) ::upr::Panic(__FILE__, __LINE__, __VA_ARGS__)

// Invariant check; the condition is always evaluated (never compiled out).
#define UPR_INVARIANT(cond, ...)                    \
  do {                                              \
    if (!(cond)) {                                  \
      ::upr::Panic(__FILE__, __LINE__, __VA_ARGS__); \
    }                                               \
  } while (0)

#endif  // SRC_UTIL_PANIC_H_
