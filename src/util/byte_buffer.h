// Byte buffer utilities shared by every protocol layer.
//
// `Bytes` is the plain owned payload type. `ByteView` is the non-owning read
// view decoders parse over (a Bytes converts implicitly). `ByteReader`/
// `ByteWriter` provide bounds-checked big-endian primitive access for
// protocol codecs. The mbuf-style packet buffer lives in
// src/util/packet_buf.h.
#ifndef SRC_UTIL_BYTE_BUFFER_H_
#define SRC_UTIL_BYTE_BUFFER_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace upr {

using Bytes = std::vector<std::uint8_t>;
// Non-owning view of packet bytes; valid only while the owning buffer lives.
using ByteView = std::span<const std::uint8_t>;

// Builds a Bytes from a string literal / string view (no trailing NUL).
Bytes BytesFromString(std::string_view s);

// Renders the buffer as "xx xx xx ..." for logs and test failure messages.
std::string HexDump(const std::uint8_t* data, std::size_t len);
std::string HexDump(const Bytes& b);

// Bounds-checked sequential reader over a byte span. All multi-byte reads are
// big-endian (network order). Reads past the end set the error flag and
// return zeros; callers check `ok()` once at the end of a parse.
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t len) : data_(data), len_(len) {}
  explicit ByteReader(const Bytes& b) : ByteReader(b.data(), b.size()) {}

  bool ok() const { return ok_; }
  std::size_t remaining() const { return len_ - pos_; }
  std::size_t position() const { return pos_; }

  std::uint8_t ReadU8();
  std::uint16_t ReadU16();
  std::uint32_t ReadU32();
  // Copies `n` bytes out; returns an empty vector and sets the error flag if
  // fewer than `n` remain.
  Bytes ReadBytes(std::size_t n);
  // Returns a view of the rest of the buffer and consumes it.
  Bytes ReadRest();
  void Skip(std::size_t n);

 private:
  bool Need(std::size_t n);

  const std::uint8_t* data_;
  std::size_t len_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// Appends big-endian primitives to a Bytes.
class ByteWriter {
 public:
  explicit ByteWriter(Bytes* out) : out_(out) {}

  void WriteU8(std::uint8_t v);
  void WriteU16(std::uint16_t v);
  void WriteU32(std::uint32_t v);
  void WriteBytes(const std::uint8_t* data, std::size_t len);
  void WriteBytes(const Bytes& b);

 private:
  Bytes* out_;
};

}  // namespace upr

#endif  // SRC_UTIL_BYTE_BUFFER_H_
