// Byte buffer utilities shared by every protocol layer.
//
// `Bytes` is the plain payload type. `ByteReader`/`ByteWriter` provide
// bounds-checked big-endian primitive access for protocol codecs. `Packet` is
// an mbuf-like buffer with cheap header prepend/strip, used for packets moving
// between layers (each layer prepends its header on output and strips it on
// input without copying the payload).
#ifndef SRC_UTIL_BYTE_BUFFER_H_
#define SRC_UTIL_BYTE_BUFFER_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace upr {

using Bytes = std::vector<std::uint8_t>;

// Builds a Bytes from a string literal / string view (no trailing NUL).
Bytes BytesFromString(std::string_view s);

// Renders the buffer as "xx xx xx ..." for logs and test failure messages.
std::string HexDump(const std::uint8_t* data, std::size_t len);
std::string HexDump(const Bytes& b);

// Bounds-checked sequential reader over a byte span. All multi-byte reads are
// big-endian (network order). Reads past the end set the error flag and
// return zeros; callers check `ok()` once at the end of a parse.
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t len) : data_(data), len_(len) {}
  explicit ByteReader(const Bytes& b) : ByteReader(b.data(), b.size()) {}

  bool ok() const { return ok_; }
  std::size_t remaining() const { return len_ - pos_; }
  std::size_t position() const { return pos_; }

  std::uint8_t ReadU8();
  std::uint16_t ReadU16();
  std::uint32_t ReadU32();
  // Copies `n` bytes out; returns an empty vector and sets the error flag if
  // fewer than `n` remain.
  Bytes ReadBytes(std::size_t n);
  // Returns a view of the rest of the buffer and consumes it.
  Bytes ReadRest();
  void Skip(std::size_t n);

 private:
  bool Need(std::size_t n);

  const std::uint8_t* data_;
  std::size_t len_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// Appends big-endian primitives to a Bytes.
class ByteWriter {
 public:
  explicit ByteWriter(Bytes* out) : out_(out) {}

  void WriteU8(std::uint8_t v);
  void WriteU16(std::uint16_t v);
  void WriteU32(std::uint32_t v);
  void WriteBytes(const std::uint8_t* data, std::size_t len);
  void WriteBytes(const Bytes& b);

 private:
  Bytes* out_;
};

// Packet buffer with reserved headroom so lower layers can prepend headers
// without reallocating. Interior storage: [ headroom | data ].
class Packet {
 public:
  Packet() : Packet(kDefaultHeadroom) {}
  explicit Packet(std::size_t headroom) : start_(headroom), buf_(headroom) {}

  // Builds a packet whose payload is `payload`, with default headroom.
  static Packet FromBytes(const Bytes& payload);

  std::size_t size() const { return buf_.size() - start_; }
  bool empty() const { return size() == 0; }
  const std::uint8_t* data() const { return buf_.data() + start_; }
  std::uint8_t* data() { return buf_.data() + start_; }

  // Appends payload bytes at the tail.
  void Append(const Bytes& b);
  void Append(const std::uint8_t* data, std::size_t len);

  // Prepends `b` in front of the current data (grows headroom if exhausted).
  void Prepend(const Bytes& b);

  // Removes `n` bytes from the front; n must be <= size().
  void StripFront(std::size_t n);
  // Removes `n` bytes from the tail; n must be <= size().
  void StripBack(std::size_t n);

  Bytes ToBytes() const { return Bytes(data(), data() + size()); }

 private:
  static constexpr std::size_t kDefaultHeadroom = 128;

  std::size_t start_;  // offset of first valid byte in buf_
  Bytes buf_;
};

}  // namespace upr

#endif  // SRC_UTIL_BYTE_BUFFER_H_
