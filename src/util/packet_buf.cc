#include "src/util/packet_buf.h"

#include <algorithm>

namespace upr {

namespace detail {
BufLayerStats g_buf_stats[kBufLayerCount];
BufLayer g_current_layer = BufLayer::kOther;
}  // namespace detail

const char* BufLayerName(BufLayer layer) {
  switch (layer) {
    case BufLayer::kTransport:
      return "transport";
    case BufLayer::kIp:
      return "ip";
    case BufLayer::kAx25:
      return "ax25";
    case BufLayer::kKiss:
      return "kiss";
    case BufLayer::kEther:
      return "ether";
    case BufLayer::kDriver:
      return "driver";
    case BufLayer::kOther:
      return "other";
  }
  return "?";
}

BufLayerStats& BufStatsFor(BufLayer layer) {
  return detail::g_buf_stats[static_cast<int>(layer)];
}

BufLayerStats BufStatsTotal() {
  BufLayerStats total;
  for (const BufLayerStats& s : detail::g_buf_stats) {
    total.bytes_copied += s.bytes_copied;
    total.allocs += s.allocs;
    total.prepend_reallocs += s.prepend_reallocs;
  }
  return total;
}

void ResetBufStats() {
  for (BufLayerStats& s : detail::g_buf_stats) {
    s = BufLayerStats{};
  }
}

PacketBuf::PacketBuf(std::size_t headroom, std::size_t tailroom)
    : buf_(headroom + tailroom), start_(headroom), end_(headroom) {
  if (headroom + tailroom > 0) {
    BufNoteAlloc();
  }
}

PacketBuf PacketBuf::FromView(ByteView payload, std::size_t headroom,
                              std::size_t tailroom) {
  PacketBuf p(headroom, payload.size() + tailroom);
  p.Append(payload);
  return p;
}

PacketBuf PacketBuf::Adopt(Bytes&& owned) {
  PacketBuf p(0, 0);
  p.buf_ = std::move(owned);
  p.start_ = 0;
  p.end_ = p.buf_.size();
  return p;
}

void PacketBuf::Grow(std::size_t front, std::size_t back) {
  // Reallocate with the requested extra room plus a default-headroom cushion
  // on the side that ran out, and move the data once (counted).
  std::size_t new_front = start_ + front + (front > 0 ? kDefaultHeadroom : 0);
  std::size_t data_len = size();
  std::size_t new_back = (buf_.size() - end_) + back + (back > 0 ? kDefaultHeadroom : 0);
  Bytes grown(new_front + data_len + new_back);
  std::memcpy(grown.data() + new_front, data(), data_len);
  buf_ = std::move(grown);
  start_ = new_front;
  end_ = new_front + data_len;
  BufNoteAlloc();
  BufNoteCopy(data_len);
}

std::uint8_t* PacketBuf::Prepend(std::size_t n) {
  if (n > start_) {
    ++detail::CurrentBufStats().prepend_reallocs;
    Grow(n - start_, 0);
  }
  start_ -= n;
  return buf_.data() + start_;
}

void PacketBuf::Prepend(ByteView b) {
  std::uint8_t* dst = Prepend(b.size());
  if (!b.empty()) {
    std::memcpy(dst, b.data(), b.size());
    BufNoteCopy(b.size());
  }
}

std::uint8_t* PacketBuf::Append(std::size_t n) {
  if (end_ + n > buf_.size()) {
    Grow(0, end_ + n - buf_.size());
  }
  std::uint8_t* dst = buf_.data() + end_;
  end_ += n;
  return dst;
}

void PacketBuf::Append(ByteView b) {
  std::uint8_t* dst = Append(b.size());
  if (!b.empty()) {
    std::memcpy(dst, b.data(), b.size());
    BufNoteCopy(b.size());
  }
}

void PacketBuf::TrimFront(std::size_t n) { start_ += std::min(n, size()); }

void PacketBuf::TrimBack(std::size_t n) { end_ -= std::min(n, size()); }

Bytes PacketBuf::ToBytes() const {
  if (!empty()) {
    BufNoteAlloc();
    BufNoteCopy(size());
  }
  return Bytes(data(), data() + size());
}

Bytes PacketBuf::Release() {
  Bytes out;
  if (start_ == 0 && end_ == buf_.size()) {
    out = std::move(buf_);
  } else {
    out = ToBytes();
  }
  buf_.clear();
  start_ = end_ = 0;
  return out;
}

}  // namespace upr
