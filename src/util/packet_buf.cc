#include "src/util/packet_buf.h"

#include <algorithm>

namespace upr {

const char* BufLayerName(BufLayer layer) {
  switch (layer) {
    case BufLayer::kTransport:
      return "transport";
    case BufLayer::kIp:
      return "ip";
    case BufLayer::kAx25:
      return "ax25";
    case BufLayer::kKiss:
      return "kiss";
    case BufLayer::kEther:
      return "ether";
    case BufLayer::kDriver:
      return "driver";
    case BufLayer::kOther:
      return "other";
  }
  return "?";
}

BufLayerStats& BufStatsFor(BufLayer layer) {
  return detail::BufStatsArray()[static_cast<int>(layer)];
}

BufLayerStats BufStatsTotal() {
  BufLayerStats total;
  for (int i = 0; i < kBufLayerCount; ++i) {
    const BufLayerStats& s = detail::BufStatsArray()[i];
    total.bytes_copied += s.bytes_copied;
    total.allocs += s.allocs;
    total.prepend_reallocs += s.prepend_reallocs;
  }
  return total;
}

void ResetBufStats() {
  for (int i = 0; i < kBufLayerCount; ++i) {
    detail::BufStatsArray()[i] = BufLayerStats{};
  }
}

namespace {

// The slab free list. Blocks are vectors whose capacity is exactly
// kBufSlabSize (they were first allocated by TakeStorage below), so a
// recycled block's resize() never reallocates. thread_local so each parallel
// shard worker recycles its own slabs lock-free; buffers never migrate
// between threads mid-flight (cross-shard handoff copies payload bytes).
thread_local std::vector<Bytes> g_buf_pool;
thread_local BufPoolStats g_buf_pool_stats;

// Storage for a PacketBuf needing `n` bytes: a parked slab when one fits,
// a fresh (counted) allocation otherwise. The returned vector has size n,
// zero-filled, matching what Bytes(n) would have produced.
Bytes TakeStorage(std::size_t n) {
  if (n <= kBufSlabSize) {
    if (!g_buf_pool.empty()) {
      Bytes b = std::move(g_buf_pool.back());
      g_buf_pool.pop_back();
      ++g_buf_pool_stats.hits;
      b.clear();
      b.resize(n);  // within capacity: memset only, no heap traffic
      return b;
    }
    ++g_buf_pool_stats.misses;
    BufNoteAlloc();
    Bytes b;
    b.reserve(kBufSlabSize);  // full slab so the block is poolable later
    b.resize(n);
    return b;
  }
  ++g_buf_pool_stats.oversize;
  BufNoteAlloc();
  return Bytes(n);
}

// Retires a PacketBuf's storage: slab-capacity blocks park on the free list
// (up to the depth cap); everything else goes back to the heap.
void PutStorage(Bytes&& b) {
  if (b.capacity() >= kBufSlabSize && b.capacity() <= 2 * kBufSlabSize &&
      g_buf_pool.size() < kBufPoolMaxDepth) {
    ++g_buf_pool_stats.recycled;
    g_buf_pool.push_back(std::move(b));
    return;
  }
  if (b.capacity() > 0) {
    ++g_buf_pool_stats.dropped;
  }
}

}  // namespace

BufPoolStats BufPoolSnapshot() { return g_buf_pool_stats; }

std::size_t BufPoolDepth() { return g_buf_pool.size(); }

void DrainBufPool() {
  g_buf_pool.clear();
  g_buf_pool.shrink_to_fit();
  g_buf_pool_stats = BufPoolStats{};
}

PacketBuf::PacketBuf(std::size_t headroom, std::size_t tailroom)
    : start_(headroom), end_(headroom) {
  if (headroom + tailroom > 0) {
    buf_ = TakeStorage(headroom + tailroom);
  }
}

PacketBuf::~PacketBuf() { PutStorage(std::move(buf_)); }

PacketBuf& PacketBuf::operator=(PacketBuf&& o) noexcept {
  if (this != &o) {
    PutStorage(std::move(buf_));
    buf_ = std::move(o.buf_);
    start_ = o.start_;
    end_ = o.end_;
    o.buf_.clear();
    o.start_ = o.end_ = 0;
  }
  return *this;
}

PacketBuf PacketBuf::FromView(ByteView payload, std::size_t headroom,
                              std::size_t tailroom) {
  PacketBuf p(headroom, payload.size() + tailroom);
  p.Append(payload);
  return p;
}

PacketBuf PacketBuf::Adopt(Bytes&& owned) {
  PacketBuf p(0, 0);
  p.buf_ = std::move(owned);
  p.start_ = 0;
  p.end_ = p.buf_.size();
  return p;
}

void PacketBuf::Grow(std::size_t front, std::size_t back) {
  // Reallocate with the requested extra room plus a default-headroom cushion
  // on the side that ran out, and move the data once (counted).
  std::size_t new_front = start_ + front + (front > 0 ? kDefaultHeadroom : 0);
  std::size_t data_len = size();
  std::size_t new_back = (buf_.size() - end_) + back + (back > 0 ? kDefaultHeadroom : 0);
  Bytes grown = TakeStorage(new_front + data_len + new_back);
  if (data_len > 0) {  // empty buffer may have null data(); memcpy forbids it
    std::memcpy(grown.data() + new_front, data(), data_len);
  }
  PutStorage(std::move(buf_));
  buf_ = std::move(grown);
  start_ = new_front;
  end_ = new_front + data_len;
  BufNoteCopy(data_len);
}

std::uint8_t* PacketBuf::Prepend(std::size_t n) {
  if (n > start_) {
    ++detail::CurrentBufStats().prepend_reallocs;
    Grow(n - start_, 0);
  }
  start_ -= n;
  return buf_.data() + start_;
}

void PacketBuf::Prepend(ByteView b) {
  std::uint8_t* dst = Prepend(b.size());
  if (!b.empty()) {
    std::memcpy(dst, b.data(), b.size());
    BufNoteCopy(b.size());
  }
}

std::uint8_t* PacketBuf::Append(std::size_t n) {
  if (end_ + n > buf_.size()) {
    Grow(0, end_ + n - buf_.size());
  }
  std::uint8_t* dst = buf_.data() + end_;
  end_ += n;
  return dst;
}

void PacketBuf::Append(ByteView b) {
  std::uint8_t* dst = Append(b.size());
  if (!b.empty()) {
    std::memcpy(dst, b.data(), b.size());
    BufNoteCopy(b.size());
  }
}

void PacketBuf::TrimFront(std::size_t n) { start_ += std::min(n, size()); }

void PacketBuf::TrimBack(std::size_t n) { end_ -= std::min(n, size()); }

Bytes PacketBuf::ToBytes() const {
  if (!empty()) {
    BufNoteAlloc();
    BufNoteCopy(size());
  }
  return Bytes(data(), data() + size());
}

Bytes PacketBuf::Release() {
  Bytes out;
  if (start_ == 0 && end_ == buf_.size()) {
    out = std::move(buf_);
  } else {
    out = ToBytes();
  }
  buf_.clear();
  start_ = end_ = 0;
  return out;
}

}  // namespace upr
