#include "src/util/crc.h"

namespace upr {

std::uint16_t Crc16Ccitt(const std::uint8_t* data, std::size_t len) {
  // Bitwise reflected CRC-16/X-25. Table-free: frame sizes are small (< 330
  // bytes) and this path models a TNC microcontroller anyway.
  std::uint16_t crc = 0xFFFF;
  for (std::size_t i = 0; i < len; ++i) {
    crc ^= data[i];
    for (int bit = 0; bit < 8; ++bit) {
      if (crc & 1) {
        crc = static_cast<std::uint16_t>((crc >> 1) ^ 0x8408);
      } else {
        crc = static_cast<std::uint16_t>(crc >> 1);
      }
    }
  }
  return static_cast<std::uint16_t>(~crc);
}

std::uint16_t Crc16Ccitt(const Bytes& b) { return Crc16Ccitt(b.data(), b.size()); }

std::uint32_t ChecksumPartial(const std::uint8_t* data, std::size_t len,
                              std::uint32_t initial) {
  std::uint32_t sum = initial;
  std::size_t i = 0;
  for (; i + 1 < len; i += 2) {
    sum += static_cast<std::uint32_t>(data[i] << 8 | data[i + 1]);
  }
  if (i < len) {
    sum += static_cast<std::uint32_t>(data[i] << 8);
  }
  return sum;
}

std::uint16_t ChecksumFinish(std::uint32_t sum) {
  while (sum >> 16) {
    sum = (sum & 0xFFFF) + (sum >> 16);
  }
  return static_cast<std::uint16_t>(~sum & 0xFFFF);
}

std::uint16_t InternetChecksum(const std::uint8_t* data, std::size_t len,
                               std::uint32_t initial) {
  return ChecksumFinish(ChecksumPartial(data, len, initial));
}

std::uint16_t InternetChecksum(const Bytes& b, std::uint32_t initial) {
  return InternetChecksum(b.data(), b.size(), initial);
}

}  // namespace upr
