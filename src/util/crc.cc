#include "src/util/crc.h"

#include <array>
#include <bit>
#include <cstring>

namespace upr {

namespace {

// Slice-by-8 tables for CRC-16/X-25. kCrcTables[0] is the classic byte-at-a-
// time table; kCrcTables[k][b] is the CRC state after processing byte `b`
// followed by `k` zero bytes from state 0, which lets eight input bytes fold
// into the running CRC with eight independent lookups (CRC is linear over
// GF(2), so contributions XOR together).
constexpr std::array<std::array<std::uint16_t, 256>, 8> MakeCrcTables() {
  std::array<std::array<std::uint16_t, 256>, 8> t{};
  for (int b = 0; b < 256; ++b) {
    std::uint16_t crc = static_cast<std::uint16_t>(b);
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? static_cast<std::uint16_t>((crc >> 1) ^ 0x8408)
                      : static_cast<std::uint16_t>(crc >> 1);
    }
    t[0][static_cast<std::size_t>(b)] = crc;
  }
  for (int k = 1; k < 8; ++k) {
    for (int b = 0; b < 256; ++b) {
      std::uint16_t prev = t[k - 1][static_cast<std::size_t>(b)];
      t[k][static_cast<std::size_t>(b)] =
          static_cast<std::uint16_t>((prev >> 8) ^ t[0][prev & 0xFF]);
    }
  }
  return t;
}

constexpr auto kCrcTables = MakeCrcTables();

// 64-bit one's-complement addition with end-around carry.
inline std::uint64_t AddCarry64(std::uint64_t a, std::uint64_t b) {
  std::uint64_t s = a + b;
  return s + (s < a ? 1 : 0);
}

inline std::uint16_t Swap16(std::uint16_t v) {
  return static_cast<std::uint16_t>((v << 8) | (v >> 8));
}

}  // namespace

std::uint16_t Crc16Ccitt(const std::uint8_t* data, std::size_t len) {
  const auto& t = kCrcTables;
  std::uint16_t crc = 0xFFFF;
  while (len >= 8) {
    crc = static_cast<std::uint16_t>(
        t[7][data[0] ^ (crc & 0xFF)] ^ t[6][data[1] ^ (crc >> 8)] ^
        t[5][data[2]] ^ t[4][data[3]] ^ t[3][data[4]] ^ t[2][data[5]] ^
        t[1][data[6]] ^ t[0][data[7]]);
    data += 8;
    len -= 8;
  }
  while (len-- > 0) {
    crc = static_cast<std::uint16_t>((crc >> 8) ^ t[0][(crc ^ *data++) & 0xFF]);
  }
  return static_cast<std::uint16_t>(~crc);
}

std::uint16_t Crc16Ccitt(const Bytes& b) { return Crc16Ccitt(b.data(), b.size()); }

std::uint16_t Crc16CcittReference(const std::uint8_t* data, std::size_t len) {
  // Bitwise reflected CRC-16/X-25, one shift/xor per bit — the seed's
  // implementation, now the oracle the sliced version is checked against.
  std::uint16_t crc = 0xFFFF;
  for (std::size_t i = 0; i < len; ++i) {
    crc ^= data[i];
    for (int bit = 0; bit < 8; ++bit) {
      if (crc & 1) {
        crc = static_cast<std::uint16_t>((crc >> 1) ^ 0x8408);
      } else {
        crc = static_cast<std::uint16_t>(crc >> 1);
      }
    }
  }
  return static_cast<std::uint16_t>(~crc);
}

std::uint32_t ChecksumPartial(const std::uint8_t* data, std::size_t len,
                              std::uint32_t initial) {
  // Word-parallel one's-complement sum: accumulate 64 bits at a time with
  // end-around carry, fold to 16 bits, then byte-swap on little-endian hosts
  // (the one's-complement sum of 16-bit words is byte-order independent up
  // to a final swap — RFC 1071 §2B). The result is congruent to the
  // reference byte-pair sum, so folded checksums are identical; the
  // exhaustive cross-check lives in tests/crc_test.cc.
  std::uint64_t sum = 0;
  std::size_t n = len & ~std::size_t{1};
  const std::uint8_t* p = data;
  while (n >= 32) {
    std::uint64_t v0, v1, v2, v3;
    std::memcpy(&v0, p, 8);
    std::memcpy(&v1, p + 8, 8);
    std::memcpy(&v2, p + 16, 8);
    std::memcpy(&v3, p + 24, 8);
    sum = AddCarry64(sum, v0);
    sum = AddCarry64(sum, v1);
    sum = AddCarry64(sum, v2);
    sum = AddCarry64(sum, v3);
    p += 32;
    n -= 32;
  }
  while (n >= 8) {
    std::uint64_t v;
    std::memcpy(&v, p, 8);
    sum = AddCarry64(sum, v);
    p += 8;
    n -= 8;
  }
  if (n >= 4) {
    std::uint32_t v;
    std::memcpy(&v, p, 4);
    sum = AddCarry64(sum, v);
    p += 4;
    n -= 4;
  }
  if (n >= 2) {
    std::uint16_t v;
    std::memcpy(&v, p, 2);
    sum = AddCarry64(sum, v);
    p += 2;
  }
  // Fold 64 -> 16 with end-around carries.
  std::uint64_t folded = (sum & 0xFFFFFFFF) + (sum >> 32);
  folded = (folded & 0xFFFF) + (folded >> 16);
  folded = (folded & 0xFFFF) + (folded >> 16);
  auto s16 = static_cast<std::uint16_t>(folded);
  if constexpr (std::endian::native == std::endian::little) {
    s16 = Swap16(s16);
  }
  std::uint32_t result = initial + s16;
  if (len & 1) {
    result += static_cast<std::uint32_t>(data[len - 1]) << 8;
  }
  return result;
}

std::uint32_t ChecksumPartialReference(const std::uint8_t* data, std::size_t len,
                                       std::uint32_t initial) {
  std::uint32_t sum = initial;
  std::size_t i = 0;
  for (; i + 1 < len; i += 2) {
    sum += static_cast<std::uint32_t>(data[i] << 8 | data[i + 1]);
  }
  if (i < len) {
    sum += static_cast<std::uint32_t>(data[i] << 8);
  }
  return sum;
}

std::uint16_t ChecksumFinish(std::uint32_t sum) {
  while (sum >> 16) {
    sum = (sum & 0xFFFF) + (sum >> 16);
  }
  return static_cast<std::uint16_t>(~sum & 0xFFFF);
}

std::uint16_t InternetChecksum(const std::uint8_t* data, std::size_t len,
                               std::uint32_t initial) {
  return ChecksumFinish(ChecksumPartial(data, len, initial));
}

std::uint16_t InternetChecksum(const Bytes& b, std::uint32_t initial) {
  return InternetChecksum(b.data(), b.size(), initial);
}

void ChecksumAccumulator::Add(const std::uint8_t* data, std::size_t len) {
  if (len == 0) {
    return;
  }
  if (odd_) {
    // The previous segment ended mid-word: its dangling byte was counted as
    // the HIGH half of a word, so this segment's first byte is that word's
    // LOW half.
    sum_ += *data++;
    --len;
    odd_ = false;
  }
  sum_ += ChecksumPartial(data, len, 0);
  odd_ = (len & 1) != 0;
  // Pre-fold so arbitrarily long chains cannot overflow 32 bits.
  sum_ = (sum_ & 0xFFFF) + (sum_ >> 16);
}

}  // namespace upr
