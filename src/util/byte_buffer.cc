#include "src/util/byte_buffer.h"

#include <algorithm>
#include <cstdio>

namespace upr {

Bytes BytesFromString(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

std::string HexDump(const std::uint8_t* data, std::size_t len) {
  std::string out;
  out.reserve(len * 3);
  char tmp[4];
  for (std::size_t i = 0; i < len; ++i) {
    std::snprintf(tmp, sizeof(tmp), i + 1 == len ? "%02x" : "%02x ", data[i]);
    out += tmp;
  }
  return out;
}

std::string HexDump(const Bytes& b) { return HexDump(b.data(), b.size()); }

bool ByteReader::Need(std::size_t n) {
  if (pos_ + n > len_) {
    ok_ = false;
    pos_ = len_;
    return false;
  }
  return true;
}

std::uint8_t ByteReader::ReadU8() {
  if (!Need(1)) {
    return 0;
  }
  return data_[pos_++];
}

std::uint16_t ByteReader::ReadU16() {
  if (!Need(2)) {
    return 0;
  }
  std::uint16_t v = static_cast<std::uint16_t>(data_[pos_] << 8 | data_[pos_ + 1]);
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::ReadU32() {
  if (!Need(4)) {
    return 0;
  }
  std::uint32_t v = static_cast<std::uint32_t>(data_[pos_]) << 24 |
                    static_cast<std::uint32_t>(data_[pos_ + 1]) << 16 |
                    static_cast<std::uint32_t>(data_[pos_ + 2]) << 8 |
                    static_cast<std::uint32_t>(data_[pos_ + 3]);
  pos_ += 4;
  return v;
}

Bytes ByteReader::ReadBytes(std::size_t n) {
  if (!Need(n)) {
    return {};
  }
  Bytes out(data_ + pos_, data_ + pos_ + n);
  pos_ += n;
  return out;
}

Bytes ByteReader::ReadRest() { return ReadBytes(remaining()); }

void ByteReader::Skip(std::size_t n) {
  if (Need(n)) {
    pos_ += n;
  }
}

void ByteWriter::WriteU8(std::uint8_t v) { out_->push_back(v); }

void ByteWriter::WriteU16(std::uint16_t v) {
  out_->push_back(static_cast<std::uint8_t>(v >> 8));
  out_->push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::WriteU32(std::uint32_t v) {
  out_->push_back(static_cast<std::uint8_t>(v >> 24));
  out_->push_back(static_cast<std::uint8_t>(v >> 16));
  out_->push_back(static_cast<std::uint8_t>(v >> 8));
  out_->push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::WriteBytes(const std::uint8_t* data, std::size_t len) {
  out_->insert(out_->end(), data, data + len);
}

void ByteWriter::WriteBytes(const Bytes& b) { WriteBytes(b.data(), b.size()); }

}  // namespace upr
