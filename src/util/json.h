// Minimal strict JSON parser for the perf-ledger tooling (tools/benchdiff
// reads the BENCH_*.json documents bench/bench_json.h emits).
//
// Deliberately small: parses the full JSON grammar (objects, arrays,
// strings with escapes, numbers, true/false/null) into a single Value tree,
// keeps object keys in insertion order, and — because benchdiff compares
// integers exactly but doubles with an epsilon — keeps the raw number token
// alongside the parsed double so "3" and "3.0" remain distinguishable.
// No writer here: emission lives in bench/bench_json.h, which formats
// documents for human diffing too.
#ifndef SRC_UTIL_JSON_H_
#define SRC_UTIL_JSON_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace upr {
namespace json {

struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string raw;  // the exact number token as written, e.g. "3" vs "3.0"
  std::string str;
  std::vector<Value> items;                              // kArray
  std::vector<std::pair<std::string, Value>> members;    // kObject, in order

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_number() const { return kind == Kind::kNumber; }

  // True when the number token is a plain integer literal (no '.', 'e').
  bool is_integer_token() const;

  // Object member lookup; nullptr when absent or not an object.
  const Value* Find(std::string_view key) const;
};

// Parses `text` as one JSON document (trailing whitespace allowed, trailing
// garbage rejected). On failure returns nullopt and, if `error` is non-null,
// stores a one-line message with byte offset.
std::optional<Value> Parse(std::string_view text, std::string* error = nullptr);

}  // namespace json
}  // namespace upr

#endif  // SRC_UTIL_JSON_H_
