// PacketBuf — the mbuf/skb-style packet buffer carried end-to-end through the
// TX and RX datapaths.
//
// The paper's driver lives inside 4.3BSD, where an outgoing packet is built
// once and every lower layer *prepends* its header into mbuf headroom instead
// of re-serializing the packet. PacketBuf reproduces that discipline:
//
//   [ headroom | data | tailroom ]
//
// A transport builds its segment in a PacketBuf with generous headroom; IP,
// AX.25 and the Ethernet header are then prepended in place; KISS escaping is
// the single wire-write at the very edge. On input, decoders parse over
// non-owning ByteView spans with offset bookkeeping and the buffer itself is
// handed from layer to layer by move.
//
// Every buffer operation is attributed to the protocol layer named by the
// innermost BufLayerScope, so `uprsim --netstat` (and bench_e8_copy_path) can
// report bytes-copied / allocations / prepend-reallocations per layer.
#ifndef SRC_UTIL_PACKET_BUF_H_
#define SRC_UTIL_PACKET_BUF_H_

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "src/util/byte_buffer.h"

namespace upr {

// Datapath layers for buffer-operation accounting.
enum class BufLayer : int {
  kTransport = 0,  // TCP / UDP / ICMP segment building
  kIp,             // IPv4 encode/decode/forward/fragment
  kAx25,           // AX.25 frame codec
  kKiss,           // KISS framing (wire write)
  kEther,          // Ethernet framing
  kDriver,         // packet radio / VC drivers
  kOther,          // unattributed (default scope)
};
inline constexpr int kBufLayerCount = 7;

const char* BufLayerName(BufLayer layer);

struct BufLayerStats {
  std::uint64_t bytes_copied = 0;      // payload bytes memcpy'd between buffers
  std::uint64_t allocs = 0;            // fresh buffer allocations / regrowths
  std::uint64_t prepend_reallocs = 0;  // prepends that exhausted headroom
};

// Per-layer counters (per-thread: the classic scenarios are single-threaded
// and see the old process-wide behaviour; each parallel-city shard worker
// accumulates its own counters without synchronization).
BufLayerStats& BufStatsFor(BufLayer layer);
BufLayerStats BufStatsTotal();
void ResetBufStats();

namespace detail {
// Function-local thread_locals behind inline accessors, NOT
// `extern thread_local` variables: header-inline code touching an extern
// TLS variable goes through the compiler's TLS wrapper and trips a GCC
// UBSan false positive ("store to null pointer"). With the definition
// visible here the access compiles to a plain TLS load and still inlines
// into the per-packet hot path.
inline BufLayerStats* BufStatsArray() {
  static thread_local BufLayerStats stats[kBufLayerCount];
  return stats;
}
inline BufLayer& CurrentLayer() {
  static thread_local BufLayer layer = BufLayer::kOther;
  return layer;
}

inline BufLayerStats& CurrentBufStats() {
  return BufStatsArray()[static_cast<int>(CurrentLayer())];
}
}  // namespace detail

// RAII scope attributing buffer operations to `layer`. Nest freely; the
// innermost scope wins.
class BufLayerScope {
 public:
  explicit BufLayerScope(BufLayer layer) : prev_(detail::CurrentLayer()) {
    detail::CurrentLayer() = layer;
  }
  ~BufLayerScope() { detail::CurrentLayer() = prev_; }
  BufLayerScope(const BufLayerScope&) = delete;
  BufLayerScope& operator=(const BufLayerScope&) = delete;

 private:
  BufLayer prev_;
};

// Manual accounting hooks for code that manages its own buffers (e.g. the
// KISS escape writer, the legacy copy-mode KISS frame emit).
inline void BufNoteCopy(std::size_t n) {
  detail::CurrentBufStats().bytes_copied += n;
}
inline void BufNoteAlloc() { ++detail::CurrentBufStats().allocs; }

// --- Slab recycling ---------------------------------------------------------
//
// The gateway's forward path makes exactly one owned allocation per relayed
// frame (FromView in the driver RX handler). Under load that is one
// malloc/free per packet — the 4.3BSD answer was the mbuf free list, and this
// is ours: retired PacketBuf storage of the common size class parks on a
// process-wide free list and the next construction reuses it instead of
// touching the heap. Single-threaded by design, like the stats above.
//
// A request of at most kBufSlabSize bytes is served from the free list when
// one is parked (a *hit* — not counted as an alloc in BufLayerStats, since
// the heap is never involved). Larger requests, and requests that find the
// list empty, allocate as before. Storage returns to the list when a
// PacketBuf holding a slab-capacity block is destroyed; beyond
// kBufPoolMaxDepth blocks the return is dropped to the heap so an idle
// process does not hoard.
inline constexpr std::size_t kBufSlabSize = 512;
inline constexpr std::size_t kBufPoolMaxDepth = 256;

struct BufPoolStats {
  std::uint64_t hits = 0;      // constructions served from the free list
  std::uint64_t misses = 0;    // slab-sized requests with an empty list
  std::uint64_t oversize = 0;  // requests too large for a slab
  std::uint64_t recycled = 0;  // blocks parked back on the free list
  std::uint64_t dropped = 0;   // retiring blocks freed (pool full/odd size)
};
BufPoolStats BufPoolSnapshot();
std::size_t BufPoolDepth();  // blocks currently parked
// Frees every parked block and zeroes the pool counters (benches use this to
// isolate phases).
void DrainBufPool();

class PacketBuf {
 public:
  static constexpr std::size_t kDefaultHeadroom = 128;

  // Default: empty with no storage — free to construct, meant to be assigned
  // into. (A Prepend/Append on it grows as usual.)
  PacketBuf() = default;
  // Empty buffer with reserved headroom (for prepends) and tailroom (for
  // appends). Served from the slab free list when it fits; otherwise one
  // allocation, counted.
  explicit PacketBuf(std::size_t headroom, std::size_t tailroom = 0);
  // Retires the storage to the slab free list when it is slab-sized.
  ~PacketBuf();

  PacketBuf(PacketBuf&&) noexcept = default;
  PacketBuf& operator=(PacketBuf&& o) noexcept;
  PacketBuf(const PacketBuf&) = delete;
  PacketBuf& operator=(const PacketBuf&) = delete;

  // Buffer whose data is a copy of `payload`, with reserved headroom.
  static PacketBuf FromView(ByteView payload,
                            std::size_t headroom = kDefaultHeadroom,
                            std::size_t tailroom = 0);
  static PacketBuf FromBytes(const Bytes& payload,
                             std::size_t headroom = kDefaultHeadroom,
                             std::size_t tailroom = 0) {
    return FromView(ByteView(payload), headroom, tailroom);
  }
  // Adopts `owned` as the data with zero copy and zero headroom. A later
  // Prepend will pay one prepend-realloc; use FromView when a prepend is
  // known to follow.
  static PacketBuf Adopt(Bytes&& owned);

  std::size_t size() const { return end_ - start_; }
  bool empty() const { return end_ == start_; }
  const std::uint8_t* data() const { return buf_.data() + start_; }
  std::uint8_t* data() { return buf_.data() + start_; }
  ByteView view() const { return ByteView(data(), size()); }

  std::size_t Headroom() const { return start_; }
  std::size_t Tailroom() const { return buf_.size() - end_; }

  // Extends the front by `n` bytes and returns a pointer to the new front for
  // the caller to serialize a header into (skb_push). Grows (counted as a
  // prepend-realloc) when headroom is exhausted.
  std::uint8_t* Prepend(std::size_t n);
  // Prepends a copy of `b` (counted as copied bytes).
  void Prepend(ByteView b);
  void Prepend(const std::uint8_t* d, std::size_t n) { Prepend(ByteView(d, n)); }

  // Extends the tail by `n` bytes and returns a pointer to the new region
  // (skb_put). Grows when tailroom is exhausted.
  std::uint8_t* Append(std::size_t n);
  void Append(ByteView b);
  void Append(const std::uint8_t* d, std::size_t n) { Append(ByteView(d, n)); }

  // Removes `n` bytes from the front (skb_pull) / tail (skb_trim); clamps to
  // size(). Pure offset bookkeeping, no copying.
  void TrimFront(std::size_t n);
  void TrimBack(std::size_t n);

  // Copies the data out (counted).
  Bytes ToBytes() const;
  // Moves the underlying storage out when the data occupies it exactly
  // (zero-copy); otherwise equivalent to ToBytes(). Leaves the buffer empty.
  Bytes Release();

 private:
  void Grow(std::size_t front, std::size_t back);

  Bytes buf_;
  std::size_t start_ = 0;  // offset of first data byte
  std::size_t end_ = 0;    // offset past the last data byte
};

}  // namespace upr

#endif  // SRC_UTIL_PACKET_BUF_H_
