// Deterministic PRNG (xoshiro256**) used for every stochastic decision in the
// simulation: CSMA persistence, channel loss, jitter, workload generation.
// Each subsystem takes an explicit Rng (or a seed) so runs are reproducible
// and tests can pin behaviour.
#ifndef SRC_UTIL_RANDOM_H_
#define SRC_UTIL_RANDOM_H_

#include <cstdint>
#include <string_view>

namespace upr {

// Mixes a base seed with a textual tag (an FNV-1a hash finished through
// SplitMix64). Components that would otherwise share a default seed — every
// CsmaMac used to roll the same p-persistence sequence, synchronizing
// collisions across co-channel stations — derive per-instance streams from
// (seed, name) while staying fully reproducible.
std::uint64_t MixSeed(std::uint64_t base, std::string_view tag);

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  std::uint64_t NextU64();
  // Uniform in [0, bound). bound must be > 0.
  std::uint64_t NextBelow(std::uint64_t bound);
  // Uniform double in [0, 1).
  double NextDouble();
  // True with probability p (clamped to [0,1]).
  bool Chance(double p);
  // Uniform integer in [lo, hi] inclusive.
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi);
  // Exponentially distributed value with the given mean (> 0).
  double NextExponential(double mean);

 private:
  std::uint64_t s_[4];
};

}  // namespace upr

#endif  // SRC_UTIL_RANDOM_H_
