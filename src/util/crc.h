// Checksums used by the stack.
//
// `Crc16Ccitt` is the HDLC frame-check sequence AX.25 uses on the air (the
// TNC computes/verifies it; KISS frames exclude it). `InternetChecksum` is
// the 16-bit one's-complement sum used by IPv4/ICMP/TCP/UDP.
//
// Both hot paths are table/word-parallel implementations (slice-by-8 CRC,
// 64-bit one's-complement accumulation); the original bitwise/byte-pair
// implementations are retained as `*Reference` and cross-checked
// exhaustively in tests/crc_test.cc — the fast versions must stay
// byte-identical.
#ifndef SRC_UTIL_CRC_H_
#define SRC_UTIL_CRC_H_

#include <cstddef>
#include <cstdint>

#include "src/util/byte_buffer.h"

namespace upr {

// CRC-16/X-25 (reflected, poly 0x1021, init 0xFFFF, xorout 0xFFFF) — the HDLC
// FCS transmitted after each AX.25 frame on the radio channel. Slice-by-8:
// eight 256-entry tables, one table lookup per input byte, eight bytes per
// step.
std::uint16_t Crc16Ccitt(const std::uint8_t* data, std::size_t len);
std::uint16_t Crc16Ccitt(const Bytes& b);

// The original table-free bitwise implementation (one shift/xor per bit).
// Kept as the oracle for the exhaustive cross-check test and the A/B bench;
// not used on the datapath.
std::uint16_t Crc16CcittReference(const std::uint8_t* data, std::size_t len);

// RFC 1071 Internet checksum over `data`, starting from `initial` (used to
// fold in pseudo-headers). Returns the final one's-complement value in host
// order, ready to store with ByteWriter::WriteU16.
std::uint16_t InternetChecksum(const std::uint8_t* data, std::size_t len,
                               std::uint32_t initial = 0);
std::uint16_t InternetChecksum(const Bytes& b, std::uint32_t initial = 0);

// Partial (unfolded) sum for composing pseudo-header + payload checksums.
//
// NOTE on chaining: a partial sum treats its buffer as a sequence of
// big-endian 16-bit words; an odd final byte is padded as the HIGH half of a
// last word. Chaining `ChecksumPartial(b, ChecksumPartial(a))` is therefore
// only equivalent to a flattened sum when `a` has even length — an odd-length
// first chunk must carry its dangling byte into the next chunk as that
// word's LOW half. Use ChecksumAccumulator for segment chains that may split
// at odd offsets (see tests/crc_test.cc property tests).
std::uint32_t ChecksumPartial(const std::uint8_t* data, std::size_t len,
                              std::uint32_t initial = 0);
std::uint16_t ChecksumFinish(std::uint32_t sum);

// The original byte-pair implementation, kept as the cross-check oracle.
std::uint32_t ChecksumPartialReference(const std::uint8_t* data, std::size_t len,
                                       std::uint32_t initial = 0);

// Odd-offset-safe chained Internet checksum: feeding segments of any lengths
// yields exactly the checksum of the flattened byte sequence, including when
// a segment boundary falls mid-word.
class ChecksumAccumulator {
 public:
  void Add(const std::uint8_t* data, std::size_t len);
  void Add(ByteView v) { Add(v.data(), v.size()); }

  // Partial sum so far, in the same convention as ChecksumPartial (a
  // trailing unpaired byte counts as the high half of a final word).
  std::uint32_t Sum() const { return sum_; }
  std::uint16_t Finish() const { return ChecksumFinish(sum_); }

 private:
  std::uint32_t sum_ = 0;
  bool odd_ = false;  // previous segments ended mid-word
};

}  // namespace upr

#endif  // SRC_UTIL_CRC_H_
