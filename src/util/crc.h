// Checksums used by the stack.
//
// `Crc16Ccitt` is the HDLC frame-check sequence AX.25 uses on the air (the
// TNC computes/verifies it; KISS frames exclude it). `InternetChecksum` is
// the 16-bit one's-complement sum used by IPv4/ICMP/TCP/UDP.
#ifndef SRC_UTIL_CRC_H_
#define SRC_UTIL_CRC_H_

#include <cstddef>
#include <cstdint>

#include "src/util/byte_buffer.h"

namespace upr {

// CRC-16/X-25 (reflected, poly 0x1021, init 0xFFFF, xorout 0xFFFF) — the HDLC
// FCS transmitted after each AX.25 frame on the radio channel.
std::uint16_t Crc16Ccitt(const std::uint8_t* data, std::size_t len);
std::uint16_t Crc16Ccitt(const Bytes& b);

// RFC 1071 Internet checksum over `data`, starting from `initial` (used to
// fold in pseudo-headers). Returns the final one's-complement value in host
// order, ready to store with ByteWriter::WriteU16.
std::uint16_t InternetChecksum(const std::uint8_t* data, std::size_t len,
                               std::uint32_t initial = 0);
std::uint16_t InternetChecksum(const Bytes& b, std::uint32_t initial = 0);

// Partial (unfolded) sum for composing pseudo-header + payload checksums.
std::uint32_t ChecksumPartial(const std::uint8_t* data, std::size_t len,
                              std::uint32_t initial = 0);
std::uint16_t ChecksumFinish(std::uint32_t sum);

}  // namespace upr

#endif  // SRC_UTIL_CRC_H_
