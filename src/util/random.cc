#include "src/util/random.h"

#include <cmath>

namespace upr {

namespace {

std::uint64_t SplitMix64(std::uint64_t* state) {
  std::uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

std::uint64_t MixSeed(std::uint64_t base, std::string_view tag) {
  std::uint64_t h = 0xCBF29CE484222325ULL;  // FNV-1a 64
  for (char c : tag) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001B3ULL;
  }
  std::uint64_t state = base ^ h;
  return SplitMix64(&state);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) {
    s = SplitMix64(&sm);
  }
}

std::uint64_t Rng::NextU64() {
  std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::NextBelow(std::uint64_t bound) {
  // Debiased modulo: retry on values in the tail region.
  std::uint64_t threshold = -bound % bound;
  for (;;) {
    std::uint64_t r = NextU64();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

bool Rng::Chance(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return NextDouble() < p;
}

std::int64_t Rng::NextInRange(std::int64_t lo, std::int64_t hi) {
  return lo + static_cast<std::int64_t>(
                  NextBelow(static_cast<std::uint64_t>(hi - lo) + 1));
}

double Rng::NextExponential(double mean) {
  double u = NextDouble();
  // Guard against log(0).
  if (u <= 0.0) {
    u = 1e-18;
  }
  return -mean * std::log(u);
}

}  // namespace upr
