// Lightweight statistics helpers used by interface counters and the benchmark
// harnesses: running mean/min/max/stddev and fixed-resolution percentile
// histograms over simulated latencies.
#ifndef SRC_UTIL_STATS_H_
#define SRC_UTIL_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace upr {

// Online summary statistics (Welford's algorithm).
class RunningStats {
 public:
  void Add(double x);
  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double variance() const;
  double stddev() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Stores every sample; computes exact percentiles. Fine for bench-scale data
// (thousands of samples).
class Samples {
 public:
  void Add(double x);
  std::size_t count() const { return values_.size(); }
  double Percentile(double p) const;  // p in [0,100]
  double Mean() const;
  double Min() const;
  double Max() const;

 private:
  mutable std::vector<double> values_;
  mutable bool sorted_ = true;
};

// Formats a row of fixed-width columns for the paper-style summary tables the
// bench binaries print.
std::string TableRow(const std::vector<std::string>& cells, int width = 14);

}  // namespace upr

#endif  // SRC_UTIL_STATS_H_
