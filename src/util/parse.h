// Validated numeric parsing for command-line tools.
//
// strtoul-style parsing accepts "12abc" and maps "abc" to 0, so a typo'd
// flag silently runs a different scenario (uprsim --rate abc used to run at
// 0 bps). These helpers accept a value only when the whole string parses and
// the result lies in [min, max]; callers turn nullopt into a usage error.
#ifndef SRC_UTIL_PARSE_H_
#define SRC_UTIL_PARSE_H_

#include <cstdint>
#include <limits>
#include <optional>

namespace upr {

// Whole-string unsigned decimal integer in [min, max]. Rejects empty input,
// trailing garbage, signs, and out-of-range values.
std::optional<std::uint64_t> ParseU64(
    const char* s, std::uint64_t min = 0,
    std::uint64_t max = std::numeric_limits<std::uint64_t>::max());

// Whole-string floating-point value in [min, max]. Rejects empty input,
// trailing garbage, NaN, and infinities.
std::optional<double> ParseDouble(
    const char* s, double min = std::numeric_limits<double>::lowest(),
    double max = std::numeric_limits<double>::max());

}  // namespace upr

#endif  // SRC_UTIL_PARSE_H_
