// TCP over the simulated stack.
//
// A real (if compact) TCP: three-way handshake, sliding-window transfer with
// MSS segmentation, cumulative ACKs, go-back-style retransmission with
// exponential backoff, graceful FIN teardown with TIME_WAIT, RST handling
// and a LISTEN demultiplexer.
//
// The §4.1 experiment lives in the retransmission-timeout policy, which is
// pluggable per connection:
//   kFixed    — constant RTO, never adapts ("hosts on the Ethernet side
//               expect fast response ... they time out and retry").
//   kRfc793   — classic smoothed RTT: SRTT = a*SRTT + (1-a)*RTT,
//               RTO = clamp(b*SRTT). Samples taken from retransmitted
//               segments too (pre-Karn), which mis-learns on lossy paths.
//   kJacobson — mean + 4*deviation estimator with Karn's rule (no samples
//               from retransmitted segments) and exponential backoff; what
//               "many implementations of TCP [that] dynamically adjust their
//               timeout values" converged on.
#ifndef SRC_TCP_TCP_H_
#define SRC_TCP_TCP_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "src/net/ip_address.h"
#include "src/net/ipv4.h"
#include "src/net/netstack.h"
#include "src/sim/simulator.h"
#include "src/util/byte_buffer.h"
#include "src/util/packet_buf.h"
#include "src/util/random.h"

namespace upr {

// --- Segment codec ---------------------------------------------------------

struct TcpFlags {
  bool fin = false, syn = false, rst = false, psh = false, ack = false, urg = false;
};

struct TcpSegment {
  std::uint16_t source_port = 0;
  std::uint16_t destination_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  TcpFlags flags;
  std::uint16_t window = 0;
  std::optional<std::uint16_t> mss_option;  // SYN only
  Bytes payload;

  // Prepends the TCP header (pseudo-header checksum over the whole segment)
  // in front of `pb`, whose current data is the segment payload. The
  // `payload` member is ignored on this path.
  void EncodeTo(PacketBuf* pb, IpV4Address src, IpV4Address dst) const;

  // Checksum covers the RFC 793 pseudo-header.
  Bytes Encode(IpV4Address src, IpV4Address dst) const;
  static std::optional<TcpSegment> Decode(ByteView wire, IpV4Address src,
                                          IpV4Address dst);
  std::string ToString() const;
};

// --- Configuration ---------------------------------------------------------

enum class RtoAlgorithm { kFixed, kRfc793, kJacobson };

struct TcpConfig {
  RtoAlgorithm rto_algorithm = RtoAlgorithm::kJacobson;
  SimTime fixed_rto = Seconds(3);     // kFixed value
  SimTime initial_rtt = Seconds(1);   // pre-measurement RTT assumption
  SimTime min_rto = Seconds(1);
  SimTime max_rto = Seconds(64);
  bool exponential_backoff = true;    // double RTO on each retransmission
  std::uint16_t mss = 512;
  std::size_t send_buffer_limit = 32 * 1024;
  std::uint16_t receive_window = 4096;
  int max_retries = 12;               // per-segment, then the connection drops
  // Optional Van Jacobson slow start / congestion avoidance (contemporary
  // with the paper; off reproduces the stock 4.3BSD behaviour).
  bool slow_start = false;
  // Delayed acknowledgments (RFC 1122 4.2.3.2): ack every second in-order
  // segment or after delayed_ack_timeout, instead of per segment. On a
  // half-duplex radio channel every spared ACK is a spared keyup
  // (bench_x4_delayed_ack). Off by default.
  bool delayed_ack = false;
  SimTime delayed_ack_timeout = Milliseconds(200);
  SimTime time_wait = Seconds(60);    // 2*MSL stand-in
  SimTime connect_timeout = Seconds(75);
};

// RTO estimator state, separated out so benches can unit-test policies.
class RtoEstimator {
 public:
  RtoEstimator(const TcpConfig& config);

  // Feeds one RTT measurement (never call for retransmitted segments when
  // Karn's rule applies — the connection enforces that).
  void Sample(SimTime rtt);
  // Current timeout for a fresh transmission.
  SimTime Timeout() const;
  // Timeout after `backoffs` consecutive retransmissions.
  SimTime BackedOff(int backoffs) const;

  SimTime srtt() const { return srtt_; }
  SimTime rttvar() const { return rttvar_; }
  std::size_t samples() const { return samples_; }

 private:
  const TcpConfig config_;
  SimTime srtt_;
  SimTime rttvar_ = 0;
  std::size_t samples_ = 0;
};

// --- Connections -----------------------------------------------------------

enum class TcpState {
  kClosed,
  kListen,
  kSynSent,
  kSynReceived,
  kEstablished,
  kFinWait1,
  kFinWait2,
  kCloseWait,
  kClosing,
  kLastAck,
  kTimeWait,
};

const char* TcpStateName(TcpState s);

class Tcp;

struct TcpConnectionStats {
  std::uint64_t segments_sent = 0;
  std::uint64_t segments_received = 0;
  std::uint64_t retransmissions = 0;
  // Retransmissions where the ACK of the original copy was already on its
  // way — the "needless" retransmissions of §4.1. Detected when an ACK
  // covering a retransmitted segment arrives sooner after the retransmission
  // than the link could possibly have carried it (< 1/2 smallest observed
  // RTT), meaning it acknowledged the earlier copy.
  std::uint64_t spurious_retransmissions = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t duplicate_segments = 0;
  std::uint64_t out_of_order_segments = 0;
};

class TcpConnection {
 public:
  using DataHandler = std::function<void(const Bytes&)>;
  using EventHandler = std::function<void()>;
  using ErrorHandler = std::function<void(const std::string& reason)>;

  TcpState state() const { return state_; }
  IpV4Address local_ip() const { return local_ip_; }
  IpV4Address remote_ip() const { return remote_ip_; }
  std::uint16_t local_port() const { return local_port_; }
  std::uint16_t remote_port() const { return remote_port_; }

  // Appends to the send buffer; returns bytes accepted (0 when full/closed).
  std::size_t Send(const Bytes& data);
  // Graceful close: FIN after the send buffer drains.
  void Close();
  // Hard reset.
  void Abort();

  void set_connected_handler(EventHandler h) { on_connected_ = std::move(h); }
  void set_data_handler(DataHandler h) { on_data_ = std::move(h); }
  // Remote sent FIN (read side finished).
  void set_remote_closed_handler(EventHandler h) { on_remote_closed_ = std::move(h); }
  // Connection fully terminated (any path).
  void set_closed_handler(EventHandler h) { on_closed_ = std::move(h); }
  void set_error_handler(ErrorHandler h) { on_error_ = std::move(h); }

  const TcpConnectionStats& stats() const { return stats_; }
  const RtoEstimator& rto() const { return rto_; }
  const TcpConfig& config() const { return config_; }
  std::size_t unsent_bytes() const { return send_buffer_.size(); }
  std::size_t unacked_segments() const { return in_flight_.size(); }

  // Flow control: adjusts the window advertised in future segments (0 stops
  // the peer, who then probes with the persist timer). An application-level
  // stand-in for a full receive buffer.
  void set_advertised_window(std::uint16_t window);
  std::uint16_t advertised_window() const { return advertised_window_; }

 private:
  friend class Tcp;

  struct InFlight {
    std::uint32_t seq = 0;
    Bytes data;
    bool syn = false;
    bool fin = false;
    SimTime first_sent = 0;
    SimTime last_sent = 0;
    int transmissions = 0;
    bool retransmitted = false;
  };

  TcpConnection(Tcp* tcp, TcpConfig config);

  void StartConnect(IpV4Address dst, std::uint16_t dport, std::uint16_t sport,
                    IpV4Address src);
  void StartAccept(IpV4Address local, std::uint16_t lport, IpV4Address remote,
                   std::uint16_t rport, const TcpSegment& syn);

  void HandleSegment(const TcpSegment& seg);
  void HandleAck(const TcpSegment& seg);
  void HandleData(const TcpSegment& seg);
  void PumpOutput();
  void TransmitSegment(InFlight* item, bool retransmission);
  void SendControl(TcpFlags flags, std::uint32_t seq, bool with_ack);
  void SendAck();
  void RestartRetransmitTimer();
  void OnRetransmitTimeout();
  void OnPersistTimeout();
  // Acknowledges received data per the configured ack policy.
  void AckIncoming(bool force_immediate);
  void EnqueueFin();
  void EnterTimeWait();
  void Terminate(const std::string& reason, bool notify_error);
  std::size_t SequenceLength(const InFlight& i) const {
    return i.data.size() + (i.syn ? 1 : 0) + (i.fin ? 1 : 0);
  }

  Tcp* tcp_;
  TcpConfig config_;
  TcpState state_ = TcpState::kClosed;

  IpV4Address local_ip_, remote_ip_;
  std::uint16_t local_port_ = 0, remote_port_ = 0;

  // Send side.
  std::uint32_t snd_una_ = 0;  // oldest unacknowledged
  std::uint32_t snd_nxt_ = 0;  // next sequence to assign
  std::uint32_t snd_wnd_ = 0;  // peer's advertised window
  std::uint16_t peer_mss_ = 536;
  Bytes send_buffer_;          // bytes not yet segmented
  std::deque<InFlight> in_flight_;
  bool fin_requested_ = false;
  bool fin_enqueued_ = false;

  // Receive side.
  std::uint32_t rcv_nxt_ = 0;
  std::map<std::uint32_t, Bytes> out_of_order_;
  bool remote_fin_seen_ = false;

  // Congestion state (used when config_.slow_start).
  std::size_t cwnd_ = 0;
  std::size_t ssthresh_ = 65535;

  RtoEstimator rto_;
  int backoffs_ = 0;
  std::unique_ptr<Timer> rtx_timer_;
  std::unique_ptr<Timer> misc_timer_;  // connect timeout / TIME_WAIT
  std::unique_ptr<Timer> persist_timer_;  // zero-window probing
  int persist_backoffs_ = 0;
  std::unique_ptr<Timer> delack_timer_;   // delayed-ack holdoff
  int unacked_in_order_ = 0;              // in-order segments since last ack
  std::uint16_t advertised_window_ = 0;  // set from config at construction

  SimTime min_rtt_seen_ = 0;

  DataHandler on_data_;
  EventHandler on_connected_;
  EventHandler on_remote_closed_;
  EventHandler on_closed_;
  ErrorHandler on_error_;
  TcpConnectionStats stats_;
};

// --- Per-stack TCP instance --------------------------------------------------

class Tcp {
 public:
  using AcceptHandler = std::function<void(TcpConnection*)>;

  Tcp(NetStack* stack, TcpConfig default_config = {}, std::uint64_t seed = 17);
  ~Tcp();

  // Active open. The connection is owned by this Tcp until it fully closes.
  TcpConnection* Connect(IpV4Address dst, std::uint16_t dport,
                         std::optional<TcpConfig> config = std::nullopt);
  // Passive open.
  void Listen(std::uint16_t port, AcceptHandler on_accept,
              std::optional<TcpConfig> config = std::nullopt);
  void StopListening(std::uint16_t port);

  NetStack* stack() { return stack_; }
  Simulator* sim() { return stack_->sim(); }

  std::uint64_t segments_demuxed() const { return segments_demuxed_; }
  std::uint64_t resets_sent() const { return resets_sent_; }
  std::size_t connection_count() const { return connections_.size(); }

  // Deletes fully closed connections (invalidates their pointers).
  void ReapClosed();

 private:
  friend class TcpConnection;

  struct ConnKey {
    std::uint32_t local_ip, remote_ip;
    std::uint16_t local_port, remote_port;
    bool operator<(const ConnKey& o) const {
      return std::tie(local_ip, remote_ip, local_port, remote_port) <
             std::tie(o.local_ip, o.remote_ip, o.local_port, o.remote_port);
    }
  };
  struct Listener {
    AcceptHandler on_accept;
    TcpConfig config;
  };

  void HandleInput(const Ipv4Header& ip, ByteView payload, NetInterface* in);
  // ICMP unreachable handling (BSD-style): hard errors (port unreachable,
  // administratively prohibited) abort the matching connection; soft errors
  // are ignored and left to retransmission.
  void HandleIcmpError(const Ipv4Header& outer, const IcmpMessage& msg);
  void SendSegment(const TcpSegment& seg, IpV4Address src, IpV4Address dst);
  void SendReset(const TcpSegment& offending, IpV4Address src, IpV4Address dst);
  std::uint32_t NextIss() { return static_cast<std::uint32_t>(rng_.NextU64()); }
  std::uint16_t AllocatePort();

  NetStack* stack_;
  TcpConfig default_config_;
  Rng rng_;
  std::map<ConnKey, std::unique_ptr<TcpConnection>> connections_;
  std::map<std::uint16_t, Listener> listeners_;
  std::uint16_t next_ephemeral_ = 1024;
  std::uint64_t segments_demuxed_ = 0;
  std::uint64_t resets_sent_ = 0;
};

// Sequence-number comparison helpers (mod 2^32).
inline bool SeqLt(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) < 0;
}
inline bool SeqLe(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) <= 0;
}
inline bool SeqGt(std::uint32_t a, std::uint32_t b) { return SeqLt(b, a); }
inline bool SeqGe(std::uint32_t a, std::uint32_t b) { return SeqLe(b, a); }

}  // namespace upr

#endif  // SRC_TCP_TCP_H_
