#include "src/tcp/tcp.h"

#include <algorithm>
#include <cstdio>

#include "src/util/crc.h"
#include "src/util/logging.h"

namespace upr {

namespace {

constexpr const char* kTag = "tcp";

std::uint32_t PseudoHeaderSum(IpV4Address src, IpV4Address dst, std::size_t tcp_len) {
  std::uint32_t sum = 0;
  sum += src.value() >> 16;
  sum += src.value() & 0xFFFF;
  sum += dst.value() >> 16;
  sum += dst.value() & 0xFFFF;
  sum += kIpProtoTcp;
  sum += static_cast<std::uint32_t>(tcp_len);
  return sum;
}

}  // namespace

// --- Codec -------------------------------------------------------------------

void TcpSegment::EncodeTo(PacketBuf* pb, IpV4Address src, IpV4Address dst) const {
  BufLayerScope scope(BufLayer::kTransport);
  std::size_t header_words = 5 + (mss_option ? 1 : 0);
  std::size_t hlen = header_words * 4;
  std::uint8_t* h = pb->Prepend(hlen);
  h[0] = static_cast<std::uint8_t>(source_port >> 8);
  h[1] = static_cast<std::uint8_t>(source_port);
  h[2] = static_cast<std::uint8_t>(destination_port >> 8);
  h[3] = static_cast<std::uint8_t>(destination_port);
  h[4] = static_cast<std::uint8_t>(seq >> 24);
  h[5] = static_cast<std::uint8_t>(seq >> 16);
  h[6] = static_cast<std::uint8_t>(seq >> 8);
  h[7] = static_cast<std::uint8_t>(seq);
  h[8] = static_cast<std::uint8_t>(ack >> 24);
  h[9] = static_cast<std::uint8_t>(ack >> 16);
  h[10] = static_cast<std::uint8_t>(ack >> 8);
  h[11] = static_cast<std::uint8_t>(ack);
  std::uint8_t flag_bits = static_cast<std::uint8_t>(
      (flags.fin ? 0x01 : 0) | (flags.syn ? 0x02 : 0) | (flags.rst ? 0x04 : 0) |
      (flags.psh ? 0x08 : 0) | (flags.ack ? 0x10 : 0) | (flags.urg ? 0x20 : 0));
  h[12] = static_cast<std::uint8_t>(header_words << 4);
  h[13] = flag_bits;
  h[14] = static_cast<std::uint8_t>(window >> 8);
  h[15] = static_cast<std::uint8_t>(window);
  h[16] = 0;  // checksum placeholder
  h[17] = 0;
  h[18] = 0;  // urgent pointer
  h[19] = 0;
  if (mss_option) {
    h[20] = 2;  // kind: MSS
    h[21] = 4;
    h[22] = static_cast<std::uint8_t>(*mss_option >> 8);
    h[23] = static_cast<std::uint8_t>(*mss_option);
  }
  std::uint16_t sum =
      ChecksumFinish(ChecksumPartial(pb->data(), pb->size(),
                                     PseudoHeaderSum(src, dst, pb->size())));
  h[16] = static_cast<std::uint8_t>(sum >> 8);
  h[17] = static_cast<std::uint8_t>(sum & 0xFF);
}

Bytes TcpSegment::Encode(IpV4Address src, IpV4Address dst) const {
  std::size_t hlen = (5 + (mss_option ? 1 : 0)) * 4;
  PacketBuf pb = PacketBuf::FromView(payload, hlen);
  EncodeTo(&pb, src, dst);
  return pb.Release();
}

std::optional<TcpSegment> TcpSegment::Decode(ByteView wire, IpV4Address src,
                                             IpV4Address dst) {
  if (wire.size() < 20) {
    return std::nullopt;
  }
  if (ChecksumFinish(ChecksumPartial(wire.data(), wire.size(),
                                     PseudoHeaderSum(src, dst, wire.size()))) != 0) {
    return std::nullopt;
  }
  ByteReader r(wire.data(), wire.size());
  TcpSegment s;
  s.source_port = r.ReadU16();
  s.destination_port = r.ReadU16();
  s.seq = r.ReadU32();
  s.ack = r.ReadU32();
  std::uint8_t offset_byte = r.ReadU8();
  std::size_t header_len = static_cast<std::size_t>(offset_byte >> 4) * 4;
  if (header_len < 20 || header_len > wire.size()) {
    return std::nullopt;
  }
  std::uint8_t flag_bits = r.ReadU8();
  s.flags.fin = flag_bits & 0x01;
  s.flags.syn = flag_bits & 0x02;
  s.flags.rst = flag_bits & 0x04;
  s.flags.psh = flag_bits & 0x08;
  s.flags.ack = flag_bits & 0x10;
  s.flags.urg = flag_bits & 0x20;
  s.window = r.ReadU16();
  r.Skip(4);  // checksum + urgent
  // Parse options.
  std::size_t opt_len = header_len - 20;
  Bytes opts = r.ReadBytes(opt_len);
  for (std::size_t i = 0; i < opts.size();) {
    std::uint8_t kind = opts[i];
    if (kind == 0) {
      break;  // end of options
    }
    if (kind == 1) {
      ++i;  // NOP
      continue;
    }
    if (i + 1 >= opts.size()) {
      break;
    }
    std::uint8_t len = opts[i + 1];
    if (len < 2 || i + len > opts.size()) {
      break;
    }
    if (kind == 2 && len == 4) {
      s.mss_option = static_cast<std::uint16_t>(opts[i + 2] << 8 | opts[i + 3]);
    }
    i += len;
  }
  {
    BufLayerScope scope(BufLayer::kTransport);
    if (wire.size() > header_len) {
      BufNoteAlloc();
      BufNoteCopy(wire.size() - header_len);
    }
  }
  s.payload.assign(wire.begin() + static_cast<std::ptrdiff_t>(header_len), wire.end());
  if (!r.ok()) {
    return std::nullopt;
  }
  return s;
}

std::string TcpSegment::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%u>%u seq=%u ack=%u%s%s%s%s%s win=%u len=%zu",
                source_port, destination_port, seq, ack, flags.syn ? " SYN" : "",
                flags.ack ? " ACK" : "", flags.fin ? " FIN" : "", flags.rst ? " RST" : "",
                flags.psh ? " PSH" : "", window, payload.size());
  return buf;
}

// --- RTO estimator ------------------------------------------------------------

RtoEstimator::RtoEstimator(const TcpConfig& config)
    : config_(config), srtt_(config.initial_rtt), rttvar_(config.initial_rtt / 2) {}

void RtoEstimator::Sample(SimTime rtt) {
  ++samples_;
  switch (config_.rto_algorithm) {
    case RtoAlgorithm::kFixed:
      return;
    case RtoAlgorithm::kRfc793:
      // SRTT = ALPHA*SRTT + (1-ALPHA)*RTT with ALPHA = 0.9.
      srtt_ = static_cast<SimTime>(0.9 * static_cast<double>(srtt_) +
                                   0.1 * static_cast<double>(rtt));
      return;
    case RtoAlgorithm::kJacobson:
      if (samples_ == 1) {
        srtt_ = rtt;
        rttvar_ = rtt / 2;
      } else {
        SimTime err = rtt - srtt_;
        srtt_ += err / 8;
        SimTime abserr = err < 0 ? -err : err;
        rttvar_ += (abserr - rttvar_) / 4;
      }
      return;
  }
}

SimTime RtoEstimator::Timeout() const {
  SimTime rto;
  switch (config_.rto_algorithm) {
    case RtoAlgorithm::kFixed:
      return config_.fixed_rto;
    case RtoAlgorithm::kRfc793:
      rto = 2 * srtt_;  // BETA = 2
      break;
    case RtoAlgorithm::kJacobson:
      rto = srtt_ + 4 * rttvar_;
      break;
    default:
      rto = config_.fixed_rto;
      break;
  }
  return std::clamp(rto, config_.min_rto, config_.max_rto);
}

SimTime RtoEstimator::BackedOff(int backoffs) const {
  SimTime rto = Timeout();
  if (!config_.exponential_backoff) {
    return rto;
  }
  for (int i = 0; i < backoffs && rto < config_.max_rto; ++i) {
    rto *= 2;
  }
  return std::min(rto, config_.max_rto);
}

// --- State names ----------------------------------------------------------------

const char* TcpStateName(TcpState s) {
  switch (s) {
    case TcpState::kClosed:
      return "CLOSED";
    case TcpState::kListen:
      return "LISTEN";
    case TcpState::kSynSent:
      return "SYN_SENT";
    case TcpState::kSynReceived:
      return "SYN_RCVD";
    case TcpState::kEstablished:
      return "ESTABLISHED";
    case TcpState::kFinWait1:
      return "FIN_WAIT_1";
    case TcpState::kFinWait2:
      return "FIN_WAIT_2";
    case TcpState::kCloseWait:
      return "CLOSE_WAIT";
    case TcpState::kClosing:
      return "CLOSING";
    case TcpState::kLastAck:
      return "LAST_ACK";
    case TcpState::kTimeWait:
      return "TIME_WAIT";
  }
  return "?";
}

// --- TcpConnection ----------------------------------------------------------------

TcpConnection::TcpConnection(Tcp* tcp, TcpConfig config)
    : tcp_(tcp), config_(config), rto_(config) {
  advertised_window_ = config_.receive_window;
  rtx_timer_ = std::make_unique<Timer>(tcp->sim(), [this] { OnRetransmitTimeout(); });
  persist_timer_ = std::make_unique<Timer>(tcp->sim(), [this] { OnPersistTimeout(); });
  delack_timer_ = std::make_unique<Timer>(tcp->sim(), [this] { SendAck(); });
  misc_timer_ = std::make_unique<Timer>(tcp->sim(), [this] {
    if (state_ == TcpState::kSynSent || state_ == TcpState::kSynReceived) {
      Terminate("connection timed out", true);
    } else if (state_ == TcpState::kTimeWait) {
      Terminate("", false);
    }
  });
  cwnd_ = config_.mss;
}

void TcpConnection::StartConnect(IpV4Address dst, std::uint16_t dport,
                                 std::uint16_t sport, IpV4Address src) {
  local_ip_ = src;
  remote_ip_ = dst;
  local_port_ = sport;
  remote_port_ = dport;
  std::uint32_t iss = tcp_->NextIss();
  snd_una_ = iss;
  snd_nxt_ = iss + 1;
  snd_wnd_ = config_.mss;  // until the peer tells us
  state_ = TcpState::kSynSent;
  InFlight syn;
  syn.seq = iss;
  syn.syn = true;
  in_flight_.push_back(std::move(syn));
  TransmitSegment(&in_flight_.back(), false);
  RestartRetransmitTimer();
  misc_timer_->Restart(config_.connect_timeout);
}

void TcpConnection::StartAccept(IpV4Address local, std::uint16_t lport,
                                IpV4Address remote, std::uint16_t rport,
                                const TcpSegment& syn) {
  local_ip_ = local;
  remote_ip_ = remote;
  local_port_ = lport;
  remote_port_ = rport;
  rcv_nxt_ = syn.seq + 1;
  peer_mss_ = syn.mss_option.value_or(536);
  snd_wnd_ = syn.window;
  std::uint32_t iss = tcp_->NextIss();
  snd_una_ = iss;
  snd_nxt_ = iss + 1;
  state_ = TcpState::kSynReceived;
  InFlight synack;
  synack.seq = iss;
  synack.syn = true;
  in_flight_.push_back(std::move(synack));
  TransmitSegment(&in_flight_.back(), false);
  RestartRetransmitTimer();
  misc_timer_->Restart(config_.connect_timeout);
}

std::size_t TcpConnection::Send(const Bytes& data) {
  if (state_ != TcpState::kEstablished && state_ != TcpState::kCloseWait &&
      state_ != TcpState::kSynSent && state_ != TcpState::kSynReceived) {
    return 0;
  }
  if (fin_requested_) {
    return 0;
  }
  std::size_t room = config_.send_buffer_limit > send_buffer_.size()
                         ? config_.send_buffer_limit - send_buffer_.size()
                         : 0;
  std::size_t n = std::min(room, data.size());
  send_buffer_.insert(send_buffer_.end(), data.begin(),
                      data.begin() + static_cast<std::ptrdiff_t>(n));
  PumpOutput();
  return n;
}

void TcpConnection::Close() {
  if (fin_requested_ || state_ == TcpState::kClosed || state_ == TcpState::kTimeWait) {
    return;
  }
  fin_requested_ = true;
  PumpOutput();
}

void TcpConnection::Abort() {
  if (state_ == TcpState::kClosed) {
    return;
  }
  TcpSegment rst;
  rst.source_port = local_port_;
  rst.destination_port = remote_port_;
  rst.seq = snd_nxt_;
  rst.ack = rcv_nxt_;
  rst.flags.rst = true;
  rst.flags.ack = true;
  rst.window = 0;
  tcp_->SendSegment(rst, local_ip_, remote_ip_);
  Terminate("aborted", false);
}

void TcpConnection::PumpOutput() {
  if (state_ != TcpState::kEstablished && state_ != TcpState::kCloseWait) {
    return;
  }
  std::size_t flight = static_cast<std::size_t>(snd_nxt_ - snd_una_);
  std::size_t window = snd_wnd_;
  if (config_.slow_start) {
    window = std::min<std::size_t>(window, cwnd_);
  }
  // Zero-window deadlock avoidance: with data pending, nothing in flight and
  // the peer's window shut, arm the persist timer to probe.
  if (snd_wnd_ == 0 && !send_buffer_.empty() && in_flight_.empty() &&
      !persist_timer_->running()) {
    persist_timer_->Restart(rto_.BackedOff(persist_backoffs_));
  }
  while (!send_buffer_.empty() && flight < window) {
    std::size_t n = std::min<std::size_t>(
        {static_cast<std::size_t>(std::min<std::uint16_t>(config_.mss, peer_mss_)),
         send_buffer_.size(), window - flight});
    if (n == 0) {
      break;
    }
    InFlight item;
    item.seq = snd_nxt_;
    item.data.assign(send_buffer_.begin(),
                     send_buffer_.begin() + static_cast<std::ptrdiff_t>(n));
    send_buffer_.erase(send_buffer_.begin(),
                       send_buffer_.begin() + static_cast<std::ptrdiff_t>(n));
    snd_nxt_ += static_cast<std::uint32_t>(n);
    flight += n;
    in_flight_.push_back(std::move(item));
    TransmitSegment(&in_flight_.back(), false);
  }
  if (fin_requested_ && !fin_enqueued_ && send_buffer_.empty()) {
    EnqueueFin();
  }
  if (!in_flight_.empty() && !rtx_timer_->running()) {
    RestartRetransmitTimer();
  }
}

void TcpConnection::EnqueueFin() {
  fin_enqueued_ = true;
  InFlight fin;
  fin.seq = snd_nxt_;
  fin.fin = true;
  snd_nxt_ += 1;
  in_flight_.push_back(std::move(fin));
  if (state_ == TcpState::kEstablished) {
    state_ = TcpState::kFinWait1;
  } else if (state_ == TcpState::kCloseWait) {
    state_ = TcpState::kLastAck;
  }
  TransmitSegment(&in_flight_.back(), false);
  RestartRetransmitTimer();
}

void TcpConnection::TransmitSegment(InFlight* item, bool retransmission) {
  TcpSegment seg;
  seg.source_port = local_port_;
  seg.destination_port = remote_port_;
  seg.seq = item->seq;
  seg.flags.syn = item->syn;
  seg.flags.fin = item->fin;
  if (state_ != TcpState::kSynSent) {
    seg.flags.ack = true;
    seg.ack = rcv_nxt_;
    unacked_in_order_ = 0;
    delack_timer_->Stop();
  }
  if (item->syn) {
    seg.mss_option = config_.mss;
  }
  if (!item->data.empty()) {
    seg.flags.psh = true;
    seg.payload = item->data;
  }
  seg.window = advertised_window_;
  SimTime now = tcp_->sim()->Now();
  if (item->transmissions == 0) {
    item->first_sent = now;
  } else {
    item->retransmitted = true;
  }
  item->last_sent = now;
  ++item->transmissions;
  ++stats_.segments_sent;
  stats_.bytes_sent += item->data.size();
  if (retransmission) {
    ++stats_.retransmissions;
  }
  tcp_->SendSegment(seg, local_ip_, remote_ip_);
}

void TcpConnection::SendControl(TcpFlags flags, std::uint32_t seq, bool with_ack) {
  TcpSegment seg;
  seg.source_port = local_port_;
  seg.destination_port = remote_port_;
  seg.seq = seq;
  seg.flags = flags;
  if (with_ack) {
    seg.flags.ack = true;
    seg.ack = rcv_nxt_;
  }
  seg.window = advertised_window_;
  ++stats_.segments_sent;
  tcp_->SendSegment(seg, local_ip_, remote_ip_);
}

void TcpConnection::SendAck() {
  unacked_in_order_ = 0;
  delack_timer_->Stop();
  SendControl(TcpFlags{}, snd_nxt_, true);
}

void TcpConnection::AckIncoming(bool force_immediate) {
  if (force_immediate || !config_.delayed_ack) {
    SendAck();
    return;
  }
  if (++unacked_in_order_ >= 2) {
    SendAck();
    return;
  }
  if (!delack_timer_->running()) {
    delack_timer_->Restart(config_.delayed_ack_timeout);
  }
}

void TcpConnection::RestartRetransmitTimer() {
  if (in_flight_.empty()) {
    rtx_timer_->Stop();
    return;
  }
  rtx_timer_->Restart(rto_.BackedOff(backoffs_));
}

void TcpConnection::OnPersistTimeout() {
  if (state_ != TcpState::kEstablished && state_ != TcpState::kCloseWait) {
    return;
  }
  if (snd_wnd_ > 0 || send_buffer_.empty()) {
    persist_backoffs_ = 0;
    PumpOutput();
    return;
  }
  if (in_flight_.empty()) {
    // Window probe: one byte beyond the advertised window (RFC 1122
    // 4.2.2.17). The ACK it provokes carries the peer's current window.
    InFlight probe;
    probe.seq = snd_nxt_;
    probe.data.assign(send_buffer_.begin(), send_buffer_.begin() + 1);
    send_buffer_.erase(send_buffer_.begin());
    snd_nxt_ += 1;
    in_flight_.push_back(std::move(probe));
    TransmitSegment(&in_flight_.back(), false);
    RestartRetransmitTimer();
  }
  if (persist_backoffs_ < 12) {
    ++persist_backoffs_;
  }
  persist_timer_->Restart(rto_.BackedOff(persist_backoffs_));
}

void TcpConnection::OnRetransmitTimeout() {
  if (in_flight_.empty()) {
    return;
  }
  InFlight& head = in_flight_.front();
  if (head.transmissions > config_.max_retries) {
    Terminate("retransmission limit exceeded", true);
    return;
  }
  if (config_.exponential_backoff) {
    ++backoffs_;
  }
  if (config_.slow_start) {
    ssthresh_ = std::max<std::size_t>(
        (static_cast<std::size_t>(snd_nxt_ - snd_una_)) / 2, 2 * config_.mss);
    cwnd_ = config_.mss;
  }
  TransmitSegment(&head, true);
  RestartRetransmitTimer();
}

void TcpConnection::HandleAck(const TcpSegment& seg) {
  if (!seg.flags.ack) {
    return;
  }
  if (SeqGt(seg.ack, snd_nxt_)) {
    SendAck();  // acking the future: tell them where we are
    return;
  }
  snd_wnd_ = seg.window;
  if (SeqLe(seg.ack, snd_una_)) {
    return;  // duplicate or old ACK
  }
  SimTime now = tcp_->sim()->Now();
  bool fin_acked = false;
  while (!in_flight_.empty()) {
    InFlight& item = in_flight_.front();
    std::uint32_t item_end = item.seq + static_cast<std::uint32_t>(SequenceLength(item));
    if (SeqGt(item_end, seg.ack)) {
      break;
    }
    // RTT sampling. Karn's rule (Jacobson): never sample retransmitted
    // segments. RFC 793 as commonly implemented pre-Karn: sample everything,
    // timing from the first transmission.
    if (!item.retransmitted) {
      SimTime rtt = now - item.first_sent;
      rto_.Sample(rtt);
      if (min_rtt_seen_ == 0 || rtt < min_rtt_seen_) {
        min_rtt_seen_ = rtt;
      }
    } else {
      if (config_.rto_algorithm == RtoAlgorithm::kRfc793) {
        rto_.Sample(now - item.first_sent);
      }
      // Spurious-retransmission detection: the ACK landed sooner after our
      // retransmission than half the fastest RTT ever seen, so it must have
      // been triggered by the original copy (§4.1's needless retransmits).
      if (min_rtt_seen_ > 0 && now - item.last_sent < min_rtt_seen_ / 2) {
        ++stats_.spurious_retransmissions;
      }
    }
    if (item.fin) {
      fin_acked = true;
    }
    if (config_.slow_start) {
      if (cwnd_ < ssthresh_) {
        cwnd_ += config_.mss;  // slow start
      } else {
        cwnd_ += std::max<std::size_t>(1, config_.mss * config_.mss / cwnd_);
      }
    }
    in_flight_.pop_front();
  }
  snd_una_ = seg.ack;
  backoffs_ = 0;
  RestartRetransmitTimer();
  if (snd_wnd_ > 0 && persist_timer_->running()) {
    persist_timer_->Stop();
    persist_backoffs_ = 0;
  }

  if (fin_acked) {
    if (state_ == TcpState::kFinWait1) {
      state_ = TcpState::kFinWait2;
    } else if (state_ == TcpState::kClosing) {
      EnterTimeWait();
    } else if (state_ == TcpState::kLastAck) {
      Terminate("", false);
      return;
    }
  }
  PumpOutput();
}

void TcpConnection::HandleData(const TcpSegment& seg) {
  if (seg.payload.empty()) {
    return;
  }
  if (seg.seq == rcv_nxt_) {
    rcv_nxt_ += static_cast<std::uint32_t>(seg.payload.size());
    stats_.bytes_received += seg.payload.size();
    if (on_data_) {
      on_data_(seg.payload);
    }
    // Drain any queued out-of-order continuation.
    auto it = out_of_order_.find(rcv_nxt_);
    while (it != out_of_order_.end()) {
      Bytes data = std::move(it->second);
      out_of_order_.erase(it);
      rcv_nxt_ += static_cast<std::uint32_t>(data.size());
      stats_.bytes_received += data.size();
      if (on_data_) {
        on_data_(data);
      }
      it = out_of_order_.find(rcv_nxt_);
    }
    AckIncoming(/*force_immediate=*/false);
    return;
  }
  if (SeqLt(seg.seq, rcv_nxt_)) {
    ++stats_.duplicate_segments;
  } else {
    ++stats_.out_of_order_segments;
    if (out_of_order_.size() < 64) {
      out_of_order_.emplace(seg.seq, seg.payload);
    }
  }
  // Duplicate or gap: ack immediately so the sender learns where we are.
  SendAck();
}

void TcpConnection::HandleSegment(const TcpSegment& seg) {
  ++stats_.segments_received;
  if (seg.flags.rst) {
    if (state_ != TcpState::kClosed) {
      Terminate("connection reset by peer", true);
    }
    return;
  }

  if (state_ == TcpState::kSynSent) {
    if (seg.flags.syn && seg.flags.ack && seg.ack == snd_una_ + 1) {
      rcv_nxt_ = seg.seq + 1;
      peer_mss_ = seg.mss_option.value_or(536);
      HandleAck(seg);
      state_ = TcpState::kEstablished;
      misc_timer_->Stop();
      SendAck();
      if (on_connected_) {
        on_connected_();
      }
      PumpOutput();
    } else if (seg.flags.syn && !seg.flags.ack) {
      // Simultaneous open.
      rcv_nxt_ = seg.seq + 1;
      peer_mss_ = seg.mss_option.value_or(536);
      state_ = TcpState::kSynReceived;
      if (!in_flight_.empty()) {
        TransmitSegment(&in_flight_.front(), true);  // now carries the ACK
      }
    }
    return;
  }

  if (state_ == TcpState::kSynReceived) {
    if (seg.flags.ack && seg.ack == snd_una_ + 1) {
      HandleAck(seg);
      state_ = TcpState::kEstablished;
      misc_timer_->Stop();
      if (on_connected_) {
        on_connected_();
      }
      // Fall through: the segment may carry data.
    } else if (seg.flags.syn) {
      // Duplicate SYN: re-answer.
      if (!in_flight_.empty()) {
        TransmitSegment(&in_flight_.front(), true);
      }
      return;
    } else {
      return;
    }
  }

  if (state_ == TcpState::kTimeWait) {
    if (seg.flags.fin) {
      SendAck();
      misc_timer_->Restart(config_.time_wait);
    }
    return;
  }

  if (seg.flags.syn) {
    // SYN on a synchronized connection: peer rebooted or is confused.
    SendAck();
    return;
  }

  HandleAck(seg);
  if (state_ == TcpState::kClosed) {
    return;  // HandleAck may have terminated (LAST_ACK)
  }
  HandleData(seg);

  if (seg.flags.fin) {
    std::uint32_t fin_seq = seg.seq + static_cast<std::uint32_t>(seg.payload.size());
    if (fin_seq == rcv_nxt_ && !remote_fin_seen_) {
      remote_fin_seen_ = true;
      rcv_nxt_ += 1;
      SendAck();
      switch (state_) {
        case TcpState::kEstablished:
          state_ = TcpState::kCloseWait;
          break;
        case TcpState::kFinWait1:
          // Our FIN not yet acked (else we'd be in FIN_WAIT_2).
          state_ = TcpState::kClosing;
          break;
        case TcpState::kFinWait2:
          EnterTimeWait();
          break;
        default:
          break;
      }
      // Callback last: a Close() inside it must see CLOSE_WAIT and take the
      // LAST_ACK path.
      if (on_remote_closed_) {
        on_remote_closed_();
      }
    } else if (SeqLt(fin_seq, rcv_nxt_)) {
      SendAck();  // retransmitted FIN
    }
  }
}

void TcpConnection::EnterTimeWait() {
  state_ = TcpState::kTimeWait;
  rtx_timer_->Stop();
  in_flight_.clear();
  misc_timer_->Restart(config_.time_wait);
}

void TcpConnection::set_advertised_window(std::uint16_t window) {
  bool opening = advertised_window_ == 0 && window > 0;
  advertised_window_ = window;
  if (opening && state_ == TcpState::kEstablished) {
    SendAck();  // window update so the stalled peer resumes promptly
  }
}

void TcpConnection::Terminate(const std::string& reason, bool notify_error) {
  if (state_ == TcpState::kClosed) {
    return;
  }
  UPR_DEBUG(kTag, "%s:%u terminate: %s", local_ip_.ToString().c_str(), local_port_,
            reason.empty() ? "closed" : reason.c_str());
  state_ = TcpState::kClosed;
  rtx_timer_->Stop();
  misc_timer_->Stop();
  persist_timer_->Stop();
  in_flight_.clear();
  send_buffer_.clear();
  if (notify_error && on_error_) {
    on_error_(reason);
  }
  if (on_closed_) {
    on_closed_();
  }
}

// --- Tcp ------------------------------------------------------------------------

Tcp::Tcp(NetStack* stack, TcpConfig default_config, std::uint64_t seed)
    : stack_(stack), default_config_(default_config), rng_(seed) {
  stack_->RegisterProtocol(kIpProtoTcp,
                           [this](const Ipv4Header& h, ByteView p, NetInterface* in) {
                             HandleInput(h, p, in);
                           });
  stack_->icmp().set_error_handler(
      [this](const Ipv4Header& outer, const IcmpMessage& msg) {
        HandleIcmpError(outer, msg);
      });
}

void Tcp::HandleIcmpError(const Ipv4Header& outer, const IcmpMessage& msg) {
  if (msg.type != kIcmpUnreachable) {
    return;
  }
  // Hard errors only; net/host unreachable and time-exceeded are transient
  // on a network whose links come and go with the weather.
  if (msg.code != kUnreachPort && msg.code != kUnreachProtocol &&
      msg.code != kUnreachAdminProhibited) {
    return;
  }
  // Body: 4 unused bytes, then the offending IP header + >= 8 payload bytes.
  if (msg.body.size() < 4) {
    return;
  }
  Bytes inner(msg.body.begin() + 4, msg.body.end());
  auto orig = Ipv4Header::Decode(inner);
  if (!orig || orig->header.protocol != kIpProtoTcp || orig->payload.size() < 4) {
    return;
  }
  std::uint16_t sport = static_cast<std::uint16_t>(orig->payload[0] << 8 |
                                                   orig->payload[1]);
  std::uint16_t dport = static_cast<std::uint16_t>(orig->payload[2] << 8 |
                                                   orig->payload[3]);
  ConnKey key{orig->header.source.value(), orig->header.destination.value(), sport,
              dport};
  auto it = connections_.find(key);
  if (it != connections_.end()) {
    it->second->Terminate("destination unreachable (ICMP code " +
                              std::to_string(msg.code) + ")",
                          true);
  }
}

Tcp::~Tcp() = default;

std::uint16_t Tcp::AllocatePort() {
  for (int attempts = 0; attempts < 65536; ++attempts) {
    std::uint16_t p = next_ephemeral_++;
    if (next_ephemeral_ == 0) {
      next_ephemeral_ = 1024;
    }
    if (p < 1024) {
      continue;
    }
    bool used = false;
    for (const auto& [key, conn] : connections_) {
      if (key.local_port == p) {
        used = true;
        break;
      }
    }
    if (!used) {
      return p;
    }
  }
  return 0;
}

TcpConnection* Tcp::Connect(IpV4Address dst, std::uint16_t dport,
                            std::optional<TcpConfig> config) {
  const Route* route = stack_->routes().Lookup(dst);
  if (route == nullptr || route->interface == nullptr) {
    UPR_DEBUG(kTag, "connect: no route to %s", dst.ToString().c_str());
    return nullptr;
  }
  IpV4Address src = route->interface->address();
  std::uint16_t sport = AllocatePort();
  ConnKey key{src.value(), dst.value(), sport, dport};
  TcpConfig conn_config = config.value_or(default_config_);
  // Advertise an MSS that fits the outgoing interface without IP
  // fragmentation (4.3BSD: MTU minus 40 bytes of IP+TCP header).
  if (route->interface->mtu() > 40) {
    conn_config.mss = std::min<std::uint16_t>(
        conn_config.mss, static_cast<std::uint16_t>(route->interface->mtu() - 40));
  }
  auto conn = std::unique_ptr<TcpConnection>(new TcpConnection(this, conn_config));
  TcpConnection* raw = conn.get();
  connections_[key] = std::move(conn);
  raw->StartConnect(dst, dport, sport, src);
  return raw;
}

void Tcp::Listen(std::uint16_t port, AcceptHandler on_accept,
                 std::optional<TcpConfig> config) {
  listeners_[port] = Listener{std::move(on_accept), config.value_or(default_config_)};
}

void Tcp::StopListening(std::uint16_t port) { listeners_.erase(port); }

void Tcp::ReapClosed() {
  for (auto it = connections_.begin(); it != connections_.end();) {
    if (it->second->state() == TcpState::kClosed) {
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void Tcp::HandleInput(const Ipv4Header& ip, ByteView payload, NetInterface* in) {
  auto seg = TcpSegment::Decode(payload, ip.source, ip.destination);
  if (!seg) {
    return;
  }
  ++segments_demuxed_;
  ConnKey key{ip.destination.value(), ip.source.value(), seg->destination_port,
              seg->source_port};
  auto it = connections_.find(key);
  if (it != connections_.end()) {
    it->second->HandleSegment(*seg);
    return;
  }
  // No connection. A SYN may match a listener.
  auto lit = listeners_.find(seg->destination_port);
  if (lit != listeners_.end() && seg->flags.syn && !seg->flags.ack) {
    TcpConfig conn_config = lit->second.config;
    if (in != nullptr && in->mtu() > 40) {
      conn_config.mss = std::min<std::uint16_t>(
          conn_config.mss, static_cast<std::uint16_t>(in->mtu() - 40));
    }
    auto conn = std::unique_ptr<TcpConnection>(new TcpConnection(this, conn_config));
    TcpConnection* raw = conn.get();
    connections_[key] = std::move(conn);
    raw->StartAccept(ip.destination, seg->destination_port, ip.source,
                     seg->source_port, *seg);
    if (lit->second.on_accept) {
      lit->second.on_accept(raw);
    }
    return;
  }
  if (!seg->flags.rst) {
    SendReset(*seg, ip.destination, ip.source);
  }
}

void Tcp::SendSegment(const TcpSegment& seg, IpV4Address src, IpV4Address dst) {
  NetStack::SendOptions opts;
  opts.source = src;
  // One PacketBuf end to end: the payload is copied into headroom-reserved
  // storage once and every layer below prepends in place.
  PacketBuf pb;
  {
    BufLayerScope scope(BufLayer::kTransport);
    pb = PacketBuf::FromView(seg.payload, PacketBuf::kDefaultHeadroom);
  }
  seg.EncodeTo(&pb, src, dst);
  stack_->SendDatagram(dst, kIpProtoTcp, std::move(pb), opts);
}

void Tcp::SendReset(const TcpSegment& offending, IpV4Address src, IpV4Address dst) {
  TcpSegment rst;
  rst.source_port = offending.destination_port;
  rst.destination_port = offending.source_port;
  if (offending.flags.ack) {
    rst.seq = offending.ack;
  } else {
    rst.flags.ack = true;
    rst.ack = offending.seq + static_cast<std::uint32_t>(offending.payload.size()) +
              (offending.flags.syn ? 1 : 0) + (offending.flags.fin ? 1 : 0);
  }
  rst.flags.rst = true;
  ++resets_sent_;
  SendSegment(rst, src, dst);
}

}  // namespace upr
