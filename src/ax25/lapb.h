// AX.25 connected mode ("level 2"): the balanced link-layer state machine
// used by TNCs for interactive connections (what the paper's §2.4 calls
// "AX.25 level 3 connections" kept by a user program, and what the BBS
// scenarios in §1 run over).
//
// Implements the SABM/UA/DISC/DM handshake, I-frame sequencing generic over
// the link modulus (8 or 128) with a configurable window, RR/RNR/REJ/SREJ
// supervisory handling, the T1 retransmission timer with N2 retry limit, and
// outbound segmentation into PACLEN-sized I frames.
//
// Two dialects are supported per link:
//   - kV20 (default): classic AX.25 v2.0. Mod-8, REJ-only go-back-N, no XID.
//     Wire behaviour is byte-identical to the pre-v2.2 implementation (the
//     seeded goldens in tests/golden/ pin this).
//   - kV22: AX.25 v2.2. An initiator first sends an XID command offering
//     mod-128 + SREJ + its window; a v2.2 responder answers with the
//     negotiated (min) parameters and the link is established with SABME. A
//     v2.0 peer answers the XID with DM (unknown-peer rule) or ignores it
//     (known connection), and after the XID retry budget the initiator
//     downgrades to a plain SABM — so v2.2-configured stations interoperate
//     with v2.0 ones automatically, frame-for-frame like a v2.0 station.
#ifndef SRC_AX25_LAPB_H_
#define SRC_AX25_LAPB_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "src/ax25/frame.h"
#include "src/sim/simulator.h"
#include "src/util/byte_buffer.h"

namespace upr {

// Which AX.25 revision a link speaks when *initiating*. Incoming SABM is
// always accepted (mod 8); incoming XID/SABME only when the dialect is kV22.
enum class Ax25Dialect : std::uint8_t {
  kV20,  // AX.25 v2.0: mod 8, REJ-only, no XID
  kV22,  // AX.25 v2.2: XID negotiation, mod 128 via SABME, SREJ
};

inline const char* Ax25DialectName(Ax25Dialect d) {
  return d == Ax25Dialect::kV22 ? "2.2" : "2.0";
}

struct Ax25LinkConfig {
  SimTime t1 = Seconds(10);        // retransmission timeout (frame ack wait)
  // T3: idle-link probe. After this long with no frames from the peer, poll
  // with RR P=1; an unresponsive peer is declared down after N2 retries.
  // Zero disables keepalive.
  SimTime t3 = Seconds(300);
  int n2 = 10;                     // max retries before declaring link failure
  std::uint8_t window = 4;         // k: max outstanding I frames
                                   // (1..7 for v2.0, 1..127 for v2.2)
  std::size_t paclen = 128;        // max info bytes per I frame
  // Protocol ID carried in I frames: kPidNoLayer3 for plain connected-mode
  // text, kPidIp when the circuit carries IP datagrams (KA9Q "VC mode").
  std::uint8_t pid = kPidNoLayer3;
  Ax25Dialect dialect = Ax25Dialect::kV20;
  // Largest I-field we advertise in XID (N1, bytes). Also bounds the
  // effective paclen after negotiation.
  std::size_t max_i_field = kAx25MaxInfo;
};

// The LAPB state machine predates its AX.25 packaging; some call sites (TNC
// command tables, the ISSUE tracker) use the generic name.
using LapbConfig = Ax25LinkConfig;

// Per-link v2.2 protocol counters, aggregated over all connections.
struct Ax25LinkStats {
  std::uint64_t xid_sent = 0;
  std::uint64_t xid_received = 0;
  std::uint64_t srej_sent = 0;      // SREJ frames we transmitted
  std::uint64_t srej_received = 0;  // SREJ frames asking us to retransmit
  std::uint64_t downgrades = 0;     // v2.2 attempts that fell back to v2.0
  std::uint64_t mod128_links = 0;   // links established in extended mode
};

class Ax25Connection;

// Demultiplexes connected-mode traffic for one local address over one
// transmitter. Owns the per-peer connections.
class Ax25Link {
 public:
  using FrameSender = std::function<void(const Ax25Frame&)>;
  // Invoked for an incoming SABM from an unknown peer; return true to accept.
  using AcceptHandler = std::function<bool(const Ax25Address& peer)>;
  using ConnectionHandler = std::function<void(Ax25Connection*)>;

  Ax25Link(Simulator* sim, Ax25Address local, FrameSender sender,
           Ax25LinkConfig config = {});
  ~Ax25Link();

  const Ax25Address& local_address() const { return local_; }

  // Initiates an outgoing connection. `digis` is the source-routed digipeater
  // path. Returns the (link-owned) connection, already in the connecting
  // state.
  Ax25Connection* Connect(const Ax25Address& remote,
                          std::vector<Ax25Digipeater> digis = {});

  // Incoming-connection policy; default rejects (sends DM).
  void set_accept_handler(AcceptHandler h) { accept_ = std::move(h); }
  // Called when an accepted incoming connection reaches the connected state.
  void set_connection_handler(ConnectionHandler h) { on_connection_ = std::move(h); }

  // Feed a received frame addressed to `local_`. Returns true if consumed.
  bool HandleFrame(const Ax25Frame& frame);

  // Feed a frame that was pre-parsed with the mod-8 control layout, along
  // with the raw wire bytes it came from. If the frame belongs to a mod-128
  // connection the wire is re-parsed with the extended control layout first
  // (both layouts classify I/S/U identically from the first control byte, so
  // the mod-8 parse is sufficient to route; only sequence numbers differ).
  // This is the entry point drivers should use; HandleFrame alone is only
  // correct for frames that never left process memory.
  bool HandleDecoded(const Ax25Frame& frame, ByteView wire);

  Ax25Connection* FindConnection(const Ax25Address& peer);
  std::size_t connection_count() const { return connections_.size(); }

  // Applies a new configuration to future connections (existing ones keep
  // their negotiated parameters; timers read the new values live).
  void set_config(const Ax25LinkConfig& config) { config_ = config; }

  const Ax25LinkStats& stats() const { return stats_; }

  void VisitConnections(
      const std::function<void(const Ax25Connection&)>& fn) const;

  Simulator* sim() { return sim_; }
  const Ax25LinkConfig& config() const { return config_; }
  void SendFrame(const Ax25Frame& f) { sender_(f); }

  // Removes fully disconnected connections (called by users or tests; live
  // Ax25Connection pointers are invalidated).
  void ReapClosed();

 private:
  friend class Ax25Connection;

  Simulator* sim_;
  Ax25Address local_;
  FrameSender sender_;
  Ax25LinkConfig config_;
  AcceptHandler accept_;
  ConnectionHandler on_connection_;
  Ax25LinkStats stats_;
  std::map<Ax25Address, std::unique_ptr<Ax25Connection>> connections_;
};

class Ax25Connection {
 public:
  enum class State {
    kDisconnected,
    kNegotiating,    // XID command sent, awaiting XID response (v2.2 only)
    kConnecting,     // SABM/SABME sent, awaiting UA
    kConnected,
    kDisconnecting,  // DISC sent, awaiting UA
  };

  using DataHandler = std::function<void(const Bytes&)>;
  using EventHandler = std::function<void()>;

  Ax25Connection(Ax25Link* link, Ax25Address peer, std::vector<Ax25Digipeater> digis);

  State state() const { return state_; }
  const Ax25Address& peer() const { return peer_; }

  // Queues data; it is segmented into PACLEN I frames and delivered reliably
  // and in order.
  void Send(const Bytes& data);
  void Disconnect();

  void set_data_handler(DataHandler h) { on_data_ = std::move(h); }
  void set_connected_handler(EventHandler h) { on_connected_ = std::move(h); }
  void set_disconnected_handler(EventHandler h) { on_disconnected_ = std::move(h); }

  // Statistics.
  std::uint64_t i_frames_sent() const { return i_sent_; }
  std::uint64_t i_frames_resent() const { return i_resent_; }
  std::uint64_t bytes_delivered() const { return bytes_delivered_; }

  // Effective (post-negotiation) link parameters.
  Ax25Modulus modulus() const { return modulus_; }
  std::uint8_t window() const { return window_; }
  bool srej_enabled() const { return srej_enabled_; }
  std::size_t paclen() const { return paclen_; }
  // The dialect actually in effect on this connection: v2.2 once extended
  // mode is established, v2.0 otherwise (including after a downgrade).
  Ax25Dialect dialect() const {
    return modulus_ == Ax25Modulus::kMod128 ? Ax25Dialect::kV22
                                            : Ax25Dialect::kV20;
  }

 private:
  friend class Ax25Link;

  // Link parameters staged during establishment and applied atomically when
  // the connection (re)enters the connected state.
  struct PendingParams {
    Ax25Modulus modulus = Ax25Modulus::kMod8;
    std::uint8_t window = 4;
    bool srej = false;
    std::size_t paclen = 128;
  };

  void StartConnect();
  void HandleFrame(const Ax25Frame& f);
  void HandleI(const Ax25Frame& f);
  void HandleSrej(const Ax25Frame& f);
  void HandleXid(const Ax25Frame& f);
  void HandleAck(std::uint8_t nr);
  void PumpSendQueue();
  void DeliverData(const Bytes& info);
  void SendIFrame(std::uint8_t ns, bool retransmission, bool poll = false);
  void SendSupervisory(Ax25FrameType type, bool response, bool pf);
  void SendU(Ax25FrameType type, bool command, bool pf);
  void SendXid(bool command, const Ax25XidParams& params);
  void OnT1Expiry();
  void OnT3Expiry();
  void RestartT3();
  void EnterConnected();
  void EnterDisconnected();
  Ax25Frame BaseFrame(bool command) const;
  std::vector<Ax25Digipeater> ReturnPath() const;

  // Sequence arithmetic over the connection's current modulus.
  std::uint8_t ModM(int v) const {
    return static_cast<std::uint8_t>(v & (ModulusValue(modulus_) - 1));
  }
  // Number of frames in flight between V(A) (inclusive) and V(S) (exclusive).
  std::uint8_t Outstanding() const { return ModM(vs_ - va_); }

  // The XID offer derived from the link configuration.
  Ax25XidParams LocalXidOffer() const;
  // Parameter agreement: the intersection/minimum of our offer and theirs.
  static Ax25XidParams Agree(const Ax25XidParams& ours,
                             const Ax25XidParams& theirs);
  PendingParams ParamsFrom(const Ax25XidParams& agreed) const;
  PendingParams V20Params() const;
  // Stages `p` and sends SABM or SABME accordingly (v2.2 establishment step
  // after XID, or the downgrade path).
  void BeginEstablish(const PendingParams& p);
  void Downgrade(const char* why);

  Ax25Link* link_;
  Ax25Address peer_;
  std::vector<Ax25Digipeater> digis_;
  State state_ = State::kDisconnected;

  // Effective link parameters; defaults match v2.0. Re-negotiated values are
  // staged in pending_params_ and applied in EnterConnected.
  Ax25Modulus modulus_ = Ax25Modulus::kMod8;
  std::uint8_t window_ = 4;
  bool srej_enabled_ = false;
  std::size_t paclen_ = 128;
  std::optional<PendingParams> pending_params_;

  // Sequence variables (mod `modulus_`).
  std::uint8_t vs_ = 0;  // next N(S) to assign
  std::uint8_t va_ = 0;  // oldest unacknowledged N(S)
  std::uint8_t vr_ = 0;  // next expected N(S) from peer
  bool rej_outstanding_ = false;
  bool srej_outstanding_ = false;  // a SREJ for V(R) is in flight
  bool peer_busy_ = false;

  std::deque<Bytes> send_queue_;               // not yet assigned sequence numbers
  std::map<std::uint8_t, Bytes> outstanding_;  // ns -> info, awaiting ack
  // SREJ receive side: out-of-sequence I frames held until the gap at V(R)
  // fills, then delivered in order.
  std::map<std::uint8_t, Bytes> rx_pending_;

  Timer t1_;
  Timer t3_;
  int retry_count_ = 0;

  DataHandler on_data_;
  EventHandler on_connected_;
  EventHandler on_disconnected_;

  std::uint64_t i_sent_ = 0;
  std::uint64_t i_resent_ = 0;
  std::uint64_t bytes_delivered_ = 0;
};

}  // namespace upr

#endif  // SRC_AX25_LAPB_H_
