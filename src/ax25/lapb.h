// AX.25 v2.0 connected mode ("level 2"): the balanced link-layer state
// machine used by TNCs for interactive connections (what the paper's §2.4
// calls "AX.25 level 3 connections" kept by a user program, and what the BBS
// scenarios in §1 run over).
//
// Implements the SABM/UA/DISC/DM handshake, mod-8 I-frame sequencing with a
// configurable window, RR/RNR/REJ supervisory handling, the T1 retransmission
// timer with N2 retry limit, and outbound segmentation into PACLEN-sized
// I frames. SREJ and mod-128 extended mode are not implemented (they are not
// in AX.25 v2.0 either).
#ifndef SRC_AX25_LAPB_H_
#define SRC_AX25_LAPB_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "src/ax25/frame.h"
#include "src/sim/simulator.h"
#include "src/util/byte_buffer.h"

namespace upr {

struct Ax25LinkConfig {
  SimTime t1 = Seconds(10);        // retransmission timeout (frame ack wait)
  // T3: idle-link probe. After this long with no frames from the peer, poll
  // with RR P=1; an unresponsive peer is declared down after N2 retries.
  // Zero disables keepalive.
  SimTime t3 = Seconds(300);
  int n2 = 10;                     // max retries before declaring link failure
  std::uint8_t window = 4;         // k: max outstanding I frames (1..7)
  std::size_t paclen = 128;        // max info bytes per I frame
  // Protocol ID carried in I frames: kPidNoLayer3 for plain connected-mode
  // text, kPidIp when the circuit carries IP datagrams (KA9Q "VC mode").
  std::uint8_t pid = kPidNoLayer3;
};

class Ax25Connection;

// Demultiplexes connected-mode traffic for one local address over one
// transmitter. Owns the per-peer connections.
class Ax25Link {
 public:
  using FrameSender = std::function<void(const Ax25Frame&)>;
  // Invoked for an incoming SABM from an unknown peer; return true to accept.
  using AcceptHandler = std::function<bool(const Ax25Address& peer)>;
  using ConnectionHandler = std::function<void(Ax25Connection*)>;

  Ax25Link(Simulator* sim, Ax25Address local, FrameSender sender,
           Ax25LinkConfig config = {});
  ~Ax25Link();

  const Ax25Address& local_address() const { return local_; }

  // Initiates an outgoing connection. `digis` is the source-routed digipeater
  // path. Returns the (link-owned) connection, already in the connecting
  // state.
  Ax25Connection* Connect(const Ax25Address& remote,
                          std::vector<Ax25Digipeater> digis = {});

  // Incoming-connection policy; default rejects (sends DM).
  void set_accept_handler(AcceptHandler h) { accept_ = std::move(h); }
  // Called when an accepted incoming connection reaches the connected state.
  void set_connection_handler(ConnectionHandler h) { on_connection_ = std::move(h); }

  // Feed a received frame addressed to `local_`. Returns true if consumed.
  bool HandleFrame(const Ax25Frame& frame);

  Ax25Connection* FindConnection(const Ax25Address& peer);
  std::size_t connection_count() const { return connections_.size(); }

  Simulator* sim() { return sim_; }
  const Ax25LinkConfig& config() const { return config_; }
  void SendFrame(const Ax25Frame& f) { sender_(f); }

  // Removes fully disconnected connections (called by users or tests; live
  // Ax25Connection pointers are invalidated).
  void ReapClosed();

 private:
  friend class Ax25Connection;

  Simulator* sim_;
  Ax25Address local_;
  FrameSender sender_;
  Ax25LinkConfig config_;
  AcceptHandler accept_;
  ConnectionHandler on_connection_;
  std::map<Ax25Address, std::unique_ptr<Ax25Connection>> connections_;
};

class Ax25Connection {
 public:
  enum class State {
    kDisconnected,
    kConnecting,    // SABM sent, awaiting UA
    kConnected,
    kDisconnecting,  // DISC sent, awaiting UA
  };

  using DataHandler = std::function<void(const Bytes&)>;
  using EventHandler = std::function<void()>;

  Ax25Connection(Ax25Link* link, Ax25Address peer, std::vector<Ax25Digipeater> digis);

  State state() const { return state_; }
  const Ax25Address& peer() const { return peer_; }

  // Queues data; it is segmented into PACLEN I frames and delivered reliably
  // and in order.
  void Send(const Bytes& data);
  void Disconnect();

  void set_data_handler(DataHandler h) { on_data_ = std::move(h); }
  void set_connected_handler(EventHandler h) { on_connected_ = std::move(h); }
  void set_disconnected_handler(EventHandler h) { on_disconnected_ = std::move(h); }

  // Statistics.
  std::uint64_t i_frames_sent() const { return i_sent_; }
  std::uint64_t i_frames_resent() const { return i_resent_; }
  std::uint64_t bytes_delivered() const { return bytes_delivered_; }

 private:
  friend class Ax25Link;

  void StartConnect();
  void HandleFrame(const Ax25Frame& f);
  void HandleI(const Ax25Frame& f);
  void HandleAck(std::uint8_t nr);
  void PumpSendQueue();
  void SendIFrame(std::uint8_t ns, bool retransmission, bool poll = false);
  void SendSupervisory(Ax25FrameType type, bool response, bool pf);
  void SendU(Ax25FrameType type, bool command, bool pf);
  void OnT1Expiry();
  void OnT3Expiry();
  void RestartT3();
  void EnterConnected();
  void EnterDisconnected();
  Ax25Frame BaseFrame(bool command) const;
  std::vector<Ax25Digipeater> ReturnPath() const;

  Ax25Link* link_;
  Ax25Address peer_;
  std::vector<Ax25Digipeater> digis_;
  State state_ = State::kDisconnected;

  // Sequence variables (all mod 8).
  std::uint8_t vs_ = 0;  // next N(S) to assign
  std::uint8_t va_ = 0;  // oldest unacknowledged N(S)
  std::uint8_t vr_ = 0;  // next expected N(S) from peer
  bool rej_outstanding_ = false;
  bool peer_busy_ = false;

  std::deque<Bytes> send_queue_;               // not yet assigned sequence numbers
  std::map<std::uint8_t, Bytes> outstanding_;  // ns -> info, awaiting ack

  Timer t1_;
  Timer t3_;
  int retry_count_ = 0;

  DataHandler on_data_;
  EventHandler on_connected_;
  EventHandler on_disconnected_;

  std::uint64_t i_sent_ = 0;
  std::uint64_t i_resent_ = 0;
  std::uint64_t bytes_delivered_ = 0;
};

}  // namespace upr

#endif  // SRC_AX25_LAPB_H_
