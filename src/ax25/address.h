// AX.25 link-layer addresses: an amateur radio callsign (up to six
// characters) plus a 4-bit SSID ("system ID"), e.g. "N7AKR-5". On the wire
// each address occupies seven bytes with the ASCII characters shifted left
// one bit; the final byte packs the SSID together with the C/H bit and the
// address-extension bit (AX.25 v2.0 §2.2.13).
#ifndef SRC_AX25_ADDRESS_H_
#define SRC_AX25_ADDRESS_H_

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "src/util/byte_buffer.h"

namespace upr {

inline constexpr std::size_t kAx25AddressBytes = 7;

class Ax25Address {
 public:
  Ax25Address() = default;
  // callsign: 1..6 characters from [A-Z0-9] (lowercase is upcased);
  // ssid: 0..15. Invalid input yields the null address (empty callsign).
  Ax25Address(std::string_view callsign, std::uint8_t ssid);

  // Parses "CALL" or "CALL-SSID" text form.
  static std::optional<Ax25Address> Parse(std::string_view text);

  // The AX.25 broadcast destination used for UI beacons and ARP ("QST-0").
  static Ax25Address Broadcast();

  const std::string& callsign() const { return callsign_; }
  std::uint8_t ssid() const { return ssid_; }
  bool IsNull() const { return callsign_.empty(); }
  bool IsBroadcast() const;

  // "CALL" if ssid==0, otherwise "CALL-SSID".
  std::string ToString() const;

  bool operator==(const Ax25Address& o) const {
    return callsign_ == o.callsign_ && ssid_ == o.ssid_;
  }
  bool operator!=(const Ax25Address& o) const { return !(*this == o); }
  bool operator<(const Ax25Address& o) const {
    if (callsign_ != o.callsign_) {
      return callsign_ < o.callsign_;
    }
    return ssid_ < o.ssid_;
  }

  // Encodes the 7-byte wire form. `c_or_h_bit` sets bit 7 of the SSID octet
  // (the C bit for destination/source, the H "has been repeated" bit for a
  // digipeater). `last` sets the extension bit marking the final address.
  std::array<std::uint8_t, kAx25AddressBytes> Encode(bool c_or_h_bit, bool last) const;

  struct Decoded;
  // Decodes 7 wire bytes; nullopt on malformed characters.
  static std::optional<Decoded> Decode(const std::uint8_t* wire);

 private:
  std::string callsign_;
  std::uint8_t ssid_ = 0;
};

struct Ax25Address::Decoded {
  Ax25Address address;
  bool c_or_h_bit = false;
  bool last = false;
};

struct Ax25AddressHash {
  std::size_t operator()(const Ax25Address& a) const {
    std::size_t h = std::hash<std::string>()(a.callsign());
    return h * 31 + a.ssid();
  }
};

}  // namespace upr

#endif  // SRC_AX25_ADDRESS_H_
