#include "src/ax25/lapb.h"

#include <algorithm>

#include "src/util/logging.h"

namespace upr {

namespace {
constexpr const char* kTag = "ax25.l2";
}  // namespace

Ax25Link::Ax25Link(Simulator* sim, Ax25Address local, FrameSender sender,
                   Ax25LinkConfig config)
    : sim_(sim), local_(std::move(local)), sender_(std::move(sender)), config_(config) {}

Ax25Link::~Ax25Link() = default;

Ax25Connection* Ax25Link::Connect(const Ax25Address& remote,
                                  std::vector<Ax25Digipeater> digis) {
  auto& slot = connections_[remote];
  if (!slot) {
    slot = std::make_unique<Ax25Connection>(this, remote, std::move(digis));
  }
  if (slot->state() == Ax25Connection::State::kDisconnected) {
    slot->StartConnect();
  }
  return slot.get();
}

Ax25Connection* Ax25Link::FindConnection(const Ax25Address& peer) {
  auto it = connections_.find(peer);
  return it == connections_.end() ? nullptr : it->second.get();
}

void Ax25Link::ReapClosed() {
  for (auto it = connections_.begin(); it != connections_.end();) {
    if (it->second->state() == Ax25Connection::State::kDisconnected) {
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void Ax25Link::VisitConnections(
    const std::function<void(const Ax25Connection&)>& fn) const {
  for (const auto& entry : connections_) {
    fn(*entry.second);
  }
}

bool Ax25Link::HandleDecoded(const Ax25Frame& frame, ByteView wire) {
  if (frame.destination != local_) {
    return false;
  }
  if (frame.type == Ax25FrameType::kUi) {
    return false;  // datagram traffic is not ours
  }
  auto it = connections_.find(frame.source);
  if (it != connections_.end() &&
      it->second->modulus() == Ax25Modulus::kMod128) {
    // Extended-mode connection: the caller's mod-8 parse got the frame type
    // right (both layouts agree on I/S/U from the first control byte) but
    // I/S sequence numbers and P/F wrong. Re-parse the raw wire.
    auto re = Ax25Frame::DecodeView(wire, Ax25Modulus::kMod128);
    if (!re) {
      return true;  // malformed under this link's modulus: drop
    }
    Ax25Frame f = std::move(re->frame);
    f.info.assign(re->info.begin(), re->info.end());
    return HandleFrame(f);
  }
  return HandleFrame(frame);
}

bool Ax25Link::HandleFrame(const Ax25Frame& frame) {
  if (frame.destination != local_) {
    return false;
  }
  if (frame.type == Ax25FrameType::kUi) {
    return false;  // datagram traffic is not ours
  }
  auto it = connections_.find(frame.source);
  if (it != connections_.end()) {
    Ax25Connection* conn = it->second.get();
    bool was_down = conn->state() == Ax25Connection::State::kDisconnected;
    conn->HandleFrame(frame);
    // A SABM/SABME reviving a dead (not yet reaped) connection is a fresh
    // inbound connection from the application's point of view: without this
    // the app never learns the peer re-established and the link sits idle
    // forever. (An inbound XID leaves the connection disconnected until the
    // SABME lands, so the handler fires exactly once per establishment.)
    if (was_down &&
        (frame.type == Ax25FrameType::kSabm ||
         frame.type == Ax25FrameType::kSabme) &&
        conn->state() == Ax25Connection::State::kConnected && on_connection_) {
      on_connection_(conn);
    }
    return true;
  }
  // Unknown peer. A SABM may open a new connection — and, when this link
  // speaks v2.2, so may a SABME or an XID command; anything else gets DM.
  // The DM a v2.0-configured link sends in answer to an XID is exactly what
  // makes a v2.2 initiator downgrade to SABM.
  bool opens =
      frame.type == Ax25FrameType::kSabm ||
      (config_.dialect == Ax25Dialect::kV22 &&
       (frame.type == Ax25FrameType::kSabme ||
        (frame.type == Ax25FrameType::kXid && frame.command)));
  if (opens) {
    if (accept_ && accept_(frame.source)) {
      // Reverse the digipeater path for our responses.
      std::vector<Ax25Digipeater> path;
      for (auto rit = frame.digipeaters.rbegin(); rit != frame.digipeaters.rend();
           ++rit) {
        path.push_back(Ax25Digipeater{rit->address, false});
      }
      auto conn = std::make_unique<Ax25Connection>(this, frame.source, std::move(path));
      Ax25Connection* raw = conn.get();
      connections_[frame.source] = std::move(conn);
      raw->HandleFrame(frame);  // SABM/SABME: sends UA; XID: sends XID response
      if (on_connection_ &&
          raw->state() == Ax25Connection::State::kConnected) {
        on_connection_(raw);
      }
      return true;
    }
  }
  // Not accepted / no connection: respond DM (except to DM itself).
  if (frame.type != Ax25FrameType::kDm) {
    Ax25Frame dm;
    dm.destination = frame.source;
    dm.source = local_;
    dm.command = false;
    dm.type = Ax25FrameType::kDm;
    dm.poll_final = frame.poll_final;
    sender_(dm);
  }
  return true;
}

Ax25Connection::Ax25Connection(Ax25Link* link, Ax25Address peer,
                               std::vector<Ax25Digipeater> digis)
    : link_(link),
      peer_(std::move(peer)),
      digis_(std::move(digis)),
      t1_(link->sim(), [this] { OnT1Expiry(); }),
      t3_(link->sim(), [this] { OnT3Expiry(); }) {
  PendingParams p = V20Params();
  window_ = p.window;
  paclen_ = p.paclen;
}

Ax25Connection::PendingParams Ax25Connection::V20Params() const {
  const Ax25LinkConfig& c = link_->config();
  PendingParams p;
  p.modulus = Ax25Modulus::kMod8;
  p.window = std::min<std::uint8_t>(std::max<std::uint8_t>(c.window, 1), 7);
  p.srej = false;
  p.paclen = c.paclen;
  return p;
}

Ax25XidParams Ax25Connection::LocalXidOffer() const {
  const Ax25LinkConfig& c = link_->config();
  Ax25XidParams p;  // defaults are the full v2.2 offer (mod 128 + SREJ)
  p.window_size_rx = std::min<std::uint8_t>(std::max<std::uint8_t>(c.window, 1), 127);
  p.i_field_length_rx = static_cast<std::uint32_t>(c.max_i_field * 8);
  p.ack_timer_ms = static_cast<std::uint32_t>(c.t1 / kMillisecond);
  p.retries = static_cast<std::uint32_t>(c.n2);
  return p;
}

Ax25XidParams Ax25Connection::Agree(const Ax25XidParams& ours,
                                    const Ax25XidParams& theirs) {
  Ax25XidParams a;
  a.classes = ours.classes;
  // Optional functions both sides support; modulo 128 needs agreement from
  // both, otherwise the link falls back to modulo 8.
  a.optional_functions = ours.optional_functions & theirs.optional_functions;
  if (!(a.optional_functions & kXidOptMod128)) {
    a.optional_functions |= kXidOptMod8;
  }
  a.i_field_length_rx =
      std::min(ours.i_field_length_rx, theirs.i_field_length_rx);
  a.window_size_rx = std::min(ours.window_size_rx, theirs.window_size_rx);
  // Timers and retry budgets negotiate up: the slower side wins.
  a.ack_timer_ms = std::max(ours.ack_timer_ms, theirs.ack_timer_ms);
  a.retries = std::max(ours.retries, theirs.retries);
  return a;
}

Ax25Connection::PendingParams Ax25Connection::ParamsFrom(
    const Ax25XidParams& agreed) const {
  PendingParams p;
  p.modulus = agreed.Mod128() ? Ax25Modulus::kMod128 : Ax25Modulus::kMod8;
  std::uint8_t max_window = p.modulus == Ax25Modulus::kMod128 ? 127 : 7;
  p.window = std::min<std::uint8_t>(std::max<std::uint8_t>(agreed.window_size_rx, 1),
                                    max_window);
  p.srej = agreed.Srej();
  std::size_t peer_n1 = agreed.i_field_length_rx / 8;
  p.paclen = peer_n1 == 0 ? link_->config().paclen
                          : std::min(link_->config().paclen, peer_n1);
  return p;
}

Ax25Frame Ax25Connection::BaseFrame(bool command) const {
  Ax25Frame f;
  f.destination = peer_;
  f.source = link_->local_address();
  f.command = command;
  for (const auto& d : digis_) {
    f.digipeaters.push_back(Ax25Digipeater{d.address, false});
  }
  return f;
}

void Ax25Connection::StartConnect() {
  if (link_->config().dialect == Ax25Dialect::kV22) {
    // v2.2 initiator: negotiate first. SABME goes out only after the peer
    // answers the XID; a DM or silence downgrades to a v2.0 SABM.
    state_ = State::kNegotiating;
    retry_count_ = 0;
    SendXid(/*command=*/true, LocalXidOffer());
    t1_.Restart(link_->config().t1);
    return;
  }
  pending_params_ = V20Params();
  state_ = State::kConnecting;
  retry_count_ = 0;
  SendU(Ax25FrameType::kSabm, /*command=*/true, /*pf=*/true);
  t1_.Restart(link_->config().t1);
}

void Ax25Connection::BeginEstablish(const PendingParams& p) {
  pending_params_ = p;
  state_ = State::kConnecting;
  retry_count_ = 0;
  SendU(p.modulus == Ax25Modulus::kMod128 ? Ax25FrameType::kSabme
                                          : Ax25FrameType::kSabm,
        /*command=*/true, /*pf=*/true);
  t1_.Restart(link_->config().t1);
}

void Ax25Connection::Downgrade(const char* why) {
  ++link_->stats_.downgrades;
  UPR_DEBUG(kTag, "%s: v2.2 negotiation failed (%s), retrying as v2.0",
            peer_.ToString().c_str(), why);
  BeginEstablish(V20Params());
}

void Ax25Connection::Send(const Bytes& data) {
  // Segment into PACLEN chunks.
  std::size_t paclen = paclen_;
  for (std::size_t off = 0; off < data.size(); off += paclen) {
    std::size_t n = std::min(paclen, data.size() - off);
    send_queue_.emplace_back(data.begin() + static_cast<std::ptrdiff_t>(off),
                             data.begin() + static_cast<std::ptrdiff_t>(off + n));
  }
  if (state_ == State::kConnected) {
    PumpSendQueue();
  }
}

void Ax25Connection::Disconnect() {
  if (state_ == State::kConnected || state_ == State::kConnecting) {
    state_ = State::kDisconnecting;
    retry_count_ = 0;
    SendU(Ax25FrameType::kDisc, /*command=*/true, /*pf=*/true);
    t1_.Restart(link_->config().t1);
  }
}

void Ax25Connection::EnterConnected() {
  state_ = State::kConnected;
  // On a link reset, sent-but-unacked I frames go back to the head of the
  // send queue (oldest first) instead of being discarded — the peer reset its
  // receive state, so they were never delivered there. Matches the Linux
  // AX.25 stack's ax25_requeue_frames behaviour. This walk runs under the
  // modulus the frames were sent with, *before* any newly negotiated
  // parameters take effect below.
  for (std::uint8_t i = Outstanding(); i > 0; --i) {
    auto it = outstanding_.find(ModM(va_ + i - 1));
    if (it != outstanding_.end()) {
      send_queue_.push_front(std::move(it->second));
    }
  }
  outstanding_.clear();
  if (pending_params_) {
    modulus_ = pending_params_->modulus;
    window_ = pending_params_->window;
    srej_enabled_ = pending_params_->srej;
    paclen_ = pending_params_->paclen;
    pending_params_.reset();
    if (modulus_ == Ax25Modulus::kMod128) {
      ++link_->stats_.mod128_links;
    }
  }
  vs_ = va_ = vr_ = 0;
  rej_outstanding_ = false;
  srej_outstanding_ = false;
  rx_pending_.clear();
  peer_busy_ = false;
  retry_count_ = 0;
  t1_.Stop();
  RestartT3();
  if (on_connected_) {
    on_connected_();
  }
  PumpSendQueue();
}

void Ax25Connection::EnterDisconnected() {
  state_ = State::kDisconnected;
  t1_.Stop();
  t3_.Stop();
  send_queue_.clear();
  outstanding_.clear();
  rx_pending_.clear();
  srej_outstanding_ = false;
  pending_params_.reset();
  if (on_disconnected_) {
    on_disconnected_();
  }
}

void Ax25Connection::PumpSendQueue() {
  while (!send_queue_.empty() && !peer_busy_ && Outstanding() < window_) {
    Bytes info = std::move(send_queue_.front());
    send_queue_.pop_front();
    outstanding_[vs_] = info;
    SendIFrame(vs_, /*retransmission=*/false);
    vs_ = ModM(vs_ + 1);
  }
  if (!outstanding_.empty() && !t1_.running()) {
    t1_.Restart(link_->config().t1);
  }
}

void Ax25Connection::SendIFrame(std::uint8_t ns, bool retransmission, bool poll) {
  auto it = outstanding_.find(ns);
  if (it == outstanding_.end()) {
    return;
  }
  Ax25Frame f = BaseFrame(/*command=*/true);
  f.type = Ax25FrameType::kI;
  f.modulus = modulus_;
  f.ns = ns;
  f.nr = vr_;
  f.pid = link_->config().pid;
  f.info = it->second;
  // AX.25 v2.0 checkpointing: a T1 retransmission polls, so a peer that has
  // already seen the frame (ACK or REJ lost) must answer RR/REJ with F set —
  // without this a lost supervisory frame deadlocks a k=1 link.
  f.poll_final = poll;
  if (retransmission) {
    ++i_resent_;
  } else {
    ++i_sent_;
  }
  link_->SendFrame(f);
}

void Ax25Connection::SendSupervisory(Ax25FrameType type, bool response, bool pf) {
  if (type == Ax25FrameType::kSrej) {
    ++link_->stats_.srej_sent;
  }
  Ax25Frame f = BaseFrame(/*command=*/!response);
  f.type = type;
  f.modulus = modulus_;
  f.nr = vr_;
  f.poll_final = pf;
  link_->SendFrame(f);
}

void Ax25Connection::SendU(Ax25FrameType type, bool command, bool pf) {
  Ax25Frame f = BaseFrame(command);
  f.type = type;
  f.poll_final = pf;
  link_->SendFrame(f);
}

void Ax25Connection::SendXid(bool command, const Ax25XidParams& params) {
  ++link_->stats_.xid_sent;
  Ax25Frame f = BaseFrame(command);
  f.type = Ax25FrameType::kXid;
  f.poll_final = false;
  f.info = params.Encode();
  link_->SendFrame(f);
}

void Ax25Connection::RestartT3() {
  if (link_->config().t3 > 0 && state_ == State::kConnected) {
    t3_.Restart(link_->config().t3);
  }
}

void Ax25Connection::OnT3Expiry() {
  if (state_ != State::kConnected) {
    return;
  }
  // Idle link check: poll the peer. The response (or anything else from the
  // peer) re-arms T3 in HandleFrame; repeated silence runs the retry counter
  // up in OnT1Expiry until link failure.
  if (!t1_.running()) {
    SendSupervisory(Ax25FrameType::kRr, /*response=*/false, /*pf=*/true);
    t1_.Restart(link_->config().t1);
  }
  RestartT3();
}

void Ax25Connection::OnT1Expiry() {
  ++retry_count_;
  if (retry_count_ > link_->config().n2) {
    UPR_WARN(kTag, "%s: retry limit exceeded, link failure",
             peer_.ToString().c_str());
    if (state_ != State::kDisconnected) {
      SendU(Ax25FrameType::kDm, /*command=*/false, /*pf=*/true);
      EnterDisconnected();
    }
    return;
  }
  switch (state_) {
    case State::kNegotiating:
      // One XID retransmission; after that assume a v2.0 peer that silently
      // dropped the unfamiliar frame and fall back to a plain SABM.
      if (retry_count_ >= 2) {
        Downgrade("XID timeout");
      } else {
        SendXid(/*command=*/true, LocalXidOffer());
        t1_.Restart(link_->config().t1);
      }
      break;
    case State::kConnecting:
      SendU(pending_params_ &&
                    pending_params_->modulus == Ax25Modulus::kMod128
                ? Ax25FrameType::kSabme
                : Ax25FrameType::kSabm,
            true, true);
      t1_.Restart(link_->config().t1);
      break;
    case State::kDisconnecting:
      SendU(Ax25FrameType::kDisc, true, true);
      t1_.Restart(link_->config().t1);
      break;
    case State::kConnected:
      if (modulus_ == Ax25Modulus::kMod128) {
        // Extended mode: a window of up to 127 frames makes retransmit-all
        // a channel-saturating burst (it takes longer to send than T1
        // itself, so expiries nest and the link melts down). Checkpoint
        // instead: resend only the oldest unacknowledged frame with P set.
        // The peer's response — ack, SREJ for its actual hole, or REJ for a
        // duplicate — tells us precisely what to send next.
        if (!outstanding_.empty()) {
          SendIFrame(va_, /*retransmission=*/true, /*poll=*/true);
        } else {
          SendSupervisory(Ax25FrameType::kRr, /*response=*/false, /*pf=*/true);
        }
      } else {
        // Retransmit everything outstanding starting at V(A) (go-back-N);
        // the head frame carries the P bit as a checkpoint.
        for (std::uint8_t i = 0; i < Outstanding(); ++i) {
          SendIFrame(ModM(va_ + i), /*retransmission=*/true, /*poll=*/i == 0);
        }
        if (outstanding_.empty()) {
          // Nothing outstanding: poll the peer.
          SendSupervisory(Ax25FrameType::kRr, /*response=*/false, /*pf=*/true);
        }
      }
      t1_.Restart(link_->config().t1);
      break;
    case State::kDisconnected:
      break;
  }
}

void Ax25Connection::HandleAck(std::uint8_t nr) {
  // N(R) acknowledges all frames with N(S) < N(R). Validate that N(R) is in
  // [va, vs] before applying.
  if (ModM(nr - va_) > Outstanding()) {
    return;  // invalid N(R); a full FRMR recovery is out of scope
  }
  bool advanced = false;
  while (va_ != nr) {
    outstanding_.erase(va_);
    va_ = ModM(va_ + 1);
    advanced = true;
  }
  if (advanced) {
    retry_count_ = 0;
    if (outstanding_.empty()) {
      t1_.Stop();
    } else {
      t1_.Restart(link_->config().t1);
    }
  }
}

void Ax25Connection::DeliverData(const Bytes& info) {
  vr_ = ModM(vr_ + 1);
  bytes_delivered_ += info.size();
  if (on_data_) {
    on_data_(info);
  }
}

void Ax25Connection::HandleI(const Ax25Frame& f) {
  HandleAck(f.nr);
  // The SREJ receive window: how far ahead of V(R) a frame may be and still
  // be held for later in-order delivery. Bounded by half the modulus — the
  // classic selective-repeat safety margin — so a go-back-N burst of
  // duplicates (already delivered, N(S) just behind V(R)) can never alias
  // into the hold buffer and resurface as stale data half a cycle later.
  std::uint8_t srej_rx_window = static_cast<std::uint8_t>(
      std::min<int>(window_, ModulusValue(modulus_) / 2));
  if (f.ns == vr_) {
    rej_outstanding_ = false;
    srej_outstanding_ = false;
    DeliverData(f.info);
    // Drain any consecutive run held by the SREJ machinery behind the gap
    // this frame just filled.
    for (auto it = rx_pending_.find(vr_); it != rx_pending_.end();
         it = rx_pending_.find(vr_)) {
      Bytes held = std::move(it->second);
      rx_pending_.erase(it);
      DeliverData(held);
    }
    if (srej_enabled_ && !rx_pending_.empty()) {
      // Another hole further on: ask for the new V(R) straight away.
      srej_outstanding_ = true;
      SendSupervisory(Ax25FrameType::kSrej, /*response=*/true, f.poll_final);
    } else {
      // Acknowledge. (No delayed-ack / piggyback sophistication: one RR per I
      // frame, as simple TNC implementations do.)
      SendSupervisory(Ax25FrameType::kRr, /*response=*/true, f.poll_final);
    }
  } else if (srej_enabled_ && ModM(f.ns - vr_) < srej_rx_window) {
    // Out of sequence but within the receive window: hold the frame and ask
    // for the missing one once (a single outstanding SREJ, per v2.2's basic
    // single-SREJ procedure).
    rx_pending_.emplace(f.ns, f.info);
    if (!srej_outstanding_) {
      srej_outstanding_ = true;
      SendSupervisory(Ax25FrameType::kSrej, /*response=*/true, f.poll_final);
    } else if (f.poll_final) {
      SendSupervisory(Ax25FrameType::kRr, /*response=*/true, true);
    }
  } else {
    // Go-back-N (v2.0, or a duplicate outside the SREJ window): reject once
    // until it clears.
    if (!rej_outstanding_) {
      rej_outstanding_ = true;
      SendSupervisory(Ax25FrameType::kRej, /*response=*/true, f.poll_final);
    } else if (f.poll_final) {
      SendSupervisory(Ax25FrameType::kRr, /*response=*/true, true);
    }
  }
  PumpSendQueue();
}

void Ax25Connection::HandleSrej(const Ax25Frame& f) {
  ++link_->stats_.srej_received;
  peer_busy_ = false;
  // Selective repeat: retransmit exactly N(R). We never treat SREJ's N(R) as
  // an acknowledgement (our receiver only emits response SREJs, whose N(R)
  // acks nothing per the spec's F=0 rule); cumulative acks arrive in the
  // RR that follows once the receiver's gap fills.
  SendIFrame(f.nr, /*retransmission=*/true);
  if (f.command && f.poll_final) {
    SendSupervisory(Ax25FrameType::kRr, /*response=*/true, true);
  }
  if (!outstanding_.empty()) {
    t1_.Restart(link_->config().t1);
  }
  PumpSendQueue();
}

void Ax25Connection::HandleFrame(const Ax25Frame& f) {
  RestartT3();
  switch (f.type) {
    case Ax25FrameType::kSabm:
      // Connection (re)establishment from the peer, always modulo 8. The
      // explicit staging matters when an earlier XID staged mod-128
      // parameters but the initiator downgraded before establishing.
      pending_params_ = V20Params();
      SendU(Ax25FrameType::kUa, /*command=*/false, f.poll_final);
      if (state_ == State::kConnected) {
        UPR_DEBUG(kTag, "%s: link reset by peer", peer_.ToString().c_str());
      }
      EnterConnected();
      break;
    case Ax25FrameType::kSabme:
      if (link_->config().dialect != Ax25Dialect::kV22) {
        // v2.0 station: extended mode unsupported — refuse with DM so the
        // peer can fall back. (Only reachable from a v2.2 peer; pre-v2.2
        // traffic never carries SABME, so the seeded goldens are unaffected.)
        SendU(Ax25FrameType::kDm, /*command=*/false, f.poll_final);
        break;
      }
      if (state_ == State::kConnecting && pending_params_ &&
          pending_params_->modulus == Ax25Modulus::kMod8) {
        // Crossing establishment: we already committed to a mod-8 link (our
        // SABM is in flight, typically after an XID downgrade) and the
        // peer's SABME crossed it. Accepting it here would leave this end
        // mod 128 while the peer — which accepts our SABM — lands on mod 8,
        // and a split-modulus link misparses every I/S frame. Drop the
        // SABME: the peer completes establishment from our SABM instead.
        UPR_DEBUG(kTag, "%s: ignoring SABME that crossed our SABM",
                  peer_.ToString().c_str());
        break;
      }
      // Extended (mod 128) establishment. Use parameters agreed in the
      // preceding XID exchange if there was one. A SABME retransmission (our
      // UA was lost) or reset on an already-extended link keeps the current
      // negotiated parameters — the XID stays in effect across resets.
      // Only a genuinely bare SABME gets mod-128 defaults without SREJ
      // (nothing negotiated it).
      if (!pending_params_ ||
          pending_params_->modulus != Ax25Modulus::kMod128) {
        PendingParams p;
        p.modulus = Ax25Modulus::kMod128;
        if (modulus_ == Ax25Modulus::kMod128) {
          p.window = window_;
          p.srej = srej_enabled_;
          p.paclen = paclen_;
        } else {
          p.window = std::min<std::uint8_t>(
              std::max<std::uint8_t>(link_->config().window, 1), 127);
          p.srej = false;
          p.paclen = link_->config().paclen;
        }
        pending_params_ = p;
      }
      SendU(Ax25FrameType::kUa, /*command=*/false, f.poll_final);
      if (state_ == State::kConnected) {
        UPR_DEBUG(kTag, "%s: link reset by peer (SABME)",
                  peer_.ToString().c_str());
      }
      EnterConnected();
      break;
    case Ax25FrameType::kXid:
      HandleXid(f);
      break;
    case Ax25FrameType::kUa:
      if (state_ == State::kConnecting) {
        EnterConnected();
      } else if (state_ == State::kDisconnecting) {
        EnterDisconnected();
      }
      break;
    case Ax25FrameType::kDm:
      if (state_ == State::kNegotiating) {
        if (!f.poll_final) {
          // A v2.0 peer DMed our XID (its unknown-frame rule; F mirrors the
          // XID's P=0): fall straight back to a v2.0 SABM. This is the fast
          // downgrade path.
          Downgrade("peer answered XID with DM");
        }
        // F=1 is a stale link-failure DM from the session we are replacing,
        // not an answer to the XID — ignore it and let T1 drive.
      } else if (state_ == State::kConnecting && pending_params_ &&
                 pending_params_->modulus == Ax25Modulus::kMod128) {
        // Our SABME was refused: re-establish as v2.0 rather than giving up.
        Downgrade("peer refused SABME");
      } else if (state_ != State::kDisconnected) {
        EnterDisconnected();
      }
      break;
    case Ax25FrameType::kDisc:
      SendU(Ax25FrameType::kUa, /*command=*/false, f.poll_final);
      if (state_ != State::kDisconnected) {
        EnterDisconnected();
      }
      break;
    case Ax25FrameType::kI:
      if (state_ == State::kConnected) {
        HandleI(f);
      } else if (state_ == State::kDisconnected) {
        SendU(Ax25FrameType::kDm, /*command=*/false, f.poll_final);
      }
      // kConnecting / kDisconnecting: drop silently. Answering DM here tears
      // down the peer's half-open link in the UA-loss race: the peer's UA was
      // lost on the air but data it queued right behind the UA already
      // arrived. T1 on both sides recovers the establishment instead.
      break;
    case Ax25FrameType::kRr:
      if (state_ == State::kConnected) {
        peer_busy_ = false;
        HandleAck(f.nr);
        if (f.command && f.poll_final) {
          if (srej_enabled_ && !rx_pending_.empty()) {
            // The poll reached us while we still have a hole at V(R): answer
            // with a fresh SREJ instead of a bare RR. This is the SREJ
            // retry path — if our earlier SREJ was lost, the sender's
            // checkpoint poll re-triggers it rather than deadlocking.
            srej_outstanding_ = true;
            SendSupervisory(Ax25FrameType::kSrej, /*response=*/true, true);
          } else {
            SendSupervisory(Ax25FrameType::kRr, /*response=*/true, true);
          }
        } else if (!f.command && f.poll_final && outstanding_.empty()) {
          // F-bit answer to our keepalive poll: the link is alive.
          retry_count_ = 0;
          t1_.Stop();
        }
        PumpSendQueue();
      }
      break;
    case Ax25FrameType::kRnr:
      if (state_ == State::kConnected) {
        peer_busy_ = true;
        HandleAck(f.nr);
        if (f.command && f.poll_final) {
          SendSupervisory(Ax25FrameType::kRr, /*response=*/true, true);
        }
      }
      break;
    case Ax25FrameType::kRej:
      if (state_ == State::kConnected) {
        peer_busy_ = false;
        HandleAck(f.nr);
        // Retransmit from N(R). The burst is capped at 8 frames — a no-op
        // for mod 8 (the window is at most 7) but essential for mod 128,
        // where an uncapped go-back-N over a 127 window floods the channel
        // for longer than T1. The SREJ machinery (or the next checkpoint
        // poll) recovers whatever lies beyond the cap.
        std::uint8_t burst = std::min<std::uint8_t>(Outstanding(), 8);
        for (std::uint8_t i = 0; i < burst; ++i) {
          SendIFrame(ModM(va_ + i), /*retransmission=*/true);
        }
        if (!outstanding_.empty()) {
          t1_.Restart(link_->config().t1);
        }
        PumpSendQueue();
      }
      break;
    case Ax25FrameType::kSrej:
      if (state_ == State::kConnected) {
        HandleSrej(f);
      }
      break;
    case Ax25FrameType::kFrmr:
      // Unrecoverable per v2.0: re-establish.
      if (state_ == State::kConnected) {
        StartConnect();
      }
      break;
    case Ax25FrameType::kUi:
    case Ax25FrameType::kUnknown:
      break;
  }
}

void Ax25Connection::HandleXid(const Ax25Frame& f) {
  if (link_->config().dialect != Ax25Dialect::kV22) {
    // v2.0 dialect: XID is not in the protocol; ignore it like any unknown
    // frame (the link layer already DMs XIDs from unknown peers).
    return;
  }
  ++link_->stats_.xid_received;
  auto peer_params = Ax25XidParams::Decode(f.info);
  if (!peer_params) {
    // Malformed or non-ISO-8885 offer: stay silent; the initiator's T1
    // downgrade path takes over.
    return;
  }
  Ax25XidParams agreed = Agree(LocalXidOffer(), *peer_params);
  if (f.command) {
    if (state_ == State::kDisconnected) {
      // Responder: stage the agreed parameters and echo them back. The
      // initiator commits the negotiation with the SABME (or SABM) it sends
      // next; until then the connection state is unchanged.
      pending_params_ = ParamsFrom(agreed);
      SendXid(/*command=*/false, agreed);
    } else if (state_ == State::kNegotiating) {
      // Crossing XID commands: both stations initiated at once. Each side
      // now holds the other's offer, and Agree() is symmetric (AND/min/max),
      // so both compute the same parameter set — answer and establish
      // directly. The SABMEs may cross too; that is harmless since both
      // carry the same staged parameters.
      SendXid(/*command=*/false, agreed);
      BeginEstablish(ParamsFrom(agreed));
    }
    // kConnecting/kConnected/kDisconnecting: ignore. Re-staging here could
    // overwrite the parameters of an establishment already in flight and
    // desynchronise the two ends' moduli.
  } else if (state_ == State::kNegotiating) {
    // Initiator: the peer answered our offer with the agreed (min)
    // parameter set. Establish with SABME when mod 128 was agreed.
    BeginEstablish(ParamsFrom(agreed));
  }
}

}  // namespace upr
