#include "src/ax25/lapb.h"

#include <algorithm>

#include "src/util/logging.h"

namespace upr {

namespace {
constexpr const char* kTag = "ax25.l2";

std::uint8_t Mod8(int v) { return static_cast<std::uint8_t>(v & 7); }

// Number of frames in the window between va (inclusive) and vs (exclusive).
std::uint8_t Outstanding(std::uint8_t vs, std::uint8_t va) { return Mod8(vs - va); }

}  // namespace

Ax25Link::Ax25Link(Simulator* sim, Ax25Address local, FrameSender sender,
                   Ax25LinkConfig config)
    : sim_(sim), local_(std::move(local)), sender_(std::move(sender)), config_(config) {}

Ax25Link::~Ax25Link() = default;

Ax25Connection* Ax25Link::Connect(const Ax25Address& remote,
                                  std::vector<Ax25Digipeater> digis) {
  auto& slot = connections_[remote];
  if (!slot) {
    slot = std::make_unique<Ax25Connection>(this, remote, std::move(digis));
  }
  if (slot->state() == Ax25Connection::State::kDisconnected) {
    slot->StartConnect();
  }
  return slot.get();
}

Ax25Connection* Ax25Link::FindConnection(const Ax25Address& peer) {
  auto it = connections_.find(peer);
  return it == connections_.end() ? nullptr : it->second.get();
}

void Ax25Link::ReapClosed() {
  for (auto it = connections_.begin(); it != connections_.end();) {
    if (it->second->state() == Ax25Connection::State::kDisconnected) {
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

bool Ax25Link::HandleFrame(const Ax25Frame& frame) {
  if (frame.destination != local_) {
    return false;
  }
  if (frame.type == Ax25FrameType::kUi) {
    return false;  // datagram traffic is not ours
  }
  auto it = connections_.find(frame.source);
  if (it != connections_.end()) {
    Ax25Connection* conn = it->second.get();
    bool was_down = conn->state() == Ax25Connection::State::kDisconnected;
    conn->HandleFrame(frame);
    // A SABM reviving a dead (not yet reaped) connection is a fresh inbound
    // connection from the application's point of view: without this the app
    // never learns the peer re-established and the link sits idle forever.
    if (was_down && frame.type == Ax25FrameType::kSabm &&
        conn->state() == Ax25Connection::State::kConnected && on_connection_) {
      on_connection_(conn);
    }
    return true;
  }
  // Unknown peer. A SABM may open a new connection; anything else gets DM.
  if (frame.type == Ax25FrameType::kSabm) {
    if (accept_ && accept_(frame.source)) {
      // Reverse the digipeater path for our responses.
      std::vector<Ax25Digipeater> path;
      for (auto rit = frame.digipeaters.rbegin(); rit != frame.digipeaters.rend();
           ++rit) {
        path.push_back(Ax25Digipeater{rit->address, false});
      }
      auto conn = std::make_unique<Ax25Connection>(this, frame.source, std::move(path));
      Ax25Connection* raw = conn.get();
      connections_[frame.source] = std::move(conn);
      raw->HandleFrame(frame);  // processes the SABM, sends UA
      if (on_connection_) {
        on_connection_(raw);
      }
      return true;
    }
  }
  // Not accepted / no connection: respond DM (except to DM itself).
  if (frame.type != Ax25FrameType::kDm) {
    Ax25Frame dm;
    dm.destination = frame.source;
    dm.source = local_;
    dm.command = false;
    dm.type = Ax25FrameType::kDm;
    dm.poll_final = frame.poll_final;
    sender_(dm);
  }
  return true;
}

Ax25Connection::Ax25Connection(Ax25Link* link, Ax25Address peer,
                               std::vector<Ax25Digipeater> digis)
    : link_(link),
      peer_(std::move(peer)),
      digis_(std::move(digis)),
      t1_(link->sim(), [this] { OnT1Expiry(); }),
      t3_(link->sim(), [this] { OnT3Expiry(); }) {}

Ax25Frame Ax25Connection::BaseFrame(bool command) const {
  Ax25Frame f;
  f.destination = peer_;
  f.source = link_->local_address();
  f.command = command;
  for (const auto& d : digis_) {
    f.digipeaters.push_back(Ax25Digipeater{d.address, false});
  }
  return f;
}

void Ax25Connection::StartConnect() {
  state_ = State::kConnecting;
  retry_count_ = 0;
  SendU(Ax25FrameType::kSabm, /*command=*/true, /*pf=*/true);
  t1_.Restart(link_->config().t1);
}

void Ax25Connection::Send(const Bytes& data) {
  // Segment into PACLEN chunks.
  std::size_t paclen = link_->config().paclen;
  for (std::size_t off = 0; off < data.size(); off += paclen) {
    std::size_t n = std::min(paclen, data.size() - off);
    send_queue_.emplace_back(data.begin() + static_cast<std::ptrdiff_t>(off),
                             data.begin() + static_cast<std::ptrdiff_t>(off + n));
  }
  if (state_ == State::kConnected) {
    PumpSendQueue();
  }
}

void Ax25Connection::Disconnect() {
  if (state_ == State::kConnected || state_ == State::kConnecting) {
    state_ = State::kDisconnecting;
    retry_count_ = 0;
    SendU(Ax25FrameType::kDisc, /*command=*/true, /*pf=*/true);
    t1_.Restart(link_->config().t1);
  }
}

void Ax25Connection::EnterConnected() {
  state_ = State::kConnected;
  // On a link reset, sent-but-unacked I frames go back to the head of the
  // send queue (oldest first) instead of being discarded — the peer reset its
  // receive state, so they were never delivered there. Matches the Linux
  // AX.25 stack's ax25_requeue_frames behaviour.
  for (std::uint8_t i = Outstanding(vs_, va_); i > 0; --i) {
    auto it = outstanding_.find(Mod8(va_ + i - 1));
    if (it != outstanding_.end()) {
      send_queue_.push_front(std::move(it->second));
    }
  }
  vs_ = va_ = vr_ = 0;
  rej_outstanding_ = false;
  peer_busy_ = false;
  retry_count_ = 0;
  outstanding_.clear();
  t1_.Stop();
  RestartT3();
  if (on_connected_) {
    on_connected_();
  }
  PumpSendQueue();
}

void Ax25Connection::EnterDisconnected() {
  state_ = State::kDisconnected;
  t1_.Stop();
  t3_.Stop();
  send_queue_.clear();
  outstanding_.clear();
  if (on_disconnected_) {
    on_disconnected_();
  }
}

void Ax25Connection::PumpSendQueue() {
  while (!send_queue_.empty() && !peer_busy_ &&
         Outstanding(vs_, va_) < link_->config().window) {
    Bytes info = std::move(send_queue_.front());
    send_queue_.pop_front();
    outstanding_[vs_] = info;
    SendIFrame(vs_, /*retransmission=*/false);
    vs_ = Mod8(vs_ + 1);
  }
  if (!outstanding_.empty() && !t1_.running()) {
    t1_.Restart(link_->config().t1);
  }
}

void Ax25Connection::SendIFrame(std::uint8_t ns, bool retransmission, bool poll) {
  auto it = outstanding_.find(ns);
  if (it == outstanding_.end()) {
    return;
  }
  Ax25Frame f = BaseFrame(/*command=*/true);
  f.type = Ax25FrameType::kI;
  f.ns = ns;
  f.nr = vr_;
  f.pid = link_->config().pid;
  f.info = it->second;
  // AX.25 v2.0 checkpointing: a T1 retransmission polls, so a peer that has
  // already seen the frame (ACK or REJ lost) must answer RR/REJ with F set —
  // without this a lost supervisory frame deadlocks a k=1 link.
  f.poll_final = poll;
  if (retransmission) {
    ++i_resent_;
  } else {
    ++i_sent_;
  }
  link_->SendFrame(f);
}

void Ax25Connection::SendSupervisory(Ax25FrameType type, bool response, bool pf) {
  Ax25Frame f = BaseFrame(/*command=*/!response);
  f.type = type;
  f.nr = vr_;
  f.poll_final = pf;
  link_->SendFrame(f);
}

void Ax25Connection::SendU(Ax25FrameType type, bool command, bool pf) {
  Ax25Frame f = BaseFrame(command);
  f.type = type;
  f.poll_final = pf;
  link_->SendFrame(f);
}

void Ax25Connection::RestartT3() {
  if (link_->config().t3 > 0 && state_ == State::kConnected) {
    t3_.Restart(link_->config().t3);
  }
}

void Ax25Connection::OnT3Expiry() {
  if (state_ != State::kConnected) {
    return;
  }
  // Idle link check: poll the peer. The response (or anything else from the
  // peer) re-arms T3 in HandleFrame; repeated silence runs the retry counter
  // up in OnT1Expiry until link failure.
  if (!t1_.running()) {
    SendSupervisory(Ax25FrameType::kRr, /*response=*/false, /*pf=*/true);
    t1_.Restart(link_->config().t1);
  }
  RestartT3();
}

void Ax25Connection::OnT1Expiry() {
  ++retry_count_;
  if (retry_count_ > link_->config().n2) {
    UPR_WARN(kTag, "%s: retry limit exceeded, link failure",
             peer_.ToString().c_str());
    if (state_ != State::kDisconnected) {
      SendU(Ax25FrameType::kDm, /*command=*/false, /*pf=*/true);
      EnterDisconnected();
    }
    return;
  }
  switch (state_) {
    case State::kConnecting:
      SendU(Ax25FrameType::kSabm, true, true);
      t1_.Restart(link_->config().t1);
      break;
    case State::kDisconnecting:
      SendU(Ax25FrameType::kDisc, true, true);
      t1_.Restart(link_->config().t1);
      break;
    case State::kConnected:
      // Retransmit everything outstanding starting at V(A) (go-back-N); the
      // head frame carries the P bit as a checkpoint.
      for (std::uint8_t i = 0; i < Outstanding(vs_, va_); ++i) {
        SendIFrame(Mod8(va_ + i), /*retransmission=*/true, /*poll=*/i == 0);
      }
      if (outstanding_.empty()) {
        // Nothing outstanding: poll the peer.
        SendSupervisory(Ax25FrameType::kRr, /*response=*/false, /*pf=*/true);
      }
      t1_.Restart(link_->config().t1);
      break;
    case State::kDisconnected:
      break;
  }
}

void Ax25Connection::HandleAck(std::uint8_t nr) {
  // N(R) acknowledges all frames with N(S) < N(R). Validate that N(R) is in
  // [va, vs] before applying.
  if (Mod8(nr - va_) > Outstanding(vs_, va_)) {
    return;  // invalid N(R); a full FRMR recovery is out of scope
  }
  bool advanced = false;
  while (va_ != nr) {
    outstanding_.erase(va_);
    va_ = Mod8(va_ + 1);
    advanced = true;
  }
  if (advanced) {
    retry_count_ = 0;
    if (outstanding_.empty()) {
      t1_.Stop();
    } else {
      t1_.Restart(link_->config().t1);
    }
  }
}

void Ax25Connection::HandleI(const Ax25Frame& f) {
  HandleAck(f.nr);
  if (f.ns == vr_) {
    vr_ = Mod8(vr_ + 1);
    rej_outstanding_ = false;
    bytes_delivered_ += f.info.size();
    if (on_data_) {
      on_data_(f.info);
    }
    // Acknowledge. (No delayed-ack / piggyback sophistication: one RR per I
    // frame, as simple TNC implementations do.)
    SendSupervisory(Ax25FrameType::kRr, /*response=*/true, f.poll_final);
  } else {
    // Out of sequence: reject once until it clears.
    if (!rej_outstanding_) {
      rej_outstanding_ = true;
      SendSupervisory(Ax25FrameType::kRej, /*response=*/true, f.poll_final);
    } else if (f.poll_final) {
      SendSupervisory(Ax25FrameType::kRr, /*response=*/true, true);
    }
  }
  PumpSendQueue();
}

void Ax25Connection::HandleFrame(const Ax25Frame& f) {
  RestartT3();
  switch (f.type) {
    case Ax25FrameType::kSabm:
      // Connection (re)establishment from the peer.
      SendU(Ax25FrameType::kUa, /*command=*/false, f.poll_final);
      if (state_ == State::kConnected) {
        UPR_DEBUG(kTag, "%s: link reset by peer", peer_.ToString().c_str());
      }
      EnterConnected();
      break;
    case Ax25FrameType::kUa:
      if (state_ == State::kConnecting) {
        EnterConnected();
      } else if (state_ == State::kDisconnecting) {
        EnterDisconnected();
      }
      break;
    case Ax25FrameType::kDm:
      if (state_ != State::kDisconnected) {
        EnterDisconnected();
      }
      break;
    case Ax25FrameType::kDisc:
      SendU(Ax25FrameType::kUa, /*command=*/false, f.poll_final);
      if (state_ != State::kDisconnected) {
        EnterDisconnected();
      }
      break;
    case Ax25FrameType::kI:
      if (state_ == State::kConnected) {
        HandleI(f);
      } else if (state_ == State::kDisconnected) {
        SendU(Ax25FrameType::kDm, /*command=*/false, f.poll_final);
      }
      // kConnecting / kDisconnecting: drop silently. Answering DM here tears
      // down the peer's half-open link in the UA-loss race: the peer's UA was
      // lost on the air but data it queued right behind the UA already
      // arrived. T1 on both sides recovers the establishment instead.
      break;
    case Ax25FrameType::kRr:
      if (state_ == State::kConnected) {
        peer_busy_ = false;
        HandleAck(f.nr);
        if (f.command && f.poll_final) {
          SendSupervisory(Ax25FrameType::kRr, /*response=*/true, true);
        } else if (!f.command && f.poll_final && outstanding_.empty()) {
          // F-bit answer to our keepalive poll: the link is alive.
          retry_count_ = 0;
          t1_.Stop();
        }
        PumpSendQueue();
      }
      break;
    case Ax25FrameType::kRnr:
      if (state_ == State::kConnected) {
        peer_busy_ = true;
        HandleAck(f.nr);
        if (f.command && f.poll_final) {
          SendSupervisory(Ax25FrameType::kRr, /*response=*/true, true);
        }
      }
      break;
    case Ax25FrameType::kRej:
      if (state_ == State::kConnected) {
        peer_busy_ = false;
        HandleAck(f.nr);
        // Retransmit from N(R).
        for (std::uint8_t i = 0; i < Outstanding(vs_, va_); ++i) {
          SendIFrame(Mod8(va_ + i), /*retransmission=*/true);
        }
        if (!outstanding_.empty()) {
          t1_.Restart(link_->config().t1);
        }
        PumpSendQueue();
      }
      break;
    case Ax25FrameType::kFrmr:
      // Unrecoverable per v2.0: re-establish.
      if (state_ == State::kConnected) {
        StartConnect();
      }
      break;
    case Ax25FrameType::kUi:
    case Ax25FrameType::kUnknown:
      break;
  }
}

}  // namespace upr
