#include "src/ax25/frame.h"

#include <cstdio>
#include <cstring>

#include "src/trace/trace.h"

namespace upr {

namespace {

// Unnumbered-frame control values with the P/F bit masked out.
constexpr std::uint8_t kCtlSabm = 0x2F;
constexpr std::uint8_t kCtlDisc = 0x43;
constexpr std::uint8_t kCtlUa = 0x63;
constexpr std::uint8_t kCtlDm = 0x0F;
constexpr std::uint8_t kCtlUi = 0x03;
constexpr std::uint8_t kCtlFrmr = 0x87;
constexpr std::uint8_t kPfBit = 0x10;

std::uint8_t ControlByte(const Ax25Frame& f) {
  std::uint8_t pf = f.poll_final ? kPfBit : 0;
  switch (f.type) {
    case Ax25FrameType::kI:
      return static_cast<std::uint8_t>((f.nr & 7) << 5 | pf | (f.ns & 7) << 1);
    case Ax25FrameType::kRr:
      return static_cast<std::uint8_t>((f.nr & 7) << 5 | pf | 0x01);
    case Ax25FrameType::kRnr:
      return static_cast<std::uint8_t>((f.nr & 7) << 5 | pf | 0x05);
    case Ax25FrameType::kRej:
      return static_cast<std::uint8_t>((f.nr & 7) << 5 | pf | 0x09);
    case Ax25FrameType::kSabm:
      return kCtlSabm | pf;
    case Ax25FrameType::kDisc:
      return kCtlDisc | pf;
    case Ax25FrameType::kUa:
      return kCtlUa | pf;
    case Ax25FrameType::kDm:
      return kCtlDm | pf;
    case Ax25FrameType::kUi:
      return kCtlUi | pf;
    case Ax25FrameType::kFrmr:
      return kCtlFrmr | pf;
    case Ax25FrameType::kUnknown:
      return kCtlUi;
  }
  return kCtlUi;
}

}  // namespace

const char* Ax25FrameTypeName(Ax25FrameType t) {
  switch (t) {
    case Ax25FrameType::kI:
      return "I";
    case Ax25FrameType::kRr:
      return "RR";
    case Ax25FrameType::kRnr:
      return "RNR";
    case Ax25FrameType::kRej:
      return "REJ";
    case Ax25FrameType::kSabm:
      return "SABM";
    case Ax25FrameType::kDisc:
      return "DISC";
    case Ax25FrameType::kUa:
      return "UA";
    case Ax25FrameType::kDm:
      return "DM";
    case Ax25FrameType::kUi:
      return "UI";
    case Ax25FrameType::kFrmr:
      return "FRMR";
    case Ax25FrameType::kUnknown:
      return "?";
  }
  return "?";
}

Ax25Frame Ax25Frame::MakeUi(const Ax25Address& dst, const Ax25Address& src,
                            std::uint8_t pid, Bytes info,
                            std::vector<Ax25Digipeater> digis) {
  Ax25Frame f;
  f.destination = dst;
  f.source = src;
  f.digipeaters = std::move(digis);
  f.command = true;
  f.type = Ax25FrameType::kUi;
  f.pid = pid;
  f.info = std::move(info);
  return f;
}

bool Ax25Frame::DigipeatingComplete() const {
  for (const auto& d : digipeaters) {
    if (!d.repeated) {
      return false;
    }
  }
  return true;
}

const Ax25Digipeater* Ax25Frame::NextDigipeater() const {
  for (const auto& d : digipeaters) {
    if (!d.repeated) {
      return &d;
    }
  }
  return nullptr;
}

Ax25Digipeater* Ax25Frame::NextDigipeater() {
  for (auto& d : digipeaters) {
    if (!d.repeated) {
      return &d;
    }
  }
  return nullptr;
}

void Ax25Frame::EncodeTo(PacketBuf* pb) const {
  BufLayerScope scope(BufLayer::kAx25);
  std::uint8_t* h = pb->Prepend(HeaderLength());
  std::size_t pos = 0;

  // Address field. AX.25 v2.0 command/response encoding: a command frame has
  // the C bit set in the destination and clear in the source; a response the
  // opposite.
  bool last_is_dst_src = digipeaters.empty();
  auto dst = destination.Encode(command, false);
  std::memcpy(h + pos, dst.data(), kAx25AddressBytes);
  pos += kAx25AddressBytes;
  auto src = source.Encode(!command, last_is_dst_src);
  std::memcpy(h + pos, src.data(), kAx25AddressBytes);
  pos += kAx25AddressBytes;
  for (std::size_t i = 0; i < digipeaters.size(); ++i) {
    bool last = (i + 1 == digipeaters.size());
    auto d = digipeaters[i].address.Encode(digipeaters[i].repeated, last);
    std::memcpy(h + pos, d.data(), kAx25AddressBytes);
    pos += kAx25AddressBytes;
  }

  h[pos++] = ControlByte(*this);
  if (HasPid()) {
    h[pos++] = pid;
  }
  if (auto* t = trace::Active()) {
    t->Record(trace::Layer::kAx25, trace::Kind::kAx25Encode,
              trace::CurrentDir(), {}, pb->view(), ToString());
  }
}

Bytes Ax25Frame::Encode() const {
  // Exact-fit PacketBuf (headroom == header length), so Release() moves the
  // storage out: same one-allocation cost as direct serialization.
  ByteView payload = CarriesInfo() ? ByteView(info) : ByteView();
  PacketBuf pb = PacketBuf::FromView(payload, HeaderLength());
  EncodeTo(&pb);
  return pb.Release();
}

std::optional<Ax25Frame::DecodedView> Ax25Frame::DecodeView(ByteView wire) {
  // Minimum: dst + src + control.
  if (wire.size() < 2 * kAx25AddressBytes + 1) {
    return std::nullopt;
  }
  Ax25Frame f;
  std::size_t pos = 0;

  auto dst = Ax25Address::Decode(wire.data() + pos);
  if (!dst) {
    return std::nullopt;
  }
  pos += kAx25AddressBytes;
  auto src = Ax25Address::Decode(wire.data() + pos);
  if (!src) {
    return std::nullopt;
  }
  pos += kAx25AddressBytes;

  f.destination = dst->address;
  f.source = src->address;
  // C bits: command when dst C=1 / src C=0. Old (v1) frames set both the
  // same; treat those as commands.
  f.command = dst->c_or_h_bit || !src->c_or_h_bit;

  bool last = src->last;
  while (!last) {
    if (f.digipeaters.size() >= kMaxDigipeaters ||
        pos + kAx25AddressBytes > wire.size()) {
      return std::nullopt;
    }
    auto digi = Ax25Address::Decode(wire.data() + pos);
    if (!digi) {
      return std::nullopt;
    }
    pos += kAx25AddressBytes;
    f.digipeaters.push_back(Ax25Digipeater{digi->address, digi->c_or_h_bit});
    last = digi->last;
  }

  if (pos >= wire.size()) {
    return std::nullopt;
  }
  std::uint8_t ctl = wire[pos++];
  f.poll_final = (ctl & kPfBit) != 0;
  if ((ctl & 0x01) == 0) {
    f.type = Ax25FrameType::kI;
    f.ns = (ctl >> 1) & 7;
    f.nr = (ctl >> 5) & 7;
  } else if ((ctl & 0x03) == 0x01) {
    f.nr = (ctl >> 5) & 7;
    switch (ctl & 0x0F) {
      case 0x01:
        f.type = Ax25FrameType::kRr;
        break;
      case 0x05:
        f.type = Ax25FrameType::kRnr;
        break;
      case 0x09:
        f.type = Ax25FrameType::kRej;
        break;
      default:
        f.type = Ax25FrameType::kUnknown;
        break;
    }
  } else {
    switch (ctl & ~kPfBit) {
      case kCtlSabm:
        f.type = Ax25FrameType::kSabm;
        break;
      case kCtlDisc:
        f.type = Ax25FrameType::kDisc;
        break;
      case kCtlUa:
        f.type = Ax25FrameType::kUa;
        break;
      case kCtlDm:
        f.type = Ax25FrameType::kDm;
        break;
      case kCtlUi:
        f.type = Ax25FrameType::kUi;
        break;
      case kCtlFrmr:
        f.type = Ax25FrameType::kFrmr;
        break;
      default:
        f.type = Ax25FrameType::kUnknown;
        break;
    }
  }

  if (f.HasPid()) {
    if (pos >= wire.size()) {
      return std::nullopt;
    }
    f.pid = wire[pos++];
  }
  DecodedView out;
  out.frame = std::move(f);
  out.info = wire.subspan(pos);
  if (auto* t = trace::Active()) {
    t->Record(trace::Layer::kAx25, trace::Kind::kAx25Decode,
              trace::CurrentDir(), {}, wire, out.frame.ToString());
  }
  return out;
}

std::optional<Ax25Frame> Ax25Frame::Decode(const Bytes& wire) {
  std::optional<DecodedView> v = DecodeView(wire);
  if (!v) {
    return std::nullopt;
  }
  Ax25Frame f = std::move(v->frame);
  {
    BufLayerScope scope(BufLayer::kAx25);
    if (!v->info.empty()) {
      BufNoteAlloc();
      BufNoteCopy(v->info.size());
    }
  }
  f.info.assign(v->info.begin(), v->info.end());
  return f;
}

std::string Ax25Frame::ToString() const {
  std::string out = source.ToString() + ">" + destination.ToString();
  for (const auto& d : digipeaters) {
    out += "," + d.address.ToString();
    if (d.repeated) {
      out += "*";
    }
  }
  out += " ";
  out += Ax25FrameTypeName(type);
  if (type == Ax25FrameType::kI) {
    out += " NS=" + std::to_string(ns) + " NR=" + std::to_string(nr);
  } else if (type == Ax25FrameType::kRr || type == Ax25FrameType::kRnr ||
             type == Ax25FrameType::kRej) {
    out += " NR=" + std::to_string(nr);
  }
  if (HasPid()) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), " PID=%02x", pid);
    out += buf;
  }
  if (!info.empty()) {
    out += " len=" + std::to_string(info.size());
  }
  return out;
}

}  // namespace upr
