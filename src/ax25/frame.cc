#include "src/ax25/frame.h"

#include <cstdio>
#include <cstring>

#include "src/trace/trace.h"

namespace upr {

namespace {

// Unnumbered-frame control values with the P/F bit masked out.
constexpr std::uint8_t kCtlSabm = 0x2F;
constexpr std::uint8_t kCtlSabme = 0x6F;
constexpr std::uint8_t kCtlDisc = 0x43;
constexpr std::uint8_t kCtlUa = 0x63;
constexpr std::uint8_t kCtlDm = 0x0F;
constexpr std::uint8_t kCtlUi = 0x03;
constexpr std::uint8_t kCtlXid = 0xAF;
constexpr std::uint8_t kCtlFrmr = 0x87;
constexpr std::uint8_t kPfBit = 0x10;

// Supervisory codes: the low nibble of the (first) control byte.
constexpr std::uint8_t kSupRr = 0x01;
constexpr std::uint8_t kSupRnr = 0x05;
constexpr std::uint8_t kSupRej = 0x09;
constexpr std::uint8_t kSupSrej = 0x0D;

std::uint8_t SupervisoryCode(Ax25FrameType t) {
  switch (t) {
    case Ax25FrameType::kRr:
      return kSupRr;
    case Ax25FrameType::kRnr:
      return kSupRnr;
    case Ax25FrameType::kRej:
      return kSupRej;
    default:
      return kSupSrej;
  }
}

std::uint8_t ControlByte(const Ax25Frame& f) {
  std::uint8_t pf = f.poll_final ? kPfBit : 0;
  switch (f.type) {
    case Ax25FrameType::kI:
      return static_cast<std::uint8_t>((f.nr & 7) << 5 | pf | (f.ns & 7) << 1);
    case Ax25FrameType::kRr:
    case Ax25FrameType::kRnr:
    case Ax25FrameType::kRej:
    case Ax25FrameType::kSrej:
      return static_cast<std::uint8_t>((f.nr & 7) << 5 | pf |
                                       SupervisoryCode(f.type));
    case Ax25FrameType::kSabm:
      return kCtlSabm | pf;
    case Ax25FrameType::kSabme:
      return kCtlSabme | pf;
    case Ax25FrameType::kDisc:
      return kCtlDisc | pf;
    case Ax25FrameType::kUa:
      return kCtlUa | pf;
    case Ax25FrameType::kDm:
      return kCtlDm | pf;
    case Ax25FrameType::kUi:
      return kCtlUi | pf;
    case Ax25FrameType::kXid:
      return kCtlXid | pf;
    case Ax25FrameType::kFrmr:
      return kCtlFrmr | pf;
    case Ax25FrameType::kUnknown:
      return kCtlUi;
  }
  return kCtlUi;
}

// Appends a big-endian PI/PL/PV triple.
void PutXidParam(Bytes* out, std::uint8_t pi, std::uint32_t value,
                 std::size_t len) {
  out->push_back(pi);
  out->push_back(static_cast<std::uint8_t>(len));
  for (std::size_t i = len; i-- > 0;) {
    out->push_back(static_cast<std::uint8_t>(value >> (8 * i)));
  }
}

}  // namespace

const char* Ax25FrameTypeName(Ax25FrameType t) {
  switch (t) {
    case Ax25FrameType::kI:
      return "I";
    case Ax25FrameType::kRr:
      return "RR";
    case Ax25FrameType::kRnr:
      return "RNR";
    case Ax25FrameType::kRej:
      return "REJ";
    case Ax25FrameType::kSrej:
      return "SREJ";
    case Ax25FrameType::kSabm:
      return "SABM";
    case Ax25FrameType::kSabme:
      return "SABME";
    case Ax25FrameType::kDisc:
      return "DISC";
    case Ax25FrameType::kUa:
      return "UA";
    case Ax25FrameType::kDm:
      return "DM";
    case Ax25FrameType::kUi:
      return "UI";
    case Ax25FrameType::kXid:
      return "XID";
    case Ax25FrameType::kFrmr:
      return "FRMR";
    case Ax25FrameType::kUnknown:
      return "?";
  }
  return "?";
}

Ax25Frame Ax25Frame::MakeUi(const Ax25Address& dst, const Ax25Address& src,
                            std::uint8_t pid, Bytes info,
                            std::vector<Ax25Digipeater> digis) {
  Ax25Frame f;
  f.destination = dst;
  f.source = src;
  f.digipeaters = std::move(digis);
  f.command = true;
  f.type = Ax25FrameType::kUi;
  f.pid = pid;
  f.info = std::move(info);
  return f;
}

bool Ax25Frame::DigipeatingComplete() const {
  for (const auto& d : digipeaters) {
    if (!d.repeated) {
      return false;
    }
  }
  return true;
}

const Ax25Digipeater* Ax25Frame::NextDigipeater() const {
  for (const auto& d : digipeaters) {
    if (!d.repeated) {
      return &d;
    }
  }
  return nullptr;
}

Ax25Digipeater* Ax25Frame::NextDigipeater() {
  for (auto& d : digipeaters) {
    if (!d.repeated) {
      return &d;
    }
  }
  return nullptr;
}

void Ax25Frame::EncodeTo(PacketBuf* pb) const {
  BufLayerScope scope(BufLayer::kAx25);
  std::uint8_t* h = pb->Prepend(HeaderLength());
  std::size_t pos = 0;

  // Address field. AX.25 v2.0 command/response encoding: a command frame has
  // the C bit set in the destination and clear in the source; a response the
  // opposite.
  bool last_is_dst_src = digipeaters.empty();
  auto dst = destination.Encode(command, false);
  std::memcpy(h + pos, dst.data(), kAx25AddressBytes);
  pos += kAx25AddressBytes;
  auto src = source.Encode(!command, last_is_dst_src);
  std::memcpy(h + pos, src.data(), kAx25AddressBytes);
  pos += kAx25AddressBytes;
  for (std::size_t i = 0; i < digipeaters.size(); ++i) {
    bool last = (i + 1 == digipeaters.size());
    auto d = digipeaters[i].address.Encode(digipeaters[i].repeated, last);
    std::memcpy(h + pos, d.data(), kAx25AddressBytes);
    pos += kAx25AddressBytes;
  }

  if (ControlLength() == 2) {
    // Extended (mod-128) control: seven-bit N(S)/N(R), P/F in bit 0 of the
    // second byte.
    std::uint8_t pf = poll_final ? 0x01 : 0x00;
    if (type == Ax25FrameType::kI) {
      h[pos++] = static_cast<std::uint8_t>((ns & 0x7F) << 1);
    } else {
      h[pos++] = SupervisoryCode(type);
    }
    h[pos++] = static_cast<std::uint8_t>((nr & 0x7F) << 1 | pf);
  } else {
    h[pos++] = ControlByte(*this);
  }
  if (HasPid()) {
    h[pos++] = pid;
  }
  if (auto* t = trace::Active()) {
    t->Record(trace::Layer::kAx25, trace::Kind::kAx25Encode,
              trace::CurrentDir(), {}, pb->view(), ToString());
  }
}

Bytes Ax25Frame::Encode() const {
  // Exact-fit PacketBuf (headroom == header length), so Release() moves the
  // storage out: same one-allocation cost as direct serialization.
  ByteView payload = CarriesInfo() ? ByteView(info) : ByteView();
  PacketBuf pb = PacketBuf::FromView(payload, HeaderLength());
  EncodeTo(&pb);
  return pb.Release();
}

std::optional<Ax25Frame::DecodedView> Ax25Frame::DecodeView(
    ByteView wire, Ax25Modulus modulus) {
  // Minimum: dst + src + control.
  if (wire.size() < 2 * kAx25AddressBytes + 1) {
    return std::nullopt;
  }
  Ax25Frame f;
  f.modulus = modulus;
  std::size_t pos = 0;

  auto dst = Ax25Address::Decode(wire.data() + pos);
  if (!dst) {
    return std::nullopt;
  }
  pos += kAx25AddressBytes;
  auto src = Ax25Address::Decode(wire.data() + pos);
  if (!src) {
    return std::nullopt;
  }
  pos += kAx25AddressBytes;

  f.destination = dst->address;
  f.source = src->address;
  // C bits: command when dst C=1 / src C=0. Old (v1) frames set both the
  // same; treat those as commands.
  f.command = dst->c_or_h_bit || !src->c_or_h_bit;

  bool last = src->last;
  while (!last) {
    if (f.digipeaters.size() >= kMaxDigipeaters ||
        pos + kAx25AddressBytes > wire.size()) {
      return std::nullopt;
    }
    auto digi = Ax25Address::Decode(wire.data() + pos);
    if (!digi) {
      return std::nullopt;
    }
    pos += kAx25AddressBytes;
    f.digipeaters.push_back(Ax25Digipeater{digi->address, digi->c_or_h_bit});
    last = digi->last;
  }

  if (pos >= wire.size()) {
    return std::nullopt;
  }
  std::uint8_t ctl = wire[pos++];
  bool extended =
      modulus == Ax25Modulus::kMod128 && (ctl & 0x03) != 0x03;  // I or S
  if (extended) {
    if (pos >= wire.size()) {
      return std::nullopt;
    }
    std::uint8_t ctl2 = wire[pos++];
    f.poll_final = (ctl2 & 0x01) != 0;
    f.nr = (ctl2 >> 1) & 0x7F;
    if ((ctl & 0x01) == 0) {
      f.type = Ax25FrameType::kI;
      f.ns = (ctl >> 1) & 0x7F;
    } else {
      switch (ctl & 0x0F) {
        case kSupRr:
          f.type = Ax25FrameType::kRr;
          break;
        case kSupRnr:
          f.type = Ax25FrameType::kRnr;
          break;
        case kSupRej:
          f.type = Ax25FrameType::kRej;
          break;
        case kSupSrej:
          f.type = Ax25FrameType::kSrej;
          break;
        default:
          f.type = Ax25FrameType::kUnknown;
          break;
      }
    }
  } else if ((ctl & 0x01) == 0) {
    f.poll_final = (ctl & kPfBit) != 0;
    f.type = Ax25FrameType::kI;
    f.ns = (ctl >> 1) & 7;
    f.nr = (ctl >> 5) & 7;
  } else if ((ctl & 0x03) == 0x01) {
    f.poll_final = (ctl & kPfBit) != 0;
    f.nr = (ctl >> 5) & 7;
    switch (ctl & 0x0F) {
      case kSupRr:
        f.type = Ax25FrameType::kRr;
        break;
      case kSupRnr:
        f.type = Ax25FrameType::kRnr;
        break;
      case kSupRej:
        f.type = Ax25FrameType::kRej;
        break;
      case kSupSrej:
        f.type = Ax25FrameType::kSrej;
        break;
      default:
        f.type = Ax25FrameType::kUnknown;
        break;
    }
  } else {
    f.poll_final = (ctl & kPfBit) != 0;
    switch (ctl & ~kPfBit) {
      case kCtlSabm:
        f.type = Ax25FrameType::kSabm;
        break;
      case kCtlSabme:
        f.type = Ax25FrameType::kSabme;
        break;
      case kCtlDisc:
        f.type = Ax25FrameType::kDisc;
        break;
      case kCtlUa:
        f.type = Ax25FrameType::kUa;
        break;
      case kCtlDm:
        f.type = Ax25FrameType::kDm;
        break;
      case kCtlUi:
        f.type = Ax25FrameType::kUi;
        break;
      case kCtlXid:
        f.type = Ax25FrameType::kXid;
        break;
      case kCtlFrmr:
        f.type = Ax25FrameType::kFrmr;
        break;
      default:
        f.type = Ax25FrameType::kUnknown;
        break;
    }
  }

  if (f.HasPid()) {
    if (pos >= wire.size()) {
      return std::nullopt;
    }
    f.pid = wire[pos++];
  }
  DecodedView out;
  out.frame = std::move(f);
  out.info = wire.subspan(pos);
  if (auto* t = trace::Active()) {
    t->Record(trace::Layer::kAx25, trace::Kind::kAx25Decode,
              trace::CurrentDir(), {}, wire, out.frame.ToString());
  }
  return out;
}

std::optional<Ax25Frame> Ax25Frame::Decode(const Bytes& wire,
                                           Ax25Modulus modulus) {
  std::optional<DecodedView> v = DecodeView(wire, modulus);
  if (!v) {
    return std::nullopt;
  }
  Ax25Frame f = std::move(v->frame);
  {
    BufLayerScope scope(BufLayer::kAx25);
    if (!v->info.empty()) {
      BufNoteAlloc();
      BufNoteCopy(v->info.size());
    }
  }
  f.info.assign(v->info.begin(), v->info.end());
  return f;
}

std::string Ax25Frame::ToString() const {
  std::string out = source.ToString() + ">" + destination.ToString();
  for (const auto& d : digipeaters) {
    out += "," + d.address.ToString();
    if (d.repeated) {
      out += "*";
    }
  }
  out += " ";
  out += Ax25FrameTypeName(type);
  if (type == Ax25FrameType::kI) {
    out += " NS=" + std::to_string(ns) + " NR=" + std::to_string(nr);
  } else if (IsSupervisory()) {
    out += " NR=" + std::to_string(nr);
  }
  if (HasPid()) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), " PID=%02x", pid);
    out += buf;
  }
  if (!info.empty()) {
    out += " len=" + std::to_string(info.size());
  }
  return out;
}

Bytes Ax25XidParams::Encode() const {
  // Parameter values take the minimum big-endian width that fits, matching
  // the fixed widths every fielded v2.2 implementation emits (2/3/2/1/2/1 for
  // the defaults).
  Bytes body;
  PutXidParam(&body, kXidPiClassesOfProcedures, classes, 2);
  PutXidParam(&body, kXidPiOptionalFunctions, optional_functions, 3);
  PutXidParam(&body, kXidPiIFieldLengthRx, i_field_length_rx,
              i_field_length_rx > 0xFFFF ? 4 : 2);
  PutXidParam(&body, kXidPiWindowSizeRx, window_size_rx, 1);
  PutXidParam(&body, kXidPiAckTimer, ack_timer_ms, ack_timer_ms > 0xFFFF ? 4 : 2);
  PutXidParam(&body, kXidPiRetries, retries, retries > 0xFF ? 2 : 1);

  Bytes out;
  out.reserve(4 + body.size());
  out.push_back(kXidFormatIso8885);
  out.push_back(kXidGroupParameters);
  out.push_back(static_cast<std::uint8_t>(body.size() >> 8));
  out.push_back(static_cast<std::uint8_t>(body.size() & 0xFF));
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

std::optional<Ax25XidParams> Ax25XidParams::Decode(ByteView info) {
  if (info.size() < 4 || info[0] != kXidFormatIso8885 ||
      info[1] != kXidGroupParameters) {
    return std::nullopt;
  }
  std::size_t group_len = static_cast<std::size_t>(info[2]) << 8 | info[3];
  if (4 + group_len > info.size()) {
    return std::nullopt;
  }
  Ax25XidParams p;
  // Absent parameters keep the v2.2 defaults, per the spec's negotiation
  // rules, which the struct initializers already encode.
  std::size_t pos = 4;
  std::size_t end = 4 + group_len;
  while (pos + 2 <= end) {
    std::uint8_t pi = info[pos];
    std::uint8_t pl = info[pos + 1];
    pos += 2;
    if (pos + pl > end || pl > 4) {
      return std::nullopt;
    }
    std::uint32_t value = 0;
    for (std::size_t i = 0; i < pl; ++i) {
      value = value << 8 | info[pos + i];
    }
    pos += pl;
    switch (pi) {
      case kXidPiClassesOfProcedures:
        p.classes = static_cast<std::uint16_t>(value);
        break;
      case kXidPiOptionalFunctions:
        p.optional_functions = value;
        break;
      case kXidPiIFieldLengthRx:
        p.i_field_length_rx = value;
        break;
      case kXidPiWindowSizeRx:
        p.window_size_rx = static_cast<std::uint8_t>(value);
        break;
      case kXidPiAckTimer:
        p.ack_timer_ms = value;
        break;
      case kXidPiRetries:
        p.retries = value;
        break;
      default:
        break;  // unknown PI: skip
    }
  }
  return p;
}

}  // namespace upr
